(* colcache: command-line driver for the column-caching reproduction.

   Subcommands map one-to-one onto the paper's experiments plus a few
   inspection tools:

     colcache fig3                Figure 3 remap-cost comparison
     colcache fig4                Figure 4(a-c) per-routine partition sweeps
     colcache fig4d               Figure 4(d) static vs dynamic partitioning
     colcache fig5                Figure 5 multitasking CPI sweep
     colcache ablations           the DESIGN.md ablations
     colcache all                 everything above
     colcache dynamic             run the per-routine schedule, show remap costs
     colcache layout  <routine>   show the computed placement for a routine
     colcache simulate <routine>  run one routine under a chosen partition
     colcache trace dump <routine>    dump the head of a routine's memory trace
     colcache trace pack|info|synth   packed binary trace tooling
     colcache multitask           epoch-synchronized parallel multitask replay
     colcache mrc     <file>      miss-ratio curve of a trace, exact or sampled
     colcache check               differential soak: simulators vs naive oracle
     colcache gen                 emit a traffic-shaped workload trace
     colcache validate <file>     parse, validate and lint an IF program file
     colcache wcet    <file>      static worst-case miss/cycle bounds, WCET-aware
                                  column allocation across procedures *)

open Cmdliner

let ppf = Format.std_formatter

let meth_conv =
  let parse = function
    | "profile" -> Ok Colcache.Pipeline.Profile_based
    | "analysis" -> Ok Colcache.Pipeline.Program_analysis
    | s -> Error (`Msg (Printf.sprintf "unknown method %S (profile|analysis)" s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with
      | Colcache.Pipeline.Profile_based -> "profile"
      | Colcache.Pipeline.Program_analysis -> "analysis")
  in
  Arg.conv (parse, print)

let meth_arg =
  Arg.(
    value
    & opt meth_conv Colcache.Pipeline.Profile_based
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:"Weight method: $(b,profile) (run and measure) or $(b,analysis) \
              (estimate from the IF).")

let routine_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"ROUTINE"
        ~doc:"Routine name: dequant/plus/idct (mpeg) or               color_convert/fdct/quant_zigzag (jpeg).")

let app_arg =
  Arg.(
    value
    & opt (enum [ ("mpeg", `Mpeg); ("jpeg", `Jpeg) ]) `Mpeg
    & info [ "a"; "app" ] ~docv:"APP" ~doc:"Application: $(b,mpeg) or $(b,jpeg).")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Run the front-end optimizer (fold, DCE, hoisting) first.")

let scratch_arg =
  Arg.(
    value
    & opt int 2
    & info [ "s"; "scratchpad-columns" ] ~docv:"N"
        ~doc:"Columns reserved as scratchpad (0-4).")

let mpeg_pipeline () =
  Colcache.Pipeline.make ~init:Workloads.Mpeg.init
    ~cache:(Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ())
    Workloads.Mpeg.program

(* Pipeline + routine validation for the app chosen on the command line. *)
let app_pipeline app ~optimize ~routine =
  let program, init, routines =
    match app with
    | `Mpeg -> (Workloads.Mpeg.program, Workloads.Mpeg.init, Workloads.Mpeg.routines)
    | `Jpeg -> (Workloads.Jpeg.program, Workloads.Jpeg.init, Workloads.Jpeg.routines)
  in
  if not (List.mem routine routines) then begin
    Format.eprintf "colcache: unknown routine %S; expected one of: %s@."
      routine
      (String.concat ", " routines);
    exit 124
  end;
  let program = if optimize then Ir.Optimize.optimize program else program in
  Colcache.Pipeline.make ~init
    ~cache:(Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ())
    program

let fig3_cmd =
  let run () = Colcache.Experiments.Fig3.print ppf (Colcache.Experiments.Fig3.run ()) in
  Cmd.v (Cmd.info "fig3" ~doc:"Tints vs raw bit vectors remap cost (Figure 3).")
    Term.(const run $ const ())

let fig4_cmd =
  let run meth =
    Colcache.Experiments.Fig4_routines.print ppf
      (Colcache.Experiments.Fig4_routines.run ~meth ())
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Per-routine scratchpad/cache sweeps (Figure 4 a-c).")
    Term.(const run $ meth_arg)

let fig4d_cmd =
  let run meth =
    Colcache.Experiments.Fig4_combined.print ppf
      (Colcache.Experiments.Fig4_combined.run ~meth ())
  in
  Cmd.v
    (Cmd.info "fig4d" ~doc:"Whole application, static vs dynamic (Figure 4d).")
    Term.(const run $ meth_arg)

let fig5_cmd =
  let input_len =
    Arg.(
      value & opt int 12288
      & info [ "input-len" ] ~docv:"BYTES" ~doc:"Input size per gzip job.")
  in
  let run input_len =
    Colcache.Experiments.Fig5.print ppf
      (Colcache.Experiments.Fig5.run ~input_len ())
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Multitasking CPI vs time quantum (Figure 5).")
    Term.(const run $ input_len)

let ablations_cmd =
  let run () =
    Colcache.Experiments.Ablation_policy.print ppf
      (Colcache.Experiments.Ablation_policy.run ());
    Colcache.Experiments.Ablation_columns.print ppf
      (Colcache.Experiments.Ablation_columns.run ());
    Colcache.Experiments.Ablation_weights.print ppf
      (Colcache.Experiments.Ablation_weights.run ());
    Colcache.Experiments.Ablation_grouping.print ppf
      (Colcache.Experiments.Ablation_grouping.run ());
    Colcache.Experiments.Mrc_layout.print ppf
      (Colcache.Experiments.Mrc_layout.run ());
    Colcache.Experiments.Ablation_page_coloring.print ppf
      (Colcache.Experiments.Ablation_page_coloring.run ());
    Colcache.Experiments.Ablation_l2.print ppf
      (Colcache.Experiments.Ablation_l2.run ());
    Colcache.Experiments.Ablation_prefetch.print ppf
      (Colcache.Experiments.Ablation_prefetch.run ());
    Colcache.Experiments.Ablation_tlb.print ppf
      (Colcache.Experiments.Ablation_tlb.run ());
    Colcache.Experiments.Ablation_optimizer.print ppf
      (Colcache.Experiments.Ablation_optimizer.run ())
  in
  Cmd.v (Cmd.info "ablations" ~doc:"Design ablations from DESIGN.md.")
    Term.(const run $ const ())

let export_cmd =
  let dir =
    Arg.(
      value & opt string "results"
      & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Output directory for CSV files.")
  in
  let run dir =
    Colcache.Csv_export.write_all ~dir;
    Format.fprintf ppf "wrote CSV series to %s/@." dir
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Run every experiment and write its data series as CSV files.")
    Term.(const run $ dir)

let all_cmd =
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Run the experiments on N domains. The output is byte-identical \
             whatever N is; only the wall-clock time changes.")
  in
  let run jobs =
    if jobs <= 0 then
      `Error
        ( false,
          Printf.sprintf "--jobs must be a positive domain count, got %d" jobs
        )
    else `Ok (Colcache.Experiments.run_all ~jobs ppf)
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment.")
    Term.(ret (const run $ jobs))

let dynamic_cmd =
  let run meth =
    let t = mpeg_pipeline () in
    let stats, transitions =
      Colcache.Pipeline.run_dynamic_detailed t ~procs:Workloads.Mpeg.routines
        ~meth
    in
    List.iter
      (fun tr -> Format.fprintf ppf "%a@." Layout.Dynamic.pp_transition tr)
      transitions;
    Format.fprintf ppf "@.%a@." Machine.Run_stats.pp stats
  in
  Cmd.v
    (Cmd.info "dynamic"
       ~doc:
         "Run the dynamically repartitioned schedule (Section 3.2) and show           what each phase boundary cost.")
    Term.(const run $ meth_arg)

let layout_cmd =
  let run app optimize routine scratch meth =
    let t = app_pipeline app ~optimize ~routine in
    let part =
      Colcache.Pipeline.partition t ~proc:routine ~scratchpad_columns:scratch
        ~meth
    in
    Format.fprintf ppf "%a@." Layout.Partition.pp part
  in
  Cmd.v
    (Cmd.info "layout"
       ~doc:"Show the data layout the algorithm computes for a routine.")
    Term.(const run $ app_arg $ optimize_arg $ routine_arg $ scratch_arg $ meth_arg)

let simulate_cmd =
  let run app optimize routine scratch meth =
    let t = app_pipeline app ~optimize ~routine in
    let stats, part =
      Colcache.Pipeline.run_partitioned t ~proc:routine
        ~scratchpad_columns:scratch ~meth
    in
    Format.fprintf ppf "%a@.@.%a@." Layout.Partition.pp part
      Machine.Run_stats.pp stats
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Lay a routine out and replay it on the machine model.")
    Term.(const run $ app_arg $ optimize_arg $ routine_arg $ scratch_arg $ meth_arg)

(* Shared by trace synth and gen: the distribution-shape flags. *)
let dist_arg =
  Arg.(
    value
    & opt (enum [ ("zipf", `Zipf); ("uniform", `Uniform); ("scan", `Scan);
                  ("hotset", `Hotset) ])
        `Zipf
    & info [ "dist" ] ~docv:"DIST"
        ~doc:
          "Distribution: $(b,zipf), $(b,uniform), $(b,scan) or $(b,hotset) \
           (drifting hot window).")

let stream_of_dist dist ~items ~theta ~n =
  match dist with
  | `Zipf -> Workloads.Gen.Zipf { items; theta }
  | `Uniform -> Workloads.Gen.Uniform { items }
  | `Scan -> Workloads.Gen.Scan { items }
  | `Hotset ->
      Workloads.Gen.Hot_set
        {
          items;
          hot_items = max 1 (items / 8);
          hot_prob = 0.9;
          drift_every = max 1 (n / 8);
        }

let trace_dump_term =
  let count =
    Arg.(
      value & opt int 32
      & info [ "n" ] ~docv:"COUNT" ~doc:"Number of accesses to print.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Also save the whole trace to FILE (colcache-trace v1 format).")
  in
  let run app optimize routine count out =
    let t = app_pipeline app ~optimize ~routine in
    let trace = Colcache.Pipeline.trace_of t ~proc:routine in
    Format.fprintf ppf "%d accesses, %d instructions; first %d:@."
      (Memtrace.Trace.length trace)
      (Memtrace.Trace.instructions trace)
      count;
    let n = min count (Memtrace.Trace.length trace) in
    for i = 0 to n - 1 do
      Format.fprintf ppf "%a@." Memtrace.Access.pp (Memtrace.Trace.get trace i)
    done;
    match out with
    | None -> ()
    | Some path ->
        Memtrace.Trace_file.save ~path trace;
        Format.fprintf ppf "saved to %s@." path
  in
  Term.(const run $ app_arg $ optimize_arg $ routine_arg $ count $ out)

let trace_dump_cmd =
  Cmd.v
    (Cmd.info "dump"
       ~doc:"Dump (and optionally save) a routine's memory trace.")
    trace_dump_term

let trace_pack_cmd =
  let input =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"IN" ~doc:"Text trace (colcache-trace v1).")
  in
  let output =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"OUT" ~doc:"Packed binary trace to write.")
  in
  let run input output =
    if Memtrace.Packed.is_packed_file input then begin
      Format.eprintf "%s: already a packed binary trace@." input;
      exit 1
    end;
    let packed = Memtrace.Packed.of_trace (Memtrace.Trace_file.load ~path:input) in
    Memtrace.Packed.write_file output packed;
    Format.fprintf ppf "packed %d accesses into %s (%d bytes)@."
      (Memtrace.Packed.length packed)
      output
      (Unix.stat output).Unix.st_size
  in
  Cmd.v
    (Cmd.info "pack"
       ~doc:
         "Convert a text trace to the packed binary format, whose columns \
          mmap directly so replays run in bounded memory however large the \
          trace.")
    Term.(const run $ input $ output)

let trace_info_cmd =
  let input =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Trace file (text or packed binary).")
  in
  let run input =
    let packed_format = Memtrace.Packed.is_packed_file input in
    let packed = Memtrace.Trace_file.load_packed ~path:input in
    let n = Memtrace.Packed.length packed in
    let addrs = Memtrace.Packed.raw_addrs packed in
    let kinds = Memtrace.Packed.raw_kinds packed in
    let lo = ref max_int and hi = ref min_int and writes = ref 0 in
    for i = 0 to n - 1 do
      let a = Bigarray.Array1.unsafe_get addrs i in
      if a < !lo then lo := a;
      if a > !hi then hi := a;
      if Bigarray.Array1.unsafe_get kinds i = '\001' then incr writes
    done;
    Format.fprintf ppf "format:       %s@."
      (if packed_format then "packed binary (mmapped)" else "text v1");
    Format.fprintf ppf "file bytes:   %d@." (Unix.stat input).Unix.st_size;
    Format.fprintf ppf "accesses:     %d@." n;
    Format.fprintf ppf "instructions: %d@." (Memtrace.Packed.instructions packed);
    Format.fprintf ppf "writes:       %d@." !writes;
    Format.fprintf ppf "variables:    %d@."
      (Array.length (Memtrace.Packed.var_table packed));
    if n > 0 then Format.fprintf ppf "addresses:    [%d, %d]@." !lo !hi
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:
         "Show a trace file's header and aggregate statistics. Packed files \
          are mmapped, so this is cheap even for traces larger than RAM.")
    Term.(const run $ input)

let trace_synth_cmd =
  let n =
    Arg.(
      value & opt int 1_000_000
      & info [ "n" ] ~docv:"N" ~doc:"Accesses to synthesize.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"S"
          ~doc:"PRNG seed; equal seeds give byte-identical files.")
  in
  let items =
    Arg.(
      value & opt int 65536
      & info [ "items" ] ~docv:"I" ~doc:"Rank-space size.")
  in
  let theta =
    Arg.(
      value & opt float 0.99
      & info [ "theta" ] ~docv:"T" ~doc:"Zipf skew (zipf only).")
  in
  let out =
    Arg.(
      required & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Packed binary trace to write.")
  in
  let run dist n seed items theta out =
    if n < 0 then begin
      Format.eprintf "trace synth: -n must be >= 0@.";
      exit 1
    end;
    let stream = stream_of_dist dist ~items ~theta ~n in
    (* Streamed through Packed.Writer: the trace never materializes in
       memory, so N is bounded by disk, not RAM. *)
    let w = Memtrace.Packed.Writer.create out ~length:n in
    Workloads.Gen.iter_accesses ~seed ~n stream (fun ~kind ~gap addr ->
        Memtrace.Packed.Writer.emit w ~kind ~gap addr);
    Memtrace.Packed.Writer.close w;
    Format.fprintf ppf "synthesized %d accesses into %s (%d bytes)@." n out
      (Unix.stat out).Unix.st_size
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Synthesize a traffic-shaped trace straight to a packed binary \
          file, streaming: memory use is constant however large N is.")
    Term.(const run $ dist_arg $ n $ seed $ items $ theta $ out)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Trace tooling: dump a routine's trace (default), pack text traces \
          into the mmappable binary format, inspect trace files, or \
          synthesize huge traces out of core.")
    [ trace_dump_cmd; trace_pack_cmd; trace_info_cmd; trace_synth_cmd ]

let mrc_cmd =
  let file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Trace file (text colcache-trace v1 or packed binary).")
  in
  let line_size =
    Arg.(
      value & opt int 16
      & info [ "line-size" ] ~docv:"BYTES" ~doc:"Cache line size.")
  in
  let sets =
    Arg.(
      value & opt int 32
      & info [ "sets" ] ~docv:"N" ~doc:"Cache sets (power of two).")
  in
  let ways =
    Arg.(
      value & opt int 8
      & info [ "ways" ] ~docv:"W" ~doc:"Largest associativity to report.")
  in
  let sample_rate =
    Arg.(
      value & opt (some float) None
      & info [ "sample-rate" ] ~docv:"R"
          ~doc:
            "SHARDS-style set sampling at rate R in (0, 1]: only sets \
             hashing under R are simulated and the curve is scaled back up. \
             Without this flag the curve is exact.")
  in
  let budget =
    Arg.(
      value & opt (some int) None
      & info [ "budget" ] ~docv:"LINES"
          ~doc:
            "With $(b,--sample-rate): cap on distinct sampled lines; the \
             largest-hash selected sets are evicted (lowering the effective \
             rate) to stay under it.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S" ~doc:"Set-hash seed (sampled mode).")
  in
  let compare =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "With $(b,--sample-rate): also run the exact engine and report \
             the observed per-associativity and mean absolute error.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Shard the stack-distance pass over N worker domains (one set \
             shard each). The curve is byte-identical whatever N is; only \
             the wall-clock time changes.")
  in
  let window =
    Arg.(
      value & opt (some int) None
      & info [ "window" ] ~docv:"W"
          ~doc:
            "Report the rolling miss-ratio curve over (approximately) the \
             last W accesses instead of the whole trace, via the \
             epoch-ring windowed engine.")
  in
  let epochs =
    Arg.(
      value & opt int 8
      & info [ "epochs" ] ~docv:"E"
          ~doc:
            "With $(b,--window): ring granularity; the window retires in \
             W/E-access epochs. W must be a multiple of E.")
  in
  let run file line_size sets ways sample_rate budget seed compare jobs
      window epochs =
    let packed = Memtrace.Trace_file.load_packed ~path:file in
    let exact_mrc =
      if sample_rate = None || compare then begin
        let engine =
          Cache.Stack_dist.of_packed_parallel ~jobs ~line_size ~sets
            ~max_ways:ways packed
        in
        Some (Cache.Stack_dist.mrc engine)
      end
      else None
    in
    match window with
    | Some w ->
        let win =
          Cache.Stack_dist.Windowed.create ~window:w ~epochs ~line_size ~sets
            ~max_ways:ways ()
        in
        Cache.Stack_dist.Windowed.observe_packed win packed;
        let mrc = Cache.Stack_dist.Windowed.mrc_now win in
        Format.fprintf ppf
          "%d accesses, rolling miss-ratio curve over the last %d (window \
           %d, %d epochs of %d, %d retired):@."
          (Memtrace.Packed.length packed)
          (Cache.Stack_dist.Windowed.accesses_in_window win)
          w epochs
          (Cache.Stack_dist.Windowed.epoch_length win)
          (Cache.Stack_dist.Windowed.retired_epochs win);
        for a = 1 to ways do
          Format.fprintf ppf "  %2d way%s  %.6f@." a
            (if a = 1 then " " else "s")
            mrc.(a)
        done
    | None -> (
    match sample_rate with
    | None ->
        let mrc = Option.get exact_mrc in
        Format.fprintf ppf "%d accesses, exact miss-ratio curve:@."
          (Memtrace.Packed.length packed);
        for a = 1 to ways do
          Format.fprintf ppf "  %2d way%s  %.6f@." a
            (if a = 1 then " " else "s")
            mrc.(a)
        done
    | Some rate ->
        let sampled =
          if jobs = 1 then begin
            let e =
              Cache.Stack_dist.Sampled.create ~seed ?budget ~rate ~line_size
                ~sets ~max_ways:ways ()
            in
            Cache.Stack_dist.Sampled.access_packed e packed;
            e
          end
          else
            Cache.Stack_dist.Sampled.of_packed_parallel ~seed ~jobs ~rate
              ~line_size ~sets ~max_ways:ways packed
        in
        let est = Cache.Stack_dist.Sampled.mrc_est sampled in
        Format.fprintf ppf
          "%d accesses, sampled miss-ratio curve (rate %.4f requested, %.4f \
           effective: %d/%d sets, %d accesses sampled%s):@."
          (Memtrace.Packed.length packed)
          rate
          (Cache.Stack_dist.Sampled.effective_rate sampled)
          (Cache.Stack_dist.Sampled.selected_sets sampled)
          sets
          (Cache.Stack_dist.Sampled.sampled_accesses sampled)
          (let ev = Cache.Stack_dist.Sampled.set_evictions sampled in
           if ev = 0 then "" else Printf.sprintf ", %d budget evictions" ev);
        (match exact_mrc with
        | None ->
            for a = 1 to ways do
              Format.fprintf ppf "  %2d way%s  %.6f@." a
                (if a = 1 then " " else "s")
                est.(a)
            done
        | Some mrc ->
            let sum = ref 0. in
            for a = 1 to ways do
              let e = abs_float (est.(a) -. mrc.(a)) in
              sum := !sum +. e;
              Format.fprintf ppf
                "  %2d way%s  est %.6f  exact %.6f  |err| %.6f@." a
                (if a = 1 then " " else "s")
                est.(a) mrc.(a) e
            done;
            Format.fprintf ppf "mean absolute error: %.6f@."
              (!sum /. float_of_int ways)))
  in
  let run_checked file line_size sets ways sample_rate budget seed compare
      jobs window epochs =
    if jobs <= 0 then
      `Error
        ( false,
          Printf.sprintf "--jobs must be a positive domain count, got %d" jobs
        )
    else if jobs > sets then
      `Error
        ( false,
          Printf.sprintf "--jobs exceeds the set count: %d shards for %d sets"
            jobs sets )
    else if jobs > 1 && budget <> None then
      `Error
        ( false,
          "--jobs cannot shard a --budget run: fixed-budget set eviction is \
           order-dependent" )
    else if jobs > 1 && window <> None then
      `Error
        ( false,
          "--jobs cannot shard a --window run: the rolling window is \
           inherently sequential" )
    else
      match window with
      | Some _ when sample_rate <> None ->
          `Error
            ( false,
              "--window is a rolling exact curve; it cannot combine with \
               --sample-rate" )
      | Some w when w <= 0 ->
          `Error
            ( false,
              Printf.sprintf "--window must be a positive access count, got %d"
                w )
      | Some _ when epochs <= 0 ->
          `Error
            ( false,
              Printf.sprintf "--epochs must be a positive epoch count, got %d"
                epochs )
      | Some w when w mod epochs <> 0 ->
          `Error
            ( false,
              Printf.sprintf
                "--window must be a multiple of --epochs: window %d, epochs \
                 %d"
                w epochs )
      | Some _ | None ->
          `Ok
            (run file line_size sets ways sample_rate budget seed compare
               jobs window epochs)
  in
  Cmd.v
    (Cmd.info "mrc"
       ~doc:
         "Miss-ratio curve of a trace file over associativities 1..W, exact \
          (single-pass stack distances, optionally sharded over worker \
          domains with $(b,--jobs)) or SHARDS-sampled ($(b,--sample-rate)), \
          or rolling over the last W accesses ($(b,--window)). Packed \
          binary traces are mmapped, so curves of larger-than-RAM traces \
          compute in bounded memory.")
    Term.(
      ret
        (const run_checked $ file $ line_size $ sets $ ways $ sample_rate
       $ budget $ seed $ compare $ jobs $ window $ epochs))

let validate_cmd =
  let file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"IF program source (see Ir.Parse).")
  in
  let run file =
    match Ir.Parse.program_of_file file with
    | p ->
        let diags = Ir.Lint.check p in
        List.iter
          (fun d -> Format.eprintf "%s: %a@." file Ir.Lint.pp_diagnostic d)
          diags;
        if Ir.Lint.errors diags <> [] then exit 1;
        Format.fprintf ppf "%s: OK (%d variables, %d procedures%s)@." file
          (List.length p.Ir.Ast.vars)
          (List.length p.Ir.Ast.procs)
          (match List.length diags with
          | 0 -> ""
          | n -> Printf.sprintf ", %d lint warning%s" n (if n = 1 then "" else "s"))
    | exception Ir.Parse.Parse_error { line; message } ->
        Format.eprintf "%s:%d: %s@." file line message;
        exit 1
    | exception Ir.Ast.Invalid_program message ->
        Format.eprintf "%s: invalid program: %s@." file message;
        exit 1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Parse and validate an IF program file, then lint it \
          (out-of-bounds constant indices, probabilities outside [0,1], \
          unused variables, zero-weight While bodies). Lint errors fail \
          the exit status; warnings are reported but pass.")
    Term.(const run $ file)

let check_cmd =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed; a seed fully determines the batch.")
  in
  let iters =
    Arg.(
      value & opt int 500
      & info [ "iters" ] ~docv:"K" ~doc:"Number of random scenarios to replay.")
  in
  let max_events =
    Arg.(
      value & opt int 160
      & info [ "max-events" ] ~docv:"N" ~doc:"Upper bound on events per scenario.")
  in
  let bug =
    let bug_conv =
      Arg.enum
        [
          ("mru", Check.Oracle.Mru_instead_of_lru);
          ("ignore-mask", Check.Oracle.Ignore_mask);
          ("skip-writeback", Check.Oracle.Skip_writeback_count);
          ("fast-path", Check.Oracle.Fast_path);
          ("machine-fast-path", Check.Oracle.Machine_fast_path);
          ("mrc", Check.Oracle.Mrc);
          ("sample", Check.Oracle.Sample);
          ("gen", Check.Oracle.Gen);
          ("wcet", Check.Oracle.Wcet);
          ("event", Check.Oracle.Event);
          ("shard", Check.Oracle.Shard);
        ]
    in
    Arg.(
      value & opt (some bug_conv) None
      & info [ "inject-bug" ] ~docv:"BUG"
          ~doc:
            "Plant an intentional defect ($(b,mru), $(b,ignore-mask), \
             $(b,skip-writeback) in the oracle, $(b,fast-path) in the \
             batched real-side driver, $(b,machine-fast-path) in the \
             machine-level batched replay, $(b,mrc) in the stack-distance \
             engine's access feed, $(b,sample) in the sampled mrc \
             estimator's rescale, $(b,gen) in the workload generator's \
             Zipf sampler, $(b,wcet) in the static cache analysis's \
             must-join, $(b,event) in the event core's MSHR-merge path, or \
             $(b,shard) in the sharded stack-distance merge loop) \
             to demonstrate that the harness catches and \
             shrinks it. Exit status is inverted: the run fails if the bug \
             is NOT caught.")
  in
  let replay =
    Arg.(
      value & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay one saved scenario (the format printed for shrunk repros) instead of generating a batch.")
  in
  let fast_path =
    Arg.(
      value & flag
      & info [ "fast-path" ]
          ~doc:
            "With $(b,--replay): drive the real side through the batched \
             access_trace entry point. Repros the soak reports as caught by \
             the fast-path driver only diverge under this flag.")
  in
  let machine_fast_path =
    Arg.(
      value & flag
      & info [ "machine-fast-path" ]
          ~doc:
            "With $(b,--replay): replay the scenario through the \
             machine-level differential (scalar System.access vs batched \
             System.run_packed) instead of the cache-level oracle diff. \
             Repros the soak reports as caught by the machine batched-replay \
             driver only diverge under this flag.")
  in
  let mrc =
    Arg.(
      value & flag
      & info [ "mrc" ]
          ~doc:
            "With $(b,--replay): replay the scenario through the \
             stack-distance differential (single-pass Stack_dist engine vs \
             exact per-associativity LRU Sassoc replays) instead of the \
             cache-level oracle diff. Repros the soak reports as caught by \
             the stack-distance mrc driver only diverge under this flag.")
  in
  let sample =
    Arg.(
      value & flag
      & info [ "sample" ]
          ~doc:
            "With $(b,--replay): replay the scenario through the \
             sampled-vs-exact differential (SHARDS-sampled Stack_dist \
             estimator vs the exact engine, within the error bound) \
             instead of the cache-level oracle diff. Repros the soak \
             reports as caught by the sampled mrc error-bound driver only \
             diverge under this flag.")
  in
  let event =
    Arg.(
      value & flag
      & info [ "event" ]
          ~doc:
            "With $(b,--replay): replay the scenario through the \
             event-core count differential (blocking in-order \
             System.run_packed vs the MSHR/DRAM event core, all functional \
             counts compared) instead of the cache-level oracle diff. \
             Repros the soak reports as caught by the event-core driver \
             only diverge under this flag.")
  in
  let shard =
    Arg.(
      value & flag
      & info [ "shard" ]
          ~doc:
            "With $(b,--replay): replay the scenario through the \
             sharded-vs-serial differential (set-sharded parallel \
             Stack_dist engines, merged, vs the serial engine, every \
             reading compared exactly) instead of the cache-level oracle \
             diff. Repros the soak reports as caught by the \
             sharded-vs-serial driver only diverge under this flag.")
  in
  let run seed iters max_events bug replay fast_path machine_fast_path mrc
      sample event shard =
    match replay with
    | Some path ->
        let ic = open_in path in
        let text =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let sc =
          try Check.Scenario.of_string text
          with Invalid_argument msg ->
            Format.eprintf "%s: %s@." path msg;
            exit 1
        in
        if shard then
          match Check.Shard_diff.run_scenario ?bug sc with
          | Check.Shard_diff.Agree ->
              Format.fprintf ppf
                "%s: sharded and serial engine readings agree@." path
          | Check.Shard_diff.Diverge { step; detail } ->
              Format.fprintf ppf "%s: DIVERGENCE at event %d: %s@." path step
                detail;
              exit 1
        else if event then
          match Check.Event_diff.run_scenario ?bug sc with
          | Check.Event_diff.Agree ->
              Format.fprintf ppf
                "%s: event core and in-order oracle counts agree@." path
          | Check.Event_diff.Diverge { step; detail } ->
              Format.fprintf ppf "%s: DIVERGENCE at event %d: %s@." path step
                detail;
              exit 1
        else if sample then
          match Check.Sample_diff.run_scenario ?bug sc with
          | Check.Sample_diff.Agree ->
              Format.fprintf ppf
                "%s: sampled estimator within the error bound@." path
          | Check.Sample_diff.Diverge { step; detail } ->
              Format.fprintf ppf "%s: DIVERGENCE at event %d: %s@." path step
                detail;
              exit 1
        else if mrc then
          match Check.Mrc_diff.run_scenario ?bug sc with
          | Check.Mrc_diff.Agree ->
              Format.fprintf ppf
                "%s: stack-distance engine and exact LRU replays agree@." path
          | Check.Mrc_diff.Diverge { step; detail } ->
              Format.fprintf ppf "%s: DIVERGENCE at event %d: %s@." path step
                detail;
              exit 1
        else if machine_fast_path then
          match Check.Machine_diff.run_scenario ?bug sc with
          | Check.Machine_diff.Agree ->
              Format.fprintf ppf
                "%s: scalar and batched machine replay agree@." path
          | Check.Machine_diff.Diverge { step; detail } ->
              Format.fprintf ppf "%s: DIVERGENCE at event %d: %s@." path step
                detail;
              exit 1
        else (
          match Check.Diff.run_scenario ?bug ~fast_path sc with
          | Check.Diff.Agree -> Format.fprintf ppf "%s: simulators and oracle agree@." path
          | Check.Diff.Diverge d ->
              Format.fprintf ppf "%s: DIVERGENCE %a@." path Check.Diff.pp_divergence d;
              exit 1)
    | None -> (
        match Check.Diff.soak ?bug ~max_events ~seed ~iters () with
        | Ok summary ->
            Format.fprintf ppf "check ok: %a@." Check.Diff.pp_summary summary;
            if bug <> None then begin
              Format.eprintf
                "check: injected bug %s was NOT caught in %d iterations@."
                (Check.Oracle.bug_to_string (Option.get bug))
                iters;
              exit 1
            end
        | Error (failure, summary) ->
            if bug <> None then
              Format.fprintf ppf
                "check ok: injected bug %s caught and shrunk@.%a@.(%a)@."
                (Check.Oracle.bug_to_string (Option.get bug))
                Check.Diff.pp_failure failure Check.Diff.pp_summary summary
            else begin
              Format.eprintf "check FAILED (seed %d): %a@.(%a)@." seed
                Check.Diff.pp_failure failure Check.Diff.pp_summary summary;
              exit 1
            end)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Differential conformance soak: replay random column-cache + \
          TLB/tint scenarios through the real simulators and through a \
          naive, obviously-correct oracle, comparing every access and the \
          final state; divergences are shrunk to a minimal replayable \
          repro.")
    Term.(
      const run $ seed $ iters $ max_events $ bug $ replay $ fast_path
      $ machine_fast_path $ mrc $ sample $ event $ shard)

let runfile_cmd =
  let file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"IF program source (see Ir.Parse).")
  in
  let proc =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"PROC" ~doc:"Procedure to lay out and run.")
  in
  let run file proc scratch meth optimize =
    let program = Ir.Parse.program_of_file file in
    let program = if optimize then Ir.Optimize.optimize program else program in
    let t =
      Colcache.Pipeline.make
        ~cache:(Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ())
        program
    in
    let stats, part =
      Colcache.Pipeline.run_partitioned t ~proc ~scratchpad_columns:scratch
        ~meth
    in
    Format.fprintf ppf "%a@.@.%a@." Layout.Partition.pp part
      Machine.Run_stats.pp stats
  in
  Cmd.v
    (Cmd.info "runfile"
       ~doc:
         "Parse an IF program from a file, lay one of its procedures out on           the 2 KB column cache, and simulate it (data zero-initialised).")
    Term.(const run $ file $ proc $ scratch_arg $ meth_arg $ optimize_arg)

let wcet_cmd =
  let file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"IF program source (see Ir.Parse).")
  in
  let proc =
    Arg.(
      value & opt (some string) None
      & info [ "proc" ] ~docv:"PROC"
          ~doc:"Bound only PROC (default: every procedure).")
  in
  let line_size =
    Arg.(
      value & opt int 16
      & info [ "line-size" ] ~docv:"BYTES" ~doc:"Cache line size.")
  in
  let sets =
    Arg.(
      value & opt int 16
      & info [ "sets" ] ~docv:"N" ~doc:"Cache sets (power of two).")
  in
  let ways =
    Arg.(
      value & opt int 4
      & info [ "ways" ] ~docv:"W"
          ~doc:
            "Ways (columns). Without $(b,--alloc), each procedure is \
             bounded on a private W-way cache; with it, W is the total \
             column budget split between the procedures.")
  in
  let alloc =
    Arg.(
      value
      & opt (some (enum [ ("mrc", `Mrc); ("wcet", `Wcet); ("equal", `Equal) ]))
          None
      & info [ "alloc" ] ~docv:"POLICY"
          ~doc:
            "Treat the procedures as concurrent tasks and split the \
             $(b,--ways) columns between them: $(b,wcet) minimizes the \
             largest statically proven per-task miss bound, $(b,mrc) \
             follows measured miss-ratio curves (average-optimal, \
             worst-case-blind), $(b,equal) splits evenly.")
  in
  let compare =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "Also interpret each procedure (data zero-initialised) and \
             replay its trace against an isolated cache of the bounded \
             geometry, reporting observed misses next to the static bound.")
  in
  let run file proc line_size sets ways alloc compare =
    let program =
      match Ir.Parse.program_of_file file with
      | p -> p
      | exception Ir.Parse.Parse_error { line; message } ->
          Format.eprintf "%s:%d: %s@." file line message;
          exit 1
      | exception Ir.Ast.Invalid_program message ->
          Format.eprintf "%s: invalid program: %s@." file message;
          exit 1
    in
    let procs =
      match proc with
      | Some p ->
          if
            not
              (List.exists
                 (fun pr -> pr.Ir.Ast.proc_name = p)
                 program.Ir.Ast.procs)
          then begin
            Format.eprintf "%s: no procedure %S@." file p;
            exit 1
          end;
          [ p ]
      | None -> List.map (fun pr -> pr.Ir.Ast.proc_name) program.Ir.Ast.procs
    in
    let analyze_at ~ways name =
      Ir.Cache_analysis.analyze
        { Ir.Cache_analysis.line_size; sets; ways }
        program ~proc:name
    in
    let layout = Ir.Interp.sequential_layout program in
    (* a 0-column task has no cache at all: every access misses *)
    let observed name ~ways =
      let trace = Ir.Interp.trace_of program ~proc:name ~layout in
      if ways = 0 then Memtrace.Trace.length trace
      else begin
        let cache =
          Cache.Sassoc.create
            (Cache.Sassoc.config ~line_size
               ~size_bytes:(line_size * sets * ways)
               ~ways ())
        in
        Cache.Sassoc.access_trace cache trace;
        (Cache.Sassoc.stats cache).Cache.Stats.misses
      end
    in
    let report_one ~ways name =
      let t = analyze_at ~ways name in
      Format.fprintf ppf "%a@." Ir.Cache_analysis.pp t;
      (match
         ( t.Ir.Cache_analysis.wcet_misses,
           t.Ir.Cache_analysis.accesses,
           t.Ir.Cache_analysis.alu )
       with
      | Some misses, Some accesses, Some alu ->
          let timing = Machine.Timing.default in
          let writebacks =
            Option.value ~default:misses (Ir.Cache_analysis.writeback_bound t)
          in
          Format.fprintf ppf
            "worst-case cycles (hit %d, miss %d, writeback %d): %d@."
            timing.Machine.Timing.hit_cycles
            timing.Machine.Timing.miss_penalty
            timing.Machine.Timing.writeback_penalty
            (Machine.Timing.wcet_cycle_bound timing ~alu ~accesses ~misses
               ~writebacks ~tlb_misses:0)
      | _ ->
          Format.fprintf ppf
            "worst-case cycles: unbounded (unbounded misses or accesses)@.");
      if compare then
        Format.fprintf ppf "observed in replay: %d misses (bound %s)@."
          (observed name ~ways)
          (match t.Ir.Cache_analysis.wcet_misses with
          | Some b -> string_of_int b
          | None -> "unbounded")
    in
    match alloc with
    | None ->
        List.iteri
          (fun i name ->
            if i > 0 then Format.fprintf ppf "@.";
            report_one ~ways name)
          procs
    | Some policy ->
        let n = List.length procs in
        if n > ways then begin
          Format.eprintf
            "wcet: %d procedures but only %d columns to split (--ways)@." n
            ways;
          exit 1
        end;
        let curves =
          List.map
            (fun name ->
              ( name,
                Array.init (ways + 1) (fun c ->
                    match
                      (analyze_at ~ways:c name).Ir.Cache_analysis.wcet_misses
                    with
                    | Some b -> float_of_int b
                    | None -> infinity) ))
            procs
        in
        let allocation =
          match policy with
          | `Equal -> List.map (fun name -> (name, ways / n)) procs
          | `Wcet -> Layout.Wcet_alloc.allocate ~columns:ways curves
          | `Mrc ->
              let miss_curves =
                List.map
                  (fun name ->
                    let sd =
                      Cache.Stack_dist.create ~line_size ~sets ~max_ways:ways
                        ()
                    in
                    Memtrace.Trace.iter
                      (fun a ->
                        Cache.Stack_dist.access sd ~kind:a.Memtrace.Access.kind
                          a.Memtrace.Access.addr)
                      (Ir.Interp.trace_of program ~proc:name ~layout);
                    (name, Cache.Stack_dist.miss_curve sd))
                  procs
              in
              Layout.Mrc_alloc.allocate ~columns:ways miss_curves
        in
        Format.fprintf ppf "allocation (%s, %d columns):@."
          (match policy with
          | `Mrc -> "mrc"
          | `Wcet -> "wcet"
          | `Equal -> "equal")
          ways;
        List.iter
          (fun (name, cols) ->
            let bound = (List.assoc name curves).(cols) in
            Format.fprintf ppf "  %-16s %d column%s  bound %s%s@." name cols
              (if cols = 1 then " " else "s")
              (if Float.is_finite bound then
                 string_of_int (int_of_float bound)
               else "unbounded")
              (if compare then
                 Printf.sprintf "  observed %d" (observed name ~ways:cols)
               else ""))
          allocation;
        let worst =
          List.fold_left
            (fun acc (name, _) ->
              Float.max acc (Layout.Wcet_alloc.bound_of curves allocation name))
            neg_infinity allocation
        in
        Format.fprintf ppf "largest per-task bound: %s@."
          (if Float.is_finite worst then string_of_int (int_of_float worst)
           else "unbounded")
  in
  Cmd.v
    (Cmd.info "wcet"
       ~doc:
         "Abstract-interpretation cache analysis of an IF program: per-site \
          must/may/persistence classifications, sound worst-case miss and \
          cycle bounds per procedure, and optionally ($(b,--alloc)) a \
          WCET-aware split of the cache columns across the procedures.")
    Term.(
      const run $ file $ proc $ line_size $ sets $ ways $ alloc $ compare)

let replay_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Trace file (colcache-trace v1).")
  in
  let size =
    Arg.(
      value & opt int 2048
      & info [ "size" ] ~docv:"BYTES" ~doc:"Cache size in bytes.")
  in
  let ways =
    Arg.(value & opt int 4 & info [ "ways" ] ~docv:"N" ~doc:"Columns (ways).")
  in
  let events =
    Arg.(
      value & flag
      & info [ "events" ]
          ~doc:
            "Replay through the event-driven timing core — MSHRs with \
             $(b,--mlp) outstanding misses and a banked open-row DRAM model \
             ($(b,--banks)) — instead of the blocking in-order path. Every \
             functional count is identical either way; only the cycle \
             accounting changes.")
  in
  let mlp =
    Arg.(
      value & opt int 4
      & info [ "mlp" ] ~docv:"N"
          ~doc:
            "MSHR slots (outstanding misses) for $(b,--events); the core \
             stalls on a miss only when all N are busy.")
  in
  let banks =
    Arg.(
      value & opt int 4
      & info [ "banks" ] ~docv:"N"
          ~doc:"DRAM banks (one open row each) for $(b,--events).")
  in
  let run file size ways events mlp banks =
    if mlp < 1 then
      `Error
        (false, Printf.sprintf "--mlp must be a positive MSHR count, got %d" mlp)
    else if banks < 1 then
      `Error
        ( false,
          Printf.sprintf "--banks must be a positive DRAM bank count, got %d"
            banks )
    else begin
      (* load_packed mmaps binary traces in place, so replays of traces far
         larger than RAM stream through the batched machine path. *)
      let packed = Memtrace.Trace_file.load_packed ~path:file in
      let cache = Cache.Sassoc.config ~line_size:16 ~size_bytes:size ~ways () in
      let system = Machine.System.create (Machine.System.config cache) in
      let stats =
        if events then
          let events =
            Machine.Event.config ~mlp ~dram:(Machine.Dram.config ~banks ()) ()
          in
          Machine.System.run_packed_events system ~events packed
        else Machine.System.run_packed system packed
      in
      `Ok (Format.fprintf ppf "%a@." Machine.Run_stats.pp stats)
    end
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a saved trace (text or packed binary) against a chosen \
          cache geometry, through the blocking in-order core or \
          ($(b,--events)) the event-driven MSHR/DRAM core.")
    Term.(ret (const run $ file $ size $ ways $ events $ mlp $ banks))

let multitask_cmd =
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the epoch scheduler. The printed outcome is \
             byte-identical whatever N is; only the wall-clock time changes.")
  in
  let run jobs =
    if jobs < 1 then
      `Error
        ( false,
          Printf.sprintf "--jobs must be a positive domain count, got %d" jobs
        )
    else if jobs > Colcache.Experiments.Multitask_domains.task_count then
      `Error
        ( false,
          Printf.sprintf
            "--jobs exceeds the task count: %d worker domains for %d tasks"
            jobs Colcache.Experiments.Multitask_domains.task_count )
    else
      `Ok
        (Format.fprintf ppf "%a"
           Colcache.Experiments.Multitask_domains.print
           (Colcache.Experiments.Multitask_domains.run ~jobs ()))
  in
  Cmd.v
    (Cmd.info "multitask"
       ~doc:
         "Epoch-synchronized multitask replay: one worker domain per job \
          slot, private per-task systems over exclusive column partitions, \
          blocking vs event-driven cycle accounting and the gang-timeline \
          makespan.")
    Term.(ret (const run $ jobs))

let gen_cmd =
  let dist =
    Arg.(
      value
      & opt (enum [ ("zipf", `Zipf); ("uniform", `Uniform); ("scan", `Scan);
                    ("hotset", `Hotset); ("kv", `Kv) ])
          `Zipf
      & info [ "dist" ] ~docv:"DIST"
          ~doc:
            "Distribution: $(b,zipf), $(b,uniform), $(b,scan), $(b,hotset) \
             (drifting hot window) or $(b,kv) (synthetic KV-store requests: \
             hash probe + value walk).")
  in
  let n =
    Arg.(
      value & opt int 4096
      & info [ "n" ] ~docv:"N"
          ~doc:"Accesses to emit ($(b,kv): requests to emit).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"S"
          ~doc:"PRNG seed; equal seeds give byte-identical traces.")
  in
  let items =
    Arg.(
      value & opt int 256
      & info [ "items" ] ~docv:"I"
          ~doc:"Rank-space size ($(b,kv): number of keys).")
  in
  let theta =
    Arg.(
      value & opt float 0.99
      & info [ "theta" ] ~docv:"T" ~doc:"Zipf skew (zipf and kv only).")
  in
  let apr =
    Arg.(
      value & opt int 8
      & info [ "accesses-per-request" ] ~docv:"K"
          ~doc:"Request window size for latency accounting (not $(b,kv), \
                whose requests are structural).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Save the trace to FILE (colcache-trace v1 format).")
  in
  let simulate =
    Arg.(
      value & flag
      & info [ "simulate" ]
          ~doc:
            "Replay the trace on the 2 KB 4-way machine model and report \
             aggregate statistics plus per-request latency percentiles.")
  in
  let run dist n seed items theta apr out simulate =
    let trace =
      match dist with
      | `Kv ->
          Workloads.Gen.kv ~theta ~seed ~requests:n ~keys:items
            ~buckets:(max 1 (items / 4)) ~value_lines:4 ()
      | (`Zipf | `Uniform | `Scan | `Hotset) as d ->
          let stream =
            match d with
            | `Zipf -> Workloads.Gen.Zipf { items; theta }
            | `Uniform -> Workloads.Gen.Uniform { items }
            | `Scan -> Workloads.Gen.Scan { items }
            | `Hotset ->
                Workloads.Gen.Hot_set
                  {
                    items;
                    hot_items = max 1 (items / 8);
                    hot_prob = 0.9;
                    drift_every = max 1 (n / 8);
                  }
          in
          Workloads.Gen.emit ~accesses_per_request:apr ~seed ~n stream
    in
    Format.fprintf ppf
      "%d accesses in %d requests, addresses [%d, %d), %d instructions@."
      (Memtrace.Packed.length trace.Workloads.Gen.packed)
      (Array.length trace.Workloads.Gen.requests)
      trace.Workloads.Gen.base trace.Workloads.Gen.limit
      (Memtrace.Packed.instructions trace.Workloads.Gen.packed);
    (match out with
    | None -> ()
    | Some path ->
        Memtrace.Trace_file.save ~path
          (Memtrace.Packed.to_trace trace.Workloads.Gen.packed);
        Format.fprintf ppf "saved to %s@." path);
    if simulate then begin
      let cache = Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 () in
      let system = Machine.System.create (Machine.System.config cache) in
      let stats =
        Machine.System.run_packed_requests system trace.Workloads.Gen.packed
          ~requests:trace.Workloads.Gen.requests
      in
      Format.fprintf ppf "@.%a@." Machine.Run_stats.pp stats
    end
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Emit a traffic-shaped workload trace (Zipf, uniform, scan, \
          drifting hot set, or synthetic KV-store requests) from a seed; \
          optionally save it or replay it with per-request tail-latency \
          accounting.")
    Term.(const run $ dist $ n $ seed $ items $ theta $ apr $ out $ simulate)

let main_cmd =
  Cmd.group
    (Cmd.info "colcache" ~version:"1.0.0"
       ~doc:
         "Application-specific memory management with software-controlled \
          (column) caches — reproduction of Chiou et al., DAC 2000.")
    [
      fig3_cmd; fig4_cmd; fig4d_cmd; fig5_cmd; ablations_cmd; all_cmd;
      export_cmd;
      dynamic_cmd; layout_cmd; simulate_cmd; trace_cmd; replay_cmd;
      multitask_cmd; mrc_cmd;
      check_cmd; validate_cmd; runfile_cmd; wcet_cmd; gen_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
