(* Protecting a critical job in a multitasking mix (paper Section 4.2).

   Three LZ77 compression jobs share one processor and one 16 KB cache. Job
   A is latency-critical. With a standard cache its CPI depends on the
   scheduler's time quantum — B and C evict its lines at a rate A cannot
   control. Giving A six of the eight columns makes its CPI flat across
   three orders of magnitude of quantum.

   Run with: dune exec examples/multitask_gzip.exe *)

let quanta = [ 16; 256; 4096; 65536; 1048576 ]

let jobs () =
  List.map
    (fun (name, seed, base) ->
      {
        Sched.Round_robin.name;
        trace = Workloads.Lz77.trace ~seed ~input_len:8192 ~base ();
      })
    [ ("A", 1, 0x000000); ("B", 2, 0x100000); ("C", 3, 0x200000) ]

let cpi_of_job_a ~mapped ~quantum =
  let cache = Cache.Sassoc.config ~line_size:16 ~size_bytes:16384 ~ways:8 () in
  let timing =
    { Machine.Timing.default with Machine.Timing.miss_penalty = 50 }
  in
  let system =
    Machine.System.create (Machine.System.config ~timing ~page_size:1024 cache)
  in
  if mapped then begin
    (* one retint of job A's address space + two tint-table writes: that is
       the entire cost of protecting the critical job *)
    let mapping = Machine.System.mapping system in
    let job_a = Vm.Tint.make "jobA" in
    ignore (Vm.Mapping.retint_region mapping ~base:0 ~size:0x100000 job_a);
    Vm.Mapping.remap_tint mapping job_a (Cache.Bitmask.range ~lo:0 ~hi:5);
    Vm.Mapping.remap_tint mapping Vm.Tint.default
      (Cache.Bitmask.range ~lo:6 ~hi:7)
  end;
  let outcome = Sched.Round_robin.run ~system ~quantum (jobs ()) in
  match Sched.Round_robin.find_job outcome "A" with
  | Some s -> Sched.Round_robin.cpi s
  | None -> assert false

let () =
  Format.printf "job A footprint: %d bytes; cache: 16384 bytes@.@."
    Workloads.Lz77.footprint_bytes;
  Format.printf "%-10s %12s %12s@." "quantum" "standard" "mapped";
  let spread points =
    List.fold_left max 0. points -. List.fold_left min infinity points
  in
  let std_points = ref [] and mapped_points = ref [] in
  List.iter
    (fun quantum ->
      let std = cpi_of_job_a ~mapped:false ~quantum in
      let mapped = cpi_of_job_a ~mapped:true ~quantum in
      std_points := std :: !std_points;
      mapped_points := mapped :: !mapped_points;
      Format.printf "%-10d %12.3f %12.3f@." quantum std mapped)
    quanta;
  Format.printf
    "@.CPI spread across quanta — standard: %.3f, mapped: %.3f@."
    (spread !std_points) (spread !mapped_points);
  Format.printf
    "The mapped job is both faster at small quanta and far more predictable.@."
