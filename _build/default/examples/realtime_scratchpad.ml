(* Columns as scratchpad for real-time predictability (paper Section 2.3).

   A FIR filter's coefficient table is the classic real-time resident: it is
   read on every tap of every sample, and a deadline analysis needs its
   access latency to be a constant, not a distribution. We pin it into one
   column (exclusive mapping + preload) and verify the strongest property a
   scratchpad offers: ZERO misses on the pinned region — under arbitrary
   interference — so every access takes exactly the same time.

   Run with: dune exec examples/realtime_scratchpad.exe *)

let () =
  let cache = Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 () in
  let program = Workloads.Kernels.fir ~taps:32 ~samples:512 in
  let t =
    Colcache.Pipeline.make ~init:Workloads.Kernels.init ~cache program
  in
  let trace = Colcache.Pipeline.trace_of t ~proc:"fir" in

  (* Interference: a co-resident DMA-like stream hammering memory. *)
  let noise =
    Memtrace.Synthetic.uniform_random ~seed:7 ~base:0x40000 ~span:65536
      ~count:30_000 ()
  in
  let mixed = Memtrace.Synthetic.interleave [ trace; noise ] ~quantum:16 in

  let run_with ~pinned =
    let system = Colcache.Pipeline.fresh_system t in
    if pinned then begin
      (* force the coefficient table into its own scratchpad column and keep
         every other tint out of that column *)
      let base = Layout.Address_map.base_of t.Colcache.Pipeline.address_map "coeffs" in
      Machine.System.pin_region system ~base ~size:(32 * 4)
        ~mask:(Cache.Bitmask.singleton 0)
        ~tint:(Vm.Tint.make "coeffs");
      Vm.Mapping.remap_tint
        (Machine.System.mapping system)
        Vm.Tint.default
        (Cache.Bitmask.of_list [ 1; 2; 3 ])
    end;
    let coeff_misses = ref 0 and coeff_accesses = ref 0 in
    let cache_stats = Cache.Sassoc.stats (Machine.System.cache system) in
    Memtrace.Trace.iter
      (fun a ->
        let before = cache_stats.Cache.Stats.misses in
        ignore (Machine.System.access system a);
        if a.Memtrace.Access.var = Some "coeffs" then begin
          incr coeff_accesses;
          coeff_misses := !coeff_misses + cache_stats.Cache.Stats.misses - before
        end)
      mixed;
    (!coeff_accesses, !coeff_misses)
  in

  let accesses, misses_std = run_with ~pinned:false in
  let _, misses_pinned = run_with ~pinned:true in
  Format.printf "coefficient table: %d accesses under heavy interference@." accesses;
  Format.printf "  standard cache:  %d misses (latency varies)@." misses_std;
  Format.printf "  pinned column:   %d misses (every access identical)@."
    misses_pinned;
  assert (misses_pinned = 0);
  Format.printf
    "@.The pinned region is provably miss-free: the worst-case execution@.\
     time of the filter loop no longer depends on what else is running.@."
