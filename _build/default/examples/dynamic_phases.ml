(* Dynamic repartitioning across program phases (paper Section 3.2).

   The MPEG application runs dequant, plus and idct in sequence, and the
   best scratchpad/cache split differs per routine. A column cache changes
   its mind between phases for the price of a few tint-table writes; this
   example shows the schedule, what each transition actually costs, and how
   close the composed run gets to the sum of the per-routine optima.

   Run with: dune exec examples/dynamic_phases.exe *)

let () =
  let cache = Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 () in
  let t =
    Colcache.Pipeline.make ~init:Workloads.Mpeg.init ~cache
      Workloads.Mpeg.program
  in
  let procs = Workloads.Mpeg.routines in
  let meth = Colcache.Pipeline.Profile_based in

  (* Per-routine optima, each measured on its own fresh machine. *)
  Format.printf "== per-routine best splits ==@.";
  let sum_best =
    List.fold_left
      (fun acc proc ->
        let p, stats =
          Colcache.Pipeline.best_split ~allow_uncached:false t ~proc ~meth
        in
        Format.printf "  %-8s best with %d scratchpad column(s): %7d cycles@."
          proc p stats.Machine.Run_stats.cycles;
        acc + stats.Machine.Run_stats.cycles)
      0 procs
  in

  (* The composed dynamic run: one machine, remaps at phase boundaries. *)
  let stats, transitions = Colcache.Pipeline.run_dynamic_detailed t ~procs ~meth in
  Format.printf "@.== phase transitions ==@.";
  List.iter
    (fun tr -> Format.printf "%a@." Layout.Dynamic.pp_transition tr)
    transitions;

  let total_table_writes =
    List.fold_left
      (fun acc tr -> acc + tr.Layout.Dynamic.tint_table_writes)
      0 transitions
  in
  Format.printf "@.== composed run ==@.";
  Format.printf "dynamic total:            %d cycles@." stats.Machine.Run_stats.cycles;
  Format.printf "sum of isolated optima:   %d cycles@." sum_best;
  Format.printf "overhead of composing:    %.2f%%@."
    (100.
    *. (float_of_int (stats.Machine.Run_stats.cycles - sum_best)
       /. float_of_int sum_best));
  Format.printf
    "reconfiguration paid for the whole schedule: %d tint-table writes@."
    total_table_writes;

  (* Contrast with the best you can do without repartitioning. *)
  let best_static =
    List.fold_left
      (fun acc p ->
        min acc
          (Colcache.Pipeline.run_static_app t ~procs ~scratchpad_columns:p ~meth)
            .Machine.Run_stats.cycles)
      max_int [ 0; 1; 2; 3; 4 ]
  in
  Format.printf "@.best single static partition: %d cycles (%.1f%% slower)@."
    best_static
    (100.
    *. (float_of_int (best_static - stats.Machine.Run_stats.cycles)
       /. float_of_int stats.Machine.Run_stats.cycles))
