(* The full compiler pipeline on an MPEG routine, step by step:

     IF program  --interpret-->  tagged memory trace
                 --profile--->   lifetimes + conflict weights
                 --color----->   variable -> column assignment
                 --configure->   tints, tint table, preloads
                 --simulate-->   cycle counts

   Run with: dune exec examples/mpeg_partition.exe *)

let () =
  let cache = Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 () in
  let t =
    Colcache.Pipeline.make ~init:Workloads.Mpeg.init ~cache
      Workloads.Mpeg.program
  in
  let proc = "dequant" in

  (* 1. Profile: run the routine and extract per-variable lifetimes. *)
  let trace = Colcache.Pipeline.trace_of t ~proc in
  Format.printf "== profile of %s ==@." proc;
  Format.printf "%d accesses over %d instructions@.@." (Memtrace.Trace.length trace)
    (Memtrace.Trace.instructions trace);
  List.iter
    (fun (var, s) ->
      Format.printf "  %-12s %a@." var Profile.Lifetime.pp_summary s)
    (Profile.Lifetime.of_trace trace);

  (* 2. Lay the routine out for every scratchpad/cache split and watch the
        placement and the cycle count move. *)
  Format.printf "@.== layouts and cycle counts ==@.";
  List.iter
    (fun scratchpad_columns ->
      let stats, part =
        Colcache.Pipeline.run_partitioned t ~proc ~scratchpad_columns
          ~meth:Colcache.Pipeline.Profile_based
      in
      Format.printf "@.--- %d scratchpad / %d cache columns: %d cycles ---@."
        scratchpad_columns
        (4 - scratchpad_columns)
        stats.Machine.Run_stats.cycles;
      Format.printf "%a@." Layout.Partition.pp part)
    [ 0; 2; 4 ];

  (* 3. The whole point: the best split is discovered automatically. *)
  let best_p, best =
    Colcache.Pipeline.best_split t ~proc ~meth:Colcache.Pipeline.Profile_based
  in
  Format.printf
    "@.best split for %s: %d scratchpad column(s) at %d cycles (CPI %.3f)@."
    proc best_p best.Machine.Run_stats.cycles
    (Machine.Run_stats.cpi best)
