examples/realtime_scratchpad.mli:
