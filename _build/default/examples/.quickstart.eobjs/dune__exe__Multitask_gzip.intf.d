examples/multitask_gzip.mli:
