examples/multitask_gzip.ml: Cache Format List Machine Sched Vm Workloads
