examples/dynamic_phases.ml: Cache Colcache Format Layout List Machine Workloads
