examples/quickstart.mli:
