examples/dynamic_phases.mli:
