examples/quickstart.ml: Cache Format Memtrace
