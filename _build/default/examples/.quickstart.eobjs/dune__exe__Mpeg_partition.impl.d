examples/mpeg_partition.ml: Cache Colcache Format Layout List Machine Memtrace Profile Workloads
