examples/realtime_scratchpad.ml: Cache Colcache Format Layout Machine Memtrace Vm Workloads
