examples/mpeg_partition.mli:
