(* Quickstart: the column cache in thirty lines.

   Two data streams share a small cache. Stream A re-walks a buffer that
   fits in one column; stream B sweeps a large array and, in a standard
   cache, keeps flushing A's buffer out. Mapping the two streams to
   disjoint columns removes the interference without touching the code that
   generates the accesses.

   Run with: dune exec examples/quickstart.exe *)

let cache_config = Cache.Sassoc.config ~line_size:16 ~size_bytes:1024 ~ways:4 ()
let column_bytes = Cache.Sassoc.column_size_bytes cache_config

(* Stream A: a hot buffer exactly one column big. Stream B: a streaming
   sweep four times as fast. *)
let interleaved_trace =
  let b = Memtrace.Trace.Builder.create () in
  for i = 0 to 20_000 do
    Memtrace.Trace.Builder.emit b ~var:"hot" (i * 16 mod column_bytes);
    for j = 0 to 3 do
      Memtrace.Trace.Builder.emit b ~var:"stream"
        (0x100000 + (((4 * i) + j) * 16))
    done
  done;
  Memtrace.Trace.Builder.build b

(* Hit rate of the hot buffer's own accesses under a given mapping. *)
let hot_hit_rate_of mask_of =
  let cc = Cache.Column_cache.create cache_config ~mask_of in
  let hits = ref 0 and total = ref 0 in
  Memtrace.Trace.iter
    (fun a ->
      let r = Cache.Column_cache.access cc a in
      if a.Memtrace.Access.var = Some "hot" then begin
        incr total;
        match r with
        | Cache.Sassoc.Hit _ -> incr hits
        | Cache.Sassoc.Miss _ -> ()
      end)
    interleaved_trace;
  float_of_int !hits /. float_of_int !total

let () =
  let shared = hot_hit_rate_of (fun _ -> Cache.Bitmask.full ~n:4) in
  let partitioned =
    (* the hot buffer gets column 0 to itself; the stream gets the rest *)
    hot_hit_rate_of (fun addr ->
        if addr < column_bytes then Cache.Bitmask.singleton 0
        else Cache.Bitmask.of_list [ 1; 2; 3 ])
  in
  Format.printf "hot buffer, standard shared cache: %5.1f%% hits@."
    (100. *. shared);
  Format.printf "hot buffer, column-partitioned:    %5.1f%% hits@."
    (100. *. partitioned);
  Format.printf
    "@.The partitioned cache protects the hot buffer from the streaming@.\
     sweep: same hardware, one software mapping change.@."
