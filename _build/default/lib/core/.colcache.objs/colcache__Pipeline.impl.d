lib/core/pipeline.ml: Cache Hashtbl Ir Layout List Machine Memtrace Printf Profile
