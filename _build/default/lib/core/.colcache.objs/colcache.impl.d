lib/core/colcache.ml: Cache Coloring Csv_export Experiments Ir Layout Machine Memtrace Pipeline Profile Sched Vm Workloads
