lib/core/csv_export.ml: Experiments Filename Fun List Printf String Sys
