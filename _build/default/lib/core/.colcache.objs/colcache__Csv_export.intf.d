lib/core/csv_export.mli:
