lib/core/pipeline.mli: Cache Ir Layout Machine Memtrace Profile
