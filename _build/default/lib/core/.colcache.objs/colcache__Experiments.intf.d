lib/core/experiments.mli: Format Pipeline
