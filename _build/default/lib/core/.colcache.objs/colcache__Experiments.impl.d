lib/core/experiments.ml: Cache Format Ir Layout List Machine Memtrace Pipeline Printf Profile Sched Vm Workloads
