lib/sched/round_robin.mli: Machine Memtrace
