lib/sched/round_robin.ml: Array Cache List Machine Memtrace
