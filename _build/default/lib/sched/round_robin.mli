(** Round-robin multitasking over memory traces (paper Section 4.2).

    Jobs take turns on one simulated processor; a context switch happens
    every [quantum] instructions (the paper's x-axis, swept from 1 to 1M).
    The cache is physically shared, so with a standard mapping each job's
    lines are evicted by the others at a rate that depends on the quantum —
    the effect column mapping removes for the protected job.

    Context switches charge a fixed cycle cost and can optionally flush the
    TLB (an untagged TLB would require it; the default models an
    ASID-tagged TLB, so the cache-interference effect the paper plots is
    isolated from TLB noise). Cache contents always persist across
    switches. *)

type job = {
  name : string;
  trace : Memtrace.Trace.t;
}

type job_stats = {
  job : string;
  instructions : int;
  cycles : int;
  memory_accesses : int;
  misses : int;
  slices : int;  (** scheduling slices the job received *)
}

val cpi : job_stats -> float

type outcome = {
  per_job : job_stats list;
  switches : int;
  total_cycles : int;
}

val run :
  ?flush_tlb_on_switch:bool ->
  ?switch_cycles:int ->
  system:Machine.System.t ->
  quantum:int ->
  job list ->
  outcome
(** Defaults: TLB not flushed (tagged entries), [switch_cycles = 50]. [quantum]
    must be positive; it is measured in instructions ([gap]s included). Jobs
    whose traces are exhausted drop out of the rotation; the run ends when
    all are done. *)

val find_job : outcome -> string -> job_stats option
