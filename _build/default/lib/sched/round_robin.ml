type job = {
  name : string;
  trace : Memtrace.Trace.t;
}

type job_stats = {
  job : string;
  instructions : int;
  cycles : int;
  memory_accesses : int;
  misses : int;
  slices : int;
}

let cpi s =
  if s.instructions = 0 then 0.
  else float_of_int s.cycles /. float_of_int s.instructions

type outcome = {
  per_job : job_stats list;
  switches : int;
  total_cycles : int;
}

type running = {
  def : job;
  mutable pos : int;
  mutable instructions : int;
  mutable cycles : int;
  mutable memory_accesses : int;
  mutable misses : int;
  mutable slices : int;
}

let run ?(flush_tlb_on_switch = false) ?(switch_cycles = 50) ~system ~quantum
    jobs =
  if quantum <= 0 then invalid_arg "Round_robin.run: quantum must be positive";
  if jobs = [] then invalid_arg "Round_robin.run: no jobs";
  let running =
    List.map
      (fun def ->
        {
          def;
          pos = 0;
          instructions = 0;
          cycles = 0;
          memory_accesses = 0;
          misses = 0;
          slices = 0;
        })
      jobs
  in
  let arr = Array.of_list running in
  let n = Array.length arr in
  let done_ j = j.pos >= Memtrace.Trace.length j.def.trace in
  let all_done () = Array.for_all done_ arr in
  let switches = ref 0 in
  let total_cycles = ref 0 in
  let cache_stats = Cache.Sassoc.stats (Machine.System.cache system) in
  let turn = ref 0 in
  let last_job = ref (-1) in
  while not (all_done ()) do
    let idx = !turn mod n in
    let j = arr.(idx) in
    incr turn;
    if not (done_ j) then begin
      j.slices <- j.slices + 1;
      (* A switch happens when a different job gets the processor; its cost
         is charged to system time, not to the incoming job. *)
      if !last_job >= 0 && !last_job <> idx then begin
        incr switches;
        if flush_tlb_on_switch then Machine.System.flush_tlb system;
        total_cycles := !total_cycles + switch_cycles
      end;
      last_job := idx;
      let slice_insns = ref 0 in
      while (not (done_ j)) && !slice_insns < quantum do
        let a = Memtrace.Trace.get j.def.trace j.pos in
        let misses_before = cache_stats.Cache.Stats.misses in
        let c = Machine.System.access system a in
        j.pos <- j.pos + 1;
        let insns = Memtrace.Access.instructions a in
        slice_insns := !slice_insns + insns;
        j.instructions <- j.instructions + insns;
        j.cycles <- j.cycles + c;
        j.memory_accesses <- j.memory_accesses + 1;
        j.misses <-
          j.misses + (cache_stats.Cache.Stats.misses - misses_before);
        total_cycles := !total_cycles + c
      done
    end
  done;
  {
    per_job =
      List.map
        (fun j ->
          {
            job = j.def.name;
            instructions = j.instructions;
            cycles = j.cycles;
            memory_accesses = j.memory_accesses;
            misses = j.misses;
            slices = j.slices;
          })
        running;
    switches = !switches;
    total_cycles = !total_cycles;
  }

let find_job outcome name = List.find_opt (fun s -> s.job = name) outcome.per_job
