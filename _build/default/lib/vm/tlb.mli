(** Translation look-aside buffer caching page-table tint entries.

    Faithful to the paper's cost model: after a page is re-tinted in the
    page table, the TLB keeps serving the {e stale} tint until that entry is
    flushed or naturally evicted — re-tinting therefore requires explicit
    flushes (Section 2.2), and those flushes are what the Figure 3 demo
    counts. Remapping a tint's bit vector, by contrast, needs no TLB work at
    all because TLB entries store tints, not bit vectors. *)

type t

val create : entries:int -> page_table:Page_table.t -> t

type outcome =
  | Hit
  | Miss

val lookup_page : t -> int -> Tint.t * outcome
(** Look a page up, walking the page table and installing the entry on a
    miss (possibly evicting the LRU entry). *)

val lookup : t -> int -> Tint.t * outcome
(** [lookup t addr] = [lookup_page t (page_of_addr addr)]. *)

val flush : t -> unit
val flush_page : t -> int -> bool
(** Returns whether the page was resident. *)

val hits : t -> int
val misses : t -> int
val flushes : t -> int
(** Full flushes performed. *)

val entry_flushes : t -> int
(** Successful single-page flushes. *)

val resident_pages : t -> int list
(** Most- to least-recently-used. *)

val capacity : t -> int
