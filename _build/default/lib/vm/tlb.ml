type outcome =
  | Hit
  | Miss

type t = {
  page_table : Page_table.t;
  lru : Cache.Lru_set.t;
  cached : (int, Tint.t) Hashtbl.t;  (* resident page -> tint snapshot *)
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
  mutable entry_flushes : int;
}

let create ~entries ~page_table =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  {
    page_table;
    lru = Cache.Lru_set.create ~capacity:entries;
    cached = Hashtbl.create (2 * entries);
    hits = 0;
    misses = 0;
    flushes = 0;
    entry_flushes = 0;
  }

let lookup_page t page =
  match Hashtbl.find_opt t.cached page with
  | Some tint ->
      t.hits <- t.hits + 1;
      ignore (Cache.Lru_set.touch t.lru page);
      (tint, Hit)
  | None ->
      t.misses <- t.misses + 1;
      let tint = Page_table.tint_of_page t.page_table page in
      (match Cache.Lru_set.touch t.lru page with
      | `Hit -> assert false
      | `Miss (Some evicted) -> Hashtbl.remove t.cached evicted
      | `Miss None -> ());
      Hashtbl.replace t.cached page tint;
      (tint, Miss)

let lookup t addr = lookup_page t (Page_table.page_of_addr t.page_table addr)

let flush t =
  Cache.Lru_set.clear t.lru;
  Hashtbl.reset t.cached;
  t.flushes <- t.flushes + 1

let flush_page t page =
  let present = Cache.Lru_set.remove t.lru page in
  if present then begin
    Hashtbl.remove t.cached page;
    t.entry_flushes <- t.entry_flushes + 1
  end;
  present

let hits t = t.hits
let misses t = t.misses
let flushes t = t.flushes
let entry_flushes t = t.entry_flushes
let resident_pages t = Cache.Lru_set.to_list t.lru
let capacity t = Cache.Lru_set.capacity t.lru
