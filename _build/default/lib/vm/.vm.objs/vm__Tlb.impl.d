lib/vm/tlb.ml: Cache Hashtbl Page_table Tint
