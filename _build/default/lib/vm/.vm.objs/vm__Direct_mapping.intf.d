lib/vm/direct_mapping.mli: Cache
