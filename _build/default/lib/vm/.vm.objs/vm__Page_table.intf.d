lib/vm/page_table.mli: Format Tint
