lib/vm/mapping.mli: Cache Format Page_table Tint Tint_table Tlb
