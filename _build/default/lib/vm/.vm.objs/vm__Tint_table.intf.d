lib/vm/tint_table.mli: Cache Format Tint
