lib/vm/page_table.ml: Format Hashtbl Int List Tint
