lib/vm/tint.ml: Format Hashtbl String
