lib/vm/direct_mapping.ml: Cache Hashtbl
