lib/vm/tlb.mli: Page_table Tint
