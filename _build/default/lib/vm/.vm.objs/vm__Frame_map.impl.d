lib/vm/frame_map.ml: Hashtbl Int List Printf
