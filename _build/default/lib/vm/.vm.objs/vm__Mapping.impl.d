lib/vm/mapping.ml: Format Page_table Tint_table Tlb
