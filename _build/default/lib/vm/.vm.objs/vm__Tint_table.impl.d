lib/vm/tint_table.ml: Cache Format Hashtbl Tint
