lib/vm/tint.mli: Format
