lib/vm/frame_map.mli:
