(** Tints: virtual groupings of address-space regions (paper Section 2.2).

    Pages are mapped to tints, and tints — not raw column bit vectors — are
    what page-table entries store. A separate, tiny {!Tint_table.t} maps each
    tint to its current column bit vector, so repartitioning the cache is a
    single table write instead of a sweep over page-table entries. *)

type t

val make : string -> t
(** Tints are compared by name; [make "red"] twice yields equal tints. *)

val default : t
(** The tint every page starts with (the paper's "red"): by default it maps
    to all columns, i.e. a standard cache. *)

val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
