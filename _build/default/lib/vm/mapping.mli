(** The composed software mapping: page table + tint table + TLB.

    This is what the machine consults on every access: the address's page is
    looked up in the TLB (filling from the page table on a miss), the tint is
    resolved through the tint table, and the resulting column mask is handed
    to the cache's replacement unit.

    The two reconfiguration operations have deliberately different costs,
    mirroring Section 2.2:
    - {!remap_tint} changes a tint's bit vector: one tint-table write, no
      page-table or TLB work — "almost instantaneous".
    - {!retint_region} changes which tint pages carry: one PTE write and one
      TLB entry flush per page — expected to be rare. *)

type t

val create : ?tlb_entries:int -> page_size:int -> columns:int -> unit -> t
(** [tlb_entries] defaults to 32. *)

val page_table : t -> Page_table.t
val tint_table : t -> Tint_table.t
val tlb : t -> Tlb.t
val columns : t -> int

val mask_of : t -> int -> Cache.Bitmask.t * Tlb.outcome
(** Resolve an address to its column mask, updating TLB statistics. *)

val resolve : t -> int -> Cache.Bitmask.t * Tint.t * Tlb.outcome
(** Like {!mask_of} but also exposes the tint, for machinery that attaches
    behaviour to tints (e.g. stream prefetching into a tint's columns). *)

val mask_of_quiet : t -> int -> Cache.Bitmask.t
(** Resolution straight from the page table, bypassing (and not perturbing)
    the TLB. For tests and displays. *)

val remap_tint : t -> Tint.t -> Cache.Bitmask.t -> unit

val retint_region : t -> base:int -> size:int -> Tint.t -> int
(** Returns the number of pages re-tinted; each costs a PTE write and a TLB
    entry flush. *)

(** Snapshot of cumulative reconfiguration costs, used by the Figure 3
    demonstration. *)
type cost = {
  pte_writes : int;
  tint_table_writes : int;
  tlb_entry_flushes : int;
  tlb_full_flushes : int;
}

val cost : t -> cost
val cost_delta : before:cost -> after:cost -> cost
val pp_cost : Format.formatter -> cost -> unit
