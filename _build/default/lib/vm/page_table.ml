type t = {
  page_size : int;
  default_tint : Tint.t;
  entries : (int, Tint.t) Hashtbl.t;
  mutable pte_writes : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(default_tint = Tint.default) ~page_size () =
  if not (is_power_of_two page_size) then
    invalid_arg "Page_table.create: page_size must be a power of two";
  { page_size; default_tint; entries = Hashtbl.create 64; pte_writes = 0 }

let page_size t = t.page_size
let page_of_addr t addr = addr / t.page_size
let base_of_page t page = page * t.page_size

let set_tint t ~page tint =
  if page < 0 then invalid_arg "Page_table.set_tint: negative page";
  if Tint.equal tint t.default_tint then Hashtbl.remove t.entries page
  else Hashtbl.replace t.entries page tint;
  t.pte_writes <- t.pte_writes + 1

let set_tint_region t ~base ~size tint =
  if size <= 0 then invalid_arg "Page_table.set_tint_region: size must be positive";
  let first = page_of_addr t base in
  let last = page_of_addr t (base + size - 1) in
  for page = first to last do
    set_tint t ~page tint
  done;
  last - first + 1

let tint_of_page t page =
  match Hashtbl.find_opt t.entries page with
  | Some tint -> tint
  | None -> t.default_tint

let tint_of_addr t addr = tint_of_page t (page_of_addr t addr)

let pages_with_tint t tint =
  Hashtbl.fold
    (fun page tint' acc -> if Tint.equal tint tint' then page :: acc else acc)
    t.entries []
  |> List.sort Int.compare

let entries t = Hashtbl.length t.entries
let pte_writes t = t.pte_writes

let pp ppf t =
  let pages = Hashtbl.fold (fun p tint acc -> (p, tint) :: acc) t.entries [] in
  let pages = List.sort (fun (a, _) (b, _) -> Int.compare a b) pages in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (page, tint) -> Format.fprintf ppf "page %d -> %a@," page Tint.pp tint)
    pages;
  Format.fprintf ppf "@]"
