module Bitmask = Cache.Bitmask

type t = {
  page_size : int;
  columns : int;
  entries : (int, Bitmask.t) Hashtbl.t;
  mutable pte_writes : int;
}

let create ~page_size ~columns =
  if page_size <= 0 || page_size land (page_size - 1) <> 0 then
    invalid_arg "Direct_mapping.create: page_size must be a power of two";
  if columns <= 0 || columns > Bitmask.max_columns then
    invalid_arg "Direct_mapping.create: bad column count";
  { page_size; columns; entries = Hashtbl.create 64; pte_writes = 0 }

let columns t = t.columns
let page_of_addr t addr = addr / t.page_size

let set_mask t ~page mask =
  if Bitmask.is_empty mask then invalid_arg "Direct_mapping.set_mask: empty mask";
  Hashtbl.replace t.entries page mask;
  t.pte_writes <- t.pte_writes + 1

let set_mask_region t ~base ~size mask =
  if size <= 0 then invalid_arg "Direct_mapping.set_mask_region: size must be positive";
  let first = page_of_addr t base in
  let last = page_of_addr t (base + size - 1) in
  for page = first to last do
    set_mask t ~page mask
  done;
  last - first + 1

let mask_of t addr =
  match Hashtbl.find_opt t.entries (page_of_addr t addr) with
  | Some mask -> mask
  | None -> Bitmask.full ~n:t.columns

let pte_writes t = t.pte_writes
