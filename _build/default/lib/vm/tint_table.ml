module Bitmask = Cache.Bitmask

type t = {
  columns : int;
  table : (Tint.t, Bitmask.t) Hashtbl.t;
  mutable writes : int;
}

let create ~columns =
  if columns <= 0 || columns > Bitmask.max_columns then
    invalid_arg "Tint_table.create: bad column count";
  { columns; table = Hashtbl.create 16; writes = 0 }

let columns t = t.columns

let set t tint mask =
  if Bitmask.is_empty mask then invalid_arg "Tint_table.set: empty mask";
  if not (Bitmask.subset mask (Bitmask.full ~n:t.columns)) then
    invalid_arg "Tint_table.set: mask names a column beyond the cache";
  Hashtbl.replace t.table tint mask;
  t.writes <- t.writes + 1

let lookup t tint =
  match Hashtbl.find_opt t.table tint with
  | Some mask -> mask
  | None -> Bitmask.full ~n:t.columns

let mem t tint = Hashtbl.mem t.table tint

let remove t tint =
  if Hashtbl.mem t.table tint then begin
    Hashtbl.remove t.table tint;
    t.writes <- t.writes + 1
  end

let writes t = t.writes
let tints t = Hashtbl.fold (fun k _ acc -> k :: acc) t.table []

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Hashtbl.iter
    (fun tint mask ->
      Format.fprintf ppf "%a -> %s@," Tint.pp tint
        (Bitmask.to_string ~n:t.columns mask))
    t.table;
  Format.fprintf ppf "@]"
