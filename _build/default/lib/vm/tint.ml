type t = string

let make name =
  if name = "" then invalid_arg "Tint.make: empty name";
  name

let default = "red"
let name t = t
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp ppf t = Format.pp_print_string ppf t
