(** The strawman the paper argues against in Figure 3: page-table entries
    that store raw column bit vectors instead of tints.

    Functionally equivalent to {!Mapping.t}, but any repartitioning that
    changes the bit vector of many pages must rewrite every affected PTE
    (and flush its TLB entry). The Figure 3 demo performs the same logical
    remap through both schemes and compares the counted writes. *)

type t

val create : page_size:int -> columns:int -> t
val columns : t -> int
val page_of_addr : t -> int -> int

val set_mask : t -> page:int -> Cache.Bitmask.t -> unit
(** One PTE write (plus one TLB entry flush, counted together). *)

val set_mask_region : t -> base:int -> size:int -> Cache.Bitmask.t -> int
(** Returns PTE writes performed. *)

val mask_of : t -> int -> Cache.Bitmask.t
(** Pages never set resolve to all columns. *)

val pte_writes : t -> int
