(** The tint → column-bit-vector table.

    This is the small, fast structure the paper introduces so that common
    repartitionings are "almost instantaneous": remapping a tint touches one
    entry here instead of every page-table entry carrying that tint. Writes
    are counted so experiments can report remap costs. *)

type t

val create : columns:int -> t
(** Unmapped tints (including {!Tint.default}) resolve to all [columns]. *)

val columns : t -> int

val set : t -> Tint.t -> Cache.Bitmask.t -> unit
(** Raises [Invalid_argument] on an empty mask or one naming a column beyond
    [columns-1]: hardware must always have a permissible victim. *)

val lookup : t -> Tint.t -> Cache.Bitmask.t
val mem : t -> Tint.t -> bool
val remove : t -> Tint.t -> unit
val writes : t -> int
(** Number of [set]/[remove] operations performed so far. *)

val tints : t -> Tint.t list
(** Explicitly-mapped tints, unspecified order. *)

val pp : Format.formatter -> t -> unit
