(** Page table storing a tint per page (paper Section 2.2).

    The minimum column-mapping granularity is a page, so the page table is
    the persistent store of mapping information; the TLB caches its entries.
    Every entry update is counted, which is what the Figure 3 comparison
    (tints vs raw bit vectors in PTEs) measures. *)

type t

val create : ?default_tint:Tint.t -> page_size:int -> unit -> t
(** [page_size] must be a power of two. *)

val page_size : t -> int
val page_of_addr : t -> int -> int
val base_of_page : t -> int -> int

val set_tint : t -> page:int -> Tint.t -> unit
(** One PTE write. *)

val set_tint_region : t -> base:int -> size:int -> Tint.t -> int
(** Tint every page overlapping [base, base+size); returns the number of
    PTE writes performed. [size] must be positive. *)

val tint_of_page : t -> int -> Tint.t
(** Pages never explicitly tinted carry the default tint. *)

val tint_of_addr : t -> int -> Tint.t
val pages_with_tint : t -> Tint.t -> int list
(** Explicitly-tinted pages currently carrying the tint, ascending. *)

val entries : t -> int
(** Number of explicitly-tinted pages. *)

val pte_writes : t -> int
val pp : Format.formatter -> t -> unit
