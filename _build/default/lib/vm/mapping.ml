type t = {
  page_table : Page_table.t;
  tint_table : Tint_table.t;
  tlb : Tlb.t;
}

let create ?(tlb_entries = 32) ~page_size ~columns () =
  let page_table = Page_table.create ~page_size () in
  let tint_table = Tint_table.create ~columns in
  let tlb = Tlb.create ~entries:tlb_entries ~page_table in
  { page_table; tint_table; tlb }

let page_table t = t.page_table
let tint_table t = t.tint_table
let tlb t = t.tlb
let columns t = Tint_table.columns t.tint_table

let resolve t addr =
  let tint, outcome = Tlb.lookup t.tlb addr in
  (Tint_table.lookup t.tint_table tint, tint, outcome)

let mask_of t addr =
  let mask, _, outcome = resolve t addr in
  (mask, outcome)

let mask_of_quiet t addr =
  Tint_table.lookup t.tint_table (Page_table.tint_of_addr t.page_table addr)

let remap_tint t tint mask = Tint_table.set t.tint_table tint mask

let retint_region t ~base ~size tint =
  let pages = Page_table.set_tint_region t.page_table ~base ~size tint in
  let first = Page_table.page_of_addr t.page_table base in
  for page = first to first + pages - 1 do
    ignore (Tlb.flush_page t.tlb page)
  done;
  pages

type cost = {
  pte_writes : int;
  tint_table_writes : int;
  tlb_entry_flushes : int;
  tlb_full_flushes : int;
}

let cost t =
  {
    pte_writes = Page_table.pte_writes t.page_table;
    tint_table_writes = Tint_table.writes t.tint_table;
    tlb_entry_flushes = Tlb.entry_flushes t.tlb;
    tlb_full_flushes = Tlb.flushes t.tlb;
  }

let cost_delta ~before ~after =
  {
    pte_writes = after.pte_writes - before.pte_writes;
    tint_table_writes = after.tint_table_writes - before.tint_table_writes;
    tlb_entry_flushes = after.tlb_entry_flushes - before.tlb_entry_flushes;
    tlb_full_flushes = after.tlb_full_flushes - before.tlb_full_flushes;
  }

let pp_cost ppf c =
  Format.fprintf ppf
    "pte_writes=%d tint_table_writes=%d tlb_entry_flushes=%d tlb_full_flushes=%d"
    c.pte_writes c.tint_table_writes c.tlb_entry_flushes c.tlb_full_flushes
