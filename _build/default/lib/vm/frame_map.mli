(** Virtual page → physical frame mapping.

    Needed to model {e page coloring} (paper Section 5.1), the
    software-only alternative to column caching: the OS picks physical
    frames so that conflicting data lands in different cache colors.
    The cache indexes physical addresses, so the machine translates through
    this map on every access.

    The cost asymmetry the paper highlights is captured here: changing a
    page's frame means {e copying the page's bytes} ({!remap_page} counts
    them), whereas a column cache remap is a table write. *)

type t

val create : page_size:int -> t
(** Identity mapping: frame = page. *)

val page_size : t -> int
val translate : t -> int -> int
(** Virtual byte address to physical byte address. *)

val frame_of : t -> int -> int
(** Current frame of a virtual page. *)

val map_page : t -> page:int -> frame:int -> unit
(** Initial placement (no copy counted): used when the OS first allocates
    the page. Raises [Invalid_argument] if the frame is already in use by
    another page. *)

val remap_page : t -> page:int -> frame:int -> unit
(** Move an already-placed page to a new frame; counts one page copy.
    Raises like {!map_page}. *)

val bytes_copied : t -> int
(** Total bytes moved by {!remap_page} calls so far. *)

val mapped_pages : t -> (int * int) list
(** Explicit (page, frame) pairs, ascending by page. *)
