type t = {
  page_size : int;
  page_to_frame : (int, int) Hashtbl.t;
  frame_to_page : (int, int) Hashtbl.t;
  mutable bytes_copied : int;
}

let create ~page_size =
  if page_size <= 0 || page_size land (page_size - 1) <> 0 then
    invalid_arg "Frame_map.create: page_size must be a power of two";
  {
    page_size;
    page_to_frame = Hashtbl.create 64;
    frame_to_page = Hashtbl.create 64;
    bytes_copied = 0;
  }

let page_size t = t.page_size

let frame_of t page =
  match Hashtbl.find_opt t.page_to_frame page with
  | Some frame -> frame
  | None -> page

let translate t addr =
  let page = addr / t.page_size in
  (frame_of t page * t.page_size) + (addr mod t.page_size)

(* Collisions are only tracked among explicitly-placed pages: the page
   allocator (Layout.Page_coloring) places every page it manages in a frame
   arena disjoint from the identity range, so implicit identity frames never
   collide with it. *)
let place ?(copy = false) t ~page ~frame =
  if page < 0 || frame < 0 then invalid_arg "Frame_map: negative page or frame";
  (match Hashtbl.find_opt t.frame_to_page frame with
  | Some p when p <> page ->
      invalid_arg
        (Printf.sprintf "Frame_map: frame %d already holds page %d" frame p)
  | Some _ | None -> ());
  (* release the old frame *)
  (match Hashtbl.find_opt t.page_to_frame page with
  | Some old -> Hashtbl.remove t.frame_to_page old
  | None -> ());
  Hashtbl.replace t.page_to_frame page frame;
  Hashtbl.replace t.frame_to_page frame page;
  if copy then t.bytes_copied <- t.bytes_copied + t.page_size

let map_page t ~page ~frame = place ~copy:false t ~page ~frame
let remap_page t ~page ~frame = place ~copy:true t ~page ~frame
let bytes_copied t = t.bytes_copied

let mapped_pages t =
  Hashtbl.fold (fun page frame acc -> (page, frame) :: acc) t.page_to_frame []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
