type t = {
  hit_cycles : int;
  miss_penalty : int;
  l2_hit_cycles : int;
  writeback_penalty : int;
  scratchpad_cycles : int;
  tlb_miss_penalty : int;
  uncached_cycles : int;
}

let default =
  {
    hit_cycles = 1;
    miss_penalty = 20;
    l2_hit_cycles = 6;
    writeback_penalty = 4;
    scratchpad_cycles = 1;
    tlb_miss_penalty = 8;
    uncached_cycles = 20;
  }

let ideal_scratchpad t = t.scratchpad_cycles

let pp ppf t =
  Format.fprintf ppf
    "hit=%d miss=+%d l2hit=+%d wb=+%d scratchpad=%d tlb_miss=+%d uncached=%d"
    t.hit_cycles t.miss_penalty t.l2_hit_cycles t.writeback_penalty
    t.scratchpad_cycles t.tlb_miss_penalty t.uncached_cycles
