lib/machine/run_stats.ml: Cache Format
