lib/machine/system.ml: Cache Hashtbl List Memtrace Option Printf Run_stats Timing Vm
