lib/machine/timing.ml: Format
