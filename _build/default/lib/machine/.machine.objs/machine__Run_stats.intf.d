lib/machine/run_stats.mli: Cache Format
