lib/machine/timing.mli: Format
