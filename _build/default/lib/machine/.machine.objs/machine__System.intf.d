lib/machine/system.mli: Cache Memtrace Run_stats Timing Vm
