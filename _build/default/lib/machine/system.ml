module Access = Memtrace.Access
module Trace = Memtrace.Trace
module Sassoc = Cache.Sassoc
module Bitmask = Cache.Bitmask

type config = {
  cache : Sassoc.config;
  l2 : Sassoc.config option;
  timing : Timing.t;
  page_size : int;
  tlb_entries : int;
}

let config ?(timing = Timing.default) ?(page_size = 256) ?(tlb_entries = 32)
    ?l2 cache =
  { cache; l2; timing; page_size; tlb_entries }

type region = {
  base : int;
  size : int;
}

type t = {
  cfg : config;
  cache : Sassoc.t;
  l2 : Sassoc.t option;
  mapping : Vm.Mapping.t;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable prefetches : int;
  streaming_tints : (Vm.Tint.t, unit) Hashtbl.t;
  (* physical lines brought in by the prefetcher and not yet demanded:
     first use triggers the next prefetch (tagged prefetching) *)
  prefetch_tagged : (int, unit) Hashtbl.t;
  mutable scratchpads : region list;
  mutable uncached : region list;
  mutable frame_map : Vm.Frame_map.t option;
  mutable instructions : int;
  mutable cycles : int;
  mutable memory_accesses : int;
  mutable scratchpad_accesses : int;
  mutable pending_setup_cycles : int;
  (* TLB counters live in the TLB itself; run deltas are snapshot-based. *)
}

let create cfg =
  {
    cfg;
    cache = Sassoc.create cfg.cache;
    l2 = Option.map Sassoc.create cfg.l2;
    l2_hits = 0;
    l2_misses = 0;
    prefetches = 0;
    streaming_tints = Hashtbl.create 4;
    prefetch_tagged = Hashtbl.create 64;
    mapping =
      Vm.Mapping.create ~tlb_entries:cfg.tlb_entries ~page_size:cfg.page_size
        ~columns:cfg.cache.Sassoc.ways ();
    scratchpads = [];
    uncached = [];
    frame_map = None;
    instructions = 0;
    cycles = 0;
    memory_accesses = 0;
    scratchpad_accesses = 0;
    pending_setup_cycles = 0;
  }

let mapping t = t.mapping
let l2_cache t = t.l2

let set_streaming t tint = Hashtbl.replace t.streaming_tints tint ()
let clear_streaming t tint = Hashtbl.remove t.streaming_tints tint
let is_streaming t tint = Hashtbl.mem t.streaming_tints tint
let set_frame_map t fm = t.frame_map <- Some fm
let frame_map t = t.frame_map

let physical t addr =
  match t.frame_map with None -> addr | Some fm -> Vm.Frame_map.translate fm addr
let cache t = t.cache
let timing t = t.cfg.timing
let page_size t = t.cfg.page_size

let overlaps a b = a.base < b.base + b.size && b.base < a.base + a.size

let add_scratchpad t ~base ~size =
  if size <= 0 then invalid_arg "System.add_scratchpad: size must be positive";
  let r = { base; size } in
  if List.exists (overlaps r) t.scratchpads then
    invalid_arg "System.add_scratchpad: overlapping region";
  t.scratchpads <- r :: t.scratchpads

let in_region regions addr =
  List.exists (fun r -> addr >= r.base && addr < r.base + r.size) regions

let in_scratchpad t addr = in_region t.scratchpads addr
let in_uncached t addr = in_region t.uncached addr

let add_uncached t ~base ~size =
  if size <= 0 then invalid_arg "System.add_uncached: size must be positive";
  let r = { base; size } in
  if List.exists (overlaps r) t.scratchpads || List.exists (overlaps r) t.uncached
  then invalid_arg "System.add_uncached: overlapping region";
  t.uncached <- r :: t.uncached

let scratchpad_bytes t =
  List.fold_left (fun acc r -> acc + r.size) 0 t.scratchpads

let preload t ~base ~size =
  if size <= 0 then invalid_arg "System.preload: size must be positive";
  let line = t.cfg.cache.Sassoc.line_size in
  let first = base / line and last = (base + size - 1) / line in
  for l = first to last do
    if not (in_scratchpad t (l * line)) then begin
      let mask = Vm.Mapping.mask_of_quiet t.mapping (l * line) in
      ignore (Sassoc.access t.cache ~mask ~kind:Access.Read (physical t (l * line)))
    end
  done

let pin_region t ~base ~size ~mask ~tint =
  if Bitmask.is_empty mask then invalid_arg "System.pin_region: empty mask";
  let capacity =
    Bitmask.count mask * Sassoc.column_size_bytes t.cfg.cache
  in
  if size > capacity then
    invalid_arg
      (Printf.sprintf
         "System.pin_region: region (%d B) exceeds column capacity (%d B)"
         size capacity);
  ignore (Vm.Mapping.retint_region t.mapping ~base ~size tint);
  Vm.Mapping.remap_tint t.mapping tint mask;
  preload t ~base ~size

(* Setup charges accrue into a pending pot so that they land inside the
   NEXT run's delta (apply-then-run must see the cost). *)
let charge_cycles t n =
  if n < 0 then invalid_arg "System.charge_cycles: negative charge";
  t.pending_setup_cycles <- t.pending_setup_cycles + n

let access t (a : Access.t) =
  let timing = t.cfg.timing in
  let before = t.cycles in
  t.instructions <- t.instructions + Access.instructions a;
  t.cycles <- t.cycles + a.Access.gap;
  t.memory_accesses <- t.memory_accesses + 1;
  if in_scratchpad t a.Access.addr then begin
    t.scratchpad_accesses <- t.scratchpad_accesses + 1;
    t.cycles <- t.cycles + timing.Timing.scratchpad_cycles
  end
  else if in_uncached t a.Access.addr then
    t.cycles <- t.cycles + timing.Timing.uncached_cycles
  else begin
    let mask, tint, outcome = Vm.Mapping.resolve t.mapping a.Access.addr in
    (match outcome with
    | Vm.Tlb.Hit -> ()
    | Vm.Tlb.Miss -> t.cycles <- t.cycles + timing.Timing.tlb_miss_penalty);
    let stats = Sassoc.stats t.cache in
    let wb_before = stats.Cache.Stats.writebacks in
    (* Stream prefetch (Section 2: a prefetch buffer carved out of the
       general cache). Tagged next-line prefetching: both a miss and the
       first use of a previously-prefetched line fetch the line after it —
       into the stream's own columns, overlapped with memory time (no extra
       latency in this model). Prefetching stops where the next line's mask
       differs (region boundary). *)
    let maybe_prefetch () =
      if Hashtbl.mem t.streaming_tints tint then begin
        let line = t.cfg.cache.Sassoc.line_size in
        let next = a.Access.addr + line in
        let next_mask = Vm.Mapping.mask_of_quiet t.mapping next in
        let next_phys = physical t next in
        if
          Bitmask.equal next_mask mask
          && Sassoc.probe t.cache next_phys = None
        then begin
          ignore (Sassoc.fill t.cache ~mask next_phys);
          Hashtbl.replace t.prefetch_tagged (next_phys / line) ();
          t.prefetches <- t.prefetches + 1
        end
      end
    in
    let phys = physical t a.Access.addr in
    let phys_line = phys / t.cfg.cache.Sassoc.line_size in
    (match Sassoc.access t.cache ~mask ~kind:a.Access.kind phys with
    | Sassoc.Hit _ ->
        t.cycles <- t.cycles + timing.Timing.hit_cycles;
        if Hashtbl.mem t.prefetch_tagged phys_line then begin
          Hashtbl.remove t.prefetch_tagged phys_line;
          maybe_prefetch ()
        end
    | Sassoc.Miss _ ->
        t.cycles <- t.cycles + timing.Timing.hit_cycles;
        (* the line comes from L2 when one is configured and holds it *)
        (match t.l2 with
        | None -> t.cycles <- t.cycles + timing.Timing.miss_penalty
        | Some l2 -> (
            match Sassoc.access l2 ~kind:a.Access.kind phys with
            | Sassoc.Hit _ ->
                t.l2_hits <- t.l2_hits + 1;
                t.cycles <- t.cycles + timing.Timing.l2_hit_cycles
            | Sassoc.Miss _ ->
                t.l2_misses <- t.l2_misses + 1;
                t.cycles <- t.cycles + timing.Timing.miss_penalty));
        if stats.Cache.Stats.writebacks > wb_before then
          t.cycles <- t.cycles + timing.Timing.writeback_penalty;
        maybe_prefetch ())
  end;
  t.cycles - before

let snapshot t =
  {
    Run_stats.instructions = t.instructions;
    cycles = t.cycles;
    memory_accesses = t.memory_accesses;
    scratchpad_accesses = t.scratchpad_accesses;
    tlb_hits = Vm.Tlb.hits (Vm.Mapping.tlb t.mapping);
    tlb_misses = Vm.Tlb.misses (Vm.Mapping.tlb t.mapping);
    l2_hits = t.l2_hits;
    l2_misses = t.l2_misses;
    prefetches = t.prefetches;
    cache = Cache.Stats.copy (Sassoc.stats t.cache);
  }

let run t trace =
  let before = snapshot t in
  t.cycles <- t.cycles + t.pending_setup_cycles;
  t.pending_setup_cycles <- 0;
  Trace.iter (fun a -> ignore (access t a)) trace;
  let after = snapshot t in
  {
    Run_stats.instructions = after.instructions - before.instructions;
    cycles = after.cycles - before.cycles;
    memory_accesses = after.memory_accesses - before.memory_accesses;
    scratchpad_accesses =
      after.scratchpad_accesses - before.scratchpad_accesses;
    tlb_hits = after.tlb_hits - before.tlb_hits;
    tlb_misses = after.tlb_misses - before.tlb_misses;
    l2_hits = after.l2_hits - before.l2_hits;
    l2_misses = after.l2_misses - before.l2_misses;
    prefetches = after.prefetches - before.prefetches;
    cache = Cache.Stats.sub after.cache before.cache;
  }

let total t = snapshot t
let flush_cache t = Sassoc.flush t.cache
let flush_tlb t = Vm.Tlb.flush (Vm.Mapping.tlb t.mapping)
