(** The paper's embedded benchmark: three MPEG decoder routines (after
    Panda et al., which the paper follows in Section 4.1).

    Data sizes are chosen to reproduce the paper's structural facts for a
    2 KB, 4-column on-chip memory:
    - [dequant] and [plus] working sets fit comfortably (1.2 KB and 1.5 KB),
      so a full-scratchpad configuration is optimal for them;
    - [idct] operates on a 16-block batch (2.5 KB > 2 KB), so it cannot live
      in the scratchpad and is better served by cache columns.

    All three are written in the {!module:Ir} intermediate form, so they can
    be profiled (interpreter) or statically analyzed, and the layout pass
    places their variables. *)

val program : Ir.Ast.program
(** Declares all variables and the procedures ["dequant"], ["plus"],
    ["idct"], plus ["mpeg"] which runs the three in sequence (one decoded
    macroblock batch). *)

val routines : string list
(** [["dequant"; "plus"; "idct"]]. *)

val main : string
(** ["mpeg"]. *)

val init : string -> int -> int
(** Deterministic initial data: quantization table and cosine table with
    realistic magnitudes, coefficient blocks ~35% zero (so dequant's
    skip-zero branch actually branches both ways). *)

val vars_for : proc:string -> (string * int) list
(** (variable, size in bytes) pairs referenced by a routine, in first-use
    order — the input the layout pass needs. *)

val total_bytes : proc:string -> int
