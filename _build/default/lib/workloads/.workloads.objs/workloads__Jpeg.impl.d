lib/workloads/jpeg.ml: Array Float Hashtbl Ir List Printf Stdlib
