lib/workloads/lz77.mli: Memtrace
