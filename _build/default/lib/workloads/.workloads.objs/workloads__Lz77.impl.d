lib/workloads/lz77.ml: Array Buffer Char Int64 List Memtrace String
