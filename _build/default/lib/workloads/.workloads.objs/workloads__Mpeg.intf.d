lib/workloads/mpeg.mli: Ir
