lib/workloads/mpeg.ml: Float Hashtbl Ir List Printf Stdlib
