lib/workloads/kernels.mli: Ir
