lib/workloads/kernels.ml: Hashtbl Ir List Stdlib
