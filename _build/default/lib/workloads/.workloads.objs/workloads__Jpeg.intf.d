lib/workloads/jpeg.mli: Ir
