(* Geometry: four 64-coefficient blocks flow through dequant and plus; idct
   operates on a 16-block batch so its working set exceeds the paper's 2 KB
   on-chip memory. *)
let blocks_small = 4
let blocks_idct = 16
let coeffs = 64 * blocks_small (* 256 *)
let idct_elems = 64 * blocks_idct (* 1024 *)

open Ir.Build

let vars =
  [
    array "coeff" ~elems:coeffs ~elem_size:2 ();
    array "dq" ~elems:coeffs ~elem_size:2 ();
    array "quant_tbl" ~elems:64 ~elem_size:2 ();
    scalar "qscale" ();
    array "pred" ~elems:coeffs ~elem_size:2 ();
    array "recon" ~elems:coeffs ~elem_size:2 ();
    array "blocks" ~elems:idct_elems ~elem_size:2 ();
    array "cos_tbl" ~elems:64 ~elem_size:4 ();
  ]

(* Inverse quantization with the usual skip-zero-coefficient branch and
   saturation to the 12-bit signed range. *)
let dequant_proc =
  proc "dequant"
    [
      for_ "b" (i 0) (i blocks_small)
        [
          for_ "k" (i 0) (i 64)
            [
              setr "idx" ((r "b" * i 64) + r "k");
              setr "c" (ld "coeff" (r "idx"));
              if_else
                (ne ~prob:0.65 (r "c") (i 0))
                [
                  setr "v"
                    (shr (r "c" * ld "quant_tbl" (r "k") * s "qscale") (i 4));
                  st "dq" (r "idx") (max' (min' (r "v") (i 2047)) (i (-2048)));
                ]
                [ st "dq" (r "idx") (i 0) ];
            ];
        ];
    ]

(* Motion-compensation addition: reconstructed = clamp(pred + residual). *)
let plus_proc =
  proc "plus"
    [
      for_ "k" (i 0) (i coeffs)
        [
          setr "v" (ld "pred" (r "k") + ld "dq" (r "k"));
          st "recon" (r "k") (max' (min' (r "v") (i 255)) (i 0));
        ];
    ]

(* Separable in-place 8x8 inverse DCT over the whole batch: a row pass over
   every block, then a column pass re-reading what the row pass wrote. The
   eight inputs of each 1-D transform are loaded into registers, so no tmp
   buffer is needed and the cross-pass reuse distance is the entire blocks
   array — this is what makes idct's performance depend on how much of the
   on-chip memory is cache. *)
let reg_name k = Printf.sprintf "x%d" k

(* out_j = sum_k x_k * cos_tbl[j*8+k], fixed-point. *)
let transform_1d ~j =
  let rec sum k acc =
    if Stdlib.( >= ) k 8 then acc
    else
      sum
        (Stdlib.( + ) k 1)
        (acc + (r (reg_name k) * ld "cos_tbl" (i Stdlib.((j * 8) + k))))
  in
  shr (sum 1 (r (reg_name 0) * ld "cos_tbl" (i Stdlib.(j * 8)))) (i 8)

let load_row ~index_of =
  List.init 8 (fun k -> setr (reg_name k) (ld "blocks" (index_of k)))

let store_row ~index_of ~clamp =
  List.init 8 (fun j ->
      let value = transform_1d ~j in
      let value =
        if clamp then max' (min' value (i 255)) (i (-256)) else value
      in
      st "blocks" (index_of j) value)

let idct_proc =
  let row_index base k = base + (r "row" * i 8) + i k in
  let col_index base k = base + (i k * i 8) + r "col" in
  proc "idct"
    [
      for_ "b" (i 0) (i blocks_idct)
        [
          for_ "row" (i 0) (i 8)
            (load_row ~index_of:(row_index (r "b" * i 64))
            @ store_row ~index_of:(row_index (r "b" * i 64)) ~clamp:false);
        ];
      for_ "b" (i 0) (i blocks_idct)
        [
          for_ "col" (i 0) (i 8)
            (load_row ~index_of:(col_index (r "b" * i 64))
            @ store_row ~index_of:(col_index (r "b" * i 64)) ~clamp:true);
        ];
    ]

let main_proc = proc "mpeg" [ call "dequant"; call "plus"; call "idct" ]

let program =
  program ~vars [ dequant_proc; plus_proc; idct_proc; main_proc ]

let routines = [ "dequant"; "plus"; "idct" ]
let main = "mpeg"

(* Deterministic pseudo-random but realistic initial data. *)
let mix name idx =
  let h = Hashtbl.hash (name, idx) in
  h land 0x3FFFFFFF

let init name idx =
  let open Stdlib in
  match name with
  | "quant_tbl" -> 8 + (idx mod 24)
  | "cos_tbl" ->
      (* round(cos((2k+1) u pi / 16) * 256) pattern, u = idx/8, k = idx mod 8 *)
      let u = idx / 8 and k = idx mod 8 in
      let angle = Float.pi *. float_of_int ((2 * k) + 1) *. float_of_int u /. 16. in
      int_of_float (Float.round (cos angle *. 256.))
  | "qscale" -> 12
  | "coeff" -> if mix name idx mod 100 < 35 then 0 else (mix name idx mod 400) - 200
  | "pred" -> mix name idx mod 256
  | "blocks" -> (mix name idx mod 2048) - 1024
  | _ -> 0

let vars_for ~proc =
  List.map
    (fun name ->
      match Ir.Ast.find_var program name with
      | Some v -> (name, Ir.Ast.var_size_bytes v)
      | None -> assert false)
    (Ir.Ast.vars_referenced program ~proc)

let total_bytes ~proc =
  List.fold_left (fun acc (_, size) -> Stdlib.( + ) acc size) 0 (vars_for ~proc)
