(** Additional embedded kernels used by the examples and ablations.

    Like the MPEG routines these are IF programs, so the whole
    profile → layout → simulate pipeline applies to them unchanged. *)

val matmul : n:int -> Ir.Ast.program
(** Dense [n x n] 32-bit matrix multiply C = A * B, procedure ["matmul"]. *)

val fir : taps:int -> samples:int -> Ir.Ast.program
(** FIR filter over a sample buffer, procedure ["fir"]: hot coefficient
    array, streaming input, streaming output — a classic case where the
    coefficients deserve a scratchpad column. *)

val histogram : bins:int -> samples:int -> Ir.Ast.program
(** Data-dependent scatter into a bin array, procedure ["histogram"]. *)

val hot_walk : hot_elems:int -> passes:int -> Ir.Ast.program
(** A hot array of [hot_elems] 4-byte elements re-walked [passes] times with
    two small always-live side arrays, procedure ["hot_walk"]. Sized above
    one column, the hot array demonstrates why grouped multi-column
    partitions (paper Section 2.1) beat the single-column restriction. *)

val init : string -> int -> int
(** Deterministic initial data suitable for all three programs. *)

val vars_for : Ir.Ast.program -> proc:string -> (string * int) list
