(* Geometry: one 16x16-pixel tile, three planes, 8x8 blocks. *)
let pixels = 256 (* 16 x 16 *)
let planes = 3
let samples = pixels * planes (* 768 *)
let blocks = samples / 64 (* 12 *)
let two_pixels = 2 * pixels

open Ir.Build

let vars =
  [
    array "rgb" ~elems:samples ~elem_size:1 ();
    array "ycc" ~elems:samples ~elem_size:2 ();
    array "fcos" ~elems:64 ~elem_size:4 ();
    array "qtab" ~elems:64 ~elem_size:2 ();
    array "zigzag" ~elems:64 ~elem_size:2 ();
    array "coeff_out" ~elems:samples ~elem_size:2 ();
  ]

(* RGB -> YCbCr with the usual integer approximation; input is interleaved
   RGB, output planar (Y plane, then Cb, then Cr). *)
let color_convert_proc =
  proc "color_convert"
    [
      for_ "p" (i 0) (i pixels)
        [
          setr "red" (ld "rgb" (r "p" * i 3));
          setr "green" (ld "rgb" ((r "p" * i 3) + i 1));
          setr "blue" (ld "rgb" ((r "p" * i 3) + i 2));
          st "ycc" (r "p")
            (shr ((i 77 * r "red") + (i 150 * r "green") + (i 29 * r "blue")) (i 8));
          st "ycc"
            (i pixels + r "p")
            (shr ((neg (i 43) * r "red") - (i 85 * r "green") + (i 128 * r "blue")) (i 8)
            + i 128);
          st "ycc"
            (i two_pixels + r "p")
            (shr ((i 128 * r "red") - (i 107 * r "green") - (i 21 * r "blue")) (i 8)
            + i 128);
        ];
    ]

(* Separable in-place forward DCT over every block: row pass then column
   pass, eight inputs in registers per 1-D transform (same organization as
   the MPEG idct, so the cross-pass reuse distance is the whole 1.5 KB ycc
   array). *)
let reg_name k = Printf.sprintf "s%d" k

let transform_1d ~j =
  let rec sum k acc =
    if Stdlib.( >= ) k 8 then acc
    else
      sum
        (Stdlib.( + ) k 1)
        (acc + (r (reg_name k) * ld "fcos" (i Stdlib.((j * 8) + k))))
  in
  shr (sum 1 (r (reg_name 0) * ld "fcos" (i Stdlib.(j * 8)))) (i 8)

let load_8 ~index_of =
  List.init 8 (fun k -> setr (reg_name k) (ld "ycc" (index_of k)))

let store_8 ~index_of =
  List.init 8 (fun j -> st "ycc" (index_of j) (transform_1d ~j))

let fdct_proc =
  let row_index base k = base + (r "row" * i 8) + i k in
  let col_index base k = base + (i k * i 8) + r "col" in
  proc "fdct"
    [
      for_ "b" (i 0) (i blocks)
        [
          for_ "row" (i 0) (i 8)
            (load_8 ~index_of:(row_index (r "b" * i 64))
            @ store_8 ~index_of:(row_index (r "b" * i 64)));
        ];
      for_ "b" (i 0) (i blocks)
        [
          for_ "col" (i 0) (i 8)
            (load_8 ~index_of:(col_index (r "b" * i 64))
            @ store_8 ~index_of:(col_index (r "b" * i 64)));
        ];
    ]

(* Quantize and reorder through the zigzag index table; most high-frequency
   coefficients quantize to zero (the sparsity the entropy coder relies
   on). *)
let quant_zigzag_proc =
  proc "quant_zigzag"
    [
      for_ "b" (i 0) (i blocks)
        [
          for_ "k" (i 0) (i 64)
            [
              setr "zz" (ld "zigzag" (r "k"));
              setr "q" (ld "ycc" ((r "b" * i 64) + r "zz") / ld "qtab" (r "zz"));
              if_else
                (ne ~prob:0.4 (r "q") (i 0))
                [ st "coeff_out" ((r "b" * i 64) + r "k") (r "q") ]
                [ st "coeff_out" ((r "b" * i 64) + r "k") (i 0) ];
            ];
        ];
    ]

let main_proc =
  proc "jpeg" [ call "color_convert"; call "fdct"; call "quant_zigzag" ]

let program =
  program ~vars [ color_convert_proc; fdct_proc; quant_zigzag_proc; main_proc ]

let routines = [ "color_convert"; "fdct"; "quant_zigzag" ]
let main = "jpeg"

let init name idx =
  let open Stdlib in
  let h = Hashtbl.hash (name, idx) land 0x3FFFFFFF in
  match name with
  | "rgb" ->
      (* a smooth gradient with mild texture: realistic images are mostly
         low-frequency, which is what makes quantization sparse *)
      let p = idx / 3 in
      let x = p mod 16 and y = p / 16 mod 16 in
      (((x * 9) + (y * 5)) mod 200) + (h mod 8)
  | "fcos" ->
      let u = idx / 8 and k = idx mod 8 in
      let angle = Float.pi *. float_of_int ((2 * k) + 1) *. float_of_int u /. 16. in
      int_of_float (Float.round (cos angle *. 256.))
  | "qtab" -> 8 + ((idx / 8) + (idx mod 8) * 4) (* coarser for high freq *)
  | "zigzag" ->
      (* the standard zigzag scan order *)
      let order =
        [|
          0; 1; 8; 16; 9; 2; 3; 10; 17; 24; 32; 25; 18; 11; 4; 5;
          12; 19; 26; 33; 40; 48; 41; 34; 27; 20; 13; 6; 7; 14; 21; 28;
          35; 42; 49; 56; 57; 50; 43; 36; 29; 22; 15; 23; 30; 37; 44; 51;
          58; 59; 52; 45; 38; 31; 39; 46; 53; 60; 61; 54; 47; 55; 62; 63;
        |]
      in
      order.(idx)
  | _ -> 0

let vars_for ~proc =
  List.map
    (fun name ->
      match Ir.Ast.find_var program name with
      | Some v -> (name, Ir.Ast.var_size_bytes v)
      | None -> assert false)
    (Ir.Ast.vars_referenced program ~proc)

let total_bytes ~proc =
  List.fold_left (fun acc (_, size) -> Stdlib.( + ) acc size) 0 (vars_for ~proc)
