(* [Ir.Build] shadows the integer operators, so size arithmetic is done
   through these aliases. *)
let imul a b = a * b
let iadd a b = a + b

open Ir.Build

let matmul ~n =
  program
    ~vars:
      [
        array "a" ~elems:(imul n n) ~elem_size:4 ();
        array "b" ~elems:(imul n n) ~elem_size:4 ();
        array "c" ~elems:(imul n n) ~elem_size:4 ();
      ]
    [
      proc "matmul"
        [
          for_ "row" (i 0) (i n)
            [
              for_ "col" (i 0) (i n)
                [
                  setr "acc" (i 0);
                  for_ "k" (i 0) (i n)
                    [
                      setr "acc"
                        (r "acc"
                        + ld "a" ((r "row" * i n) + r "k")
                          * ld "b" ((r "k" * i n) + r "col"));
                    ];
                  st "c" ((r "row" * i n) + r "col") (r "acc");
                ];
            ];
        ];
    ]

let fir ~taps ~samples =
  program
    ~vars:
      [
        array "coeffs" ~elems:taps ~elem_size:4 ();
        array "input" ~elems:(iadd samples taps) ~elem_size:2 ();
        array "output" ~elems:samples ~elem_size:2 ();
      ]
    [
      proc "fir"
        [
          for_ "t" (i 0) (i samples)
            [
              setr "acc" (i 0);
              for_ "k" (i 0) (i taps)
                [
                  setr "acc"
                    (r "acc" + (ld "coeffs" (r "k") * ld "input" (r "t" + r "k")));
                ];
              st "output" (r "t") (shr (r "acc") (i 8));
            ];
        ];
    ]

let histogram ~bins ~samples =
  program
    ~vars:
      [
        array "data" ~elems:samples ~elem_size:2 ();
        array "bin" ~elems:bins ~elem_size:4 ();
      ]
    [
      proc "histogram"
        [
          for_ "t" (i 0) (i samples)
            [
              setr "idx" (ld "data" (r "t") % i bins);
              if_ (lt ~prob:0.5 (r "idx") (i 0)) [ setr "idx" (r "idx" + i bins) ];
              st "bin" (r "idx") (ld "bin" (r "idx") + i 1);
            ];
        ];
    ]

(* A hot array re-walked many times, plus two small side arrays that stay
   live throughout. The hot working set is sized by the caller: when it
   exceeds one cache column, the paper's single-column restriction thrashes
   it while a grouped (multi-column) partition holds it — the Section 2.1
   argument for aggregating columns. *)
let hot_walk ~hot_elems ~passes =
  program
    ~vars:
      [
        array "hot" ~elems:hot_elems ~elem_size:4 ();
        array "aux1" ~elems:16 ~elem_size:4 ();
        array "aux2" ~elems:16 ~elem_size:4 ();
      ]
    [
      proc "hot_walk"
        [
          for_ "pass" (i 0) (i passes)
            [
              setr "acc" (i 0);
              for_ "t" (i 0) (i hot_elems)
                [ setr "acc" (r "acc" + ld "hot" (r "t")) ];
              st "aux1" (r "pass" % i 16) (r "acc");
              st "aux2" (r "pass" % i 16) (r "acc" - i 1);
            ];
        ];
    ]

let init name idx =
  let open Stdlib in
  let h = Hashtbl.hash (name, idx) land 0x3FFFFFFF in
  match name with
  | "coeffs" -> (h mod 512) - 256
  | "a" | "b" -> (h mod 200) - 100
  | "input" | "data" -> h mod 4096
  | _ -> 0

let vars_for program ~proc =
  List.map
    (fun name ->
      match Ir.Ast.find_var program name with
      | Some v -> (name, Ir.Ast.var_size_bytes v)
      | None -> assert false)
    (Ir.Ast.vars_referenced program ~proc)
