(** A JPEG encoder front end, the second full application family.

    The paper evaluates on MPEG decode; this workload checks that the layout
    machinery generalizes to a different embedded pipeline with different
    phase structure:

    - ["color_convert"] streams an RGB tile into planar YCbCr (pure
      streaming, no tables);
    - ["fdct"] runs a separable in-place forward DCT over all blocks (hot
      cosine table, cross-pass reuse of the whole sample array);
    - ["quant_zigzag"] quantizes and reorders coefficients through two small
      lookup tables with a sparsity branch;
    - ["jpeg"] runs the three in order.

    Data totals ~4.3 KB — more than twice the 2 KB on-chip memory — so, like
    idct in the paper, no all-scratchpad configuration can hold it. *)

val program : Ir.Ast.program
val routines : string list
(** [["color_convert"; "fdct"; "quant_zigzag"]]. *)

val main : string
(** ["jpeg"]. *)

val init : string -> int -> int
(** Deterministic image data, cosine/quantization/zigzag tables. *)

val vars_for : proc:string -> (string * int) list
val total_bytes : proc:string -> int
