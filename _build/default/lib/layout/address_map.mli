(** Concrete addresses for program variables.

    Addresses are assigned once (this is what a linker would have done) and
    remain fixed across repartitionings — only the page tints change at run
    time. The allocator guarantees the two properties the rest of the system
    relies on:

    - {e page exclusivity}: no two variables share a page, so every variable
      can be tinted independently;
    - {e no column wrap}: a variable smaller than a column never straddles a
      column-size boundary, so its in-column set interval
      [base mod column_size, base mod column_size + size) is contiguous —
      the precondition for packing several regions into one scratchpad
      column. Variables larger than a column start on a column-size
      boundary, so each of their subarray regions has offset 0. *)

type t

val build :
  ?base:int ->
  page_size:int ->
  column_size:int ->
  vars:(string * int) list ->
  unit ->
  t
(** [vars] is [(name, size_bytes)]. [column_size] must be a positive
    multiple of [page_size]... or smaller than a page, in which case page
    granularity dominates and the no-wrap rule is enforced at page
    boundaries. [base] defaults to 0. *)

val base_of : t -> string -> int
(** Raises [Not_found] for unknown variables. *)

val region_base : t -> Region.t -> int
(** [base_of] the region's variable plus the region's offset. *)

val to_ir_layout : t -> (string * int) list
(** The (variable, base) pairs, ready for {!Ir.Interp.run}. *)

val span : t -> int * int
(** Lowest and highest (exclusive) allocated addresses. *)

val column_interval : t -> column_size:int -> Region.t -> int * int
(** The region's occupied set interval within a column: [(lo, hi)] with
    [0 <= lo < hi <= column_size]. *)

val pp : Format.formatter -> t -> unit
