module Bitmask = Cache.Bitmask

type spec = {
  columns : int;
  column_size : int;
  scratchpad_columns : int;
}

let spec ~columns ~column_size ~scratchpad_columns =
  if columns <= 0 then invalid_arg "Partition.spec: columns must be positive";
  if column_size <= 0 then invalid_arg "Partition.spec: column_size must be positive";
  if scratchpad_columns < 0 || scratchpad_columns > columns then
    invalid_arg "Partition.spec: scratchpad_columns out of range";
  { columns; column_size; scratchpad_columns }

let spec_of_cache cfg ~scratchpad_columns =
  spec ~columns:cfg.Cache.Sassoc.ways
    ~column_size:(Cache.Sassoc.column_size_bytes cfg)
    ~scratchpad_columns

type mode =
  | Single_column
  | Grouped

type role =
  | Scratchpad
  | Cached
  | Uncached

type placement = {
  region : Region.t;
  base : int;
  columns : Bitmask.t option;
  role : role;
}

let placement_column pl =
  match pl.columns with
  | None -> None
  | Some mask -> Some (Bitmask.min_elt mask)

type t = {
  spec : spec;
  placements : placement list;
  graph : Coloring.Graph.t;
  colors : int array;
  residual_conflict : int;
}

(* Scratchpad packing: each scratchpad column is a direct-mapped window of
   [column_size] bytes, so co-resident regions need disjoint set intervals
   (interval = address range modulo the column size). *)
let intervals_disjoint (a_lo, a_hi) (b_lo, b_hi) = a_hi <= b_lo || b_hi <= a_lo

let try_pack occupied interval =
  let fits = List.for_all (intervals_disjoint interval) !occupied in
  if fits then occupied := interval :: !occupied;
  fits

(* Grouped mode: give each color class a contiguous group of cache columns,
   proportional to its access heat, every class getting at least one. *)
let group_columns ~first_col ~cache_cols ~colors ~heat =
  let distinct = List.sort_uniq Int.compare (Array.to_list colors) in
  let class_heat c =
    Array.to_list colors
    |> List.mapi (fun i c' -> if c' = c then heat.(i) else 0.)
    |> List.fold_left ( +. ) 0.
  in
  let classes = List.map (fun c -> (c, class_heat c)) distinct in
  let n = List.length classes in
  let widths = Array.make n 1 in
  let remaining = ref (cache_cols - n) in
  (* largest-remainder style: repeatedly widen the class with the highest
     heat per owned column *)
  let arr = Array.of_list classes in
  while !remaining > 0 do
    let best = ref 0 and best_ratio = ref neg_infinity in
    Array.iteri
      (fun idx (_, h) ->
        let ratio = h /. float_of_int widths.(idx) in
        if ratio > !best_ratio then begin
          best := idx;
          best_ratio := ratio
        end)
      arr;
    widths.(!best) <- widths.(!best) + 1;
    decr remaining
  done;
  let table = Hashtbl.create 8 in
  let cursor = ref first_col in
  Array.iteri
    (fun idx (c, _) ->
      let lo = !cursor in
      let hi = lo + widths.(idx) - 1 in
      cursor := hi + 1;
      Hashtbl.replace table c (Bitmask.range ~lo ~hi))
    arr;
  fun color -> Hashtbl.find table color

let compute ?(forced_scratchpad = []) ?(mode = Single_column) ~spec
    ~address_map regions =
  let p = spec.scratchpad_columns in
  let cache_cols = spec.columns - p in
  (* Greedy scratchpad selection: forced variables first, then by density. *)
  let forced, free =
    List.partition (fun r -> List.mem r.Region.var forced_scratchpad) regions
  in
  let by_density rs =
    List.sort (fun a b -> compare (Region.density b) (Region.density a)) rs
  in
  let columns_occupancy = Array.init (max p 1) (fun _ -> ref []) in
  let pack region =
    if p = 0 then None
    else begin
      let interval =
        Address_map.column_interval address_map ~column_size:spec.column_size
          region
      in
      let rec try_col c =
        if c >= p then None
        else if try_pack columns_occupancy.(c) interval then Some c
        else try_col (c + 1)
      in
      try_col 0
    end
  in
  let scratch = ref [] and rest = ref [] in
  List.iter
    (fun region ->
      match pack region with
      | Some c -> scratch := (region, c) :: !scratch
      | None ->
          invalid_arg
            (Printf.sprintf
               "Partition.compute: forced variable %s does not fit in %d \
                scratchpad column(s)"
               region.Region.var p))
    (by_density forced);
  List.iter
    (fun region ->
      match pack region with
      | Some c -> scratch := (region, c) :: !scratch
      | None -> rest := region :: !rest)
    (by_density free);
  let scratch = List.rev !scratch and rest = List.rev !rest in
  (* Interference graph over the regions left for the cache columns. *)
  let graph = Coloring.Graph.create () in
  let rest = Array.of_list rest in
  Array.iter
    (fun r -> ignore (Coloring.Graph.add_vertex graph ~label:(Region.name r)))
    rest;
  Array.iteri
    (fun i ri ->
      Array.iteri
        (fun j rj ->
          if i < j then begin
            let w =
              Profile.Lifetime.weight ri.Region.summary rj.Region.summary
            in
            if w > 0 then Coloring.Graph.set_weight graph i j w
          end)
        rest)
    rest;
  let heat =
    Array.map (fun r -> r.Region.summary.Profile.Lifetime.accesses) rest
  in
  let colors, residual_conflict =
    if Array.length rest = 0 then ([||], 0)
    else if cache_cols = 0 then ([||], 0)
    else begin
      let colors = Coloring.Solver.assign_columns ~heat graph ~k:cache_cols in
      (colors, Coloring.Graph.coloring_cost graph colors)
    end
  in
  let mask_of_color =
    if Array.length rest = 0 || cache_cols = 0 then fun _ -> Bitmask.empty
    else
      match mode with
      | Single_column -> fun color -> Bitmask.singleton (p + color)
      | Grouped -> group_columns ~first_col:p ~cache_cols ~colors ~heat
  in
  let scratch_placements =
    List.map
      (fun (region, c) ->
        {
          region;
          base = Address_map.region_base address_map region;
          columns = Some (Bitmask.singleton c);
          role = Scratchpad;
        })
      scratch
  in
  let rest_placements =
    Array.to_list
      (Array.mapi
         (fun i region ->
           if cache_cols = 0 then
             {
               region;
               base = Address_map.region_base address_map region;
               columns = None;
               role = Uncached;
             }
           else
             {
               region;
               base = Address_map.region_base address_map region;
               columns = Some (mask_of_color colors.(i));
               role = Cached;
             })
         rest)
  in
  {
    spec;
    placements = scratch_placements @ rest_placements;
    graph;
    colors;
    residual_conflict;
  }

let placement_of t name =
  List.find_opt (fun pl -> Region.name pl.region = name) t.placements

let scratchpad_bytes t =
  List.fold_left
    (fun acc pl -> if pl.role = Scratchpad then acc + pl.region.Region.size else acc)
    0 t.placements

let cached_regions t = List.filter (fun pl -> pl.role = Cached) t.placements
let uncached_regions t = List.filter (fun pl -> pl.role = Uncached) t.placements

let apply ?(copy_in = []) t system =
  let cache_cfg = Cache.Sassoc.geometry (Machine.System.cache system) in
  if
    cache_cfg.Cache.Sassoc.ways <> t.spec.columns
    || Cache.Sassoc.column_size_bytes cache_cfg <> t.spec.column_size
  then invalid_arg "Partition.apply: system cache geometry does not match spec";
  let mapping = Machine.System.mapping system in
  let p = t.spec.scratchpad_columns in
  let cache_cols = t.spec.columns - p in
  (* Traffic without an explicit placement (e.g. the stack) stays out of the
     scratchpad columns. *)
  let default_mask =
    if cache_cols > 0 then Bitmask.range ~lo:p ~hi:(t.spec.columns - 1)
    else Bitmask.full ~n:t.spec.columns
  in
  Vm.Mapping.remap_tint mapping Vm.Tint.default default_mask;
  List.iter
    (fun pl ->
      let region = pl.region in
      let tint = Region.tint region in
      match pl.role, pl.columns with
      | Uncached, _ ->
          Machine.System.add_uncached system ~base:pl.base
            ~size:region.Region.size
      | (Scratchpad | Cached), None -> assert false
      | Scratchpad, Some mask ->
          (* In-place working data must be copied into the pinned region;
             tables and produced-in-place outputs are already there. *)
          if List.mem region.Region.var copy_in then begin
            let timing = Machine.System.timing system in
            let lines =
              (region.Region.size + cache_cfg.Cache.Sassoc.line_size - 1)
              / cache_cfg.Cache.Sassoc.line_size
            in
            Machine.System.charge_cycles system
              (lines
              * (timing.Machine.Timing.hit_cycles
                + timing.Machine.Timing.miss_penalty))
          end;
          Machine.System.pin_region system ~base:pl.base
            ~size:region.Region.size ~mask ~tint
      | Cached, Some mask ->
          ignore
            (Vm.Mapping.retint_region mapping ~base:pl.base
               ~size:region.Region.size tint);
          Vm.Mapping.remap_tint mapping tint mask)
    t.placements

let role_to_string = function
  | Scratchpad -> "scratchpad"
  | Cached -> "cached"
  | Uncached -> "uncached"

let pp ppf t =
  Format.fprintf ppf "@[<v>partition: %d columns (%d scratchpad), W=%d@,"
    t.spec.columns t.spec.scratchpad_columns t.residual_conflict;
  List.iter
    (fun pl ->
      Format.fprintf ppf "%-16s %-10s %-12s at 0x%x@,"
        (Region.name pl.region)
        (role_to_string pl.role)
        (match pl.columns with
        | Some mask -> (
            match Bitmask.to_list mask with
            | [ c ] -> Printf.sprintf "column %d" c
            | cs ->
                Printf.sprintf "columns %s"
                  (String.concat "," (List.map string_of_int cs)))
        | None -> "off-chip")
        pl.base)
    t.placements;
  Format.fprintf ppf "@]"
