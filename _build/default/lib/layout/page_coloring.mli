(** Page coloring: the software-only baseline (paper Section 5.1).

    With a physically-indexed cache the OS can choose each virtual page's
    physical frame so that pages that would conflict land in different cache
    "colors" (a color = one page-sized stripe of a cache way). It needs no
    hardware beyond ordinary address translation, and the paper credits it
    with "a limited sub-set of column caching abilities", with two structural
    drawbacks that this module makes measurable:

    - remapping a region to a new cache color means {e copying memory}
      ({!recolor_cost_bytes} vs. a column cache's table write);
    - within one color, a direct-mapped cache still conflicts, and on
      set-associative caches coloring controls placement only up to the way
      size.

    The algorithm mirrors the column layout pass: an interference graph over
    variables (same lifetime weights), greedily colored onto the cache's
    page colors; consecutive pages of one variable hop colors so large
    variables do not self-conflict. *)

type t

val colors_of : cache:Cache.Sassoc.config -> page_size:int -> int
(** Number of page colors: way size / page size (at least 1). *)

val assign :
  cache:Cache.Sassoc.config ->
  page_size:int ->
  address_map:Address_map.t ->
  vars:(string * int) list ->
  summaries:(string * Profile.Lifetime.summary) list ->
  t
(** Compute a coloring and the frame placement realizing it. Variables
    without summaries keep identity frames. *)

val colors : t -> int
val color_of : t -> string -> int option
(** Starting color assigned to a variable. *)

val frame_map : t -> Vm.Frame_map.t

val apply : t -> Machine.System.t -> unit
(** Install the frame map; the system's cache becomes physically indexed. *)

val recolor_cost_bytes : from_:t -> to_:t -> int
(** Bytes that must be copied to move from one placement to the other: the
    pages whose frames differ, times the page size. This is the remapping
    cost the paper contrasts with column caching's near-free remap. *)

val pp : Format.formatter -> t -> unit
