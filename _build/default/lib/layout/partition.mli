(** The data layout algorithm (paper Section 3): map every region to a
    scratchpad column, a group of cache columns, or (only when no cache
    columns remain) uncached memory.

    For a partition with [p] scratchpad columns out of [k]:
    + regions are chosen for scratchpad greedily by access density, packed
      into the [p] columns with disjoint set intervals (Section 3.1.3's
      pre-assignment, reducing the coloring problem to [k - p] columns);
    + the remaining regions form the weighted interference graph
      (weights from {!Profile.Lifetime.weight}) and are colored onto the
      [k - p] cache columns with {!Coloring.Solver.assign_columns};
    + if [p = k] (no cache at all), whatever does not fit in the scratchpad
      is placed uncached — the honest cost of a pure-scratchpad design for
      oversized data, which is exactly what the paper's idct experiment
      exposes.

    Two mapping modes, both from the paper:
    - {!Single_column} (Section 3's restriction, the default): each color
      class is one column; partitions are direct-mapped windows.
    - {!Grouped} (Section 2.1: "by aggregating columns into partitions, we
      can provide set-associativity within partitions as well as increase
      the size of partitions"): the cache columns are distributed among the
      color classes in proportion to their access heat, so a hot class may
      own several columns and enjoy associativity within its partition.

    The result knows how to configure a {!Machine.System.t}: re-tint every
    region, map its tint to its columns, preload scratchpad regions. *)

type spec = {
  columns : int;  (** k: total columns *)
  column_size : int;  (** S: bytes per column *)
  scratchpad_columns : int;  (** p: columns reserved as scratchpad *)
}

val spec : columns:int -> column_size:int -> scratchpad_columns:int -> spec
(** Validates [0 <= p <= k], positive sizes. *)

val spec_of_cache : Cache.Sassoc.config -> scratchpad_columns:int -> spec

type mode =
  | Single_column
  | Grouped

type role =
  | Scratchpad
  | Cached
  | Uncached

type placement = {
  region : Region.t;
  base : int;
  columns : Cache.Bitmask.t option;  (** [None] iff uncached *)
  role : role;
}

val placement_column : placement -> int option
(** The lowest column of the placement's mask, when any. *)

type t = {
  spec : spec;
  placements : placement list;
  graph : Coloring.Graph.t;  (** interference graph over cached regions *)
  colors : int array;  (** color of each graph vertex *)
  residual_conflict : int;
      (** the paper's objective W left after coloring: total weight of
          same-column edges *)
}

val compute :
  ?forced_scratchpad:string list ->
  ?mode:mode ->
  spec:spec ->
  address_map:Address_map.t ->
  Region.t list ->
  t
(** [forced_scratchpad] names variables that must go to scratchpad for
    predictability (Section 3.1.3); their regions are packed first, highest
    density first. Raises [Invalid_argument] if a forced variable's regions
    cannot all be packed. *)

val placement_of : t -> string -> placement option
(** Look up by {!Region.name}. *)

val scratchpad_bytes : t -> int
val cached_regions : t -> placement list
val uncached_regions : t -> placement list

val apply : ?copy_in:string list -> t -> Machine.System.t -> unit
(** Configure the system: re-tint all regions, point tints at their
    columns, restrict the default tint to the cache columns, preload
    scratchpad regions, and register uncached regions. The system's cache
    geometry must match the spec.

    [copy_in] names variables whose scratchpad pinning requires an explicit
    copy from memory (in-place working data that some earlier phase
    produced elsewhere); their pin is charged one load per line via
    {!Machine.System.charge_cycles}. Read-only tables and outputs produced
    in place pin for free, which is the paper's implicit amortization in
    Figure 4(a-b). *)

val pp : Format.formatter -> t -> unit
