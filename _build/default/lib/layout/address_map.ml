type t = {
  bases : (string * int) list;
  lo : int;
  hi : int;
}

let round_up n align = (n + align - 1) / align * align

let build ?(base = 0) ~page_size ~column_size ~vars () =
  if page_size <= 0 || page_size land (page_size - 1) <> 0 then
    invalid_arg "Address_map.build: page_size must be a power of two";
  if column_size <= 0 then invalid_arg "Address_map.build: column_size";
  let cursor = ref base in
  let place (name, size) =
    if size <= 0 then
      invalid_arg (Printf.sprintf "Address_map.build: %s has size %d" name size);
    (* page exclusivity *)
    let addr = ref (round_up !cursor page_size) in
    if size >= column_size then
      (* multi-column variables start on a column boundary *)
      addr := round_up !addr column_size
    else if (!addr mod column_size) + size > column_size then
      (* avoid wrapping a set interval around the column end *)
      addr := round_up !addr column_size;
    cursor := !addr + size;
    (name, !addr)
  in
  let bases = List.map place vars in
  { bases; lo = base; hi = round_up !cursor page_size }

let base_of t name =
  match List.assoc_opt name t.bases with
  | Some b -> b
  | None -> raise Not_found

let region_base t (r : Region.t) = base_of t r.Region.var + r.Region.offset
let to_ir_layout t = t.bases
let span t = (t.lo, t.hi)

let column_interval t ~column_size (r : Region.t) =
  let b = region_base t r mod column_size in
  let e = b + r.Region.size in
  assert (e <= column_size || b = 0);
  (b, min e column_size)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (name, b) -> Format.fprintf ppf "%s @ 0x%x@," name b) t.bases;
  Format.fprintf ppf "@]"
