(** Dynamic data layout (paper Section 3.2).

    Column mappings can change "almost instantaneously", so the static
    algorithm can be run per procedure (or per phase) and the mappings
    swapped at phase boundaries. This module turns a list of phases — each
    with its own {!Partition.t} — into a runnable schedule that applies only
    the {e deltas} between consecutive partitions and accounts for what each
    transition really costs:

    - a tint-table write per region whose column set changes (cheap — the
      whole point of tints);
    - page-table writes and TLB entry flushes only for regions tinted for
      the first time (a region's tint never changes, only the tint's bit
      vector does);
    - preload traffic for scratchpad regions whose contents may have been
      displaced.

    As the paper notes, phases over disjoint variable sets need no
    re-assignment at all: their transitions are empty. *)

type phase = {
  label : string;
  partition : Partition.t;
  copy_in : string list;
      (** variables needing an explicit copy when pinned; see
          {!Partition.apply} *)
}

val phase : ?copy_in:string list -> label:string -> Partition.t -> phase
(** Raises [Invalid_argument] if the partition leaves regions uncached
    (uncached regions cannot be revoked mid-run, so dynamic schedules must
    avoid them — pick a split with at least one cache column). *)

type transition = {
  to_label : string;
  remapped_regions : string list;
      (** regions whose column set changed (one tint-table write each) *)
  first_tints : string list;
      (** regions tinted for the first time (PTE writes + TLB flushes) *)
  preloaded_regions : string list;
      (** scratchpad regions (re)loaded at this boundary *)
  pte_writes : int;
  tint_table_writes : int;
  tlb_entry_flushes : int;
  preload_lines : int;
}

val no_op : transition -> bool
(** True when the boundary required no reconfiguration at all (disjoint or
    identically-mapped phases). *)

type schedule

val schedule : phase list -> schedule
(** Raises [Invalid_argument] on an empty list or phases whose specs
    (column count/size) disagree. *)

val phases : schedule -> phase list

val plan : schedule -> transition list
(** The predicted transition at each phase boundary (including the initial
    configuration as the first transition), without running anything. *)

val run :
  system:Machine.System.t ->
  traces:(string * Memtrace.Trace.t) list ->
  schedule ->
  Machine.Run_stats.t * transition list
(** Execute the schedule: at each phase boundary apply the delta (measuring
    actual reconfiguration counters from the system's {!Vm.Mapping.t}), then
    replay the phase's trace. [traces] is keyed by phase label. Returns the
    summed run statistics and the measured transitions. *)

val pp_transition : Format.formatter -> transition -> unit
