type t = {
  colors : int;
  page_size : int;
  assignment : (string * int) list;  (* variable -> starting color *)
  frame_map : Vm.Frame_map.t;
  frames : (string * (int * int) list) list;  (* variable -> (page, frame) *)
}

let colors_of ~cache ~page_size =
  let way_bytes = Cache.Sassoc.column_size_bytes cache in
  max 1 (way_bytes / page_size)

let assign ~cache ~page_size ~address_map ~vars ~summaries =
  let colors = colors_of ~cache ~page_size in
  (* One graph vertex per PAGE of each summarized variable: page coloring's
     granularity is the page, and coloring pages individually lets a large
     variable's pages spread across the colors while hot small variables
     dodge exactly the pages they clash with. Each page inherits the
     variable's lifetime with its share of the accesses. *)
  let pages =
    List.concat_map
      (fun (name, size) ->
        match List.assoc_opt name summaries with
        | None -> []
        | Some s ->
            let base = Address_map.base_of address_map name in
            let first_page = base / page_size in
            let last_page = (base + size - 1) / page_size in
            let n = last_page - first_page + 1 in
            let share =
              Profile.Lifetime.summary
                ~accesses:(s.Profile.Lifetime.accesses /. float_of_int n)
                ~first:s.Profile.Lifetime.first ~last:s.Profile.Lifetime.last
                ()
            in
            List.init n (fun i -> (name, first_page + i, share)))
      vars
  in
  let arr = Array.of_list pages in
  let graph = Coloring.Graph.create () in
  Array.iter
    (fun (name, page, _) ->
      ignore
        (Coloring.Graph.add_vertex graph
           ~label:(Printf.sprintf "%s@%d" name page)))
    arr;
  Array.iteri
    (fun i (ni, _, si) ->
      Array.iteri
        (fun j (nj, _, sj) ->
          (* same-variable pages never alias (distinct offsets), so only
             cross-variable pairs interfere *)
          if i < j && ni <> nj then begin
            let w = Profile.Lifetime.weight si sj in
            if w > 0 then Coloring.Graph.set_weight graph i j w
          end)
        arr)
    arr;
  let coloring =
    if Array.length arr = 0 then [||]
    else Coloring.Solver.greedy_weighted graph ~k:colors
  in
  let assignment =
    (* a variable's reported color is its first page's *)
    Array.to_list arr
    |> List.mapi (fun i (name, _, _) -> (name, coloring.(i)))
    |> List.fold_left
         (fun acc (name, c) -> if List.mem_assoc name acc then acc else (name, c) :: acc)
         []
    |> List.rev
  in
  (* Frame arena strictly above every identity frame in use, aligned to the
     color period so frame mod colors is controllable. *)
  let _, hi = Address_map.span address_map in
  let arena_base =
    let first_free = (hi + page_size - 1) / page_size in
    (first_free + colors - 1) / colors * colors
  in
  let next_of_color = Array.init colors (fun c -> arena_base + c) in
  let fm = Vm.Frame_map.create ~page_size in
  let by_var = Hashtbl.create 16 in
  Array.iteri
    (fun i (name, page, _) ->
      let c = coloring.(i) in
      let frame = next_of_color.(c) in
      next_of_color.(c) <- frame + colors;
      Vm.Frame_map.map_page fm ~page ~frame;
      let prev = try Hashtbl.find by_var name with Not_found -> [] in
      Hashtbl.replace by_var name ((page, frame) :: prev))
    arr;
  let frames =
    List.filter_map
      (fun (name, _) ->
        match Hashtbl.find_opt by_var name with
        | Some placed -> Some (name, List.rev placed)
        | None -> None)
      vars
  in
  { colors; page_size; assignment; frame_map = fm; frames }

let colors t = t.colors
let color_of t name = List.assoc_opt name t.assignment
let frame_map t = t.frame_map
let apply t system = Machine.System.set_frame_map system t.frame_map

let recolor_cost_bytes ~from_ ~to_ =
  if from_.page_size <> to_.page_size then
    invalid_arg "Page_coloring.recolor_cost_bytes: page sizes differ";
  let table =
    List.concat_map (fun (_, placed) -> placed) from_.frames
  in
  let moved =
    List.concat_map
      (fun (_, placed) ->
        List.filter
          (fun (page, frame) ->
            match List.assoc_opt page table with
            | Some frame' -> frame' <> frame
            | None -> true)
          placed)
      to_.frames
  in
  List.length moved * to_.page_size

let pp ppf t =
  Format.fprintf ppf "@[<v>page coloring: %d colors@," t.colors;
  List.iter
    (fun (name, c) -> Format.fprintf ppf "  %-14s color %d@," name c)
    t.assignment;
  Format.fprintf ppf "@]"
