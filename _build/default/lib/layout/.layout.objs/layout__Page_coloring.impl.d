lib/layout/page_coloring.ml: Address_map Array Cache Coloring Format Hashtbl List Machine Printf Profile Vm
