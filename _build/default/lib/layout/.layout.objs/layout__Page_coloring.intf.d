lib/layout/page_coloring.mli: Address_map Cache Format Machine Profile Vm
