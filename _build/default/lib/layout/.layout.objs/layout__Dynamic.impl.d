lib/layout/dynamic.ml: Cache Format Hashtbl List Machine Partition Printf Region String Vm
