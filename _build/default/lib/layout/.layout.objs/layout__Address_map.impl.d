lib/layout/address_map.ml: Format List Printf Region
