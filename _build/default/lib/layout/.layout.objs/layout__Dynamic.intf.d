lib/layout/dynamic.mli: Format Machine Memtrace Partition
