lib/layout/partition.mli: Address_map Cache Coloring Format Machine Region
