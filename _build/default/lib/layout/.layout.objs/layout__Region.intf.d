lib/layout/region.mli: Format Profile Vm
