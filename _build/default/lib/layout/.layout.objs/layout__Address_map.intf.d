lib/layout/address_map.mli: Format Region
