lib/layout/region.ml: Format List Printf Profile Vm
