lib/layout/partition.ml: Address_map Array Cache Coloring Format Hashtbl Int List Machine Printf Profile Region String Vm
