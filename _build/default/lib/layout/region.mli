(** Layout regions: the units the column-assignment algorithm places.

    Step 1 of the paper's algorithm (Section 3.1): a variable larger than a
    column cannot behave as scratchpad even if exclusively assigned, so it
    is split into column-sized subarrays; each subarray becomes one region
    (one graph vertex, one tint). Variables that fit are single regions. *)

type t = {
  var : string;  (** original program variable *)
  part : int;  (** subarray index, 0 for unsplit variables *)
  parts : int;  (** total subarrays of the variable *)
  offset : int;  (** byte offset of this subarray within the variable *)
  size : int;  (** bytes; always <= the column size used for splitting *)
  summary : Profile.Lifetime.summary;
      (** the variable's summary with accesses divided evenly among its
          subarrays (the IF carries no per-subarray profile) *)
}

val name : t -> string
(** ["var"] for unsplit variables, ["var#part"] otherwise. *)

val tint : t -> Vm.Tint.t
(** One tint per region, named after {!name}. *)

val density : t -> float
(** Estimated accesses per byte: the greedy key for scratchpad selection. *)

val split_vars :
  ?region_summaries:(string * Profile.Lifetime.summary) list ->
  column_size:int ->
  vars:(string * int) list ->
  summaries:(string * Profile.Lifetime.summary) list ->
  unit ->
  t list
(** Build regions for every variable that has a summary (variables without
    summaries are never referenced and need no placement). Preserves
    [vars] order; raises [Invalid_argument] on non-positive sizes or a
    non-positive column size.

    When a variable is split, each subarray's summary is looked up in
    [region_summaries] under the region's {!name} (["var#part"]) — exact
    per-subarray lifetimes from
    {!Profile.Lifetime.of_trace_classified} — and only falls back to
    dividing the whole variable's summary evenly when absent. *)

val pp : Format.formatter -> t -> unit
