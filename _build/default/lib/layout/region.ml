type t = {
  var : string;
  part : int;
  parts : int;
  offset : int;
  size : int;
  summary : Profile.Lifetime.summary;
}

let name r = if r.parts = 1 then r.var else Printf.sprintf "%s#%d" r.var r.part
let tint r = Vm.Tint.make (name r)
let density r = r.summary.Profile.Lifetime.accesses /. float_of_int r.size

let split_vars ?(region_summaries = []) ~column_size ~vars ~summaries () =
  if column_size <= 0 then invalid_arg "Region.split_vars: column_size";
  List.concat_map
    (fun (var, size) ->
      if size <= 0 then
        invalid_arg (Printf.sprintf "Region.split_vars: %s has size %d" var size);
      match List.assoc_opt var summaries with
      | None -> []
      | Some info ->
          let parts = (size + column_size - 1) / column_size in
          (* Fallback when no exact per-subarray profile is available: keep
             the whole variable's interval, split the count evenly, drop
             exact positions. *)
          let divided =
            if parts = 1 then info
            else
              Profile.Lifetime.summary
                ~accesses:(info.Profile.Lifetime.accesses /. float_of_int parts)
                ~first:info.Profile.Lifetime.first
                ~last:info.Profile.Lifetime.last ()
          in
          List.init parts (fun part ->
              let offset = part * column_size in
              let name =
                if parts = 1 then var else Printf.sprintf "%s#%d" var part
              in
              let summary =
                match List.assoc_opt name region_summaries with
                | Some exact -> exact
                | None -> divided
              in
              { var; part; parts; offset; size = min column_size (size - offset); summary }))
    vars

let pp ppf r =
  Format.fprintf ppf "%s [%d..%d) %a" (name r) r.offset (r.offset + r.size)
    Profile.Lifetime.pp_summary r.summary
