type t = {
  mutable labels : string array;
  mutable matrix : int array array;  (* symmetric, 0 diagonal *)
  mutable n : int;
}

let create () = { labels = [||]; matrix = [||]; n = 0 }

let copy t =
  {
    labels = Array.copy t.labels;
    matrix = Array.map Array.copy t.matrix;
    n = t.n;
  }

let grow t =
  let cap = Array.length t.labels in
  if t.n = cap then begin
    let cap' = max 8 (2 * cap) in
    let labels = Array.make cap' "" in
    Array.blit t.labels 0 labels 0 t.n;
    let matrix = Array.init cap' (fun _ -> Array.make cap' 0) in
    for i = 0 to t.n - 1 do
      Array.blit t.matrix.(i) 0 matrix.(i) 0 t.n
    done;
    t.labels <- labels;
    t.matrix <- matrix
  end

let add_vertex t ~label =
  grow t;
  let id = t.n in
  t.labels.(id) <- label;
  t.n <- t.n + 1;
  id

let vertex_count t = t.n

let check_vertex t v =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "Graph: vertex %d" v)

let label t v =
  check_vertex t v;
  t.labels.(v)

let find_label t name =
  let rec loop i =
    if i >= t.n then None else if t.labels.(i) = name then Some i else loop (i + 1)
  in
  loop 0

let set_weight t u v w =
  check_vertex t u;
  check_vertex t v;
  if u = v then invalid_arg "Graph.set_weight: self-edge";
  if w < 0 then invalid_arg "Graph.set_weight: negative weight";
  t.matrix.(u).(v) <- w;
  t.matrix.(v).(u) <- w

let weight t u v =
  check_vertex t u;
  check_vertex t v;
  t.matrix.(u).(v)

let edges t =
  let out = ref [] in
  for u = t.n - 1 downto 0 do
    for v = t.n - 1 downto u + 1 do
      if t.matrix.(u).(v) > 0 then out := (u, v, t.matrix.(u).(v)) :: !out
    done
  done;
  !out

let neighbors t u =
  check_vertex t u;
  let out = ref [] in
  for v = t.n - 1 downto 0 do
    if t.matrix.(u).(v) > 0 then out := (v, t.matrix.(u).(v)) :: !out
  done;
  !out

let degree t u = List.length (neighbors t u)

let total_weight t =
  List.fold_left (fun acc (_, _, w) -> acc + w) 0 (edges t)

let min_weight_edge t =
  List.fold_left
    (fun acc (u, v, w) ->
      match acc with
      | Some (_, _, w') when w' <= w -> acc
      | _ -> Some (u, v, w))
    None (edges t)

let is_coloring_proper t colors =
  if Array.length colors <> t.n then
    invalid_arg "Graph.is_coloring_proper: wrong coloring length";
  List.for_all (fun (u, v, _) -> colors.(u) <> colors.(v)) (edges t)

let coloring_cost t colors =
  if Array.length colors <> t.n then
    invalid_arg "Graph.coloring_cost: wrong coloring length";
  List.fold_left
    (fun acc (u, v, w) -> if colors.(u) = colors.(v) then acc + w else acc)
    0 (edges t)

let pp ppf t =
  Format.fprintf ppf "@[<v>%d vertices@," t.n;
  List.iter
    (fun (u, v, w) ->
      Format.fprintf ppf "%s -- %s (%d)@," t.labels.(u) t.labels.(v) w)
    (edges t);
  Format.fprintf ppf "@]"
