(** Weighted undirected interference graphs.

    Vertices are program variables; the weight of an edge is the potential
    conflict cost of placing its endpoints in the same cache column
    (Section 3.1). Weight 0 means no edge. Graphs are small (one vertex per
    candidate variable), so a dense symmetric matrix representation is
    used. *)

type t

val create : unit -> t
val copy : t -> t

val add_vertex : t -> label:string -> int
(** Returns the new vertex id (consecutive from 0). Labels need not be
    unique, but lookups by label return the first match. *)

val vertex_count : t -> int
val label : t -> int -> string
val find_label : t -> string -> int option

val set_weight : t -> int -> int -> int -> unit
(** [set_weight g u v w] sets the edge weight (symmetric). [w = 0] removes
    the edge. Raises [Invalid_argument] on self-edges, negative weights or
    unknown vertices. *)

val weight : t -> int -> int -> int
val edges : t -> (int * int * int) list
(** Positive-weight edges [(u, v, w)] with [u < v], ascending by [u]. *)

val neighbors : t -> int -> (int * int) list
(** [(vertex, weight)] pairs with positive weight. *)

val degree : t -> int -> int
val total_weight : t -> int
val min_weight_edge : t -> (int * int * int) option
(** The positive edge of minimum weight, ties broken by vertex order. *)

val is_coloring_proper : t -> int array -> bool
(** No positive edge joins two equal colors. *)

val coloring_cost : t -> int array -> int
(** The paper's objective W: total weight of edges whose endpoints share a
    color. 0 iff the coloring is proper. *)

val pp : Format.formatter -> t -> unit
