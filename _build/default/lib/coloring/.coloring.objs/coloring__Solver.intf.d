lib/coloring/solver.mli: Graph
