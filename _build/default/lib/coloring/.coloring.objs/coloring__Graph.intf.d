lib/coloring/graph.mli: Format
