lib/coloring/graph.ml: Array Format List Printf
