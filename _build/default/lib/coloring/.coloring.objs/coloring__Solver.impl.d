lib/coloring/solver.ml: Array Float Graph Hashtbl List
