
let dsatur_greedy g =
  let n = Graph.vertex_count g in
  if n = 0 then (0, [||])
  else begin
    let colors = Array.make n (-1) in
    let saturation v =
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (u, _) -> if colors.(u) >= 0 then Hashtbl.replace seen colors.(u) ())
        (Graph.neighbors g v);
      Hashtbl.length seen
    in
    let pick () =
      let best = ref (-1) and best_key = ref (-1, -1) in
      for v = 0 to n - 1 do
        if colors.(v) < 0 then begin
          let key = (saturation v, Graph.degree g v) in
          if key > !best_key then begin
            best := v;
            best_key := key
          end
        end
      done;
      !best
    in
    let used = ref 0 in
    for _ = 1 to n do
      let v = pick () in
      let forbidden = Array.make n false in
      List.iter
        (fun (u, _) -> if colors.(u) >= 0 then forbidden.(colors.(u)) <- true)
        (Graph.neighbors g v);
      let rec first c = if forbidden.(c) then first (c + 1) else c in
      let c = first 0 in
      colors.(v) <- c;
      if c + 1 > !used then used := c + 1
    done;
    (!used, colors)
  end

exception Budget_exhausted

let chromatic ?(node_budget = 500_000) g =
  let n = Graph.vertex_count g in
  if n = 0 then (0, [||])
  else begin
    let ub, best = dsatur_greedy g in
    let ub = ref ub and best = ref best in
    let colors = Array.make n (-1) in
    let nodes = ref 0 in
    (* Saturation-guided branch and bound: at each node, color the most
       saturated uncolored vertex with every feasible existing color plus at
       most one fresh color, pruning branches that cannot beat the
       incumbent. *)
    let rec solve colored used =
      incr nodes;
      if !nodes > node_budget then raise Budget_exhausted;
      if used >= !ub then ()
      else if colored = n then begin
        ub := used;
        best := Array.copy colors
      end
      else begin
        let pick = ref (-1) and pick_key = ref (-1, -1) in
        for v = 0 to n - 1 do
          if colors.(v) < 0 then begin
            let seen = Hashtbl.create 8 in
            List.iter
              (fun (u, _) ->
                if colors.(u) >= 0 then Hashtbl.replace seen colors.(u) ())
              (Graph.neighbors g v);
            let key = (Hashtbl.length seen, Graph.degree g v) in
            if key > !pick_key then begin
              pick := v;
              pick_key := key
            end
          end
        done;
        let v = !pick in
        let forbidden = Array.make (used + 1) false in
        List.iter
          (fun (u, _) ->
            if colors.(u) >= 0 && colors.(u) <= used then
              forbidden.(colors.(u)) <- true)
          (Graph.neighbors g v);
        for c = 0 to min (used - 1) (!ub - 2) do
          if not forbidden.(c) then begin
            colors.(v) <- c;
            solve (colored + 1) used;
            colors.(v) <- -1
          end
        done;
        (* one fresh color *)
        if used + 1 < !ub then begin
          colors.(v) <- used;
          solve (colored + 1) (used + 1);
          colors.(v) <- -1
        end
      end
    in
    (try solve 0 0 with Budget_exhausted -> ());
    (!ub, !best)
  end

let exact_k ?node_budget g ~k =
  let nc, coloring = chromatic ?node_budget g in
  if nc <= k then Some coloring else None

let greedy_weighted g ~k =
  if k < 1 then invalid_arg "Solver.greedy_weighted: k must be >= 1";
  let n = Graph.vertex_count g in
  let colors = Array.make n (-1) in
  let incident v =
    List.fold_left (fun acc (_, w) -> acc + w) 0 (Graph.neighbors g v)
  in
  let order =
    List.sort
      (fun a b -> compare (incident b, a) (incident a, b))
      (List.init n (fun v -> v))
  in
  let added_cost v c =
    List.fold_left
      (fun acc (u, w) -> if colors.(u) = c then acc + w else acc)
      0 (Graph.neighbors g v)
  in
  let place v =
    let best = ref 0 and best_cost = ref max_int in
    for c = 0 to k - 1 do
      let cost = added_cost v c in
      if cost < !best_cost then begin
        best := c;
        best_cost := cost
      end
    done;
    colors.(v) <- !best
  in
  List.iter place order;
  colors

(* Quotient graph over groups of original vertices: inter-group weights are
   summed; intra-group weight is the cost already accepted by merging. *)
let quotient g groups =
  let q = Graph.create () in
  List.iter
    (fun members ->
      match members with
      | [] -> ()
      | first :: _ -> ignore (Graph.add_vertex q ~label:(Graph.label g first)))
    groups;
  let arr = Array.of_list groups in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      let w =
        List.fold_left
          (fun acc u ->
            List.fold_left (fun acc v -> acc + Graph.weight g u v) acc arr.(j))
          0 arr.(i)
      in
      if w > 0 then Graph.set_weight q i j w
    done
  done;
  q

let assign_columns ?(exact_limit = 28) ?node_budget ?heat g ~k =
  if k < 1 then invalid_arg "Solver.assign_columns: k must be >= 1";
  let n = Graph.vertex_count g in
  (match heat with
  | Some h when Array.length h <> n ->
      invalid_arg "Solver.assign_columns: heat array length mismatch"
  | Some _ | None -> ());
  if n = 0 then [||]
  else begin
    let color_quotient q =
      if Graph.vertex_count q > exact_limit then dsatur_greedy q
      else chromatic ?node_budget q
    in
    (* Merge-edge choice: minimum weight first (the paper's rule); among
       ties, prefer endpoints with the lowest peak access heat — merging two
       cold variables hurts less than chaining a hot one to anything. *)
    let group_heat members =
      match heat with
      | None -> 0.
      | Some h -> List.fold_left (fun acc v -> acc +. h.(v)) 0. members
    in
    let pick_merge_edge q groups =
      let arr = Array.of_list groups in
      List.fold_left
        (fun acc (u, v, w) ->
          let key = (w, Float.max (group_heat arr.(u)) (group_heat arr.(v))) in
          match acc with
          | Some (_, _, best_key) when best_key <= key -> acc
          | _ -> Some (u, v, key))
        None (Graph.edges q)
    in
    let rec loop groups =
      let q = quotient g groups in
      let nc, coloring = color_quotient q in
      if nc <= k then begin
        let colors = Array.make n 0 in
        List.iteri
          (fun gi members -> List.iter (fun v -> colors.(v) <- coloring.(gi)) members)
          groups;
        colors
      end
      else
        match pick_merge_edge q groups with
        | Some (gi, gj, _) ->
            let arr = Array.of_list groups in
            let merged = arr.(gi) @ arr.(gj) in
            let groups' =
              List.concat
                (List.mapi
                   (fun i members ->
                     if i = gi then [ merged ]
                     else if i = gj then []
                     else [ members ])
                   groups)
            in
            loop groups'
        | None ->
            (* No positive edges but still > k colors: cannot happen (an
               edgeless graph is 1-colorable), kept for totality. *)
            let _, coloring = dsatur_greedy q in
            let colors = Array.make n 0 in
            List.iteri
              (fun gi members ->
                List.iter (fun v -> colors.(v) <- coloring.(gi) mod k) members)
              groups;
            colors
    in
    loop (List.init n (fun v -> [ v ]))
  end
