(** Graph-coloring engines for column assignment (paper Section 3.1.2).

    The paper first drops zero-weight edges, finds an exact minimum coloring
    (citing Coudert's exact coloring [5]), and — when more colors than
    columns are needed — repeatedly merges the endpoints of the
    minimum-weight edge and recolors until the quotient graph is
    k-colorable. {!assign_columns} implements exactly that loop on top of a
    DSATUR branch-and-bound exact colorer.

    Exactness is exponential in the worst case: {!chromatic} takes a node
    budget and falls back to its greedy incumbent when exceeded, and
    {!assign_columns} switches to {!greedy_weighted} above [exact_limit]
    vertices. Both caps are far above the size of real layout graphs (one
    vertex per program array). *)

val dsatur_greedy : Graph.t -> int * int array
(** Proper coloring by saturation-degree greedy; returns (colors used,
    coloring). The classic upper bound for the exact search. *)

val chromatic : ?node_budget:int -> Graph.t -> int * int array
(** Exact chromatic number and a witness coloring via branch and bound
    (default budget 500k nodes; on exhaustion returns the best proper
    coloring found so far, an upper bound). *)

val exact_k : ?node_budget:int -> Graph.t -> k:int -> int array option
(** A proper coloring with at most [k] colors, when the exact engine can
    find one. *)

val greedy_weighted : Graph.t -> k:int -> int array
(** Heaviest-vertex-first greedy assignment into exactly [k] color classes,
    each vertex taking the class that adds the least same-class weight.
    Never fails; the coloring may be improper when [k] < the chromatic
    number — the returned coloring then has positive
    {!Graph.coloring_cost}. *)

val assign_columns :
  ?exact_limit:int -> ?node_budget:int -> ?heat:float array -> Graph.t -> k:int -> int array
(** The paper's heuristic: exact-color; while more than [k] colors are
    needed, merge the minimum-weight edge's endpoints and recolor; merged
    vertices share a color. [heat] (per-vertex access counts) refines the
    paper's rule as a tie-break only: among minimum-weight edges, merge the
    coldest pair — two rarely-touched variables sharing a column cost less
    in practice than anything chained to a hot one. Raises
    [Invalid_argument] when [k < 1] or [heat] has the wrong length. *)
