(** Deterministic synthetic reference-stream generators.

    These are used by tests and ablation benchmarks to produce streams with
    known locality structure (sequential streams, strided sweeps, uniform
    random, and loop-like re-walks). All generators are seeded and
    reproducible. *)

val sequential :
  ?var:string -> ?gap:int -> base:int -> count:int -> stride:int -> unit -> Trace.t
(** [sequential ~base ~count ~stride ()] touches [base], [base+stride], ... *)

val repeat_walk :
  ?var:string -> ?gap:int -> base:int -> len:int -> stride:int -> passes:int -> unit
  -> Trace.t
(** Walks a region of [len] elements [passes] times: high temporal locality
    when the region fits in cache. *)

val uniform_random :
  ?var:string -> ?gap:int -> seed:int -> base:int -> span:int -> count:int -> unit
  -> Trace.t
(** [count] accesses uniformly distributed over [span] bytes above [base],
    aligned to 4 bytes. *)

val interleave : Trace.t list -> quantum:int -> Trace.t
(** Round-robin interleave: take [quantum] accesses from each trace in turn
    until all are exhausted. Used to model naive multiprogramming without a
    full scheduler. *)
