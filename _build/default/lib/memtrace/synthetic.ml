let sequential ?var ?gap ~base ~count ~stride () =
  let b = Trace.Builder.create ~initial_capacity:count () in
  for i = 0 to count - 1 do
    Trace.Builder.emit b ?var ?gap (base + (i * stride))
  done;
  Trace.Builder.build b

let repeat_walk ?var ?gap ~base ~len ~stride ~passes () =
  let b = Trace.Builder.create ~initial_capacity:(len * passes) () in
  for _ = 1 to passes do
    for i = 0 to len - 1 do
      Trace.Builder.emit b ?var ?gap (base + (i * stride))
    done
  done;
  Trace.Builder.build b

(* xorshift64* gives deterministic, good-enough pseudo-random streams without
   touching the global [Random] state. *)
let xorshift state =
  let x = !state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  state := x;
  Int64.to_int (Int64.logand x 0x3FFFFFFFFFFFFFFFL)

let uniform_random ?var ?gap ~seed ~base ~span ~count () =
  if span <= 0 then invalid_arg "Synthetic.uniform_random: span must be positive";
  let state = ref (Int64.of_int (if seed = 0 then 0x9E3779B9 else seed)) in
  let b = Trace.Builder.create ~initial_capacity:count () in
  for _ = 1 to count do
    let off = xorshift state mod span land lnot 3 in
    Trace.Builder.emit b ?var ?gap (base + off)
  done;
  Trace.Builder.build b

let interleave traces ~quantum =
  if quantum <= 0 then invalid_arg "Synthetic.interleave: quantum must be positive";
  let traces = Array.of_list traces in
  let pos = Array.map (fun _ -> 0) traces in
  let total = Array.fold_left (fun acc t -> acc + Trace.length t) 0 traces in
  let b = Trace.Builder.create ~initial_capacity:total () in
  let remaining = ref total in
  let turn = ref 0 in
  while !remaining > 0 do
    let i = !turn mod Array.length traces in
    let t = traces.(i) in
    let n = min quantum (Trace.length t - pos.(i)) in
    for j = pos.(i) to pos.(i) + n - 1 do
      Trace.Builder.add b (Trace.get t j)
    done;
    pos.(i) <- pos.(i) + n;
    remaining := !remaining - n;
    incr turn
  done;
  Trace.Builder.build b
