lib/memtrace/access.mli: Format
