lib/memtrace/trace_file.ml: Access Fun Printf String Trace
