lib/memtrace/trace.ml: Access Array Buffer Format Hashtbl List String
