lib/memtrace/trace_file.mli: Trace
