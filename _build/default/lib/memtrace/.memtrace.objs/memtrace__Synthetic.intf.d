lib/memtrace/synthetic.mli: Trace
