lib/memtrace/access.ml: Format Printf Stdlib String
