lib/memtrace/trace.mli: Access Format
