lib/memtrace/synthetic.ml: Array Int64 Trace
