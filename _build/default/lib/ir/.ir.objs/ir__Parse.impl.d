lib/ir/parse.ml: Ast Format Fun List Printf String
