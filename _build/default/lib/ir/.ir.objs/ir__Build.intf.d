lib/ir/build.mli: Ast
