lib/ir/ast.ml: Format Hashtbl List String
