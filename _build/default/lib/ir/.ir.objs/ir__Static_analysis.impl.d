lib/ir/static_analysis.ml: Ast Float Hashtbl List Option Printf Profile
