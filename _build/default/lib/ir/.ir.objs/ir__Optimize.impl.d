lib/ir/optimize.ml: Ast Hashtbl List Printf
