lib/ir/build.ml: Ast
