lib/ir/interp.mli: Ast Memtrace
