lib/ir/static_analysis.mli: Ast Profile
