open Ast

let scalar name ?(elem_size = 4) () = { name; elems = 1; elem_size; scalar = true }

let array name ~elems ?(elem_size = 4) () =
  { name; elems; elem_size; scalar = false }

let i n = Int n
let r name = Reg name
let s name = Scalar name
let ld name idx = Load (name, idx)
let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( % ) a b = Binop (Mod, a, b)
let shl a b = Binop (Shl, a, b)
let shr a b = Binop (Shr, a, b)
let min' a b = Binop (Min, a, b)
let max' a b = Binop (Max, a, b)
let neg e = Unary_minus e

let cond rel ?(prob = 0.5) lhs rhs = { rel; lhs; rhs; prob }
let eq ?prob a b = cond Eq ?prob a b
let ne ?prob a b = cond Ne ?prob a b
let lt ?prob a b = cond Lt ?prob a b
let le ?prob a b = cond Le ?prob a b
let gt ?prob a b = cond Gt ?prob a b
let ge ?prob a b = cond Ge ?prob a b

let setr name e = Assign_reg (name, e)
let set name e = Assign_scalar (name, e)
let st name idx e = Store (name, idx, e)
let for_ reg lo hi body = For { reg; lo; hi; body }
let while_ cond ~est_iterations body = While { cond; est_iterations; body }
let if_ cond then_ = If { cond; then_; else_ = [] }
let if_else cond then_ else_ = If { cond; then_; else_ }
let call name = Call name
let proc proc_name body = { proc_name; body }

let program ~vars procs =
  let p = { vars; procs } in
  validate p;
  p
