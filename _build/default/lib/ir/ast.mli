(** The intermediate form (IF) the layout pass operates on.

    A deliberately small, compiler-front-end-shaped language: declared
    memory-resident variables (scalars and arrays), register temporaries
    (loop counters and scratch values that cost no memory traffic), affine
    or data-dependent indexing, counted loops, probabilistic branches and
    procedure calls. Programs in this form are both {e executable} (the
    {!module:Interp} emits the exact memory trace, the paper's profile-based
    method) and {e analyzable} ({!module:Static_analysis} estimates access
    counts and lifetimes without running, the paper's program-analysis
    method). *)

(** A memory-resident program variable. *)
type var = {
  name : string;
  elems : int;  (** number of elements; 1 for scalars *)
  elem_size : int;  (** bytes per element *)
  scalar : bool;
}

val var_size_bytes : var -> int

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** truncating; raises {!Interp_error} on zero divisor at runtime *)
  | Mod
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Min
  | Max

type relop =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type expr =
  | Int of int
  | Reg of string  (** register temporary: free to read *)
  | Scalar of string  (** memory-resident scalar: one load *)
  | Load of string * expr  (** array element: one load *)
  | Unary_minus of expr
  | Binop of binop * expr * expr

(** A branch condition with an estimated taken-probability used only by the
    static analysis; the interpreter evaluates the real data. *)
type cond = {
  rel : relop;
  lhs : expr;
  rhs : expr;
  prob : float;
}

type stmt =
  | Assign_reg of string * expr
  | Assign_scalar of string * expr  (** one store *)
  | Store of string * expr * expr  (** array, index, value: one store *)
  | For of {
      reg : string;
      lo : expr;
      hi : expr;  (** exclusive upper bound *)
      body : stmt list;
    }
  | While of {
      cond : cond;
      est_iterations : int;  (** static-analysis estimate *)
      body : stmt list;
    }
  | If of {
      cond : cond;
      then_ : stmt list;
      else_ : stmt list;
    }
  | Call of string

type proc = {
  proc_name : string;
  body : stmt list;
}

type program = {
  vars : var list;
  procs : proc list;
}

exception Invalid_program of string

val find_var : program -> string -> var option
val find_proc : program -> string -> proc option

val validate : program -> unit
(** Raises {!Invalid_program} on duplicate declarations, references to
    undeclared variables or procedures, array/scalar misuse, non-positive
    sizes, bad probabilities, or recursive (even mutually) procedures. *)

val vars_referenced : program -> proc:string -> string list
(** Memory variables reachable from [proc] (through calls), in first-use
    preorder. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit
