(** Classical scalar optimizations over the IF.

    The paper's layout techniques are meant to live "in the front-end of a
    compiler" (Section 1.2); this module supplies the surrounding front-end
    passes a real compiler would run before (and independently of) data
    layout. All passes preserve the program's memory values; they may remove
    memory {e accesses} (that is the point — fewer accesses change the
    trace, never the results).

    Passes:
    - {!fold}: constant folding and algebraic identities
      ([x+0], [x*1], [x-0], [x lsl 0]), plus strength reduction of
      multiplication by a power of two into a shift. Division and modulo by
      a constant zero are deliberately {e not} folded (the runtime error
      must survive), and annihilations like [x*0 -> 0] are applied only when
      the discarded operand performs no memory access that could fault.
    - {!eliminate_dead_registers}: drops register assignments whose register
      is never read anywhere in the program, when the right-hand side is
      memory-pure.
    - {!hoist_loop_invariants}: a scalar read inside a counted loop whose
      body never writes that scalar (and performs no calls) is loaded once
      into a fresh register before the loop. Applied only when the loop's
      trip count is a known positive constant, so a zero-trip loop never
      gains an access it did not have.
    - {!optimize}: all of the above, to a fixed point (bounded).

    The optimizer is deliberately {e not} applied implicitly by the layout
    pipeline: its effect on access counts (and hence on the layout
    algorithm's weights) is measured by an ablation instead. *)

val fold : Ast.program -> Ast.program
val eliminate_dead_registers : Ast.program -> Ast.program
val hoist_loop_invariants : Ast.program -> Ast.program

val optimize : ?max_rounds:int -> Ast.program -> Ast.program
(** Runs the passes in sequence until nothing changes (or [max_rounds],
    default 8). The result is validated. *)

val memory_pure_expr : Ast.expr -> bool
(** No [Scalar] or [Load] anywhere: evaluating it touches no memory and
    cannot fault on a bounds check. *)
