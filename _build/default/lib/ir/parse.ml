exception Parse_error of {
  line : int;
  message : string;
}

(* --- lexer --- *)

type token =
  | IDENT of string
  | REG of string
  | INT of int
  | PROB of float
  | ASSIGN (* := *)
  | EQUALS (* = *)
  | DOTDOT
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COLON
  | COMMA
  | OP of string (* + - * / % << >> & | ^ *)
  | RELOP of string (* == != < <= > >= *)
  | EOF

type lexed = {
  token : token;
  line : int;
}

let error ~line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 in
  let push token = tokens := { token; line = !line } :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some source.[!i + k] else None in
  let take_while pred =
    let start = !i in
    while !i < n && pred source.[!i] do
      incr i
    done;
    String.sub source start (!i - start)
  in
  while !i < n do
    let c = source.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then
      (* line comment *)
      while !i < n && source.[!i] <> '\n' do
        incr i
      done
    else if is_digit c then push (INT (int_of_string (take_while is_digit)))
    else if is_ident_start c then push (IDENT (take_while is_ident))
    else begin
      let two =
        if !i + 1 < n then String.sub source !i 2 else String.make 1 c
      in
      match two with
      | ":=" -> push ASSIGN; i := !i + 2
      | ".." -> push DOTDOT; i := !i + 2
      | "<<" | ">>" -> push (OP two); i := !i + 2
      | "==" | "!=" | "<=" | ">=" -> push (RELOP two); i := !i + 2
      | _ -> (
          match c with
          | '%' when (match peek 1 with Some c -> is_ident_start c | None -> false) ->
              incr i;
              push (REG (take_while is_ident))
          | '-' when (match peek 1 with Some c -> is_digit c | None -> false) ->
              incr i;
              push (INT (-int_of_string (take_while is_digit)))
          | '@' ->
              incr i;
              let f = take_while (fun c -> is_digit c || c = '.' || c = 'e' || c = '-' || c = '+') in
              (match float_of_string_opt f with
              | Some p -> push (PROB p)
              | None -> error ~line:!line "bad probability %S" f)
          | '{' -> push LBRACE; incr i
          | '}' -> push RBRACE; incr i
          | '(' -> push LPAREN; incr i
          | ')' -> push RPAREN; incr i
          | '[' -> push LBRACKET; incr i
          | ']' -> push RBRACKET; incr i
          | ':' -> push COLON; incr i
          | ',' -> push COMMA; incr i
          | '=' -> push EQUALS; incr i
          | '<' | '>' -> push (RELOP (String.make 1 c)); incr i
          | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' ->
              push (OP (String.make 1 c));
              incr i
          | _ -> error ~line:!line "unexpected character %C" c)
    end
  done;
  push EOF;
  List.rev !tokens

(* --- parser state --- *)

type state = {
  mutable rest : lexed list;
}

let current st =
  match st.rest with [] -> assert false | t :: _ -> t

let advance st =
  match st.rest with [] -> () | _ :: rest -> st.rest <- rest

let fail st fmt =
  let { line; _ } = current st in
  error ~line fmt

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | REG s -> Printf.sprintf "register %%%s" s
  | INT n -> Printf.sprintf "integer %d" n
  | PROB f -> Printf.sprintf "@%g" f
  | ASSIGN -> "':='"
  | EQUALS -> "'='"
  | DOTDOT -> "'..'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COLON -> "':'"
  | COMMA -> "','"
  | OP s | RELOP s -> Printf.sprintf "'%s'" s
  | EOF -> "end of input"

let expect st token =
  let t = current st in
  if t.token = token then advance st
  else fail st "expected %s, found %s" (token_name token) (token_name t.token)

let expect_ident st =
  match (current st).token with
  | IDENT s ->
      advance st;
      s
  | t -> fail st "expected an identifier, found %s" (token_name t)

let expect_int st =
  match (current st).token with
  | INT n ->
      advance st;
      n
  | t -> fail st "expected an integer, found %s" (token_name t)

(* --- expressions: precedence climbing --- *)

let binop_of_string st = function
  | "+" -> Ast.Add
  | "-" -> Ast.Sub
  | "*" -> Ast.Mul
  | "/" -> Ast.Div
  | "%" -> Ast.Mod
  | "<<" -> Ast.Shl
  | ">>" -> Ast.Shr
  | "&" -> Ast.Band
  | "|" -> Ast.Bor
  | "^" -> Ast.Bxor
  | s -> fail st "unknown operator %S" s

let precedence = function
  | "|" -> 1
  | "^" -> 2
  | "&" -> 3
  | "<<" | ">>" -> 4
  | "+" | "-" -> 5
  | "*" | "/" | "%" -> 6
  | _ -> 0

let rec parse_primary st =
  match (current st).token with
  | INT n ->
      advance st;
      Ast.Int n
  | REG r ->
      advance st;
      Ast.Reg r
  | OP "-" ->
      advance st;
      Ast.Unary_minus (parse_primary st)
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN;
      e
  | IDENT ("min" | "max") when (match st.rest with _ :: { token = LPAREN; _ } :: _ -> true | _ -> false) ->
      let op =
        match (current st).token with
        | IDENT "min" -> Ast.Min
        | _ -> Ast.Max
      in
      advance st;
      expect st LPAREN;
      let a = parse_expr st in
      expect st COMMA;
      let b = parse_expr st in
      expect st RPAREN;
      Ast.Binop (op, a, b)
  | IDENT name -> (
      advance st;
      match (current st).token with
      | LBRACKET ->
          advance st;
          let idx = parse_expr st in
          expect st RBRACKET;
          Ast.Load (name, idx)
      | _ -> Ast.Scalar name)
  | t -> fail st "expected an expression, found %s" (token_name t)

and parse_expr ?(min_prec = 1) st =
  let lhs = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match (current st).token with
    | OP op when precedence op >= min_prec ->
        advance st;
        let rhs = parse_expr ~min_prec:(precedence op + 1) st in
        lhs := Ast.Binop (binop_of_string st op, !lhs, rhs)
    | _ -> continue_ := false
  done;
  !lhs

let parse_cond st =
  let lhs = parse_expr st in
  let rel =
    match (current st).token with
    | RELOP "==" -> Ast.Eq
    | RELOP "!=" -> Ast.Ne
    | RELOP "<" -> Ast.Lt
    | RELOP "<=" -> Ast.Le
    | RELOP ">" -> Ast.Gt
    | RELOP ">=" -> Ast.Ge
    | t -> fail st "expected a comparison, found %s" (token_name t)
  in
  advance st;
  let rhs = parse_expr st in
  let prob =
    match (current st).token with
    | PROB p ->
        advance st;
        p
    | _ -> 0.5
  in
  { Ast.rel; lhs; rhs; prob }

(* --- statements --- *)

let rec parse_block st =
  expect st LBRACE;
  let rec loop acc =
    match (current st).token with
    | RBRACE ->
        advance st;
        List.rev acc
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

and parse_stmt st =
  match (current st).token with
  | REG r ->
      advance st;
      expect st ASSIGN;
      Ast.Assign_reg (r, parse_expr st)
  | IDENT "for" ->
      advance st;
      let reg =
        match (current st).token with
        | REG r ->
            advance st;
            r
        | t -> fail st "expected a register after 'for', found %s" (token_name t)
      in
      expect st EQUALS;
      let lo = parse_expr st in
      expect st DOTDOT;
      let hi = parse_expr st in
      let body = parse_block st in
      Ast.For { reg; lo; hi; body }
  | IDENT "while" ->
      advance st;
      let cond = parse_cond st in
      let est_iterations =
        match (current st).token with
        | IDENT "est" ->
            advance st;
            expect_int st
        | _ -> 16
      in
      let body = parse_block st in
      Ast.While { cond; est_iterations; body }
  | IDENT "if" ->
      advance st;
      let cond = parse_cond st in
      let then_ = parse_block st in
      let else_ =
        match (current st).token with
        | IDENT "else" ->
            advance st;
            parse_block st
        | _ -> []
      in
      Ast.If { cond; then_; else_ }
  | IDENT "call" ->
      advance st;
      Ast.Call (expect_ident st)
  | IDENT name -> (
      advance st;
      match (current st).token with
      | ASSIGN ->
          advance st;
          Ast.Assign_scalar (name, parse_expr st)
      | LBRACKET ->
          advance st;
          let idx = parse_expr st in
          expect st RBRACKET;
          expect st ASSIGN;
          Ast.Store (name, idx, parse_expr st)
      | t -> fail st "expected ':=' or '[' after %S, found %s" name (token_name t))
  | t -> fail st "expected a statement, found %s" (token_name t)

(* --- declarations --- *)

let parse_byte_size st =
  (* "<int>B" lexes as INT then IDENT "B" *)
  let n = expect_int st in
  (match (current st).token with
  | IDENT "B" -> advance st
  | t -> fail st "expected 'B' after element size, found %s" (token_name t));
  n

let parse_decl st =
  match (current st).token with
  | IDENT "array" ->
      advance st;
      let name = expect_ident st in
      expect st COLON;
      let elems = expect_int st in
      (match (current st).token with
      | IDENT "x" -> advance st
      | t -> fail st "expected 'x' in array size, found %s" (token_name t));
      let elem_size = parse_byte_size st in
      Some { Ast.name; elems; elem_size; scalar = false }
  | IDENT "scalar" ->
      advance st;
      let name = expect_ident st in
      expect st COLON;
      let elem_size = parse_byte_size st in
      Some { Ast.name; elems = 1; elem_size; scalar = true }
  | _ -> None

let parse_proc st =
  match (current st).token with
  | IDENT "proc" ->
      advance st;
      let proc_name = expect_ident st in
      let body = parse_block st in
      Some { Ast.proc_name; body }
  | _ -> None

let program source =
  let st = { rest = tokenize source } in
  let rec decls acc =
    match parse_decl st with Some d -> decls (d :: acc) | None -> List.rev acc
  in
  let vars = decls [] in
  let rec procs acc =
    match parse_proc st with Some p -> procs (p :: acc) | None -> List.rev acc
  in
  let procs = procs [] in
  (match (current st).token with
  | EOF -> ()
  | t -> fail st "expected 'array', 'scalar', 'proc' or end of input, found %s" (token_name t));
  let p = { Ast.vars; procs } in
  Ast.validate p;
  p

let program_of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> program (really_input_string ic (in_channel_length ic)))

let expr source =
  let st = { rest = tokenize source } in
  let e = parse_expr st in
  match (current st).token with
  | EOF -> e
  | t -> error ~line:(current st).line "trailing input after expression: %s" (token_name t)
