(** Combinators for writing IF programs concisely.

    The workload kernels (and tests) build programs with these rather than
    raw {!Ast} constructors:

    {[
      let open Ir.Build in
      program
        ~vars:[ array "block" ~elems:64 ~elem_size:2 (); scalar "sum" () ]
        [
          proc "main"
            [
              for_ "i" (i 0) (i 64)
                [ set "sum" (s "sum" + ld "block" (r "i")) ];
            ];
        ]
    ]} *)

open Ast

val scalar : string -> ?elem_size:int -> unit -> var
(** 4-byte element by default. *)

val array : string -> elems:int -> ?elem_size:int -> unit -> var

val i : int -> expr
val r : string -> expr
val s : string -> expr
val ld : string -> expr -> expr

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( % ) : expr -> expr -> expr
val shl : expr -> expr -> expr
val shr : expr -> expr -> expr
val min' : expr -> expr -> expr
val max' : expr -> expr -> expr
val neg : expr -> expr

val eq : ?prob:float -> expr -> expr -> cond
val ne : ?prob:float -> expr -> expr -> cond
val lt : ?prob:float -> expr -> expr -> cond
val le : ?prob:float -> expr -> expr -> cond
val gt : ?prob:float -> expr -> expr -> cond
val ge : ?prob:float -> expr -> expr -> cond
(** [prob] (default 0.5) is the static-analysis estimate of the condition
    being true. *)

val setr : string -> expr -> stmt
val set : string -> expr -> stmt
val st : string -> expr -> expr -> stmt
val for_ : string -> expr -> expr -> stmt list -> stmt
(** [for_ "i" lo hi body] iterates [lo <= i < hi]. *)

val while_ : cond -> est_iterations:int -> stmt list -> stmt
val if_ : cond -> stmt list -> stmt
val if_else : cond -> stmt list -> stmt list -> stmt
val call : string -> stmt
val proc : string -> stmt list -> proc

val program : vars:var list -> proc list -> program
(** Validates; raises {!Ast.Invalid_program} on malformed input. *)
