(** Parser for the IF's concrete syntax — the exact inverse of
    {!Ast.pp_program}, so programs can be written in files (or dumped,
    edited and re-read):

    {v
    array coeff : 256 x 2B
    scalar qscale : 4B
    proc main {
      for %k = 0 .. 64 {
        %c := coeff[%k]
        if %c != 0 @0.65 {
          qscale := (%c * 3)
        } else {
          qscale := 0
        }
      }
      while qscale < 100 @0.5 est 7 { qscale := (qscale * 2) }
      call main_helper
    }
    proc main_helper { }
    v}

    Expressions use ordinary precedence ([|] < [^] < [&] < [<<] [>>] <
    [+] [-] < [*] [/] [%]), so hand-written files need no parentheses;
    the printer's fully-parenthesized output is a special case. [min]/[max]
    are two-argument calls; [%name] is a register; a bare identifier is a
    scalar variable; [name[e]] is an array access. The [@p] probability
    after a condition and the [est N] of a while are optional (defaults 0.5
    and 16). Line comments start with [#]. *)

exception Parse_error of {
  line : int;
  message : string;
}

val program : string -> Ast.program
(** Parse and {!Ast.validate}. Raises {!Parse_error} on syntax errors and
    {!Ast.Invalid_program} on semantic ones. *)

val program_of_file : string -> Ast.program
(** Raises [Sys_error] on I/O failure, plus the above. *)

val expr : string -> Ast.expr
(** Parse a single expression (for tests and tooling). *)
