type var = {
  name : string;
  elems : int;
  elem_size : int;
  scalar : bool;
}

let var_size_bytes v = v.elems * v.elem_size

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Min
  | Max

type relop =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type expr =
  | Int of int
  | Reg of string
  | Scalar of string
  | Load of string * expr
  | Unary_minus of expr
  | Binop of binop * expr * expr

type cond = {
  rel : relop;
  lhs : expr;
  rhs : expr;
  prob : float;
}

type stmt =
  | Assign_reg of string * expr
  | Assign_scalar of string * expr
  | Store of string * expr * expr
  | For of {
      reg : string;
      lo : expr;
      hi : expr;
      body : stmt list;
    }
  | While of {
      cond : cond;
      est_iterations : int;
      body : stmt list;
    }
  | If of {
      cond : cond;
      then_ : stmt list;
      else_ : stmt list;
    }
  | Call of string

type proc = {
  proc_name : string;
  body : stmt list;
}

type program = {
  vars : var list;
  procs : proc list;
}

exception Invalid_program of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_program s)) fmt

let find_var p name = List.find_opt (fun v -> v.name = name) p.vars
let find_proc p name = List.find_opt (fun pr -> pr.proc_name = name) p.procs

let rec check_expr p = function
  | Int _ | Reg _ -> ()
  | Scalar name -> (
      match find_var p name with
      | None -> invalid "undeclared scalar %s" name
      | Some v -> if not v.scalar then invalid "%s used as scalar but is an array" name)
  | Load (name, idx) -> (
      check_expr p idx;
      match find_var p name with
      | None -> invalid "undeclared array %s" name
      | Some v -> if v.scalar then invalid "%s indexed but is a scalar" name)
  | Unary_minus e -> check_expr p e
  | Binop (_, a, b) ->
      check_expr p a;
      check_expr p b

let check_cond p c =
  check_expr p c.lhs;
  check_expr p c.rhs;
  if not (c.prob >= 0. && c.prob <= 1.) then
    invalid "branch probability %f out of [0,1]" c.prob

let rec check_stmt p = function
  | Assign_reg (_, e) -> check_expr p e
  | Assign_scalar (name, e) -> (
      check_expr p e;
      match find_var p name with
      | None -> invalid "undeclared scalar %s" name
      | Some v -> if not v.scalar then invalid "%s assigned as scalar but is an array" name)
  | Store (name, idx, e) -> (
      check_expr p idx;
      check_expr p e;
      match find_var p name with
      | None -> invalid "undeclared array %s" name
      | Some v -> if v.scalar then invalid "%s stored as array but is a scalar" name)
  | For { lo; hi; body; _ } ->
      check_expr p lo;
      check_expr p hi;
      List.iter (check_stmt p) body
  | While { cond; est_iterations; body } ->
      check_cond p cond;
      if est_iterations < 0 then invalid "negative est_iterations";
      List.iter (check_stmt p) body
  | If { cond; then_; else_ } ->
      check_cond p cond;
      List.iter (check_stmt p) then_;
      List.iter (check_stmt p) else_
  | Call name ->
      if find_proc p name = None then invalid "undeclared procedure %s" name

(* Detect call cycles with a DFS over the call graph. *)
let check_no_recursion p =
  let rec calls_of_stmt acc = function
    | Call name -> name :: acc
    | For { body; _ } | While { body; _ } -> List.fold_left calls_of_stmt acc body
    | If { then_; else_; _ } ->
        List.fold_left calls_of_stmt (List.fold_left calls_of_stmt acc then_) else_
    | Assign_reg _ | Assign_scalar _ | Store _ -> acc
  in
  let callees name =
    match find_proc p name with
    | None -> []
    | Some pr -> List.fold_left calls_of_stmt [] pr.body
  in
  let rec visit path name =
    if List.mem name path then
      invalid "recursive procedure chain: %s" (String.concat " -> " (List.rev (name :: path)));
    List.iter (visit (name :: path)) (callees name)
  in
  List.iter (fun pr -> visit [] pr.proc_name) p.procs

let validate p =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun v ->
      if Hashtbl.mem seen v.name then invalid "duplicate variable %s" v.name;
      Hashtbl.add seen v.name ();
      if v.elems <= 0 || v.elem_size <= 0 then
        invalid "variable %s has non-positive size" v.name;
      if v.scalar && v.elems <> 1 then
        invalid "scalar %s must have a single element" v.name)
    p.vars;
  let seen_procs = Hashtbl.create 16 in
  List.iter
    (fun pr ->
      if Hashtbl.mem seen_procs pr.proc_name then
        invalid "duplicate procedure %s" pr.proc_name;
      Hashtbl.add seen_procs pr.proc_name ())
    p.procs;
  List.iter (fun pr -> List.iter (check_stmt p) pr.body) p.procs;
  check_no_recursion p

let vars_referenced p ~proc =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let record name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      order := name :: !order
    end
  in
  let rec walk_expr = function
    | Int _ | Reg _ -> ()
    | Scalar name -> record name
    | Load (name, idx) ->
        record name;
        walk_expr idx
    | Unary_minus e -> walk_expr e
    | Binop (_, a, b) ->
        walk_expr a;
        walk_expr b
  in
  let walk_cond c =
    walk_expr c.lhs;
    walk_expr c.rhs
  in
  let rec walk_stmt = function
    | Assign_reg (_, e) -> walk_expr e
    | Assign_scalar (name, e) ->
        record name;
        walk_expr e
    | Store (name, idx, e) ->
        record name;
        walk_expr idx;
        walk_expr e
    | For { lo; hi; body; _ } ->
        walk_expr lo;
        walk_expr hi;
        List.iter walk_stmt body
    | While { cond; body; _ } ->
        walk_cond cond;
        List.iter walk_stmt body
    | If { cond; then_; else_ } ->
        walk_cond cond;
        List.iter walk_stmt then_;
        List.iter walk_stmt else_
    | Call name -> (
        match find_proc p name with
        | None -> ()
        | Some pr -> List.iter walk_stmt pr.body)
  in
  (match find_proc p proc with
  | None -> invalid "no such procedure %s" proc
  | Some pr -> List.iter walk_stmt pr.body);
  List.rev !order

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Shl -> "<<"
  | Shr -> ">>"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Min -> "min"
  | Max -> "max"

let relop_to_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_expr ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Reg r -> Format.fprintf ppf "%%%s" r
  | Scalar s -> Format.fprintf ppf "%s" s
  | Load (a, i) -> Format.fprintf ppf "%s[%a]" a pp_expr i
  | Unary_minus e -> Format.fprintf ppf "-(%a)" pp_expr e
  | Binop ((Min | Max) as op, a, b) ->
      Format.fprintf ppf "%s(%a, %a)" (binop_to_string op) pp_expr a pp_expr b
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b

(* The concrete syntax printed here is exactly what {!Parse} reads back:
   pp_program and Parse.program are inverses (property-tested on the real
   workloads). *)
let pp_cond ppf c =
  Format.fprintf ppf "%a %s %a @@%g" pp_expr c.lhs (relop_to_string c.rel)
    pp_expr c.rhs c.prob

let rec pp_stmt ppf = function
  | Assign_reg (r, e) -> Format.fprintf ppf "%%%s := %a" r pp_expr e
  | Assign_scalar (s, e) -> Format.fprintf ppf "%s := %a" s pp_expr e
  | Store (a, i, e) -> Format.fprintf ppf "%s[%a] := %a" a pp_expr i pp_expr e
  | For { reg; lo; hi; body } ->
      Format.fprintf ppf "@[<v 2>for %%%s = %a .. %a {@,%a@]@,}" reg pp_expr lo
        pp_expr hi pp_body body
  | While { cond; est_iterations; body } ->
      Format.fprintf ppf "@[<v 2>while %a est %d {@,%a@]@,}" pp_cond cond
        est_iterations pp_body body
  | If { cond; then_; else_ = [] } ->
      Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,}" pp_cond cond pp_body then_
  | If { cond; then_; else_ } ->
      Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
        pp_cond cond pp_body then_ pp_body else_
  | Call name -> Format.fprintf ppf "call %s" name

and pp_body ppf body =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf body

let pp_program ppf p =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun v ->
      if v.scalar then Format.fprintf ppf "scalar %s : %dB@," v.name v.elem_size
      else Format.fprintf ppf "array %s : %d x %dB@," v.name v.elems v.elem_size)
    p.vars;
  List.iter
    (fun pr ->
      Format.fprintf ppf "@[<v 2>proc %s {@,%a@]@,}@," pr.proc_name pp_body pr.body)
    p.procs;
  Format.fprintf ppf "@]"
