open Ast

let rec memory_pure_expr = function
  | Int _ | Reg _ -> true
  | Scalar _ | Load _ -> false
  | Unary_minus e -> memory_pure_expr e
  | Binop (_, a, b) -> memory_pure_expr a && memory_pure_expr b

let is_power_of_two n = n > 0 && n land (n - 1) = 0
let log2 n =
  let rec loop n acc = if n <= 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

(* --- constant folding --- *)

let rec fold_expr e =
  match e with
  | Int _ | Reg _ | Scalar _ -> e
  | Load (a, idx) -> Load (a, fold_expr idx)
  | Unary_minus e' -> (
      match fold_expr e' with
      | Int n -> Int (-n)
      | Unary_minus inner -> inner
      | e' -> Unary_minus e')
  | Binop (op, a, b) -> (
      let a = fold_expr a and b = fold_expr b in
      match (op, a, b) with
      (* full constant evaluation, except faulting divisions *)
      | (Div | Mod), _, Int 0 -> Binop (op, a, b)
      | op, Int x, Int y ->
          Int
            (match op with
            | Add -> x + y
            | Sub -> x - y
            | Mul -> x * y
            | Div -> x / y
            | Mod -> x mod y
            | Shl -> x lsl y
            | Shr -> x asr y
            | Band -> x land y
            | Bor -> x lor y
            | Bxor -> x lxor y
            | Min -> min x y
            | Max -> max x y)
      (* identities *)
      | Add, e, Int 0 | Add, Int 0, e -> e
      | Sub, e, Int 0 -> e
      | Mul, e, Int 1 | Mul, Int 1, e -> e
      | Div, e, Int 1 -> e
      | (Shl | Shr), e, Int 0 -> e
      | (Bor | Bxor), e, Int 0 | (Bor | Bxor), Int 0, e -> e
      (* annihilation, only when the discarded side cannot fault *)
      | Mul, e, Int 0 when memory_pure_expr e -> Int 0
      | Mul, Int 0, e when memory_pure_expr e -> Int 0
      | Band, e, Int 0 when memory_pure_expr e -> Int 0
      | Band, Int 0, e when memory_pure_expr e -> Int 0
      (* strength reduction: multiply by a power of two *)
      | Mul, e, Int n when is_power_of_two n -> Binop (Shl, e, Int (log2 n))
      | Mul, Int n, e when is_power_of_two n -> Binop (Shl, e, Int (log2 n))
      | op, a, b -> Binop (op, a, b))

let fold_cond c = { c with lhs = fold_expr c.lhs; rhs = fold_expr c.rhs }

let rec fold_stmt = function
  | Assign_reg (r, e) -> Assign_reg (r, fold_expr e)
  | Assign_scalar (s, e) -> Assign_scalar (s, fold_expr e)
  | Store (a, idx, e) -> Store (a, fold_expr idx, fold_expr e)
  | For { reg; lo; hi; body } ->
      For { reg; lo = fold_expr lo; hi = fold_expr hi; body = List.map fold_stmt body }
  | While { cond; est_iterations; body } ->
      While { cond = fold_cond cond; est_iterations; body = List.map fold_stmt body }
  | If { cond; then_; else_ } ->
      If
        {
          cond = fold_cond cond;
          then_ = List.map fold_stmt then_;
          else_ = List.map fold_stmt else_;
        }
  | Call _ as s -> s

let fold p = { p with procs = List.map (fun pr -> { pr with body = List.map fold_stmt pr.body }) p.procs }

(* --- dead register elimination --- *)

(* Registers read anywhere in the program (loop counters count as read when
   their Reg appears in any expression). *)
let read_registers p =
  let read = Hashtbl.create 32 in
  let rec expr = function
    | Int _ | Scalar _ -> ()
    | Reg r -> Hashtbl.replace read r ()
    | Load (_, i) -> expr i
    | Unary_minus e -> expr e
    | Binop (_, a, b) ->
        expr a;
        expr b
  in
  let cond c =
    expr c.lhs;
    expr c.rhs
  in
  let rec stmt = function
    | Assign_reg (_, e) | Assign_scalar (_, e) -> expr e
    | Store (_, i, e) ->
        expr i;
        expr e
    | For { lo; hi; body; _ } ->
        expr lo;
        expr hi;
        List.iter stmt body
    | While { cond = c; body; _ } ->
        cond c;
        List.iter stmt body
    | If { cond = c; then_; else_ } ->
        cond c;
        List.iter stmt then_;
        List.iter stmt else_
    | Call _ -> ()
  in
  List.iter (fun pr -> List.iter stmt pr.body) p.procs;
  read

let eliminate_dead_registers p =
  let read = read_registers p in
  let rec keep_stmt = function
    | Assign_reg (r, e) when (not (Hashtbl.mem read r)) && memory_pure_expr e ->
        None
    | Assign_reg _ | Assign_scalar _ | Store _ | Call _ as s -> Some s
    | For f -> Some (For { f with body = List.filter_map keep_stmt f.body })
    | While w -> Some (While { w with body = List.filter_map keep_stmt w.body })
    | If { cond; then_; else_ } ->
        Some
          (If
             {
               cond;
               then_ = List.filter_map keep_stmt then_;
               else_ = List.filter_map keep_stmt else_;
             })
  in
  {
    p with
    procs =
      List.map
        (fun pr -> { pr with body = List.filter_map keep_stmt pr.body })
        p.procs;
  }

(* --- loop-invariant scalar hoisting --- *)

let rec scalars_written_in body =
  List.concat_map
    (function
      | Assign_scalar (s, _) -> [ s ]
      | Assign_reg _ | Store _ -> []
      | For { body; _ } | While { body; _ } -> scalars_written_in body
      | If { then_; else_; _ } -> scalars_written_in then_ @ scalars_written_in else_
      | Call _ -> [])
    body

let rec has_call body =
  List.exists
    (function
      | Call _ -> true
      | Assign_reg _ | Assign_scalar _ | Store _ -> false
      | For { body; _ } | While { body; _ } -> has_call body
      | If { then_; else_; _ } -> has_call then_ || has_call else_)
    body

let rec scalars_read_expr acc = function
  | Int _ | Reg _ -> acc
  | Scalar s -> s :: acc
  | Load (_, i) -> scalars_read_expr acc i
  | Unary_minus e -> scalars_read_expr acc e
  | Binop (_, a, b) -> scalars_read_expr (scalars_read_expr acc a) b

let rec scalars_read_in body =
  List.concat_map
    (function
      | Assign_reg (_, e) | Assign_scalar (_, e) -> scalars_read_expr [] e
      | Store (_, i, e) -> scalars_read_expr (scalars_read_expr [] i) e
      | For { lo; hi; body; _ } ->
          scalars_read_in body @ scalars_read_expr (scalars_read_expr [] lo) hi
      | While { cond; body; _ } ->
          scalars_read_in body
          @ scalars_read_expr (scalars_read_expr [] cond.lhs) cond.rhs
      | If { cond; then_; else_ } ->
          scalars_read_in then_ @ scalars_read_in else_
          @ scalars_read_expr (scalars_read_expr [] cond.lhs) cond.rhs
      | Call _ -> [])
    body

let rec substitute_scalar ~scalar ~reg e =
  match e with
  | Scalar s when s = scalar -> Reg reg
  | Int _ | Reg _ | Scalar _ -> e
  | Load (a, i) -> Load (a, substitute_scalar ~scalar ~reg i)
  | Unary_minus e -> Unary_minus (substitute_scalar ~scalar ~reg e)
  | Binop (op, a, b) ->
      Binop (op, substitute_scalar ~scalar ~reg a, substitute_scalar ~scalar ~reg b)

let rec substitute_stmt ~scalar ~reg s =
  let se = substitute_scalar ~scalar ~reg in
  let sc c = { c with lhs = se c.lhs; rhs = se c.rhs } in
  match s with
  | Assign_reg (r, e) -> Assign_reg (r, se e)
  | Assign_scalar (x, e) -> Assign_scalar (x, se e)
  | Store (a, i, e) -> Store (a, se i, se e)
  | For f ->
      For
        {
          f with
          lo = se f.lo;
          hi = se f.hi;
          body = List.map (substitute_stmt ~scalar ~reg) f.body;
        }
  | While w ->
      While
        { w with cond = sc w.cond; body = List.map (substitute_stmt ~scalar ~reg) w.body }
  | If { cond; then_; else_ } ->
      If
        {
          cond = sc cond;
          then_ = List.map (substitute_stmt ~scalar ~reg) then_;
          else_ = List.map (substitute_stmt ~scalar ~reg) else_;
        }
  | Call _ -> s

let const_trips lo hi =
  match (lo, hi) with
  | Int l, Int h -> Some (h - l)
  | _ -> None

let hoist_loop_invariants p =
  let counter = ref 0 in
  let fresh scalar =
    incr counter;
    Printf.sprintf "_hoisted_%s_%d" scalar !counter
  in
  (* Transform one statement into a list (hoisted loads precede the loop). *)
  let rec transform s =
    match s with
    | For { reg; lo; hi; body } -> (
        let body = List.concat_map transform body in
        let loop body = For { reg; lo; hi; body } in
        match const_trips lo hi with
        | Some trips when trips > 0 && not (has_call body) ->
            let written = scalars_written_in body in
            let candidates =
              List.sort_uniq compare (scalars_read_in body)
              |> List.filter (fun s -> not (List.mem s written))
            in
            let hoists, body =
              List.fold_left
                (fun (hoists, body) scalar ->
                  let reg_name = fresh scalar in
                  ( Assign_reg (reg_name, Scalar scalar) :: hoists,
                    List.map (substitute_stmt ~scalar ~reg:reg_name) body ))
                ([], body) candidates
            in
            List.rev hoists @ [ loop body ]
        | Some _ | None -> [ loop body ])
    | While w -> [ While { w with body = List.concat_map transform w.body } ]
    | If { cond; then_; else_ } ->
        [
          If
            {
              cond;
              then_ = List.concat_map transform then_;
              else_ = List.concat_map transform else_;
            };
        ]
    | Assign_reg _ | Assign_scalar _ | Store _ | Call _ -> [ s ]
  in
  {
    p with
    procs =
      List.map (fun pr -> { pr with body = List.concat_map transform pr.body }) p.procs;
  }

let optimize ?(max_rounds = 8) p =
  let step p = hoist_loop_invariants (eliminate_dead_registers (fold p)) in
  let rec loop p n =
    if n = 0 then p
    else
      let p' = step p in
      if p' = p then p else loop p' (n - 1)
  in
  let result = loop p max_rounds in
  validate result;
  result
