(* Doubly-linked list over slot indices, plus a key -> slot table. Slot -1 is
   the nil sentinel. [head] is the most recently used slot. *)
type t = {
  capacity : int;
  keys : int array;
  prev : int array;
  next : int array;
  index : (int, int) Hashtbl.t;
  mutable head : int;
  mutable tail : int;
  mutable free : int list;
  mutable length : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru_set.create: capacity must be positive";
  {
    capacity;
    keys = Array.make capacity 0;
    prev = Array.make capacity (-1);
    next = Array.make capacity (-1);
    index = Hashtbl.create (2 * capacity);
    head = -1;
    tail = -1;
    free = List.init capacity (fun i -> i);
    length = 0;
  }

let capacity t = t.capacity
let length t = t.length
let mem t key = Hashtbl.mem t.index key

let unlink t slot =
  let p = t.prev.(slot) and n = t.next.(slot) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p

let push_front t slot =
  t.prev.(slot) <- -1;
  t.next.(slot) <- t.head;
  if t.head >= 0 then t.prev.(t.head) <- slot;
  t.head <- slot;
  if t.tail < 0 then t.tail <- slot

let touch t key =
  match Hashtbl.find_opt t.index key with
  | Some slot ->
      if t.head <> slot then begin
        unlink t slot;
        push_front t slot
      end;
      `Hit
  | None ->
      let evicted, slot =
        match t.free with
        | slot :: rest ->
            t.free <- rest;
            (None, slot)
        | [] ->
            let victim = t.tail in
            let victim_key = t.keys.(victim) in
            unlink t victim;
            Hashtbl.remove t.index victim_key;
            t.length <- t.length - 1;
            (Some victim_key, victim)
      in
      t.keys.(slot) <- key;
      Hashtbl.replace t.index key slot;
      push_front t slot;
      t.length <- t.length + 1;
      `Miss evicted

let remove t key =
  match Hashtbl.find_opt t.index key with
  | None -> false
  | Some slot ->
      unlink t slot;
      Hashtbl.remove t.index key;
      t.free <- slot :: t.free;
      t.length <- t.length - 1;
      true

let clear t =
  Hashtbl.reset t.index;
  t.head <- -1;
  t.tail <- -1;
  t.free <- List.init t.capacity (fun i -> i);
  t.length <- 0

let to_list t =
  let rec loop slot acc =
    if slot < 0 then List.rev acc else loop t.next.(slot) (t.keys.(slot) :: acc)
  in
  loop t.head []
