type t = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable cold_misses : int;
  mutable capacity_misses : int;
  mutable conflict_misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  fills_per_way : int array;
}

let create ~ways =
  {
    accesses = 0;
    hits = 0;
    misses = 0;
    cold_misses = 0;
    capacity_misses = 0;
    conflict_misses = 0;
    evictions = 0;
    writebacks = 0;
    fills_per_way = Array.make ways 0;
  }

let reset t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.cold_misses <- 0;
  t.capacity_misses <- 0;
  t.conflict_misses <- 0;
  t.evictions <- 0;
  t.writebacks <- 0;
  Array.fill t.fills_per_way 0 (Array.length t.fills_per_way) 0

let copy t = { t with fills_per_way = Array.copy t.fills_per_way }

let miss_rate t =
  if t.accesses = 0 then 0. else float_of_int t.misses /. float_of_int t.accesses

let hit_rate t =
  if t.accesses = 0 then 0. else float_of_int t.hits /. float_of_int t.accesses

let add a b =
  if Array.length a.fills_per_way <> Array.length b.fills_per_way then
    invalid_arg "Stats.add: mismatched way counts";
  {
    accesses = a.accesses + b.accesses;
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    cold_misses = a.cold_misses + b.cold_misses;
    capacity_misses = a.capacity_misses + b.capacity_misses;
    conflict_misses = a.conflict_misses + b.conflict_misses;
    evictions = a.evictions + b.evictions;
    writebacks = a.writebacks + b.writebacks;
    fills_per_way = Array.map2 ( + ) a.fills_per_way b.fills_per_way;
  }

let sub a b =
  if Array.length a.fills_per_way <> Array.length b.fills_per_way then
    invalid_arg "Stats.sub: mismatched way counts";
  {
    accesses = a.accesses - b.accesses;
    hits = a.hits - b.hits;
    misses = a.misses - b.misses;
    cold_misses = a.cold_misses - b.cold_misses;
    capacity_misses = a.capacity_misses - b.capacity_misses;
    conflict_misses = a.conflict_misses - b.conflict_misses;
    evictions = a.evictions - b.evictions;
    writebacks = a.writebacks - b.writebacks;
    fills_per_way = Array.map2 ( - ) a.fills_per_way b.fills_per_way;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>accesses %d@ hits %d (%.2f%%)@ misses %d (cold %d, capacity %d, \
     conflict %d)@ evictions %d@ writebacks %d@]"
    t.accesses t.hits (100. *. hit_rate t) t.misses t.cold_misses
    t.capacity_misses t.conflict_misses t.evictions t.writebacks
