type kind =
  | Lru
  | Fifo
  | Bit_plru
  | Random of int

let kind_to_string = function
  | Lru -> "lru"
  | Fifo -> "fifo"
  | Bit_plru -> "plru"
  | Random s -> Printf.sprintf "random:%d" s

let kind_of_string s =
  match String.split_on_char ':' s with
  | [ "lru" ] -> Some Lru
  | [ "fifo" ] -> Some Fifo
  | [ "plru" ] -> Some Bit_plru
  | [ "random" ] -> Some (Random 42)
  | [ "random"; seed ] -> (
      match int_of_string_opt seed with
      | Some s -> Some (Random s)
      | None -> None)
  | _ -> None

let all_kinds = [ Lru; Fifo; Bit_plru; Random 42 ]

type t = {
  kind : kind;
  ways : int;
  (* timestamps: last-use time for LRU, fill time for FIFO. mru_bits: bit-PLRU
     state. rng: xorshift64* state for Random. *)
  stamps : int array;
  mru : Bytes.t;
  mutable clock : int;
  mutable rng : int64;
}

let create kind ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Policy.create";
  let seed = match kind with Random s when s <> 0 -> s | Random _ -> 1 | _ -> 1 in
  {
    kind;
    ways;
    stamps = Array.make (sets * ways) 0;
    mru = Bytes.make (sets * ways) '\000';
    clock = 0;
    rng = Int64.of_int seed;
  }

let kind t = t.kind

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let slot t ~set ~way = (set * t.ways) + way

let touch_plru t ~set ~way =
  Bytes.set t.mru (slot t ~set ~way) '\001';
  (* When every way of the set is marked MRU, reset all but the newest. *)
  let all_set = ref true in
  for w = 0 to t.ways - 1 do
    if Bytes.get t.mru (slot t ~set ~way:w) = '\000' then all_set := false
  done;
  if !all_set then
    for w = 0 to t.ways - 1 do
      if w <> way then Bytes.set t.mru (slot t ~set ~way:w) '\000'
    done

let on_hit t ~set ~way =
  match t.kind with
  | Lru -> t.stamps.(slot t ~set ~way) <- tick t
  | Fifo -> ()
  | Bit_plru -> touch_plru t ~set ~way
  | Random _ -> ()

let on_fill t ~set ~way =
  match t.kind with
  | Lru | Fifo -> t.stamps.(slot t ~set ~way) <- tick t
  | Bit_plru -> touch_plru t ~set ~way
  | Random _ -> ()

let next_random t =
  let x = t.rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.rng <- x;
  Int64.to_int (Int64.logand x 0x3FFFFFFFFFFFFFFFL)

let allowed_ways t ~allowed =
  let rec loop w acc =
    if w < 0 then acc
    else loop (w - 1) (if Bitmask.mem allowed w then w :: acc else acc)
  in
  loop (t.ways - 1) []

let victim t ~set ~allowed ~valid =
  let candidates = allowed_ways t ~allowed in
  if candidates = [] then invalid_arg "Policy.victim: empty column mask";
  match List.find_opt (fun w -> not (valid w)) candidates with
  | Some w -> w
  | None -> (
      match t.kind with
      | Lru | Fifo ->
          let best w acc =
            match acc with
            | None -> Some w
            | Some b ->
                if t.stamps.(slot t ~set ~way:w) < t.stamps.(slot t ~set ~way:b)
                then Some w
                else acc
          in
          begin
            match List.fold_right best candidates None with
            | Some w -> w
            | None -> assert false
          end
      | Bit_plru -> (
          (* First allowed way whose MRU bit is clear; if all are set (can
             happen when the mask excludes the way whose reset kept a zero),
             fall back to the first candidate. *)
          match
            List.find_opt
              (fun w -> Bytes.get t.mru (slot t ~set ~way:w) = '\000')
              candidates
          with
          | Some w -> w
          | None -> List.nth candidates 0)
      | Random _ ->
          let n = List.length candidates in
          List.nth candidates (next_random t mod n))
