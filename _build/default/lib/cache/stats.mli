(** Mutable cache statistics, including the three-C miss breakdown.

    Classification follows the standard definition: a miss to a never-seen
    line is {e cold}; a miss that a fully-associative LRU cache of the same
    capacity would also take is {e capacity}; the remainder are {e conflict}
    misses — exactly the misses the paper's column mapping aims to remove. *)

type t = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable cold_misses : int;
  mutable capacity_misses : int;
  mutable conflict_misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  fills_per_way : int array;
}

val create : ways:int -> t
val reset : t -> unit
val copy : t -> t
val miss_rate : t -> float
val hit_rate : t -> float
val add : t -> t -> t
(** Pointwise sum (fresh value); way arrays must have equal length. *)

val sub : t -> t -> t
(** Pointwise difference [a - b]; used to extract per-run deltas from a
    cumulative counter. *)

val pp : Format.formatter -> t -> unit
