lib/cache/column_cache.ml: Bitmask Memtrace Sassoc Stats
