lib/cache/bitmask.ml: Format Int List Printf String
