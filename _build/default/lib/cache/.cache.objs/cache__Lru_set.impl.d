lib/cache/lru_set.ml: Array Hashtbl List
