lib/cache/stats.ml: Array Format
