lib/cache/lru_set.mli:
