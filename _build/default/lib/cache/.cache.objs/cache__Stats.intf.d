lib/cache/stats.mli: Format
