lib/cache/sassoc.ml: Array Bitmask Bytes Hashtbl Lru_set Memtrace Policy Stats
