lib/cache/bitmask.mli: Format
