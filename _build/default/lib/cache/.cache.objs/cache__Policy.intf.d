lib/cache/policy.mli: Bitmask
