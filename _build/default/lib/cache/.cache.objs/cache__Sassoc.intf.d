lib/cache/sassoc.mli: Bitmask Memtrace Policy Stats
