lib/cache/policy.ml: Array Bitmask Bytes Int64 List Printf String
