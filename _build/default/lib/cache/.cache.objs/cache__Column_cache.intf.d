lib/cache/column_cache.mli: Bitmask Memtrace Sassoc Stats
