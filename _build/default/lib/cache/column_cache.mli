(** A set-associative cache bound to a software mapping function.

    This is the minimal "column cache" composition: each access resolves its
    column mask through [mask_of] (in the full system that function is a TLB
    lookup — see {!module:Vm} and {!module:Machine}); the mask then restricts
    victim choice in the underlying {!Sassoc.t}. *)

type t

val create : Sassoc.config -> mask_of:(int -> Bitmask.t) -> t
(** [mask_of addr] must return a non-empty mask for every address. *)

val standard : Sassoc.config -> t
(** All addresses map to all columns: a plain set-associative cache. *)

val cache : t -> Sassoc.t
val set_mask_of : t -> (int -> Bitmask.t) -> unit
(** Swap the mapping, modelling an instantaneous remap (Section 2.2). Cached
    data is deliberately left in place: it migrates lazily on replacement. *)

val access : t -> Memtrace.Access.t -> Sassoc.result
val run : t -> Memtrace.Trace.t -> Stats.t
(** Replay a whole trace; returns a copy of the cumulative statistics. *)

val stats : t -> Stats.t
