type t = {
  cache : Sassoc.t;
  mutable mask_of : int -> Bitmask.t;
}

let create cfg ~mask_of = { cache = Sassoc.create cfg; mask_of }

let standard cfg =
  let full = Bitmask.full ~n:cfg.Sassoc.ways in
  create cfg ~mask_of:(fun _ -> full)

let cache t = t.cache
let set_mask_of t mask_of = t.mask_of <- mask_of

let access t (a : Memtrace.Access.t) =
  Sassoc.access t.cache ~mask:(t.mask_of a.addr) ~kind:a.kind a.addr

let run t trace =
  Memtrace.Trace.iter (fun a -> ignore (access t a)) trace;
  Stats.copy (Sassoc.stats t.cache)

let stats t = Sassoc.stats t.cache
