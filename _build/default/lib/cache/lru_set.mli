(** Fixed-capacity LRU set of integer keys with O(1) touch.

    Used as the shadow fully-associative cache for three-C miss
    classification and as the TLB's entry store. *)

type t

val create : capacity:int -> t
val capacity : t -> int
val length : t -> int
val mem : t -> int -> bool

val touch : t -> int -> [ `Hit | `Miss of int option ]
(** Promote the key to most-recently-used, inserting it if absent. On an
    insertion that overflows capacity, the least-recently-used key is evicted
    and returned as [`Miss (Some evicted)]. *)

val remove : t -> int -> bool
(** Returns whether the key was present. *)

val clear : t -> unit
val to_list : t -> int list
(** Keys from most- to least-recently used. *)
