(** Replacement policies for the set-associative cache.

    The column cache's only change relative to a standard cache is that the
    victim must be chosen {e within} a software-supplied column mask; every
    policy here therefore takes an [allowed] mask. Invalid (empty) ways inside
    the mask are always preferred over evicting live data. *)

type kind =
  | Lru  (** true least-recently-used via per-way timestamps *)
  | Fifo  (** oldest fill wins *)
  | Bit_plru  (** MRU-bit pseudo-LRU, as found in embedded cores *)
  | Random of int  (** seeded xorshift; the argument is the seed *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list
(** One representative of each constructor (Random is seeded with 42). *)

(** Mutable per-cache replacement state. *)
type t

val create : kind -> sets:int -> ways:int -> t
val kind : t -> kind

val on_hit : t -> set:int -> way:int -> unit
val on_fill : t -> set:int -> way:int -> unit

val victim : t -> set:int -> allowed:Bitmask.t -> valid:(int -> bool) -> int
(** Choose the way to evict in [set], restricted to [allowed]. Prefers an
    invalid allowed way. Raises [Invalid_argument] if [allowed] selects no
    way of the cache. *)
