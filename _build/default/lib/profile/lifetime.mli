(** Variable lifetimes and pairwise conflict weights (paper Section 3.1.1).

    The lifetime of a variable is the interval between its first and last
    reference in a run. Two variables with disjoint lifetimes can share a
    cache column without conflicts; otherwise the potential-conflict weight
    is the minimum of their access counts inside the lifetime overlap:
    w(vi,vj) = MIN(n_i, n_j). Weights are relative, not absolute miss
    counts — only their ordering matters to the layout pass.

    Summaries come from two sources, mirroring the paper's two methods:
    - the {e profile-based method}: {!of_trace} extracts exact positions of
      every access from a run on representative data;
    - the {e program-analysis method}: {!module:Ir.Static_analysis} estimates
      counts and intervals from the intermediate form; such summaries carry
      no positions and overlap counts fall back to a uniform-distribution
      approximation. *)

type summary = {
  accesses : float;
      (** total references; float because static estimates are weighted by
          branch probabilities *)
  first : int;  (** position of first reference *)
  last : int;  (** position of last reference *)
  positions : int array option;
      (** exact, ascending reference positions when profiled *)
}

val summary :
  ?positions:int array -> accesses:float -> first:int -> last:int -> unit -> summary
(** Raises [Invalid_argument] when [last < first], [accesses < 0], or the
    positions array is not ascending or lies outside [first,last]. *)

val of_trace : Memtrace.Trace.t -> (string * summary) list
(** One summary per tagged variable (untagged accesses are ignored), in
    order of first appearance. Positions are trace indices. *)

val of_trace_classified :
  Memtrace.Trace.t ->
  classify:(Memtrace.Access.t -> string option) ->
  (string * summary) list
(** Like {!of_trace} but the caller names the bucket of each access
    ([None] skips it). Used to profile {e subarrays}: the layout pass splits
    variables larger than a column (paper Section 3.1 step 1), and because
    the profile has exact addresses, each subarray can get its own exact
    lifetime instead of inheriting the whole variable's — the program
    analysis method cannot do this, which is part of the two methods'
    accuracy gap. *)

val live_at : summary -> int -> bool
val overlap : summary -> summary -> (int * int) option
(** Intersection of the two lifetimes, when non-empty. *)

val accesses_within : summary -> lo:int -> hi:int -> float
(** References falling in [lo,hi] (inclusive). Exact when positions are
    available; otherwise assumes references are uniform over the lifetime. *)

val weight : summary -> summary -> int
(** The paper's w(vi,vj): 0 for disjoint lifetimes, otherwise
    MIN over the two variables of accesses within the overlap, rounded. *)

val pp_summary : Format.formatter -> summary -> unit
