type summary = {
  accesses : float;
  first : int;
  last : int;
  positions : int array option;
}

let summary ?positions ~accesses ~first ~last () =
  if last < first then invalid_arg "Lifetime.summary: last < first";
  if accesses < 0. then invalid_arg "Lifetime.summary: negative accesses";
  (match positions with
  | None -> ()
  | Some ps ->
      let n = Array.length ps in
      for i = 0 to n - 2 do
        if ps.(i) > ps.(i + 1) then
          invalid_arg "Lifetime.summary: positions not ascending"
      done;
      if n > 0 && (ps.(0) < first || ps.(n - 1) > last) then
        invalid_arg "Lifetime.summary: positions outside lifetime");
  { accesses; first; last; positions }

let of_trace_classified trace ~classify =
  let tbl : (string, int list ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  Memtrace.Trace.iteri
    (fun i a ->
      match classify a with
      | None -> ()
      | Some v -> (
          match Hashtbl.find_opt tbl v with
          | Some (positions, count) ->
              positions := i :: !positions;
              incr count
          | None ->
              Hashtbl.add tbl v (ref [ i ], ref 1);
              order := v :: !order))
    trace;
  List.rev_map
    (fun v ->
      match Hashtbl.find_opt tbl v with
      | None -> assert false
      | Some (positions, count) ->
          let ps = Array.of_list (List.rev !positions) in
          let n = Array.length ps in
          ( v,
            {
              accesses = float_of_int !count;
              first = ps.(0);
              last = ps.(n - 1);
              positions = Some ps;
            } ))
    !order

let of_trace trace =
  of_trace_classified trace ~classify:(fun a -> a.Memtrace.Access.var)

let live_at s pos = pos >= s.first && pos <= s.last

let overlap a b =
  let lo = max a.first b.first and hi = min a.last b.last in
  if lo > hi then None else Some (lo, hi)

(* Index of the first element >= x in an ascending array. *)
let lower_bound ps x =
  let rec loop lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if ps.(mid) < x then loop (mid + 1) hi else loop lo mid
  in
  loop 0 (Array.length ps)

let accesses_within s ~lo ~hi =
  if hi < lo then 0.
  else
    match s.positions with
    | Some ps ->
        let i = lower_bound ps lo and j = lower_bound ps (hi + 1) in
        float_of_int (j - i)
    | None ->
        let span = float_of_int (s.last - s.first + 1) in
        let lo = max lo s.first and hi = min hi s.last in
        if hi < lo then 0.
        else s.accesses *. (float_of_int (hi - lo + 1) /. span)

let weight a b =
  match overlap a b with
  | None -> 0
  | Some (lo, hi) ->
      let na = accesses_within a ~lo ~hi and nb = accesses_within b ~lo ~hi in
      int_of_float (Float.round (Float.min na nb))

let pp_summary ppf s =
  Format.fprintf ppf "accesses=%.1f lifetime=[%d,%d]%s" s.accesses s.first
    s.last
    (match s.positions with None -> " (estimated)" | Some _ -> "")
