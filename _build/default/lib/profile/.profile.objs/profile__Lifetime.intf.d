lib/profile/lifetime.mli: Format Memtrace
