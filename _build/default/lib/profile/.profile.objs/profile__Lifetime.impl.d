lib/profile/lifetime.ml: Array Float Format Hashtbl List Memtrace
