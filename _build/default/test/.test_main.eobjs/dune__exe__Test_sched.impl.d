test/test_sched.ml: Alcotest Cache List Machine Memtrace Sched Vm
