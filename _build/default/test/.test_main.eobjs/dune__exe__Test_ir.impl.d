test/test_ir.ml: Alcotest Array Ir List Memtrace Profile QCheck QCheck_alcotest Workloads
