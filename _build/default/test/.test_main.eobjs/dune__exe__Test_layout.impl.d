test/test_layout.ml: Alcotest Array Cache Layout List Machine Memtrace Printf Profile QCheck QCheck_alcotest String Vm
