test/test_dynamic.ml: Alcotest Cache Colcache Layout List Machine Memtrace Profile Workloads
