test/test_optimize.ml: Alcotest Array Ir List Memtrace Printf Workloads
