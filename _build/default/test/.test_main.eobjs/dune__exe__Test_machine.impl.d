test/test_machine.ml: Alcotest Cache List Machine Memtrace Printf Vm
