test/test_vm.ml: Alcotest Cache List Printf QCheck QCheck_alcotest Vm
