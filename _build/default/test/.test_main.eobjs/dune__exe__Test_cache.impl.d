test/test_cache.ml: Alcotest Array Cache List Memtrace Printf QCheck QCheck_alcotest
