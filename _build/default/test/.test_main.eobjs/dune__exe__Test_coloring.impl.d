test/test_coloring.ml: Alcotest Array Coloring Format List Printf QCheck QCheck_alcotest
