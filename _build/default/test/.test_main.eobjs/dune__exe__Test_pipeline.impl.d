test/test_pipeline.ml: Alcotest Cache Colcache Filename Layout Lazy List Machine Memtrace Printf Sys Workloads
