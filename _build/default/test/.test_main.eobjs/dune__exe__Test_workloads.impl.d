test/test_workloads.ml: Alcotest Array Ir List Memtrace Printf QCheck QCheck_alcotest String Workloads
