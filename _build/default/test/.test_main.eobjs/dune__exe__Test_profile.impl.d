test/test_profile.ml: Alcotest Array Float Format List Memtrace Profile QCheck QCheck_alcotest
