test/test_parse.ml: Alcotest Array Filename Format Ir List Sys Workloads
