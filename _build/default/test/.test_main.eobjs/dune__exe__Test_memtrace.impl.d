test/test_memtrace.ml: Alcotest Filename List Memtrace QCheck QCheck_alcotest Sys
