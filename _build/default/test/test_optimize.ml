(* Tests for the IR optimizer: each pass in isolation, semantics
   preservation on the real workloads, and access-count reductions. *)

open Ir.Build
module Ast = Ir.Ast
module Interp = Ir.Interp
module Optimize = Ir.Optimize
module Trace = Memtrace.Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_out ?init p =
  let r = Interp.run ?init p ~proc:"main" ~layout:(Interp.sequential_layout p) in
  (r.Interp.memory "out").(0)

let accesses_of ?init p proc =
  Trace.length
    (Interp.trace_of ?init p ~proc ~layout:(Interp.sequential_layout p))

(* --- constant folding --- *)

let test_fold_constants () =
  let p =
    program ~vars:[ scalar "out" () ]
      [ proc "main" [ set "out" ((i 3 + i 4) * (i 10 - i 8)) ] ]
  in
  let p' = Optimize.fold p in
  (match List.hd (List.hd p'.Ast.procs).Ast.body with
  | Ast.Assign_scalar ("out", Ast.Int 14) -> ()
  | _ -> Alcotest.fail "expected folded constant 14");
  check_int "same value" (run_out p) (run_out p')

let test_fold_identities () =
  let p =
    program ~vars:[ scalar "out" (); scalar "x" () ]
      [ proc "main" [ set "out" ((s "x" + i 0) * i 1) ] ]
  in
  let p' = Optimize.fold p in
  match List.hd (List.hd p'.Ast.procs).Ast.body with
  | Ast.Assign_scalar ("out", Ast.Scalar "x") -> ()
  | _ -> Alcotest.fail "identities not simplified"

let test_fold_strength_reduction () =
  let p =
    program ~vars:[ scalar "out" (); scalar "x" () ]
      [ proc "main" [ set "out" (s "x" * i 8) ] ]
  in
  let p' = Optimize.fold p in
  (match List.hd (List.hd p'.Ast.procs).Ast.body with
  | Ast.Assign_scalar ("out", Ast.Binop (Ast.Shl, Ast.Scalar "x", Ast.Int 3)) -> ()
  | _ -> Alcotest.fail "x*8 not reduced to shift");
  let init _ _ = 5 in
  check_int "same value" (run_out ~init p) (run_out ~init p')

let test_fold_keeps_division_fault () =
  let p =
    program ~vars:[ scalar "out" () ] [ proc "main" [ set "out" (i 1 / i 0) ] ]
  in
  let p' = Optimize.fold p in
  check_bool "still faults" true
    (try ignore (run_out p'); false with Interp.Interp_error _ -> true)

let test_fold_annihilation_gated_on_purity () =
  (* x*0 with a Load on the left must NOT be removed: the load could fault *)
  let p =
    program
      ~vars:[ scalar "out" (); array "a" ~elems:4 () ]
      [ proc "main" [ set "out" (ld "a" (i 2) * i 0) ] ]
  in
  let p' = Optimize.fold p in
  (match List.hd (List.hd p'.Ast.procs).Ast.body with
  | Ast.Assign_scalar ("out", Ast.Int 0) -> Alcotest.fail "load dropped"
  | Ast.Assign_scalar ("out", _) -> ()
  | _ -> Alcotest.fail "unexpected shape");
  (* pure operand: fold away *)
  let q =
    program ~vars:[ scalar "out" () ]
      [ proc "main" [ set "out" (r "k" * i 0) ] ]
  in
  let q' = Optimize.fold q in
  match List.hd (List.hd q'.Ast.procs).Ast.body with
  | Ast.Assign_scalar ("out", Ast.Int 0) -> ()
  | _ -> Alcotest.fail "pure annihilation missed"

(* --- dead register elimination --- *)

let test_dead_reg_removed () =
  let p =
    program ~vars:[ scalar "out" () ]
      [ proc "main" [ setr "unused" (i 5 + i 6); set "out" (i 1) ] ]
  in
  let p' = Optimize.eliminate_dead_registers p in
  check_int "one statement left" 1 (List.length (List.hd p'.Ast.procs).Ast.body)

let test_dead_reg_with_load_kept () =
  let p =
    program
      ~vars:[ scalar "out" (); array "a" ~elems:4 () ]
      [ proc "main" [ setr "unused" (ld "a" (i 0)); set "out" (i 1) ] ]
  in
  let p' = Optimize.eliminate_dead_registers p in
  check_int "load kept (could fault / is an access)" 2
    (List.length (List.hd p'.Ast.procs).Ast.body)

let test_live_reg_kept () =
  let p =
    program ~vars:[ scalar "out" () ]
      [ proc "main" [ setr "v" (i 5); set "out" (r "v") ] ]
  in
  let p' = Optimize.eliminate_dead_registers p in
  check_int "kept" 2 (List.length (List.hd p'.Ast.procs).Ast.body)

(* --- loop-invariant hoisting --- *)

let test_hoist_scalar_out_of_loop () =
  let p =
    program
      ~vars:[ scalar "gain" (); array "buf" ~elems:64 () ]
      [
        proc "main"
          [ for_ "k" (i 0) (i 64) [ st "buf" (r "k") (s "gain" * r "k") ] ];
      ]
  in
  let p' = Optimize.hoist_loop_invariants p in
  let init name _ = if name = "gain" then 3 else 0 in
  (* 64 scalar loads + 64 stores -> 1 load + 64 stores *)
  check_int "before" 128 (accesses_of ~init p "main");
  check_int "after" 65 (accesses_of ~init p' "main");
  (* results identical *)
  let mem p =
    (Interp.run ~init p ~proc:"main" ~layout:(Interp.sequential_layout p)).Interp.memory
      "buf"
  in
  check_bool "same buffer" true (mem p = mem p')

let test_hoist_skips_written_scalar () =
  let p =
    program
      ~vars:[ scalar "acc" (); array "buf" ~elems:8 () ]
      [
        proc "main"
          [ for_ "k" (i 0) (i 8) [ set "acc" (s "acc" + ld "buf" (r "k")) ] ];
      ]
  in
  let p' = Optimize.hoist_loop_invariants p in
  check_int "accesses unchanged" (accesses_of p "main") (accesses_of p' "main")

let test_hoist_skips_unknown_trip_count () =
  let p =
    program
      ~vars:[ scalar "gain" (); array "buf" ~elems:64 () ]
      [
        proc "main"
          [
            setr "n" (i 0);
            (* bounds involve a register: the loop might run zero times *)
            for_ "k" (r "n") (r "n") [ st "buf" (r "k") (s "gain") ];
          ];
      ]
  in
  let p' = Optimize.hoist_loop_invariants p in
  check_int "no access added to zero-trip loop" (accesses_of p "main")
    (accesses_of p' "main")

let test_hoist_cascades_through_nest () =
  let p =
    program
      ~vars:[ scalar "gain" (); array "buf" ~elems:64 () ]
      [
        proc "main"
          [
            for_ "a" (i 0) (i 8)
              [ for_ "b" (i 0) (i 8) [ st "buf" ((r "a" * i 8) + r "b") (s "gain") ] ];
          ];
      ]
  in
  let p' = Optimize.optimize p in
  (* 64 loads + 64 stores -> 1 load + 64 stores *)
  check_int "single hoisted load" 65 (accesses_of p' "main")

(* --- whole-program semantics preservation --- *)

let routines_agree program init routines =
  let opt = Optimize.optimize program in
  List.iter
    (fun proc ->
      let layout = Interp.sequential_layout program in
      let before = Interp.run ~init program ~proc ~layout in
      let after = Interp.run ~init opt ~proc ~layout in
      List.iter
        (fun v ->
          check_bool
            (Printf.sprintf "%s: %s unchanged" proc v.Ast.name)
            true
            (before.Interp.memory v.Ast.name = after.Interp.memory v.Ast.name))
        program.Ast.vars;
      check_bool
        (Printf.sprintf "%s: accesses not increased" proc)
        true
        (Trace.length after.Interp.trace <= Trace.length before.Interp.trace))
    routines

let test_optimize_preserves_mpeg () =
  routines_agree Workloads.Mpeg.program Workloads.Mpeg.init
    (Workloads.Mpeg.main :: Workloads.Mpeg.routines)

let test_optimize_preserves_jpeg () =
  routines_agree Workloads.Jpeg.program Workloads.Jpeg.init
    (Workloads.Jpeg.main :: Workloads.Jpeg.routines)

let test_optimize_reduces_dequant_accesses () =
  (* dequant reloads qscale per element; hoisting removes ~256 loads *)
  let before = accesses_of ~init:Workloads.Mpeg.init Workloads.Mpeg.program "dequant" in
  let after =
    accesses_of ~init:Workloads.Mpeg.init
      (Optimize.optimize Workloads.Mpeg.program)
      "dequant"
  in
  check_bool
    (Printf.sprintf "fewer accesses (%d -> %d)" before after)
    true
    (after < before)

let test_optimize_validates () =
  (* the optimizer's output must itself be a valid program *)
  let p = Optimize.optimize Workloads.Mpeg.program in
  Ast.validate p

let suites =
  [
    ( "optimize.fold",
      [
        Alcotest.test_case "constants" `Quick test_fold_constants;
        Alcotest.test_case "identities" `Quick test_fold_identities;
        Alcotest.test_case "strength reduction" `Quick test_fold_strength_reduction;
        Alcotest.test_case "division fault kept" `Quick test_fold_keeps_division_fault;
        Alcotest.test_case "annihilation purity" `Quick test_fold_annihilation_gated_on_purity;
      ] );
    ( "optimize.dead_regs",
      [
        Alcotest.test_case "dead removed" `Quick test_dead_reg_removed;
        Alcotest.test_case "load kept" `Quick test_dead_reg_with_load_kept;
        Alcotest.test_case "live kept" `Quick test_live_reg_kept;
      ] );
    ( "optimize.hoist",
      [
        Alcotest.test_case "hoists invariant scalar" `Quick test_hoist_scalar_out_of_loop;
        Alcotest.test_case "skips written scalar" `Quick test_hoist_skips_written_scalar;
        Alcotest.test_case "skips unknown trips" `Quick test_hoist_skips_unknown_trip_count;
        Alcotest.test_case "cascades through nests" `Quick test_hoist_cascades_through_nest;
      ] );
    ( "optimize.whole_program",
      [
        Alcotest.test_case "mpeg semantics preserved" `Quick test_optimize_preserves_mpeg;
        Alcotest.test_case "jpeg semantics preserved" `Quick test_optimize_preserves_jpeg;
        Alcotest.test_case "dequant accesses reduced" `Quick test_optimize_reduces_dequant_accesses;
        Alcotest.test_case "output validates" `Quick test_optimize_validates;
      ] );
  ]
