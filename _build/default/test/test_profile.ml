(* Tests for the profile library: lifetime extraction, overlap computation
   and the paper's conflict-weight function. *)

module Access = Memtrace.Access
module Trace = Memtrace.Trace
module Lifetime = Profile.Lifetime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk specs =
  (* specs: (var, addr) list, in trace order *)
  Trace.of_list (List.map (fun (var, addr) -> Access.make ~var addr) specs)

let summary_of trace var = List.assoc var (Lifetime.of_trace trace)

(* --- summary construction --- *)

let test_summary_validation () =
  check_bool "last < first rejected" true
    (try ignore (Lifetime.summary ~accesses:1. ~first:5 ~last:2 ()); false
     with Invalid_argument _ -> true);
  check_bool "negative accesses rejected" true
    (try ignore (Lifetime.summary ~accesses:(-1.) ~first:0 ~last:2 ()); false
     with Invalid_argument _ -> true);
  check_bool "descending positions rejected" true
    (try
       ignore (Lifetime.summary ~positions:[| 3; 1 |] ~accesses:2. ~first:1 ~last:3 ());
       false
     with Invalid_argument _ -> true);
  check_bool "positions outside lifetime rejected" true
    (try
       ignore (Lifetime.summary ~positions:[| 0; 9 |] ~accesses:2. ~first:1 ~last:3 ());
       false
     with Invalid_argument _ -> true)

(* --- of_trace --- *)

let test_of_trace_basic () =
  let t = mk [ ("a", 0); ("b", 4); ("a", 8); ("b", 12); ("b", 16) ] in
  let a = summary_of t "a" and b = summary_of t "b" in
  check_int "a first" 0 a.Lifetime.first;
  check_int "a last" 2 a.Lifetime.last;
  check_bool "a accesses" true (a.Lifetime.accesses = 2.);
  check_int "b first" 1 b.Lifetime.first;
  check_int "b last" 4 b.Lifetime.last;
  check_bool "b positions" true (b.Lifetime.positions = Some [| 1; 3; 4 |])

let test_of_trace_order_and_untagged () =
  let t =
    Trace.of_list
      [ Access.make 0; Access.make ~var:"z" 4; Access.make ~var:"a" 8 ]
  in
  Alcotest.(check (list string))
    "first-appearance order" [ "z"; "a" ]
    (List.map fst (Lifetime.of_trace t))

let test_of_trace_empty () =
  check_bool "empty trace empty summaries" true (Lifetime.of_trace Trace.empty = [])

(* --- overlap / live_at --- *)

let s ?positions ~accesses ~first ~last () =
  Lifetime.summary ?positions ~accesses ~first ~last ()

let test_overlap () =
  let a = s ~accesses:5. ~first:0 ~last:10 () in
  let b = s ~accesses:5. ~first:5 ~last:20 () in
  let c = s ~accesses:5. ~first:11 ~last:12 () in
  check_bool "overlapping" true (Lifetime.overlap a b = Some (5, 10));
  check_bool "disjoint" true (Lifetime.overlap a c = None);
  check_bool "touching endpoint" true (Lifetime.overlap b c = Some (11, 12));
  check_bool "live inside" true (Lifetime.live_at a 10);
  check_bool "dead outside" false (Lifetime.live_at a 11)

(* --- accesses_within --- *)

let test_accesses_within_exact () =
  let a = s ~positions:[| 0; 2; 4; 6; 8 |] ~accesses:5. ~first:0 ~last:8 () in
  check_bool "all" true (Lifetime.accesses_within a ~lo:0 ~hi:8 = 5.);
  check_bool "window" true (Lifetime.accesses_within a ~lo:2 ~hi:5 = 2.);
  check_bool "inclusive ends" true (Lifetime.accesses_within a ~lo:4 ~hi:4 = 1.);
  check_bool "empty window" true (Lifetime.accesses_within a ~lo:5 ~hi:3 = 0.)

let test_accesses_within_uniform () =
  (* no positions: uniform approximation over the lifetime *)
  let a = s ~accesses:10. ~first:0 ~last:9 () in
  check_bool "half window half accesses" true
    (abs_float (Lifetime.accesses_within a ~lo:0 ~hi:4 -. 5.) < 1e-9);
  check_bool "clipped window" true
    (abs_float (Lifetime.accesses_within a ~lo:5 ~hi:100 -. 5.) < 1e-9)

(* --- weight --- *)

let test_weight_disjoint_zero () =
  let a = s ~accesses:100. ~first:0 ~last:10 () in
  let b = s ~accesses:100. ~first:11 ~last:20 () in
  check_int "disjoint weight" 0 (Lifetime.weight a b)

let test_weight_min_rule () =
  (* a has 2 accesses in the overlap, b has 30: w = 2 *)
  let a = s ~positions:[| 0; 5; 50; 55 |] ~accesses:4. ~first:0 ~last:55 () in
  let b =
    s
      ~positions:(Array.init 30 (fun i -> 10 + i))
      ~accesses:30. ~first:10 ~last:39 ()
  in
  (* overlap = [10,39]; a has positions {} in [10,39]... none! w=0 *)
  check_int "no access in overlap" 0 (Lifetime.weight a b);
  let a' = s ~positions:[| 0; 12; 20; 55 |] ~accesses:4. ~first:0 ~last:55 () in
  check_int "min of overlap counts" 2 (Lifetime.weight a' b)

let test_weight_symmetry () =
  let a = s ~accesses:17. ~first:0 ~last:30 () in
  let b = s ~accesses:40. ~first:10 ~last:50 () in
  check_int "symmetric" (Lifetime.weight a b) (Lifetime.weight b a)

let test_weight_from_real_trace () =
  (* interleaved a/b: both live together; weight = min(count, count) *)
  let t =
    mk
      (List.concat_map
         (fun i -> [ ("a", i * 8); ("b", 1000 + (i * 8)) ])
         [ 0; 1; 2; 3; 4 ])
  in
  let a = summary_of t "a" and b = summary_of t "b" in
  (* a's positions 0,2,4,6,8; b's 1,3,5,7,9; overlap [1,8]: a has 4, b 4 *)
  check_int "interleaved weight" 4 (Lifetime.weight a b)

(* --- properties --- *)

let gen_summary =
  QCheck.Gen.(
    let* first = int_bound 100 in
    let* len = int_bound 100 in
    let* n = int_bound 20 in
    let last = first + len in
    if n = 0 then return (s ~accesses:0. ~first ~last ())
    else
      let* positions =
        list_size (return n) (int_range first last)
      in
      let positions = Array.of_list (List.sort compare positions) in
      (* force endpoints to match first/last *)
      positions.(0) <- first;
      positions.(Array.length positions - 1) <- last;
      let positions = Array.of_list (List.sort compare (Array.to_list positions)) in
      return
        (s ~positions ~accesses:(float_of_int (Array.length positions)) ~first
           ~last ()))

let arb_summary =
  QCheck.make
    ~print:(fun x -> Format.asprintf "%a" Lifetime.pp_summary x)
    gen_summary

let prop_weight_symmetric =
  QCheck.Test.make ~name:"weight is symmetric" ~count:300
    (QCheck.pair arb_summary arb_summary) (fun (a, b) ->
      Lifetime.weight a b = Lifetime.weight b a)

let prop_weight_nonneg_bounded =
  QCheck.Test.make ~name:"0 <= weight <= min(total accesses)" ~count:300
    (QCheck.pair arb_summary arb_summary) (fun (a, b) ->
      let w = Lifetime.weight a b in
      w >= 0
      && float_of_int w
         <= Float.min a.Lifetime.accesses b.Lifetime.accesses +. 0.5)

let prop_disjoint_zero =
  QCheck.Test.make ~name:"disjoint lifetimes weigh zero" ~count:300
    (QCheck.pair arb_summary arb_summary) (fun (a, b) ->
      match Lifetime.overlap a b with
      | None -> Lifetime.weight a b = 0
      | Some _ -> true)

let prop_of_trace_accesses_sum =
  QCheck.Test.make ~name:"per-var access counts sum to tagged accesses" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_bound 60)
       (QCheck.pair (QCheck.oneofl [ "a"; "b"; "c" ]) (QCheck.int_bound 1000)))
    (fun specs ->
      let t = mk specs in
      let total =
        List.fold_left
          (fun acc (_, s) -> acc +. s.Lifetime.accesses)
          0. (Lifetime.of_trace t)
      in
      total = float_of_int (List.length specs))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_weight_symmetric;
      prop_weight_nonneg_bounded;
      prop_disjoint_zero;
      prop_of_trace_accesses_sum;
    ]

let suites =
  [
    ( "profile.lifetime",
      [
        Alcotest.test_case "summary validation" `Quick test_summary_validation;
        Alcotest.test_case "of_trace basic" `Quick test_of_trace_basic;
        Alcotest.test_case "of_trace order/untagged" `Quick test_of_trace_order_and_untagged;
        Alcotest.test_case "of_trace empty" `Quick test_of_trace_empty;
        Alcotest.test_case "overlap/live_at" `Quick test_overlap;
        Alcotest.test_case "accesses_within exact" `Quick test_accesses_within_exact;
        Alcotest.test_case "accesses_within uniform" `Quick test_accesses_within_uniform;
        Alcotest.test_case "weight disjoint" `Quick test_weight_disjoint_zero;
        Alcotest.test_case "weight min rule" `Quick test_weight_min_rule;
        Alcotest.test_case "weight symmetry" `Quick test_weight_symmetry;
        Alcotest.test_case "weight from trace" `Quick test_weight_from_real_trace;
      ] );
    ("profile.properties", qcheck_cases);
  ]
