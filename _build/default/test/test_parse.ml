(* Tests for the IF parser: print/parse inversion on every shipped program,
   hand-written syntax (precedence, comments, optional annotations), and
   error reporting. *)

module Ast = Ir.Ast
module Parse = Ir.Parse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let roundtrip name p () =
  let printed = Format.asprintf "%a" Ast.pp_program p in
  let reparsed = Parse.program printed in
  check_bool (name ^ " roundtrips") true (reparsed = p)

(* --- expressions --- *)

let e = Parse.expr

let test_expr_precedence () =
  check_bool "mul binds tighter than add" true
    (e "1 + 2 * 3" = Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3)));
  check_bool "left assoc" true
    (e "1 - 2 - 3"
    = Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, Ast.Int 1, Ast.Int 2), Ast.Int 3));
  check_bool "parens override" true
    (e "(1 + 2) * 3"
    = Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, Ast.Int 1, Ast.Int 2), Ast.Int 3));
  check_bool "shift below add" true
    (e "1 << 2 + 3"
    = Ast.Binop (Ast.Shl, Ast.Int 1, Ast.Binop (Ast.Add, Ast.Int 2, Ast.Int 3)))

let test_expr_atoms () =
  check_bool "register" true (e "%k" = Ast.Reg "k");
  check_bool "scalar" true (e "gain" = Ast.Scalar "gain");
  check_bool "load" true (e "buf[%k + 1]" = Ast.Load ("buf", Ast.Binop (Ast.Add, Ast.Reg "k", Ast.Int 1)));
  check_bool "negative literal" true (e "-42" = Ast.Int (-42));
  check_bool "unary minus" true (e "-(%k)" = Ast.Unary_minus (Ast.Reg "k"));
  check_bool "min call" true
    (e "min(%a, 7)" = Ast.Binop (Ast.Min, Ast.Reg "a", Ast.Int 7));
  check_bool "identifier named min without paren is a scalar" true
    (e "min" = Ast.Scalar "min")

let test_expr_mod_vs_register () =
  (* '%' with a space is the modulo operator; glued to a name it is a
     register sigil *)
  check_bool "modulo" true
    (e "%a % 4" = Ast.Binop (Ast.Mod, Ast.Reg "a", Ast.Int 4))

(* --- programs --- *)

let test_parse_hand_written () =
  let p =
    Parse.program
      {|
      # a comment
      array buf : 16 x 4B
      scalar total : 4B   # trailing comment
      proc main {
        total := 0
        for %k = 0 .. 16 {
          if buf[%k] > 0 @0.25 {
            total := total + buf[%k]
          } else {
            total := total - 1
          }
        }
        while total >= 100 est 3 {
          total := total >> 1
        }
        call helper
      }
      proc helper { }
      |}
  in
  check_int "vars" 2 (List.length p.Ast.vars);
  check_int "procs" 2 (List.length p.Ast.procs);
  (* optional annotations captured *)
  let main = List.hd p.Ast.procs in
  (match main.Ast.body with
  | [ _; Ast.For { body = [ Ast.If { cond; _ } ]; _ }; Ast.While { est_iterations; _ }; Ast.Call "helper" ] ->
      check_bool "probability" true (cond.Ast.prob = 0.25);
      check_int "est" 3 est_iterations
  | _ -> Alcotest.fail "unexpected structure");
  (* it runs *)
  let r =
    Ir.Interp.run ~init:(fun _ i -> i) p ~proc:"main"
      ~layout:(Ir.Interp.sequential_layout p)
  in
  check_int "(sum 1..15 minus one) halved below 100" 59 (r.Ir.Interp.memory "total").(0)

let test_parse_defaults () =
  let p =
    Parse.program
      "scalar x : 4B proc main { if x == 0 { x := 1 } while x < 3 { x := x + 1 } }"
  in
  match (List.hd p.Ast.procs).Ast.body with
  | [ Ast.If { cond; _ }; Ast.While { est_iterations; cond = wc; _ } ] ->
      check_bool "default prob" true (cond.Ast.prob = 0.5);
      check_bool "default prob while" true (wc.Ast.prob = 0.5);
      check_int "default est" 16 est_iterations
  | _ -> Alcotest.fail "unexpected structure"

let expect_parse_error ?line src =
  match Parse.program src with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Parse.Parse_error { line = l; _ } -> (
      match line with
      | Some expected -> check_int "error line" expected l
      | None -> ())

let test_parse_errors () =
  expect_parse_error "array buf 16 x 4B proc main { }";
  expect_parse_error "proc main { %x := }";
  expect_parse_error "proc main { for k = 0 .. 4 { } }";
  (* undeclared variable is a semantic error, not a parse error *)
  check_bool "semantic error" true
    (try ignore (Parse.program "proc main { ghost := 1 }"); false
     with Ast.Invalid_program _ -> true)

let test_parse_error_line_numbers () =
  expect_parse_error ~line:3 "scalar x : 4B\nproc main {\n  %y := +\n}"

let test_parse_file_roundtrip () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "colcache_prog.ir" in
  let oc = open_out path in
  output_string oc (Format.asprintf "%a" Ast.pp_program Workloads.Mpeg.program);
  close_out oc;
  let p = Parse.program_of_file path in
  Sys.remove path;
  check_bool "file roundtrip" true (p = Workloads.Mpeg.program)

let suites =
  [
    ( "parse.expr",
      [
        Alcotest.test_case "precedence" `Quick test_expr_precedence;
        Alcotest.test_case "atoms" `Quick test_expr_atoms;
        Alcotest.test_case "mod vs register" `Quick test_expr_mod_vs_register;
      ] );
    ( "parse.programs",
      [
        Alcotest.test_case "hand-written" `Quick test_parse_hand_written;
        Alcotest.test_case "defaults" `Quick test_parse_defaults;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "error line numbers" `Quick test_parse_error_line_numbers;
        Alcotest.test_case "file roundtrip" `Quick test_parse_file_roundtrip;
      ] );
    ( "parse.roundtrip",
      [
        Alcotest.test_case "mpeg" `Quick (roundtrip "mpeg" Workloads.Mpeg.program);
        Alcotest.test_case "jpeg" `Quick (roundtrip "jpeg" Workloads.Jpeg.program);
        Alcotest.test_case "matmul" `Quick
          (roundtrip "matmul" (Workloads.Kernels.matmul ~n:5));
        Alcotest.test_case "fir" `Quick
          (roundtrip "fir" (Workloads.Kernels.fir ~taps:4 ~samples:8));
        Alcotest.test_case "histogram" `Quick
          (roundtrip "histogram" (Workloads.Kernels.histogram ~bins:4 ~samples:8));
        Alcotest.test_case "hot_walk" `Quick
          (roundtrip "hot_walk" (Workloads.Kernels.hot_walk ~hot_elems:8 ~passes:2));
        Alcotest.test_case "optimized mpeg" `Quick
          (roundtrip "optimized mpeg" (Ir.Optimize.optimize Workloads.Mpeg.program));
      ] );
  ]
