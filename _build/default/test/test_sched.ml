(* Tests for the round-robin multitasking scheduler. *)

module Trace = Memtrace.Trace
module Access = Memtrace.Access
module RR = Sched.Round_robin

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cache = Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ()
let fresh_system () = Machine.System.create (Machine.System.config cache)

let job name addrs =
  { RR.name; trace = Trace.of_list (List.map Access.make addrs) }

let seq name base n = job name (List.init n (fun i -> base + (i * 16)))

let test_all_work_completes () =
  let jobs = [ seq "A" 0 10; seq "B" 0x1000 25; seq "C" 0x2000 3 ] in
  let out = RR.run ~system:(fresh_system ()) ~quantum:4 jobs in
  List.iter
    (fun (name, n) ->
      match RR.find_job out name with
      | Some s -> check_int (name ^ " accesses") n s.RR.memory_accesses
      | None -> Alcotest.fail "missing job")
    [ ("A", 10); ("B", 25); ("C", 3) ]

let test_instructions_counted () =
  let t = Trace.of_list [ Access.make ~gap:4 0; Access.make ~gap:2 16 ] in
  let out = RR.run ~system:(fresh_system ()) ~quantum:100 [ { RR.name = "J"; trace = t } ] in
  match RR.find_job out "J" with
  | Some s -> check_int "instructions" 8 s.RR.instructions
  | None -> Alcotest.fail "missing"

let test_single_job_no_switches () =
  let out = RR.run ~system:(fresh_system ()) ~quantum:2 [ seq "A" 0 20 ] in
  check_int "no switches with one job" 0 out.RR.switches

let test_switch_counting () =
  (* 2 jobs x 4 accesses, quantum 2 -> slices A,B,A,B: 3 switches *)
  let out =
    RR.run ~system:(fresh_system ()) ~quantum:2 [ seq "A" 0 4; seq "B" 0x1000 4 ]
  in
  check_int "switches" 3 out.RR.switches

let test_switch_cost_in_total_only () =
  let jobs () = [ seq "A" 0 4; seq "B" 0x1000 4 ] in
  let cheap =
    RR.run ~switch_cycles:0 ~system:(fresh_system ()) ~quantum:2 (jobs ())
  in
  let pricey =
    RR.run ~switch_cycles:1000 ~system:(fresh_system ()) ~quantum:2 (jobs ())
  in
  check_int "job cycles unaffected by switch cost"
    (match RR.find_job cheap "A" with Some s -> s.RR.cycles | None -> -1)
    (match RR.find_job pricey "A" with Some s -> s.RR.cycles | None -> -2);
  check_int "total carries switch cost"
    (cheap.RR.total_cycles + (3 * 1000))
    pricey.RR.total_cycles

let test_uneven_jobs_drop_out () =
  (* the short job finishes; the long one keeps running alone *)
  let out =
    RR.run ~system:(fresh_system ()) ~quantum:1 [ seq "short" 0 2; seq "long" 0x1000 50 ]
  in
  (match RR.find_job out "long" with
  | Some s -> check_int "long completes" 50 s.RR.memory_accesses
  | None -> Alcotest.fail "missing");
  check_bool "slices of long exceed short's" true
    ((match RR.find_job out "long" with Some s -> s.RR.slices | None -> 0)
    > (match RR.find_job out "short" with Some s -> s.RR.slices | None -> 0))

let test_quantum_validation () =
  check_bool "quantum 0 rejected" true
    (try ignore (RR.run ~system:(fresh_system ()) ~quantum:0 [ seq "A" 0 1 ]); false
     with Invalid_argument _ -> true);
  check_bool "no jobs rejected" true
    (try ignore (RR.run ~system:(fresh_system ()) ~quantum:1 []); false
     with Invalid_argument _ -> true)

let test_tlb_flush_on_switch_costs () =
  (* with flushes, each slice re-misses the TLB: more cycles for job A *)
  let jobs () = [ seq "A" 0 200; seq "B" 0x100000 200 ] in
  let tagged =
    RR.run ~flush_tlb_on_switch:false ~system:(fresh_system ()) ~quantum:1 (jobs ())
  in
  let flushed =
    RR.run ~flush_tlb_on_switch:true ~system:(fresh_system ()) ~quantum:1 (jobs ())
  in
  let cycles o =
    match RR.find_job o "A" with Some s -> s.RR.cycles | None -> -1
  in
  check_bool "flushing costs cycles" true (cycles flushed > cycles tagged)

let test_interference_depends_on_quantum () =
  (* two jobs whose footprints alias in the cache: bigger quantum = fewer
     misses for each (the fig5 mechanism) *)
  let walk name base =
    {
      RR.name;
      trace = Memtrace.Synthetic.repeat_walk ~base ~len:96 ~stride:16 ~passes:40 ();
    }
  in
  let misses quantum =
    let out =
      RR.run ~system:(fresh_system ()) ~quantum
        [ walk "A" 0; walk "B" 0x10000 ]
    in
    match RR.find_job out "A" with Some s -> s.RR.misses | None -> -1
  in
  (* each working set is 1.5 KB (fits the 2 KB cache alone); together they
     are 3 KB, so fine-grained mixing thrashes where long bursts do not *)
  check_bool "small quantum misses more" true (misses 16 > misses 100000)

let test_partitioned_job_flat_across_quanta () =
  let jobA () =
    {
      RR.name = "A";
      trace = Memtrace.Synthetic.repeat_walk ~base:0 ~len:24 ~stride:16 ~passes:200 ();
    }
  in
  let noise name base =
    { RR.name = name; trace = Memtrace.Synthetic.uniform_random ~seed:4 ~base ~span:32768 ~count:4800 () }
  in
  let cpi_at ~mapped quantum =
    let system = fresh_system () in
    if mapped then begin
      let m = Machine.System.mapping system in
      ignore (Vm.Mapping.retint_region m ~base:0 ~size:4096 (Vm.Tint.make "A"));
      Vm.Mapping.remap_tint m (Vm.Tint.make "A") (Cache.Bitmask.of_list [ 0; 1 ]);
      Vm.Mapping.remap_tint m Vm.Tint.default (Cache.Bitmask.of_list [ 2; 3 ])
    end;
    let out = RR.run ~system ~quantum [ jobA (); noise "B" 0x100000 ] in
    match RR.find_job out "A" with Some s -> RR.cpi s | None -> nan
  in
  let spread mapped =
    let cpis = List.map (cpi_at ~mapped) [ 4; 64; 1024; 65536 ] in
    List.fold_left max 0. cpis -. List.fold_left min infinity cpis
  in
  check_bool "mapped job less quantum-sensitive" true (spread true < spread false)

let suites =
  [
    ( "sched.round_robin",
      [
        Alcotest.test_case "all work completes" `Quick test_all_work_completes;
        Alcotest.test_case "instructions counted" `Quick test_instructions_counted;
        Alcotest.test_case "single job no switches" `Quick test_single_job_no_switches;
        Alcotest.test_case "switch counting" `Quick test_switch_counting;
        Alcotest.test_case "switch cost placement" `Quick test_switch_cost_in_total_only;
        Alcotest.test_case "uneven jobs" `Quick test_uneven_jobs_drop_out;
        Alcotest.test_case "validation" `Quick test_quantum_validation;
        Alcotest.test_case "tlb flush cost" `Quick test_tlb_flush_on_switch_costs;
        Alcotest.test_case "quantum-dependent interference" `Quick test_interference_depends_on_quantum;
        Alcotest.test_case "partitioned job flat" `Quick test_partitioned_job_flat_across_quanta;
      ] );
  ]
