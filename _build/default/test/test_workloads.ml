(* Tests for the workloads: the MPEG kernels' semantics and trace
   properties, the LZ77 compressor's correctness, and the extra kernels. *)

module Trace = Memtrace.Trace
module Access = Memtrace.Access
module Mpeg = Workloads.Mpeg
module Lz77 = Workloads.Lz77
module Kernels = Workloads.Kernels

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mpeg_layout = Ir.Interp.sequential_layout Mpeg.program
let run_mpeg proc = Ir.Interp.run ~init:Mpeg.init Mpeg.program ~proc ~layout:mpeg_layout

(* --- MPEG semantics --- *)

let test_dequant_values () =
  let r = run_mpeg "dequant" in
  let dq = r.Ir.Interp.memory "dq" in
  (* recompute a few elements independently *)
  let ok = ref true in
  for idx = 0 to 255 do
    let c = Mpeg.init "coeff" idx in
    let expected =
      if c = 0 then 0
      else
        let v = c * Mpeg.init "quant_tbl" (idx mod 64) * Mpeg.init "qscale" 0 in
        let v = v asr 4 in
        max (min v 2047) (-2048)
    in
    if dq.(idx) <> expected then ok := false
  done;
  check_bool "dequant matches reference" true !ok

let test_dequant_branches_both_ways () =
  let zeros = ref 0 and nonzeros = ref 0 in
  for idx = 0 to 255 do
    if Mpeg.init "coeff" idx = 0 then incr zeros else incr nonzeros
  done;
  check_bool "some zero coefficients" true (!zeros > 20);
  check_bool "some nonzero coefficients" true (!nonzeros > 20)

let test_plus_saturates () =
  let r = run_mpeg "plus" in
  let recon = r.Ir.Interp.memory "recon" in
  Array.iter (fun v -> check_bool "clamped to [0,255]" true (v >= 0 && v <= 255)) recon

let test_idct_roundtrip_magnitude () =
  (* not a numerical-precision test: just that the transform ran and wrote
     clamped outputs everywhere *)
  let r = run_mpeg "idct" in
  let blocks = r.Ir.Interp.memory "blocks" in
  check_int "all elements" 1024 (Array.length blocks);
  Array.iter
    (fun v -> check_bool "output clamped" true (v >= -256 && v <= 255))
    blocks

let test_mpeg_main_runs_all () =
  let t_main = (run_mpeg "mpeg").Ir.Interp.trace in
  let parts =
    List.map (fun p -> Trace.length (run_mpeg p).Ir.Interp.trace) Mpeg.routines
  in
  check_int "main = sum of routines"
    (List.fold_left ( + ) 0 parts)
    (Trace.length t_main)

(* --- MPEG trace/data-shape facts the experiments rely on --- *)

let test_mpeg_footprints () =
  (* the paper's premise: dequant and plus fit in 2 KB, idct does not *)
  check_bool "dequant fits 2KB" true (Mpeg.total_bytes ~proc:"dequant" <= 2048);
  check_bool "plus fits 2KB" true (Mpeg.total_bytes ~proc:"plus" <= 2048);
  check_bool "idct exceeds 2KB" true (Mpeg.total_bytes ~proc:"idct" > 2048)

let test_mpeg_traces_tagged () =
  List.iter
    (fun proc ->
      let trace = (run_mpeg proc).Ir.Interp.trace in
      check_bool (proc ^ " fully tagged") true
        (Trace.fold (fun acc a -> acc && a.Access.var <> None) true trace))
    Mpeg.routines

let test_mpeg_vars_for () =
  let vars = Mpeg.vars_for ~proc:"plus" in
  check_bool "pred listed" true (List.mem_assoc "pred" vars);
  check_bool "dq listed" true (List.mem_assoc "dq" vars);
  check_bool "blocks not in plus" false (List.mem_assoc "blocks" vars)

let test_mpeg_idct_two_passes () =
  (* the trace must revisit each blocks line after the row pass: cross-pass
     reuse is what the experiment depends on *)
  let trace = (run_mpeg "idct").Ir.Interp.trace in
  let blocks = Trace.filter_var trace "blocks" in
  let base = List.assoc "blocks" mpeg_layout in
  let first_addr = base in
  let touches =
    Trace.fold
      (fun acc a -> if a.Access.addr = first_addr then acc + 1 else acc)
      0 blocks
  in
  (* element 0: read+write in the row pass, read+write in the column pass *)
  check_int "block element touched by both passes" 4 touches

(* --- LZ77 --- *)

let test_lz77_roundtrip () =
  let input = Lz77.synthetic_input ~seed:3 ~len:4096 in
  let r = Lz77.compress ~input () in
  Alcotest.(check string) "decompress inverts compress" input (Lz77.decompress r.Lz77.tokens)

let test_lz77_roundtrip_edge_cases () =
  List.iter
    (fun input ->
      let r = Lz77.compress ~input () in
      Alcotest.(check string)
        (Printf.sprintf "roundtrip %S" (String.sub input 0 (min 12 (String.length input))))
        input
        (Lz77.decompress r.Lz77.tokens))
    [
      "";
      "a";
      "ab";
      "aaaaaaaaaaaaaaaaaaaaaaaa";
      "abcabcabcabcabcabc";
      String.make 300 'x';
      "no repeats here!?";
    ]

let test_lz77_actually_compresses () =
  let input = Lz77.synthetic_input ~seed:1 ~len:8192 in
  let r = Lz77.compress ~input () in
  let matches =
    List.length (List.filter (function Lz77.Match _ -> true | Lz77.Literal _ -> false) r.Lz77.tokens)
  in
  check_bool "synthetic input yields matches" true (matches > 100)

let test_lz77_trace_structure () =
  let trace = Lz77.trace ~seed:2 ~input_len:2048 ~base:0x100000 () in
  let vars = Trace.vars trace in
  List.iter
    (fun v -> check_bool (v ^ " present") true (List.mem v vars))
    [ "inbuf"; "window"; "hash_head"; "hash_prev"; "outbuf" ];
  (* all addresses live in the job's address space *)
  match Trace.addr_range trace with
  | Some (lo, hi) ->
      check_bool "above base" true (lo >= 0x100000);
      check_bool "below base + 64K" true (hi < 0x100000 + 0x10000)
  | None -> Alcotest.fail "empty trace"

let test_lz77_deterministic () =
  let t1 = Lz77.trace ~seed:9 ~input_len:1024 ~base:0 () in
  let t2 = Lz77.trace ~seed:9 ~input_len:1024 ~base:0 () in
  check_bool "same seed same trace" true (Trace.equal t1 t2)

let test_lz77_match_distances_bounded () =
  let input = Lz77.synthetic_input ~seed:5 ~len:8192 in
  let r = Lz77.compress ~input () in
  List.iter
    (function
      | Lz77.Match { distance; length } ->
          check_bool "distance bounded" true
            (distance > 0 && distance <= Lz77.window_size);
          check_bool "length sane" true (length >= 3 && length <= 32)
      | Lz77.Literal _ -> ())
    r.Lz77.tokens

let test_lz77_oversized_input_rejected () =
  check_bool "raises" true
    (try
       ignore (Lz77.compress ~input:(String.make 20000 'a') ());
       false
     with Invalid_argument _ -> true)

(* --- JPEG front end --- *)

module Jpeg = Workloads.Jpeg

let jpeg_layout = Ir.Interp.sequential_layout Jpeg.program
let run_jpeg proc = Ir.Interp.run ~init:Jpeg.init Jpeg.program ~proc ~layout:jpeg_layout

let test_jpeg_color_convert_reference () =
  let r = run_jpeg "color_convert" in
  let ycc = r.Ir.Interp.memory "ycc" in
  let ok = ref true in
  for p = 0 to 255 do
    let red = Jpeg.init "rgb" (3 * p) in
    let green = Jpeg.init "rgb" ((3 * p) + 1) in
    let blue = Jpeg.init "rgb" ((3 * p) + 2) in
    let y = ((77 * red) + (150 * green) + (29 * blue)) asr 8 in
    if ycc.(p) <> y then ok := false
  done;
  check_bool "luma matches reference" true !ok

let test_jpeg_zigzag_is_permutation () =
  let seen = Array.make 64 false in
  for k = 0 to 63 do
    let z = Jpeg.init "zigzag" k in
    check_bool "in range" true (z >= 0 && z < 64);
    check_bool "no duplicate" false seen.(z);
    seen.(z) <- true
  done

let test_jpeg_quantization_sparsity () =
  let r = run_jpeg "jpeg" in
  let out = r.Ir.Interp.memory "coeff_out" in
  let zeros = Array.fold_left (fun acc v -> if v = 0 then acc + 1 else acc) 0 out in
  check_bool "some coefficients quantize to zero" true (zeros > 100);
  check_bool "some survive" true (zeros < Array.length out)

let test_jpeg_main_runs_all () =
  let t_main = (run_jpeg "jpeg").Ir.Interp.trace in
  let parts =
    List.map (fun p -> Trace.length (run_jpeg p).Ir.Interp.trace) Jpeg.routines
  in
  check_int "main = sum of routines"
    (List.fold_left ( + ) 0 parts)
    (Trace.length t_main)

let test_jpeg_exceeds_onchip () =
  check_bool "whole app exceeds 2KB" true (Jpeg.total_bytes ~proc:"jpeg" > 2048)

(* --- extra kernels --- *)

let test_matmul_correct () =
  let n = 6 in
  let p = Kernels.matmul ~n in
  let layout = Ir.Interp.sequential_layout p in
  let r = Ir.Interp.run ~init:Kernels.init p ~proc:"matmul" ~layout in
  let c = r.Ir.Interp.memory "c" in
  let a i j = Kernels.init "a" ((i * n) + j) in
  let b i j = Kernels.init "b" ((i * n) + j) in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let expected = ref 0 in
      for k = 0 to n - 1 do
        expected := !expected + (a i k * b k j)
      done;
      if c.((i * n) + j) <> !expected then ok := false
    done
  done;
  check_bool "matmul matches reference" true !ok

let test_fir_correct () =
  let taps = 4 and samples = 16 in
  let p = Kernels.fir ~taps ~samples in
  let layout = Ir.Interp.sequential_layout p in
  let r = Ir.Interp.run ~init:Kernels.init p ~proc:"fir" ~layout in
  let out = r.Ir.Interp.memory "output" in
  let coeff k = Kernels.init "coeffs" k in
  let input k = Kernels.init "input" k in
  let ok = ref true in
  for t = 0 to samples - 1 do
    let acc = ref 0 in
    for k = 0 to taps - 1 do
      acc := !acc + (coeff k * input (t + k))
    done;
    if out.(t) <> !acc asr 8 then ok := false
  done;
  check_bool "fir matches reference" true !ok

let test_histogram_conserves_mass () =
  let bins = 16 and samples = 200 in
  let p = Kernels.histogram ~bins ~samples in
  let layout = Ir.Interp.sequential_layout p in
  let r = Ir.Interp.run ~init:Kernels.init p ~proc:"histogram" ~layout in
  let bin = r.Ir.Interp.memory "bin" in
  check_int "every sample lands in one bin" samples (Array.fold_left ( + ) 0 bin)

(* --- properties --- *)

let prop_lz77_roundtrip =
  QCheck.Test.make ~name:"lz77 roundtrips arbitrary strings" ~count:200
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 600) QCheck.Gen.printable)
    (fun input ->
      let r = Lz77.compress ~input () in
      Lz77.decompress r.Lz77.tokens = input)

let prop_lz77_token_lengths_cover_input =
  QCheck.Test.make ~name:"lz77 token lengths sum to input length" ~count:100
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 400) QCheck.Gen.printable)
    (fun input ->
      let r = Lz77.compress ~input () in
      let total =
        List.fold_left
          (fun acc t ->
            acc + match t with Lz77.Literal _ -> 1 | Lz77.Match { length; _ } -> length)
          0 r.Lz77.tokens
      in
      total = String.length input)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lz77_roundtrip; prop_lz77_token_lengths_cover_input ]

let suites =
  [
    ( "workloads.mpeg",
      [
        Alcotest.test_case "dequant values" `Quick test_dequant_values;
        Alcotest.test_case "dequant branches" `Quick test_dequant_branches_both_ways;
        Alcotest.test_case "plus saturates" `Quick test_plus_saturates;
        Alcotest.test_case "idct outputs clamped" `Quick test_idct_roundtrip_magnitude;
        Alcotest.test_case "main = all routines" `Quick test_mpeg_main_runs_all;
        Alcotest.test_case "footprints (paper premise)" `Quick test_mpeg_footprints;
        Alcotest.test_case "traces tagged" `Quick test_mpeg_traces_tagged;
        Alcotest.test_case "vars_for" `Quick test_mpeg_vars_for;
        Alcotest.test_case "idct two passes" `Quick test_mpeg_idct_two_passes;
      ] );
    ( "workloads.lz77",
      [
        Alcotest.test_case "roundtrip" `Quick test_lz77_roundtrip;
        Alcotest.test_case "roundtrip edge cases" `Quick test_lz77_roundtrip_edge_cases;
        Alcotest.test_case "compresses" `Quick test_lz77_actually_compresses;
        Alcotest.test_case "trace structure" `Quick test_lz77_trace_structure;
        Alcotest.test_case "deterministic" `Quick test_lz77_deterministic;
        Alcotest.test_case "match bounds" `Quick test_lz77_match_distances_bounded;
        Alcotest.test_case "oversized input" `Quick test_lz77_oversized_input_rejected;
      ] );
    ( "workloads.jpeg",
      [
        Alcotest.test_case "color convert reference" `Quick test_jpeg_color_convert_reference;
        Alcotest.test_case "zigzag permutation" `Quick test_jpeg_zigzag_is_permutation;
        Alcotest.test_case "quantization sparsity" `Quick test_jpeg_quantization_sparsity;
        Alcotest.test_case "main = all routines" `Quick test_jpeg_main_runs_all;
        Alcotest.test_case "exceeds on-chip memory" `Quick test_jpeg_exceeds_onchip;
      ] );
    ( "workloads.kernels",
      [
        Alcotest.test_case "matmul" `Quick test_matmul_correct;
        Alcotest.test_case "fir" `Quick test_fir_correct;
        Alcotest.test_case "histogram" `Quick test_histogram_conserves_mass;
      ] );
    ("workloads.properties", qcheck_cases);
  ]
