(* Tests for the layout pass: region splitting, the address map's
   invariants, and the partition solver. *)

module Lifetime = Profile.Lifetime
module Region = Layout.Region
module Address_map = Layout.Address_map
module Partition = Layout.Partition
module Bitmask = Cache.Bitmask

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sum ?positions ~accesses ~first ~last () =
  Lifetime.summary ?positions ~accesses ~first ~last ()

(* --- Region.split_vars --- *)

let test_split_small_var_untouched () =
  let regions =
    Region.split_vars ~column_size:512
      ~vars:[ ("a", 100) ]
      ~summaries:[ ("a", sum ~accesses:10. ~first:0 ~last:5 ()) ]
      ()
  in
  match regions with
  | [ r ] ->
      check_int "one region" 1 r.Region.parts;
      check_int "size kept" 100 r.Region.size;
      check_bool "name unsuffixed" true (Region.name r = "a")
  | _ -> Alcotest.fail "expected one region"

let test_split_large_var () =
  let regions =
    Region.split_vars ~column_size:512
      ~vars:[ ("big", 1200) ]
      ~summaries:[ ("big", sum ~accesses:300. ~first:0 ~last:99 ()) ]
      ()
  in
  check_int "three parts" 3 (List.length regions);
  let sizes = List.map (fun r -> r.Region.size) regions in
  Alcotest.(check (list int)) "sizes" [ 512; 512; 176 ] sizes;
  List.iteri
    (fun k r ->
      check_int "offset" (k * 512) r.Region.offset;
      check_bool "accesses split" true
        (abs_float (r.Region.summary.Lifetime.accesses -. 100.) < 1e-6);
      check_bool "suffixed" true (Region.name r = Printf.sprintf "big#%d" k))
    regions

let test_split_skips_unreferenced () =
  let regions =
    Region.split_vars ~column_size:512 ~vars:[ ("dead", 64) ] ~summaries:[] ()
  in
  check_int "no regions" 0 (List.length regions)

let test_density () =
  let r =
    List.hd
      (Region.split_vars ~column_size:512 ~vars:[ ("a", 50) ]
         ~summaries:[ ("a", sum ~accesses:200. ~first:0 ~last:9 ()) ]
         ())
  in
  check_bool "density" true (abs_float (Region.density r -. 4.) < 1e-9)

(* --- Address_map --- *)

let map_of vars =
  Address_map.build ~page_size:256 ~column_size:512 ~vars ()

let test_address_map_page_exclusive () =
  let m = map_of [ ("a", 100); ("b", 100); ("c", 700) ] in
  let page b = b / 256 in
  let a = Address_map.base_of m "a"
  and b = Address_map.base_of m "b"
  and c = Address_map.base_of m "c" in
  check_bool "distinct pages" true
    (page a <> page b && page b <> page c && page a <> page c)

let test_address_map_no_wrap () =
  (* many odd sizes: no small variable may straddle a column boundary *)
  let vars = List.init 20 (fun k -> (Printf.sprintf "v%d" k, 48 + (k * 40))) in
  let m = map_of vars in
  List.iter
    (fun (name, size) ->
      let b = Address_map.base_of m name in
      if size < 512 then
        check_bool
          (Printf.sprintf "%s does not wrap" name)
          true
          ((b mod 512) + size <= 512))
    vars

let test_address_map_multicolumn_aligned () =
  let m = map_of [ ("pad", 10); ("big", 1500) ] in
  check_int "column aligned" 0 (Address_map.base_of m "big" mod 512)

let test_address_map_unknown () =
  let m = map_of [ ("a", 4) ] in
  check_bool "unknown raises" true
    (try ignore (Address_map.base_of m "zz"); false with Not_found -> true)

let test_column_interval () =
  let m = map_of [ ("pad", 300); ("x", 200) ] in
  let regions =
    Region.split_vars ~column_size:512 ~vars:[ ("x", 200) ]
      ~summaries:[ ("x", sum ~accesses:1. ~first:0 ~last:0 ()) ]
      ()
  in
  match regions with
  | [ r ] ->
      let lo, hi = Address_map.column_interval m ~column_size:512 r in
      check_bool "interval sane" true (lo >= 0 && hi <= 512 && hi - lo = 200)
  | _ -> Alcotest.fail "one region expected"

(* --- Partition --- *)

let spec ~p = Partition.spec ~columns:4 ~column_size:512 ~scratchpad_columns:p

let mk_setup vars summaries =
  let m = map_of vars in
  let regions = Region.split_vars ~column_size:512 ~vars ~summaries () in
  (m, regions)

let overlapping_summaries names =
  List.mapi
    (fun k name ->
      (name, sum ~accesses:(float_of_int (100 * (k + 1))) ~first:0 ~last:999 ()))
    names

let test_partition_all_cached_when_p0 () =
  let vars = [ ("a", 256); ("b", 256) ] in
  let m, regions = mk_setup vars (overlapping_summaries [ "a"; "b" ]) in
  let part = Partition.compute ~spec:(spec ~p:0) ~address_map:m regions in
  check_int "no scratchpad" 0 (Partition.scratchpad_bytes part);
  check_int "two cached" 2 (List.length (Partition.cached_regions part));
  (* overlapping lifetimes, 4 columns available: conflict-free *)
  check_int "no residual" 0 part.Partition.residual_conflict;
  List.iter
    (fun pl ->
      match Partition.placement_column pl with
      | Some c -> check_bool "cache column range" true (c >= 0 && c < 4)
      | None -> Alcotest.fail "cached placement must have a column")
    (Partition.cached_regions part)

let test_partition_scratchpad_greedy_by_density () =
  (* hot small var + cold big var, one scratchpad column: hot wins it *)
  let vars = [ ("hot", 128); ("cold", 512) ] in
  let summaries =
    [
      ("hot", sum ~accesses:10000. ~first:0 ~last:999 ());
      ("cold", sum ~accesses:10. ~first:0 ~last:999 ());
    ]
  in
  let m, regions = mk_setup vars summaries in
  let part = Partition.compute ~spec:(spec ~p:1) ~address_map:m regions in
  (match Partition.placement_of part "hot" with
  | Some pl ->
      check_bool "hot pinned" true (pl.Partition.role = Partition.Scratchpad);
      check_bool "column 0" true (Partition.placement_column pl = Some 0)
  | None -> Alcotest.fail "hot placed");
  match Partition.placement_of part "cold" with
  | Some pl -> check_bool "cold cached" true (pl.Partition.role = Partition.Cached)
  | None -> Alcotest.fail "cold placed"

let test_partition_packing_disjoint_intervals () =
  (* two regions whose set intervals coexist in one scratchpad column *)
  let vars = [ ("a", 256); ("b", 256) ] in
  let m, regions = mk_setup vars (overlapping_summaries [ "a"; "b" ]) in
  let part = Partition.compute ~spec:(spec ~p:1) ~address_map:m regions in
  let scratch =
    List.filter
      (fun pl -> pl.Partition.role = Partition.Scratchpad)
      part.Partition.placements
  in
  check_int "both fit in the single scratchpad column" 2 (List.length scratch);
  List.iter
    (fun pl -> check_bool "column 0" true (Partition.placement_column pl = Some 0))
    scratch

let test_partition_uncached_when_no_cache_left () =
  (* p = 4 but data exceeds capacity: leftovers go uncached *)
  let vars = [ ("big", 2048); ("more", 512) ] in
  let m, regions = mk_setup vars (overlapping_summaries [ "big"; "more" ]) in
  let part = Partition.compute ~spec:(spec ~p:4) ~address_map:m regions in
  check_bool "some uncached" true (Partition.uncached_regions part <> []);
  List.iter
    (fun pl -> check_bool "no column" true (pl.Partition.columns = None))
    (Partition.uncached_regions part)

let test_partition_forced_scratchpad () =
  let vars = [ ("hot", 256); ("forced", 256) ] in
  let summaries =
    [
      ("hot", sum ~accesses:10000. ~first:0 ~last:999 ());
      ("forced", sum ~accesses:1. ~first:0 ~last:999 ());
    ]
  in
  let m, regions = mk_setup vars summaries in
  let part =
    Partition.compute ~forced_scratchpad:[ "forced" ] ~spec:(spec ~p:1)
      ~address_map:m regions
  in
  match Partition.placement_of part "forced" with
  | Some pl -> check_bool "forced pinned" true (pl.Partition.role = Partition.Scratchpad)
  | None -> Alcotest.fail "forced placed"

let test_partition_forced_too_big_rejected () =
  let vars = [ ("huge", 512); ("other", 512) ] in
  let m, regions = mk_setup vars (overlapping_summaries [ "huge"; "other" ]) in
  check_bool "raises" true
    (try
       ignore
         (Partition.compute
            ~forced_scratchpad:[ "huge"; "other" ]
            ~spec:(spec ~p:1) ~address_map:m regions);
       false
     with Invalid_argument _ -> true)

let test_partition_spec_validation () =
  check_bool "negative p" true
    (try ignore (Partition.spec ~columns:4 ~column_size:512 ~scratchpad_columns:(-1)); false
     with Invalid_argument _ -> true);
  check_bool "p > k" true
    (try ignore (Partition.spec ~columns:4 ~column_size:512 ~scratchpad_columns:5); false
     with Invalid_argument _ -> true)

(* --- Partition.apply against a live system --- *)

let test_apply_configures_masks () =
  let vars = [ ("hot", 256); ("cold", 256) ] in
  let summaries = overlapping_summaries [ "hot"; "cold" ] in
  let m, regions = mk_setup vars summaries in
  let part = Partition.compute ~spec:(spec ~p:0) ~address_map:m regions in
  let cache = Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 () in
  let system = Machine.System.create (Machine.System.config cache) in
  Partition.apply part system;
  let mapping = Machine.System.mapping system in
  List.iter
    (fun pl ->
      match pl.Partition.columns with
      | Some expected ->
          let mask = Vm.Mapping.mask_of_quiet mapping pl.Partition.base in
          check_bool
            (Printf.sprintf "%s restricted to its columns"
               (Region.name pl.Partition.region))
            true
            (Bitmask.equal mask expected)
      | None -> ())
    part.Partition.placements

let test_apply_scratchpad_is_missfree () =
  let vars = [ ("table", 256) ] in
  let summaries = [ ("table", sum ~accesses:500. ~first:0 ~last:999 ()) ] in
  let m, regions = mk_setup vars summaries in
  let part = Partition.compute ~spec:(spec ~p:1) ~address_map:m regions in
  let cache = Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 () in
  let system = Machine.System.create (Machine.System.config cache) in
  Partition.apply part system;
  (* hammer other addresses, then access the pinned table *)
  let noise =
    Memtrace.Synthetic.uniform_random ~seed:5 ~base:0x10000 ~span:32768
      ~count:3000 ()
  in
  ignore (Machine.System.run system noise);
  let base = Address_map.base_of m "table" in
  let table_trace =
    Memtrace.Synthetic.sequential ~base ~count:64 ~stride:4 ()
  in
  let stats = Machine.System.run system table_trace in
  check_int "pinned region misses" 0
    stats.Machine.Run_stats.cache.Cache.Stats.misses

let test_apply_copy_in_charges () =
  let vars = [ ("work", 256) ] in
  let summaries = [ ("work", sum ~accesses:500. ~first:0 ~last:999 ()) ] in
  let m, regions = mk_setup vars summaries in
  let part = Partition.compute ~spec:(spec ~p:1) ~address_map:m regions in
  let cache = Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 () in
  let run copy_in =
    let system = Machine.System.create (Machine.System.config cache) in
    Partition.apply ~copy_in part system;
    let stats = Machine.System.run system Memtrace.Trace.empty in
    stats.Machine.Run_stats.cycles
  in
  let free = run [] in
  let charged = run [ "work" ] in
  check_int "free pin costs nothing" 0 free;
  (* 16 lines x (1 + 20) cycles *)
  check_int "charged pin costs lines x miss" (16 * 21) charged

let test_apply_geometry_mismatch () =
  let vars = [ ("a", 64) ] in
  let m, regions = mk_setup vars (overlapping_summaries [ "a" ]) in
  let part = Partition.compute ~spec:(spec ~p:0) ~address_map:m regions in
  let wrong = Cache.Sassoc.config ~line_size:16 ~size_bytes:4096 ~ways:4 () in
  let system = Machine.System.create (Machine.System.config wrong) in
  check_bool "mismatch rejected" true
    (try Partition.apply part system; false with Invalid_argument _ -> true)

(* --- Page coloring baseline --- *)

let dm_cache = Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:1 ()

let test_page_coloring_colors_of () =
  check_int "2KB direct-mapped / 256B pages = 8 colors" 8
    (Layout.Page_coloring.colors_of ~cache:dm_cache ~page_size:256);
  let assoc = Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 () in
  check_int "4-way: way size 512 = 2 colors" 2
    (Layout.Page_coloring.colors_of ~cache:assoc ~page_size:256)

let test_page_coloring_separates_hot_pair () =
  (* two overlapping hot variables must land on different colors *)
  let vars = [ ("x", 256); ("y", 256) ] in
  let m = map_of vars in
  let summaries = overlapping_summaries [ "x"; "y" ] in
  let pc =
    Layout.Page_coloring.assign ~cache:dm_cache ~page_size:256 ~address_map:m
      ~vars ~summaries
  in
  let cx = Layout.Page_coloring.color_of pc "x"
  and cy = Layout.Page_coloring.color_of pc "y" in
  check_bool "both colored" true (cx <> None && cy <> None);
  check_bool "different colors" true (cx <> cy)

let test_page_coloring_frames_realize_colors () =
  let vars = [ ("x", 512); ("y", 256) ] in
  let m = map_of vars in
  let summaries = overlapping_summaries [ "x"; "y" ] in
  let pc =
    Layout.Page_coloring.assign ~cache:dm_cache ~page_size:256 ~address_map:m
      ~vars ~summaries
  in
  let fm = Layout.Page_coloring.frame_map pc in
  (* a page's physical color is frame mod colors: x's and y's pages must not
     share a color with an interfering page *)
  let color_of_page page = Vm.Frame_map.frame_of fm page mod 8 in
  let pages name size =
    let base = Address_map.base_of m name in
    List.init ((size + 255) / 256) (fun i -> (base / 256) + i)
  in
  let x_colors = List.map color_of_page (pages "x" 512) in
  let y_colors = List.map color_of_page (pages "y" 256) in
  List.iter
    (fun yc -> check_bool "y avoids x's colors" false (List.mem yc x_colors))
    y_colors

let test_page_coloring_reduces_conflict_misses () =
  (* two hot interleaved 256B buffers that alias in a direct-mapped cache
     under the naive layout: page coloring must fix them *)
  let vars = [ ("x", 256); ("pad", 1792); ("y", 256) ] in
  let m =
    (* place x and y exactly one cache-size apart so they alias *)
    Address_map.build ~page_size:256 ~column_size:2048 ~vars ()
  in
  let interleaved =
    Memtrace.Trace.of_list
      (List.concat_map
         (fun i ->
           [
             Memtrace.Access.make ~var:"x" (Address_map.base_of m "x" + (i * 16 mod 256));
             Memtrace.Access.make ~var:"y" (Address_map.base_of m "y" + (i * 16 mod 256));
           ])
         (List.init 400 (fun i -> i)))
  in
  let summaries = Profile.Lifetime.of_trace interleaved in
  let run configure =
    let system =
      Machine.System.create (Machine.System.config ~page_size:256 dm_cache)
    in
    configure system;
    let stats = Machine.System.run system interleaved in
    stats.Machine.Run_stats.cache.Cache.Stats.misses
  in
  let naive = run (fun _ -> ()) in
  let colored =
    run (fun system ->
        Layout.Page_coloring.apply
          (Layout.Page_coloring.assign ~cache:dm_cache ~page_size:256
             ~address_map:m ~vars ~summaries)
          system)
  in
  check_bool
    (Printf.sprintf "colored (%d) far fewer misses than naive (%d)" colored naive)
    true
    (colored * 5 < naive)

let test_page_coloring_recolor_cost () =
  let vars = [ ("x", 512); ("y", 512) ] in
  let m = map_of vars in
  let pc summaries =
    Layout.Page_coloring.assign ~cache:dm_cache ~page_size:256 ~address_map:m
      ~vars ~summaries
  in
  let a = pc (overlapping_summaries [ "x"; "y" ]) in
  check_int "same placement costs nothing" 0
    (Layout.Page_coloring.recolor_cost_bytes ~from_:a ~to_:a);
  (* different interference structure -> placements differ -> copies *)
  let b =
    pc
      [
        ("x", sum ~accesses:10. ~first:0 ~last:10 ());
        ("y", sum ~accesses:10. ~first:900 ~last:999 ());
      ]
  in
  let cost = Layout.Page_coloring.recolor_cost_bytes ~from_:a ~to_:b in
  check_bool "copies are page multiples" true (cost mod 256 = 0)

(* --- properties --- *)

let arb_vars =
  QCheck.make
    ~print:(fun vars ->
      String.concat ","
        (List.map (fun (n, s) -> Printf.sprintf "%s:%d" n s) vars))
    QCheck.Gen.(
      let* n = int_range 1 8 in
      let* sizes = list_size (return n) (int_range 8 1400) in
      return (List.mapi (fun k s -> (Printf.sprintf "v%d" k, s)) sizes))

let prop_every_region_placed =
  QCheck.Test.make ~name:"every region gets exactly one placement" ~count:200
    (QCheck.pair arb_vars (QCheck.int_range 0 4)) (fun (vars, p) ->
      let summaries = overlapping_summaries (List.map fst vars) in
      let m, regions = mk_setup vars summaries in
      let part = Partition.compute ~spec:(spec ~p) ~address_map:m regions in
      List.length part.Partition.placements = List.length regions
      &&
      let names =
        List.sort_uniq compare
          (List.map
             (fun pl -> Region.name pl.Partition.region)
             part.Partition.placements)
      in
      List.length names = List.length regions)

let prop_scratchpad_capacity_respected =
  QCheck.Test.make ~name:"scratchpad columns never overcommitted" ~count:200
    (QCheck.pair arb_vars (QCheck.int_range 1 4)) (fun (vars, p) ->
      let summaries = overlapping_summaries (List.map fst vars) in
      let m, regions = mk_setup vars summaries in
      let part = Partition.compute ~spec:(spec ~p) ~address_map:m regions in
      (* per-column sums of scratchpad placements *)
      let per_col = Array.make 4 0 in
      List.iter
        (fun pl ->
          if pl.Partition.role = Partition.Scratchpad then
            match Partition.placement_column pl with
            | Some c -> per_col.(c) <- per_col.(c) + pl.Partition.region.Region.size
            | None -> ())
        part.Partition.placements;
      Array.for_all (fun used -> used <= 512) per_col)

let prop_cached_only_in_cache_columns =
  QCheck.Test.make ~name:"cached regions stay out of scratchpad columns" ~count:200
    (QCheck.pair arb_vars (QCheck.int_range 0 3)) (fun (vars, p) ->
      let summaries = overlapping_summaries (List.map fst vars) in
      let m, regions = mk_setup vars summaries in
      let part = Partition.compute ~spec:(spec ~p) ~address_map:m regions in
      List.for_all
        (fun pl ->
          match pl.Partition.columns with
          | Some mask ->
              List.for_all (fun c -> c >= p && c < 4) (Bitmask.to_list mask)
          | None -> false)
        (Partition.cached_regions part))

let prop_no_uncached_with_cache_columns =
  QCheck.Test.make ~name:"uncached only appears when p = k" ~count:200
    (QCheck.pair arb_vars (QCheck.int_range 0 3)) (fun (vars, p) ->
      let summaries = overlapping_summaries (List.map fst vars) in
      let m, regions = mk_setup vars summaries in
      let part = Partition.compute ~spec:(spec ~p) ~address_map:m regions in
      Partition.uncached_regions part = [])

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_every_region_placed;
      prop_scratchpad_capacity_respected;
      prop_cached_only_in_cache_columns;
      prop_no_uncached_with_cache_columns;
    ]

let suites =
  [
    ( "layout.region",
      [
        Alcotest.test_case "small var untouched" `Quick test_split_small_var_untouched;
        Alcotest.test_case "large var split" `Quick test_split_large_var;
        Alcotest.test_case "unreferenced skipped" `Quick test_split_skips_unreferenced;
        Alcotest.test_case "density" `Quick test_density;
      ] );
    ( "layout.address_map",
      [
        Alcotest.test_case "page exclusive" `Quick test_address_map_page_exclusive;
        Alcotest.test_case "no column wrap" `Quick test_address_map_no_wrap;
        Alcotest.test_case "multicolumn aligned" `Quick test_address_map_multicolumn_aligned;
        Alcotest.test_case "unknown var" `Quick test_address_map_unknown;
        Alcotest.test_case "column interval" `Quick test_column_interval;
      ] );
    ( "layout.partition",
      [
        Alcotest.test_case "all cached at p=0" `Quick test_partition_all_cached_when_p0;
        Alcotest.test_case "greedy by density" `Quick test_partition_scratchpad_greedy_by_density;
        Alcotest.test_case "interval packing" `Quick test_partition_packing_disjoint_intervals;
        Alcotest.test_case "uncached at p=k" `Quick test_partition_uncached_when_no_cache_left;
        Alcotest.test_case "forced scratchpad" `Quick test_partition_forced_scratchpad;
        Alcotest.test_case "forced too big" `Quick test_partition_forced_too_big_rejected;
        Alcotest.test_case "spec validation" `Quick test_partition_spec_validation;
      ] );
    ( "layout.apply",
      [
        Alcotest.test_case "configures masks" `Quick test_apply_configures_masks;
        Alcotest.test_case "scratchpad miss-free" `Quick test_apply_scratchpad_is_missfree;
        Alcotest.test_case "copy-in charging" `Quick test_apply_copy_in_charges;
        Alcotest.test_case "geometry mismatch" `Quick test_apply_geometry_mismatch;
      ] );
    ( "layout.page_coloring",
      [
        Alcotest.test_case "colors_of" `Quick test_page_coloring_colors_of;
        Alcotest.test_case "separates hot pair" `Quick test_page_coloring_separates_hot_pair;
        Alcotest.test_case "frames realize colors" `Quick test_page_coloring_frames_realize_colors;
        Alcotest.test_case "reduces conflict misses" `Quick test_page_coloring_reduces_conflict_misses;
        Alcotest.test_case "recolor cost" `Quick test_page_coloring_recolor_cost;
      ] );
    ("layout.properties", qcheck_cases);
  ]
