(* Tests for the coloring library: the graph structure, the exact DSATUR
   branch-and-bound, and the paper's merge heuristic. *)

module Graph = Coloring.Graph
module Solver = Coloring.Solver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build edges n =
  let g = Graph.create () in
  for v = 0 to n - 1 do
    ignore (Graph.add_vertex g ~label:(Printf.sprintf "v%d" v))
  done;
  List.iter (fun (u, v, w) -> Graph.set_weight g u v w) edges;
  g

(* --- graph --- *)

let test_graph_basics () =
  let g = build [ (0, 1, 5); (1, 2, 3) ] 3 in
  check_int "weight" 5 (Graph.weight g 0 1);
  check_int "symmetric" 5 (Graph.weight g 1 0);
  check_int "absent" 0 (Graph.weight g 0 2);
  check_int "degree" 2 (Graph.degree g 1);
  check_int "total" 8 (Graph.total_weight g);
  check_bool "edges" true (Graph.edges g = [ (0, 1, 5); (1, 2, 3) ])

let test_graph_validation () =
  let g = build [] 2 in
  check_bool "self edge" true
    (try Graph.set_weight g 0 0 1; false with Invalid_argument _ -> true);
  check_bool "negative weight" true
    (try Graph.set_weight g 0 1 (-1); false with Invalid_argument _ -> true);
  check_bool "unknown vertex" true
    (try ignore (Graph.weight g 0 9); false with Invalid_argument _ -> true)

let test_graph_zero_removes () =
  let g = build [ (0, 1, 5) ] 2 in
  Graph.set_weight g 0 1 0;
  check_bool "edge removed" true (Graph.edges g = []);
  check_bool "no min edge" true (Graph.min_weight_edge g = None)

let test_graph_min_weight_edge () =
  let g = build [ (0, 1, 5); (1, 2, 2); (0, 2, 9) ] 3 in
  check_bool "min" true (Graph.min_weight_edge g = Some (1, 2, 2))

let test_graph_coloring_cost () =
  let g = build [ (0, 1, 5); (1, 2, 3); (0, 2, 7) ] 3 in
  check_int "all same color" 15 (Graph.coloring_cost g [| 0; 0; 0 |]);
  check_int "proper" 0 (Graph.coloring_cost g [| 0; 1; 2 |]);
  check_bool "proper detected" true (Graph.is_coloring_proper g [| 0; 1; 2 |]);
  check_bool "improper detected" false (Graph.is_coloring_proper g [| 0; 0; 1 |]);
  check_int "partial" 3 (Graph.coloring_cost g [| 0; 1; 1 |])

let test_graph_labels () =
  let g = Graph.create () in
  let a = Graph.add_vertex g ~label:"alpha" in
  check_int "first id 0" 0 a;
  check_bool "label" true (Graph.label g a = "alpha");
  check_bool "find" true (Graph.find_label g "alpha" = Some 0);
  check_bool "missing" true (Graph.find_label g "nope" = None)

(* --- exact coloring --- *)

let test_chromatic_triangle () =
  let g = build [ (0, 1, 1); (1, 2, 1); (0, 2, 1) ] 3 in
  let n, coloring = Solver.chromatic g in
  check_int "triangle needs 3" 3 n;
  check_bool "witness proper" true (Graph.is_coloring_proper g coloring)

let test_chromatic_bipartite () =
  (* complete bipartite K33 is 2-chromatic *)
  let edges =
    List.concat_map (fun u -> List.map (fun v -> (u, v, 1)) [ 3; 4; 5 ]) [ 0; 1; 2 ]
  in
  let g = build edges 6 in
  let n, coloring = Solver.chromatic g in
  check_int "bipartite" 2 n;
  check_bool "proper" true (Graph.is_coloring_proper g coloring)

let test_chromatic_edgeless () =
  let g = build [] 5 in
  let n, _ = Solver.chromatic g in
  check_int "edgeless is 1-chromatic" 1 n

let test_chromatic_empty () =
  let g = Graph.create () in
  let n, coloring = Solver.chromatic g in
  check_int "empty" 0 n;
  check_int "empty witness" 0 (Array.length coloring)

let test_chromatic_odd_cycle () =
  (* C5 needs 3 colors; greedy alone can be fooled, B&B must not be *)
  let g = build [ (0, 1, 1); (1, 2, 1); (2, 3, 1); (3, 4, 1); (4, 0, 1) ] 5 in
  let n, _ = Solver.chromatic g in
  check_int "C5" 3 n

let test_chromatic_wheel () =
  (* W6: hub + C5 rim -> chromatic number 4 *)
  let rim = [ (1, 2, 1); (2, 3, 1); (3, 4, 1); (4, 5, 1); (5, 1, 1) ] in
  let spokes = List.map (fun v -> (0, v, 1)) [ 1; 2; 3; 4; 5 ] in
  let g = build (rim @ spokes) 6 in
  let n, _ = Solver.chromatic g in
  check_int "wheel W6" 4 n

let test_exact_k () =
  let g = build [ (0, 1, 1); (1, 2, 1); (0, 2, 1) ] 3 in
  check_bool "3-colorable" true (Solver.exact_k g ~k:3 <> None);
  check_bool "not 2-colorable" true (Solver.exact_k g ~k:2 = None)

(* --- merge heuristic / greedy --- *)

let test_assign_columns_enough_colors () =
  let g = build [ (0, 1, 10); (1, 2, 10) ] 3 in
  let colors = Solver.assign_columns g ~k:2 in
  check_int "zero residual" 0 (Graph.coloring_cost g colors);
  Array.iter (fun c -> check_bool "in range" true (c >= 0 && c < 2)) colors

let test_assign_columns_merges_min_edge () =
  (* triangle with one cheap edge, k=2: the cheap edge's endpoints merge *)
  let g = build [ (0, 1, 100); (1, 2, 1); (0, 2, 100) ] 3 in
  let colors = Solver.assign_columns g ~k:2 in
  check_int "residual = cheapest edge" 1 (Graph.coloring_cost g colors);
  check_bool "merged pair shares" true (colors.(1) = colors.(2));
  check_bool "expensive separated" true (colors.(0) <> colors.(1))

let test_assign_columns_k1 () =
  let g = build [ (0, 1, 3); (1, 2, 4); (0, 2, 5) ] 3 in
  let colors = Solver.assign_columns g ~k:1 in
  check_int "everything together" 12 (Graph.coloring_cost g colors);
  Array.iter (fun c -> check_int "single color" 0 c) colors

let test_assign_columns_heat_tiebreak () =
  (* two equal-weight edges; the colder pair must merge *)
  let g = build [ (0, 1, 5); (1, 2, 5); (0, 2, 5) ] 3 in
  let heat = [| 1000.; 2.; 3. |] in
  let colors = Solver.assign_columns ~heat g ~k:2 in
  check_bool "cold vertices 1,2 merged" true (colors.(1) = colors.(2));
  check_bool "hot vertex alone" true (colors.(0) <> colors.(1))

let test_assign_columns_rejects_bad_k () =
  let g = build [] 1 in
  check_bool "k=0 rejected" true
    (try ignore (Solver.assign_columns g ~k:0); false
     with Invalid_argument _ -> true);
  check_bool "bad heat length rejected" true
    (try ignore (Solver.assign_columns ~heat:[| 1.; 2. |] g ~k:1); false
     with Invalid_argument _ -> true)

let test_greedy_weighted_proper_when_possible () =
  let g = build [ (0, 1, 5); (1, 2, 5) ] 3 in
  let colors = Solver.greedy_weighted g ~k:2 in
  check_int "path 2-colored greedily" 0 (Graph.coloring_cost g colors)

(* --- properties --- *)

let gen_graph =
  QCheck.Gen.(
    let* n = int_range 1 9 in
    let* edges =
      list_size (int_bound (n * (n - 1) / 2))
        (triple (int_bound (n - 1)) (int_bound (n - 1)) (int_range 1 50))
    in
    let g = Graph.create () in
    for v = 0 to n - 1 do
      ignore (Graph.add_vertex g ~label:(string_of_int v))
    done;
    List.iter (fun (u, v, w) -> if u <> v then Graph.set_weight g u v w) edges;
    return g)

let arb_graph = QCheck.make ~print:(Format.asprintf "%a" Graph.pp) gen_graph

let prop_chromatic_witness_proper =
  QCheck.Test.make ~name:"chromatic witness is proper and uses n colors" ~count:200
    arb_graph (fun g ->
      let n, coloring = Solver.chromatic g in
      Graph.is_coloring_proper g coloring
      && Array.for_all (fun c -> c >= 0 && c < n) coloring)

let prop_chromatic_minimal =
  QCheck.Test.make ~name:"no proper coloring with chromatic-1 colors" ~count:100
    arb_graph (fun g ->
      let n, _ = Solver.chromatic g in
      n <= 1 || Solver.exact_k g ~k:(n - 1) = None)

let prop_assign_columns_within_k =
  QCheck.Test.make ~name:"assign_columns uses at most k colors" ~count:200
    (QCheck.pair arb_graph (QCheck.int_range 1 4)) (fun (g, k) ->
      let colors = Solver.assign_columns g ~k in
      Array.for_all (fun c -> c >= 0 && c < k) colors)

let prop_assign_columns_zero_cost_when_k_enough =
  QCheck.Test.make ~name:"assign_columns residual is 0 when k >= chromatic" ~count:100
    arb_graph (fun g ->
      let n, _ = Solver.chromatic g in
      let k = max 1 n in
      Graph.coloring_cost g (Solver.assign_columns g ~k) = 0)

let prop_greedy_no_worse_than_everything_together =
  QCheck.Test.make ~name:"greedy cost <= all-in-one-column cost" ~count:200
    (QCheck.pair arb_graph (QCheck.int_range 1 4)) (fun (g, k) ->
      Graph.coloring_cost g (Solver.greedy_weighted g ~k) <= Graph.total_weight g)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_chromatic_witness_proper;
      prop_chromatic_minimal;
      prop_assign_columns_within_k;
      prop_assign_columns_zero_cost_when_k_enough;
      prop_greedy_no_worse_than_everything_together;
    ]

let suites =
  [
    ( "coloring.graph",
      [
        Alcotest.test_case "basics" `Quick test_graph_basics;
        Alcotest.test_case "validation" `Quick test_graph_validation;
        Alcotest.test_case "zero removes edge" `Quick test_graph_zero_removes;
        Alcotest.test_case "min weight edge" `Quick test_graph_min_weight_edge;
        Alcotest.test_case "coloring cost" `Quick test_graph_coloring_cost;
        Alcotest.test_case "labels" `Quick test_graph_labels;
      ] );
    ( "coloring.exact",
      [
        Alcotest.test_case "triangle" `Quick test_chromatic_triangle;
        Alcotest.test_case "bipartite" `Quick test_chromatic_bipartite;
        Alcotest.test_case "edgeless" `Quick test_chromatic_edgeless;
        Alcotest.test_case "empty" `Quick test_chromatic_empty;
        Alcotest.test_case "odd cycle" `Quick test_chromatic_odd_cycle;
        Alcotest.test_case "wheel" `Quick test_chromatic_wheel;
        Alcotest.test_case "exact_k" `Quick test_exact_k;
      ] );
    ( "coloring.assign",
      [
        Alcotest.test_case "enough colors" `Quick test_assign_columns_enough_colors;
        Alcotest.test_case "merges min edge" `Quick test_assign_columns_merges_min_edge;
        Alcotest.test_case "k = 1" `Quick test_assign_columns_k1;
        Alcotest.test_case "heat tie-break" `Quick test_assign_columns_heat_tiebreak;
        Alcotest.test_case "rejects bad input" `Quick test_assign_columns_rejects_bad_k;
        Alcotest.test_case "greedy proper" `Quick test_greedy_weighted_proper_when_possible;
      ] );
    ("coloring.properties", qcheck_cases);
  ]
