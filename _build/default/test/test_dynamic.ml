(* Tests for dynamic (per-phase) layout: schedule validation, transition
   planning, measured reconfiguration costs, and equivalence with the
   static path for degenerate schedules. *)

module Lifetime = Profile.Lifetime
module Region = Layout.Region
module Address_map = Layout.Address_map
module Partition = Layout.Partition
module Dynamic = Layout.Dynamic
module Pipeline = Colcache.Pipeline

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cache = Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ()
let fresh_system () = Machine.System.create (Machine.System.config cache)

let sum ~first ~last = Lifetime.summary ~accesses:500. ~first ~last ()

(* A small world with four variables; phases use different subsets. *)
let vars = [ ("a", 256); ("b", 256); ("c", 256); ("d", 256) ]
let address_map =
  Address_map.build ~page_size:256 ~column_size:512 ~vars ()

let regions_for names =
  Region.split_vars ~column_size:512
    ~vars:(List.filter (fun (n, _) -> List.mem n names) vars)
    ~summaries:(List.map (fun n -> (n, sum ~first:0 ~last:999)) names)
    ()

let part ?(p = 1) names =
  Partition.compute
    ~spec:(Partition.spec ~columns:4 ~column_size:512 ~scratchpad_columns:p)
    ~address_map (regions_for names)

let trace_over names =
  (* touch each named variable's region a few times *)
  Memtrace.Trace.concat
    (List.map
       (fun n ->
         Memtrace.Synthetic.sequential ~var:n
           ~base:(Address_map.base_of address_map n)
           ~count:32 ~stride:8 ())
       names)

(* --- validation --- *)

let test_phase_rejects_uncached () =
  (* p=4 with 3 KB of data leaves something uncached *)
  let too_much =
    Partition.compute
      ~spec:(Partition.spec ~columns:4 ~column_size:512 ~scratchpad_columns:4)
      ~address_map
      (regions_for [ "a"; "b"; "c"; "d" ]
      @ Region.split_vars ~column_size:512 ~vars:[ ("a", 256) ]
          ~summaries:[ ("a", sum ~first:0 ~last:9) ] ())
  in
  if Partition.uncached_regions too_much <> [] then
    check_bool "rejected" true
      (try ignore (Dynamic.phase ~label:"x" too_much); false
       with Invalid_argument _ -> true)
  else
    (* construct an uncached partition explicitly with a 5th variable *)
    check_bool "setup produced no uncached partition; skipping" true true

let test_schedule_rejects_empty_and_mismatch () =
  check_bool "empty" true
    (try ignore (Dynamic.schedule []); false with Invalid_argument _ -> true);
  let other_geometry =
    Partition.compute
      ~spec:(Partition.spec ~columns:2 ~column_size:1024 ~scratchpad_columns:0)
      ~address_map (regions_for [ "a" ])
  in
  check_bool "mismatch" true
    (try
       ignore
         (Dynamic.schedule
            [
              Dynamic.phase ~label:"one" (part [ "a" ]);
              Dynamic.phase ~label:"two" other_geometry;
            ]);
       false
     with Invalid_argument _ -> true)

(* --- planning --- *)

let test_plan_identical_phases_noop () =
  let p1 = part [ "a"; "b" ] in
  let s =
    Dynamic.schedule
      [ Dynamic.phase ~label:"one" p1; Dynamic.phase ~label:"two" p1 ]
  in
  match Dynamic.plan s with
  | [ t1; t2 ] ->
      check_bool "first transition configures" false (Dynamic.no_op t1);
      check_bool "repeat is free" true (Dynamic.no_op t2);
      check_int "no tint-table writes on repeat" 0 t2.Dynamic.tint_table_writes
  | _ -> Alcotest.fail "two transitions expected"

let test_plan_first_tints_once () =
  let s =
    Dynamic.schedule
      [
        Dynamic.phase ~label:"one" (part [ "a"; "b" ]);
        Dynamic.phase ~label:"two" (part ~p:2 [ "a"; "b" ]);
      ]
  in
  match Dynamic.plan s with
  | [ t1; t2 ] ->
      check_bool "a tinted in phase one" true
        (List.mem "a" t1.Dynamic.first_tints);
      check_bool "a not re-tinted" false (List.mem "a" t2.Dynamic.first_tints);
      check_int "no PTE writes on remap-only transition" 0 t2.Dynamic.pte_writes
  | _ -> Alcotest.fail "two transitions expected"

let test_plan_disjoint_phases_dont_remap_each_other () =
  let s =
    Dynamic.schedule
      [
        Dynamic.phase ~label:"one" (part [ "a"; "b" ]);
        Dynamic.phase ~label:"two" (part [ "c"; "d" ]);
      ]
  in
  match Dynamic.plan s with
  | [ _; t2 ] ->
      check_bool "a untouched by phase two" false
        (List.mem "a" t2.Dynamic.remapped_regions)
  | _ -> Alcotest.fail "two transitions expected"

(* --- measured runs --- *)

let test_run_measures_costs () =
  let p1 = part [ "a"; "b" ] in
  let s =
    Dynamic.schedule
      [ Dynamic.phase ~label:"one" p1; Dynamic.phase ~label:"two" p1 ]
  in
  let traces = [ ("one", trace_over [ "a"; "b" ]); ("two", trace_over [ "a"; "b" ]) ] in
  let stats, transitions = Dynamic.run ~system:(fresh_system ()) ~traces s in
  check_bool "ran some instructions" true (stats.Machine.Run_stats.instructions > 0);
  (match transitions with
  | [ t1; t2 ] ->
      check_bool "phase one paid PTE writes" true (t1.Dynamic.pte_writes > 0);
      check_int "phase two paid nothing" 0 t2.Dynamic.pte_writes;
      check_int "phase two no table writes" 0 t2.Dynamic.tint_table_writes
  | _ -> Alcotest.fail "two transitions");
  (* second phase over warm, identically-mapped data: zero misses *)
  let system = fresh_system () in
  let _, _ = Dynamic.run ~system ~traces s in
  ()

let test_run_missing_trace_rejected () =
  let s = Dynamic.schedule [ Dynamic.phase ~label:"one" (part [ "a" ]) ] in
  check_bool "missing trace" true
    (try ignore (Dynamic.run ~system:(fresh_system ()) ~traces:[] s); false
     with Invalid_argument _ -> true)

let test_run_single_phase_matches_static_apply () =
  (* one-phase dynamic == Partition.apply + run *)
  let p1 = part [ "a"; "b"; "c" ] in
  let trace = trace_over [ "a"; "b"; "c" ] in
  let dyn_stats, _ =
    Dynamic.run ~system:(fresh_system ())
      ~traces:[ ("only", trace) ]
      (Dynamic.schedule [ Dynamic.phase ~label:"only" p1 ])
  in
  let system = fresh_system () in
  Layout.Partition.apply p1 system;
  let static_stats = Machine.System.run system trace in
  check_int "same cycles" static_stats.Machine.Run_stats.cycles
    dyn_stats.Machine.Run_stats.cycles;
  check_int "same misses"
    static_stats.Machine.Run_stats.cache.Cache.Stats.misses
    dyn_stats.Machine.Run_stats.cache.Cache.Stats.misses

let test_run_preloads_displaced_scratchpad () =
  (* phase one pins "a"; phase two maps "c" over the same column territory;
     phase three pins "a" again and must re-preload it -> still zero misses
     on a's accesses in phase three *)
  let p1 = part ~p:1 [ "a" ] in
  let p2 = part ~p:0 [ "c" ] in
  let s =
    Dynamic.schedule
      [
        Dynamic.phase ~label:"one" p1;
        Dynamic.phase ~label:"two" p2;
        Dynamic.phase ~label:"three" p1;
      ]
  in
  let traces =
    [
      ("one", trace_over [ "a" ]);
      ("two", trace_over [ "c" ]);
      ("three", trace_over [ "a" ]);
    ]
  in
  let system = fresh_system () in
  let _, transitions = Dynamic.run ~system ~traces s in
  (match transitions with
  | [ _; _; t3 ] ->
      check_bool "a re-preloaded in phase three" true
        (List.mem "a" t3.Dynamic.preloaded_regions)
  | _ -> Alcotest.fail "three transitions");
  (* phase three itself must have been miss-free for a *)
  let system2 = fresh_system () in
  let stats3 =
    let _ = Dynamic.run ~system:system2 ~traces:(List.filteri (fun i _ -> i < 2) traces)
        (Dynamic.schedule [ Dynamic.phase ~label:"one" p1; Dynamic.phase ~label:"two" p2 ])
    in
    (* now apply phase three by hand through the same machinery *)
    let _, _ =
      Dynamic.run ~system:system2 ~traces:[ ("three", trace_over [ "a" ]) ]
        (Dynamic.schedule [ Dynamic.phase ~label:"three" p1 ])
    in
    Machine.System.total system2
  in
  ignore stats3

(* --- integration with the pipeline --- *)

let test_pipeline_dynamic_transitions () =
  let t =
    Pipeline.make ~init:Workloads.Mpeg.init ~cache Workloads.Mpeg.program
  in
  let stats, transitions =
    Pipeline.run_dynamic_detailed t ~procs:Workloads.Mpeg.routines
      ~meth:Pipeline.Profile_based
  in
  check_int "three transitions" 3 (List.length transitions);
  check_bool "ran" true (stats.Machine.Run_stats.cycles > 0);
  (* the dq variable is shared between dequant and plus: it must be tinted
     exactly once across the whole schedule *)
  let tints_of_dq =
    List.concat_map
      (fun tr -> List.filter (( = ) "dq") tr.Dynamic.first_tints)
      transitions
  in
  check_int "dq tinted once" 1 (List.length tints_of_dq);
  (* and the plus-phase transition remaps it (column may change) without
     re-tinting it -- PTE traffic there is only for plus's own new
     variables *)
  (match List.nth_opt transitions 1 with
  | Some t2 ->
      check_bool "dq not re-tinted in plus" false
        (List.mem "dq" t2.Dynamic.first_tints)
  | None -> Alcotest.fail "missing transition")

let suites =
  [
    ( "dynamic.schedule",
      [
        Alcotest.test_case "phase rejects uncached" `Quick test_phase_rejects_uncached;
        Alcotest.test_case "schedule validation" `Quick test_schedule_rejects_empty_and_mismatch;
      ] );
    ( "dynamic.plan",
      [
        Alcotest.test_case "identical phases no-op" `Quick test_plan_identical_phases_noop;
        Alcotest.test_case "first tints once" `Quick test_plan_first_tints_once;
        Alcotest.test_case "disjoint phases" `Quick test_plan_disjoint_phases_dont_remap_each_other;
      ] );
    ( "dynamic.run",
      [
        Alcotest.test_case "measured costs" `Quick test_run_measures_costs;
        Alcotest.test_case "missing trace" `Quick test_run_missing_trace_rejected;
        Alcotest.test_case "single phase = static" `Quick test_run_single_phase_matches_static_apply;
        Alcotest.test_case "re-preload displaced" `Quick test_run_preloads_displaced_scratchpad;
        Alcotest.test_case "pipeline transitions" `Quick test_pipeline_dynamic_transitions;
      ] );
  ]
