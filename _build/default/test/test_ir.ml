(* Tests for the IR: validation, the interpreter's semantics (values AND
   emitted traces), and the static analysis. *)

open Ir.Build
module Ast = Ir.Ast
module Interp = Ir.Interp
module Static = Ir.Static_analysis
module Access = Memtrace.Access
module Trace = Memtrace.Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let simple_layout program = Interp.sequential_layout program

(* --- validation --- *)

let test_validate_ok () =
  let p =
    program
      ~vars:[ array "a" ~elems:4 (); scalar "s" () ]
      [ proc "main" [ st "a" (i 0) (i 1); set "s" (ld "a" (i 0)) ] ]
  in
  check_int "vars" 2 (List.length p.Ast.vars)

let expect_invalid f =
  check_bool "Invalid_program raised" true
    (try ignore (f ()); false with Ast.Invalid_program _ -> true)

let test_validate_duplicate_var () =
  expect_invalid (fun () ->
      program ~vars:[ scalar "x" (); scalar "x" () ] [ proc "main" [] ])

let test_validate_undeclared () =
  expect_invalid (fun () ->
      program ~vars:[] [ proc "main" [ set "ghost" (i 1) ] ])

let test_validate_scalar_array_confusion () =
  expect_invalid (fun () ->
      program ~vars:[ scalar "x" () ] [ proc "main" [ st "x" (i 0) (i 1) ] ]);
  expect_invalid (fun () ->
      program ~vars:[ array "a" ~elems:4 () ] [ proc "main" [ set "a" (i 1) ] ])

let test_validate_bad_probability () =
  expect_invalid (fun () ->
      program ~vars:[ scalar "x" () ]
        [ proc "main" [ if_ (lt ~prob:2.0 (i 0) (i 1)) [ set "x" (i 1) ] ] ])

let test_validate_unknown_call () =
  expect_invalid (fun () -> program ~vars:[] [ proc "main" [ call "nope" ] ])

let test_validate_recursion () =
  expect_invalid (fun () ->
      program ~vars:[]
        [ proc "a" [ call "b" ]; proc "b" [ call "a" ]; proc "main" [ call "a" ] ])

(* --- interpreter values --- *)

let run_scalar ?init stmts =
  let p = program ~vars:[ scalar "out" (); array "buf" ~elems:16 () ] [ proc "main" stmts ] in
  let r = Interp.run ?init p ~proc:"main" ~layout:(simple_layout p) in
  (r.Interp.memory "out").(0)

let test_interp_arithmetic () =
  check_int "((3+4)*5-1)/2" 17
    (run_scalar [ set "out" (((i 3 + i 4) * i 5 - i 1) / i 2) ]);
  check_int "mod" 2 (run_scalar [ set "out" (i 17 % i 5) ]);
  check_int "shifts" 20 (run_scalar [ set "out" (shl (i 5) (i 2)) ]);
  check_int "shr" 5 (run_scalar [ set "out" (shr (i 20) (i 2)) ]);
  check_int "min" 3 (run_scalar [ set "out" (min' (i 3) (i 9)) ]);
  check_int "max" 9 (run_scalar [ set "out" (max' (i 3) (i 9)) ]);
  check_int "neg" (-7) (run_scalar [ set "out" (neg (i 7)) ])

let test_interp_division_by_zero () =
  check_bool "raises" true
    (try ignore (run_scalar [ set "out" (i 1 / i 0) ]); false
     with Interp.Interp_error _ -> true)

let test_interp_loop_sum () =
  (* sum 0..9 = 45 *)
  check_int "loop sum" 45
    (run_scalar
       [
         setr "acc" (i 0);
         for_ "k" (i 0) (i 10) [ setr "acc" (r "acc" + r "k") ];
         set "out" (r "acc");
       ])

let test_interp_nested_loop_order () =
  (* buf.(i*4+j) = i*10+j; check a sample *)
  let p =
    program ~vars:[ array "buf" ~elems:16 () ]
      [
        proc "main"
          [
            for_ "a" (i 0) (i 4)
              [
                for_ "b" (i 0) (i 4)
                  [ st "buf" ((r "a" * i 4) + r "b") ((r "a" * i 10) + r "b") ];
              ];
          ];
      ]
  in
  let r = Interp.run p ~proc:"main" ~layout:(simple_layout p) in
  check_int "buf[2*4+3]" 23 (r.Interp.memory "buf").(11)

let test_interp_branches_on_data () =
  let init name idx = if name = "buf" && idx = 0 then 42 else 0 in
  check_int "then branch" 1
    (run_scalar ~init
       [ if_else (eq (ld "buf" (i 0)) (i 42)) [ set "out" (i 1) ] [ set "out" (i 2) ] ]);
  check_int "else branch" 2
    (run_scalar
       [ if_else (eq (ld "buf" (i 0)) (i 42)) [ set "out" (i 1) ] [ set "out" (i 2) ] ])

let test_interp_while () =
  (* out = smallest power of 2 >= 100 *)
  check_int "while" 128
    (run_scalar
       [
         set "out" (i 1);
         while_ (lt (s "out") (i 100)) ~est_iterations:7
           [ set "out" (s "out" * i 2) ];
       ])

let test_interp_runaway_while_bounded () =
  check_bool "max_steps" true
    (try
       let p =
         program ~vars:[ scalar "x" () ]
           [
             proc "main"
               [ while_ (eq (i 0) (i 0)) ~est_iterations:1 [ set "x" (i 1) ] ];
           ]
       in
       ignore (Interp.run ~max_steps:1000 p ~proc:"main" ~layout:(simple_layout p));
       false
     with Interp.Interp_error _ -> true)

let test_interp_out_of_bounds () =
  check_bool "load OOB" true
    (try ignore (run_scalar [ set "out" (ld "buf" (i 99)) ]); false
     with Interp.Interp_error _ -> true);
  check_bool "store OOB" true
    (try ignore (run_scalar [ st "buf" (i (-1)) (i 0) ]); false
     with Interp.Interp_error _ -> true)

let test_interp_procedures () =
  let p =
    program ~vars:[ scalar "out" () ]
      [
        proc "inc" [ set "out" (s "out" + i 1) ];
        proc "main" [ set "out" (i 0); call "inc"; call "inc"; call "inc" ];
      ]
  in
  let r = Interp.run p ~proc:"main" ~layout:(simple_layout p) in
  check_int "three calls" 3 (r.Interp.memory "out").(0)

let test_interp_loop_reg_restored () =
  (* the loop register is scoped to the loop *)
  check_int "restored" 5
    (run_scalar
       [
         setr "k" (i 5);
         for_ "k" (i 0) (i 3) [ st "buf" (r "k") (i 1) ];
         set "out" (r "k");
       ])

(* --- interpreter traces --- *)

let test_trace_addresses_and_tags () =
  let p =
    program ~vars:[ array "a" ~elems:8 ~elem_size:4 (); scalar "x" () ]
      [ proc "main" [ st "a" (i 3) (i 7); set "x" (ld "a" (i 3)) ] ]
  in
  let layout = [ ("a", 0x100); ("x", 0x200) ] in
  let trace = Interp.trace_of p ~proc:"main" ~layout in
  check_int "three accesses" 3 (Trace.length trace);
  let a0 = Trace.get trace 0 in
  check_int "store addr = base + 3*4" 0x10c a0.Access.addr;
  check_bool "store kind" true (a0.Access.kind = Access.Write);
  check_bool "store var" true (a0.Access.var = Some "a");
  let a1 = Trace.get trace 1 in
  check_bool "load kind" true (a1.Access.kind = Access.Read);
  let a2 = Trace.get trace 2 in
  check_int "scalar addr" 0x200 a2.Access.addr

let test_trace_gap_accounting () =
  let p =
    program ~vars:[ scalar "x" () ]
      [ proc "main" [ set "x" (i 1 + i 2 + i 3) ] ]
  in
  let trace = Interp.trace_of p ~proc:"main" ~layout:(simple_layout p) in
  check_int "one access" 1 (Trace.length trace);
  (* two additions become the store's gap *)
  check_int "gap" 2 (Trace.get trace 0).Access.gap

let test_sequential_layout_disjoint () =
  let p =
    program
      ~vars:
        [ array "a" ~elems:10 ~elem_size:4 (); array "b" ~elems:3 ~elem_size:2 () ]
      [ proc "main" [] ]
  in
  let layout = Interp.sequential_layout ~align:16 p in
  let a = List.assoc "a" layout and b = List.assoc "b" layout in
  check_int "a at base" 0 a;
  check_bool "b after a, aligned" true (b >= 40 && b mod 16 = 0)

let test_address_of () =
  let p =
    program ~vars:[ array "a" ~elems:4 ~elem_size:8 () ] [ proc "main" [] ]
  in
  let layout = [ ("a", 0x40) ] in
  check_int "element addr" 0x58 (Interp.address_of ~layout p "a" 3);
  check_bool "OOB raises" true
    (try ignore (Interp.address_of ~layout p "a" 4); false
     with Interp.Interp_error _ -> true)

(* --- static analysis --- *)

let test_static_loop_counts () =
  let p =
    program ~vars:[ array "a" ~elems:64 () ]
      [ proc "main" [ for_ "k" (i 0) (i 64) [ st "a" (r "k") (i 0) ] ] ]
  in
  let summary = List.assoc "a" (Static.analyze p ~proc:"main") in
  check_bool "64 accesses estimated" true
    (abs_float (summary.Profile.Lifetime.accesses -. 64.) < 1e-6)

let test_static_branch_probability () =
  let p =
    program ~vars:[ array "a" ~elems:64 (); scalar "x" () ]
      [
        proc "main"
          [
            for_ "k" (i 0) (i 100)
              [
                if_ (lt ~prob:0.25 (r "k") (i 0)) [ set "x" (ld "a" (r "k")) ];
              ];
          ];
      ]
  in
  let a = List.assoc "a" (Static.analyze p ~proc:"main") in
  check_bool "25 accesses estimated" true
    (abs_float (a.Profile.Lifetime.accesses -. 25.) < 1e-6)

let test_static_sequential_phases_disjoint () =
  (* two loops back to back: the analysis must see their variables as
     lifetime-disjoint so they can share a column *)
  let p =
    program
      ~vars:[ array "a" ~elems:32 (); array "b" ~elems:32 () ]
      [
        proc "main"
          [
            for_ "k" (i 0) (i 32) [ st "a" (r "k") (i 0) ];
            for_ "k" (i 0) (i 32) [ st "b" (r "k") (i 0) ];
          ];
      ]
  in
  let summaries = Static.analyze p ~proc:"main" in
  let a = List.assoc "a" summaries and b = List.assoc "b" summaries in
  check_bool "disjoint phases" true (Profile.Lifetime.overlap a b = None);
  check_int "zero weight" 0 (Profile.Lifetime.weight a b)

let test_static_same_loop_overlaps () =
  let p =
    program
      ~vars:[ array "a" ~elems:32 (); array "b" ~elems:32 () ]
      [
        proc "main"
          [ for_ "k" (i 0) (i 32) [ st "a" (r "k") (ld "b" (r "k")) ] ];
      ]
  in
  let summaries = Static.analyze p ~proc:"main" in
  let a = List.assoc "a" summaries and b = List.assoc "b" summaries in
  check_bool "same-loop overlap" true (Profile.Lifetime.overlap a b <> None);
  check_bool "positive weight" true (Profile.Lifetime.weight a b > 0)

let test_static_while_estimate () =
  let p =
    program ~vars:[ scalar "x" () ]
      [
        proc "main"
          [ while_ (lt (s "x") (i 10)) ~est_iterations:10 [ set "x" (s "x" + i 1) ] ];
      ]
  in
  let x = List.assoc "x" (Static.analyze p ~proc:"main") in
  (* 10 writes + 10 body reads + 11 condition reads *)
  check_bool "estimate near 31" true
    (abs_float (x.Profile.Lifetime.accesses -. 31.) < 1e-6)

let test_static_vs_profile_ordering () =
  (* On the MPEG program both methods should agree on which variables are
     the heaviest. *)
  let p = Workloads.Mpeg.program in
  let static = Static.analyze p ~proc:"idct" in
  let layout = Interp.sequential_layout p in
  let profile =
    Profile.Lifetime.of_trace
      (Interp.trace_of ~init:Workloads.Mpeg.init p ~proc:"idct" ~layout)
  in
  let heaviest summaries =
    List.sort
      (fun (_, a) (_, b) ->
        compare b.Profile.Lifetime.accesses a.Profile.Lifetime.accesses)
      summaries
    |> List.map fst
  in
  (* both rank cos_tbl over blocks *)
  check_bool "same top variable" true
    (List.nth (heaviest static) 0 = List.nth (heaviest profile) 0)

let test_cost_of_proc_scales () =
  let mk n =
    program ~vars:[ array "a" ~elems:128 () ]
      [ proc "main" [ for_ "k" (i 0) (i n) [ st "a" (r "k" % i 128) (i 0) ] ] ]
  in
  let c10 = Static.cost_of_proc (mk 10) ~proc:"main" in
  let c100 = Static.cost_of_proc (mk 100) ~proc:"main" in
  check_bool "10x iterations ~10x cost" true (c100 > 8. *. c10 && c100 < 12. *. c10)

(* --- properties --- *)

(* Random straight-line programs: interpreter access count must equal the
   static estimate when there are no branches and loop bounds are known. *)
let prop_static_matches_interp_on_loops =
  QCheck.Test.make ~name:"static access count exact for constant loop nests"
    ~count:100
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (outer, inner) ->
      let p =
        program ~vars:[ array "a" ~elems:64 () ]
          [
            proc "main"
              [
                for_ "x" (i 0) (i outer)
                  [
                    for_ "y" (i 0) (i inner)
                      [ st "a" (((r "x" * i inner) + r "y") % i 64) (i 0) ];
                  ];
              ];
          ]
      in
      let static = List.assoc "a" (Static.analyze p ~proc:"main") in
      let trace = Interp.trace_of p ~proc:"main" ~layout:(simple_layout p) in
      int_of_float static.Profile.Lifetime.accesses = Trace.length trace)

let prop_interp_deterministic =
  QCheck.Test.make ~name:"interpreter is deterministic" ~count:50
    (QCheck.int_range 1 20) (fun n ->
      let p =
        program ~vars:[ array "a" ~elems:32 () ]
          [ proc "main" [ for_ "k" (i 0) (i n) [ st "a" (r "k" % i 32) (r "k") ] ] ]
      in
      let t1 = Interp.trace_of p ~proc:"main" ~layout:(simple_layout p) in
      let t2 = Interp.trace_of p ~proc:"main" ~layout:(simple_layout p) in
      Trace.equal t1 t2)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_static_matches_interp_on_loops; prop_interp_deterministic ]

let suites =
  [
    ( "ir.validate",
      [
        Alcotest.test_case "ok" `Quick test_validate_ok;
        Alcotest.test_case "duplicate var" `Quick test_validate_duplicate_var;
        Alcotest.test_case "undeclared" `Quick test_validate_undeclared;
        Alcotest.test_case "scalar/array confusion" `Quick test_validate_scalar_array_confusion;
        Alcotest.test_case "bad probability" `Quick test_validate_bad_probability;
        Alcotest.test_case "unknown call" `Quick test_validate_unknown_call;
        Alcotest.test_case "recursion" `Quick test_validate_recursion;
      ] );
    ( "ir.interp",
      [
        Alcotest.test_case "arithmetic" `Quick test_interp_arithmetic;
        Alcotest.test_case "division by zero" `Quick test_interp_division_by_zero;
        Alcotest.test_case "loop sum" `Quick test_interp_loop_sum;
        Alcotest.test_case "nested loops" `Quick test_interp_nested_loop_order;
        Alcotest.test_case "data-dependent branch" `Quick test_interp_branches_on_data;
        Alcotest.test_case "while" `Quick test_interp_while;
        Alcotest.test_case "runaway while bounded" `Quick test_interp_runaway_while_bounded;
        Alcotest.test_case "out of bounds" `Quick test_interp_out_of_bounds;
        Alcotest.test_case "procedures" `Quick test_interp_procedures;
        Alcotest.test_case "loop register scoping" `Quick test_interp_loop_reg_restored;
      ] );
    ( "ir.trace",
      [
        Alcotest.test_case "addresses and tags" `Quick test_trace_addresses_and_tags;
        Alcotest.test_case "gap accounting" `Quick test_trace_gap_accounting;
        Alcotest.test_case "sequential layout" `Quick test_sequential_layout_disjoint;
        Alcotest.test_case "address_of" `Quick test_address_of;
      ] );
    ( "ir.static_analysis",
      [
        Alcotest.test_case "loop counts" `Quick test_static_loop_counts;
        Alcotest.test_case "branch probability" `Quick test_static_branch_probability;
        Alcotest.test_case "sequential phases disjoint" `Quick test_static_sequential_phases_disjoint;
        Alcotest.test_case "same loop overlaps" `Quick test_static_same_loop_overlaps;
        Alcotest.test_case "while estimate" `Quick test_static_while_estimate;
        Alcotest.test_case "static vs profile ordering" `Quick test_static_vs_profile_ordering;
        Alcotest.test_case "cost scales with trips" `Quick test_cost_of_proc_scales;
      ] );
    ("ir.properties", qcheck_cases);
  ]
