type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64 (Steele, Lea, Flood 2014): the golden-gamma increment makes
   every seed, including 0, produce a full-period high-quality stream. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let x = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  x mod bound

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L
let chance t p = p > 0. && float_of_int (int t 1_000_000) < p *. 1_000_000.

(* The top 53 bits, scaled: every double in [0,1) representable this way,
   uniform, and bit-stable like the integer draws. *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let subset t ~keep l = List.filter (fun _ -> chance t keep) l
