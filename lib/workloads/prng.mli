(** Seeded pseudo-random numbers shared by the workload generators and the
    conformance harness.

    A splitmix64 generator: tiny, fast, and — unlike [Stdlib.Random] — with a
    bit-for-bit stable output sequence across OCaml versions, so a failing
    seed reported by CI reproduces exactly on any machine. {!Gen}'s traffic
    streams and every generator in [Check.Gen] (which re-exports this module
    as [Check.Prng]) draw from one of these. *)

type t

val create : seed:int -> t
(** Two generators created with the same seed produce the same sequence. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in [lo, hi] inclusive. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val float : t -> float
(** Uniform in [0, 1), from the draw's top 53 bits. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val subset : t -> keep:float -> 'a list -> 'a list
(** Keep each element independently with probability [keep]. *)
