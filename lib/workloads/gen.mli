(** Traffic-shaped workload generators.

    Each {!stream} describes a distribution over item ranks; {!emit} samples
    it with a seeded splitmix64 generator ({!Prng}) and lays the ranks out as
    strided addresses in a {!Memtrace.Packed} trace, so equal seeds give
    byte-identical traces on any machine. {!kv} builds a synthetic KV-store
    request workload — hash-table probe plus value walk per request — on the
    same footing.

    Every trace carries its request windows ([requests]) for per-request
    latency accounting, and its declared address range ([base]/[limit]) so
    harnesses can verify containment with {!out_of_range}. *)

type stream =
  | Uniform of { items : int }  (** Uniform over [0, items). *)
  | Scan of { items : int }  (** Sequential sweep, wrapping at [items]. *)
  | Zipf of { items : int; theta : float }
      (** Rank [k] (0-based) drawn with probability proportional to
          [1 / (k+1)^theta]. [theta = 0] degenerates to uniform. *)
  | Hot_set of {
      items : int;
      hot_items : int;  (** Size of the hot window. *)
      hot_prob : float;  (** Probability a sample lands in the window. *)
      drift_every : int;
          (** The window start advances by [hot_items] (mod [items]) after
              every [drift_every] samples. *)
    }
  | Phased of (int * stream) list
      (** Round-robin through sub-streams: [(len, s)] plays [len] samples
          from [s] before moving on, cycling back to the first phase. *)

val items : stream -> int
(** Size of the rank space: the largest [items] over all (sub-)streams. *)

type trace = {
  packed : Memtrace.Packed.t;
  requests : (int * int) array;
      (** Request windows as [(start, stop)] access-index spans, start
          inclusive, stop exclusive, sorted and non-overlapping. *)
  base : int;  (** Lowest address the generator may emit. *)
  limit : int;  (** One past the highest address the generator may emit. *)
}

val iter_accesses :
  ?perturb:bool ->
  ?base:int ->
  ?stride:int ->
  ?write_ratio:float ->
  seed:int ->
  n:int ->
  stream ->
  (kind:Memtrace.Access.kind -> gap:int -> int -> unit) ->
  unit
(** The raw access stream of {!emit}, delivered to a callback instead of
    collected: [f ~kind ~gap addr] is called once per access, in order.
    Stream this into a {!Memtrace.Packed.Writer} to synthesize traces far
    larger than RAM ([colcache trace synth]); the PRNG consumption is
    identical to {!emit}'s, so the streamed accesses equal the in-memory
    trace's access-for-access given the same arguments. *)

val emit :
  ?perturb:bool ->
  ?base:int ->
  ?stride:int ->
  ?write_ratio:float ->
  ?accesses_per_request:int ->
  ?var:string ->
  seed:int ->
  n:int ->
  stream ->
  trace
(** [emit ~seed ~n stream] samples [n] accesses. Rank [k] maps to address
    [base + k * stride] (defaults: base 0, stride 16); each access is a
    write with probability [write_ratio] (default 0.25) and carries a small
    random instruction gap. Requests are consecutive
    [accesses_per_request]-sized windows (default 1).

    [perturb] enables the fault-injection mutation used by
    [--inject-bug gen]: Zipf ranks are shifted by one without re-clamping,
    so the top rank escapes [\[base, limit)]. *)

val kv :
  ?perturb:bool ->
  ?base:int ->
  ?theta:float ->
  seed:int ->
  requests:int ->
  keys:int ->
  buckets:int ->
  value_lines:int ->
  unit ->
  trace
(** Synthetic KV store: [buckets] 8-byte chain heads, one 16-byte chain
    entry per key, and a [value_lines] * 16-byte value per key, laid out
    consecutively from [base]. One request = read the key's bucket head,
    walk the chain to the key's entry, then walk the value lines (the last
    line is a write for ~30% of requests). Keys are drawn
    Zipf([theta]) (default 0.99); bucket assignment is salted by [seed].
    Accesses are tagged ["kv_heads"], ["kv_entries"], ["kv_values"]. *)

val out_of_range : trace -> int option
(** Index of the first access outside [\[base, limit)], if any — the
    containment check the differential soak runs on generator-backed
    scenarios. *)

val pp_stream : Format.formatter -> stream -> unit
