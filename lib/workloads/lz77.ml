module Trace = Memtrace.Trace
module Access = Memtrace.Access

type token =
  | Literal of char
  | Match of { distance : int; length : int }

type result = {
  trace : Trace.t;
  tokens : token list;
  input : string;
}

let window_size = 8192
let hash_entries = 1024
let min_match = 3
let max_match = 32
let max_chain = 16
let max_compare = 16

(* Job-relative offsets of the data structures; page-aligned and disjoint. *)
let inbuf_off = 0x0000 (* up to 16 KiB of input *)
let window_off = 0x4000 (* window_size bytes *)
let head_off = 0x6000 (* hash_entries x 2 bytes *)
let prev_off = 0x6800 (* window_size x 2 bytes *)
let outbuf_off = 0xA800

let footprint_bytes =
  window_size (* window *) + (hash_entries * 2) + (window_size * 2)
  + 0x4000 (* inbuf *) + 0x2000 (* outbuf, nominal *)

let synthetic_input ~seed ~len =
  let vocabulary =
    [|
      "the"; "quick"; "embedded"; "cache"; "column"; "memory"; "stream";
      "buffer"; "packet"; "filter"; "signal"; "frame"; "block"; "processor";
    |]
  in
  let state = ref (Int64.of_int (if seed = 0 then 1 else seed)) in
  let next () =
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    Int64.to_int (Int64.logand x 0x3FFFFFFFL)
  in
  let buf = Buffer.create len in
  while Buffer.length buf < len do
    let word = vocabulary.(next () mod Array.length vocabulary) in
    Buffer.add_string buf word;
    (* occasional repetition of a recent phrase boosts match rates *)
    if next () mod 4 = 0 then Buffer.add_string buf word;
    Buffer.add_char buf ' '
  done;
  String.sub (Buffer.contents buf) 0 len

let hash3 s pos =
  let b i = Char.code s.[pos + i] in
  (b 0 lsl 6) lxor (b 1 lsl 3) lxor b 2 land (hash_entries - 1)

(* The compressor core is generic over the access sink, so the same code
   emits either boxed traces ([compress]) or packed columns
   ([packed_trace]) with no duplication. *)
let compress_core
    ~(emit : ?kind:Access.kind -> ?gap:int -> var:string -> int -> unit)
    ~input =
  let len = String.length input in
  if len > 0x4000 then invalid_arg "Lz77.compress: input exceeds 16 KiB buffer";
  let read_in pos = emit ~var:"inbuf" (inbuf_off + pos) in
  let read_window p = emit ~var:"window" (window_off + (p mod window_size)) in
  let write_window p =
    emit ~kind:Access.Write ~var:"window" (window_off + (p mod window_size))
  in
  let read_head h = emit ~var:"hash_head" (head_off + (h * 2)) in
  let write_head h = emit ~kind:Access.Write ~var:"hash_head" (head_off + (h * 2)) in
  let read_prev p = emit ~var:"hash_prev" (prev_off + (p mod window_size * 2)) in
  let write_prev p =
    emit ~kind:Access.Write ~var:"hash_prev" (prev_off + (p mod window_size * 2))
  in
  let write_out pos = emit ~kind:Access.Write ~var:"outbuf" (outbuf_off + pos) in
  (* head.(h) = most recent position + 1 with that hash; prev chains
     positions within the window. *)
  let head = Array.make hash_entries 0 in
  let prev = Array.make window_size 0 in
  let tokens = ref [] in
  let outpos = ref 0 in
  let insert pos =
    if pos + min_match <= len then begin
      let h = hash3 input pos in
      read_in pos;
      read_head h;
      prev.(pos mod window_size) <- head.(h);
      write_prev pos;
      head.(h) <- pos + 1;
      write_head h;
      write_window pos
    end
    else write_window pos
  in
  let match_length cand pos =
    let limit = min max_compare (min max_match (len - pos)) in
    let rec loop i =
      if i >= limit || pos + i >= len then i
      else begin
        read_window (cand + i);
        read_in (pos + i);
        if input.[cand + i] = input.[pos + i] then loop (i + 1) else i
      end
    in
    (* the encoder never compares past [pos] into unwritten window bytes *)
    let avail = min limit (pos - cand) in
    let rec capped i =
      if i >= avail then i
      else begin
        read_window (cand + i);
        read_in (pos + i);
        if input.[cand + i] = input.[pos + i] then capped (i + 1) else i
      end
    in
    if avail < limit then capped 0 else loop 0
  in
  let find_match pos =
    if pos + min_match > len then None
    else begin
      let h = hash3 input pos in
      read_in pos;
      read_head h;
      let rec walk cand chain best =
        if cand = 0 || chain >= max_chain then best
        else
          let cpos = cand - 1 in
          if cpos >= pos || pos - cpos > window_size then best
          else begin
            let l = match_length cpos pos in
            let best =
              match best with
              | Some (_, bl) when bl >= l -> best
              | _ when l >= min_match -> Some (cpos, l)
              | _ -> best
            in
            read_prev cpos;
            walk prev.(cpos mod window_size) (chain + 1) best
          end
      in
      walk head.(h) 0 None
    end
  in
  let rec step pos =
    if pos < len then begin
      match find_match pos with
      | Some (cand, l) ->
          tokens := Match { distance = pos - cand; length = l } :: !tokens;
          write_out !outpos;
          outpos := !outpos + 3;
          for p = pos to pos + l - 1 do
            insert p
          done;
          step (pos + l)
      | None ->
          read_in pos;
          tokens := Literal input.[pos] :: !tokens;
          write_out !outpos;
          incr outpos;
          insert pos;
          step (pos + 1)
    end
  in
  step 0;
  List.rev !tokens

let compress ?(base = 0) ~input () =
  let b = Memtrace.Packed.Builder.create ~initial_capacity:(64 * 1024) () in
  let emit ?(kind = Access.Read) ?(gap = 2) ~var off =
    Memtrace.Packed.Builder.emit b ~kind ~var ~gap (base + off)
  in
  let tokens = compress_core ~emit ~input in
  { trace = Memtrace.Packed.to_trace (Memtrace.Packed.Builder.build b);
    tokens; input }

let packed_trace ?(seed = 1) ?(input_len = 16384) ~base () =
  let input_len = min input_len 0x4000 in
  let input = synthetic_input ~seed ~len:input_len in
  let b = Memtrace.Packed.Builder.create ~initial_capacity:(64 * 1024) () in
  let emit ?(kind = Access.Read) ?(gap = 2) ~var off =
    Memtrace.Packed.Builder.emit b ~kind ~var ~gap (base + off)
  in
  ignore (compress_core ~emit ~input);
  Memtrace.Packed.Builder.build b

let trace ?(seed = 1) ?(input_len = 16384) ~base () =
  let input_len = min input_len 0x4000 in
  (compress ~base ~input:(synthetic_input ~seed ~len:input_len) ()).trace

let decompress tokens =
  let buf = Buffer.create 4096 in
  List.iter
    (fun token ->
      match token with
      | Literal c -> Buffer.add_char buf c
      | Match { distance; length } ->
          let start = Buffer.length buf - distance in
          if start < 0 then invalid_arg "Lz77.decompress: bad distance";
          for i = 0 to length - 1 do
            Buffer.add_char buf (Buffer.nth buf (start + i))
          done)
    tokens;
  Buffer.contents buf
