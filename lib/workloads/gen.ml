module Access = Memtrace.Access
module Packed = Memtrace.Packed

type stream =
  | Uniform of { items : int }
  | Scan of { items : int }
  | Zipf of { items : int; theta : float }
  | Hot_set of {
      items : int;
      hot_items : int;
      hot_prob : float;
      drift_every : int;
    }
  | Phased of (int * stream) list

let rec items = function
  | Uniform { items } | Scan { items } | Zipf { items; _ }
  | Hot_set { items; _ } ->
      items
  | Phased phases ->
      List.fold_left (fun acc (_, s) -> max acc (items s)) 0 phases

let rec validate = function
  | Uniform { items } | Scan { items } ->
      if items < 1 then invalid_arg "Gen: items must be >= 1"
  | Zipf { items; theta } ->
      if items < 1 then invalid_arg "Gen: items must be >= 1";
      if not (theta >= 0.) then invalid_arg "Gen: theta must be >= 0"
  | Hot_set { items; hot_items; hot_prob; drift_every } ->
      if items < 1 then invalid_arg "Gen: items must be >= 1";
      if hot_items < 1 || hot_items > items then
        invalid_arg "Gen: hot_items must lie in 1..items";
      if not (hot_prob >= 0. && hot_prob <= 1.) then
        invalid_arg "Gen: hot_prob must lie in [0, 1]";
      if drift_every < 1 then invalid_arg "Gen: drift_every must be >= 1"
  | Phased phases ->
      if phases = [] then invalid_arg "Gen: Phased needs at least one phase";
      List.iter
        (fun (len, s) ->
          if len < 1 then invalid_arg "Gen: phase length must be >= 1";
          validate s)
        phases

(* Zipf CDF over ranks 0..items-1: cdf.(k) = H_{k+1}(theta) / H_items(theta).
   Sampling is one uniform double and a binary search for the first bucket
   whose cumulative mass covers it — exact, and deterministic given the
   splitmix64 stream. *)
let zipf_cdf ~item_count ~theta =
  let cdf = Array.make item_count 0. in
  let acc = ref 0. in
  for k = 0 to item_count - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (k + 1)) theta);
    cdf.(k) <- !acc
  done;
  let h = !acc in
  Array.map (fun c -> c /. h) cdf

let zipf_search cdf u =
  let n = Array.length cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

(* One sampler = one closure over the generator's mutable position state.
   [perturb] is the harness's mutation hook: it offsets every Zipf rank by
   one WITHOUT re-clamping, so the top rank escapes the declared item range
   — the address-containment contract the soak checks then fails. *)
let rec sampler rng ~perturb stream =
  match stream with
  | Uniform { items } -> fun () -> Prng.int rng items
  | Scan { items } ->
      let pos = ref (-1) in
      fun () ->
        pos := (!pos + 1) mod items;
        !pos
  | Zipf { items; theta } ->
      let cdf = zipf_cdf ~item_count:items ~theta in
      fun () ->
        let k = zipf_search cdf (Prng.float rng) in
        if perturb then k + 1 else k
  | Hot_set { items; hot_items; hot_prob; drift_every } ->
      let count = ref 0 in
      let start = ref 0 in
      fun () ->
        if !count > 0 && !count mod drift_every = 0 then
          start := (!start + hot_items) mod items;
        incr count;
        if Prng.chance rng hot_prob then
          (!start + Prng.int rng hot_items) mod items
        else Prng.int rng items
  | Phased phases ->
      let arr =
        Array.of_list
          (List.map (fun (len, s) -> (len, sampler rng ~perturb s)) phases)
      in
      let phase = ref 0 in
      let in_phase = ref 0 in
      fun () ->
        if !in_phase >= fst arr.(!phase) then begin
          phase := (!phase + 1) mod Array.length arr;
          in_phase := 0
        end;
        incr in_phase;
        (snd arr.(!phase)) ()

type trace = {
  packed : Packed.t;
  requests : (int * int) array;
  base : int;
  limit : int;
}

let check_layout ~base ~stride =
  if base < 0 then invalid_arg "Gen: base must be >= 0";
  if stride < 1 then invalid_arg "Gen: stride must be >= 1"

(* The access stream itself, decoupled from where it lands: [emit] collects
   it into a builder, the CLI's synth path streams it straight into a
   {!Packed.Writer} so traces far larger than RAM never materialize. Both
   consume the PRNG identically — per access one rank sample, one
   write-ratio draw, one gap draw — so a streamed file and an in-memory
   trace from the same seed are access-for-access equal. *)
let iter_accesses ?(perturb = false) ?(base = 0) ?(stride = 16)
    ?(write_ratio = 0.25) ~seed ~n stream f =
  validate stream;
  check_layout ~base ~stride;
  if n < 0 then invalid_arg "Gen: n must be >= 0";
  if not (write_ratio >= 0. && write_ratio <= 1.) then
    invalid_arg "Gen: write_ratio must lie in [0, 1]";
  let rng = Prng.create ~seed in
  let sample = sampler rng ~perturb stream in
  for _ = 1 to n do
    let item = sample () in
    let kind = if Prng.chance rng write_ratio then Access.Write else Access.Read in
    let gap = Prng.int rng 4 in
    f ~kind ~gap (base + (item * stride))
  done

let emit ?perturb ?(base = 0) ?(stride = 16) ?write_ratio
    ?(accesses_per_request = 1) ?var ~seed ~n stream =
  if accesses_per_request < 1 then
    invalid_arg "Gen.emit: accesses_per_request must be >= 1";
  let b = Packed.Builder.create ~initial_capacity:(max 16 n) () in
  iter_accesses ?perturb ~base ~stride ?write_ratio ~seed ~n stream
    (fun ~kind ~gap addr -> Packed.Builder.emit b ~kind ?var ~gap addr);
  let apr = accesses_per_request in
  let n_requests = (n + apr - 1) / apr in
  let requests =
    Array.init n_requests (fun k -> (k * apr, min n ((k + 1) * apr)))
  in
  { packed = Packed.Builder.build b; requests; base;
    limit = base + (items stream * stride) }

(* Synthetic KV store: [buckets] chain heads, [keys] chain nodes, and a
   [value_lines]-line value per key. One request = read the head of the
   key's bucket, walk the chain up to the key's node, then walk the value
   sequentially (the last line is a write for an "update" fraction of
   requests). Keys are drawn Zipf(theta); the bucket assignment is salted by
   the seed so chain shapes vary between seeds but never within one. *)
let kv ?(perturb = false) ?(base = 0) ?(theta = 0.99) ~seed ~requests:n_req
    ~keys ~buckets ~value_lines () =
  if keys < 1 then invalid_arg "Gen.kv: keys must be >= 1";
  if buckets < 1 then invalid_arg "Gen.kv: buckets must be >= 1";
  if value_lines < 1 then invalid_arg "Gen.kv: value_lines must be >= 1";
  if n_req < 0 then invalid_arg "Gen.kv: requests must be >= 0";
  if base < 0 then invalid_arg "Gen.kv: base must be >= 0";
  let heads_base = base in
  let entries_base = heads_base + (buckets * 8) in
  let values_base = entries_base + (keys * 16) in
  let limit = values_base + (keys * value_lines * 16) in
  let rng = Prng.create ~seed in
  let salt = Prng.int rng 1_000_000 in
  let bucket_of =
    Array.init keys (fun k -> Hashtbl.hash (salt, k) mod buckets)
  in
  (* chain position of each key within its bucket, in key order *)
  let chain_len = Array.make buckets 0 in
  let chain_pos =
    Array.init keys (fun k ->
        let b = bucket_of.(k) in
        let p = chain_len.(b) in
        chain_len.(b) <- p + 1;
        p)
  in
  (* chain.(b) lists the keys of bucket b in chain order *)
  let chain = Array.map (fun len -> Array.make len 0) chain_len in
  Array.iteri (fun k p -> chain.(bucket_of.(k)).(p) <- k) chain_pos;
  let key_sampler = sampler rng ~perturb (Zipf { items = keys; theta }) in
  let b = Packed.Builder.create ~initial_capacity:(max 16 (n_req * 4)) () in
  let requests = Array.make n_req (0, 0) in
  for r = 0 to n_req - 1 do
    let start = Packed.Builder.length b in
    let k = key_sampler () in
    if k >= keys then
      (* perturbed escape: a probe of a key slot that does not exist — one
         access past the declared range, the containment violation the
         harness must catch *)
      Packed.Builder.emit b ~var:"kv_entries" ~gap:(Prng.int rng 2)
        (entries_base + (k * 16))
    else begin
      let bucket = bucket_of.(k) in
      Packed.Builder.emit b ~var:"kv_heads" ~gap:(Prng.int rng 2)
        (heads_base + (bucket * 8));
      for p = 0 to chain_pos.(k) do
        Packed.Builder.emit b ~var:"kv_entries" ~gap:(Prng.int rng 2)
          (entries_base + (chain.(bucket).(p) * 16))
      done;
      let update = Prng.chance rng 0.3 in
      for v = 0 to value_lines - 1 do
        let kind =
          if update && v = value_lines - 1 then Access.Write else Access.Read
        in
        Packed.Builder.emit b ~kind ~var:"kv_values" ~gap:(Prng.int rng 2)
          (values_base + ((k * value_lines) + v) * 16)
      done
    end;
    requests.(r) <- (start, Packed.Builder.length b)
  done;
  { packed = Packed.Builder.build b; requests; base; limit }

let out_of_range t =
  let n = Packed.length t.packed in
  let addrs = Packed.raw_addrs t.packed in
  let rec go i =
    if i >= n then None
    else
      let a = Bigarray.Array1.unsafe_get addrs i in
      if a < t.base || a >= t.limit then Some i else go (i + 1)
  in
  go 0

let pp_stream ppf s =
  let rec go ppf = function
    | Uniform { items } -> Format.fprintf ppf "uniform(%d)" items
    | Scan { items } -> Format.fprintf ppf "scan(%d)" items
    | Zipf { items; theta } ->
        Format.fprintf ppf "zipf(%d, theta=%.2f)" items theta
    | Hot_set { items; hot_items; hot_prob; drift_every } ->
        Format.fprintf ppf "hotset(%d, hot=%d@@%.2f, drift=%d)" items
          hot_items hot_prob drift_every
    | Phased phases ->
        Format.fprintf ppf "phased[%a]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
             (fun ppf (len, s) -> Format.fprintf ppf "%d:%a" len go s))
          phases
  in
  go ppf s
