(** An instrumented LZ77 compressor: the stand-in for the paper's gzip jobs
    (Section 4.2).

    This is a real hash-chain LZ77 (the core of deflate) running over
    synthetic compressible text; every data-structure touch is emitted as a
    tagged memory access, so its trace exhibits gzip's characteristic mix —
    streaming reads of the input, a hot sliding window, and scattered
    hash-head/chain probes. The per-job footprint (window + hash tables +
    buffers, ~37 KB with defaults) comfortably exceeds a 16 KB cache, which
    is what makes three concurrent jobs thrash it.

    Compression itself is checked by tests: {!compress} returns the token
    stream along with the trace, and {!decompress} must reconstruct the
    input exactly. *)

type token =
  | Literal of char
  | Match of { distance : int; length : int }

type result = {
  trace : Memtrace.Trace.t;
  tokens : token list;
  input : string;
}

val window_size : int
(** 4096 bytes of sliding window. *)

val hash_entries : int
(** 1024 hash-chain heads. *)

val footprint_bytes : int
(** Total bytes of all data structures (window, hash head, hash prev,
    in/out buffers). *)

val synthetic_input : seed:int -> len:int -> string
(** Deterministic text with repeated phrases, so matches actually occur. *)

val compress : ?base:int -> input:string -> unit -> result
(** Run the compressor, emitting the trace with addresses offset by [base]
    (distinct jobs use distinct bases so a shared cache sees them as
    different address spaces). *)

val trace : ?seed:int -> ?input_len:int -> base:int -> unit -> Memtrace.Trace.t
(** [compress] over a {!synthetic_input}; trace only. Default input length
    16 KiB. *)

val packed_trace :
  ?seed:int -> ?input_len:int -> base:int -> unit -> Memtrace.Packed.t
(** {!trace} in columnar form: the compressor emits straight into packed
    columns, with no boxed [Access.t] built along the way — feed it to
    {!Machine.System.run_packed}. *)

val decompress : token list -> string
