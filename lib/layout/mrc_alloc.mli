(** MRC-driven column allocation.

    An alternative to interference-graph coloring that consumes the
    per-variable miss-ratio curves a single stack-distance pass produces
    ({!Cache.Stack_dist.per_tag_of_packed}): when a variable owns [c]
    columns, its group is an isolated [c]-way LRU cache with the full set
    count, so its miss count under that allocation is read directly off its
    curve — no replay, no interference estimate. The allocator is the
    classic greedy marginal-gain loop over the exact curves: give every
    variable one column, then hand out the remaining columns one at a time
    to whichever variable's next column removes the most misses. *)

val allocate : columns:int -> (string * int array) list -> (string * int) list
(** [allocate ~columns curves] distributes [columns] cache columns over the
    named miss curves ([curve.(c)] = misses with [c] dedicated columns, as
    {!Cache.Stack_dist.miss_curve}; curves may be shorter than [columns + 1]
    — allocations are never grown past a curve's last index, where the
    marginal gain is zero). Every name receives at least one column; ties go
    to the earlier name. The result is in input order and its counts sum to
    [columns] (when every curve has room) or to at most [columns].

    Raises [Invalid_argument] when there are more names than columns, no
    names at all, or a curve with fewer than two points. *)

val allocate_float :
  columns:int -> (string * float array) list -> (string * int) list
(** {!allocate} over estimated (float) miss curves, as
    {!Cache.Stack_dist.Sampled.miss_curve_est} produces — the sampled MRC
    pipeline allocates columns from curves it never measured exactly. The
    greedy loop, tie-breaks and error conditions are identical; [allocate]
    is this function after an exact int-to-float conversion, so both agree
    bit-for-bit on exact curves. *)

val predicted_misses : (string * int array) list -> (string * int) list -> int
(** Total misses the curves predict for an allocation: the sum of
    [curve.(c)] per name (clamped to the curve's last point). Exact for the
    machine, not just a model, whenever the allocation's column groups are
    disjoint — which {!to_masks} guarantees. *)

val predicted_misses_float :
  (string * float array) list -> (string * int) list -> float
(** {!predicted_misses} over estimated curves: the estimated total. *)

(** {2 Incremental allocation from sliding windows}

    The online-controller entry point: one {!Cache.Stack_dist.Windowed}
    engine per tenant accumulates a rolling miss curve as accesses stream
    in, and re-allocation reads the current curves in O(tenants × max_ways)
    — no trace is kept and nothing is re-swept. Repeated [allocate_now]
    calls reuse all engine state, so reacting to a phase change costs only
    the accesses observed since the last call. *)
module Incremental : sig
  type t

  val create :
    ?translate:(int -> int) ->
    window:int ->
    epochs:int ->
    line_size:int ->
    sets:int ->
    max_ways:int ->
    columns:int ->
    string list ->
    t
  (** One windowed engine per named tenant, each with the given geometry
      ([max_ways] bounds the columns a single tenant's curve can resolve;
      window parameters as {!Cache.Stack_dist.Windowed.create}).
      [columns] is the total column budget later splits hand out. Raises
      [Invalid_argument] on an empty or duplicated tenant list, more
      tenants than [columns], or bad window/geometry parameters. *)

  val observe : t -> tenant:string -> kind:Memtrace.Access.kind -> int -> unit
  (** Feed one access to a tenant's window. O(1) amortized. Raises
      [Invalid_argument] for an unknown tenant. *)

  val observe_packed : t -> tenant:string -> Memtrace.Packed.t -> unit
  (** Feed a packed trace (or a {!Memtrace.Packed.sub} chunk of one) to a
      tenant's window. *)

  val curves_now : t -> (string * float array) list
  (** The tenants' current windowed miss curves (absolute counts, as
      floats), in creation order — exactly what {!allocate_float}
      consumes. Absolute counts, not ratios: the greedy gain comparison
      must weight tenants by traffic. *)

  val allocate_now : t -> (string * int) list
  (** [allocate_float ~columns (curves_now t)]: the current best split of
      the column budget. Realize with {!to_masks}; call again after more
      [observe]s to track phase changes. *)

  val accesses_in_window : t -> tenant:string -> int
  (** {!Cache.Stack_dist.Windowed.accesses_in_window} for one tenant. *)

  val retired_epochs : t -> tenant:string -> int
  (** {!Cache.Stack_dist.Windowed.retired_epochs} for one tenant. *)
end

val to_masks : (string * int) list -> (string * Cache.Bitmask.t) list
(** Realize an allocation as disjoint column masks, assigned contiguously in
    list order: the first name gets columns [0..c0-1], the next
    [c0..c0+c1-1], and so on. *)
