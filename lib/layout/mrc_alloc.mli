(** MRC-driven column allocation.

    An alternative to interference-graph coloring that consumes the
    per-variable miss-ratio curves a single stack-distance pass produces
    ({!Cache.Stack_dist.per_tag_of_packed}): when a variable owns [c]
    columns, its group is an isolated [c]-way LRU cache with the full set
    count, so its miss count under that allocation is read directly off its
    curve — no replay, no interference estimate. The allocator is the
    classic greedy marginal-gain loop over the exact curves: give every
    variable one column, then hand out the remaining columns one at a time
    to whichever variable's next column removes the most misses. *)

val allocate : columns:int -> (string * int array) list -> (string * int) list
(** [allocate ~columns curves] distributes [columns] cache columns over the
    named miss curves ([curve.(c)] = misses with [c] dedicated columns, as
    {!Cache.Stack_dist.miss_curve}; curves may be shorter than [columns + 1]
    — allocations are never grown past a curve's last index, where the
    marginal gain is zero). Every name receives at least one column; ties go
    to the earlier name. The result is in input order and its counts sum to
    [columns] (when every curve has room) or to at most [columns].

    Raises [Invalid_argument] when there are more names than columns, no
    names at all, or a curve with fewer than two points. *)

val allocate_float :
  columns:int -> (string * float array) list -> (string * int) list
(** {!allocate} over estimated (float) miss curves, as
    {!Cache.Stack_dist.Sampled.miss_curve_est} produces — the sampled MRC
    pipeline allocates columns from curves it never measured exactly. The
    greedy loop, tie-breaks and error conditions are identical; [allocate]
    is this function after an exact int-to-float conversion, so both agree
    bit-for-bit on exact curves. *)

val predicted_misses : (string * int array) list -> (string * int) list -> int
(** Total misses the curves predict for an allocation: the sum of
    [curve.(c)] per name (clamped to the curve's last point). Exact for the
    machine, not just a model, whenever the allocation's column groups are
    disjoint — which {!to_masks} guarantees. *)

val predicted_misses_float :
  (string * float array) list -> (string * int) list -> float
(** {!predicted_misses} over estimated curves: the estimated total. *)

val to_masks : (string * int) list -> (string * Cache.Bitmask.t) list
(** Realize an allocation as disjoint column masks, assigned contiguously in
    list order: the first name gets columns [0..c0-1], the next
    [c0..c0+c1-1], and so on. *)
