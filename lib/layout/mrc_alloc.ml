(* The greedy loop works on float curves; exact int curves are converted on
   the way in (miss counts are far below 2^53, so the conversion — and every
   gain comparison — is exact, preserving tie-breaks). *)
let allocate_float ~columns curves =
  let n = List.length curves in
  if n = 0 then invalid_arg "Mrc_alloc.allocate: no curves";
  if n > columns then
    invalid_arg "Mrc_alloc.allocate: more variables than columns";
  List.iter
    (fun (name, curve) ->
      if Array.length curve < 2 then
        invalid_arg
          (Printf.sprintf "Mrc_alloc.allocate: curve for %s has no points"
             name))
    curves;
  let curves_a = Array.of_list curves in
  let counts = Array.make n 1 in
  (* Marginal misses removed by this variable's next column; zero once the
     curve runs out (more columns than its curve covers cannot help). *)
  let gain i =
    let _, curve = curves_a.(i) in
    let c = counts.(i) in
    if c + 1 >= Array.length curve then 0. else curve.(c) -. curve.(c + 1)
  in
  let has_room i =
    counts.(i) + 1 < Array.length (snd curves_a.(i))
  in
  for _ = n + 1 to columns do
    let best = ref 0 in
    for i = 1 to n - 1 do
      if gain i > gain !best then best := i
    done;
    if gain !best > 0. then counts.(!best) <- counts.(!best) + 1
    else begin
      (* Plateau: no next column removes misses by itself, but growing a
         curve that still has points may unlock gains for later columns
         (miss curves need not be convex). *)
      let rec first i =
        if i >= n then ()
        else if has_room i then counts.(i) <- counts.(i) + 1
        else first (i + 1)
      in
      first 0
    end
  done;
  List.mapi (fun i (name, _) -> (name, counts.(i))) curves

let allocate ~columns curves =
  allocate_float ~columns
    (List.map
       (fun (name, curve) -> (name, Array.map float_of_int curve))
       curves)

let predicted_misses_float curves alloc =
  List.fold_left
    (fun acc (name, c) ->
      match List.assoc_opt name curves with
      | None -> invalid_arg "Mrc_alloc.predicted_misses: unknown name"
      | Some curve ->
          acc +. curve.(min c (Array.length curve - 1)))
    0. alloc

let predicted_misses curves alloc =
  List.fold_left
    (fun acc (name, c) ->
      match List.assoc_opt name curves with
      | None -> invalid_arg "Mrc_alloc.predicted_misses: unknown name"
      | Some curve ->
          acc + curve.(min c (Array.length curve - 1)))
    0 alloc

let to_masks alloc =
  let next = ref 0 in
  List.map
    (fun (name, c) ->
      let lo = !next in
      next := lo + c;
      ( name,
        if c = 0 then Cache.Bitmask.empty
        else Cache.Bitmask.range ~lo ~hi:(lo + c - 1) ))
    alloc
