(* The greedy loop works on float curves; exact int curves are converted on
   the way in (miss counts are far below 2^53, so the conversion — and every
   gain comparison — is exact, preserving tie-breaks). *)
let allocate_float ~columns curves =
  let n = List.length curves in
  if n = 0 then invalid_arg "Mrc_alloc.allocate: no curves";
  if n > columns then
    invalid_arg "Mrc_alloc.allocate: more variables than columns";
  List.iter
    (fun (name, curve) ->
      if Array.length curve < 2 then
        invalid_arg
          (Printf.sprintf "Mrc_alloc.allocate: curve for %s has no points"
             name))
    curves;
  let curves_a = Array.of_list curves in
  let counts = Array.make n 1 in
  (* Marginal misses removed by this variable's next column; zero once the
     curve runs out (more columns than its curve covers cannot help). *)
  let gain i =
    let _, curve = curves_a.(i) in
    let c = counts.(i) in
    if c + 1 >= Array.length curve then 0. else curve.(c) -. curve.(c + 1)
  in
  let has_room i =
    counts.(i) + 1 < Array.length (snd curves_a.(i))
  in
  for _ = n + 1 to columns do
    let best = ref 0 in
    for i = 1 to n - 1 do
      if gain i > gain !best then best := i
    done;
    if gain !best > 0. then counts.(!best) <- counts.(!best) + 1
    else begin
      (* Plateau: no next column removes misses by itself, but growing a
         curve that still has points may unlock gains for later columns
         (miss curves need not be convex). *)
      let rec first i =
        if i >= n then ()
        else if has_room i then counts.(i) <- counts.(i) + 1
        else first (i + 1)
      in
      first 0
    end
  done;
  List.mapi (fun i (name, _) -> (name, counts.(i))) curves

let allocate ~columns curves =
  allocate_float ~columns
    (List.map
       (fun (name, curve) -> (name, Array.map float_of_int curve))
       curves)

let predicted_misses_float curves alloc =
  List.fold_left
    (fun acc (name, c) ->
      match List.assoc_opt name curves with
      | None -> invalid_arg "Mrc_alloc.predicted_misses: unknown name"
      | Some curve ->
          acc +. curve.(min c (Array.length curve - 1)))
    0. alloc

let predicted_misses curves alloc =
  List.fold_left
    (fun acc (name, c) ->
      match List.assoc_opt name curves with
      | None -> invalid_arg "Mrc_alloc.predicted_misses: unknown name"
      | Some curve ->
          acc + curve.(min c (Array.length curve - 1)))
    0 alloc

module Incremental = struct
  type t = {
    tenants : (string * Cache.Stack_dist.Windowed.t) list;
    columns : int;
  }

  let create ?translate ~window ~epochs ~line_size ~sets ~max_ways ~columns
      tenants =
    (let n = List.length tenants in
     if n = 0 then invalid_arg "Mrc_alloc.Incremental.create: no tenants";
     if n > columns then
       invalid_arg "Mrc_alloc.Incremental.create: more tenants than columns");
    let seen = Hashtbl.create 16 in
    List.iter
      (fun name ->
        if Hashtbl.mem seen name then
          invalid_arg
            (Printf.sprintf
               "Mrc_alloc.Incremental.create: duplicate tenant %s" name);
        Hashtbl.add seen name ())
      tenants;
    {
      tenants =
        List.map
          (fun name ->
            ( name,
              Cache.Stack_dist.Windowed.create ?translate ~window ~epochs
                ~line_size ~sets ~max_ways () ))
          tenants;
      columns;
    }

  let engine t tenant =
    match List.assoc_opt tenant t.tenants with
    | Some w -> w
    | None ->
        invalid_arg
          (Printf.sprintf "Mrc_alloc.Incremental: unknown tenant %s" tenant)

  let observe t ~tenant ~kind addr =
    Cache.Stack_dist.Windowed.observe (engine t tenant) ~kind addr

  let observe_packed t ~tenant packed =
    Cache.Stack_dist.Windowed.observe_packed (engine t tenant) packed

  (* Absolute windowed miss counts, not ratios: the greedy allocator must
     weight tenants by their traffic, and a busy tenant's marginal column
     removes more misses than an idle one's at the same miss ratio. *)
  let curves_now t =
    List.map
      (fun (name, w) ->
        ( name,
          Array.map float_of_int
            (Cache.Stack_dist.Windowed.miss_curve_now w) ))
      t.tenants

  let allocate_now t = allocate_float ~columns:t.columns (curves_now t)

  let accesses_in_window t ~tenant =
    Cache.Stack_dist.Windowed.accesses_in_window (engine t tenant)

  let retired_epochs t ~tenant =
    Cache.Stack_dist.Windowed.retired_epochs (engine t tenant)
end

let to_masks alloc =
  let next = ref 0 in
  List.map
    (fun (name, c) ->
      let lo = !next in
      next := lo + c;
      ( name,
        if c = 0 then Cache.Bitmask.empty
        else Cache.Bitmask.range ~lo ~hi:(lo + c - 1) ))
    alloc
