type objective = Min_max | Weighted_sum of (string * float) list

let check_input ~columns curves =
  let n = List.length curves in
  if n = 0 then invalid_arg "Wcet_alloc.allocate: no curves";
  if n > columns then invalid_arg "Wcet_alloc.allocate: more tasks than columns";
  List.iter
    (fun (name, curve) ->
      if Array.length curve < 2 then
        invalid_arg
          (Printf.sprintf "Wcet_alloc.allocate: curve for %s has no points"
             name))
    curves

let clamped curve c = curve.(min c (Array.length curve - 1))

(* Minimize the largest per-task bound. Bound curves need not be convex
   — a task can plateau for several columns before a big drop (working
   set crosses a ways threshold) — so one-column-at-a-time greedy gets
   stuck. Instead, search the objective directly: every achievable max
   bound is some curve value, so scan candidate values ascending and
   take the smallest one whose per-task column demands fit. Spare
   columns then shrink the remaining bounds by marginal gain with
   plateau lookahead. *)
let allocate_min_max ~columns curves =
  let curves_a = Array.of_list (List.map snd curves) in
  let n = Array.length curves_a in
  let len i = Array.length curves_a.(i) in
  let value i c = clamped curves_a.(i) c in
  (* Fewest columns putting task [i] at or under [b], if any count does. *)
  let need i b =
    let rec go c =
      if c >= len i then None
      else if curves_a.(i).(c) <= b then Some c
      else go (c + 1)
    in
    go 1
  in
  let feasible b =
    let rec sum i acc =
      if i = n then acc <= columns
      else match need i b with None -> false | Some c -> sum (i + 1) (acc + c)
    in
    sum 0 0
  in
  let candidates =
    Array.to_list curves_a
    |> List.concat_map (fun curve ->
           List.filter Float.is_finite (List.tl (Array.to_list curve)))
    |> List.sort_uniq Float.compare
  in
  let counts = Array.make n 1 in
  (match List.find_opt feasible candidates with
  | Some b -> Array.iteri (fun i _ -> counts.(i) <- Option.get (need i b)) counts
  | None -> () (* some curve never goes finite: everyone starts at 1 *));
  (* Spend what's left on the steepest available descent, looking across
     plateaus: candidate (task, k) pairs are scored by gain per column. *)
  let spare = ref (columns - Array.fold_left ( + ) 0 counts) in
  let improved = ref true in
  while !improved && !spare > 0 do
    improved := false;
    let best = ref None in
    for i = 0 to n - 1 do
      let here = value i counts.(i) in
      for k = 1 to min !spare (len i - 1 - counts.(i)) do
        let v = value i (counts.(i) + k) in
        if v < here then begin
          let score = (here -. v) /. float_of_int k in
          match !best with
          | Some (_, _, s) when s >= score -> ()
          | _ -> best := Some (i, k, score)
        end
      done
    done;
    match !best with
    | Some (i, k, _) ->
        counts.(i) <- counts.(i) + k;
        spare := !spare - k;
        improved := true
    | None -> ()
  done;
  List.mapi (fun i (name, _) -> (name, counts.(i))) curves

let allocate ?(objective = Min_max) ~columns curves =
  check_input ~columns curves;
  match objective with
  | Min_max -> allocate_min_max ~columns curves
  | Weighted_sum weights ->
      (* Marginal-gain greedy over weighted curves is exactly
         {!Mrc_alloc}'s rule; infinities need a finite stand-in for its
         subtractions, far above any real bound so the ordering is
         preserved. *)
      let huge = 1e18 in
      let scaled =
        List.map
          (fun (name, curve) ->
            let w =
              match List.assoc_opt name weights with Some w -> w | None -> 1.
            in
            ( name,
              Array.map
                (fun b -> if Float.is_finite b then w *. b else w *. huge)
                curve ))
          curves
      in
      Mrc_alloc.allocate_float ~columns scaled

let bound_of curves alloc name =
  match (List.assoc_opt name curves, List.assoc_opt name alloc) with
  | Some curve, Some c -> clamped curve c
  | _ -> invalid_arg "Wcet_alloc.bound_of: unknown name"

let max_bound curves alloc =
  List.fold_left
    (fun acc (name, _) -> Float.max acc (bound_of curves alloc name))
    neg_infinity alloc

let total_bound ?(weights = []) curves alloc =
  List.fold_left
    (fun acc (name, _) ->
      let w = match List.assoc_opt name weights with Some w -> w | None -> 1. in
      acc +. (w *. bound_of curves alloc name))
    0. alloc

let to_masks = Mrc_alloc.to_masks
