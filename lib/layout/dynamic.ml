module Bitmask = Cache.Bitmask

type phase = {
  label : string;
  partition : Partition.t;
  copy_in : string list;
}

let phase ?(copy_in = []) ~label partition =
  if Partition.uncached_regions partition <> [] then
    invalid_arg
      (Printf.sprintf
         "Dynamic.phase %s: partitions with uncached regions cannot be \
          scheduled dynamically"
         label);
  { label; partition; copy_in }

type transition = {
  to_label : string;
  remapped_regions : string list;
  first_tints : string list;
  preloaded_regions : string list;
  pte_writes : int;
  tint_table_writes : int;
  tlb_entry_flushes : int;
  preload_lines : int;
}

let no_op t =
  t.remapped_regions = [] && t.first_tints = [] && t.preloaded_regions = []

type schedule = phase list

let schedule = function
  | [] -> invalid_arg "Dynamic.schedule: no phases"
  | first :: rest as phases ->
      let spec p = p.partition.Partition.spec in
      List.iter
        (fun p ->
          if
            (spec p).Partition.columns <> (spec first).Partition.columns
            || (spec p).Partition.column_size
               <> (spec first).Partition.column_size
          then
            invalid_arg
              (Printf.sprintf
                 "Dynamic.schedule: phase %s disagrees on cache geometry"
                 p.label))
        rest;
      phases

let phases s = s

(* The reconfiguration work at one boundary. [tinted] is the set of regions
   already carrying their tint from earlier phases; [prev] the placements in
   force. Changed = new placement, different columns, or different role. *)
type delta = {
  changed : Partition.placement list;
  fresh : Partition.placement list;  (* first time this region is tinted *)
  to_preload : Partition.placement list;
  default_remap : bool;
}

let compute_delta ~tinted ~prev (next : Partition.t) =
  let prev_placement name =
    match prev with
    | None -> None
    | Some p -> Partition.placement_of p name
  in
  let changed, unchanged =
    List.partition
      (fun (pl : Partition.placement) ->
        match prev_placement (Region.name pl.Partition.region) with
        | None -> true
        | Some p0 ->
            p0.Partition.columns <> pl.Partition.columns
            || p0.Partition.role <> pl.Partition.role)
      next.Partition.placements
  in
  let fresh =
    List.filter
      (fun pl -> not (Hashtbl.mem tinted (Region.name pl.Partition.region)))
      changed
  in
  (* Columns touched by any changed placement (new or old masks): unchanged
     scratchpad regions whose columns intersect may have been displaced and
     must be re-preloaded. *)
  let touched =
    List.fold_left
      (fun acc (pl : Partition.placement) ->
        let acc =
          match pl.Partition.columns with
          | Some m -> Bitmask.union acc m
          | None -> acc
        in
        match prev_placement (Region.name pl.Partition.region) with
        | Some { Partition.columns = Some m; _ } -> Bitmask.union acc m
        | Some { Partition.columns = None; _ } | None -> acc)
      Bitmask.empty changed
  in
  let to_preload =
    List.filter
      (fun (pl : Partition.placement) ->
        pl.Partition.role = Partition.Scratchpad
        &&
        match pl.Partition.columns with
        | None -> false
        | Some m ->
            List.memq pl changed
            || not (Bitmask.is_empty (Bitmask.inter m touched)))
      (changed @ unchanged)
  in
  let default_remap =
    match prev with
    | None -> true
    | Some p ->
        p.Partition.spec.Partition.scratchpad_columns
        <> next.Partition.spec.Partition.scratchpad_columns
  in
  { changed; fresh; to_preload; default_remap }

let lines_of ~line_size (pl : Partition.placement) =
  (pl.Partition.region.Region.size + line_size - 1) / line_size

let predict_transition ~page_size ~line_size ~tinted ~prev phase =
  let next = phase.partition in
  let d = compute_delta ~tinted ~prev next in
  let pages_of (pl : Partition.placement) =
    let first = pl.Partition.base / page_size in
    let last =
      (pl.Partition.base + pl.Partition.region.Region.size - 1) / page_size
    in
    last - first + 1
  in
  List.iter
    (fun pl -> Hashtbl.replace tinted (Region.name pl.Partition.region) ())
    d.fresh;
  {
    to_label = phase.label;
    remapped_regions = List.map (fun pl -> Region.name pl.Partition.region) d.changed;
    first_tints = List.map (fun pl -> Region.name pl.Partition.region) d.fresh;
    preloaded_regions =
      List.map (fun pl -> Region.name pl.Partition.region) d.to_preload;
    pte_writes = List.fold_left (fun acc pl -> acc + pages_of pl) 0 d.fresh;
    tint_table_writes =
      List.length d.changed + if d.default_remap then 1 else 0;
    tlb_entry_flushes = List.fold_left (fun acc pl -> acc + pages_of pl) 0 d.fresh;
    preload_lines =
      List.fold_left (fun acc pl -> acc + lines_of ~line_size pl) 0 d.to_preload;
  }

let plan s =
  match s with
  | [] -> []
  | first :: _ ->
      let spec = first.partition.Partition.spec in
      (* plan-time estimates use the default embedded page size and a
         16-byte line; run-time numbers come from the live system *)
      let page_size = 256 and line_size = 16 in
      ignore spec;
      let tinted = Hashtbl.create 32 in
      let prev = ref None in
      List.map
        (fun phase ->
          let t =
            predict_transition ~page_size ~line_size ~tinted ~prev:!prev phase
          in
          prev := Some phase.partition;
          t)
        s

let apply_transition ~system ~tinted ~prev phase =
  let next = phase.partition in
  let cache_cfg = Cache.Sassoc.geometry (Machine.System.cache system) in
  let line_size = cache_cfg.Cache.Sassoc.line_size in
  let mapping = Machine.System.mapping system in
  let d = compute_delta ~tinted ~prev next in
  let before = Vm.Mapping.cost mapping in
  if d.default_remap then begin
    let p = next.Partition.spec.Partition.scratchpad_columns in
    let k = next.Partition.spec.Partition.columns in
    let mask =
      if k - p > 0 then Bitmask.range ~lo:p ~hi:(k - 1) else Bitmask.full ~n:k
    in
    Vm.Mapping.remap_tint mapping Vm.Tint.default mask
  end;
  List.iter
    (fun (pl : Partition.placement) ->
      let name = Region.name pl.Partition.region in
      let tint = Region.tint pl.Partition.region in
      if not (Hashtbl.mem tinted name) then begin
        ignore
          (Vm.Mapping.retint_region mapping ~base:pl.Partition.base
             ~size:pl.Partition.region.Region.size tint);
        Hashtbl.replace tinted name ()
      end;
      match pl.Partition.columns with
      | Some mask -> Vm.Mapping.remap_tint mapping tint mask
      | None -> assert false (* uncached placements are rejected by [phase] *))
    d.changed;
  (* preload (and charge copy-in where required) *)
  List.iter
    (fun (pl : Partition.placement) ->
      if List.mem pl.Partition.region.Region.var phase.copy_in then begin
        let timing = Machine.System.timing system in
        Machine.System.charge_cycles system
          (lines_of ~line_size pl
          * (timing.Machine.Timing.hit_cycles + timing.Machine.Timing.miss_penalty))
      end;
      Machine.System.preload system ~base:pl.Partition.base
        ~size:pl.Partition.region.Region.size)
    d.to_preload;
  let cost = Vm.Mapping.cost_delta ~before ~after:(Vm.Mapping.cost mapping) in
  {
    to_label = phase.label;
    remapped_regions = List.map (fun pl -> Region.name pl.Partition.region) d.changed;
    first_tints = List.map (fun pl -> Region.name pl.Partition.region) d.fresh;
    preloaded_regions =
      List.map (fun pl -> Region.name pl.Partition.region) d.to_preload;
    pte_writes = cost.Vm.Mapping.pte_writes;
    tint_table_writes = cost.Vm.Mapping.tint_table_writes;
    tlb_entry_flushes = cost.Vm.Mapping.tlb_entry_flushes;
    preload_lines =
      List.fold_left (fun acc pl -> acc + lines_of ~line_size pl) 0 d.to_preload;
  }

let run ~system ~traces s =
  let tinted = Hashtbl.create 32 in
  let prev = ref None in
  let k =
    match s with
    | [] -> invalid_arg "Dynamic.run: empty schedule"
    | first :: _ -> first.partition.Partition.spec.Partition.columns
  in
  let total = ref (Machine.Run_stats.zero ~ways:k) in
  let transitions =
    List.map
      (fun phase ->
        let trace =
          match List.assoc_opt phase.label traces with
          | Some t -> t
          | None ->
              invalid_arg
                (Printf.sprintf "Dynamic.run: no trace for phase %s" phase.label)
        in
        let t = apply_transition ~system ~tinted ~prev:!prev phase in
        prev := Some phase.partition;
        total := Machine.Run_stats.add !total (Machine.System.run_trace system trace);
        t)
      s
  in
  (!total, transitions)

let pp_transition ppf t =
  Format.fprintf ppf
    "@[<v>-> %s%s@,\
    \   remapped: %s@,\
    \   first tints: %s@,\
    \   preloaded: %s (%d lines)@,\
    \   cost: %d PTE writes, %d tint-table writes, %d TLB entry flushes@]"
    t.to_label
    (if no_op t then " (no-op)" else "")
    (String.concat ", " t.remapped_regions)
    (String.concat ", " t.first_tints)
    (String.concat ", " t.preloaded_regions)
    t.preload_lines t.pte_writes t.tint_table_writes t.tlb_entry_flushes
