(** WCET-aware column allocation.

    The worst-case counterpart of {!Mrc_alloc}: instead of per-variable
    {e average} miss curves measured from a trace, the input is one
    {e bound curve} per task — [curve.(c)] = the task's statically
    proven worst-case miss bound when it owns [c] exclusive columns
    (from {!Ir.Cache_analysis.analyze} at a [c]-way geometry;
    [infinity] encodes an unboundable configuration). Because exclusive
    columns make a task's partition an isolated LRU cache, the bound
    read off the curve is sound for the composed system — no
    interference term, which is the whole point of WCET-aware
    partitioning (Bouquillon et al.).

    The default objective is the makespan-style one embedded real-time
    budgets care about: {e minimize the largest per-task bound}. Because
    every achievable max bound is one of the curves' values, the
    allocator scans those values ascending and takes the smallest whose
    per-task column demands fit — exact even on non-convex curves with
    plateaus, where one-column-at-a-time greedy stalls. Leftover columns
    then shrink the remaining bounds by per-column marginal gain with
    plateau lookahead. [`Weighted_sum] instead minimizes
    [sum w_i * bound_i] by marginal gain, which is {!Mrc_alloc}'s rule
    applied to scaled bound curves. *)

type objective =
  | Min_max
  | Weighted_sum of (string * float) list
      (** per-task weights; missing names weigh 1 *)

val allocate :
  ?objective:objective ->
  columns:int ->
  (string * float array) list ->
  (string * int) list
(** [allocate ~columns curves] distributes [columns] exclusive columns
    over the named bound curves. Every name receives at least one
    column; ties go to the earlier name; allocations never grow past a
    curve's last index. The result is in input order and sums to at
    most [columns]. Raises [Invalid_argument] under the same conditions
    as {!Mrc_alloc.allocate} (more names than columns, no names, a
    curve with fewer than two points). *)

val bound_of : (string * float array) list -> (string * int) list -> string -> float
(** The bound a given allocation implies for one task (clamped to its
    curve's last point). *)

val max_bound : (string * float array) list -> (string * int) list -> float
(** The largest per-task bound under an allocation — the [Min_max]
    objective value. *)

val total_bound :
  ?weights:(string * float) list ->
  (string * float array) list ->
  (string * int) list ->
  float
(** Weighted sum of per-task bounds (weight 1 where unspecified). *)

val to_masks : (string * int) list -> (string * Cache.Bitmask.t) list
(** {!Mrc_alloc.to_masks}: contiguous disjoint column masks in list
    order. *)
