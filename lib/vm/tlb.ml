type outcome =
  | Hit
  | Miss

type t = {
  page_table : Page_table.t;
  lru : Cache.Lru_set.t;
  cached : (int, Tint.t) Hashtbl.t;  (* resident page -> tint snapshot *)
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
  mutable entry_flushes : int;
  (* page evicted by the most recent [lookup_page_quick] miss; [min_int]
     when it hit or evicted nothing. Lets the batched replay invalidate its
     page memo without allocating an option per lookup. *)
  mutable last_evicted : int;
}

let create ~entries ~page_table =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  {
    page_table;
    lru = Cache.Lru_set.create ~capacity:entries;
    cached = Hashtbl.create (2 * entries);
    hits = 0;
    misses = 0;
    flushes = 0;
    entry_flushes = 0;
    last_evicted = min_int;
  }

let lookup_page t page =
  match Hashtbl.find_opt t.cached page with
  | Some tint ->
      t.hits <- t.hits + 1;
      ignore (Cache.Lru_set.touch t.lru page);
      (tint, Hit)
  | None ->
      t.misses <- t.misses + 1;
      let tint = Page_table.tint_of_page t.page_table page in
      (match Cache.Lru_set.touch t.lru page with
      | `Hit -> assert false
      | `Miss (Some evicted) -> Hashtbl.remove t.cached evicted
      | `Miss None -> ());
      Hashtbl.replace t.cached page tint;
      (tint, Miss)

let lookup t addr = lookup_page t (Page_table.page_of_addr t.page_table addr)

(* [lookup_page] minus the tuple: the tint comes back bare and the outcome
   is observable as a delta on [misses]. [Hashtbl.find] + exception instead
   of [find_opt] keeps the hit path allocation-free — this is the per-access
   entry the machine's batched replay loop uses. *)
let lookup_page_quick t page =
  match Hashtbl.find t.cached page with
  | tint ->
      t.hits <- t.hits + 1;
      t.last_evicted <- min_int;
      ignore (Cache.Lru_set.touch t.lru page);
      tint
  | exception Not_found ->
      t.misses <- t.misses + 1;
      let tint = Page_table.tint_of_page t.page_table page in
      (match Cache.Lru_set.touch t.lru page with
      | `Hit -> assert false
      | `Miss (Some evicted) ->
          Hashtbl.remove t.cached evicted;
          t.last_evicted <- evicted
      | `Miss None -> t.last_evicted <- min_int);
      Hashtbl.replace t.cached page tint;
      tint

let last_evicted t = t.last_evicted

(* Re-apply the LRU touch of a page that is guaranteed resident, without
   counting a hit (the hit was credited in bulk via [note_hits]). The
   batched replay defers touches of its memoized pages and replays them in
   last-use order before any real lookup: a sequence of hits only reorders
   the touched entries to the front, so touching each once, oldest last-use
   first, reproduces the exact LRU state. *)
let touch_resident t page =
  match Cache.Lru_set.touch t.lru page with
  | `Hit -> ()
  | `Miss _ -> assert false

(* Credit [n] hits without performing the lookups. Only sound when every
   skipped lookup is guaranteed to hit AND to leave the LRU state unchanged
   — i.e. repeated references to the page that is already most recently
   used, where [Lru_set.touch] is the identity. The machine's batched
   replay uses this for runs of consecutive same-page accesses. *)
let note_hits t n =
  if n < 0 then invalid_arg "Tlb.note_hits: negative count";
  t.hits <- t.hits + n

let flush t =
  Cache.Lru_set.clear t.lru;
  Hashtbl.reset t.cached;
  t.flushes <- t.flushes + 1

let flush_page t page =
  let present = Cache.Lru_set.remove t.lru page in
  if present then begin
    Hashtbl.remove t.cached page;
    t.entry_flushes <- t.entry_flushes + 1
  end;
  present

let hits t = t.hits
let misses t = t.misses
let flushes t = t.flushes
let entry_flushes t = t.entry_flushes
let resident_pages t = Cache.Lru_set.to_list t.lru
let capacity t = Cache.Lru_set.capacity t.lru
