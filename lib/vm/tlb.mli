(** Translation look-aside buffer caching page-table tint entries.

    Faithful to the paper's cost model: after a page is re-tinted in the
    page table, the TLB keeps serving the {e stale} tint until that entry is
    flushed or naturally evicted — re-tinting therefore requires explicit
    flushes (Section 2.2), and those flushes are what the Figure 3 demo
    counts. Remapping a tint's bit vector, by contrast, needs no TLB work at
    all because TLB entries store tints, not bit vectors. *)

type t

val create : entries:int -> page_table:Page_table.t -> t

type outcome =
  | Hit
  | Miss

val lookup_page : t -> int -> Tint.t * outcome
(** Look a page up, walking the page table and installing the entry on a
    miss (possibly evicting the LRU entry). *)

val lookup : t -> int -> Tint.t * outcome
(** [lookup t addr] = [lookup_page t (page_of_addr addr)]. *)

val lookup_page_quick : t -> int -> Tint.t
(** Exactly {!lookup_page} — same counters, same LRU update, same
    page-table walk on a miss — but allocation-free: only the tint is
    returned, and the outcome is observable as a delta on {!misses}. The
    machine's batched replay loop uses this on page crossings. *)

val last_evicted : t -> int
(** The page evicted by the most recent {!lookup_page_quick} miss, or
    [min_int] when that lookup hit or evicted nothing. The batched replay
    uses this to invalidate its page memo without allocating an option per
    lookup. *)

val note_hits : t -> int -> unit
(** Credit [n] TLB hits without performing lookups. Only sound for lookups
    that are guaranteed to hit, whose LRU touches are either identities
    (repeated references to the most-recently-used page) or replayed
    separately via {!touch_resident} — the batched replay path uses it for
    its memoized-page hits. Negative counts are rejected. *)

val touch_resident : t -> int -> unit
(** Re-apply the LRU touch of a page that is guaranteed resident, without
    touching the hit/miss counters. A run of guaranteed hits only reorders
    the touched entries to the front of the LRU, so the batched replay can
    defer the touches of its memoized pages and replay them — one per page,
    oldest last-use first — right before the next real lookup, reproducing
    the exact LRU state the per-access path would have built. *)

val flush : t -> unit
val flush_page : t -> int -> bool
(** Returns whether the page was resident. *)

val hits : t -> int
val misses : t -> int
val flushes : t -> int
(** Full flushes performed. *)

val entry_flushes : t -> int
(** Successful single-page flushes. *)

val resident_pages : t -> int list
(** Most- to least-recently-used. *)

val capacity : t -> int
