(** Differential soundness check for {!Ir.Cache_analysis}.

    Each run generates a small random IF program from the analyzable core
    of the language (constant loop bounds, terminating counter-Whiles,
    clamped indices), a small random cache geometry, and compares the
    static analysis against a concrete replay of the interpreter's trace
    through {!Cache.Sassoc}:

    - the static access, write and miss bounds must each cover the
      concrete counts;
    - any variable whose every access site is classified always-hit must
      replay with zero misses.

    The planted {!Oracle.Wcet} mutation flips the must-domain join to an
    unsound union, which these checks catch within a handful of seeds. *)

val run_one : ?bug:Oracle.bug -> seed:int -> unit -> (unit, string) result
(** [run_one ~seed ()] is [Ok ()] when every bound holds; [Error detail]
    carries the seed, the violated bound and the program text.
    [~bug:Oracle.Wcet] runs the analysis with its intentionally unsound
    join (other bug values analyze faithfully). *)
