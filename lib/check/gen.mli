(** Seeded random generation of differential test cases.

    All generation draws from a caller-supplied {!Prng.t}, so a seed fully
    determines the batch: CI failures name a seed and an iteration index,
    and both replay anywhere. Geometries are biased toward small, collision-
    heavy caches (few sets, few ways) because those exercise replacement
    hardest, but every call can also produce the extremes — one way, or
    {!Cache.Bitmask.max_columns} ways. *)

val tint_names : string list
(** The tint vocabulary scenarios draw from ("blue", "green", ...). *)

val mask : Prng.t -> ways:int -> Cache.Bitmask.t
(** A uniformly random {e non-empty} mask over columns [0..ways-1]. *)

val scenario :
  ?ways:int -> ?policy:Cache.Policy.kind -> ?max_events:int -> Prng.t ->
  Scenario.t
(** A random scenario: geometry, VM configuration and an event stream that
    is mostly accesses with re-tints, re-maps and flushes mixed in.
    [ways]/[policy] pin those dimensions (used to force coverage of the
    extremes); [max_events] bounds the stream length (default 160). *)

val traffic_scenario :
  ?ways:int ->
  ?policy:Cache.Policy.kind ->
  ?max_events:int ->
  ?perturb:bool ->
  Prng.t ->
  Scenario.t * int
(** A scenario whose access stream comes from a seeded {!Workloads.Gen}
    distribution — Zipf, drifting hot sets, scans, phased mixtures — so the
    differential drivers soak against traffic with realistic locality, not
    uniform noise. Reconfiguration events are interleaved at ~8%. Returns
    the scenario and the generator's declared address limit: every access
    must lie in [0, limit), which the soak verifies. [perturb] plants the
    [--inject-bug gen] mutation (Zipf ranks shifted past the declared
    range); every stream shape carries a Zipf component so the mutation is
    always detectable. *)

val trace : ?max_len:int -> Prng.t -> Memtrace.Trace.t
(** A random plain access trace (kinds, vars, gaps, addresses), for
    round-trip tests of {!Memtrace.Trace_file}. May be empty. *)
