(* Differential check for the abstract-interpretation cache analysis:
   generate a small well-formed IF program, compute its static miss
   bound, then replay the interpreter's concrete trace through the real
   LRU simulator and demand that reality never exceeds the bound. *)

module CA = Ir.Cache_analysis
module Build = Ir.Build

(* --- random analyzable programs ----------------------------------------- *)

(* The generator sticks to the analyzable core of the IF language:
   constant loop bounds, terminating counter-Whiles, indices clamped
   in-bounds with [max'/%] so the interpreter never traps. Programs are
   deliberately tiny — the soak runs tens of thousands of them. *)

type genv = {
  rng : Prng.t;
  arrays : (string * int) array;  (* name, elems *)
  scalars : string array;
  mutable regs : string list;  (* loop registers in scope *)
  mutable whiles : int;  (* terminating Whiles already emitted *)
}

let fresh_reg =
  let names = [| "i"; "j"; "k"; "l" |] in
  fun depth -> names.(depth mod Array.length names)

let gen_index env (elems : int) =
  match Prng.int env.rng 4 with
  | 0 -> Build.i (Prng.int env.rng elems)
  | 1 | 2 -> (
      match env.regs with
      | [] -> Build.i (Prng.int env.rng elems)
      | regs ->
          (* Loop registers are always >= 0 here, so [% elems] stays
             in bounds. *)
          let offset = Prng.int env.rng 4 in
          let scale = 1 + Prng.int env.rng 2 in
          let open Build in
          let reg = r (Prng.choose env.rng regs) in
          let e =
            match Prng.int env.rng 3 with
            | 0 -> reg
            | 1 -> reg + i offset
            | _ -> reg * i scale
          in
          e % i elems)
  | _ ->
      (* Data-dependent: a scalar value the analysis cannot see.
         Scalars may go negative, so clamp both sides. *)
      let sc = env.scalars.(Prng.int env.rng (Array.length env.scalars)) in
      let last = elems - 1 in
      let open Build in
      max' (min' (s sc % i elems) (i last)) (i 0)

let gen_expr env depth =
  let open Build in
  let leaf () =
    match Prng.int env.rng 4 with
    | 0 -> i (Prng.int_in env.rng ~lo:(-4) ~hi:8)
    | 1 ->
        let name, elems = env.arrays.(Prng.int env.rng (Array.length env.arrays)) in
        ld name (gen_index env elems)
    | 2 -> s env.scalars.(Prng.int env.rng (Array.length env.scalars))
    | _ -> (
        match env.regs with
        | [] -> i (Prng.int env.rng 4)
        | regs -> r (Prng.choose env.rng regs))
  in
  if depth <= 0 || Prng.bool env.rng then leaf ()
  else
    let a = leaf () and b = leaf () in
    match Prng.int env.rng 4 with
    | 0 -> a + b
    | 1 -> a - b
    | 2 -> min' a b
    | _ -> max' a b

let gen_cond env =
  let open Build in
  let prob = 0.05 +. (0.9 *. Prng.float env.rng) in
  let lhs = gen_expr env 1 and rhs = gen_expr env 1 in
  match Prng.int env.rng 3 with
  | 0 -> lt ~prob lhs rhs
  | 1 -> le ~prob lhs rhs
  | _ -> ne ~prob lhs rhs

let rec gen_stmt env depth =
  let pick = Prng.int env.rng (if depth >= 2 then 4 else 7) in
  match pick with
  | 0 | 1 ->
      let sc = env.scalars.(Prng.int env.rng (Array.length env.scalars)) in
      [ Build.set sc (gen_expr env 2) ]
  | 2 | 3 ->
      let name, elems = env.arrays.(Prng.int env.rng (Array.length env.arrays)) in
      [ Build.st name (gen_index env elems) (gen_expr env 1) ]
  | 4 ->
      let reg = fresh_reg depth in
      let lo = Prng.int env.rng 3 in
      let hi = lo + Prng.int env.rng 8 in
      let saved = env.regs in
      env.regs <- reg :: env.regs;
      let body = gen_body env (depth + 1) in
      env.regs <- saved;
      [ Build.for_ reg (Build.i lo) (Build.i hi) body ]
  | 5 when env.whiles < 1 ->
      (* A terminating counter-While: the counter scalar is reserved for
         the loop so the body cannot perturb it. *)
      env.whiles <- env.whiles + 1;
      let n = 1 + Prng.int env.rng 5 in
      let body = gen_body env (depth + 1) in
      let open Build in
      [
        set "wc" (i 0);
        while_
          (lt (s "wc") (i n))
          ~est_iterations:n
          (body @ [ set "wc" (s "wc" + i 1) ]);
      ]
  | _ ->
      let c = gen_cond env in
      let then_ = gen_body env (depth + 1) in
      if Prng.bool env.rng then [ Build.if_ c then_ ]
      else [ Build.if_else c then_ (gen_body env (depth + 1)) ]

and gen_body env depth =
  let n = 1 + Prng.int env.rng (if depth >= 2 then 2 else 3) in
  List.concat (List.init n (fun _ -> gen_stmt env depth))

let gen_program rng =
  let n_arrays = 1 + Prng.int rng 2 in
  let arrays =
    Array.init n_arrays (fun k ->
        (Printf.sprintf "a%d" k, 4 * (1 + Prng.int rng 6)))
  in
  let n_scalars = 1 + Prng.int rng 2 in
  let scalars = Array.init n_scalars (fun k -> Printf.sprintf "s%d" k) in
  let env = { rng; arrays; scalars; regs = []; whiles = 0 } in
  let body = gen_body env 0 in
  let open Build in
  let vars =
    List.concat
      [
        Array.to_list (Array.map (fun (n, e) -> array n ~elems:e ()) arrays);
        Array.to_list (Array.map (fun n -> scalar n ()) scalars);
        [ scalar "wc" () ];
      ]
  in
  program ~vars [ proc "main" body ]

let gen_geometry rng =
  let sets = 1 lsl Prng.int rng 3 in
  let ways = 1 + Prng.int rng 4 in
  { CA.line_size = 16; sets; ways }

(* --- the check ----------------------------------------------------------- *)

let fail fmt = Format.kasprintf (fun msg -> Error msg) fmt

let run_one ?bug ~seed () =
  let unsound_join = bug = Some Oracle.Wcet in
  let rng = Prng.create ~seed in
  let program = gen_program rng in
  let geom = gen_geometry rng in
  match
    let t = CA.analyze ~unsound_join geom program ~proc:"main" in
    let layout = Ir.Interp.sequential_layout program in
    let trace = Ir.Interp.trace_of program ~proc:"main" ~layout in
    (t, trace)
  with
  | exception exn ->
      fail "seed %d: analysis/replay raised %s" seed (Printexc.to_string exn)
  | t, trace ->
      let cache =
        Cache.Sassoc.create
          (Cache.Sassoc.config ~line_size:geom.CA.line_size
             ~size_bytes:(geom.CA.line_size * geom.CA.sets * max 1 geom.CA.ways)
             ~ways:(max 1 geom.CA.ways) ())
      in
      let per_var = Hashtbl.create 8 in
      let misses = ref 0 in
      let writes = ref 0 in
      Memtrace.Trace.iter
        (fun (a : Memtrace.Access.t) ->
          if a.kind = Memtrace.Access.Write then incr writes;
          match Cache.Sassoc.access_record cache a with
          | Cache.Sassoc.Hit _ -> ()
          | Cache.Sassoc.Miss _ ->
              incr misses;
              Option.iter
                (fun v ->
                  Hashtbl.replace per_var v
                    (1 + Option.value (Hashtbl.find_opt per_var v) ~default:0))
                a.var)
        trace;
      let problem fmt =
        Format.kasprintf
          (fun detail ->
            Error
              (Format.asprintf "seed %d: %s@.geometry %dB x %d sets x %d ways@.%a"
                 seed detail geom.CA.line_size geom.CA.sets geom.CA.ways
                 Ir.Ast.pp_program program))
          fmt
      in
      let n = Memtrace.Trace.length trace in
      let check_accesses () =
        match t.CA.accesses with
        | Some bound when bound < n ->
            problem "access bound %d < %d emitted" bound n
        | _ -> Ok ()
      in
      let check_writes () =
        match t.CA.writes with
        | Some bound when bound < !writes ->
            problem "write bound %d < %d emitted" bound !writes
        | _ -> Ok ()
      in
      let check_misses () =
        match t.CA.wcet_misses with
        | Some bound when geom.CA.ways > 0 && bound < !misses ->
            problem "static miss bound %d < %d observed misses" bound !misses
        | _ -> Ok ()
      in
      (* Any variable every one of whose access sites is classified
         always-hit must replay without a single miss. *)
      let check_always_hit () =
        let by_var = Hashtbl.create 8 in
        List.iter
          (fun st ->
            let all_hit =
              st.CA.classification = CA.Always_hit
              && Option.value (Hashtbl.find_opt by_var st.CA.var) ~default:true
            in
            Hashtbl.replace by_var st.CA.var all_hit)
          t.CA.sites;
        Hashtbl.fold
          (fun v all_hit acc ->
            match acc with
            | Error _ -> acc
            | Ok () ->
                let observed =
                  Option.value (Hashtbl.find_opt per_var v) ~default:0
                in
                if all_hit && observed > 0 then
                  problem "var %s is all always-hit yet missed %d times" v
                    observed
                else Ok ())
          by_var (Ok ())
      in
      let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
      check_accesses () >>= check_writes >>= check_misses >>= check_always_hit
