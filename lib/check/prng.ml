(* The implementation lives in [Workloads.Prng] so the traffic generators
   and the harness share one bit-stable stream; this module re-exports it
   under the historical [Check.Prng] name. *)
include Workloads.Prng
