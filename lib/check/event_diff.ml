module System = Machine.System
module Run_stats = Machine.Run_stats
module Sassoc = Cache.Sassoc
module Stats = Cache.Stats
module Access = Memtrace.Access

type divergence = {
  step : int;
  detail : string;
}

type outcome =
  | Agree
  | Diverge of divergence

exception Found of string

let failf fmt = Format.kasprintf (fun s -> raise (Found s)) fmt

let compare_stats (r : Stats.t) (b : Stats.t) =
  let pair name a c =
    if a <> c then failf "cache %s differ: in-order %d, event %d" name a c
  in
  pair "accesses" r.accesses b.accesses;
  pair "hits" r.hits b.hits;
  pair "misses" r.misses b.misses;
  pair "cold misses" r.cold_misses b.cold_misses;
  pair "capacity misses" r.capacity_misses b.capacity_misses;
  pair "conflict misses" r.conflict_misses b.conflict_misses;
  pair "evictions" r.evictions b.evictions;
  pair "writebacks" r.writebacks b.writebacks;
  if r.fills_per_way <> b.fills_per_way then
    failf "cache fills-per-way differ: in-order [%s], event [%s]"
      (String.concat ";"
         (Array.to_list (Array.map string_of_int r.fills_per_way)))
      (String.concat ";"
         (Array.to_list (Array.map string_of_int b.fills_per_way)))

(* Everything except [cycles] and the event-only MSHR/DRAM fields: the
   event core is free to retime the run, never to recount it. *)
let compare_counts (r : Run_stats.t) (b : Run_stats.t) =
  let pair name a c =
    if a <> c then failf "%s differ: in-order %d, event %d" name a c
  in
  pair "instructions" r.instructions b.instructions;
  pair "memory accesses" r.memory_accesses b.memory_accesses;
  pair "scratchpad accesses" r.scratchpad_accesses b.scratchpad_accesses;
  pair "TLB hits" r.tlb_hits b.tlb_hits;
  pair "TLB misses" r.tlb_misses b.tlb_misses;
  pair "L2 hits" r.l2_hits b.l2_hits;
  pair "L2 misses" r.l2_misses b.l2_misses;
  pair "prefetches" r.prefetches b.prefetches;
  compare_stats r.cache b.cache

(* Event-core geometry for the differential: small MLP and DRAM shapes
   derived from the scenario so both structural stalls and genuine overlap
   occur. Deterministic in the scenario — the soak must not draw RNG here
   (stream isolation). *)
let event_config (sc : Scenario.t) =
  let mlp = 1 + (sc.tlb_entries mod 4) in
  let dram =
    Machine.Dram.config
      ~banks:(match sc.cache.Sassoc.sets with 1 -> 1 | s -> min s 4)
      ~row_bytes:(max sc.cache.Sassoc.line_size (sc.page_size / 2))
      ~queue_depth:(1 + (sc.page_size mod 7))
      ()
  in
  Machine.Event.config ~mlp ~dram ()

let run_scenario ?bug (sc : Scenario.t) =
  let cfg =
    System.config ~page_size:sc.page_size ~tlb_entries:sc.tlb_entries sc.cache
  in
  (* Two identical machines: [inorder] replays batches through the blocking
     [System.run_packed] path (the differential oracle); [event] replays
     the same batches through [System.run_packed_events]. Reconfigurations
     land on both sides in scenario order; after every batch all functional
     counts must agree — timing is free to differ, so [cycles] is the one
     field never compared. *)
  let inorder = System.create cfg in
  let event = System.create cfg in
  let events = event_config sc in
  let inject_merge_bug = bug = Some Oracle.Event in
  let pending = ref [] in
  let step = ref 0 in
  let flush () =
    match !pending with
    | [] -> ()
    | evs ->
        let packed = Memtrace.Packed.of_list (List.rev evs) in
        ignore (System.run_packed inorder packed);
        ignore
          (System.run_packed_events ~inject_merge_bug event ~events packed);
        pending := [];
        compare_counts (System.total inorder) (System.total event)
  in
  let apply event_ =
    match (event_ : Scenario.event) with
    | Scenario.Access a -> pending := a :: !pending
    | Scenario.Retint { base; size; tint } ->
        flush ();
        let tint = Vm.Tint.make tint in
        let ri =
          Vm.Mapping.retint_region (System.mapping inorder) ~base ~size tint
        in
        let re =
          Vm.Mapping.retint_region (System.mapping event) ~base ~size tint
        in
        if ri <> re then
          failf "retint page count differs: in-order %d, event %d" ri re
    | Scenario.Remap { tint; mask } ->
        flush ();
        let tint = Vm.Tint.make tint in
        Vm.Mapping.remap_tint (System.mapping inorder) tint mask;
        Vm.Mapping.remap_tint (System.mapping event) tint mask
    | Scenario.Flush_tlb ->
        flush ();
        System.flush_tlb inorder;
        System.flush_tlb event
    | Scenario.Flush_cache ->
        flush ();
        System.flush_cache inorder;
        System.flush_cache event
  in
  try
    List.iter
      (fun e ->
        apply e;
        incr step)
      sc.events;
    flush ();
    compare_counts (System.total inorder) (System.total event);
    for set = 0 to cfg.System.cache.Sassoc.sets - 1 do
      let r = Sassoc.lines_in_set (System.cache inorder) set in
      let b = Sassoc.lines_in_set (System.cache event) set in
      if r <> b then
        failf
          "final contents of set %d differ: in-order has %d lines, event %d"
          set (List.length r) (List.length b)
    done;
    let rc = Vm.Mapping.cost (System.mapping inorder) in
    let bc = Vm.Mapping.cost (System.mapping event) in
    if rc <> bc then
      failf "reconfiguration costs differ: in-order (%a), event (%a)"
        Vm.Mapping.pp_cost rc Vm.Mapping.pp_cost bc;
    Agree
  with Found detail -> Diverge { step = !step; detail }
