(** Invariant checkers usable from any test.

    Each checker returns [Ok ()] or [Error message]; they assert structural
    properties that must hold of {e any} correct column cache, independent of
    the differential oracle:

    - victims land inside the supplied column mask;
    - statistics are conserved (hits + misses = accesses, the three-C
      breakdown sums to the misses, writebacks never exceed evictions);
    - a set never occupies ways outside the union of the masks its fills
      were given;
    - under LRU, each eviction removes the least recently used line among
      the allowed ways ({!Lru_monitor}). *)

val victim_in_mask :
  mask:Cache.Bitmask.t -> Cache.Sassoc.result -> (unit, string) result
(** On a miss, the chosen way must be a member of [mask]. *)

val stats_conserved : Cache.Stats.t -> (unit, string) result
(** [hits + misses = accesses]; [writebacks <= evictions]; when any
    classified misses are present, [cold + capacity + conflict <= misses]
    (equality only holds when every miss was a classified demand miss, so
    only the upper bound is checked). *)

val occupancy_within :
  Cache.Sassoc.t -> set:int -> allowed:Cache.Bitmask.t -> (unit, string) result
(** Every valid way of [set] lies inside [allowed] — hence the set's
    occupancy is at most [Bitmask.count allowed]. Callers accumulate
    [allowed] as the union of every mask under which the set was filled. *)

(** An independent per-set recency tracker for LRU caches: feed it every
    access (and nothing else — no [fill]s) and it checks that each eviction
    removed the least recently used line among the ways the mask allowed. *)
module Lru_monitor : sig
  type t

  val create : Cache.Sassoc.config -> t
  (** Raises [Invalid_argument] if the configured policy is not LRU. *)

  val note :
    t -> mask:Cache.Bitmask.t -> kind:Memtrace.Access.kind -> int ->
    Cache.Sassoc.result -> (unit, string) result
  (** Record one access and its observed result; errors describe the first
      recency violation found. *)

  val flush : t -> unit
  (** Forget all tracked lines; call alongside {!Cache.Sassoc.flush}. *)
end
