module Sassoc = Cache.Sassoc
module Bitmask = Cache.Bitmask
module Stats = Cache.Stats
module Access = Memtrace.Access

type bug =
  | Mru_instead_of_lru
  | Ignore_mask
  | Skip_writeback_count
  | Fast_path
  | Machine_fast_path
  | Mrc
  | Sample
  | Gen
  | Wcet
  | Event
  | Shard

let bug_to_string = function
  | Mru_instead_of_lru -> "mru-instead-of-lru"
  | Ignore_mask -> "ignore-mask"
  | Skip_writeback_count -> "skip-writeback-count"
  | Fast_path -> "fast-path"
  | Machine_fast_path -> "machine-fast-path"
  | Mrc -> "mrc"
  | Sample -> "sample"
  | Gen -> "gen"
  | Wcet -> "wcet"
  | Event -> "event"
  | Shard -> "shard"

(* One resident cache line. The oracle stores whole line addresses and never
   splits them into tag/index; set membership is recomputed from the line on
   every scan. *)
type cell = {
  set : int;
  way : int;
  line : int;
  mutable dirty : bool;
}

type t = {
  cfg : Sassoc.config;
  bug : bug option;
  mutable cells : cell list;
  (* Explicit recency state, one list per policy concern:
     - [recency]: (set, way) slots, most recently used first (LRU);
     - [fill_order]: (set, way) slots, oldest fill first (FIFO);
     - [mru_marked]: (set, way) slots whose bit-PLRU MRU bit is set. *)
  mutable recency : (int * int) list;
  mutable fill_order : (int * int) list;
  mutable mru_marked : (int * int) list;
  mutable rng : int64;  (* xorshift64* state, bit-compatible with Policy *)
  (* Shadow structures for three-C classification: a fully-associative LRU
     of the same total capacity (most recent first) and the set of lines
     ever referenced. *)
  mutable shadow : int list;
  mutable seen : int list;
  stats : Stats.t;
}

let create ?bug cfg =
  (* Reuse the real validator: the oracle accepts exactly the geometries the
     simulator accepts. *)
  ignore (Sassoc.create cfg);
  let seed =
    match cfg.Sassoc.policy with
    | Cache.Policy.Random s when s <> 0 -> s
    | Cache.Policy.Random _ -> 1
    | _ -> 1
  in
  {
    cfg;
    bug;
    cells = [];
    recency = [];
    fill_order = [];
    mru_marked = [];
    rng = Int64.of_int seed;
    shadow = [];
    seen = [];
    stats = Stats.create ~ways:cfg.Sassoc.ways;
  }

let geometry t = t.cfg
let stats t = t.stats
let line_of_addr t addr = addr / t.cfg.Sassoc.line_size
let set_of_line t line = line mod t.cfg.Sassoc.sets

let find_cell t ~set ~way =
  List.find_opt (fun c -> c.set = set && c.way = way) t.cells

let cell_of_line t line =
  let set = set_of_line t line in
  List.find_opt (fun c -> c.set = set && c.line = line) t.cells

let remove_cell t ~set ~way =
  t.cells <- List.filter (fun c -> not (c.set = set && c.way = way)) t.cells

(* --- recency bookkeeping ------------------------------------------------ *)

let promote t slot =
  t.recency <- slot :: List.filter (fun s -> s <> slot) t.recency

let record_fill_order t slot =
  t.fill_order <- List.filter (fun s -> s <> slot) t.fill_order @ [ slot ]

let plru_touch t ~set ~way =
  let slot = (set, way) in
  if not (List.mem slot t.mru_marked) then
    t.mru_marked <- slot :: t.mru_marked;
  let all_marked =
    List.for_all
      (fun w -> List.mem (set, w) t.mru_marked)
      (List.init t.cfg.Sassoc.ways Fun.id)
  in
  if all_marked then
    t.mru_marked <-
      List.filter (fun (s, w) -> s <> set || w = way) t.mru_marked

let on_hit t ~set ~way =
  match t.cfg.Sassoc.policy with
  | Cache.Policy.Lru -> promote t (set, way)
  | Cache.Policy.Fifo -> ()
  | Cache.Policy.Bit_plru -> plru_touch t ~set ~way
  | Cache.Policy.Random _ -> ()

let on_fill t ~set ~way =
  match t.cfg.Sassoc.policy with
  | Cache.Policy.Lru -> promote t (set, way)
  | Cache.Policy.Fifo -> record_fill_order t (set, way)
  | Cache.Policy.Bit_plru -> plru_touch t ~set ~way
  | Cache.Policy.Random _ -> ()

(* Same xorshift64* step as Policy.next_random, so that a shared seed yields
   the same victim sequence. *)
let next_random t =
  let x = t.rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.rng <- x;
  Int64.to_int (Int64.logand x 0x3FFFFFFFFFFFFFFFL)

(* --- victim selection --------------------------------------------------- *)

let victim t ~set ~mask =
  let mask =
    match t.bug with
    | Some Ignore_mask -> Bitmask.full ~n:t.cfg.Sassoc.ways
    | _ -> mask
  in
  let candidates =
    List.filter (Bitmask.mem mask) (List.init t.cfg.Sassoc.ways Fun.id)
  in
  assert (candidates <> []);
  match
    List.find_opt (fun w -> find_cell t ~set ~way:w = None) candidates
  with
  | Some w -> w  (* an empty allowed way always wins over live data *)
  | None -> (
      match t.cfg.Sassoc.policy with
      | Cache.Policy.Lru ->
          (* Least recently used = the candidate deepest in the recency
             list (with the planted MRU bug: shallowest). *)
          let pos w =
            let rec idx i = function
              | [] -> max_int
              | s :: tl -> if s = (set, w) then i else idx (i + 1) tl
            in
            idx 0 t.recency
          in
          let better a b =
            match t.bug with
            | Some Mru_instead_of_lru -> pos a < pos b
            | _ -> pos a > pos b
          in
          List.fold_left
            (fun acc w -> if better w acc then w else acc)
            (List.hd candidates) (List.tl candidates)
      | Cache.Policy.Fifo ->
          (* Oldest fill first: scan the fill-order list front to back. *)
          let rec first = function
            | [] -> assert false
            | (s, w) :: tl ->
                if s = set && List.mem w candidates then w else first tl
          in
          first t.fill_order
      | Cache.Policy.Bit_plru -> (
          match
            List.find_opt
              (fun w -> not (List.mem (set, w) t.mru_marked))
              candidates
          with
          | Some w -> w
          | None -> List.hd candidates)
      | Cache.Policy.Random _ ->
          let n = List.length candidates in
          List.nth candidates (next_random t mod n))

(* --- shadow / classification -------------------------------------------- *)

let classify_miss t line =
  if t.cfg.Sassoc.classify then begin
    let cold = not (List.mem line t.seen) in
    if cold then begin
      t.seen <- line :: t.seen;
      t.stats.Stats.cold_misses <- t.stats.Stats.cold_misses + 1
    end;
    let shadow_hit = List.mem line t.shadow in
    if not cold then
      if shadow_hit then
        t.stats.Stats.conflict_misses <- t.stats.Stats.conflict_misses + 1
      else t.stats.Stats.capacity_misses <- t.stats.Stats.capacity_misses + 1
  end

let update_shadow t line =
  if t.cfg.Sassoc.classify then begin
    let capacity = t.cfg.Sassoc.sets * t.cfg.Sassoc.ways in
    let without = List.filter (fun l -> l <> line) t.shadow in
    let shadow = line :: without in
    t.shadow <-
      (if List.length shadow > capacity then
         List.filteri (fun i _ -> i < capacity) shadow
       else shadow)
  end

(* --- eviction + install ------------------------------------------------- *)

let evict_and_install t ~set ~way ~line ~dirty ~count_writeback =
  let evicted_line =
    match find_cell t ~set ~way with
    | Some c ->
        t.stats.Stats.evictions <- t.stats.Stats.evictions + 1;
        if c.dirty && count_writeback then
          t.stats.Stats.writebacks <- t.stats.Stats.writebacks + 1;
        remove_cell t ~set ~way;
        Some c.line
    | None -> None
  in
  t.cells <- { set; way; line; dirty } :: t.cells;
  on_fill t ~set ~way;
  t.stats.Stats.fills_per_way.(way) <- t.stats.Stats.fills_per_way.(way) + 1;
  evicted_line

let effective_mask t ~who mask =
  let full = Bitmask.full ~n:t.cfg.Sassoc.ways in
  let mask = match mask with None -> full | Some m -> Bitmask.inter m full in
  if Bitmask.is_empty mask then
    invalid_arg (Printf.sprintf "Oracle.%s: empty column mask" who);
  mask

let count_writeback t = t.bug <> Some Skip_writeback_count

let access t ?mask ~kind addr =
  let mask = effective_mask t ~who:"access" mask in
  let line = line_of_addr t addr in
  let set = set_of_line t line in
  t.stats.Stats.accesses <- t.stats.Stats.accesses + 1;
  match cell_of_line t line with
  | Some c ->
      t.stats.Stats.hits <- t.stats.Stats.hits + 1;
      on_hit t ~set ~way:c.way;
      if kind = Access.Write then c.dirty <- true;
      update_shadow t line;
      Sassoc.Hit { way = c.way }
  | None ->
      t.stats.Stats.misses <- t.stats.Stats.misses + 1;
      classify_miss t line;
      update_shadow t line;
      let way = victim t ~set ~mask in
      let evicted_line =
        evict_and_install t ~set ~way ~line ~dirty:(kind = Access.Write)
          ~count_writeback:(count_writeback t)
      in
      Sassoc.Miss { way; evicted_line }

let fill t ?mask addr =
  let mask = effective_mask t ~who:"fill" mask in
  let line = line_of_addr t addr in
  let set = set_of_line t line in
  match cell_of_line t line with
  | Some c -> Sassoc.Hit { way = c.way }
  | None ->
      let way = victim t ~set ~mask in
      let evicted_line =
        evict_and_install t ~set ~way ~line ~dirty:false
          ~count_writeback:(count_writeback t)
      in
      update_shadow t line;
      Sassoc.Miss { way; evicted_line }

let probe t addr =
  Option.map (fun c -> c.way) (cell_of_line t (line_of_addr t addr))

let way_of_line t line = Option.map (fun c -> c.way) (cell_of_line t line)
let valid_lines t = List.length t.cells

let lines_in_set t set =
  List.filter (fun c -> c.set = set) t.cells
  |> List.map (fun c -> (c.way, c.line))
  |> List.sort compare

let invalidate_line t line =
  match cell_of_line t line with
  | None -> ()
  | Some c -> remove_cell t ~set:c.set ~way:c.way

let flush t = t.cells <- []

(* --- naive reference for Policy.victim ---------------------------------- *)

let victim_ref policy ~set ~allowed ~valid =
  let ways = Cache.Policy.ways policy in
  let candidates =
    List.filter (Bitmask.mem allowed) (List.init ways Fun.id)
  in
  if candidates = [] then invalid_arg "Oracle.victim_ref: empty column mask";
  (* An empty (invalid) allowed way always beats evicting live data; the
     first such way front to back. *)
  match List.find_opt (fun w -> not (Bitmask.mem valid w)) candidates with
  | Some w -> w
  | None -> (
      match Cache.Policy.kind policy with
      | Cache.Policy.Lru | Cache.Policy.Fifo ->
          (* Smallest stamp (last use / fill time) wins; equal stamps go to
             the highest way. *)
          let stamp w = Cache.Policy.stamp policy ~set ~way:w in
          List.fold_left
            (fun best w ->
              if stamp w < stamp best || (stamp w = stamp best && w > best)
              then w
              else best)
            (List.hd candidates) (List.tl candidates)
      | Cache.Policy.Bit_plru -> (
          (* First candidate whose MRU bit is clear; all marked -> first
             candidate. *)
          match
            List.find_opt
              (fun w -> not (Cache.Policy.mru_bit policy ~set ~way:w))
              candidates
          with
          | Some w -> w
          | None -> List.hd candidates)
      | Cache.Policy.Random _ ->
          let n = List.length candidates in
          List.nth candidates (Cache.Policy.next_random policy mod n))
