(** The stack-distance differential runner.

    Where {!Diff} pins the cache + VM layers against naive models, this
    driver pins the single-pass {!Cache.Stack_dist} engine against exact
    simulation: the access stream of a {!Scenario} (reconfiguration events
    are irrelevant — the engine models an unpartitioned cache) is fed once
    through a stack-distance engine sized at the scenario's way count [W],
    and then replayed through [W] fresh non-classifying LRU {!Cache.Sassoc}
    caches, one per associativity [1..W], with the full column mask. Every
    associativity's accesses, hits, misses, evictions and writebacks must
    agree exactly — the Mattson inclusion property made executable. This is
    what lets the sweep experiments read whole configuration curves out of
    one pass. *)

type divergence = {
  step : int;
      (** always the event count: the engine is compared only after the full
          replay (a per-associativity curve has no per-event observable) *)
  detail : string;
}

type outcome =
  | Agree
  | Diverge of divergence

val run_scenario : ?bug:Oracle.bug -> Scenario.t -> outcome
(** [bug] plants a defect for mutation-testing the harness: {!Oracle.Mrc}
    demotes writes to reads on the stack-distance side, losing dirty bits
    (other bugs have no effect here — they live in the {!Oracle}). *)
