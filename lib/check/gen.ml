module Sassoc = Cache.Sassoc
module Bitmask = Cache.Bitmask
module Access = Memtrace.Access

let tint_names = [ "blue"; "green"; "yellow"; "purple"; "orange" ]

let mask rng ~ways =
  let m =
    List.fold_left
      (fun m w -> if Prng.chance rng 0.4 then Bitmask.add m w else m)
      Bitmask.empty
      (List.init ways Fun.id)
  in
  if Bitmask.is_empty m then Bitmask.singleton (Prng.int rng ways) else m

let gen_ways rng =
  (* Small geometries collide hardest; the tail still reaches the maximum
     so wide-mask paths are exercised. *)
  let r = Prng.int rng 100 in
  if r < 70 then Prng.int_in rng ~lo:1 ~hi:4
  else if r < 90 then Prng.int_in rng ~lo:5 ~hi:8
  else Prng.choose rng [ 16; 32; Bitmask.max_columns ]

let gen_policy rng =
  match Prng.int rng 4 with
  | 0 -> Cache.Policy.Lru
  | 1 -> Cache.Policy.Fifo
  | 2 -> Cache.Policy.Bit_plru
  | _ -> Cache.Policy.Random (Prng.int_in rng ~lo:1 ~hi:1_000_000)

let scenario ?ways ?policy ?(max_events = 160) rng =
  let ways = match ways with Some w -> w | None -> gen_ways rng in
  let policy = match policy with Some p -> p | None -> gen_policy rng in
  let sets = Prng.choose rng [ 1; 2; 4; 8; 16 ] in
  let line_size = Prng.choose rng [ 8; 16; 32 ] in
  let cache =
    { Sassoc.line_size; sets; ways; policy; classify = Prng.bool rng }
  in
  let page_size = Prng.choose rng [ 64; 128; 256 ] in
  let tlb_entries = Prng.int_in rng ~lo:1 ~hi:6 in
  let n_tints = 2 + Prng.int rng 3 in
  let tints = List.filteri (fun i _ -> i < n_tints) tint_names in
  (* Confine addresses to a few pages so that TLB evictions, set conflicts
     and re-tints of live pages all actually happen. *)
  let span = (2 + Prng.int rng 6) * page_size in
  let n_events = 10 + Prng.int rng (max 1 (max_events - 10)) in
  let event () =
    let r = Prng.int rng 100 in
    if r < 80 then
      let addr = 4 * Prng.int rng (span / 4) in
      let kind = if Prng.chance rng 0.3 then Access.Write else Access.Read in
      Scenario.Access (Access.make ~kind ~gap:(Prng.int rng 4) addr)
    else if r < 88 then
      Scenario.Remap { tint = Prng.choose rng tints; mask = mask rng ~ways }
    else if r < 96 then
      Scenario.Retint
        {
          base = Prng.int rng span;
          size = 1 + Prng.int rng (2 * page_size);
          tint = Prng.choose rng tints;
        }
    else if r < 98 then Scenario.Flush_tlb
    else Scenario.Flush_cache
  in
  (* Lead with a few remaps so restricted masks are in force from the first
     access, not only once a random remap happens to fire. *)
  let preamble =
    List.map
      (fun tint -> Scenario.Remap { tint; mask = mask rng ~ways })
      (Prng.subset rng ~keep:0.7 tints)
  in
  let body = List.init n_events (fun _ -> event ()) in
  { Scenario.cache; page_size; tlb_entries; events = preamble @ body }

(* Traffic-shaped scenario: the access stream comes from a seeded
   {!Workloads.Gen} distribution — Zipf, drifting hot sets, scans, phased
   mixtures — instead of uniform address noise, with reconfiguration events
   interleaved so masks and tints still churn under realistic locality.
   Every stream shape carries a Zipf component so the [perturb] hook (the
   [--inject-bug gen] mutation: ranks shifted past the declared range) is
   always detectable. Returns the scenario and the generator's declared
   address limit; the soak checks every access stays in [0, limit). *)
let traffic_scenario ?ways ?policy ?(max_events = 160) ?(perturb = false) rng
    =
  let ways = match ways with Some w -> w | None -> gen_ways rng in
  let policy = match policy with Some p -> p | None -> gen_policy rng in
  let sets = Prng.choose rng [ 2; 4; 8; 16 ] in
  let line_size = Prng.choose rng [ 8; 16; 32 ] in
  let cache =
    { Sassoc.line_size; sets; ways; policy; classify = Prng.bool rng }
  in
  let page_size = Prng.choose rng [ 64; 128; 256 ] in
  let tlb_entries = Prng.int_in rng ~lo:1 ~hi:6 in
  let items = 16 + Prng.int rng 113 in
  let theta = 0.6 +. (0.1 *. float_of_int (Prng.int rng 6)) in
  let zipf = Workloads.Gen.Zipf { items; theta } in
  let stream =
    match Prng.int rng 4 with
    | 0 -> zipf
    | 1 ->
        Workloads.Gen.Phased
          [ (30, zipf); (20, Workloads.Gen.Scan { items }) ]
    | 2 ->
        Workloads.Gen.Phased
          [
            (25, zipf);
            ( 25,
              Workloads.Gen.Hot_set
                {
                  items;
                  hot_items = max 1 (items / 8);
                  hot_prob = 0.9;
                  drift_every = 40;
                } );
          ]
    | _ ->
        Workloads.Gen.Phased
          [ (20, Workloads.Gen.Uniform { items }); (40, zipf) ]
  in
  let n = 40 + Prng.int rng (max 1 (max_events - 40)) in
  let trace =
    Workloads.Gen.emit ~perturb ~stride:line_size
      ~seed:(Prng.int rng 1_000_000) ~n stream
  in
  let limit = trace.Workloads.Gen.limit in
  let n_tints = 2 + Prng.int rng 3 in
  let tints = List.filteri (fun i _ -> i < n_tints) tint_names in
  let reconfig () =
    let r = Prng.int rng 100 in
    if r < 45 then
      Scenario.Remap { tint = Prng.choose rng tints; mask = mask rng ~ways }
    else if r < 85 then
      Scenario.Retint
        {
          base = Prng.int rng limit;
          size = 1 + Prng.int rng (2 * page_size);
          tint = Prng.choose rng tints;
        }
    else if r < 95 then Scenario.Flush_tlb
    else Scenario.Flush_cache
  in
  let preamble =
    List.map
      (fun tint -> Scenario.Remap { tint; mask = mask rng ~ways })
      (Prng.subset rng ~keep:0.7 tints)
  in
  let body = ref [] in
  Memtrace.Packed.iter
    (fun a ->
      if Prng.chance rng 0.08 then body := reconfig () :: !body;
      body := Scenario.Access a :: !body)
    trace.Workloads.Gen.packed;
  ( {
      Scenario.cache;
      page_size;
      tlb_entries;
      events = preamble @ List.rev !body;
    },
    limit )

let trace ?(max_len = 64) rng =
  let n = Prng.int rng (max_len + 1) in
  let builder = Memtrace.Trace.Builder.create () in
  for _ = 1 to n do
    let kind =
      match Prng.int rng 3 with
      | 0 -> Access.Read
      | 1 -> Access.Write
      | _ -> Access.Ifetch
    in
    let var =
      match Prng.int rng 4 with
      | 0 -> Some "a"
      | 1 -> Some "buf"
      | 2 -> Some "x_y.z"
      | _ -> None
    in
    Memtrace.Trace.Builder.add builder
      (Access.make ~kind ?var ~gap:(Prng.int rng 8) (Prng.int rng 0x10000))
  done;
  Memtrace.Trace.Builder.build builder
