(** Seeded pseudo-random numbers for the conformance harness.

    A splitmix64 generator: tiny, fast, and — unlike [Stdlib.Random] — with a
    bit-for-bit stable output sequence across OCaml versions, so a failing
    seed reported by CI reproduces exactly on any machine. Every generator in
    {!Gen} draws from one of these. The implementation is shared with the
    traffic-shaped workload generators — this module re-exports
    {!Workloads.Prng}. *)

include module type of Workloads.Prng
