(** The set-sharded parallel Mattson pass vs the serial engine.

    Shard merging claims byte-identical results
    ({!Cache.Stack_dist.merge_into}: disjoint per-set counters, pure
    addition), so unlike {!Sample_diff} this driver asserts exact equality
    of {e every} reading — accesses, cold misses, overflows, distinct
    lines, the depth histogram, and per-associativity
    misses/evictions/writebacks for each [jobs] in a small list (clamped
    to the scenario's set count). The sampled engine is held to the same
    standard on its raw integer readings (selection is a per-set property,
    so it shards exactly); a covering sliding window (window ≥ stream
    length, so nothing retires) must read exactly what the one-shot engine
    read. The sharded feeds stream small {!Memtrace.Packed.sub} chunks but
    run serially on the calling domain: shard selection and merging — the
    corruptions this driver exists to catch — are the same code with or
    without [Domain] fan-out, and soak iterations must stay cheap. Real
    parallel execution is exercised by the unit tests, bench rows and the
    CLI. Reconfiguration events are irrelevant, as in {!Mrc_diff}. *)

type divergence = {
  step : int;
      (** always the event count: readings are compared only after the
          full replay *)
  detail : string;
}

type outcome =
  | Agree
  | Diverge of divergence

val run_scenario : ?bug:Oracle.bug -> Scenario.t -> outcome
(** [bug] plants a defect for mutation-testing the harness:
    {!Oracle.Shard} drops the last worker's shard from the exact merge, so
    every count owned by its sets vanishes from the merged result (other
    bugs have no effect here). *)
