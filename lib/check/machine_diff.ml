module System = Machine.System
module Run_stats = Machine.Run_stats
module Sassoc = Cache.Sassoc
module Stats = Cache.Stats
module Access = Memtrace.Access

type divergence = {
  step : int;
  detail : string;
}

type outcome =
  | Agree
  | Diverge of divergence

exception Found of string

let failf fmt = Format.kasprintf (fun s -> raise (Found s)) fmt

let compare_stats (r : Stats.t) (b : Stats.t) =
  let pair name a c =
    if a <> c then failf "cache %s differ: scalar %d, batched %d" name a c
  in
  pair "accesses" r.accesses b.accesses;
  pair "hits" r.hits b.hits;
  pair "misses" r.misses b.misses;
  pair "cold misses" r.cold_misses b.cold_misses;
  pair "capacity misses" r.capacity_misses b.capacity_misses;
  pair "conflict misses" r.conflict_misses b.conflict_misses;
  pair "evictions" r.evictions b.evictions;
  pair "writebacks" r.writebacks b.writebacks;
  if r.fills_per_way <> b.fills_per_way then
    failf "cache fills-per-way differ: scalar [%s], batched [%s]"
      (String.concat ";"
         (Array.to_list (Array.map string_of_int r.fills_per_way)))
      (String.concat ";"
         (Array.to_list (Array.map string_of_int b.fills_per_way)))

let compare_totals (r : Run_stats.t) (b : Run_stats.t) =
  let pair name a c =
    if a <> c then failf "%s differ: scalar %d, batched %d" name a c
  in
  pair "instructions" r.instructions b.instructions;
  pair "cycles" r.cycles b.cycles;
  pair "memory accesses" r.memory_accesses b.memory_accesses;
  pair "scratchpad accesses" r.scratchpad_accesses b.scratchpad_accesses;
  pair "TLB hits" r.tlb_hits b.tlb_hits;
  pair "TLB misses" r.tlb_misses b.tlb_misses;
  pair "L2 hits" r.l2_hits b.l2_hits;
  pair "L2 misses" r.l2_misses b.l2_misses;
  pair "prefetches" r.prefetches b.prefetches;
  compare_stats r.cache b.cache

let run_scenario ?bug (sc : Scenario.t) =
  let cfg =
    System.config ~page_size:sc.page_size ~tlb_entries:sc.tlb_entries sc.cache
  in
  (* Two identical machines: [scalar] replays each access the moment it
     appears ([System.access]); [batched] queues runs of accesses and
     replays them through [System.run_packed] at the next reconfiguration
     point. Reconfigurations land on both sides in scenario order, so the
     two machines see exactly the same history — every counter, the cache
     contents and the TLB-dependent reconfiguration costs must match. *)
  let scalar = System.create cfg in
  let batched = System.create cfg in
  let pending = ref [] in
  let step = ref 0 in
  let flush () =
    match !pending with
    | [] -> ()
    | evs ->
        let evs = List.rev evs in
        (* The planted machine-fast-path bug lives here, on the batched
           side: gaps are zeroed when packing the batch, corrupting
           instruction and cycle accounting. *)
        let evs =
          if bug = Some Oracle.Machine_fast_path then
            List.map (fun (a : Access.t) -> { a with gap = 0 }) evs
          else evs
        in
        ignore (System.run_packed batched (Memtrace.Packed.of_list evs));
        pending := [];
        compare_totals (System.total scalar) (System.total batched)
  in
  let apply event =
    match (event : Scenario.event) with
    | Scenario.Access a ->
        ignore (System.access scalar a);
        pending := a :: !pending
    | Scenario.Retint { base; size; tint } ->
        flush ();
        let tint = Vm.Tint.make tint in
        let rs =
          Vm.Mapping.retint_region (System.mapping scalar) ~base ~size tint
        in
        let rb =
          Vm.Mapping.retint_region (System.mapping batched) ~base ~size tint
        in
        if rs <> rb then
          failf "retint page count differs: scalar %d, batched %d" rs rb
    | Scenario.Remap { tint; mask } ->
        flush ();
        let tint = Vm.Tint.make tint in
        Vm.Mapping.remap_tint (System.mapping scalar) tint mask;
        Vm.Mapping.remap_tint (System.mapping batched) tint mask
    | Scenario.Flush_tlb ->
        flush ();
        System.flush_tlb scalar;
        System.flush_tlb batched
    | Scenario.Flush_cache ->
        flush ();
        System.flush_cache scalar;
        System.flush_cache batched
  in
  try
    List.iter
      (fun e ->
        apply e;
        incr step)
      sc.events;
    flush ();
    compare_totals (System.total scalar) (System.total batched);
    for set = 0 to cfg.System.cache.Sassoc.sets - 1 do
      let r = Sassoc.lines_in_set (System.cache scalar) set in
      let b = Sassoc.lines_in_set (System.cache batched) set in
      if r <> b then
        failf "final contents of set %d differ: scalar has %d lines, \
               batched %d"
          set (List.length r) (List.length b)
    done;
    let rc = Vm.Mapping.cost (System.mapping scalar) in
    let bc = Vm.Mapping.cost (System.mapping batched) in
    if rc <> bc then
      failf "reconfiguration costs differ: scalar (%a), batched (%a)"
        Vm.Mapping.pp_cost rc Vm.Mapping.pp_cost bc;
    Agree
  with Found detail -> Diverge { step = !step; detail }
