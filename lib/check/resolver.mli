(** A naive mirror of the {!Vm.Mapping} stack: page table, tint table, TLB.

    Association lists and linear scans throughout, but the same observable
    semantics — in particular the paper's staleness rule: the TLB caches
    {e tint snapshots}, so after a page is re-tinted the stale tint keeps
    being served until that entry is flushed or evicted, while remapping a
    tint's bit vector is visible immediately because resolution goes through
    the current tint table. All the Figure 3 cost counters (PTE writes,
    tint-table writes, TLB entry/full flushes) are mirrored so {!Diff} can
    compare them against the real stack. *)

type t

val create : page_size:int -> columns:int -> tlb_entries:int -> t

val resolve : t -> int -> Cache.Bitmask.t * Vm.Tint.t * Vm.Tlb.outcome
(** Same contract as {!Vm.Mapping.resolve}. *)

val remap_tint : t -> Vm.Tint.t -> Cache.Bitmask.t -> unit
val retint_region : t -> base:int -> size:int -> Vm.Tint.t -> int
val flush_tlb : t -> unit

val tlb_hits : t -> int
val tlb_misses : t -> int
val cost : t -> Vm.Mapping.cost
