(** The differential runner.

    Replays a {!Scenario} through the real simulator stack
    ({!Cache.Sassoc} + {!Vm.Mapping}) and through the naive models
    ({!Oracle} + {!Resolver}) in lockstep, comparing after every event:
    resolved masks and TLB outcomes, hit/miss results, victim ways, evicted
    lines — plus the {!Invariant} checks — and, at the end of the trace,
    full cache contents, the complete statistics record and the Figure 3
    cost counters. On divergence the scenario is {!shrink}-ed: first
    truncated to the shortest diverging prefix, then greedily stripped of
    events that do not contribute, leaving a minimal replayable repro. *)

type divergence = {
  step : int;
      (** index of the event at which the divergence was observed; equal to
          the event count when only the final-state comparison differs *)
  detail : string;
}

type outcome =
  | Agree
  | Diverge of divergence

val run_scenario : ?bug:Oracle.bug -> ?fast_path:bool -> Scenario.t -> outcome
(** [bug] plants the defect in the {e oracle} side ({!Oracle.Fast_path} is
    the exception: it corrupts the real-side batch builder), for
    mutation-testing the harness itself. [fast_path] (default [false])
    replays the real side through the batched {!Cache.Sassoc.access_trace}
    entry point, batching consecutive accesses that resolve to the same
    column mask; per-access result comparison is skipped (the batched entry
    point returns no results) and divergence is caught by per-batch
    invariants plus the final-state comparison. *)

val shrink : ?bug:Oracle.bug -> ?fast_path:bool -> Scenario.t -> Scenario.t
(** Smallest diverging scenario found; returns the input unchanged if it
    does not diverge. [fast_path] selects the driver, as in
    {!run_scenario}. *)

(** Aggregate coverage of a {!soak} run, so tests can assert the batch
    really exercised all policies and the geometry extremes. *)
type summary = {
  iters : int;
  events : int;
  accesses : int;
  retints : int;
  remaps : int;
  policies : string list;  (** distinct policy families seen, sorted *)
  min_ways : int;
  max_ways : int;
  fast_path_iters : int;
      (** scenarios replayed through the batched fast-path driver *)
  machine_iters : int;
      (** scenarios additionally replayed through the machine-level
          differential ({!Machine_diff}) *)
  mrc_iters : int;
      (** scenarios additionally checked through the stack-distance
          differential ({!Mrc_diff}) *)
  sample_iters : int;
      (** scenarios additionally checked through the sampled-vs-exact
          error-bound differential ({!Sample_diff}) *)
  shard_iters : int;
      (** scenarios additionally checked through the sharded-vs-serial
          stack-distance differential ({!Shard_diff}): every reading of
          the merged sharded engines must equal the serial engine's
          exactly *)
  traffic_iters : int;
      (** scenarios whose access stream came from a traffic-shaped
          {!Workloads.Gen} generator ({!Gen.traffic_scenario}) rather than
          uniform noise *)
  wcet_iters : int;
      (** iterations that additionally ran the static cache-analysis
          soundness check ({!Wcet_diff.run_one}) on a random program *)
  event_iters : int;
      (** scenarios additionally replayed through the event-core count
          differential ({!Event_diff}): blocking in-order vs MSHR/DRAM
          event timing, all functional counts compared *)
}

type failure = {
  iteration : int;  (** 0-based iteration that diverged *)
  scenario : Scenario.t;  (** already shrunk *)
  divergence : divergence;  (** divergence of the shrunk scenario *)
  fast_path : bool;
      (** which driver diverged; replay the repro with the same one *)
  machine : bool;
      (** the divergence came from the machine-level differential
          ({!Machine_diff.run_scenario}); [fast_path] is [false] then *)
  mrc : bool;
      (** the divergence came from the stack-distance differential
          ({!Mrc_diff.run_scenario}); [fast_path] and [machine] are [false]
          then *)
  sample : bool;
      (** the divergence came from the sampled-vs-exact error-bound
          differential ({!Sample_diff.run_scenario}); the other driver
          flags are [false] then *)
  shard : bool;
      (** the divergence came from the sharded-vs-serial differential
          ({!Shard_diff.run_scenario}); the other driver flags are [false]
          then *)
  gen : bool;
      (** the failure is a generator-containment violation: a
          traffic-shaped scenario emitted an address outside the
          generator's declared range. The repro is the single offending
          access; no driver divergence is involved, so the other driver
          flags are [false] then *)
  wcet : bool;
      (** the failure is a static-bound violation from
          {!Wcet_diff.run_one}: the divergence detail carries the seed,
          the violated bound and the generated program; the scenario field
          is just the iteration's (unrelated) scenario and the other
          driver flags are [false] then *)
  event : bool;
      (** the divergence came from the event-core count differential
          ({!Event_diff.run_scenario}); the other driver flags are [false]
          then *)
}

val soak :
  ?bug:Oracle.bug -> ?max_events:int -> ?progress:(int -> unit) ->
  seed:int -> iters:int -> unit -> (summary, failure * summary) result
(** Generate and check [iters] scenarios from [seed]. The first few
    iterations force coverage of the extremes (1 way,
    {!Cache.Bitmask.max_columns} ways, every policy family); the rest are
    fully random. Odd iterations replay the real side through the batched
    fast-path driver; even iterations additionally run the whole scenario
    through the machine-level differential ({!Machine_diff}), so every
    batched entry point soaks equally; every fourth iteration also validates
    the stack-distance engine against exact per-associativity LRU replays
    ({!Mrc_diff}), and the remaining quarter slot checks the set-sharded
    parallel engines against the serial one reading-for-reading
    ({!Shard_diff}), which is what catches the {!Oracle.Shard} merge
    mutation. After the forced preamble, every third iteration draws
    its access stream from a traffic-shaped generator
    ({!Gen.traffic_scenario}) and additionally verifies the generator's
    containment contract — every address inside its declared range — which
    is what catches the {!Oracle.Gen} mutation; and every fifth runs the
    static cache-analysis soundness check ({!Wcet_diff.run_one}) on its own
    random program, which is what catches the {!Oracle.Wcet} mutation.
    Every third iteration (preamble included) also replays the scenario
    through the event-core count differential ({!Event_diff}), which is
    what catches the {!Oracle.Event} MSHR-merge mutation. Stops at the
    first divergence. [progress] is called with each completed iteration
    index. *)

val pp_divergence : Format.formatter -> divergence -> unit
val pp_failure : Format.formatter -> failure -> unit
val pp_summary : Format.formatter -> summary -> unit
