(** A self-contained differential test case.

    A scenario bundles a cache geometry, a VM configuration and a sequence
    of events — accesses interleaved with the two reconfiguration operations
    (re-tint, re-map) and flushes — exactly what {!Diff} replays through the
    real simulator and the {!Oracle}. Scenarios have a stable one-line-per-
    event textual form so a shrunk counterexample can be pasted into a bug
    report and replayed verbatim with {!of_string}. *)

type event =
  | Access of Memtrace.Access.t
  | Retint of { base : int; size : int; tint : string }
      (** re-tint the pages of [base, base+size) — PTE writes + TLB entry
          flushes *)
  | Remap of { tint : string; mask : Cache.Bitmask.t }
      (** point a tint at a new column set — one tint-table write *)
  | Flush_tlb
  | Flush_cache

type t = {
  cache : Cache.Sassoc.config;
  page_size : int;
  tlb_entries : int;
  events : event list;
}

val length : t -> int
val accesses : t -> int
(** Number of [Access] events. *)

val truncate : t -> int -> t
(** Keep the first [n] events. *)

val remove_event : t -> int -> t
(** Drop the event at an index. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t
(** Inverse of {!to_string}. Raises [Invalid_argument] on malformed input. *)

val equal : t -> t -> bool
