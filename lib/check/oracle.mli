(** A deliberately naive, obviously-correct model of the column cache.

    This is the trusted half of the differential harness: it implements the
    exact observable semantics of {!Cache.Sassoc} — lookup over every way,
    replacement restricted to a software-supplied column mask, the four
    replacement policies, eviction/writeback accounting and the three-C miss
    classification — but with the dumbest data structures that can possibly
    work: an association list of resident lines, explicit per-policy recency
    lists, linear scans everywhere. No packed arrays, no tag arithmetic, no
    shared state with the real simulator. When {!Diff} replays the same
    trace through both and they agree, the agreement is evidence, not
    tautology.

    The only sophistication retained is the {e random} policy's xorshift64*
    stream, reproduced bit-for-bit so that a shared seed makes the two
    simulators' random victim choices comparable. *)

(** Intentional bugs for mutation-testing the harness itself: a conformance
    harness that cannot catch a planted bug proves nothing. *)
type bug =
  | Mru_instead_of_lru
      (** under LRU, evict the most recently used allowed way *)
  | Ignore_mask  (** choose victims from all ways, ignoring the column mask *)
  | Skip_writeback_count  (** forget to count writebacks of dirty victims *)
  | Fast_path
      (** planted in {!Diff}'s batched real-side driver, not here: the batch
          fed to [Sassoc.access_trace] demotes writes to reads, losing dirty
          bits. Proves the fast-path routing can catch batching bugs. *)
  | Machine_fast_path
      (** planted in {!Machine_diff}'s batched side, not here: the packed
          batch fed to [Machine.System.run_packed] zeroes every access's
          [gap], corrupting instruction and cycle accounting. Proves the
          machine-level soak can catch batched-replay bugs. *)
  | Mrc
      (** planted in {!Mrc_diff}'s stack-distance side, not here: the
          accesses fed to [Cache.Stack_dist] demote writes to reads, losing
          dirty bits and hence writeback counts. Proves the stack-distance
          differential can catch engine bugs. *)
  | Sample
      (** planted in {!Sample_diff}'s estimator, not here: the sampled
          miss-curve numerator skips the [1/rate] rescale while the
          normalizer keeps it, deflating the estimated miss-ratio curve by
          the effective sampling rate. Proves the sampled-vs-exact error
          bound can catch a forgotten rescale. *)
  | Gen
      (** planted in {!Workloads.Gen}'s Zipf sampler via its [perturb]
          hook, not here: every sampled rank is shifted by one without
          re-clamping, so the top rank escapes the generator's declared
          address range. Proves the soak's containment check on
          generator-backed traffic scenarios catches sampler bugs. *)
  | Wcet
      (** planted in {!Ir.Cache_analysis}'s must-domain join, not here: the
          join becomes union-with-min-age instead of
          intersection-with-max-age, an unsound over-approximation that
          claims always-hits across diverging paths. Proves
          {!Wcet_diff}'s bound-vs-replay comparison can catch an unsound
          abstract domain. *)
  | Event
      (** planted in {!Machine.System}'s event-core MSHR-merge path, not
          here: a delayed hit merged into an in-flight fill is replayed
          against the cache when the fill lands, double-counting the
          reference. Proves {!Event_diff}'s count comparison against the
          blocking in-order oracle catches merge bugs. *)
  | Shard
      (** planted in {!Shard_diff}'s merge loop, not here: the last worker
          domain's shard is dropped from the merge, so every count owned
          by its sets vanishes from the sharded result. Proves the exact
          sharded-vs-serial equality check catches a broken join/merge. *)

val bug_to_string : bug -> string

type t

val create : ?bug:bug -> Cache.Sassoc.config -> t
(** [bug] plants an intentional defect (default: none — faithful model). *)

val geometry : t -> Cache.Sassoc.config
val stats : t -> Cache.Stats.t

val access :
  t -> ?mask:Cache.Bitmask.t -> kind:Memtrace.Access.kind -> int ->
  Cache.Sassoc.result
(** Same contract as {!Cache.Sassoc.access}, including the
    [Invalid_argument] on an empty effective mask. *)

val fill : t -> ?mask:Cache.Bitmask.t -> int -> Cache.Sassoc.result
(** Same contract as {!Cache.Sassoc.fill}. *)

val probe : t -> int -> int option
val way_of_line : t -> int -> int option
val valid_lines : t -> int

val lines_in_set : t -> int -> (int * int) list
(** [(way, line)] pairs of a set, ascending by way — comparable directly
    with {!Cache.Sassoc.lines_in_set}. *)

val invalidate_line : t -> int -> unit

val flush : t -> unit
(** Like {!Cache.Sassoc.flush}: contents are dropped, statistics and
    replacement state survive. *)

val victim_ref :
  Cache.Policy.t -> set:int -> allowed:Cache.Bitmask.t ->
  valid:Cache.Bitmask.t -> int
(** The naive, list-based specification of {!Cache.Policy.victim}: build the
    candidate list, prefer the lowest empty allowed way, otherwise scan per
    policy (smallest stamp with ties to the highest way for LRU/FIFO; first
    clear MRU bit, else first candidate, for bit-PLRU; the n-th candidate
    from the shared xorshift64* stream for Random). The allocation-free
    bitwise scans in [Policy] are property-tested against this — give each
    side its own [Policy.t] with identical history, since Random draws from
    (and advances) the stream. *)
