(** Differential check for the event-driven timing core.

    Replays a {!Scenario} through two identical {!Machine.System}s: one
    through the blocking in-order batched path ([run_packed], the oracle)
    and one through the event core ([run_packed_events], MSHRs + banked
    DRAM), with reconfiguration events applied to both in scenario order.
    After every batch and at the end, every functional count —
    hit/miss/writeback/eviction, three-C classes, fills per way, TLB and
    L2 counters, instructions, prefetches, final cache contents,
    reconfiguration costs — must be byte-identical; [cycles] is the one
    field never compared, because retiming is exactly what the event core
    is for. The event geometry (MLP, banks, row bytes, queue depth) is
    derived deterministically from the scenario so structural stalls, row
    conflicts and genuine overlap all occur without drawing from the
    soak's RNG streams.

    [bug = Some Event] plants the MSHR-merge mutation on the event side
    (see {!Oracle.bug}). *)

type divergence = {
  step : int;
  detail : string;
}

type outcome =
  | Agree
  | Diverge of divergence

val run_scenario : ?bug:Oracle.bug -> Scenario.t -> outcome
