(** The machine-level differential runner.

    Where {!Diff} pins the cache + VM layers against naive models, this
    driver pins the {e whole machine}'s batched replay against its scalar
    reference: the same {!Scenario} is replayed on two identical
    {!Machine.System.t}s — one access at a time through {!Machine.System.access},
    and in packed batches through {!Machine.System.run_packed} (flushed at
    every reconfiguration event). After each batch and at the end, the full
    {!Machine.Run_stats.t} — instructions, cycles, TLB counters, every cache
    statistic — plus final cache contents and the TLB-residency-dependent
    reconfiguration costs must agree exactly. This is what makes the batched
    page-crossing memoization trustworthy: any skipped TLB touch, stale mask
    or miscounted cycle shows up as a divergence here. *)

type divergence = {
  step : int;
      (** index of the event at which the divergence was observed; equal to
          the event count when only the final-state comparison differs *)
  detail : string;
}

type outcome =
  | Agree
  | Diverge of divergence

val run_scenario : ?bug:Oracle.bug -> Scenario.t -> outcome
(** [bug] plants a defect for mutation-testing the harness:
    {!Oracle.Machine_fast_path} zeroes every gap in the batched side's
    packed batches (other bugs have no effect here — they live in the
    {!Oracle}). *)
