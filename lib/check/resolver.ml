module Bitmask = Cache.Bitmask
module Tint = Vm.Tint

type t = {
  page_size : int;
  columns : int;
  tlb_entries : int;
  (* page table: explicitly tinted pages only; everything else is default *)
  mutable ptes : (int * Tint.t) list;
  mutable pte_writes : int;
  (* tint table: explicitly mapped tints only; everything else is full *)
  mutable tints : (Tint.t * Bitmask.t) list;
  mutable tint_writes : int;
  (* TLB: resident pages with their tint snapshot, most recent first *)
  mutable tlb : (int * Tint.t) list;
  mutable hits : int;
  mutable misses : int;
  mutable full_flushes : int;
  mutable entry_flushes : int;
}

let create ~page_size ~columns ~tlb_entries =
  {
    page_size;
    columns;
    tlb_entries;
    ptes = [];
    pte_writes = 0;
    tints = [];
    tint_writes = 0;
    tlb = [];
    hits = 0;
    misses = 0;
    full_flushes = 0;
    entry_flushes = 0;
  }

let page_of_addr t addr = addr / t.page_size

let pte_tint t page =
  match List.assoc_opt page t.ptes with
  | Some tint -> tint
  | None -> Tint.default

let mask_of_tint t tint =
  match
    List.find_opt (fun (tint', _) -> Tint.equal tint tint') t.tints
  with
  | Some (_, mask) -> mask
  | None -> Bitmask.full ~n:t.columns

let tlb_lookup t page =
  match List.assoc_opt page t.tlb with
  | Some snapshot ->
      t.hits <- t.hits + 1;
      t.tlb <- (page, snapshot) :: List.remove_assoc page t.tlb;
      (snapshot, Vm.Tlb.Hit)
  | None ->
      t.misses <- t.misses + 1;
      let tint = pte_tint t page in
      let tlb = (page, tint) :: t.tlb in
      t.tlb <-
        (if List.length tlb > t.tlb_entries then
           List.filteri (fun i _ -> i < t.tlb_entries) tlb
         else tlb);
      (tint, Vm.Tlb.Miss)

let resolve t addr =
  let tint, outcome = tlb_lookup t (page_of_addr t addr) in
  (mask_of_tint t tint, tint, outcome)

let remap_tint t tint mask =
  if Bitmask.is_empty mask then invalid_arg "Resolver.remap_tint: empty mask";
  if not (Bitmask.subset mask (Bitmask.full ~n:t.columns)) then
    invalid_arg "Resolver.remap_tint: mask names a column beyond the cache";
  t.tints <-
    (tint, mask) :: List.filter (fun (tint', _) -> not (Tint.equal tint tint')) t.tints;
  t.tint_writes <- t.tint_writes + 1

let set_tint t ~page tint =
  t.ptes <-
    (if Tint.equal tint Tint.default then List.remove_assoc page t.ptes
     else (page, tint) :: List.remove_assoc page t.ptes);
  t.pte_writes <- t.pte_writes + 1

let flush_page t page =
  if List.mem_assoc page t.tlb then begin
    t.tlb <- List.remove_assoc page t.tlb;
    t.entry_flushes <- t.entry_flushes + 1
  end

let retint_region t ~base ~size tint =
  if size <= 0 then invalid_arg "Resolver.retint_region: size must be positive";
  let first = page_of_addr t base in
  let last = page_of_addr t (base + size - 1) in
  for page = first to last do
    set_tint t ~page tint;
    flush_page t page
  done;
  last - first + 1

let flush_tlb t =
  t.tlb <- [];
  t.full_flushes <- t.full_flushes + 1

let tlb_hits t = t.hits
let tlb_misses t = t.misses

let cost t =
  {
    Vm.Mapping.pte_writes = t.pte_writes;
    tint_table_writes = t.tint_writes;
    tlb_entry_flushes = t.entry_flushes;
    tlb_full_flushes = t.full_flushes;
  }
