module Sassoc = Cache.Sassoc
module Bitmask = Cache.Bitmask
module Stats = Cache.Stats
module Tint = Vm.Tint

type divergence = {
  step : int;
  detail : string;
}

type outcome =
  | Agree
  | Diverge of divergence

exception Found of string

let failf fmt = Format.kasprintf (fun s -> raise (Found s)) fmt

let pp_result ppf = function
  | Sassoc.Hit { way } -> Format.fprintf ppf "hit way=%d" way
  | Sassoc.Miss { way; evicted_line = None } ->
      Format.fprintf ppf "miss way=%d evicted=-" way
  | Sassoc.Miss { way; evicted_line = Some l } ->
      Format.fprintf ppf "miss way=%d evicted=line:%d" way l

let pp_outcome ppf = function
  | Vm.Tlb.Hit -> Format.fprintf ppf "hit"
  | Vm.Tlb.Miss -> Format.fprintf ppf "miss"

let check = function Ok () -> () | Error msg -> raise (Found msg)

(* Compare the VM-resolution half of one access (available on both drivers). *)
let compare_resolution ~rmask ~omask ~rtint ~otint ~routcome ~ooutcome =
  if not (Bitmask.equal rmask omask) then
    failf "resolved mask differs: real %a, oracle %a" Bitmask.pp rmask
      Bitmask.pp omask;
  if not (Tint.equal rtint otint) then
    failf "resolved tint differs: real %a, oracle %a" Tint.pp rtint Tint.pp
      otint;
  if routcome <> ooutcome then
    failf "tlb outcome differs: real %a, oracle %a" pp_outcome routcome
      pp_outcome ooutcome

(* Compare the two sides after one access (per-access driver only). *)
let compare_access ~rmask ~omask ~rtint ~otint ~routcome ~ooutcome ~rres ~ores
    =
  compare_resolution ~rmask ~omask ~rtint ~otint ~routcome ~ooutcome;
  if rres <> ores then
    failf "cache result differs: real %a, oracle %a" pp_result rres pp_result
      ores

let compare_stats (r : Stats.t) (o : Stats.t) =
  let pair name a b = if a <> b then failf "final %s differ: real %d, oracle %d" name a b in
  pair "accesses" r.accesses o.accesses;
  pair "hits" r.hits o.hits;
  pair "misses" r.misses o.misses;
  pair "cold misses" r.cold_misses o.cold_misses;
  pair "capacity misses" r.capacity_misses o.capacity_misses;
  pair "conflict misses" r.conflict_misses o.conflict_misses;
  pair "evictions" r.evictions o.evictions;
  pair "writebacks" r.writebacks o.writebacks;
  if r.fills_per_way <> o.fills_per_way then
    failf "final fills-per-way differ: real [%s], oracle [%s]"
      (String.concat ";" (Array.to_list (Array.map string_of_int r.fills_per_way)))
      (String.concat ";" (Array.to_list (Array.map string_of_int o.fills_per_way)))

let compare_costs (r : Vm.Mapping.cost) (o : Vm.Mapping.cost) =
  if r <> o then
    failf "final reconfiguration costs differ: real (%a), oracle (%a)"
      Vm.Mapping.pp_cost r Vm.Mapping.pp_cost o

let run_scenario ?bug ?(fast_path = false) (sc : Scenario.t) =
  let cfg = sc.cache in
  let real = Sassoc.create cfg in
  let mapping =
    Vm.Mapping.create ~tlb_entries:sc.tlb_entries ~page_size:sc.page_size
      ~columns:cfg.Sassoc.ways ()
  in
  let oracle = Oracle.create ?bug cfg in
  let resolver =
    Resolver.create ~page_size:sc.page_size ~columns:cfg.Sassoc.ways
      ~tlb_entries:sc.tlb_entries
  in
  (* The LRU monitor consumes per-access results, which the batched driver
     does not produce. *)
  let monitor =
    if cfg.Sassoc.policy = Cache.Policy.Lru && bug = None && not fast_path then
      Some (Invariant.Lru_monitor.create cfg)
    else None
  in
  (* Union of the masks each set was filled under, for the occupancy
     invariant. *)
  let fill_masks = Hashtbl.create 16 in
  let note_fill_mask set mask =
    let prev =
      Option.value ~default:Bitmask.empty (Hashtbl.find_opt fill_masks set)
    in
    Hashtbl.replace fill_masks set (Bitmask.union prev mask)
  in
  let step = ref 0 in
  (* Fast-path batching: consecutive accesses that resolve to the same column
     mask are queued and replayed through [Sassoc.access_trace] in one call —
     the same batching shape real callers use. The oracle still steps one
     access at a time; per-access result comparison is impossible here (the
     batched entry point returns none), so divergence is caught by the
     final-state comparison plus the per-batch invariants. *)
  let pending = ref [] in
  let pending_mask = ref Bitmask.empty in
  let pending_sets = ref [] in
  let flush_batch () =
    match !pending with
    | [] -> ()
    | evs ->
        let arr = Array.of_list (List.rev evs) in
        (* The planted fast-path bug lives here, on the real side: writes are
           demoted to reads when building the batch, losing dirty bits. *)
        let arr =
          if bug = Some Oracle.Fast_path then
            Array.map
              (fun (a : Memtrace.Access.t) ->
                match a.kind with
                | Memtrace.Access.Write -> { a with kind = Memtrace.Access.Read }
                | Memtrace.Access.Read | Memtrace.Access.Ifetch -> a)
              arr
          else arr
        in
        Sassoc.access_trace real ~mask:!pending_mask
          (Memtrace.Trace.of_array arr);
        pending := [];
        check (Invariant.stats_conserved (Sassoc.stats real));
        List.iter
          (fun set ->
            check
              (Invariant.occupancy_within real ~set
                 ~allowed:(Hashtbl.find fill_masks set)))
          (List.sort_uniq compare !pending_sets);
        pending_sets := []
  in
  let apply event =
    match (event : Scenario.event) with
    | Scenario.Access a when fast_path ->
        let rmask, rtint, routcome = Vm.Mapping.resolve mapping a.addr in
        let omask, otint, ooutcome = Resolver.resolve resolver a.addr in
        ignore (Oracle.access oracle ~mask:omask ~kind:a.kind a.addr);
        compare_resolution ~rmask ~omask ~rtint ~otint ~routcome ~ooutcome;
        if !pending <> [] && not (Bitmask.equal rmask !pending_mask) then
          flush_batch ();
        pending_mask := rmask;
        pending := a :: !pending;
        (* Note the mask for every batched access, not just misses: a sound
           over-approximation of the fill-mask union the per-access driver
           tracks, keeping the occupancy invariant checkable per batch. *)
        let set = Sassoc.set_of_addr real a.addr in
        note_fill_mask set rmask;
        pending_sets := set :: !pending_sets
    | Scenario.Access a ->
        let rmask, rtint, routcome = Vm.Mapping.resolve mapping a.addr in
        let omask, otint, ooutcome = Resolver.resolve resolver a.addr in
        let rres = Sassoc.access real ~mask:rmask ~kind:a.kind a.addr in
        let ores = Oracle.access oracle ~mask:omask ~kind:a.kind a.addr in
        compare_access ~rmask ~omask ~rtint ~otint ~routcome ~ooutcome ~rres
          ~ores;
        check (Invariant.victim_in_mask ~mask:rmask rres);
        check (Invariant.stats_conserved (Sassoc.stats real));
        (match rres with
        | Sassoc.Miss _ ->
            let set = Sassoc.set_of_addr real a.addr in
            note_fill_mask set rmask;
            check
              (Invariant.occupancy_within real ~set
                 ~allowed:(Hashtbl.find fill_masks set))
        | Sassoc.Hit _ -> ());
        Option.iter
          (fun m ->
            check (Invariant.Lru_monitor.note m ~mask:rmask ~kind:a.kind a.addr rres))
          monitor
    | Scenario.Retint { base; size; tint } ->
        let tint = Tint.make tint in
        let rn = Vm.Mapping.retint_region mapping ~base ~size tint in
        let on = Resolver.retint_region resolver ~base ~size tint in
        if rn <> on then
          failf "retint page count differs: real %d, oracle %d" rn on
    | Scenario.Remap { tint; mask } ->
        let tint = Tint.make tint in
        Vm.Mapping.remap_tint mapping tint mask;
        Resolver.remap_tint resolver tint mask
    | Scenario.Flush_tlb ->
        Vm.Tlb.flush (Vm.Mapping.tlb mapping);
        Resolver.flush_tlb resolver
    | Scenario.Flush_cache ->
        (* Deferred accesses must land before the flush discards contents. *)
        flush_batch ();
        Sassoc.flush real;
        Oracle.flush oracle;
        Option.iter Invariant.Lru_monitor.flush monitor
  in
  try
    List.iter
      (fun e ->
        apply e;
        incr step)
      sc.events;
    flush_batch ();
    (* Final-state comparison: statistics, full contents, VM costs. *)
    compare_stats (Sassoc.stats real) (Oracle.stats oracle);
    for set = 0 to cfg.Sassoc.sets - 1 do
      let r = Sassoc.lines_in_set real set in
      let o = Oracle.lines_in_set oracle set in
      if r <> o then
        failf "final contents of set %d differ: real has %d lines, oracle %d \
               (first mismatch: %s)"
          set (List.length r) (List.length o)
          (let pp (w, l) = Printf.sprintf "way %d line %d" w l in
           match
             List.find_opt (fun p -> not (List.mem p o)) r
           with
           | Some p -> "real-only " ^ pp p
           | None -> (
               match List.find_opt (fun p -> not (List.mem p r)) o with
               | Some p -> "oracle-only " ^ pp p
               | None -> "ordering"))
    done;
    compare_costs (Vm.Mapping.cost mapping) (Resolver.cost resolver);
    let rtlb = Vm.Mapping.tlb mapping in
    if Vm.Tlb.hits rtlb <> Resolver.tlb_hits resolver
       || Vm.Tlb.misses rtlb <> Resolver.tlb_misses resolver
    then
      failf "final TLB counters differ: real %d/%d, oracle %d/%d"
        (Vm.Tlb.hits rtlb) (Vm.Tlb.misses rtlb)
        (Resolver.tlb_hits resolver)
        (Resolver.tlb_misses resolver);
    Agree
  with Found detail -> Diverge { step = !step; detail }

(* The machine-level driver lives in [Machine_diff]; adapt its outcome so
   the shrinker and the soak treat both drivers uniformly. *)
let run_machine ?bug sc =
  match Machine_diff.run_scenario ?bug sc with
  | Machine_diff.Agree -> Agree
  | Machine_diff.Diverge { step; detail } -> Diverge { step; detail }

(* Likewise for the stack-distance differential ([Mrc_diff]). *)
let run_mrc ?bug sc =
  match Mrc_diff.run_scenario ?bug sc with
  | Mrc_diff.Agree -> Agree
  | Mrc_diff.Diverge { step; detail } -> Diverge { step; detail }

(* Likewise for the sampled-vs-exact differential ([Sample_diff]). *)
let run_sample ?bug sc =
  match Sample_diff.run_scenario ?bug sc with
  | Sample_diff.Agree -> Agree
  | Sample_diff.Diverge { step; detail } -> Diverge { step; detail }

(* Likewise for the sharded-vs-serial differential ([Shard_diff]). *)
let run_shard ?bug sc =
  match Shard_diff.run_scenario ?bug sc with
  | Shard_diff.Agree -> Agree
  | Shard_diff.Diverge { step; detail } -> Diverge { step; detail }

(* Likewise for the event-core differential ([Event_diff]). *)
let run_event ?bug sc =
  match Event_diff.run_scenario ?bug sc with
  | Event_diff.Agree -> Agree
  | Event_diff.Diverge { step; detail } -> Diverge { step; detail }

(* --- shrinking ---------------------------------------------------------- *)

let shrink_by (run : Scenario.t -> outcome) sc =
  match run sc with
  | Agree -> sc
  | Diverge { step; _ } ->
      (* Shortest diverging prefix first: everything after the divergence is
         noise by construction. *)
      let sc = ref (Scenario.truncate sc (min (step + 1) (Scenario.length sc))) in
      let progressed = ref true in
      while !progressed do
        progressed := false;
        (* Re-truncate: a removal may have moved the divergence earlier. *)
        (match run !sc with
        | Diverge { step; _ } when step + 1 < Scenario.length !sc ->
            sc := Scenario.truncate !sc (step + 1);
            progressed := true
        | _ -> ());
        (* Greedy deletion: keep any single-event removal that still
           diverges. *)
        let i = ref 0 in
        while !i < Scenario.length !sc do
          let candidate = Scenario.remove_event !sc !i in
          match run candidate with
          | Diverge _ ->
              sc := candidate;
              progressed := true
          | Agree -> incr i
        done
      done;
      !sc

let shrink ?bug ?fast_path sc = shrink_by (run_scenario ?bug ?fast_path) sc

(* --- soak driver -------------------------------------------------------- *)

type summary = {
  iters : int;
  events : int;
  accesses : int;
  retints : int;
  remaps : int;
  policies : string list;
  min_ways : int;
  max_ways : int;
  fast_path_iters : int;
  machine_iters : int;
  mrc_iters : int;
  sample_iters : int;
  shard_iters : int;
  traffic_iters : int;
  wcet_iters : int;
  event_iters : int;
}

type failure = {
  iteration : int;
  scenario : Scenario.t;
  divergence : divergence;
  fast_path : bool;
  machine : bool;
  mrc : bool;
  sample : bool;
  shard : bool;
  gen : bool;
  wcet : bool;
  event : bool;
}

let policy_family = function
  | Cache.Policy.Lru -> "lru"
  | Cache.Policy.Fifo -> "fifo"
  | Cache.Policy.Bit_plru -> "plru"
  | Cache.Policy.Random _ -> "random"

(* The first iterations pin the dimensions the acceptance bar names: both
   geometry extremes and every policy family. *)
let forced_ways = [| 1; Bitmask.max_columns; 2; 4; 3; 8; 16; Bitmask.max_columns |]

let soak ?bug ?max_events ?(progress = fun _ -> ()) ~seed ~iters () =
  let rng = Prng.create ~seed in
  (* Dedicated stream for the wcet check's program seeds: drawing them from
     [rng] would shift every scenario generated after the first wcet
     iteration, perturbing the coverage (and the statistical checks) of all
     the other drivers whenever this rotation changes. *)
  let wcet_rng = Prng.create ~seed:(seed lxor 0x57ce7) in
  let summary =
    ref
      {
        iters = 0;
        events = 0;
        accesses = 0;
        retints = 0;
        remaps = 0;
        policies = [];
        min_ways = max_int;
        max_ways = 0;
        fast_path_iters = 0;
        machine_iters = 0;
        mrc_iters = 0;
        sample_iters = 0;
        shard_iters = 0;
        traffic_iters = 0;
        wcet_iters = 0;
        event_iters = 0;
      }
  in
  let account (sc : Scenario.t) ~fast_path ~machine ~mrc ~sample ~shard
      ~traffic ~wcet ~event =
    let s = !summary in
    let count f = List.length (List.filter f sc.events) in
    let ways = sc.cache.Sassoc.ways in
    summary :=
      {
        iters = s.iters + 1;
        events = s.events + Scenario.length sc;
        accesses = s.accesses + Scenario.accesses sc;
        retints =
          s.retints
          + count (function Scenario.Retint _ -> true | _ -> false);
        remaps =
          s.remaps + count (function Scenario.Remap _ -> true | _ -> false);
        policies =
          (let f = policy_family sc.cache.Sassoc.policy in
           if List.mem f s.policies then s.policies
           else List.sort String.compare (f :: s.policies));
        min_ways = min s.min_ways ways;
        max_ways = max s.max_ways ways;
        fast_path_iters = s.fast_path_iters + (if fast_path then 1 else 0);
        machine_iters = s.machine_iters + (if machine then 1 else 0);
        mrc_iters = s.mrc_iters + (if mrc then 1 else 0);
        sample_iters = s.sample_iters + (if sample then 1 else 0);
        shard_iters = s.shard_iters + (if shard then 1 else 0);
        traffic_iters = s.traffic_iters + (if traffic then 1 else 0);
        wcet_iters = s.wcet_iters + (if wcet then 1 else 0);
        event_iters = s.event_iters + (if event then 1 else 0);
      }
  in
  (* The containment contract on generator-backed scenarios: every emitted
     address lies inside the generator's declared [0, limit). A violation is
     a generator bug (the [--inject-bug gen] mutation plants exactly one),
     reported with a one-event repro — the offending access — since the
     divergence is between the trace and its declaration, not between
     drivers. *)
  let contained (sc : Scenario.t) ~limit =
    let rec go i = function
      | [] -> Ok ()
      | Scenario.Access a :: _
        when a.Memtrace.Access.addr < 0 || a.Memtrace.Access.addr >= limit ->
          Error (i, a)
      | _ :: rest -> go (i + 1) rest
    in
    go 0 sc.Scenario.events
  in
  let rec loop i =
    if i >= iters then Ok !summary
    else begin
      (* After the forced-coverage preamble, every third scenario draws its
         accesses from a traffic-shaped generator stream instead of uniform
         noise; the same drivers replay it, plus the containment check. *)
      let traffic = i >= Array.length forced_ways && i mod 3 = 2 in
      let sc, gen_limit =
        if traffic then
          let perturb = bug = Some Oracle.Gen in
          let sc, limit = Gen.traffic_scenario ?max_events ~perturb rng in
          (sc, Some limit)
        else if i < Array.length forced_ways then
          ( Gen.scenario ~ways:forced_ways.(i)
              ~policy:(List.nth Cache.Policy.all_kinds (i mod 4))
              ?max_events rng,
            None )
        else (Gen.scenario ?max_events rng, None)
      in
      (* Odd iterations replay the real side through the batched
         [Sassoc.access_trace] driver; even iterations additionally replay
         the whole scenario through the machine-level differential
         ([Machine.System.run_packed] vs scalar [System.access]), so every
         batched entry point soaks equally; every fourth iteration also
         checks the stack-distance engine against exact per-associativity
         LRU replays ([Mrc_diff] — iteration 1 pins the max-ways extreme). *)
      let fast_path = i mod 2 = 1 in
      let machine = i mod 2 = 0 in
      let mrc = i mod 4 = 1 in
      (* ...and every fourth iteration (offset from the mrc quarter) checks
         the SHARDS-sampled estimator against the exact engine within the
         error bound ([Sample_diff]). *)
      let sample = i mod 4 = 3 in
      (* ...and the remaining quarter slot replays the scenario through the
         sharded-vs-serial stack-distance differential ([Shard_diff]):
         every reading of the merged sharded engines must equal the serial
         engine's exactly. It draws nothing from any RNG stream. *)
      let shard = i mod 4 = 2 in
      (* ...and every fifth post-preamble iteration runs the static
         cache-analysis soundness check ([Wcet_diff]) on its own random
         program, seeded from the soak stream. *)
      let wcet = i >= Array.length forced_ways && i mod 5 = 4 in
      let wcet_seed = if wcet then Prng.int wcet_rng 0x3FFFFFFF else 0 in
      (* ...and every third iteration (the preamble included, so both
         geometry extremes soak) replays the scenario through the
         event-core differential ([Event_diff]): same functional counts,
         retimed by MSHRs and banked DRAM. It draws nothing from any RNG
         stream, so the rotation cannot perturb the other drivers. *)
      let event = i mod 3 = 0 in
      account sc ~fast_path ~machine ~mrc ~sample ~shard ~traffic ~wcet
        ~event;
      let fail driver ~fast_path ~machine ~mrc ~sample ~shard ~event =
        let shrunk = shrink_by driver sc in
        let divergence =
          match driver shrunk with
          | Diverge d -> d
          | Agree -> { step = 0; detail = "shrunk scenario stopped diverging" }
        in
        Error
          ( { iteration = i; scenario = shrunk; divergence; fast_path;
              machine; mrc; sample; shard; gen = false; wcet = false; event },
            !summary )
      in
      let containment_outcome =
        match gen_limit with
        | None -> Ok ()
        | Some limit -> (
            match contained sc ~limit with
            | Ok () -> Ok ()
            | Error (step, a) ->
                Error
                  ( {
                      iteration = i;
                      scenario = { sc with Scenario.events = [ Scenario.Access a ] };
                      divergence =
                        {
                          step;
                          detail =
                            Printf.sprintf
                              "generator emitted address %d outside its \
                               declared range [0, %d)"
                              a.Memtrace.Access.addr limit;
                        };
                      fast_path = false;
                      machine = false;
                      mrc = false;
                      sample = false;
                      shard = false;
                      gen = true;
                      wcet = false;
                      event = false;
                    },
                    !summary ))
      in
      match containment_outcome with
      | Error _ as e -> e
      | Ok () -> (
          match run_scenario ?bug ~fast_path sc with
          | Diverge _ ->
              fail (run_scenario ?bug ~fast_path) ~fast_path ~machine:false
                ~mrc:false ~sample:false ~shard:false ~event:false
          | Agree -> (
              match if machine then run_machine ?bug sc else Agree with
              | Diverge _ ->
                  fail (run_machine ?bug) ~fast_path:false ~machine:true
                    ~mrc:false ~sample:false ~shard:false ~event:false
              | Agree -> (
                  match if mrc then run_mrc ?bug sc else Agree with
                  | Diverge _ ->
                      fail (run_mrc ?bug) ~fast_path:false ~machine:false
                        ~mrc:true ~sample:false ~shard:false ~event:false
                  | Agree -> (
                      match if sample then run_sample ?bug sc else Agree with
                      | Diverge _ ->
                          fail (run_sample ?bug) ~fast_path:false
                            ~machine:false ~mrc:false ~sample:true
                            ~shard:false ~event:false
                      | Agree -> (
                          match if shard then run_shard ?bug sc else Agree with
                          | Diverge _ ->
                              fail (run_shard ?bug) ~fast_path:false
                                ~machine:false ~mrc:false ~sample:false
                                ~shard:true ~event:false
                          | Agree -> (
                          match if event then run_event ?bug sc else Agree with
                          | Diverge _ ->
                              fail (run_event ?bug) ~fast_path:false
                                ~machine:false ~mrc:false ~sample:false
                                ~shard:false ~event:true
                          | Agree -> (
                              match
                                if wcet then
                                  Wcet_diff.run_one ?bug ~seed:wcet_seed ()
                                else Ok ()
                              with
                              | Error detail ->
                                  (* No scenario diverged: the repro is the
                                     seed and program carried in the
                                     detail. *)
                                  Error
                                    ( {
                                        iteration = i;
                                        scenario = sc;
                                        divergence = { step = 0; detail };
                                        fast_path = false;
                                        machine = false;
                                        mrc = false;
                                        sample = false;
                                        shard = false;
                                        gen = false;
                                        wcet = true;
                                        event = false;
                                      },
                                      !summary )
                              | Ok () ->
                                  progress i;
                                  loop (i + 1))))))))
    end
  in
  loop 0

let pp_divergence ppf d =
  Format.fprintf ppf "at event %d: %s" d.step d.detail

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v>divergence on iteration %d (%s driver), %a@,@,minimal repro (%d \
     events, %d accesses):@,%a@]"
    f.iteration
    (if f.gen then "generator containment"
     else if f.wcet then "wcet static-bound"
     else if f.event then "event-core count"
     else if f.machine then "machine batched-replay"
     else if f.mrc then "stack-distance mrc"
     else if f.sample then "sampled mrc error-bound"
     else if f.shard then "sharded-vs-serial mrc"
     else if f.fast_path then "batched fast-path"
     else "per-access")
    pp_divergence f.divergence
    (Scenario.length f.scenario)
    (Scenario.accesses f.scenario)
    Scenario.pp f.scenario

let pp_summary ppf s =
  Format.fprintf ppf
    "%d scenarios agreed (%d events, %d accesses, %d re-tints, %d re-maps, \
     %d via the batched fast path, %d via the machine batched replay, %d \
     via the stack-distance mrc differential, %d via the sampled mrc \
     error bound, %d via the sharded-vs-serial differential, %d from \
     traffic-shaped generators, %d with wcet static-bound checks, %d via \
     the event-core count differential; policies: %s; ways %s)"
    s.iters s.events s.accesses s.retints s.remaps s.fast_path_iters
    s.machine_iters s.mrc_iters s.sample_iters s.shard_iters s.traffic_iters
    s.wcet_iters s.event_iters
    (String.concat "," s.policies)
    (if s.min_ways > s.max_ways then "-"
     else Printf.sprintf "%d..%d" s.min_ways s.max_ways)
