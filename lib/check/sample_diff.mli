(** The sampled-vs-exact stack-distance differential runner.

    Where {!Mrc_diff} pins the exact {!Cache.Stack_dist} engine against
    exact per-associativity simulation, this driver pins the SHARDS-style
    {!Cache.Stack_dist.Sampled} estimator against the exact engine on the
    same access stream: the estimated miss-ratio curve's mean absolute
    error over associativities [1..W] must stay within a sample-size-aware
    bound for the configured rate, the curve's pinned index 0 must be
    exactly 1, and a second sampled engine at rate 1.0 must agree with the
    exact engine reading-for-reading (full selection is not allowed to
    approximate). Reconfiguration events are irrelevant, as in
    {!Mrc_diff}. *)

val nominal_rate : float
(** The rate the soak runs at (0.01, the acceptance bar's). *)

val min_sets : int
(** Selection floor: the [min_sets] smallest-hash sets are always kept, so
    the tiny soak geometries retain enough sampled population. *)

val hash_seed : int
(** The fixed selection-hash seed, so every soak run (and {!Shard_diff}'s
    sampled twin engines) samples the same sets for the same geometry. *)

val error_bound : sampled_accesses:int -> float
(** The asserted bound on mean absolute miss-ratio error: a calibrated
    floor plus a [1/sqrt(sampled_accesses)] noise term, so scenarios whose
    selected sets saw almost no traffic are held only to what their sample
    size supports. *)

type divergence = {
  step : int;
      (** always the event count: the estimator is compared only after the
          full replay *)
  detail : string;
}

type outcome =
  | Agree
  | Diverge of divergence

val run_scenario : ?bug:Oracle.bug -> Scenario.t -> outcome
(** [bug] plants a defect for mutation-testing the harness:
    {!Oracle.Sample} drops the [1/rate] rescale from the estimated curve's
    numerator while the normalizer keeps it, deflating the whole curve by
    the effective sampling rate (other bugs have no effect here). *)
