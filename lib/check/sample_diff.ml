module Sassoc = Cache.Sassoc
module Stack_dist = Cache.Stack_dist

type divergence = {
  step : int;
  detail : string;
}

type outcome =
  | Agree
  | Diverge of divergence

exception Found of string

let failf fmt = Format.kasprintf (fun s -> raise (Found s)) fmt

(* The configuration the soak asserts continuously: the nominal 1% rate of
   the acceptance bar, floored at four sets so the tiny scenario geometries
   (1..16 sets) keep at least a quarter of their sets — below four sets the
   engine is simply exact. The hash seed is fixed so every soak run samples
   the same sets for the same geometry. *)
let nominal_rate = 0.01
let min_sets = 4
let hash_seed = 0x5eed

(* Sample-size-aware bound on the mean absolute miss-ratio error over
   associativities 1..W: a floor for the bias-free spatial split plus a
   1/sqrt(n) noise term, calibrated against the clean 250k soak (observed
   max ~0.21 at the smallest sampled populations) with headroom, while
   staying far below the ~(1 - effective_rate) x miss-ratio deflation the
   planted rescale bug produces on miss-heavy scenarios. *)
let error_bound ~sampled_accesses =
  0.08 +. (1.5 /. sqrt (float_of_int (max 1 sampled_accesses)))

let accesses_of (sc : Scenario.t) =
  List.filter_map
    (function Scenario.Access a -> Some a | _ -> None)
    sc.Scenario.events

let feed engine accesses =
  List.iter
    (fun (a : Memtrace.Access.t) ->
      Stack_dist.Sampled.access engine ~kind:a.Memtrace.Access.kind
        a.Memtrace.Access.addr)
    accesses

let run_scenario ?bug (sc : Scenario.t) =
  let cfg = sc.Scenario.cache in
  let w = cfg.Sassoc.ways in
  let accesses = accesses_of sc in
  let exact =
    Stack_dist.create ~line_size:cfg.Sassoc.line_size ~sets:cfg.Sassoc.sets
      ~max_ways:w ()
  in
  List.iter
    (fun (a : Memtrace.Access.t) ->
      Stack_dist.access exact ~kind:a.Memtrace.Access.kind
        a.Memtrace.Access.addr)
    accesses;
  let sampled =
    Stack_dist.Sampled.create ~seed:hash_seed ~min_sets ~rate:nominal_rate
      ~line_size:cfg.Sassoc.line_size ~sets:cfg.Sassoc.sets ~max_ways:w ()
  in
  feed sampled accesses;
  try
    let n_sampled = Stack_dist.Sampled.sampled_accesses sampled in
    (* The planted sample bug lives here, in the estimator: the per-distance
       counts skip the 1/rate rescale while the normalizer keeps it, so the
       estimated curve deflates by the effective sampling rate. *)
    let est =
      match bug with
      | Some Oracle.Sample ->
          let raw = Stack_dist.Sampled.raw_miss_curve sampled in
          let denom =
            float_of_int n_sampled *. Stack_dist.Sampled.scale sampled
          in
          if denom = 0. then Array.map (fun _ -> 0.) raw
          else Array.map (fun m -> float_of_int m /. denom) raw
      | _ -> Stack_dist.Sampled.mrc_est sampled
    in
    let mrc = Stack_dist.mrc exact in
    if Array.length est <> w + 1 then
      failf "mrc_est has length %d, expected %d" (Array.length est) (w + 1);
    (* Index 0 is pinned by construction: scaled sampled misses-with-no-cache
       over scaled sampled accesses is exactly 1 — unless a rescale was
       forgotten on one side of the ratio. *)
    if n_sampled > 0 && abs_float (est.(0) -. 1.0) > 1e-9 then
      failf "mrc_est.(0) = %.6f, expected 1.0 (forgotten rescale?)" est.(0);
    (* The headline assertion: mean absolute miss-ratio error over the
       associativities, within the sample-size-aware bound. Vacuous when
       nothing was sampled — the estimator has no data and the bound's noise
       term exceeds any possible error. *)
    if n_sampled > 0 then begin
      let err = ref 0. in
      for a = 1 to w do
        err := !err +. abs_float (est.(a) -. mrc.(a))
      done;
      let mean = !err /. float_of_int w in
      let bound = error_bound ~sampled_accesses:n_sampled in
      if mean > bound then
        failf
          "sampled mrc error %.4f exceeds bound %.4f (rate %.3f, %d/%d sets, \
           %d of %d accesses sampled)"
          mean bound
          (Stack_dist.Sampled.effective_rate sampled)
          (Stack_dist.Sampled.selected_sets sampled)
          cfg.Sassoc.sets n_sampled (List.length accesses)
    end;
    (* At rate 1.0 every set is selected and the sampled engine must agree
       with the exact one reading-for-reading — sampling with nothing left
       out is not allowed to approximate. *)
    let full =
      Stack_dist.Sampled.create ~seed:hash_seed ~rate:1.0
        ~line_size:cfg.Sassoc.line_size ~sets:cfg.Sassoc.sets ~max_ways:w ()
    in
    feed full accesses;
    if Stack_dist.Sampled.selected_sets full <> cfg.Sassoc.sets then
      failf "rate 1.0 selected %d of %d sets"
        (Stack_dist.Sampled.selected_sets full)
        cfg.Sassoc.sets;
    if Stack_dist.Sampled.sampled_accesses full <> Stack_dist.accesses exact
    then
      failf "rate 1.0 sampled %d of %d accesses"
        (Stack_dist.Sampled.sampled_accesses full)
        (Stack_dist.accesses exact);
    for ways = 1 to w do
      let pair name est_v exact_v =
        if est_v <> float_of_int exact_v then
          failf "rate 1.0 %d-way %s differ: sampled %.1f, exact %d" ways name
            est_v exact_v
      in
      pair "misses"
        (Stack_dist.Sampled.misses_est full ~ways)
        (Stack_dist.misses exact ~ways);
      pair "evictions"
        (Stack_dist.Sampled.evictions_est full ~ways)
        (Stack_dist.evictions exact ~ways);
      pair "writebacks"
        (Stack_dist.Sampled.writebacks_est full ~ways)
        (Stack_dist.writebacks exact ~ways)
    done;
    Agree
  with Found detail ->
    Diverge { step = List.length sc.Scenario.events; detail }
