module Sassoc = Cache.Sassoc
module Stack_dist = Cache.Stack_dist
module Stats = Cache.Stats

type divergence = {
  step : int;
  detail : string;
}

type outcome =
  | Agree
  | Diverge of divergence

exception Found of string

let failf fmt = Format.kasprintf (fun s -> raise (Found s)) fmt

let accesses_of (sc : Scenario.t) =
  List.filter_map
    (function Scenario.Access a -> Some a | _ -> None)
    sc.Scenario.events

let run_scenario ?bug (sc : Scenario.t) =
  let cfg = sc.Scenario.cache in
  let w = cfg.Sassoc.ways in
  let accesses = accesses_of sc in
  let engine =
    Stack_dist.create ~line_size:cfg.Sassoc.line_size ~sets:cfg.Sassoc.sets
      ~max_ways:w ()
  in
  List.iter
    (fun (a : Memtrace.Access.t) ->
      (* The planted mrc bug lives here, on the stack-distance side: writes
         are demoted to reads, losing dirty bits and hence writebacks. *)
      let kind =
        if bug = Some Oracle.Mrc && a.kind = Memtrace.Access.Write then
          Memtrace.Access.Read
        else a.kind
      in
      Stack_dist.access engine ~kind a.addr)
    accesses;
  try
    (* Internal conservation first: every access is cold, overflowed or at an
       exact depth, and the curve's endpoints are pinned. *)
    let hist_total = Array.fold_left ( + ) 0 (Stack_dist.histogram engine) in
    if
      Stack_dist.cold_misses engine + Stack_dist.overflows engine + hist_total
      <> Stack_dist.accesses engine
    then
      failf "histogram not conserved: cold %d + overflow %d + sum %d <> %d"
        (Stack_dist.cold_misses engine)
        (Stack_dist.overflows engine)
        hist_total
        (Stack_dist.accesses engine);
    let curve = Stack_dist.miss_curve engine in
    if curve.(0) <> Stack_dist.accesses engine then
      failf "miss_curve.(0) = %d, expected the access count %d" curve.(0)
        (Stack_dist.accesses engine);
    for ways = 1 to w do
      let exact =
        Sassoc.create
          { cfg with Sassoc.ways; policy = Cache.Policy.Lru; classify = false }
      in
      List.iter
        (fun (a : Memtrace.Access.t) ->
          ignore (Sassoc.access exact ~kind:a.kind a.addr))
        accesses;
      let r = Sassoc.stats exact in
      let e = Stack_dist.stats engine ~ways in
      let pair name a b =
        if a <> b then
          failf "%d-way %s differ: exact %d, stack-distance %d" ways name a b
      in
      pair "accesses" r.Stats.accesses e.Stats.accesses;
      pair "hits" r.Stats.hits e.Stats.hits;
      pair "misses" r.Stats.misses e.Stats.misses;
      pair "evictions" r.Stats.evictions e.Stats.evictions;
      pair "writebacks" r.Stats.writebacks e.Stats.writebacks;
      if curve.(ways) <> e.Stats.misses then
        failf "miss_curve.(%d) = %d disagrees with stats misses %d" ways
          curve.(ways) e.Stats.misses
    done;
    Agree
  with Found detail -> Diverge { step = List.length sc.Scenario.events; detail }
