module Sassoc = Cache.Sassoc
module Stack_dist = Cache.Stack_dist

type divergence = {
  step : int;
  detail : string;
}

type outcome =
  | Agree
  | Diverge of divergence

exception Found of string

let failf fmt = Format.kasprintf (fun s -> raise (Found s)) fmt

let jobs_list = [ 2; 3 ]

(* Small on purpose: the chunk loop must cross chunk boundaries even on the
   tiny soak scenarios, so the [Packed.sub] streaming path is exercised, not
   just the whole-trace feed. *)
let soak_chunk = 7

let accesses_of (sc : Scenario.t) =
  List.filter_map
    (function Scenario.Access a -> Some a | _ -> None)
    sc.Scenario.events

(* The sharded feeds run serially on the calling domain: what the sharded
   path can get wrong — shard selection and counter merging — is identical
   whether the per-shard engines ran concurrently or not (each touches only
   its own state), and a soak iteration must stay cheap. Real [Domain]
   fan-out is exercised by the unit tests, the bench rows and the CLI. *)
let sharded_exact ?bug ~jobs ~cfg packed =
  let engines =
    Array.init jobs (fun _ ->
        Stack_dist.create ~line_size:cfg.Sassoc.line_size
          ~sets:cfg.Sassoc.sets ~max_ways:cfg.Sassoc.ways ())
  in
  let n = Memtrace.Packed.length packed in
  Array.iteri
    (fun shard e ->
      let pos = ref 0 in
      while !pos < n do
        let len = min soak_chunk (n - !pos) in
        Stack_dist.access_packed_sharded e ~shards:jobs ~shard
          (Memtrace.Packed.sub packed ~pos:!pos ~len);
        pos := !pos + len
      done)
    engines;
  (* The planted shard bug lives here, in the merge: the last worker's
     shard is dropped, so every count owned by its sets vanishes from the
     merged result — the exact corruption a broken join/merge loop
     produces. *)
  let top =
    match bug with Some Oracle.Shard -> jobs - 1 | _ -> jobs
  in
  for k = 1 to top - 1 do
    Stack_dist.merge_into engines.(0) engines.(k)
  done;
  engines.(0)

let sharded_sampled ~jobs ~cfg packed =
  let engines =
    Array.init jobs (fun _ ->
        Stack_dist.Sampled.create ~seed:Sample_diff.hash_seed
          ~min_sets:Sample_diff.min_sets ~rate:Sample_diff.nominal_rate
          ~line_size:cfg.Sassoc.line_size ~sets:cfg.Sassoc.sets
          ~max_ways:cfg.Sassoc.ways ())
  in
  let n = Memtrace.Packed.length packed in
  Array.iteri
    (fun shard e ->
      let pos = ref 0 in
      while !pos < n do
        let len = min soak_chunk (n - !pos) in
        Stack_dist.Sampled.access_packed_sharded e ~shards:jobs ~shard
          (Memtrace.Packed.sub packed ~pos:!pos ~len);
        pos := !pos + len
      done)
    engines;
  for k = 1 to jobs - 1 do
    Stack_dist.Sampled.merge_into engines.(0) engines.(k)
  done;
  engines.(0)

let check_exact ~jobs ~w serial merged =
  let pair name a b =
    if a <> b then
      failf "jobs=%d %s differ: serial %d, sharded %d" jobs name a b
  in
  pair "accesses" (Stack_dist.accesses serial) (Stack_dist.accesses merged);
  pair "cold misses"
    (Stack_dist.cold_misses serial)
    (Stack_dist.cold_misses merged);
  pair "overflows" (Stack_dist.overflows serial) (Stack_dist.overflows merged);
  pair "distinct lines"
    (Stack_dist.distinct_lines serial)
    (Stack_dist.distinct_lines merged);
  for ways = 1 to w do
    let at name f =
      pair (Printf.sprintf "%d-way %s" ways name) (f serial ~ways)
        (f merged ~ways)
    in
    at "misses" Stack_dist.misses;
    at "evictions" Stack_dist.evictions;
    at "writebacks" Stack_dist.writebacks
  done;
  let sh = Stack_dist.histogram serial and mh = Stack_dist.histogram merged in
  if sh <> mh then failf "jobs=%d depth histograms differ" jobs

let check_sampled ~jobs serial merged =
  let pair name a b =
    if a <> b then
      failf "jobs=%d sampled %s differ: serial %d, sharded %d" jobs name a b
  in
  (* Raw integer readings, not float estimates: int addition is
     order-independent, so the merged counters must equal the serial
     engine's digit-for-digit. *)
  pair "selected sets"
    (Stack_dist.Sampled.selected_sets serial)
    (Stack_dist.Sampled.selected_sets merged);
  pair "accesses offered"
    (Stack_dist.Sampled.accesses serial)
    (Stack_dist.Sampled.accesses merged);
  pair "sampled accesses"
    (Stack_dist.Sampled.sampled_accesses serial)
    (Stack_dist.Sampled.sampled_accesses merged);
  pair "distinct sampled lines"
    (Stack_dist.Sampled.distinct_sampled_lines serial)
    (Stack_dist.Sampled.distinct_sampled_lines merged);
  let sr = Stack_dist.Sampled.raw_miss_curve serial in
  let mr = Stack_dist.Sampled.raw_miss_curve merged in
  if sr <> mr then failf "jobs=%d sampled raw miss curves differ" jobs

let run_scenario ?bug (sc : Scenario.t) =
  let cfg = sc.Scenario.cache in
  let w = cfg.Sassoc.ways in
  let accesses = accesses_of sc in
  let packed =
    Memtrace.Packed.of_trace (Memtrace.Trace.of_list accesses)
  in
  let serial =
    Stack_dist.create ~line_size:cfg.Sassoc.line_size ~sets:cfg.Sassoc.sets
      ~max_ways:w ()
  in
  Stack_dist.access_packed serial packed;
  try
    List.iter
      (fun jobs ->
        if jobs <= cfg.Sassoc.sets then begin
          let merged = sharded_exact ?bug ~jobs ~cfg packed in
          check_exact ~jobs ~w serial merged
        end)
      jobs_list;
    (* The sampled engine shards the same way (selection is per-set), so
       its merged raw readings must also be exact; its estimates against
       the exact curve are Sample_diff's business and stay within the same
       bound because the readings are identical. *)
    let sampled_serial =
      Stack_dist.Sampled.create ~seed:Sample_diff.hash_seed
        ~min_sets:Sample_diff.min_sets ~rate:Sample_diff.nominal_rate
        ~line_size:cfg.Sassoc.line_size ~sets:cfg.Sassoc.sets ~max_ways:w ()
    in
    Stack_dist.Sampled.access_packed sampled_serial packed;
    List.iter
      (fun jobs ->
        if jobs <= cfg.Sassoc.sets then
          check_sampled ~jobs sampled_serial
            (sharded_sampled ~jobs ~cfg packed))
      jobs_list;
    (* Windowed cross-check, free at this size: a window no shorter than
       the whole stream must read exactly what the one-shot engine read. *)
    let n = Memtrace.Packed.length packed in
    if n > 0 then begin
      let epochs = 4 in
      let window = ((n + epochs - 1) / epochs * epochs) + epochs in
      let win =
        Stack_dist.Windowed.create ~window ~epochs
          ~line_size:cfg.Sassoc.line_size ~sets:cfg.Sassoc.sets ~max_ways:w
          ()
      in
      Stack_dist.Windowed.observe_packed win packed;
      if Stack_dist.Windowed.retired_epochs win <> 0 then
        failf "window %d over %d accesses retired an epoch" window n;
      if Stack_dist.Windowed.miss_curve_now win <> Stack_dist.miss_curve serial
      then failf "covering window's miss curve differs from one-shot engine"
    end;
    Agree
  with Found detail ->
    Diverge { step = List.length sc.Scenario.events; detail }
