module Sassoc = Cache.Sassoc
module Bitmask = Cache.Bitmask
module Stats = Cache.Stats

let errf fmt = Format.kasprintf (fun s -> Error s) fmt

let victim_in_mask ~mask result =
  match result with
  | Sassoc.Hit _ -> Ok ()
  | Sassoc.Miss { way; _ } ->
      if Bitmask.mem mask way then Ok ()
      else
        errf "victim way %d outside column mask %a" way Bitmask.pp mask

let stats_conserved (s : Stats.t) =
  if s.hits + s.misses <> s.accesses then
    errf "stats not conserved: hits %d + misses %d <> accesses %d" s.hits
      s.misses s.accesses
  else if s.writebacks > s.evictions then
    errf "writebacks %d exceed evictions %d" s.writebacks s.evictions
  else if s.cold_misses + s.capacity_misses + s.conflict_misses > s.misses
  then
    errf "classified misses %d exceed misses %d"
      (s.cold_misses + s.capacity_misses + s.conflict_misses)
      s.misses
  else Ok ()

let occupancy_within cache ~set ~allowed =
  let occupied = Sassoc.occupied_ways cache set in
  if Bitmask.subset occupied allowed then Ok ()
  else
    errf "set %d occupies ways %a outside the masks it was filled under (%a)"
      set Bitmask.pp occupied Bitmask.pp allowed

module Lru_monitor = struct
  (* Per set: (way, line, last-touch tick) for every way believed valid. *)
  type t = {
    cfg : Sassoc.config;
    mutable clock : int;
    slots : (int * int, int * int) Hashtbl.t;  (* (set, way) -> line, tick *)
  }

  let create cfg =
    if cfg.Sassoc.policy <> Cache.Policy.Lru then
      invalid_arg "Lru_monitor.create: policy is not LRU";
    { cfg; clock = 0; slots = Hashtbl.create 64 }

  let tick t =
    t.clock <- t.clock + 1;
    t.clock

  let note t ~mask ~kind:_ addr result =
    let line = addr / t.cfg.Sassoc.line_size in
    let set = line mod t.cfg.Sassoc.sets in
    match result with
    | Sassoc.Hit { way } -> (
        match Hashtbl.find_opt t.slots (set, way) with
        | Some (l, _) when l = line ->
            Hashtbl.replace t.slots (set, way) (line, tick t);
            Ok ()
        | Some (l, _) ->
            errf "hit reported in set %d way %d but monitor tracks line %d, \
                  not %d" set way l line
        | None ->
            errf "hit reported in set %d way %d which the monitor believes \
                  invalid" set way)
    | Sassoc.Miss { way; evicted_line } -> (
        let allowed = List.filter (Bitmask.mem mask)
            (List.init t.cfg.Sassoc.ways Fun.id) in
        let valid w = Hashtbl.mem t.slots (set, w) in
        let check =
          match List.find_opt (fun w -> not (valid w)) allowed with
          | Some _ ->
              (* an allowed way is free: no live line may be displaced *)
              if valid way then
                errf "set %d: evicted a live way %d while an allowed way \
                      was free" set way
              else Ok ()
          | None ->
              (* full set: the victim must be the least recently used *)
              let lru =
                List.fold_left
                  (fun acc w ->
                    let _, tk = Hashtbl.find t.slots (set, w) in
                    match acc with
                    | Some (_, best) when best <= tk -> acc
                    | _ -> Some (w, tk))
                  None allowed
              in
              (match lru with
              | Some (w, _) when w = way -> Ok ()
              | Some (w, _) ->
                  errf "set %d: evicted way %d but LRU among allowed ways \
                        is %d" set way w
              | None -> errf "set %d: no allowed way" set)
        in
        match check with
        | Error _ as e -> e
        | Ok () -> (
            let previous = Hashtbl.find_opt t.slots (set, way) in
            match (previous, evicted_line) with
            | Some (l, _), Some l' when l <> l' ->
                errf "set %d way %d: reported eviction of line %d but \
                      monitor tracks line %d" set way l' l
            | Some _, None ->
                errf "set %d way %d: eviction of a live line not reported"
                  set way
            | None, Some l' ->
                errf "set %d way %d: reported eviction of line %d from an \
                      invalid way" set way l'
            | _ ->
                Hashtbl.replace t.slots (set, way) (line, tick t);
                Ok ()))

  let flush t = Hashtbl.reset t.slots
end
