module Sassoc = Cache.Sassoc
module Bitmask = Cache.Bitmask
module Access = Memtrace.Access

type event =
  | Access of Access.t
  | Retint of { base : int; size : int; tint : string }
  | Remap of { tint : string; mask : Bitmask.t }
  | Flush_tlb
  | Flush_cache

type t = {
  cache : Sassoc.config;
  page_size : int;
  tlb_entries : int;
  events : event list;
}

let length t = List.length t.events

let accesses t =
  List.length
    (List.filter (function Access _ -> true | _ -> false) t.events)

let truncate t n = { t with events = List.filteri (fun i _ -> i < n) t.events }

let remove_event t i =
  { t with events = List.filteri (fun j _ -> j <> i) t.events }

let pp_event ~ways ppf = function
  | Access a -> Format.fprintf ppf "access %a" Access.pp a
  | Retint { base; size; tint } ->
      Format.fprintf ppf "retint 0x%x %d %s" base size tint
  | Remap { tint; mask } ->
      Format.fprintf ppf "remap %s %s" tint (Bitmask.to_string ~n:ways mask)
  | Flush_tlb -> Format.fprintf ppf "flush-tlb"
  | Flush_cache -> Format.fprintf ppf "flush-cache"

let pp ppf t =
  let c = t.cache in
  Format.fprintf ppf "colcache-scenario v1@,";
  Format.fprintf ppf "cache line_size=%d sets=%d ways=%d policy=%s classify=%b@,"
    c.Sassoc.line_size c.Sassoc.sets c.Sassoc.ways
    (Cache.Policy.kind_to_string c.Sassoc.policy)
    c.Sassoc.classify;
  Format.fprintf ppf "vm page_size=%d tlb_entries=%d" t.page_size t.tlb_entries;
  List.iter
    (fun e -> Format.fprintf ppf "@,%a" (pp_event ~ways:c.Sassoc.ways) e)
    t.events

let to_string t = Format.asprintf "@[<v>%a@]" pp t

let fail fmt = Printf.ksprintf invalid_arg fmt

(* "key=value" fields on the two config lines *)
let field line key =
  let prefix = key ^ "=" in
  let tok =
    List.find_opt
      (fun tok -> String.length tok > String.length prefix
                  && String.sub tok 0 (String.length prefix) = prefix)
      (String.split_on_char ' ' line)
  in
  match tok with
  | Some tok ->
      String.sub tok (String.length prefix)
        (String.length tok - String.length prefix)
  | None -> fail "Scenario.of_string: missing %s in %S" key line

let int_field line key =
  match int_of_string_opt (field line key) with
  | Some n -> n
  | None -> fail "Scenario.of_string: bad %s in %S" key line

let event_of_string line =
  match String.split_on_char ' ' (String.trim line) with
  | "access" :: rest -> Access (Access.of_string (String.concat " " rest))
  | [ "retint"; base; size; tint ] -> (
      match (int_of_string_opt base, int_of_string_opt size) with
      | Some base, Some size -> Retint { base; size; tint }
      | _ -> fail "Scenario.of_string: bad retint %S" line)
  | [ "remap"; tint; mask ] -> Remap { tint; mask = Bitmask.of_string mask }
  | [ "flush-tlb" ] -> Flush_tlb
  | [ "flush-cache" ] -> Flush_cache
  | _ -> fail "Scenario.of_string: bad event %S" line

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | header :: cache_line :: vm_line :: events ->
      if header <> "colcache-scenario v1" then
        fail "Scenario.of_string: bad header %S" header;
      let policy =
        match Cache.Policy.kind_of_string (field cache_line "policy") with
        | Some p -> p
        | None -> fail "Scenario.of_string: bad policy in %S" cache_line
      in
      let cache =
        {
          Sassoc.line_size = int_field cache_line "line_size";
          sets = int_field cache_line "sets";
          ways = int_field cache_line "ways";
          policy;
          classify = bool_of_string (field cache_line "classify");
        }
      in
      {
        cache;
        page_size = int_field vm_line "page_size";
        tlb_entries = int_field vm_line "tlb_entries";
        events = List.map event_of_string events;
      }
  | _ -> fail "Scenario.of_string: truncated scenario"

let equal a b = a = b
