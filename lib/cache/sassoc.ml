type config = {
  line_size : int;
  sets : int;
  ways : int;
  policy : Policy.kind;
  classify : bool;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let validate_config c =
  if not (is_power_of_two c.line_size) then
    invalid_arg "Sassoc: line_size must be a power of two";
  if not (is_power_of_two c.sets) then
    invalid_arg "Sassoc: sets must be a power of two";
  if c.ways < 1 || c.ways > Bitmask.max_columns then
    invalid_arg "Sassoc: ways out of range"

let config ?(line_size = 16) ?(policy = Policy.Lru) ?(classify = false)
    ~size_bytes ~ways () =
  if ways <= 0 then invalid_arg "Sassoc.config: ways must be positive";
  if size_bytes mod (line_size * ways) <> 0 then
    invalid_arg "Sassoc.config: size not divisible by line_size * ways";
  let sets = size_bytes / (line_size * ways) in
  let c = { line_size; sets; ways; policy; classify } in
  validate_config c;
  c

let config_size_bytes c = c.line_size * c.sets * c.ways
let column_size_bytes c = c.line_size * c.sets

type result =
  | Hit of { way : int }
  | Miss of { way : int; evicted_line : int option }

(* Empty slots hold this sentinel tag. Real tags are non-negative (addresses
   are), so a lookup never has to consult validity: scanning [tags] alone
   decides hit or miss, which is what keeps the replay loop to one array
   probe per way. The per-set [vmask] bits remain the authority on validity
   for the replacement unit and the inspection hooks. *)
let invalid_tag = min_int

type t = {
  cfg : config;
  line_shift : int;  (* log2 line_size: addr -> line without dividing *)
  set_mask : int;  (* sets - 1 *)
  tag_shift : int;  (* log2 sets: line -> tag without recomputing log2 *)
  tags : int array;  (* sets * ways; [invalid_tag] when the slot is empty *)
  vmask : int array;  (* per-set bit mask of valid ways *)
  pred : int array;
      (* per-set way prediction: the way that hit or filled last. Purely a
         lookup shortcut — a tag matches at most one way, so probing the
         predicted way before scanning changes no observable behavior; with
         line-level locality it turns most scans into one probe. *)
  dirty : Bytes.t;
  policy : Policy.t;
  stats : Stats.t;
  seen_lines : (int, unit) Hashtbl.t;  (* for cold-miss detection *)
  shadow : Lru_set.t option;  (* fully-associative same-capacity LRU *)
}

let log2 n =
  let rec loop n acc = if n <= 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

let create cfg =
  validate_config cfg;
  let n = cfg.sets * cfg.ways in
  {
    cfg;
    line_shift = log2 cfg.line_size;
    set_mask = cfg.sets - 1;
    tag_shift = log2 cfg.sets;
    tags = Array.make n invalid_tag;
    vmask = Array.make cfg.sets 0;
    pred = Array.make cfg.sets 0;
    dirty = Bytes.make n '\000';
    policy = Policy.create cfg.policy ~sets:cfg.sets ~ways:cfg.ways;
    stats = Stats.create ~ways:cfg.ways;
    seen_lines = (if cfg.classify then Hashtbl.create 4096 else Hashtbl.create 1);
    shadow = (if cfg.classify then Some (Lru_set.create ~capacity:n) else None);
  }

let geometry t = t.cfg
let stats t = t.stats
let slot t ~set ~way = (set * t.cfg.ways) + way
let valid_way t ~set ~way = t.vmask.(set) land (1 lsl way) <> 0
let line_of_addr t addr = addr lsr t.line_shift
let set_of_line t line = line land t.set_mask
let tag_of_line t line = line lsr t.tag_shift

let line_of_slot t ~set ~way =
  let tag = t.tags.(slot t ~set ~way) in
  (tag lsl t.tag_shift) lor set

(* -1 when the line is absent; allocation-free (no option). The predicted
   way is probed before the scan (see [pred]). *)
let find_way_idx t ~set ~tag =
  let base = set * t.cfg.ways in
  let p = t.pred.(set) in
  if t.tags.(base + p) = tag then p
  else
    let rec loop w =
      if w >= t.cfg.ways then -1
      else if t.tags.(base + w) = tag then w
      else loop (w + 1)
    in
    loop 0

let find_way t ~set ~tag =
  match find_way_idx t ~set ~tag with -1 -> None | w -> Some w

let classify_miss t line =
  (* Must be called before updating seen/shadow. *)
  match t.shadow with
  | None -> ()
  | Some shadow ->
      let cold = not (Hashtbl.mem t.seen_lines line) in
      if cold then begin
        Hashtbl.add t.seen_lines line ();
        t.stats.cold_misses <- t.stats.cold_misses + 1
      end;
      let shadow_hit = Lru_set.mem shadow line in
      if not cold then
        if shadow_hit then
          t.stats.conflict_misses <- t.stats.conflict_misses + 1
        else t.stats.capacity_misses <- t.stats.capacity_misses + 1

let update_shadow t line =
  match t.shadow with
  | None -> ()
  | Some shadow -> ignore (Lru_set.touch shadow line)

(* The single choke point for mask validation: the replacement hardware must
   always receive at least one permissible column, so an effective mask that
   selects no way of this cache is a programming error, not a no-op. *)
let effective_mask t ~who mask =
  let full = Bitmask.full ~n:t.cfg.ways in
  let mask = match mask with None -> full | Some m -> Bitmask.inter m full in
  if Bitmask.is_empty mask then
    invalid_arg (Printf.sprintf "Sassoc.%s: empty column mask" who);
  mask

let access t ?mask ~kind addr =
  let mask = effective_mask t ~who:"access" mask in
  let line = line_of_addr t addr in
  let set = set_of_line t line in
  let tag = tag_of_line t line in
  t.stats.accesses <- t.stats.accesses + 1;
  match find_way_idx t ~set ~tag with
  | -1 ->
      t.stats.misses <- t.stats.misses + 1;
      classify_miss t line;
      update_shadow t line;
      (* Peek the victim's line before installing over the slot. *)
      let way =
        Policy.victim t.policy ~set ~allowed:mask
          ~valid:(Bitmask.of_bits t.vmask.(set))
      in
      let s = slot t ~set ~way in
      let evicted_line =
        if valid_way t ~set ~way then begin
          t.stats.evictions <- t.stats.evictions + 1;
          if Bytes.get t.dirty s = '\001' then
            t.stats.writebacks <- t.stats.writebacks + 1;
          Some (line_of_slot t ~set ~way)
        end
        else None
      in
      t.tags.(s) <- tag;
      t.vmask.(set) <- t.vmask.(set) lor (1 lsl way);
      t.pred.(set) <- way;
      Bytes.set t.dirty s (if kind = Memtrace.Access.Write then '\001' else '\000');
      Policy.on_fill t.policy ~set ~way;
      t.stats.fills_per_way.(way) <- t.stats.fills_per_way.(way) + 1;
      Miss { way; evicted_line }
  | way ->
      t.stats.hits <- t.stats.hits + 1;
      t.pred.(set) <- way;
      Policy.on_hit t.policy ~set ~way;
      if kind = Memtrace.Access.Write then
        Bytes.set t.dirty (slot t ~set ~way) '\001';
      update_shadow t line;
      Hit { way }

let access_record t ?mask (a : Memtrace.Access.t) =
  access t ?mask ~kind:a.kind a.addr

(* [access] without the [result] block: the outcome is returned as two bits
   (bit 0: miss, bit 1: a dirty victim was written back), so per-access
   callers that only need hit/miss/writeback — the machine's batched replay
   loop — allocate nothing. State and statistics updates are identical to
   [access], a property the machine-level differential soak checks. *)
let access_coded t ?mask ~kind addr =
  let mask = effective_mask t ~who:"access_coded" mask in
  let line = line_of_addr t addr in
  let set = set_of_line t line in
  let tag = tag_of_line t line in
  t.stats.accesses <- t.stats.accesses + 1;
  match find_way_idx t ~set ~tag with
  | -1 ->
      t.stats.misses <- t.stats.misses + 1;
      classify_miss t line;
      update_shadow t line;
      let way =
        Policy.victim t.policy ~set ~allowed:mask
          ~valid:(Bitmask.of_bits t.vmask.(set))
      in
      let s = slot t ~set ~way in
      let wrote_back =
        if valid_way t ~set ~way then begin
          t.stats.evictions <- t.stats.evictions + 1;
          if Bytes.get t.dirty s = '\001' then begin
            t.stats.writebacks <- t.stats.writebacks + 1;
            true
          end
          else false
        end
        else false
      in
      t.tags.(s) <- tag;
      t.vmask.(set) <- t.vmask.(set) lor (1 lsl way);
      t.pred.(set) <- way;
      Bytes.set t.dirty s (if kind = Memtrace.Access.Write then '\001' else '\000');
      Policy.on_fill t.policy ~set ~way;
      t.stats.fills_per_way.(way) <- t.stats.fills_per_way.(way) + 1;
      if wrote_back then 3 else 1
  | way ->
      t.stats.hits <- t.stats.hits + 1;
      t.pred.(set) <- way;
      Policy.on_hit t.policy ~set ~way;
      if kind = Memtrace.Access.Write then
        Bytes.set t.dirty (slot t ~set ~way) '\001';
      update_shadow t line;
      0

(* The batched hot path: replays a whole trace under one mask without
   constructing per-access [result] values (or any other heap block on the
   non-classifying path). Observable state afterwards — statistics, contents,
   replacement state — is identical to folding [access_record] over the
   trace, a property the differential soak checks continuously.

   The non-classifying loops are specialized: the trace's backing array is
   walked directly and every index is provably in range ([set] is masked,
   [way] scans below [ways]), so unchecked accesses are safe. LRU — the
   dominant configuration — gets its own loop that writes the policy's stamp
   array directly instead of calling through [Policy.on_hit]/[on_fill]: the
   stamp discipline (increment the clock, stamp the touched slot) is exactly
   theirs, and [Policy.victim] for LRU reads only the stamps, so keeping the
   clock in a local until the loop ends is invisible to victim choice. *)
let trace_loop_lru t ~mask ~(arr : Memtrace.Access.t array) ~stamps =
  let stats = t.stats in
  let tags = t.tags and vmask = t.vmask and dirty = t.dirty and pred = t.pred in
  let policy = t.policy in
  let ways = t.cfg.ways in
  let line_shift = t.line_shift
  and set_mask = t.set_mask
  and tag_shift = t.tag_shift in
  let clock = ref (Policy.clock policy) in
  (* Hit/access counters are batched: every access is a hit or a miss, so
     counting misses in a local and adding [length] accesses at the end
     leaves the statistics exactly as the per-access path would — and the
     whole replay is one call, so no observer can see the intermediate
     counts. *)
  let miss_count = ref 0 in
  for i = 0 to Array.length arr - 1 do
    let a = Array.unsafe_get arr i in
    let line = a.Memtrace.Access.addr lsr line_shift in
    let set = line land set_mask in
    let tag = line lsr tag_shift in
    let base = set * ways in
    let pw = Array.unsafe_get pred set in
    let way =
      if Array.unsafe_get tags (base + pw) = tag then pw
      else
        let rec scan w =
          if w = ways then -1
          else if Array.unsafe_get tags (base + w) = tag then w
          else scan (w + 1)
        in
        scan 0
    in
    if way >= 0 then begin
      if way <> pw then Array.unsafe_set pred set way;
      incr clock;
      Array.unsafe_set stamps (base + way) !clock;
      match a.Memtrace.Access.kind with
      | Memtrace.Access.Write -> Bytes.unsafe_set dirty (base + way) '\001'
      | Memtrace.Access.Read | Memtrace.Access.Ifetch -> ()
    end
    else begin
      incr miss_count;
      let vm = Array.unsafe_get vmask set in
      let way =
        Policy.victim policy ~set ~allowed:mask ~valid:(Bitmask.of_bits vm)
      in
      let s = base + way in
      if vm land (1 lsl way) <> 0 then begin
        stats.evictions <- stats.evictions + 1;
        if Bytes.unsafe_get dirty s = '\001' then
          stats.writebacks <- stats.writebacks + 1
      end;
      Array.unsafe_set tags s tag;
      Array.unsafe_set vmask set (vm lor (1 lsl way));
      Bytes.unsafe_set dirty s
        (match a.Memtrace.Access.kind with
        | Memtrace.Access.Write -> '\001'
        | Memtrace.Access.Read | Memtrace.Access.Ifetch -> '\000');
      Array.unsafe_set pred set way;
      incr clock;
      Array.unsafe_set stamps s !clock;
      stats.fills_per_way.(way) <- stats.fills_per_way.(way) + 1
    end
  done;
  stats.accesses <- stats.accesses + Array.length arr;
  stats.misses <- stats.misses + !miss_count;
  stats.hits <- stats.hits + (Array.length arr - !miss_count);
  Policy.set_clock policy !clock

let trace_loop_generic t ~mask ~(arr : Memtrace.Access.t array) =
  let stats = t.stats in
  let tags = t.tags and vmask = t.vmask and dirty = t.dirty and pred = t.pred in
  let policy = t.policy in
  let ways = t.cfg.ways in
  let line_shift = t.line_shift
  and set_mask = t.set_mask
  and tag_shift = t.tag_shift in
  for i = 0 to Array.length arr - 1 do
    let a = Array.unsafe_get arr i in
    let line = a.Memtrace.Access.addr lsr line_shift in
    let set = line land set_mask in
    let tag = line lsr tag_shift in
    let base = set * ways in
    stats.accesses <- stats.accesses + 1;
    let pw = Array.unsafe_get pred set in
    let way =
      if Array.unsafe_get tags (base + pw) = tag then pw
      else
        let rec scan w =
          if w = ways then -1
          else if Array.unsafe_get tags (base + w) = tag then w
          else scan (w + 1)
        in
        scan 0
    in
    if way >= 0 then begin
      if way <> pw then Array.unsafe_set pred set way;
      stats.hits <- stats.hits + 1;
      Policy.on_hit policy ~set ~way;
      match a.Memtrace.Access.kind with
      | Memtrace.Access.Write -> Bytes.unsafe_set dirty (base + way) '\001'
      | Memtrace.Access.Read | Memtrace.Access.Ifetch -> ()
    end
    else begin
      stats.misses <- stats.misses + 1;
      let vm = Array.unsafe_get vmask set in
      let way =
        Policy.victim policy ~set ~allowed:mask ~valid:(Bitmask.of_bits vm)
      in
      let s = base + way in
      if vm land (1 lsl way) <> 0 then begin
        stats.evictions <- stats.evictions + 1;
        if Bytes.unsafe_get dirty s = '\001' then
          stats.writebacks <- stats.writebacks + 1
      end;
      Array.unsafe_set tags s tag;
      Array.unsafe_set vmask set (vm lor (1 lsl way));
      Bytes.unsafe_set dirty s
        (match a.Memtrace.Access.kind with
        | Memtrace.Access.Write -> '\001'
        | Memtrace.Access.Read | Memtrace.Access.Ifetch -> '\000');
      Array.unsafe_set pred set way;
      Policy.on_fill policy ~set ~way;
      stats.fills_per_way.(way) <- stats.fills_per_way.(way) + 1
    end
  done

let access_trace t ?mask trace =
  let mask = effective_mask t ~who:"access_trace" mask in
  match t.shadow with
  | None -> (
      let arr = Memtrace.Trace.raw trace in
      match Policy.lru_stamps t.policy with
      | Some stamps -> trace_loop_lru t ~mask ~arr ~stamps
      | None -> trace_loop_generic t ~mask ~arr)
  | Some _ ->
      Memtrace.Trace.iter
        (fun a -> ignore (access t ~mask ~kind:a.Memtrace.Access.kind a.addr))
        trace

let fill t ?mask addr =
  let mask = effective_mask t ~who:"fill" mask in
  let line = line_of_addr t addr in
  let set = set_of_line t line in
  let tag = tag_of_line t line in
  match find_way_idx t ~set ~tag with
  | -1 ->
      let way =
        Policy.victim t.policy ~set ~allowed:mask
          ~valid:(Bitmask.of_bits t.vmask.(set))
      in
      let s = slot t ~set ~way in
      let evicted_line =
        if valid_way t ~set ~way then begin
          t.stats.evictions <- t.stats.evictions + 1;
          if Bytes.get t.dirty s = '\001' then
            t.stats.writebacks <- t.stats.writebacks + 1;
          Some (line_of_slot t ~set ~way)
        end
        else None
      in
      t.tags.(s) <- tag;
      t.vmask.(set) <- t.vmask.(set) lor (1 lsl way);
      t.pred.(set) <- way;
      Bytes.set t.dirty s '\000';
      Policy.on_fill t.policy ~set ~way;
      t.stats.fills_per_way.(way) <- t.stats.fills_per_way.(way) + 1;
      update_shadow t line;
      Miss { way; evicted_line }
  | way -> Hit { way }

let probe t addr =
  let line = line_of_addr t addr in
  let set = set_of_line t line in
  find_way t ~set ~tag:(tag_of_line t line)

let way_of_line t line =
  let set = set_of_line t line in
  find_way t ~set ~tag:(tag_of_line t line)

let set_of_addr t addr = set_of_line t (line_of_addr t addr)

let set_occupancy t set =
  if set < 0 || set >= t.cfg.sets then invalid_arg "Sassoc.set_occupancy";
  Bitmask.count (Bitmask.of_bits t.vmask.(set))

let lines_in_set t set =
  if set < 0 || set >= t.cfg.sets then invalid_arg "Sassoc.lines_in_set";
  let out = ref [] in
  for way = t.cfg.ways - 1 downto 0 do
    if valid_way t ~set ~way then out := (way, line_of_slot t ~set ~way) :: !out
  done;
  !out

let occupied_ways t set =
  if set < 0 || set >= t.cfg.sets then invalid_arg "Sassoc.occupied_ways";
  Bitmask.of_bits t.vmask.(set)

let lines_in_column t way =
  if way < 0 || way >= t.cfg.ways then invalid_arg "Sassoc.lines_in_column";
  let out = ref [] in
  for set = t.cfg.sets - 1 downto 0 do
    if valid_way t ~set ~way then out := line_of_slot t ~set ~way :: !out
  done;
  !out

let valid_lines t =
  Array.fold_left
    (fun acc vm -> acc + Bitmask.count (Bitmask.of_bits vm))
    0 t.vmask

let invalidate_line t line =
  let set = set_of_line t line in
  match find_way_idx t ~set ~tag:(tag_of_line t line) with
  | -1 -> ()
  | way ->
      let s = slot t ~set ~way in
      t.tags.(s) <- invalid_tag;
      t.vmask.(set) <- t.vmask.(set) land lnot (1 lsl way);
      Bytes.set t.dirty s '\000'

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) invalid_tag;
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  Array.fill t.vmask 0 (Array.length t.vmask) 0

let reset_stats t = Stats.reset t.stats
