type config = {
  line_size : int;
  sets : int;
  ways : int;
  policy : Policy.kind;
  classify : bool;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let validate_config c =
  if not (is_power_of_two c.line_size) then
    invalid_arg "Sassoc: line_size must be a power of two";
  if not (is_power_of_two c.sets) then
    invalid_arg "Sassoc: sets must be a power of two";
  if c.ways < 1 || c.ways > Bitmask.max_columns then
    invalid_arg "Sassoc: ways out of range"

let config ?(line_size = 16) ?(policy = Policy.Lru) ?(classify = false)
    ~size_bytes ~ways () =
  if ways <= 0 then invalid_arg "Sassoc.config: ways must be positive";
  if size_bytes mod (line_size * ways) <> 0 then
    invalid_arg "Sassoc.config: size not divisible by line_size * ways";
  let sets = size_bytes / (line_size * ways) in
  let c = { line_size; sets; ways; policy; classify } in
  validate_config c;
  c

let config_size_bytes c = c.line_size * c.sets * c.ways
let column_size_bytes c = c.line_size * c.sets

type result =
  | Hit of { way : int }
  | Miss of { way : int; evicted_line : int option }

type t = {
  cfg : config;
  tags : int array;  (* sets * ways *)
  valid : Bytes.t;
  dirty : Bytes.t;
  policy : Policy.t;
  stats : Stats.t;
  seen_lines : (int, unit) Hashtbl.t;  (* for cold-miss detection *)
  shadow : Lru_set.t option;  (* fully-associative same-capacity LRU *)
}

let create cfg =
  validate_config cfg;
  let n = cfg.sets * cfg.ways in
  {
    cfg;
    tags = Array.make n 0;
    valid = Bytes.make n '\000';
    dirty = Bytes.make n '\000';
    policy = Policy.create cfg.policy ~sets:cfg.sets ~ways:cfg.ways;
    stats = Stats.create ~ways:cfg.ways;
    seen_lines = (if cfg.classify then Hashtbl.create 4096 else Hashtbl.create 1);
    shadow = (if cfg.classify then Some (Lru_set.create ~capacity:n) else None);
  }

let geometry t = t.cfg
let stats t = t.stats
let slot t ~set ~way = (set * t.cfg.ways) + way
let line_of_addr t addr = addr / t.cfg.line_size
let set_of_line t line = line land (t.cfg.sets - 1)
let tag_of_line t line = line lsr (
  (* log2 sets *)
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  log2 t.cfg.sets 0)

let line_of_slot t ~set ~way =
  let tag = t.tags.(slot t ~set ~way) in
  (tag * t.cfg.sets) + set

let find_way t ~set ~tag =
  let rec loop w =
    if w >= t.cfg.ways then None
    else
      let s = slot t ~set ~way:w in
      if Bytes.get t.valid s = '\001' && t.tags.(s) = tag then Some w
      else loop (w + 1)
  in
  loop 0

let classify_miss t line =
  (* Must be called before updating seen/shadow. *)
  match t.shadow with
  | None -> ()
  | Some shadow ->
      let cold = not (Hashtbl.mem t.seen_lines line) in
      if cold then begin
        Hashtbl.add t.seen_lines line ();
        t.stats.cold_misses <- t.stats.cold_misses + 1
      end;
      let shadow_hit = Lru_set.mem shadow line in
      if not cold then
        if shadow_hit then
          t.stats.conflict_misses <- t.stats.conflict_misses + 1
        else t.stats.capacity_misses <- t.stats.capacity_misses + 1

let update_shadow t line =
  match t.shadow with
  | None -> ()
  | Some shadow -> ignore (Lru_set.touch shadow line)

(* The single choke point for mask validation: the replacement hardware must
   always receive at least one permissible column, so an effective mask that
   selects no way of this cache is a programming error, not a no-op. *)
let effective_mask t ~who mask =
  let full = Bitmask.full ~n:t.cfg.ways in
  let mask = match mask with None -> full | Some m -> Bitmask.inter m full in
  if Bitmask.is_empty mask then
    invalid_arg (Printf.sprintf "Sassoc.%s: empty column mask" who);
  mask

let access t ?mask ~kind addr =
  let mask = effective_mask t ~who:"access" mask in
  let line = line_of_addr t addr in
  let set = set_of_line t line in
  let tag = tag_of_line t line in
  t.stats.accesses <- t.stats.accesses + 1;
  match find_way t ~set ~tag with
  | Some way ->
      t.stats.hits <- t.stats.hits + 1;
      Policy.on_hit t.policy ~set ~way;
      if kind = Memtrace.Access.Write then
        Bytes.set t.dirty (slot t ~set ~way) '\001';
      update_shadow t line;
      Hit { way }
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      classify_miss t line;
      update_shadow t line;
      let valid w = Bytes.get t.valid (slot t ~set ~way:w) = '\001' in
      let way = Policy.victim t.policy ~set ~allowed:mask ~valid in
      let s = slot t ~set ~way in
      let evicted_line =
        if Bytes.get t.valid s = '\001' then begin
          t.stats.evictions <- t.stats.evictions + 1;
          if Bytes.get t.dirty s = '\001' then
            t.stats.writebacks <- t.stats.writebacks + 1;
          Some (line_of_slot t ~set ~way)
        end
        else None
      in
      t.tags.(s) <- tag;
      Bytes.set t.valid s '\001';
      Bytes.set t.dirty s (if kind = Memtrace.Access.Write then '\001' else '\000');
      Policy.on_fill t.policy ~set ~way;
      t.stats.fills_per_way.(way) <- t.stats.fills_per_way.(way) + 1;
      Miss { way; evicted_line }

let access_record t ?mask (a : Memtrace.Access.t) =
  access t ?mask ~kind:a.kind a.addr

let fill t ?mask addr =
  let mask = effective_mask t ~who:"fill" mask in
  let line = line_of_addr t addr in
  let set = set_of_line t line in
  let tag = tag_of_line t line in
  match find_way t ~set ~tag with
  | Some way -> Hit { way }
  | None ->
      let valid w = Bytes.get t.valid (slot t ~set ~way:w) = '\001' in
      let way = Policy.victim t.policy ~set ~allowed:mask ~valid in
      let s = slot t ~set ~way in
      let evicted_line =
        if Bytes.get t.valid s = '\001' then begin
          t.stats.evictions <- t.stats.evictions + 1;
          if Bytes.get t.dirty s = '\001' then
            t.stats.writebacks <- t.stats.writebacks + 1;
          Some (line_of_slot t ~set ~way)
        end
        else None
      in
      t.tags.(s) <- tag;
      Bytes.set t.valid s '\001';
      Bytes.set t.dirty s '\000';
      Policy.on_fill t.policy ~set ~way;
      t.stats.fills_per_way.(way) <- t.stats.fills_per_way.(way) + 1;
      update_shadow t line;
      Miss { way; evicted_line }

let probe t addr =
  let line = line_of_addr t addr in
  let set = set_of_line t line in
  find_way t ~set ~tag:(tag_of_line t line)

let way_of_line t line =
  let set = set_of_line t line in
  find_way t ~set ~tag:(tag_of_line t line)

let set_of_addr t addr = set_of_line t (line_of_addr t addr)

let set_occupancy t set =
  if set < 0 || set >= t.cfg.sets then invalid_arg "Sassoc.set_occupancy";
  let n = ref 0 in
  for way = 0 to t.cfg.ways - 1 do
    if Bytes.get t.valid (slot t ~set ~way) = '\001' then incr n
  done;
  !n

let lines_in_set t set =
  if set < 0 || set >= t.cfg.sets then invalid_arg "Sassoc.lines_in_set";
  let out = ref [] in
  for way = t.cfg.ways - 1 downto 0 do
    if Bytes.get t.valid (slot t ~set ~way) = '\001' then
      out := (way, line_of_slot t ~set ~way) :: !out
  done;
  !out

let occupied_ways t set =
  List.fold_left (fun m (way, _) -> Bitmask.add m way) Bitmask.empty
    (lines_in_set t set)

let lines_in_column t way =
  if way < 0 || way >= t.cfg.ways then invalid_arg "Sassoc.lines_in_column";
  let out = ref [] in
  for set = t.cfg.sets - 1 downto 0 do
    if Bytes.get t.valid (slot t ~set ~way) = '\001' then
      out := line_of_slot t ~set ~way :: !out
  done;
  !out

let valid_lines t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c = '\001' then incr n) t.valid;
  !n

let invalidate_line t line =
  let set = set_of_line t line in
  match find_way t ~set ~tag:(tag_of_line t line) with
  | None -> ()
  | Some way ->
      let s = slot t ~set ~way in
      Bytes.set t.valid s '\000';
      Bytes.set t.dirty s '\000'

let flush t =
  Bytes.fill t.valid 0 (Bytes.length t.valid) '\000';
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000'

let reset_stats t = Stats.reset t.stats
