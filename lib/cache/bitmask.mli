(** Column bit vectors.

    A bitmask names a subset of the cache's columns (ways). The paper's
    replacement unit receives such a vector from the TLB and restricts victim
    selection to it (Section 2.1). Masks support up to 62 columns, which far
    exceeds any realistic way count. *)

type t

val max_columns : int

val empty : t
val full : n:int -> t
(** All columns [0..n-1]. *)

val singleton : int -> t
val of_list : int list -> t
val to_list : t -> int list

val range : lo:int -> hi:int -> t
(** Columns [lo..hi] inclusive. *)

val add : t -> int -> t
val remove : t -> int -> t
val mem : t -> int -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : n:int -> t -> t
val is_empty : t -> bool
val count : t -> int
val subset : t -> t -> bool
(** [subset a b] is true when every column of [a] is in [b]. *)

val min_elt : t -> int
(** Raises [Not_found] on the empty mask. *)

val bits : t -> int
(** The raw bit representation: bit [c] is set iff column [c] is in the mask.
    Exposed so the cache's replacement hot path can scan a mask without
    allocating; ordinary clients should use {!mem}/{!to_list}. *)

val of_bits : int -> t
(** Inverse of {!bits}. Bits at or above {!max_columns} are discarded. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val to_string : n:int -> t -> string
(** Binary rendering with column 0 leftmost, e.g. ["1011"]. *)

val of_string : string -> t
(** Inverse of {!to_string}. *)
