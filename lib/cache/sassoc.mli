(** The set-associative cache with column-restricted replacement.

    This is the paper's reference implementation of column caching
    (Section 2.1): lookup behaves exactly like a standard set-associative
    cache — every way of the selected set is searched, so a hit costs the
    same whatever the mapping — while on a miss the replacement unit is
    restricted to the ways named by a software-supplied {!Bitmask.t}. Passing
    the full mask on every access yields a standard cache. *)

type config = {
  line_size : int;  (** bytes per cache line; power of two *)
  sets : int;  (** number of sets; power of two *)
  ways : int;  (** columns; 1..{!Bitmask.max_columns} *)
  policy : Policy.kind;
  classify : bool;
      (** when true, maintain the shadow structures needed for the
          cold/capacity/conflict miss breakdown *)
}

val config :
  ?line_size:int -> ?policy:Policy.kind -> ?classify:bool ->
  size_bytes:int -> ways:int -> unit -> config
(** Convenience constructor from a total size. Defaults: 16-byte lines, LRU,
    no classification. Raises [Invalid_argument] if the geometry does not
    divide evenly. *)

val config_size_bytes : config -> int
val column_size_bytes : config -> int

type result =
  | Hit of { way : int }
  | Miss of { way : int; evicted_line : int option }
      (** [evicted_line] is the line address of the displaced block, when a
          valid block was displaced. *)

type t

val create : config -> t
val geometry : t -> config
val stats : t -> Stats.t

val access : t -> ?mask:Bitmask.t -> kind:Memtrace.Access.kind -> int -> result
(** [access t ~mask addr] performs one reference. [mask] defaults to all
    ways. An empty effective mask raises [Invalid_argument]: hardware always
    receives at least one permissible column. *)

val access_record : t -> ?mask:Bitmask.t -> Memtrace.Access.t -> result

val access_coded : t -> ?mask:Bitmask.t -> kind:Memtrace.Access.kind -> int -> int
(** Exactly {!access} — same state and statistics updates, same
    [Invalid_argument] on an empty effective mask — but the outcome comes
    back as two bits instead of a [result] block, so the caller allocates
    nothing: bit 0 is set on a miss, bit 1 when a dirty victim was written
    back ([0] hit, [1] clean miss, [3] miss with writeback). The victim way
    and evicted line are not reported; callers that need them use
    {!access}. *)

val access_trace : t -> ?mask:Bitmask.t -> Memtrace.Trace.t -> unit
(** Replay a whole trace of demand accesses under one mask. Equivalent to
    [Trace.iter (fun a -> ignore (access_record t ?mask a)) trace] — same
    statistics, contents and replacement state afterwards — but without
    constructing per-access [result] values: the non-classifying path
    performs no heap allocation at all. This is the simulation hot path;
    callers that need per-access results keep using {!access}. *)

val fill : t -> ?mask:Bitmask.t -> int -> result
(** Install the line holding the address as a prefetch would: victim
    selection and eviction behave exactly like {!access}, but the operation
    is not counted as a demand access, hit or miss (evictions and
    writebacks it causes are still counted). A line already present is
    left untouched ([Hit]). *)

val probe : t -> int -> int option
(** Side-effect-free lookup; returns the way holding the address if any. *)

val way_of_line : t -> int -> int option
(** Which way currently caches the given line address, if any. *)

val set_of_addr : t -> int -> int
(** The set the address indexes into. *)

(** {2 Address decomposition}

    How an address splits into (line, set, tag) under this geometry. The
    shifts involved are precomputed at {!create}; these accessors exist so
    tests can pin the decomposition across geometries (1 way, max ways,
    1 set) independently of the replacement machinery. *)

val line_of_addr : t -> int -> int
(** [addr lsr log2 line_size]. *)

val set_of_line : t -> int -> int
(** [line land (sets - 1)]. *)

val tag_of_line : t -> int -> int
(** [line lsr log2 sets]. *)

val set_occupancy : t -> int -> int
(** Number of valid ways in a set. Raises [Invalid_argument] on an
    out-of-range set index. *)

val lines_in_set : t -> int -> (int * int) list
(** [(way, line)] pairs of the valid ways of a set, ascending by way. These
    inspection hooks exist for the differential oracle in [colcache.check]
    and for invariant checks in tests; simulation code does not use them. *)

val occupied_ways : t -> int -> Bitmask.t
(** Mask of the valid ways of a set ([lines_in_set] projected to ways). *)

val lines_in_column : t -> int -> int list
(** Line addresses currently valid in a column, ascending. *)

val valid_lines : t -> int
val invalidate_line : t -> int -> unit
val flush : t -> unit
(** Invalidate everything; statistics are preserved. *)

val reset_stats : t -> unit
