type t = int

let max_columns = 62

let check_col c =
  if c < 0 || c >= max_columns then
    invalid_arg (Printf.sprintf "Bitmask: column %d out of range" c)

let empty = 0

let full ~n =
  if n < 0 || n > max_columns then invalid_arg "Bitmask.full";
  if n = 0 then 0 else (1 lsl n) - 1

let singleton c =
  check_col c;
  1 lsl c

let add t c =
  check_col c;
  t lor (1 lsl c)

let of_list cols = List.fold_left add empty cols

let to_list t =
  let rec loop c acc =
    if c < 0 then acc
    else loop (c - 1) (if t land (1 lsl c) <> 0 then c :: acc else acc)
  in
  loop (max_columns - 1) []

let range ~lo ~hi =
  if lo > hi then empty
  else begin
    check_col lo;
    check_col hi;
    ((1 lsl (hi - lo + 1)) - 1) lsl lo
  end

let remove t c =
  check_col c;
  t land lnot (1 lsl c)

let mem t c = c >= 0 && c < max_columns && t land (1 lsl c) <> 0
let union = ( lor )
let inter = ( land )
let diff a b = a land lnot b
let complement ~n t = full ~n land lnot t
let is_empty t = t = 0

let count t =
  let rec loop t acc = if t = 0 then acc else loop (t lsr 1) (acc + (t land 1)) in
  loop t 0

let subset a b = a land lnot b = 0

let min_elt t =
  if t = 0 then raise Not_found;
  let rec loop c = if t land (1 lsl c) <> 0 then c else loop (c + 1) in
  loop 0

let bits t = t
let of_bits b = b land ((1 lsl max_columns) - 1)

let equal = Int.equal
let compare = Int.compare

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (to_list t)))

let to_string ~n t =
  String.init n (fun c -> if mem t c then '1' else '0')

let of_string s =
  let t = ref empty in
  String.iteri
    (fun c ch ->
      match ch with
      | '1' -> t := add !t c
      | '0' -> ()
      | _ -> invalid_arg (Printf.sprintf "Bitmask.of_string: %S" s))
    s;
  !t
