(** Replacement policies for the set-associative cache.

    The column cache's only change relative to a standard cache is that the
    victim must be chosen {e within} a software-supplied column mask; every
    policy here therefore takes an [allowed] mask. Invalid (empty) ways inside
    the mask are always preferred over evicting live data.

    Victim selection is allocation-free: the mask is scanned as raw bits with
    a per-kind loop precomputed at {!create}, so a miss never builds candidate
    lists. The scan orders (and their tie-breaks) are pinned against a naive
    list-based reference implementation by the differential test suite. *)

type kind =
  | Lru  (** true least-recently-used via per-way timestamps *)
  | Fifo  (** oldest fill wins *)
  | Bit_plru  (** MRU-bit pseudo-LRU, as found in embedded cores *)
  | Random of int  (** seeded xorshift; the argument is the seed *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list
(** One representative of each constructor (Random is seeded with 42). *)

(** Mutable per-cache replacement state. *)
type t

val create : kind -> sets:int -> ways:int -> t
val kind : t -> kind
val ways : t -> int

val on_hit : t -> set:int -> way:int -> unit
val on_fill : t -> set:int -> way:int -> unit

val victim : t -> set:int -> allowed:Bitmask.t -> valid:Bitmask.t -> int
(** Choose the way to evict in [set], restricted to [allowed]. [valid] is the
    mask of ways currently holding live lines in [set]; an allowed way outside
    it (an empty slot) is always preferred. Raises [Invalid_argument] if
    [allowed] selects no way of the cache. *)

(** {2 Hot-path state}

    Raw views of the LRU state, consumed only by the batched replay loop in
    [Sassoc.access_trace], which specializes the per-access bookkeeping per
    kind instead of dispatching through {!on_hit}/{!on_fill}. The contract —
    a hit or fill of a slot increments the clock and stamps the slot with the
    new value, exactly as {!on_hit}/{!on_fill} do — is pinned by the
    differential soak. Other code must not touch these. *)

val lru_stamps : t -> int array option
(** The per-slot stamp array (indexed [set * ways + way]) when the kind is
    {!Lru}; [None] otherwise. *)

val clock : t -> int
val set_clock : t -> int -> unit

(** {2 Inspection hooks}

    Read-only views of the replacement state, consumed by the naive reference
    implementation ([Check.Oracle.victim_ref]) that the allocation-free
    {!victim} is differentially tested against. Simulation code does not use
    them. *)

val stamp : t -> set:int -> way:int -> int
(** LRU last-use / FIFO fill timestamp of a slot (0 if never stamped). *)

val mru_bit : t -> set:int -> way:int -> bool
(** Bit-PLRU MRU bit of a slot. *)

val next_random : t -> int
(** Draw (and consume) the next value of the xorshift64* stream that the
    Random policy picks victims with. *)
