(** Single-pass LRU stack-distance simulation (Mattson et al., 1970).

    Under true LRU with a fixed set count, the contents of an [a]-way cache
    are always the top [a] entries of each set's recency stack — the
    inclusion property. One pass over a trace therefore yields, for {e every}
    associativity [1..max_ways] simultaneously:

    - exact miss counts: an access at stack depth [d] (0-indexed) hits in
      the [a]-way cache iff [d < a], so [misses a] is the tail mass of the
      depth histogram plus the cold and overflow accesses;
    - exact eviction counts: a line leaves the [a]-way cache exactly when it
      sinks from depth [a-1] to depth [a], so evictions are boundary
      crossings, counted as the stacks shift;
    - exact writeback counts: a line's dirtiness {e as a function of
      capacity} is an up-set [dirty in every a >= dirty_min]: a write dirties
      the line at all capacities, a read re-access at depth [d] reinstalls it
      clean in the caches that had missed ([a <= d]), and crossing boundary
      [a] while [dirty_min <= a] is precisely one writeback of the [a]-way
      cache (after which the line is clean there).

    The numbers agree field-for-field with {!Sassoc} under
    [policy = Lru, classify = false] for each associativity — the
    [Check.Mrc_diff] differential driver and the mutation tests pin this.
    The three-C classification and [fills_per_way] are not derivable from
    stack distances (way choice is history-dependent); {!stats} reports them
    as zeros, exactly like a non-classifying [Sassoc] for the three-C
    fields.

    Stacks are depth-truncated at [max_ways]: re-accesses deeper than that
    land in a single overflow bucket (they miss at every tracked
    associativity), keeping the per-access cost O(max_ways). *)

type t

val create :
  ?translate:(int -> int) -> line_size:int -> sets:int -> max_ways:int ->
  unit -> t
(** [line_size] and [sets] must be powers of two, [max_ways >= 1].
    [translate] maps each address before line extraction (a physical frame
    placement, e.g. {!Layout.Page_coloring}'s); it must preserve
    line-in-page containment, which every page-granular frame map does. *)

val max_ways : t -> int
val sets : t -> int

val access : t -> kind:Memtrace.Access.kind -> int -> unit
(** Record one reference. [Write] dirties the line at every associativity;
    [Read]/[Ifetch] install clean. *)

val access_traced : t -> kind:Memtrace.Access.kind -> ways:int -> int -> int
(** Like {!access}, but additionally reports what a [ways]-way cache saw on
    this one reference: bit 0 set iff it hit (stack depth [< ways]), bit 1
    set iff it wrote back a dirty victim (a boundary-[ways] crossing with
    [dirty_min <= ways] during this access's shift). Summing the reported
    bits over a run reproduces {!hits} / {!writebacks} at [ways] exactly;
    the per-access timing of the closed-form sweep evaluators is built on
    this. [ways] must lie in [1..max_ways]. *)

val access_packed : t -> Memtrace.Packed.t -> unit
(** Replay a whole packed trace through {!access} without boxing. *)

val preload : t -> int -> unit
(** Install the line holding the address clean and most-recently-used,
    without counting an access (the shift of displaced lines still counts
    evictions/writebacks, as {!Sassoc.access} during a preload would). Used
    to reproduce scratchpad pinning's warm start before {!reset_counts}. *)

val reset_counts : t -> unit
(** Zero every counter, keeping contents and the cold-line memory — the
    stack-distance analogue of snapshotting statistics before a run. *)

(** {2 Readings}

    All [ways] arguments must lie in [1..max_ways]. *)

val accesses : t -> int

val cold_misses : t -> int
(** First-touch accesses: infinite stack distance, a miss at every
    associativity (and at any capacity). *)

val overflows : t -> int
(** Re-accesses beyond the tracked depth: distance [>= max_ways], a miss at
    every tracked associativity. *)

val distinct_lines : t -> int
(** Lines ever referenced (the cold-miss memory's size) — the engine's
    dominant memory cost, which the sampled engine's fixed budget bounds. *)

val histogram : t -> int array
(** [h.(d)] = re-accesses at exact stack depth [d], [0 <= d < max_ways],
    aggregated over sets. [accesses = cold + overflows + sum h]. *)

val misses : t -> ways:int -> int
val hits : t -> ways:int -> int
val evictions : t -> ways:int -> int
val writebacks : t -> ways:int -> int

val miss_curve : t -> int array
(** [c.(a)] = [misses ~ways:a] for [a] in [1..max_ways]; [c.(0)] =
    [accesses] (no cache at all misses everything). Length
    [max_ways + 1]. *)

val mrc : t -> float array
(** {!miss_curve} normalized by {!accesses} — the miss-ratio curve. All
    zeros when the engine saw no accesses. *)

val stats : t -> ways:int -> Stats.t
(** The {!Stats.t} an [ways]-way non-classifying {!Sassoc} LRU cache would
    report after the same accesses: accesses/hits/misses/evictions/
    writebacks exact, three-C fields and [fills_per_way] zero. *)

(** {2 Set-sharded parallel sweeps}

    LRU stack distances are exactly independent per cache set: an access
    touches only the recency stack of the set it maps to, and every counter
    is a sum of per-set contributions. Partitioning the set index space into
    [shards] shards (shard [s] owns the sets with [set mod shards = s])
    makes the Mattson pass embarrassingly parallel, and because merging is
    pure addition of disjoint per-set counters — including the up-set
    dirtiness writeback accounting and the cold/overflow split (the
    cold-line memory is keyed by whole lines, which belong to exactly one
    set) — the merged readings are {e byte-identical} to the serial
    engine's for any shard count. The [Check.Shard_diff] differential and
    the jobs-invariance property pin this. *)

val access_packed_sharded : t -> shards:int -> shard:int -> Memtrace.Packed.t -> unit
(** Replay only the accesses whose (translated) set belongs to [shard] of
    [shards]; everything else is skipped without counting. Feeding one
    engine per shard with the same trace partitions the work exactly.
    Raises [Invalid_argument] unless [1 <= shards <= sets] and
    [0 <= shard < shards]. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s counters into [dst] and adopts
    [src]'s per-set stacks and cold-line memory, leaving [dst] a fully
    functional engine indistinguishable from one fed both engines' access
    streams serially. Raises [Invalid_argument] when the geometries differ
    or when both engines have touched the same set — merging is only exact
    over disjoint set ownership, which the sharded feed guarantees. *)

val of_packed_parallel :
  ?translate:(int -> int) ->
  ?on_shard:(shard:int -> accesses:int -> unit) ->
  jobs:int ->
  line_size:int ->
  sets:int ->
  max_ways:int ->
  Memtrace.Packed.t ->
  t
(** Sweep a packed trace with [jobs] worker domains, one set shard each,
    each streaming chunked {!Memtrace.Packed.sub} views (mmap'd traces
    stay out of core), then merge — the result is byte-identical to a
    serial {!access_packed} sweep for any [jobs]. [on_shard] is called
    once per shard at merge time with the accesses that shard's engine
    counted (the per-domain engine work: each shard processes roughly
    [1/jobs] of the trace). Raises [Invalid_argument] unless
    [1 <= jobs <= sets]. *)

(** {2 Per-tag curves}

    One engine per interned variable tag of a packed trace, each fed only
    its own tag's accesses: the per-variable miss-ratio curves predict
    exactly how each variable behaves when given [a] columns of its own
    (its column group is an isolated LRU cache with the same sets), which
    is what MRC-driven column allocation consumes. *)

val per_tag_of_packed :
  ?translate:(int -> int) -> line_size:int -> sets:int -> max_ways:int ->
  Memtrace.Packed.t -> t * (string * t) array
(** One pass: returns the global engine over every access, and one engine
    per entry of {!Memtrace.Packed.var_table} (in table order) over that
    tag's accesses alone. Untagged accesses reach only the global engine. *)

(** {2 Sampled stack distances}

    SHARDS-style spatially-hashed sampling (Waldspurger et al., FAST '15)
    adapted to the set-associative engine: instead of hashing individual
    lines — which would punch holes in each set's recency stack and make
    sampled depths meaningless at small associativity — whole {e sets} are
    the sampling unit. Each set's index is hashed once (seeded splitmix64);
    a set is selected iff its hash lands below the threshold [T] (initially
    the requested rate), every selected set is simulated {e exactly} by its
    own single-set Mattson engine, and per-distance counts scale by
    [n_sets / selected] — sets are symmetric interleaved slices of the
    address space, so the selected ones are an unbiased spatial
    subpopulation.

    Selection is a prefix of the sets ordered by (hash, set index), so the
    sample locations at a lower rate are a subset of those at any higher
    rate (threshold monotonicity), and identical inputs always produce
    identical histograms. The fixed-budget variant caps distinct sampled
    lines: exceeding [budget] evicts the selected set with the largest hash
    and lowers the effective [T] to that hash, the evicted set's whole
    contribution leaving the estimate — rescaling on eviction at set
    granularity. Eviction never shrinks the selection below [min_sets]
    (the variance floor wins; past it the budget is best-effort). At [rate = 1.0] every set is selected and every [*_est]
    reading equals the exact engine's, which the property suite pins.

    Accuracy is asserted continuously by the [Check.Sample_diff]
    differential driver in the soak rotation: mean absolute miss-ratio
    error of {!Sampled.mrc_est} against the exact {!mrc} within a
    sample-size-aware bound, with the forgotten-rescale mutation
    ([--inject-bug sample]) caught. *)
module Sampled : sig
  type t

  val create :
    ?translate:(int -> int) ->
    ?seed:int ->
    ?min_sets:int ->
    ?budget:int ->
    rate:float ->
    line_size:int ->
    sets:int ->
    max_ways:int ->
    unit ->
    t
  (** [rate] must lie in (0, 1]; geometry constraints as {!create}.
      [seed] (default 0) keys the set hash. [min_sets] (default 1) floors
      the selection — the [min_sets] smallest-hash sets are kept even when
      the rate selects fewer, which tames variance on tiny geometries.
      [budget] caps distinct sampled lines as described above. *)

  val access : t -> kind:Memtrace.Access.kind -> int -> unit
  val access_packed : t -> Memtrace.Packed.t -> unit

  val access_packed_sharded :
    t -> shards:int -> shard:int -> Memtrace.Packed.t -> unit
  (** Sharded feed, as the exact engine's: selection is a per-set property,
      so SHARDS sampling composes with set sharding and the merged readings
      are byte-identical to a serial sampled sweep. [offered] counts only
      the owned shard's accesses, so merged totals are exact. Raises
      [Invalid_argument] for budget engines (the largest-hash eviction is a
      global order-dependent decision that sharding would reorder) and on
      shard bounds as {!Stack_dist.access_packed_sharded}. *)

  val merge_into : t -> t -> unit
  (** Merge a shard's sampled engine, entry by selected entry (the per-set
      engines merge via the exact {!Stack_dist.merge_into}). Raises
      [Invalid_argument] for budget engines, mismatched geometries, or
      selections that differ (seed or rate mismatch). *)

  val of_packed_parallel :
    ?translate:(int -> int) ->
    ?seed:int ->
    ?min_sets:int ->
    jobs:int ->
    rate:float ->
    line_size:int ->
    sets:int ->
    max_ways:int ->
    Memtrace.Packed.t ->
    t
  (** Parallel sampled sweep: [jobs] worker domains over set shards, merged
      — byte-identical to a serial sampled sweep for any [jobs]. No
      [budget] (see {!access_packed_sharded}); raises [Invalid_argument]
      unless [1 <= jobs <= sets]. *)

  val max_ways : t -> int
  val sets : t -> int

  val rate : t -> float
  (** The requested (nominal) rate. *)

  val threshold : t -> float
  (** The effective threshold [T]: the rate, lowered by budget evictions. *)

  val selected_sets : t -> int
  val effective_rate : t -> float
  (** [selected_sets / sets] — what the estimates actually scale by. *)

  val scale : t -> float
  (** [sets / selected_sets], the count multiplier [1/effective_rate]. *)

  val set_evictions : t -> int
  (** Budget-driven set evictions so far. *)

  val would_sample : t -> int -> bool
  (** Whether an access to this address would currently be sampled. *)

  val accesses : t -> int
  (** All accesses offered, sampled or not. *)

  val sampled_accesses : t -> int
  val distinct_sampled_lines : t -> int

  val raw_miss_curve : t -> int array
  (** Unscaled misses over the selected sets only, shaped like
      {!miss_curve}. *)

  val miss_curve_est : t -> float array
  (** {!raw_miss_curve} × {!scale} — the estimated full-trace miss curve. *)

  val mrc_est : t -> float array
  (** Estimated miss-ratio curve: {!miss_curve_est} over scaled sampled
      accesses (index 0 is 1 by construction; all zeros when nothing was
      sampled). Compare against the exact engine's {!mrc}. *)

  val misses_est : t -> ways:int -> float
  val evictions_est : t -> ways:int -> float
  val writebacks_est : t -> ways:int -> float
  (** Scaled per-associativity estimates; [ways] must lie in
      [1..max_ways]. *)
end

(** {2 Incremental sliding-window MRCs}

    A rolling miss-ratio curve over (approximately) the last [window]
    accesses, with O(1) amortized cost per access: the window is bucketed
    into [epochs] equal sub-histograms kept in a ring, so retirement drops
    whole epoch buckets instead of unwinding individual accesses (which a
    Mattson engine cannot do). The live engine accumulates the current
    epoch; a full epoch is snapshotted into the slot holding the oldest one
    and the counters reset, stacks and cold-line memory persisting — depths
    stay measured against true recency, only the counts age out (a line
    first seen in a retired epoch re-counts as overflow, not cold: the
    standard rolling approximation). Readings cover the live epochs plus
    the partial one — between [window] and [window + window/epochs - 1]
    accesses. While the total observed is at most [window], nothing has
    retired and every reading equals the one-shot engine's exactly; the
    property suite pins both this and that retirement never resurrects
    retired counts. This is what {!Layout.Mrc_alloc}'s incremental
    allocator consumes per tenant. *)
module Windowed : sig
  type t

  val create :
    ?translate:(int -> int) ->
    window:int ->
    epochs:int ->
    line_size:int ->
    sets:int ->
    max_ways:int ->
    unit ->
    t
  (** Geometry constraints as {!Stack_dist.create}. Raises
      [Invalid_argument] unless [window >= 1], [epochs >= 1] and [window]
      is a multiple of [epochs]. *)

  val observe : t -> kind:Memtrace.Access.kind -> int -> unit
  val observe_packed : t -> Memtrace.Packed.t -> unit

  val window : t -> int
  val epochs : t -> int
  val epoch_length : t -> int
  val max_ways : t -> int
  val sets : t -> int

  val retired_epochs : t -> int
  (** Whole epochs aged out of the window so far. *)

  val accesses_in_window : t -> int
  (** Accesses the current readings cover: live epochs plus the partial
      one, never more than [window + epoch_length - 1]. *)

  val miss_curve_now : t -> int array
  (** Shaped like {!Stack_dist.miss_curve}, over the current window. *)

  val mrc_now : t -> float array
  (** {!miss_curve_now} normalized by {!accesses_in_window}; all zeros
      when the window is empty. *)
end
