let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec loop n acc = if n <= 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

type t = {
  translate : (int -> int) option;
  line_shift : int;
  set_mask : int;
  n_sets : int;
  w : int;
  (* Per-set recency stacks, flattened: slot [set * w + d] holds the line at
     depth d (most-recent first), or -1 when the stack is shorter. *)
  lines : int array;
  (* dirty_min of the line in the same slot: the line is dirty in every
     a-way cache with a >= dirty_min. Sentinel w + 1 = clean everywhere
     tracked. Meaningless in empty slots. *)
  dirty_min : int array;
  len : int array;  (* stack length per set *)
  (* counters *)
  hist : int array;  (* exact depth d re-accesses, 0 <= d < w *)
  cross : int array;  (* cross.(a) = boundary-a crossings = evictions at a; 1..w *)
  wbs : int array;  (* wbs.(a) = writebacks at associativity a; 1..w *)
  mutable cold : int;
  mutable overflow : int;
  mutable n_accesses : int;
  seen : (int, unit) Hashtbl.t;  (* lines ever referenced (cold detection) *)
}

let create ?translate ~line_size ~sets ~max_ways () =
  if not (is_power_of_two line_size) then
    invalid_arg "Stack_dist.create: line_size must be a power of two";
  if not (is_power_of_two sets) then
    invalid_arg "Stack_dist.create: sets must be a power of two";
  if max_ways < 1 then invalid_arg "Stack_dist.create: max_ways must be >= 1";
  {
    translate;
    line_shift = log2 line_size;
    set_mask = sets - 1;
    n_sets = sets;
    w = max_ways;
    lines = Array.make (sets * max_ways) (-1);
    dirty_min = Array.make (sets * max_ways) (max_ways + 1);
    len = Array.make sets 0;
    hist = Array.make max_ways 0;
    cross = Array.make (max_ways + 1) 0;
    wbs = Array.make (max_ways + 1) 0;
    cold = 0;
    overflow = 0;
    n_accesses = 0;
    seen = Hashtbl.create 1024;
  }

let max_ways t = t.w
let sets t = t.n_sets

(* The stack update shared by demand accesses and preloads. [write] marks the
   accessed line dirty at every associativity; [counted] says whether the
   reference contributes to the distance histogram and access count
   (preloads do not, exactly like a pre-run [Sassoc.access] burst that a
   snapshot delta excludes — but the evictions/writebacks their shifts cause
   at each associativity are still crossings of live state, which
   [reset_counts] then discards along with everything else). *)
(* [traced] reports what a [traced]-way cache saw on this one access: bit 0
   set iff it hit (depth < traced), bit 1 set iff it wrote a dirty victim
   back (boundary-[traced] crossing with [dirty_min <= traced] during this
   access's shift). [traced = 0] disables reporting; the stack update is
   identical either way. *)
(* [touch_raw] expects an already-translated address: the sharded feeds
   translate once to pick the owning shard and must not pay (or apply) the
   translation twice. *)
let touch_raw t ~write ~counted ~traced addr =
  let line = addr lsr t.line_shift in
  let set = line land t.set_mask in
  let w = t.w in
  let base = set * w in
  let lines = t.lines in
  let l = Array.unsafe_get t.len set in
  (* depth of the accessed line, -1 when absent *)
  let d = ref (-1) in
  let i = ref 0 in
  while !d < 0 && !i < l do
    if Array.unsafe_get lines (base + !i) = line then d := !i;
    incr i
  done;
  let res = ref (if traced > 0 && !d >= 0 && !d < traced then 1 else 0) in
  if counted then begin
    t.n_accesses <- t.n_accesses + 1;
    if !d >= 0 then t.hist.(!d) <- t.hist.(!d) + 1
    else if Hashtbl.mem t.seen line then t.overflow <- t.overflow + 1
    else t.cold <- t.cold + 1
  end;
  if not (Hashtbl.mem t.seen line) then Hashtbl.add t.seen line ();
  (* the accessed line's own dirtiness before the shift overwrites its slot *)
  let old_dirty = if !d >= 0 then Array.unsafe_get t.dirty_min (base + !d) else w + 1 in
  (* Shift positions 0..shift-1 down one. The line leaving position a-1 for
     position a is evicted from the a-way cache (one boundary crossing); if
     dirty there, that is its writeback, after which it is clean there. The
     line leaving position w-1 falls off the stack entirely. *)
  let shift = if !d >= 0 then !d else l in
  for j = shift - 1 downto 0 do
    let a = j + 1 in
    t.cross.(a) <- t.cross.(a) + 1;
    let dm = Array.unsafe_get t.dirty_min (base + j) in
    let dm =
      if dm <= a then begin
        t.wbs.(a) <- t.wbs.(a) + 1;
        if a = traced then res := !res lor 2;
        a + 1
      end
      else dm
    in
    if a < w then begin
      Array.unsafe_set lines (base + a) (Array.unsafe_get lines (base + j));
      Array.unsafe_set t.dirty_min (base + a) dm
    end
  done;
  Array.unsafe_set lines base line;
  Array.unsafe_set t.dirty_min base
    (if write then 1
     else if !d >= 0 then min (w + 1) (max old_dirty (!d + 1))
     else w + 1);
  if !d < 0 && l < w then Array.unsafe_set t.len set (l + 1);
  !res

let touch_traced t ~write ~counted ~traced addr =
  let addr = match t.translate with None -> addr | Some f -> f addr in
  touch_raw t ~write ~counted ~traced addr

let touch t ~write ~counted addr =
  ignore (touch_traced t ~write ~counted ~traced:0 addr)

let access t ~kind addr =
  touch t ~write:(kind = Memtrace.Access.Write) ~counted:true addr

let preload t addr = touch t ~write:false ~counted:false addr

let access_packed t p =
  let n = Memtrace.Packed.length p in
  let addrs = Memtrace.Packed.raw_addrs p in
  let kinds = Memtrace.Packed.raw_kinds p in
  for i = 0 to n - 1 do
    touch t
      ~write:(Bigarray.Array1.unsafe_get kinds i = '\001')
      ~counted:true
      (Bigarray.Array1.unsafe_get addrs i)
  done

let reset_counts t =
  Array.fill t.hist 0 t.w 0;
  Array.fill t.cross 0 (t.w + 1) 0;
  Array.fill t.wbs 0 (t.w + 1) 0;
  t.cold <- 0;
  t.overflow <- 0;
  t.n_accesses <- 0

let accesses t = t.n_accesses
let cold_misses t = t.cold
let overflows t = t.overflow
let distinct_lines t = Hashtbl.length t.seen
let histogram t = Array.copy t.hist

let check_ways t a name =
  if a < 1 || a > t.w then
    invalid_arg (Printf.sprintf "Stack_dist.%s: ways %d outside 1..%d" name a t.w)

let access_traced t ~kind ~ways addr =
  check_ways t ways "access_traced";
  touch_traced t
    ~write:(kind = Memtrace.Access.Write)
    ~counted:true ~traced:ways addr

let misses t ~ways =
  check_ways t ways "misses";
  let deep = ref (t.cold + t.overflow) in
  for d = ways to t.w - 1 do
    deep := !deep + t.hist.(d)
  done;
  !deep

let hits t ~ways = t.n_accesses - misses t ~ways

let evictions t ~ways =
  check_ways t ways "evictions";
  t.cross.(ways)

let writebacks t ~ways =
  check_ways t ways "writebacks";
  t.wbs.(ways)

let miss_curve t =
  let c = Array.make (t.w + 1) 0 in
  c.(t.w) <- t.cold + t.overflow;
  for a = t.w - 1 downto 1 do
    c.(a) <- c.(a + 1) + t.hist.(a)
  done;
  c.(0) <- t.n_accesses;
  c

let mrc t =
  let c = miss_curve t in
  if t.n_accesses = 0 then Array.map (fun _ -> 0.) c
  else
    let n = float_of_int t.n_accesses in
    Array.map (fun m -> float_of_int m /. n) c

let stats t ~ways =
  let s = Stats.create ~ways in
  s.Stats.accesses <- t.n_accesses;
  s.Stats.misses <- misses t ~ways;
  s.Stats.hits <- t.n_accesses - s.Stats.misses;
  s.Stats.evictions <- evictions t ~ways;
  s.Stats.writebacks <- writebacks t ~ways;
  s

let per_tag_of_packed ?translate ~line_size ~sets ~max_ways p =
  let global = create ?translate ~line_size ~sets ~max_ways () in
  let table = Memtrace.Packed.var_table p in
  let engines =
    Array.map
      (fun name -> (name, create ?translate ~line_size ~sets ~max_ways ()))
      table
  in
  let n = Memtrace.Packed.length p in
  let addrs = Memtrace.Packed.raw_addrs p in
  let kinds = Memtrace.Packed.raw_kinds p in
  let tags = Memtrace.Packed.raw_tags p in
  for i = 0 to n - 1 do
    let addr = Bigarray.Array1.unsafe_get addrs i in
    let write = Bigarray.Array1.unsafe_get kinds i = '\001' in
    touch global ~write ~counted:true addr;
    let tag = Bigarray.Array1.unsafe_get tags i in
    if tag >= 0 then touch (snd engines.(tag)) ~write ~counted:true addr
  done;
  (global, engines)

(* {2 Set-sharded parallel sweeps}

   LRU stack distances are exactly independent per cache set: an access at
   address [a] only reads and writes the recency stack of the set [a] maps
   to, and every counter is a sum of per-set contributions. Partitioning the
   set index space into [K] shards ([set mod K]) therefore makes the Mattson
   pass embarrassingly parallel — each shard engine sees exactly the
   accesses of the sets it owns, and the merged counters are pure additions
   of disjoint per-set counts, so the merged readings are byte-identical to
   the serial engine's for any [K]. The cold/overflow split survives too:
   [seen] is keyed by whole line addresses and a line belongs to exactly one
   set, so the shard [seen] tables are disjoint and their union is the
   serial table. *)

let check_shard ~shards ~shard ~sets name =
  if shards < 1 then
    invalid_arg
      (Printf.sprintf "Stack_dist.%s: shards must be >= 1, got %d" name shards);
  if shards > sets then
    invalid_arg
      (Printf.sprintf "Stack_dist.%s: more shards (%d) than sets (%d)" name
         shards sets);
  if shard < 0 || shard >= shards then
    invalid_arg
      (Printf.sprintf "Stack_dist.%s: shard %d outside 0..%d" name shard
         (shards - 1))

let access_packed_sharded t ~shards ~shard p =
  check_shard ~shards ~shard ~sets:t.n_sets "access_packed_sharded";
  let n = Memtrace.Packed.length p in
  let addrs = Memtrace.Packed.raw_addrs p in
  let kinds = Memtrace.Packed.raw_kinds p in
  for i = 0 to n - 1 do
    let addr = Bigarray.Array1.unsafe_get addrs i in
    let taddr = match t.translate with None -> addr | Some f -> f addr in
    if ((taddr lsr t.line_shift) land t.set_mask) mod shards = shard then
      ignore
        (touch_raw t
           ~write:(Bigarray.Array1.unsafe_get kinds i = '\001')
           ~counted:true ~traced:0 taddr)
  done

let merge_into dst src =
  if dst == src then
    invalid_arg "Stack_dist.merge_into: cannot merge an engine into itself";
  if
    dst.line_shift <> src.line_shift
    || dst.n_sets <> src.n_sets
    || dst.w <> src.w
  then invalid_arg "Stack_dist.merge_into: engine geometries differ";
  let w = dst.w in
  for set = 0 to dst.n_sets - 1 do
    if src.len.(set) > 0 then begin
      if dst.len.(set) > 0 then
        invalid_arg
          (Printf.sprintf
             "Stack_dist.merge_into: both engines touched set %d (shards \
              must own disjoint sets)"
             set);
      let base = set * w in
      Array.blit src.lines base dst.lines base w;
      Array.blit src.dirty_min base dst.dirty_min base w;
      dst.len.(set) <- src.len.(set)
    end
  done;
  for d = 0 to w - 1 do
    dst.hist.(d) <- dst.hist.(d) + src.hist.(d)
  done;
  for a = 0 to w do
    dst.cross.(a) <- dst.cross.(a) + src.cross.(a);
    dst.wbs.(a) <- dst.wbs.(a) + src.wbs.(a)
  done;
  dst.cold <- dst.cold + src.cold;
  dst.overflow <- dst.overflow + src.overflow;
  dst.n_accesses <- dst.n_accesses + src.n_accesses;
  Hashtbl.iter
    (fun line () ->
      if not (Hashtbl.mem dst.seen line) then Hashtbl.add dst.seen line ())
    src.seen

(* Chunked [Packed.sub] views keep every worker streaming the (possibly
   mmap'd) columns a bounded window at a time, the same access pattern the
   out-of-core serial sweep has — the views are O(1), nothing is copied. *)
let shard_chunk = 1 lsl 16

let feed_sharded_chunked t ~shards ~shard p =
  let n = Memtrace.Packed.length p in
  let pos = ref 0 in
  while !pos < n do
    let len = min shard_chunk (n - !pos) in
    access_packed_sharded t ~shards ~shard (Memtrace.Packed.sub p ~pos:!pos ~len);
    pos := !pos + len
  done

let of_packed_parallel ?translate ?on_shard ~jobs ~line_size ~sets ~max_ways p
    =
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf
         "Stack_dist.of_packed_parallel: jobs must be a positive domain \
          count, got %d"
         jobs);
  if jobs > sets then
    invalid_arg
      (Printf.sprintf
         "Stack_dist.of_packed_parallel: more shards (jobs=%d) than sets (%d)"
         jobs sets);
  let note shard t =
    match on_shard with
    | Some f -> f ~shard ~accesses:(accesses t)
    | None -> ()
  in
  if jobs = 1 then begin
    let t = create ?translate ~line_size ~sets ~max_ways () in
    access_packed t p;
    note 0 t;
    t
  end
  else begin
    let worker shard () =
      let t = create ?translate ~line_size ~sets ~max_ways () in
      feed_sharded_chunked t ~shards:jobs ~shard p;
      t
    in
    let domains =
      Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1)))
    in
    let t0 = worker 0 () in
    note 0 t0;
    Array.iteri
      (fun k d ->
        let tk = Domain.join d in
        note (k + 1) tk;
        merge_into t0 tk)
      domains;
    t0
  end

(* {2 Spatially-hashed sampled stack distances}

   SHARDS (Waldspurger et al., FAST '15) keeps a reference iff
   [hash(location) < T] and scales every count by [1/T] — the sampled
   references are an unbiased spatial subpopulation, so the scaled depth
   histogram estimates the exact one. A set-associative Mattson engine has a
   natural sampling unit one level up: hashing individual *lines* would leave
   each set's recency stack with holes (a sampled line's depth would be its
   rank among sampled lines only, garbage at small associativity), whereas
   hashing *sets* keeps every selected set's stack exact. Sets are symmetric
   interleaved slices of the address space, so a hashed subset of them is
   exactly SHARDS' spatial subpopulation, and the per-distance counts of the
   selected sets scaled by [n_sets / selected] estimate the full-trace
   counts.

   Selection is the prefix of the sets ordered by (hash, set): lowering the
   rate can only shrink the prefix, so the sample locations at a lower rate
   are a subset of those at a higher one (SHARDS' threshold-monotonicity,
   pinned by a qcheck property). The fixed-budget variant counts distinct
   sampled lines across the selected sets and, when the budget is exceeded,
   evicts the selected set with the largest hash — lowering the effective
   threshold T to that hash, with the evicted set's entire contribution
   (counts and distinct lines) leaving the estimate, which is the
   set-granular form of SHARDS' rescaling-on-eviction: estimates are always
   computed from the currently selected sets alone. *)

(* One stateless splitmix64-style draw in [0,1) per set, seeded: the same
   mixer as [Workloads.Prng] (this library sits below it), applied to the
   set index. *)
let set_hash ~seed set =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int (set + 1)) 0x9E3779B97F4A7C15L)
      (Int64.of_int seed)
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53

module Sampled = struct
  type exact = t

  (* shadowed below by the sampled reading of the same name *)
  let exact_accesses : exact -> int = accesses
  let merge_exact = merge_into

  type entry = {
    engine : exact;
    set : int;
    hash : float;
    mutable distinct : int; (* cached [distinct_lines engine] *)
  }

  type t = {
    translate : (int -> int) option;
    line_shift : int;
    set_mask : int;
    n_sets : int;
    w : int;
    rate : float; (* nominal, as requested *)
    min_sets : int; (* eviction floor: budget adaptation never goes below *)
    budget : int option;
    entries : entry array; (* prefix positions; only [0 .. sel_len-1] live *)
    pos_of_set : int array; (* set -> prefix position, -1 unselected *)
    mutable sel_len : int;
    mutable threshold : float; (* effective T after budget adaptation *)
    mutable total_distinct : int;
    mutable offered : int; (* counted accesses, sampled or not *)
    mutable evictions : int; (* budget-driven set evictions *)
  }

  let create ?translate ?(seed = 0) ?(min_sets = 1) ?budget ~rate ~line_size
      ~sets ~max_ways () =
    if not (rate > 0. && rate <= 1.) then
      invalid_arg "Stack_dist.Sampled.create: rate must be in (0, 1]";
    if min_sets < 1 then
      invalid_arg "Stack_dist.Sampled.create: min_sets must be >= 1";
    (match budget with
    | Some b when b < 1 ->
        invalid_arg "Stack_dist.Sampled.create: budget must be >= 1"
    | _ -> ());
    if not (is_power_of_two sets) then
      invalid_arg "Stack_dist.Sampled.create: sets must be a power of two";
    if not (is_power_of_two line_size) then
      invalid_arg "Stack_dist.Sampled.create: line_size must be a power of two";
    if max_ways < 1 then
      invalid_arg "Stack_dist.Sampled.create: max_ways must be >= 1";
    let hashes = Array.init sets (fun s -> set_hash ~seed s) in
    let order = Array.init sets (fun s -> s) in
    Array.sort
      (fun a b ->
        match compare hashes.(a) hashes.(b) with
        | 0 -> compare a b
        | c -> c)
      order;
    let below = ref 0 in
    Array.iter (fun h -> if h < rate then incr below) hashes;
    let sel_len = max 1 (min sets (max min_sets !below)) in
    let entries =
      Array.init sel_len (fun p ->
          let set = order.(p) in
          {
            (* the wrapper translates and routes; each selected set is an
               exact single-set engine over already-translated addresses *)
            engine = create ~line_size ~sets:1 ~max_ways ();
            set;
            hash = hashes.(set);
            distinct = 0;
          })
    in
    let pos_of_set = Array.make sets (-1) in
    Array.iteri (fun p e -> pos_of_set.(e.set) <- p) entries;
    {
      translate;
      line_shift = log2 line_size;
      set_mask = sets - 1;
      n_sets = sets;
      w = max_ways;
      rate;
      min_sets = min sets min_sets;
      budget;
      entries;
      pos_of_set;
      sel_len;
      threshold = rate;
      total_distinct = 0;
      offered = 0;
      evictions = 0;
    }

  let evict t =
    let p = t.sel_len - 1 in
    let e = t.entries.(p) in
    t.pos_of_set.(e.set) <- -1;
    t.sel_len <- p;
    t.total_distinct <- t.total_distinct - e.distinct;
    t.threshold <- e.hash;
    t.evictions <- t.evictions + 1

  let feed t ~write addr =
    t.offered <- t.offered + 1;
    let taddr = match t.translate with None -> addr | Some f -> f addr in
    let set = (taddr lsr t.line_shift) land t.set_mask in
    let p = Array.unsafe_get t.pos_of_set set in
    if p >= 0 then begin
      let e = Array.unsafe_get t.entries p in
      touch e.engine ~write ~counted:true taddr;
      let d = Hashtbl.length e.engine.seen in
      if d <> e.distinct then begin
        t.total_distinct <- t.total_distinct + (d - e.distinct);
        e.distinct <- d;
        match t.budget with
        | Some b ->
            (* never evict through the min_sets variance floor: once there,
               the budget is best-effort, like the sel_len = 1 endpoint *)
            while t.total_distinct > b && t.sel_len > t.min_sets do
              evict t
            done
        | None -> ()
      end
    end

  let access t ~kind addr = feed t ~write:(kind = Memtrace.Access.Write) addr

  let access_packed t p =
    let n = Memtrace.Packed.length p in
    let addrs = Memtrace.Packed.raw_addrs p in
    let kinds = Memtrace.Packed.raw_kinds p in
    for i = 0 to n - 1 do
      feed t
        ~write:(Bigarray.Array1.unsafe_get kinds i = '\001')
        (Bigarray.Array1.unsafe_get addrs i)
    done

  (* Set-sharded parallel feeds, composing SHARDS sampling with the set
     shards above: selection is a per-set property (a set's hash does not
     depend on the traffic), so shard [s] of a sampled engine simply owns
     the selected sets with [set mod shards = s] and the merged per-entry
     counts are byte-identical to the serial sampled engine's. The
     fixed-budget variant is excluded: its largest-hash eviction is a
     global, order-dependent decision on [total_distinct], which sharding
     would reorder. *)

  let access_packed_sharded t ~shards ~shard p =
    if t.budget <> None then
      invalid_arg
        "Stack_dist.Sampled.access_packed_sharded: budget eviction is \
         order-dependent and cannot shard";
    check_shard ~shards ~shard ~sets:t.n_sets "Sampled.access_packed_sharded";
    let n = Memtrace.Packed.length p in
    let addrs = Memtrace.Packed.raw_addrs p in
    let kinds = Memtrace.Packed.raw_kinds p in
    for i = 0 to n - 1 do
      let addr = Bigarray.Array1.unsafe_get addrs i in
      let taddr = match t.translate with None -> addr | Some f -> f addr in
      let set = (taddr lsr t.line_shift) land t.set_mask in
      if set mod shards = shard then begin
        (* [offered] counts only this shard's sets, so the merged total is
           the serial engine's offered count, not [shards] times it. *)
        t.offered <- t.offered + 1;
        let p = Array.unsafe_get t.pos_of_set set in
        if p >= 0 then begin
          let e = Array.unsafe_get t.entries p in
          touch e.engine
            ~write:(Bigarray.Array1.unsafe_get kinds i = '\001')
            ~counted:true taddr;
          let d = Hashtbl.length e.engine.seen in
          if d <> e.distinct then begin
            t.total_distinct <- t.total_distinct + (d - e.distinct);
            e.distinct <- d
          end
        end
      end
    done

  let merge_into dst src =
    if dst == src then
      invalid_arg
        "Stack_dist.Sampled.merge_into: cannot merge an engine into itself";
    if dst.budget <> None || src.budget <> None then
      invalid_arg "Stack_dist.Sampled.merge_into: budget engines cannot merge";
    if
      dst.line_shift <> src.line_shift
      || dst.n_sets <> src.n_sets
      || dst.w <> src.w
      || dst.sel_len <> src.sel_len
    then invalid_arg "Stack_dist.Sampled.merge_into: engine geometries differ";
    for p = 0 to dst.sel_len - 1 do
      if dst.entries.(p).set <> src.entries.(p).set then
        invalid_arg
          "Stack_dist.Sampled.merge_into: selections differ (seed or rate \
           mismatch)"
    done;
    for p = 0 to dst.sel_len - 1 do
      let de = dst.entries.(p) and se = src.entries.(p) in
      merge_exact de.engine se.engine;
      let d = Hashtbl.length de.engine.seen in
      dst.total_distinct <- dst.total_distinct + (d - de.distinct);
      de.distinct <- d
    done;
    dst.offered <- dst.offered + src.offered

  let feed_sharded_chunked t ~shards ~shard p =
    let n = Memtrace.Packed.length p in
    let pos = ref 0 in
    while !pos < n do
      let len = min shard_chunk (n - !pos) in
      access_packed_sharded t ~shards ~shard
        (Memtrace.Packed.sub p ~pos:!pos ~len);
      pos := !pos + len
    done

  let of_packed_parallel ?translate ?seed ?min_sets ~jobs ~rate ~line_size
      ~sets ~max_ways p =
    if jobs < 1 then
      invalid_arg
        (Printf.sprintf
           "Stack_dist.Sampled.of_packed_parallel: jobs must be a positive \
            domain count, got %d"
           jobs);
    if jobs > sets then
      invalid_arg
        (Printf.sprintf
           "Stack_dist.Sampled.of_packed_parallel: more shards (jobs=%d) \
            than sets (%d)"
           jobs sets);
    if jobs = 1 then begin
      let t =
        create ?translate ?seed ?min_sets ~rate ~line_size ~sets ~max_ways ()
      in
      access_packed t p;
      t
    end
    else begin
      let worker shard () =
        let t =
          create ?translate ?seed ?min_sets ~rate ~line_size ~sets ~max_ways
            ()
        in
        feed_sharded_chunked t ~shards:jobs ~shard p;
        t
      in
      let domains =
        Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1)))
      in
      let t0 = worker 0 () in
      Array.iter (fun d -> merge_into t0 (Domain.join d)) domains;
      t0
    end

  let max_ways t = t.w
  let sets t = t.n_sets
  let selected_sets t = t.sel_len
  let set_evictions t = t.evictions
  let threshold t = t.threshold
  let effective_rate t = float_of_int t.sel_len /. float_of_int t.n_sets
  let scale t = float_of_int t.n_sets /. float_of_int t.sel_len
  let accesses t = t.offered
  let distinct_sampled_lines t = t.total_distinct

  let would_sample t addr =
    let taddr = match t.translate with None -> addr | Some f -> f addr in
    t.pos_of_set.((taddr lsr t.line_shift) land t.set_mask) >= 0

  let fold_selected t f init =
    let acc = ref init in
    for p = 0 to t.sel_len - 1 do
      acc := f !acc t.entries.(p).engine
    done;
    !acc

  let sampled_accesses t = fold_selected t (fun a e -> a + exact_accesses e) 0

  let raw_miss_curve t =
    let c = Array.make (t.w + 1) 0 in
    fold_selected t
      (fun () e ->
        let mc = miss_curve e in
        Array.iteri (fun i m -> c.(i) <- c.(i) + m) mc)
      ();
    c

  let miss_curve_est t =
    let s = scale t in
    Array.map (fun m -> float_of_int m *. s) (raw_miss_curve t)

  let mrc_est t =
    let c = miss_curve_est t in
    let denom = float_of_int (sampled_accesses t) *. scale t in
    if denom = 0. then Array.map (fun _ -> 0.) c
    else Array.map (fun m -> m /. denom) c

  let check_ways t a name =
    if a < 1 || a > t.w then
      invalid_arg
        (Printf.sprintf "Stack_dist.Sampled.%s: ways %d outside 1..%d" name a
           t.w)

  let est_of t name ~ways reading =
    check_ways t ways name;
    scale t *. float_of_int (fold_selected t (fun a e -> a + reading e ~ways) 0)

  let misses_est t ~ways = est_of t "misses_est" ~ways misses
  let evictions_est t ~ways = est_of t "evictions_est" ~ways evictions
  let writebacks_est t ~ways = est_of t "writebacks_est" ~ways writebacks
  let rate t = t.rate
end

(* {2 Incremental sliding-window MRCs}

   A rolling miss-ratio curve over the last [window] accesses, for
   controllers that must react to phase changes without re-sweeping the
   trace. Retiring individual accesses from a Mattson engine is not
   possible (a reference's depth contribution cannot be unwound), so the
   window is bucketed into [epochs] equal sub-histograms kept in a ring:
   the live engine accumulates the current epoch's counters; when the
   epoch fills, the counters are snapshotted into the ring slot holding
   the oldest epoch (retiring that whole epoch at once) and
   [reset_counts] zeroes the engine's counters while keeping its stacks
   and cold-line memory. Amortized cost per access is the ordinary touch
   plus O(max_ways / epoch_len) for the snapshot — O(1) for any real
   epoch length.

   The readings sum the live ring slots plus the partial current epoch,
   so they cover between [window] and [window + epoch_len - 1] recent
   accesses (whole-epoch granularity). Stack contents and the cold-line
   memory deliberately persist across retirement — depths are measured
   against true recency, only the counts age out — so a line first seen
   in a retired epoch re-counts as an overflow rather than a cold miss,
   the standard rolling approximation. While the total observed is at
   most [window], nothing has retired and every reading equals the
   one-shot engine's exactly, which the property suite pins. *)
module Windowed = struct
  type exact = t

  type t = {
    engine : exact;
    win : int;
    epoch_len : int;
    n_epochs : int;
    ring_hist : int array array; (* n_epochs rows of max_ways counters *)
    ring_cold : int array;
    ring_overflow : int array;
    ring_accesses : int array;
    mutable live : int; (* filled ring slots *)
    mutable head : int; (* next slot to write = oldest when full *)
    mutable cur : int; (* accesses in the unfinished epoch *)
    mutable retired : int; (* whole epochs aged out of the window *)
  }

  let create ?translate ~window ~epochs ~line_size ~sets ~max_ways () =
    if window < 1 then
      invalid_arg
        (Printf.sprintf
           "Stack_dist.Windowed.create: window must be a positive access \
            count, got %d"
           window);
    if epochs < 1 then
      invalid_arg
        (Printf.sprintf
           "Stack_dist.Windowed.create: epochs must be >= 1, got %d" epochs);
    if window mod epochs <> 0 then
      invalid_arg
        (Printf.sprintf
           "Stack_dist.Windowed.create: window %d is not a multiple of \
            epochs %d"
           window epochs);
    {
      engine = create ?translate ~line_size ~sets ~max_ways ();
      win = window;
      epoch_len = window / epochs;
      n_epochs = epochs;
      ring_hist = Array.init epochs (fun _ -> Array.make max_ways 0);
      ring_cold = Array.make epochs 0;
      ring_overflow = Array.make epochs 0;
      ring_accesses = Array.make epochs 0;
      live = 0;
      head = 0;
      cur = 0;
      retired = 0;
    }

  let window t = t.win
  let epochs t = t.n_epochs
  let epoch_length t = t.epoch_len
  let max_ways t = t.engine.w
  let sets t = t.engine.n_sets
  let retired_epochs t = t.retired

  (* Seal the full current epoch into the ring: overwrite the oldest slot
     (retiring its sub-histogram wholesale) and zero the live counters,
     keeping stacks and the cold-line memory. *)
  let seal t =
    let slot = t.head in
    if t.live = t.n_epochs then t.retired <- t.retired + 1
    else t.live <- t.live + 1;
    Array.blit t.engine.hist 0 t.ring_hist.(slot) 0 t.engine.w;
    t.ring_cold.(slot) <- t.engine.cold;
    t.ring_overflow.(slot) <- t.engine.overflow;
    t.ring_accesses.(slot) <- t.engine.n_accesses;
    reset_counts t.engine;
    t.head <- (slot + 1) mod t.n_epochs;
    t.cur <- 0

  let observe t ~kind addr =
    touch t.engine ~write:(kind = Memtrace.Access.Write) ~counted:true addr;
    t.cur <- t.cur + 1;
    if t.cur = t.epoch_len then seal t

  let observe_packed t p =
    let n = Memtrace.Packed.length p in
    let addrs = Memtrace.Packed.raw_addrs p in
    let kinds = Memtrace.Packed.raw_kinds p in
    for i = 0 to n - 1 do
      touch t.engine
        ~write:(Bigarray.Array1.unsafe_get kinds i = '\001')
        ~counted:true
        (Bigarray.Array1.unsafe_get addrs i);
      t.cur <- t.cur + 1;
      if t.cur = t.epoch_len then seal t
    done

  (* Sum the live slots plus the partial epoch; slot order is irrelevant
     for integer sums, so the ring is walked densely. *)
  let fold_window t =
    let w = t.engine.w in
    let hist = Array.make w 0 in
    Array.blit t.engine.hist 0 hist 0 w;
    let cold = ref t.engine.cold in
    let overflow = ref t.engine.overflow in
    let acc = ref t.engine.n_accesses in
    for s = 0 to t.live - 1 do
      let row = t.ring_hist.(s) in
      for d = 0 to w - 1 do
        hist.(d) <- hist.(d) + row.(d)
      done;
      cold := !cold + t.ring_cold.(s);
      overflow := !overflow + t.ring_overflow.(s);
      acc := !acc + t.ring_accesses.(s)
    done;
    (hist, !cold, !overflow, !acc)

  let accesses_in_window t =
    let _, _, _, acc = fold_window t in
    acc

  let miss_curve_now t =
    let hist, cold, overflow, acc = fold_window t in
    let w = t.engine.w in
    let c = Array.make (w + 1) 0 in
    c.(w) <- cold + overflow;
    for a = w - 1 downto 1 do
      c.(a) <- c.(a + 1) + hist.(a)
    done;
    c.(0) <- acc;
    c

  let mrc_now t =
    let c = miss_curve_now t in
    if c.(0) = 0 then Array.map (fun _ -> 0.) c
    else
      let n = float_of_int c.(0) in
      Array.map (fun m -> float_of_int m /. n) c
end
