let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec loop n acc = if n <= 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

type t = {
  translate : (int -> int) option;
  line_shift : int;
  set_mask : int;
  n_sets : int;
  w : int;
  (* Per-set recency stacks, flattened: slot [set * w + d] holds the line at
     depth d (most-recent first), or -1 when the stack is shorter. *)
  lines : int array;
  (* dirty_min of the line in the same slot: the line is dirty in every
     a-way cache with a >= dirty_min. Sentinel w + 1 = clean everywhere
     tracked. Meaningless in empty slots. *)
  dirty_min : int array;
  len : int array;  (* stack length per set *)
  (* counters *)
  hist : int array;  (* exact depth d re-accesses, 0 <= d < w *)
  cross : int array;  (* cross.(a) = boundary-a crossings = evictions at a; 1..w *)
  wbs : int array;  (* wbs.(a) = writebacks at associativity a; 1..w *)
  mutable cold : int;
  mutable overflow : int;
  mutable n_accesses : int;
  seen : (int, unit) Hashtbl.t;  (* lines ever referenced (cold detection) *)
}

let create ?translate ~line_size ~sets ~max_ways () =
  if not (is_power_of_two line_size) then
    invalid_arg "Stack_dist.create: line_size must be a power of two";
  if not (is_power_of_two sets) then
    invalid_arg "Stack_dist.create: sets must be a power of two";
  if max_ways < 1 then invalid_arg "Stack_dist.create: max_ways must be >= 1";
  {
    translate;
    line_shift = log2 line_size;
    set_mask = sets - 1;
    n_sets = sets;
    w = max_ways;
    lines = Array.make (sets * max_ways) (-1);
    dirty_min = Array.make (sets * max_ways) (max_ways + 1);
    len = Array.make sets 0;
    hist = Array.make max_ways 0;
    cross = Array.make (max_ways + 1) 0;
    wbs = Array.make (max_ways + 1) 0;
    cold = 0;
    overflow = 0;
    n_accesses = 0;
    seen = Hashtbl.create 1024;
  }

let max_ways t = t.w
let sets t = t.n_sets

(* The stack update shared by demand accesses and preloads. [write] marks the
   accessed line dirty at every associativity; [counted] says whether the
   reference contributes to the distance histogram and access count
   (preloads do not, exactly like a pre-run [Sassoc.access] burst that a
   snapshot delta excludes — but the evictions/writebacks their shifts cause
   at each associativity are still crossings of live state, which
   [reset_counts] then discards along with everything else). *)
(* [traced] reports what a [traced]-way cache saw on this one access: bit 0
   set iff it hit (depth < traced), bit 1 set iff it wrote a dirty victim
   back (boundary-[traced] crossing with [dirty_min <= traced] during this
   access's shift). [traced = 0] disables reporting; the stack update is
   identical either way. *)
let touch_traced t ~write ~counted ~traced addr =
  let addr = match t.translate with None -> addr | Some f -> f addr in
  let line = addr lsr t.line_shift in
  let set = line land t.set_mask in
  let w = t.w in
  let base = set * w in
  let lines = t.lines in
  let l = Array.unsafe_get t.len set in
  (* depth of the accessed line, -1 when absent *)
  let d = ref (-1) in
  let i = ref 0 in
  while !d < 0 && !i < l do
    if Array.unsafe_get lines (base + !i) = line then d := !i;
    incr i
  done;
  let res = ref (if traced > 0 && !d >= 0 && !d < traced then 1 else 0) in
  if counted then begin
    t.n_accesses <- t.n_accesses + 1;
    if !d >= 0 then t.hist.(!d) <- t.hist.(!d) + 1
    else if Hashtbl.mem t.seen line then t.overflow <- t.overflow + 1
    else t.cold <- t.cold + 1
  end;
  if not (Hashtbl.mem t.seen line) then Hashtbl.add t.seen line ();
  (* the accessed line's own dirtiness before the shift overwrites its slot *)
  let old_dirty = if !d >= 0 then Array.unsafe_get t.dirty_min (base + !d) else w + 1 in
  (* Shift positions 0..shift-1 down one. The line leaving position a-1 for
     position a is evicted from the a-way cache (one boundary crossing); if
     dirty there, that is its writeback, after which it is clean there. The
     line leaving position w-1 falls off the stack entirely. *)
  let shift = if !d >= 0 then !d else l in
  for j = shift - 1 downto 0 do
    let a = j + 1 in
    t.cross.(a) <- t.cross.(a) + 1;
    let dm = Array.unsafe_get t.dirty_min (base + j) in
    let dm =
      if dm <= a then begin
        t.wbs.(a) <- t.wbs.(a) + 1;
        if a = traced then res := !res lor 2;
        a + 1
      end
      else dm
    in
    if a < w then begin
      Array.unsafe_set lines (base + a) (Array.unsafe_get lines (base + j));
      Array.unsafe_set t.dirty_min (base + a) dm
    end
  done;
  Array.unsafe_set lines base line;
  Array.unsafe_set t.dirty_min base
    (if write then 1
     else if !d >= 0 then min (w + 1) (max old_dirty (!d + 1))
     else w + 1);
  if !d < 0 && l < w then Array.unsafe_set t.len set (l + 1);
  !res

let touch t ~write ~counted addr =
  ignore (touch_traced t ~write ~counted ~traced:0 addr)

let access t ~kind addr =
  touch t ~write:(kind = Memtrace.Access.Write) ~counted:true addr

let preload t addr = touch t ~write:false ~counted:false addr

let access_packed t p =
  let n = Memtrace.Packed.length p in
  let addrs = Memtrace.Packed.raw_addrs p in
  let kinds = Memtrace.Packed.raw_kinds p in
  for i = 0 to n - 1 do
    touch t
      ~write:(Bytes.unsafe_get kinds i = '\001')
      ~counted:true
      (Array.unsafe_get addrs i)
  done

let reset_counts t =
  Array.fill t.hist 0 t.w 0;
  Array.fill t.cross 0 (t.w + 1) 0;
  Array.fill t.wbs 0 (t.w + 1) 0;
  t.cold <- 0;
  t.overflow <- 0;
  t.n_accesses <- 0

let accesses t = t.n_accesses
let cold_misses t = t.cold
let overflows t = t.overflow
let histogram t = Array.copy t.hist

let check_ways t a name =
  if a < 1 || a > t.w then
    invalid_arg (Printf.sprintf "Stack_dist.%s: ways %d outside 1..%d" name a t.w)

let access_traced t ~kind ~ways addr =
  check_ways t ways "access_traced";
  touch_traced t
    ~write:(kind = Memtrace.Access.Write)
    ~counted:true ~traced:ways addr

let misses t ~ways =
  check_ways t ways "misses";
  let deep = ref (t.cold + t.overflow) in
  for d = ways to t.w - 1 do
    deep := !deep + t.hist.(d)
  done;
  !deep

let hits t ~ways = t.n_accesses - misses t ~ways

let evictions t ~ways =
  check_ways t ways "evictions";
  t.cross.(ways)

let writebacks t ~ways =
  check_ways t ways "writebacks";
  t.wbs.(ways)

let miss_curve t =
  let c = Array.make (t.w + 1) 0 in
  c.(t.w) <- t.cold + t.overflow;
  for a = t.w - 1 downto 1 do
    c.(a) <- c.(a + 1) + t.hist.(a)
  done;
  c.(0) <- t.n_accesses;
  c

let mrc t =
  let c = miss_curve t in
  if t.n_accesses = 0 then Array.map (fun _ -> 0.) c
  else
    let n = float_of_int t.n_accesses in
    Array.map (fun m -> float_of_int m /. n) c

let stats t ~ways =
  let s = Stats.create ~ways in
  s.Stats.accesses <- t.n_accesses;
  s.Stats.misses <- misses t ~ways;
  s.Stats.hits <- t.n_accesses - s.Stats.misses;
  s.Stats.evictions <- evictions t ~ways;
  s.Stats.writebacks <- writebacks t ~ways;
  s

let per_tag_of_packed ?translate ~line_size ~sets ~max_ways p =
  let global = create ?translate ~line_size ~sets ~max_ways () in
  let table = Memtrace.Packed.var_table p in
  let engines =
    Array.map
      (fun name -> (name, create ?translate ~line_size ~sets ~max_ways ()))
      table
  in
  let n = Memtrace.Packed.length p in
  let addrs = Memtrace.Packed.raw_addrs p in
  let kinds = Memtrace.Packed.raw_kinds p in
  let tags = Memtrace.Packed.raw_tags p in
  for i = 0 to n - 1 do
    let addr = Array.unsafe_get addrs i in
    let write = Bytes.unsafe_get kinds i = '\001' in
    touch global ~write ~counted:true addr;
    let tag = Array.unsafe_get tags i in
    if tag >= 0 then touch (snd engines.(tag)) ~write ~counted:true addr
  done;
  (global, engines)
