type kind =
  | Lru
  | Fifo
  | Bit_plru
  | Random of int

let kind_to_string = function
  | Lru -> "lru"
  | Fifo -> "fifo"
  | Bit_plru -> "plru"
  | Random s -> Printf.sprintf "random:%d" s

let kind_of_string s =
  match String.split_on_char ':' s with
  | [ "lru" ] -> Some Lru
  | [ "fifo" ] -> Some Fifo
  | [ "plru" ] -> Some Bit_plru
  | [ "random" ] -> Some (Random 42)
  | [ "random"; seed ] -> (
      match int_of_string_opt seed with
      | Some s -> Some (Random s)
      | None -> None)
  | _ -> None

let all_kinds = [ Lru; Fifo; Bit_plru; Random 42 ]

type t = {
  kind : kind;
  ways : int;
  way_mask : int;  (* (1 lsl ways) - 1: the bits a column mask may select *)
  (* timestamps: last-use time for LRU, fill time for FIFO. mru_bits: bit-PLRU
     state. rng: xorshift64* state for Random. *)
  stamps : int array;
  mru : Bytes.t;
  mutable clock : int;
  mutable rng : int64;
  select : select;
      (* victim loop among live candidates, precomputed per kind at [create]
         so the per-miss path is a single indirect call with no dispatch *)
}

and select = t -> set:int -> cand:int -> int

let slot t ~set ~way = (set * t.ways) + way

(* --- per-kind victim loops ----------------------------------------------
   Each receives [cand], a non-empty bit set of allowed ways that all hold
   valid lines, and scans it without allocating. The scan orders reproduce
   the original list-based implementation exactly (including tie-breaks), a
   property pinned by the [Oracle.victim_ref] differential property test. *)

(* Lowest set bit; [m] must be non-zero. *)
let rec lowest_bit m i = if m land 1 <> 0 then i else lowest_bit (m lsr 1) (i + 1)
let lowest_bit m = lowest_bit m 0

(* LRU / FIFO: smallest stamp wins; on equal stamps the highest way wins,
   matching the original right-to-left fold. *)
let select_oldest t ~set ~cand =
  let best = ref (-1) in
  for way = t.ways - 1 downto 0 do
    if cand land (1 lsl way) <> 0 then
      if
        !best < 0
        || t.stamps.(slot t ~set ~way) < t.stamps.(slot t ~set ~way:!best)
      then best := way
  done;
  !best

(* Bit-PLRU: first allowed way whose MRU bit is clear; if all are set (can
   happen when the mask excludes the way whose reset kept a zero), fall back
   to the first candidate. *)
let select_plru t ~set ~cand =
  let found = ref (-1) in
  let way = ref 0 in
  while !found < 0 && !way < t.ways do
    if
      cand land (1 lsl !way) <> 0
      && Bytes.get t.mru (slot t ~set ~way:!way) = '\000'
    then found := !way;
    incr way
  done;
  if !found >= 0 then !found else lowest_bit cand

let popcount m =
  let rec loop m acc = if m = 0 then acc else loop (m lsr 1) (acc + (m land 1)) in
  loop m 0

(* k-th (0-based) set bit of [m], ascending; [m] must have > k bits set. *)
let nth_bit m k =
  let rec loop m i k =
    if m land 1 <> 0 then if k = 0 then i else loop (m lsr 1) (i + 1) (k - 1)
    else loop (m lsr 1) (i + 1) k
  in
  loop m 0 k

let next_random t =
  let x = t.rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.rng <- x;
  Int64.to_int (Int64.logand x 0x3FFFFFFFFFFFFFFFL)

let select_random t ~set:_ ~cand = nth_bit cand (next_random t mod popcount cand)

let select_of_kind = function
  | Lru | Fifo -> select_oldest
  | Bit_plru -> select_plru
  | Random _ -> select_random

let create kind ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Policy.create";
  let seed = match kind with Random s when s <> 0 -> s | Random _ -> 1 | _ -> 1 in
  {
    kind;
    ways;
    way_mask = (1 lsl ways) - 1;
    stamps = Array.make (sets * ways) 0;
    mru = Bytes.make (sets * ways) '\000';
    clock = 0;
    rng = Int64.of_int seed;
    select = select_of_kind kind;
  }

let kind t = t.kind
let ways t = t.ways

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let touch_plru t ~set ~way =
  Bytes.set t.mru (slot t ~set ~way) '\001';
  (* When every way of the set is marked MRU, reset all but the newest. *)
  let all_set = ref true in
  for w = 0 to t.ways - 1 do
    if Bytes.get t.mru (slot t ~set ~way:w) = '\000' then all_set := false
  done;
  if !all_set then
    for w = 0 to t.ways - 1 do
      if w <> way then Bytes.set t.mru (slot t ~set ~way:w) '\000'
    done

let on_hit t ~set ~way =
  match t.kind with
  | Lru -> t.stamps.(slot t ~set ~way) <- tick t
  | Fifo -> ()
  | Bit_plru -> touch_plru t ~set ~way
  | Random _ -> ()

let on_fill t ~set ~way =
  match t.kind with
  | Lru | Fifo -> t.stamps.(slot t ~set ~way) <- tick t
  | Bit_plru -> touch_plru t ~set ~way
  | Random _ -> ()

let victim t ~set ~allowed ~valid =
  let allowed = Bitmask.bits allowed land t.way_mask in
  if allowed = 0 then invalid_arg "Policy.victim: empty column mask";
  (* An invalid (empty) allowed way always wins over evicting live data;
     the lowest such way, matching the original front-to-back list scan. *)
  let empties = allowed land lnot (Bitmask.bits valid) in
  if empties <> 0 then lowest_bit empties else t.select t ~set ~cand:allowed

(* --- hot-path state (for Sassoc's batched replay loop) ------------------ *)

let lru_stamps t = match t.kind with Lru -> Some t.stamps | _ -> None
let clock t = t.clock
let set_clock t c = t.clock <- c

(* --- inspection hooks (for the differential reference implementation) --- *)

let stamp t ~set ~way = t.stamps.(slot t ~set ~way)
let mru_bit t ~set ~way = Bytes.get t.mru (slot t ~set ~way) = '\001'
