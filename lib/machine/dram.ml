(* Banked DRAM with open-row buffers and a bounded channel queue.

   Address mapping is row-interleaved: global row [addr / row_bytes] lands
   on bank [row mod banks], so a stream of consecutive rows spreads across
   banks while accesses inside one row stay open-row hits. Each bank is a
   single resource (one request at a time, FIFO by issue order); the
   channel admits at most [queue_depth] requests in flight at once, slots
   freeing in issue order. Service time is the open-row hit or row-conflict
   latency from {!Timing}; a cold bank (no open row yet) prices as a
   conflict, since it pays the activation either way. *)

type config = {
  banks : int;
  row_bytes : int;
  queue_depth : int;
}

let config ?(banks = 4) ?(row_bytes = 1024) ?(queue_depth = 8) () =
  if banks < 1 then invalid_arg "Dram.config: banks must be at least 1";
  if row_bytes < 1 then invalid_arg "Dram.config: row_bytes must be positive";
  if queue_depth < 1 then
    invalid_arg "Dram.config: queue_depth must be at least 1";
  { banks; row_bytes; queue_depth }

let default_config = config ()

type bank = {
  mutable open_row : int; (* -1 = no row open yet *)
  mutable next_free : int;
}

type t = {
  cfg : config;
  row_hit_cycles : int;
  row_conflict_cycles : int;
  bank_state : bank array;
  (* issue-ordered ring of completion times of in-flight requests *)
  ring : int array;
  mutable ring_head : int;
  mutable ring_len : int;
  mutable requests : int;
  mutable row_hits : int;
  mutable row_conflicts : int;
  mutable queue_stalls : int;
}

let create (timing : Timing.t) cfg =
  if timing.Timing.dram_row_hit_cycles < 1 then
    invalid_arg "Dram.create: dram_row_hit_cycles must be positive";
  if timing.Timing.dram_row_conflict_cycles < timing.Timing.dram_row_hit_cycles
  then
    invalid_arg
      "Dram.create: dram_row_conflict_cycles must be at least the row-hit \
       latency";
  {
    cfg;
    row_hit_cycles = timing.Timing.dram_row_hit_cycles;
    row_conflict_cycles = timing.Timing.dram_row_conflict_cycles;
    bank_state =
      Array.init cfg.banks (fun _ -> { open_row = -1; next_free = 0 });
    ring = Array.make cfg.queue_depth 0;
    ring_head = 0;
    ring_len = 0;
    requests = 0;
    row_hits = 0;
    row_conflicts = 0;
    queue_stalls = 0;
  }

type outcome = {
  start : int;
  finish : int;
  bank : int;
  row_hit : bool;
}

let request t ~now ~addr =
  if addr < 0 then invalid_arg "Dram.request: negative address";
  let row = addr / t.cfg.row_bytes in
  let bank = row mod t.cfg.banks in
  let row_id = row / t.cfg.banks in
  (* the channel queue bounds outstanding requests: when full, wait for the
     oldest in-flight request to complete *)
  let admitted =
    if t.ring_len = t.cfg.queue_depth then begin
      let oldest = t.ring.(t.ring_head) in
      t.ring_head <- (t.ring_head + 1) mod t.cfg.queue_depth;
      t.ring_len <- t.ring_len - 1;
      if oldest > now then begin
        t.queue_stalls <- t.queue_stalls + 1;
        oldest
      end
      else now
    end
    else now
  in
  let b = t.bank_state.(bank) in
  let start = max admitted b.next_free in
  let row_hit = b.open_row = row_id in
  let service = if row_hit then t.row_hit_cycles else t.row_conflict_cycles in
  let finish = start + service in
  b.open_row <- row_id;
  b.next_free <- finish;
  let tail = (t.ring_head + t.ring_len) mod t.cfg.queue_depth in
  t.ring.(tail) <- finish;
  t.ring_len <- t.ring_len + 1;
  t.requests <- t.requests + 1;
  if row_hit then t.row_hits <- t.row_hits + 1
  else t.row_conflicts <- t.row_conflicts + 1;
  { start; finish; bank; row_hit }

type stats = {
  total : int;
  hits : int;
  conflicts : int;
  stalls : int;
}

let stats t =
  {
    total = t.requests;
    hits = t.row_hits;
    conflicts = t.row_conflicts;
    stalls = t.queue_stalls;
  }
