(** The event-driven timing engine behind {!System}'s [--events] replay
    paths: a core clock plus {!Mshr} (up to [mlp] outstanding fills) and a
    banked {!Dram}.

    Per request the engine walks the hit/miss/writeback-allocate FSM: every
    request pays the probe; a hit on a line whose fill is still in flight
    merges into the MSHR entry and retires when the fill lands; a miss
    acquires an MSHR (stalling the core only when all [mlp] are busy),
    writes a dirty victim back to its bank, then fetches the demand line —
    the fill overlapping younger requests. Functional cache state is the
    caller's, updated in program order, so the engine prices time and can
    never change hit/miss/writeback/eviction counts: that is the invariant
    {!Check.Event_diff} pins against the blocking in-order oracle. *)

type config = {
  mlp : int;  (** outstanding misses (MSHR entries) *)
  dram : Dram.config;
}

val config : ?mlp:int -> ?dram:Dram.config -> unit -> config
(** Defaults: [mlp = 4], {!Dram.default_config}. Raises
    [Invalid_argument] when [mlp < 1]. *)

val default_config : config

type t

val create : Timing.t -> config -> t
val now : t -> int

val elapse : t -> int -> unit
(** Advance the core clock by fully-blocking cycles (gaps, TLB walks,
    scratchpad and uncached accesses). *)

val hit : t -> line:int -> int * bool
(** Price one functional hit on [line]; returns [(retire, merged)] where
    [merged] marks a delayed hit folded into an in-flight fill. *)

val miss :
  t -> line:int -> addr:int -> victim:int option -> l2_hit:bool -> int
(** Price one functional miss filling [line] at physical [addr]; [victim]
    is the dirty victim's address to write back first (if any), [l2_hit]
    fills from the L2 instead of DRAM. Returns the retire (fill) time. *)

val prefetch : t -> addr:int -> unit
(** Price an overlapped prefetch fetch: occupies DRAM bandwidth, never
    blocks the core. *)

val finish : t -> int
(** Total elapsed cycles once every outstanding fill has drained. *)

val merges : t -> int
val mshr_stalls : t -> int
val dram_stats : t -> Dram.stats
