(** Miss-status holding registers: the bookkeeping that lets the event core
    keep N fills outstanding.

    This is a {e timing} structure only. The functional cache state is
    updated in program order by {!System} (a missed line is resident the
    moment the miss is processed), so MSHRs never change hit/miss outcomes
    — they decide {e when} a request retires: a miss allocates a slot
    (waiting for one to drain when all [size] are busy — a structural
    stall), and a subsequent hit on a line whose fill is still in flight is
    a {e delayed hit} that merges into the entry and retires when the fill
    completes. *)

type t

val create : size:int -> t
(** Raises [Invalid_argument] when [size < 1]. *)

val size : t -> int

val in_flight : t -> now:int -> line:int -> int option
(** [Some fill_done] when some slot is filling [line] and the fill
    completes strictly after [now]. *)

val note_merge : t -> unit
(** Count one delayed hit merged into an in-flight fill. *)

val acquire : t -> now:int -> int * int
(** [(slot, ready)]: the slot to fill through and the earliest time it is
    available — [ready = now] when a slot is free, otherwise the earliest
    completion among busy slots (counted as a stall). Follow with
    {!commit} once the fill completion time is known. *)

val commit : t -> slot:int -> line:int -> fill_done:int -> unit

val allocations : t -> int
val merges : t -> int
val stalls : t -> int
