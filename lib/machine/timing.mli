(** Latency parameters of the simulated embedded core.

    A fixed-latency model in the style of late-1990s embedded systems
    evaluations: one cycle per non-memory instruction, a small cache-hit
    latency, a flat miss penalty to off-chip memory, and scratchpad accesses
    at SRAM speed. The paper reports cycle counts and CPI; only the relative
    shape depends on these numbers, and they are all configurable. *)

type t = {
  hit_cycles : int;  (** L1 hit, also charged on a miss as the probe cost *)
  miss_penalty : int;  (** additional cycles to fetch a line off-chip *)
  l2_hit_cycles : int;
      (** additional cycles when a (configured) L2 holds the line, charged
          instead of [miss_penalty] *)
  writeback_penalty : int;  (** additional cycles when the victim is dirty *)
  scratchpad_cycles : int;  (** dedicated on-chip SRAM access *)
  tlb_miss_penalty : int;  (** page-table walk *)
  uncached_cycles : int;  (** accesses that bypass the cache entirely *)
  dram_row_hit_cycles : int;
      (** {!Dram} service time when the request lands in the bank's open
          row (event core only; the blocking core keeps the flat
          [miss_penalty]) *)
  dram_row_conflict_cycles : int;
      (** {!Dram} service time when the bank must close its open row and
          activate another (also the cold, no-open-row cost) *)
}

val default : t
(** hit 1, miss 20, L2 hit 6, writeback 4, scratchpad 1, TLB miss 8,
    uncached 20, DRAM row hit 12 / row conflict 28. *)

val ideal_scratchpad : t -> int
(** Cycles for a scratchpad access under this timing. *)

val wcet_cycle_bound :
  t ->
  alu:int ->
  accesses:int ->
  misses:int ->
  writebacks:int ->
  tlb_misses:int ->
  int
(** A sound worst-case cycle bound for a run whose event counts are
    bounded by the arguments, matching {!System}'s accounting: each
    access pays [hit_cycles], each miss [miss_penalty] (an upper bound
    on the L2-hit alternative), each writeback and TLB miss their
    penalties, and ALU/control instructions enter as inter-access gaps
    of one cycle each. Static bounds for the arguments come from
    {!Ir.Cache_analysis}. *)

val pp : Format.formatter -> t -> unit
