(** The whole simulated machine: core + column cache + TLB + scratchpad.

    A {!t} owns a column cache (a {!Cache.Sassoc.t} whose replacement mask
    comes from the {!Vm.Mapping.t} on every access), an optional set of
    dedicated scratchpad SRAM regions, and the timing model. Replaying a
    trace yields instruction and cycle counts, hence CPI.

    Two ways to get scratchpad behaviour, matching the paper:
    - {!add_scratchpad}: a dedicated SRAM address region (fixed hardware
      partition, the Panda-style baseline);
    - {!pin_region}: column-cache emulation — the region is re-tinted to an
      exclusive set of columns and preloaded, after which it behaves exactly
      like scratchpad (Section 2.3). *)

type config = {
  cache : Cache.Sassoc.config;
  l2 : Cache.Sassoc.config option;
      (** optional unified second level; column masks govern L1 only, L2 is
          a plain set-associative cache *)
  timing : Timing.t;
  page_size : int;
  tlb_entries : int;
}

val config :
  ?timing:Timing.t -> ?page_size:int -> ?tlb_entries:int ->
  ?l2:Cache.Sassoc.config ->
  Cache.Sassoc.config -> config
(** Defaults: {!Timing.default}, 256-byte pages (small, embedded-style, and
    fine-grained enough to tint individual arrays), 32 TLB entries, no
    L2. *)

type t

val create : config -> t
val mapping : t -> Vm.Mapping.t
val cache : t -> Cache.Sassoc.t
val l2_cache : t -> Cache.Sassoc.t option
val timing : t -> Timing.t
val page_size : t -> int

val add_scratchpad : t -> base:int -> size:int -> unit
(** Declare a dedicated SRAM region; accesses inside it bypass cache and TLB
    at {!Timing.t.scratchpad_cycles}. Regions must not overlap. *)

val in_scratchpad : t -> int -> bool
val scratchpad_bytes : t -> int

val set_streaming : t -> Vm.Tint.t -> unit
(** Mark a tint as streaming: on every L1 miss under it, the next line is
    prefetched into the same columns (paper Section 2's "separate prefetch
    buffer … within the general cache"). The prefetch is overlapped with the
    demand fetch and stays inside the tint's columns, so it cannot pollute
    other partitions; it is skipped when the next line crosses into a page
    with a different mask. *)

val clear_streaming : t -> Vm.Tint.t -> unit
val is_streaming : t -> Vm.Tint.t -> bool

val set_frame_map : t -> Vm.Frame_map.t -> unit
(** Install a virtual→physical mapping: from now on the cache indexes
    physical addresses ({!Vm.Frame_map.translate} applied per access), which
    is what page coloring manipulates. Tints, scratchpad and uncached
    regions keep operating on virtual addresses. *)

val frame_map : t -> Vm.Frame_map.t option

val add_uncached : t -> base:int -> size:int -> unit
(** Declare a region that bypasses the cache entirely (data that fits
    nowhere on-chip when the whole cache is configured as scratchpad);
    accesses cost {!Timing.t.uncached_cycles}. Must not overlap scratchpad
    or other uncached regions. *)

val in_uncached : t -> int -> bool

val pin_region : t -> base:int -> size:int -> mask:Cache.Bitmask.t -> tint:Vm.Tint.t -> unit
(** Column-as-scratchpad: re-tint [base,base+size) to [tint], map [tint]
    exclusively to [mask]'s columns, and preload every line. Raises
    [Invalid_argument] if the region is larger than the chosen columns'
    capacity — such a region cannot behave as scratchpad (Section 3.1,
    step 1). Note: this does not remove [mask]'s columns from other tints;
    the layout pass is responsible for exclusivity. *)

val preload : t -> base:int -> size:int -> unit
(** Touch every line of the region (setup; charges no simulated cycles). *)

val charge_cycles : t -> int -> unit
(** Add setup cost (e.g. explicit scratchpad copy-in) to simulated time.
    Counted in the next [run]'s delta. Negative amounts are rejected. *)

val access : t -> Memtrace.Access.t -> int
(** Execute one access; returns the cycles it consumed (including [gap]
    instruction cycles). *)

val run : t -> Memtrace.Trace.t -> Run_stats.t
(** Replay a trace one access at a time (the scalar reference path) and
    return statistics for {e this run only}. *)

val run_trace : t -> Memtrace.Trace.t -> Run_stats.t
(** Like {!run} — byte-identical {!Run_stats}, pinned by the machine-level
    differential soak — but replayed through the batched loop: the trace is
    packed into columnar form ({!Memtrace.Packed}) and replayed with the
    current page's (mask, tint) resolution memoized, so the TLB and tint
    table are only consulted on page crossings and all counters stay in
    local ints. Accesses the memoization cannot cover exactly — pages
    overlapping scratchpad/uncached regions, streaming tints, outstanding
    prefetch tags — fall back to the scalar path per access. This is the
    replay entry point the experiments use. *)

val run_packed : t -> Memtrace.Packed.t -> Run_stats.t
(** {!run_trace} without the conversion, for callers that already hold a
    packed trace. *)

val run_packed_requests :
  t -> Memtrace.Packed.t -> requests:(int * int) array -> Run_stats.t
(** Like {!run_packed}, but additionally records a per-request latency
    distribution in the result's [requests] field. Each [(start, stop)]
    span (start inclusive, stop exclusive, sorted, disjoint) is one
    request; its latency is the cycle delta across the window, so setup
    charges and accesses outside every window count toward totals but not
    toward any request. Aggregate fields are byte-identical to
    {!run_packed} over the same trace. Raises [Invalid_argument] on
    malformed spans. *)

val run_packed_events :
  ?inject_merge_bug:bool ->
  t -> events:Event.config -> Memtrace.Packed.t -> Run_stats.t
(** Replay under the event-driven timing core ({!Event}): misses overlap
    through [events.mlp] MSHRs and a banked DRAM with open-row pricing,
    and the run's [cycles] are the drained event clock. Every functional
    count — hits, misses, writebacks, evictions, TLB and L2 counters,
    prefetches — is byte-identical to {!run_packed} on the same trace (the
    event-core differential soak pins this); the event-only fields
    ([mshr_merges], [mshr_stalls], [dram_row_hits], [dram_row_conflicts])
    report the engine's behaviour. [inject_merge_bug] plants the
    [--inject-bug event] MSHR-merge mutation for harness self-tests. *)

val run_packed_requests_events :
  t -> events:Event.config -> Memtrace.Packed.t ->
  requests:(int * int) array -> Run_stats.t
(** {!run_packed_events} with per-request latency accounting. A request's
    latency is its {e retire time minus issue time}: the window opens at
    the core clock when its first access issues and closes at the latest
    retire among its accesses — overlapped misses inside a window are
    priced once, not as a sum of per-access stall costs (which
    double-counts under overlap). Span validation as in
    {!run_packed_requests}. *)

val total : t -> Run_stats.t
(** Cumulative statistics since creation (preloads excluded). *)

val flush_cache : t -> unit
val flush_tlb : t -> unit
