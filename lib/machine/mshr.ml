(* A miss-status holding register file as a pure timing structure: each
   entry remembers which cache line it is filling and when the fill
   completes. The functional cache state is updated in program order by the
   caller (the line is resident the instant the miss is processed), so the
   MSHR never affects hit/miss outcomes — only when requests retire. *)

type t = {
  size : int;
  lines : int array; (* line being filled by each slot; min_int = never used *)
  fill_done : int array; (* completion time of each slot's fill *)
  mutable allocations : int;
  mutable merges : int;
  mutable stalls : int;
}

let create ~size =
  if size < 1 then invalid_arg "Mshr.create: size must be at least 1";
  {
    size;
    lines = Array.make size min_int;
    fill_done = Array.make size min_int;
    allocations = 0;
    merges = 0;
    stalls = 0;
  }

let size t = t.size

(* A line is in flight when some slot is filling it and the fill has not
   yet completed at [now]. Later commits for the same line overwrite older
   (already completed) entries only by slot reuse, so scanning for any
   not-yet-done entry is exact. *)
let in_flight t ~now ~line =
  let rec go i =
    if i >= t.size then None
    else if t.lines.(i) = line && t.fill_done.(i) > now then
      Some t.fill_done.(i)
    else go (i + 1)
  in
  go 0

let note_merge t = t.merges <- t.merges + 1

(* Earliest slot available at or after [now]: a free slot (fill already
   done) is immediate; otherwise the request waits for the slot that
   drains first — a structural stall. *)
let acquire t ~now =
  let best = ref 0 in
  let best_done = ref t.fill_done.(0) in
  for i = 1 to t.size - 1 do
    if t.fill_done.(i) < !best_done then begin
      best := i;
      best_done := t.fill_done.(i)
    end
  done;
  t.allocations <- t.allocations + 1;
  let ready = max now !best_done in
  if ready > now then t.stalls <- t.stalls + 1;
  (!best, ready)

let commit t ~slot ~line ~fill_done =
  if slot < 0 || slot >= t.size then invalid_arg "Mshr.commit: bad slot";
  t.lines.(slot) <- line;
  t.fill_done.(slot) <- fill_done

let allocations t = t.allocations
let merges t = t.merges
let stalls t = t.stalls
