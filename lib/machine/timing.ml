type t = {
  hit_cycles : int;
  miss_penalty : int;
  l2_hit_cycles : int;
  writeback_penalty : int;
  scratchpad_cycles : int;
  tlb_miss_penalty : int;
  uncached_cycles : int;
  dram_row_hit_cycles : int;
  dram_row_conflict_cycles : int;
}

let default =
  {
    hit_cycles = 1;
    miss_penalty = 20;
    l2_hit_cycles = 6;
    writeback_penalty = 4;
    scratchpad_cycles = 1;
    tlb_miss_penalty = 8;
    uncached_cycles = 20;
    dram_row_hit_cycles = 12;
    dram_row_conflict_cycles = 28;
  }

let ideal_scratchpad t = t.scratchpad_cycles

(* Mirrors System's accounting: every access pays the probe
   [hit_cycles]; a miss adds [miss_penalty] (an L2 hit would substitute
   the smaller [l2_hit_cycles], so charging the full penalty stays an
   upper bound); a dirty eviction adds [writeback_penalty]; a TLB miss
   adds [tlb_miss_penalty]; and ALU/control work reaches [cycles] as
   inter-access gaps, at most one cycle each. *)
let wcet_cycle_bound t ~alu ~accesses ~misses ~writebacks ~tlb_misses =
  alu + (accesses * t.hit_cycles)
  + (misses * t.miss_penalty)
  + (writebacks * t.writeback_penalty)
  + (tlb_misses * t.tlb_miss_penalty)

let pp ppf t =
  Format.fprintf ppf
    "hit=%d miss=+%d l2hit=+%d wb=+%d scratchpad=%d tlb_miss=+%d uncached=%d \
     dram=%d/%d"
    t.hit_cycles t.miss_penalty t.l2_hit_cycles t.writeback_penalty
    t.scratchpad_cycles t.tlb_miss_penalty t.uncached_cycles
    t.dram_row_hit_cycles t.dram_row_conflict_cycles
