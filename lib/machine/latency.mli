(** Exact per-request latency distributions.

    A run-length-encoded multiset of per-request cycle counts. Percentiles
    are nearest-rank over the exact distribution — no binning — so a sweep
    evaluation and a machine replay that produce the same per-request cycles
    produce {!equal} distributions, byte for byte. *)

type t

val empty : t

val of_samples : int array -> t
(** Build from raw (unsorted) per-request cycle counts. *)

val count : t -> int
(** Number of requests recorded. *)

val is_empty : t -> bool

val merge : t -> t -> t
(** Union of two multisets. *)

val percentile : t -> float -> int
(** [percentile t p] is the nearest-rank [p]th percentile: the smallest
    recorded value whose cumulative count reaches [ceil (p/100 * count)].
    Raises [Invalid_argument] on an empty distribution or [p] outside
    [0, 100]. *)

val p50 : t -> int
val p99 : t -> int

val p999 : t -> int
(** The 99.9th percentile. *)

val max_value : t -> int
val sum : t -> int
val mean : t -> float

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Accumulates samples in amortized O(1); sorting and run-length encoding
    happen once in {!Builder.build}. *)
module Builder : sig
  type dist := t
  type t

  val create : ?initial_capacity:int -> unit -> t
  val push : t -> int -> unit
  val length : t -> int
  val build : t -> dist
end
