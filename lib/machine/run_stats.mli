(** Aggregate results of replaying a trace on a {!System.t}. *)

type t = {
  instructions : int;
  cycles : int;
  memory_accesses : int;
  scratchpad_accesses : int;
  tlb_hits : int;
  tlb_misses : int;
  l2_hits : int;  (** 0 unless an L2 is configured *)
  l2_misses : int;
  prefetches : int;  (** lines fetched by the stream prefetcher *)
  mshr_merges : int;
      (** delayed hits folded into an in-flight fill; 0 on the blocking
          in-order replay paths *)
  mshr_stalls : int;  (** misses that waited for an MSHR slot to drain *)
  dram_row_hits : int;  (** DRAM requests landing in an open row *)
  dram_row_conflicts : int;
      (** DRAM requests paying the row-conflict/activation latency *)
  cache : Cache.Stats.t;
  requests : Latency.t;
      (** Per-request latency distribution; {!Latency.empty} unless the run
          was given request windows (see [System.run_packed_requests]). *)
}

val cpi : t -> float
(** Clocks per instruction; 0 when no instruction executed. *)

val zero : ways:int -> t
val add : t -> t -> t
val pp : Format.formatter -> t -> unit
