type t = {
  instructions : int;
  cycles : int;
  memory_accesses : int;
  scratchpad_accesses : int;
  tlb_hits : int;
  tlb_misses : int;
  l2_hits : int;
  l2_misses : int;
  prefetches : int;
  cache : Cache.Stats.t;
  requests : Latency.t;
}

let cpi t =
  if t.instructions = 0 then 0.
  else float_of_int t.cycles /. float_of_int t.instructions

let zero ~ways =
  {
    instructions = 0;
    cycles = 0;
    memory_accesses = 0;
    scratchpad_accesses = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    l2_hits = 0;
    l2_misses = 0;
    prefetches = 0;
    cache = Cache.Stats.create ~ways;
    requests = Latency.empty;
  }

let add a b =
  {
    instructions = a.instructions + b.instructions;
    cycles = a.cycles + b.cycles;
    memory_accesses = a.memory_accesses + b.memory_accesses;
    scratchpad_accesses = a.scratchpad_accesses + b.scratchpad_accesses;
    tlb_hits = a.tlb_hits + b.tlb_hits;
    tlb_misses = a.tlb_misses + b.tlb_misses;
    l2_hits = a.l2_hits + b.l2_hits;
    l2_misses = a.l2_misses + b.l2_misses;
    prefetches = a.prefetches + b.prefetches;
    cache = Cache.Stats.add a.cache b.cache;
    requests = Latency.merge a.requests b.requests;
  }

let pp ppf t =
  let requests ppf =
    if not (Latency.is_empty t.requests) then
      Format.fprintf ppf "@ requests %a" Latency.pp t.requests
  in
  Format.fprintf ppf
    "@[<v>instructions %d@ cycles %d (CPI %.3f)@ memory accesses %d \
     (scratchpad %d)@ TLB hits %d misses %d@ L2 hits %d misses %d@ \
     prefetches %d@ %a%t@]"
    t.instructions t.cycles (cpi t) t.memory_accesses t.scratchpad_accesses
    t.tlb_hits t.tlb_misses t.l2_hits t.l2_misses t.prefetches Cache.Stats.pp
    t.cache requests
