type t = {
  instructions : int;
  cycles : int;
  memory_accesses : int;
  scratchpad_accesses : int;
  tlb_hits : int;
  tlb_misses : int;
  l2_hits : int;
  l2_misses : int;
  prefetches : int;
  mshr_merges : int;
  mshr_stalls : int;
  dram_row_hits : int;
  dram_row_conflicts : int;
  cache : Cache.Stats.t;
  requests : Latency.t;
}

let cpi t =
  if t.instructions = 0 then 0.
  else float_of_int t.cycles /. float_of_int t.instructions

let zero ~ways =
  {
    instructions = 0;
    cycles = 0;
    memory_accesses = 0;
    scratchpad_accesses = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    l2_hits = 0;
    l2_misses = 0;
    prefetches = 0;
    mshr_merges = 0;
    mshr_stalls = 0;
    dram_row_hits = 0;
    dram_row_conflicts = 0;
    cache = Cache.Stats.create ~ways;
    requests = Latency.empty;
  }

let add a b =
  {
    instructions = a.instructions + b.instructions;
    cycles = a.cycles + b.cycles;
    memory_accesses = a.memory_accesses + b.memory_accesses;
    scratchpad_accesses = a.scratchpad_accesses + b.scratchpad_accesses;
    tlb_hits = a.tlb_hits + b.tlb_hits;
    tlb_misses = a.tlb_misses + b.tlb_misses;
    l2_hits = a.l2_hits + b.l2_hits;
    l2_misses = a.l2_misses + b.l2_misses;
    prefetches = a.prefetches + b.prefetches;
    mshr_merges = a.mshr_merges + b.mshr_merges;
    mshr_stalls = a.mshr_stalls + b.mshr_stalls;
    dram_row_hits = a.dram_row_hits + b.dram_row_hits;
    dram_row_conflicts = a.dram_row_conflicts + b.dram_row_conflicts;
    cache = Cache.Stats.add a.cache b.cache;
    requests = Latency.merge a.requests b.requests;
  }

let pp ppf t =
  let requests ppf =
    if not (Latency.is_empty t.requests) then
      Format.fprintf ppf "@ requests %a" Latency.pp t.requests
  in
  let events ppf =
    if
      t.mshr_merges <> 0 || t.mshr_stalls <> 0 || t.dram_row_hits <> 0
      || t.dram_row_conflicts <> 0
    then
      Format.fprintf ppf
        "@ MSHR merges %d stalls %d@ DRAM row hits %d conflicts %d"
        t.mshr_merges t.mshr_stalls t.dram_row_hits t.dram_row_conflicts
  in
  Format.fprintf ppf
    "@[<v>instructions %d@ cycles %d (CPI %.3f)@ memory accesses %d \
     (scratchpad %d)@ TLB hits %d misses %d@ L2 hits %d misses %d@ \
     prefetches %d%t@ %a%t@]"
    t.instructions t.cycles (cpi t) t.memory_accesses t.scratchpad_accesses
    t.tlb_hits t.tlb_misses t.l2_hits t.l2_misses t.prefetches events
    Cache.Stats.pp t.cache requests
