(* Exact per-request latency multiset, stored run-length encoded over the
   sorted distinct cycle counts. Percentiles are nearest-rank over the exact
   distribution — no binning, so sweep evaluation and machine replay agree
   byte-for-byte whenever their per-request cycles do. *)

type t = { values : int array; counts : int array; total : int }

let empty = { values = [||]; counts = [||]; total = 0 }

let count t = t.total

let is_empty t = t.total = 0

let of_sorted_samples sorted =
  let n = Array.length sorted in
  if n = 0 then empty
  else begin
    let distinct = ref 1 in
    for i = 1 to n - 1 do
      if sorted.(i) <> sorted.(i - 1) then incr distinct
    done;
    let values = Array.make !distinct 0 in
    let counts = Array.make !distinct 0 in
    let j = ref 0 in
    values.(0) <- sorted.(0);
    counts.(0) <- 1;
    for i = 1 to n - 1 do
      if sorted.(i) = values.(!j) then counts.(!j) <- counts.(!j) + 1
      else begin
        incr j;
        values.(!j) <- sorted.(i);
        counts.(!j) <- 1
      end
    done;
    { values; counts; total = n }
  end

let of_samples samples =
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  of_sorted_samples sorted

let merge a b =
  if a.total = 0 then b
  else if b.total = 0 then a
  else begin
    let na = Array.length a.values and nb = Array.length b.values in
    let values = Array.make (na + nb) 0 in
    let counts = Array.make (na + nb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na || !j < nb do
      if !j >= nb || (!i < na && a.values.(!i) < b.values.(!j)) then begin
        values.(!k) <- a.values.(!i);
        counts.(!k) <- a.counts.(!i);
        incr i; incr k
      end
      else if !i >= na || b.values.(!j) < a.values.(!i) then begin
        values.(!k) <- b.values.(!j);
        counts.(!k) <- b.counts.(!j);
        incr j; incr k
      end
      else begin
        values.(!k) <- a.values.(!i);
        counts.(!k) <- a.counts.(!i) + b.counts.(!j);
        incr i; incr j; incr k
      end
    done;
    { values = Array.sub values 0 !k;
      counts = Array.sub counts 0 !k;
      total = a.total + b.total }
  end

(* Nearest-rank: the smallest value whose cumulative count reaches
   ceil(p/100 * total), clamped to [1, total]. The epsilon absorbs binary
   representation error in p (99.9/100 * 1000 evaluates slightly above 999,
   which must not round up to rank 1000). *)
let percentile t p =
  if t.total = 0 then invalid_arg "Latency.percentile: empty distribution";
  if not (p >= 0. && p <= 100.) then
    invalid_arg "Latency.percentile: p must lie in [0, 100]";
  let rank =
    let r =
      int_of_float
        (Float.ceil ((p /. 100. *. float_of_int t.total) -. 1e-9))
    in
    max 1 (min t.total r)
  in
  let i = ref 0 and seen = ref 0 in
  while !seen + t.counts.(!i) < rank do
    seen := !seen + t.counts.(!i);
    incr i
  done;
  t.values.(!i)

let p50 t = percentile t 50.
let p99 t = percentile t 99.
let p999 t = percentile t 99.9

let max_value t =
  if t.total = 0 then invalid_arg "Latency.max_value: empty distribution";
  t.values.(Array.length t.values - 1)

let sum t =
  let acc = ref 0 in
  Array.iteri (fun i v -> acc := !acc + (v * t.counts.(i))) t.values;
  !acc

let mean t =
  if t.total = 0 then invalid_arg "Latency.mean: empty distribution";
  float_of_int (sum t) /. float_of_int t.total

let equal a b =
  a.total = b.total
  && a.values = b.values
  && a.counts = b.counts

let pp ppf t =
  if t.total = 0 then Format.fprintf ppf "no requests"
  else
    Format.fprintf ppf
      "%d requests, p50 %d / p99 %d / p99.9 %d cycles (mean %.1f)" t.total
      (p50 t) (p99 t) (p999 t) (mean t)

module Builder = struct
  type dist = t

  type t = { mutable samples : int array; mutable len : int }

  let create ?(initial_capacity = 64) () =
    { samples = Array.make (max 1 initial_capacity) 0; len = 0 }

  let push t x =
    if x < 0 then invalid_arg "Latency.Builder.push: negative latency";
    if t.len = Array.length t.samples then begin
      let bigger = Array.make (2 * t.len) 0 in
      Array.blit t.samples 0 bigger 0 t.len;
      t.samples <- bigger
    end;
    t.samples.(t.len) <- x;
    t.len <- t.len + 1

  let length t = t.len

  let build t : dist =
    let sorted = Array.sub t.samples 0 t.len in
    Array.sort compare sorted;
    of_sorted_samples sorted
end
