module Access = Memtrace.Access
module Trace = Memtrace.Trace
module Sassoc = Cache.Sassoc
module Bitmask = Cache.Bitmask

type config = {
  cache : Sassoc.config;
  l2 : Sassoc.config option;
  timing : Timing.t;
  page_size : int;
  tlb_entries : int;
}

let config ?(timing = Timing.default) ?(page_size = 256) ?(tlb_entries = 32)
    ?l2 cache =
  { cache; l2; timing; page_size; tlb_entries }

type region = {
  base : int;
  size : int;
}

type t = {
  cfg : config;
  cache : Sassoc.t;
  l2 : Sassoc.t option;
  mapping : Vm.Mapping.t;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable prefetches : int;
  streaming_tints : (Vm.Tint.t, unit) Hashtbl.t;
  (* physical lines brought in by the prefetcher and not yet demanded:
     first use triggers the next prefetch (tagged prefetching) *)
  prefetch_tagged : (int, unit) Hashtbl.t;
  mutable scratchpads : region list;
  mutable uncached : region list;
  mutable frame_map : Vm.Frame_map.t option;
  mutable instructions : int;
  mutable cycles : int;
  mutable memory_accesses : int;
  mutable scratchpad_accesses : int;
  mutable pending_setup_cycles : int;
  mutable mshr_merges : int;
  mutable mshr_stalls : int;
  mutable dram_row_hits : int;
  mutable dram_row_conflicts : int;
  (* TLB counters live in the TLB itself; run deltas are snapshot-based. *)
}

let create cfg =
  {
    cfg;
    cache = Sassoc.create cfg.cache;
    l2 = Option.map Sassoc.create cfg.l2;
    l2_hits = 0;
    l2_misses = 0;
    prefetches = 0;
    streaming_tints = Hashtbl.create 4;
    prefetch_tagged = Hashtbl.create 64;
    mapping =
      Vm.Mapping.create ~tlb_entries:cfg.tlb_entries ~page_size:cfg.page_size
        ~columns:cfg.cache.Sassoc.ways ();
    scratchpads = [];
    uncached = [];
    frame_map = None;
    instructions = 0;
    cycles = 0;
    memory_accesses = 0;
    scratchpad_accesses = 0;
    pending_setup_cycles = 0;
    mshr_merges = 0;
    mshr_stalls = 0;
    dram_row_hits = 0;
    dram_row_conflicts = 0;
  }

let mapping t = t.mapping
let l2_cache t = t.l2

let set_streaming t tint = Hashtbl.replace t.streaming_tints tint ()
let clear_streaming t tint = Hashtbl.remove t.streaming_tints tint
let is_streaming t tint = Hashtbl.mem t.streaming_tints tint
let set_frame_map t fm = t.frame_map <- Some fm
let frame_map t = t.frame_map

let physical t addr =
  match t.frame_map with None -> addr | Some fm -> Vm.Frame_map.translate fm addr
let cache t = t.cache
let timing t = t.cfg.timing
let page_size t = t.cfg.page_size

let overlaps a b = a.base < b.base + b.size && b.base < a.base + a.size

let add_scratchpad t ~base ~size =
  if size <= 0 then invalid_arg "System.add_scratchpad: size must be positive";
  let r = { base; size } in
  if List.exists (overlaps r) t.scratchpads then
    invalid_arg "System.add_scratchpad: overlapping region";
  t.scratchpads <- r :: t.scratchpads

let in_region regions addr =
  List.exists (fun r -> addr >= r.base && addr < r.base + r.size) regions

let in_scratchpad t addr = in_region t.scratchpads addr
let in_uncached t addr = in_region t.uncached addr

let add_uncached t ~base ~size =
  if size <= 0 then invalid_arg "System.add_uncached: size must be positive";
  let r = { base; size } in
  if List.exists (overlaps r) t.scratchpads || List.exists (overlaps r) t.uncached
  then invalid_arg "System.add_uncached: overlapping region";
  t.uncached <- r :: t.uncached

let scratchpad_bytes t =
  List.fold_left (fun acc r -> acc + r.size) 0 t.scratchpads

let preload t ~base ~size =
  if size <= 0 then invalid_arg "System.preload: size must be positive";
  let line = t.cfg.cache.Sassoc.line_size in
  let first = base / line and last = (base + size - 1) / line in
  for l = first to last do
    if not (in_scratchpad t (l * line)) then begin
      let mask = Vm.Mapping.mask_of_quiet t.mapping (l * line) in
      ignore (Sassoc.access t.cache ~mask ~kind:Access.Read (physical t (l * line)))
    end
  done

let pin_region t ~base ~size ~mask ~tint =
  if Bitmask.is_empty mask then invalid_arg "System.pin_region: empty mask";
  let capacity =
    Bitmask.count mask * Sassoc.column_size_bytes t.cfg.cache
  in
  if size > capacity then
    invalid_arg
      (Printf.sprintf
         "System.pin_region: region (%d B) exceeds column capacity (%d B)"
         size capacity);
  ignore (Vm.Mapping.retint_region t.mapping ~base ~size tint);
  Vm.Mapping.remap_tint t.mapping tint mask;
  preload t ~base ~size

(* Setup charges accrue into a pending pot so that they land inside the
   NEXT run's delta (apply-then-run must see the cost). *)
let charge_cycles t n =
  if n < 0 then invalid_arg "System.charge_cycles: negative charge";
  t.pending_setup_cycles <- t.pending_setup_cycles + n

(* The cached half of one access, after VM resolution: cache lookup,
   optional L2, stream prefetch, cycle accounting. The TLB miss penalty is
   the caller's job (the scalar path and the batched loop account for it at
   different points). *)
let access_cached t ~addr ~kind ~mask ~tint =
  let timing = t.cfg.timing in
  let stats = Sassoc.stats t.cache in
  let wb_before = stats.Cache.Stats.writebacks in
  (* Stream prefetch (Section 2: a prefetch buffer carved out of the
     general cache). Tagged next-line prefetching: both a miss and the
     first use of a previously-prefetched line fetch the line after it —
     into the stream's own columns, overlapped with memory time (no extra
     latency in this model). Prefetching stops where the next line's mask
     differs (region boundary). *)
  let maybe_prefetch () =
    if Hashtbl.mem t.streaming_tints tint then begin
      let line = t.cfg.cache.Sassoc.line_size in
      let next = addr + line in
      let next_mask = Vm.Mapping.mask_of_quiet t.mapping next in
      let next_phys = physical t next in
      if
        Bitmask.equal next_mask mask
        && Sassoc.probe t.cache next_phys = None
      then begin
        ignore (Sassoc.fill t.cache ~mask next_phys);
        Hashtbl.replace t.prefetch_tagged (next_phys / line) ();
        t.prefetches <- t.prefetches + 1
      end
    end
  in
  let phys = physical t addr in
  let phys_line = phys / t.cfg.cache.Sassoc.line_size in
  match Sassoc.access t.cache ~mask ~kind phys with
  | Sassoc.Hit _ ->
      t.cycles <- t.cycles + timing.Timing.hit_cycles;
      if Hashtbl.mem t.prefetch_tagged phys_line then begin
        Hashtbl.remove t.prefetch_tagged phys_line;
        maybe_prefetch ()
      end
  | Sassoc.Miss _ ->
      t.cycles <- t.cycles + timing.Timing.hit_cycles;
      (* the line comes from L2 when one is configured and holds it *)
      (match t.l2 with
      | None -> t.cycles <- t.cycles + timing.Timing.miss_penalty
      | Some l2 -> (
          match Sassoc.access l2 ~kind phys with
          | Sassoc.Hit _ ->
              t.l2_hits <- t.l2_hits + 1;
              t.cycles <- t.cycles + timing.Timing.l2_hit_cycles
          | Sassoc.Miss _ ->
              t.l2_misses <- t.l2_misses + 1;
              t.cycles <- t.cycles + timing.Timing.miss_penalty));
      if stats.Cache.Stats.writebacks > wb_before then
        t.cycles <- t.cycles + timing.Timing.writeback_penalty;
      maybe_prefetch ()

(* One access, scalar reference path. *)
let access_scalar t ~addr ~kind ~gap =
  let timing = t.cfg.timing in
  t.instructions <- t.instructions + gap + 1;
  t.cycles <- t.cycles + gap;
  t.memory_accesses <- t.memory_accesses + 1;
  if in_scratchpad t addr then begin
    t.scratchpad_accesses <- t.scratchpad_accesses + 1;
    t.cycles <- t.cycles + timing.Timing.scratchpad_cycles
  end
  else if in_uncached t addr then
    t.cycles <- t.cycles + timing.Timing.uncached_cycles
  else begin
    let mask, tint, outcome = Vm.Mapping.resolve t.mapping addr in
    (match outcome with
    | Vm.Tlb.Hit -> ()
    | Vm.Tlb.Miss -> t.cycles <- t.cycles + timing.Timing.tlb_miss_penalty);
    access_cached t ~addr ~kind ~mask ~tint
  end

let access t (a : Access.t) =
  let before = t.cycles in
  access_scalar t ~addr:a.Access.addr ~kind:a.Access.kind ~gap:a.Access.gap;
  t.cycles - before

let snapshot t =
  {
    Run_stats.instructions = t.instructions;
    cycles = t.cycles;
    memory_accesses = t.memory_accesses;
    scratchpad_accesses = t.scratchpad_accesses;
    tlb_hits = Vm.Tlb.hits (Vm.Mapping.tlb t.mapping);
    tlb_misses = Vm.Tlb.misses (Vm.Mapping.tlb t.mapping);
    l2_hits = t.l2_hits;
    l2_misses = t.l2_misses;
    prefetches = t.prefetches;
    mshr_merges = t.mshr_merges;
    mshr_stalls = t.mshr_stalls;
    dram_row_hits = t.dram_row_hits;
    dram_row_conflicts = t.dram_row_conflicts;
    cache = Cache.Stats.copy (Sassoc.stats t.cache);
    requests = Latency.empty;
  }

let log2 n =
  let rec loop n acc = if n <= 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

(* Batched replay over packed columns. Byte-identical to folding [access]
   over the same accesses (the machine-level differential soak pins this),
   but organized around the invariant that during one replay the page table,
   tint table, regions, frame map and streaming set are all constant — only
   the TLB mutates, and only through our own lookups. Hence:

   - a small K-entry memo caches (page, tint, mask, streaming?) for recently
     seen pages. A memo hit is a guaranteed TLB hit — memo entries are
     invalidated whenever a real lookup evicts their page, so memoized
     implies resident — and costs no hash lookups at all: the hit is
     credited in bulk via [Tlb.note_hits] and its LRU touch is {e deferred}.
     A run of guaranteed hits only reorders the touched entries to the front
     of the LRU, so replaying one touch per memoized page, oldest last-use
     first ([Tlb.touch_resident]), immediately before the next real TLB
     operation reproduces the exact LRU state the per-access path builds;
   - tint -> mask is constant, so the tint-table lookup (a string-keyed
     hash) is memoized on the last tint seen;
   - counters accrue in local ints and land in [t]'s fields once at the end
     (every counter is a sum, so interleaving with the scalar path's direct
     field updates commutes).

   Pages overlapping a scratchpad/uncached region take the scalar path per
   access (the region test is per-address, not per-page) and are never
   memoized; the scalar path's resolve can evict any TLB entry, so the memo
   is cleared after it. Streaming pages and accesses while prefetch-tagged
   lines are outstanding use the always-correct [access_cached] cache path
   (the scalar hit path consults the tag table on every hit), but their TLB
   behaviour is one lookup per access just like any other page, so they
   memoize fine. *)
let replay_packed t (p : Memtrace.Packed.t) =
  let n = Memtrace.Packed.length p in
  if n > 0 then begin
    let addrs = Memtrace.Packed.raw_addrs p in
    let gaps = Memtrace.Packed.raw_gaps p in
    let kinds = Memtrace.Packed.raw_kinds p in
    let timing = t.cfg.timing in
    let hit_cycles = timing.Timing.hit_cycles in
    let miss_penalty = timing.Timing.miss_penalty in
    let l2_hit_cycles = timing.Timing.l2_hit_cycles in
    let writeback_penalty = timing.Timing.writeback_penalty in
    let tlb_miss_penalty = timing.Timing.tlb_miss_penalty in
    let cache = t.cache in
    let l2 = t.l2 in
    let fm = t.frame_map in
    let tlb = Vm.Mapping.tlb t.mapping in
    let tint_table = Vm.Mapping.tint_table t.mapping in
    let page_size = t.cfg.page_size in
    let page_shift = log2 page_size in
    (* local counters, flushed into [t] after the loop. Per-access constants
       are derived rather than accumulated: every non-scalar access
       contributes gap+1 instructions, one memory access and (on the plain
       cache path) hit_cycles — so the loop only tracks [gap_sum] and a few
       small counts, and the arithmetic happens once at the end *)
    let cycles = ref 0 in
    let gap_sum = ref 0 in
    let nonscalar_n = ref 0 in
    let crossing_n = ref 0 in
    let cached_n = ref 0 in
    let l2_hits = ref 0 in
    let l2_misses = ref 0 in
    (* direct-mapped page memo with deferred LRU touches: slot = low bits of
       the page number, one compare per probe. Collisions merely evict the
       memo entry (the next access to that page pays a real — and guaranteed
       to hit — TLB lookup); correctness never depends on memo capacity *)
    let memo_bits = 7 in
    let memo_size = 1 lsl memo_bits in
    let memo_mask = memo_size - 1 in
    let m_page = Array.make memo_size min_int in
    let m_seq = Array.make memo_size min_int in
    let m_mask = Array.make memo_size Bitmask.empty in
    let m_tint = Array.make memo_size Vm.Tint.default in
    let m_stream = Array.make memo_size false in
    let m_pending = Array.make memo_size false in
    (* slots with a deferred touch, in first-pending order; sorted by
       last-use seq at flush time *)
    let pending_slots = Array.make memo_size 0 in
    let pending_count = ref 0 in
    let flush_touches () =
      let c = !pending_count in
      if c > 0 then begin
        (* insertion sort by last-use seq, ascending; runs are short *)
        for a = 1 to c - 1 do
          let sl = pending_slots.(a) in
          let key = m_seq.(sl) in
          let b = ref (a - 1) in
          while !b >= 0 && m_seq.(pending_slots.(!b)) > key do
            pending_slots.(!b + 1) <- pending_slots.(!b);
            decr b
          done;
          pending_slots.(!b + 1) <- sl
        done;
        for a = 0 to c - 1 do
          let sl = pending_slots.(a) in
          m_pending.(sl) <- false;
          Vm.Tlb.touch_resident tlb m_page.(sl)
        done;
        pending_count := 0
      end
    in
    let drop_page page =
      let sl = page land memo_mask in
      if m_page.(sl) = page then begin
        m_page.(sl) <- min_int;
        m_seq.(sl) <- min_int
      end
    in
    let clear_memo () =
      Array.fill m_page 0 memo_size min_int;
      Array.fill m_seq 0 memo_size min_int;
      Array.fill m_pending 0 memo_size false;
      pending_count := 0
    in
    let last_tint = ref None in
    let last_mask = ref Bitmask.empty in
    let mask_of_tint tint =
      match !last_tint with
      | Some lt when Vm.Tint.equal lt tint -> !last_mask
      | _ ->
          let m = Vm.Tint_table.lookup tint_table tint in
          last_tint := Some tint;
          last_mask := m;
          m
    in
    let page_touches_region page =
      (t.scratchpads != [] || t.uncached != [])
      &&
      let base = page lsl page_shift in
      let hit r = r.base < base + page_size && base < r.base + r.size in
      List.exists hit t.scratchpads || List.exists hit t.uncached
    in
    (* the streaming set is constant during a replay, and with it empty no
       prefetch tag can ever be inserted — so if both tables are empty at
       entry the tag-aware cache path is unreachable for the whole replay *)
    let tags_possible =
      Hashtbl.length t.streaming_tints > 0
      || Hashtbl.length t.prefetch_tagged > 0
    in
    let fast_cache_access ~mask ~addr ~kind =
      let phys =
        match fm with None -> addr | Some fm -> Vm.Frame_map.translate fm addr
      in
      let code = Sassoc.access_coded cache ~mask ~kind phys in
      (* base hit_cycles charged arithmetically at the end *)
      if code <> 0 then begin
        (match l2 with
        | None -> cycles := !cycles + miss_penalty
        | Some l2c ->
            if Sassoc.access_coded l2c ~kind phys land 1 = 0 then begin
              incr l2_hits;
              cycles := !cycles + l2_hit_cycles
            end
            else begin
              incr l2_misses;
              cycles := !cycles + miss_penalty
            end);
        if code land 2 <> 0 then cycles := !cycles + writeback_penalty
      end
    in
    for i = 0 to n - 1 do
      let addr = Bigarray.Array1.unsafe_get addrs i in
      let gap = Bigarray.Array1.unsafe_get gaps i in
      let kind =
        match Bigarray.Array1.unsafe_get kinds i with
        | '\001' -> Access.Write
        | '\002' -> Access.Ifetch
        | _ -> Access.Read
      in
      let page = addr lsr page_shift in
      let j = page land memo_mask in
      if Array.unsafe_get m_page j = page then begin
        (* memoized page: guaranteed TLB hit (credited in bulk after the
           loop) with its LRU touch deferred *)
        Array.unsafe_set m_seq j i;
        if not (Array.unsafe_get m_pending j) then begin
          Array.unsafe_set m_pending j true;
          Array.unsafe_set pending_slots !pending_count j;
          incr pending_count
        end;
        gap_sum := !gap_sum + gap;
        incr nonscalar_n;
        if
          tags_possible
          && (Array.unsafe_get m_stream j
             || Hashtbl.length t.prefetch_tagged > 0)
        then begin
          incr cached_n;
          access_cached t ~addr ~kind
            ~mask:(Array.unsafe_get m_mask j)
            ~tint:(Array.unsafe_get m_tint j)
        end
        else fast_cache_access ~mask:(Array.unsafe_get m_mask j) ~addr ~kind
      end
      else if page_touches_region page then begin
        (* mixed page: scratchpad/uncached membership is per-address, and
           the scalar resolve can evict any TLB entry — drop the memo *)
        flush_touches ();
        access_scalar t ~addr ~kind ~gap;
        clear_memo ()
      end
      else begin
        (* memo miss on a pure page: settle deferred touches, then do the
           real lookup and install the page in the memo *)
        flush_touches ();
        let m0 = Vm.Tlb.misses tlb in
        let tint = Vm.Tlb.lookup_page_quick tlb page in
        let tlb_missed = Vm.Tlb.misses tlb <> m0 in
        if tlb_missed then begin
          let ev = Vm.Tlb.last_evicted tlb in
          if ev <> min_int then drop_page ev
        end;
        let mask = mask_of_tint tint in
        let stream =
          Hashtbl.length t.streaming_tints > 0
          && Hashtbl.mem t.streaming_tints tint
        in
        m_page.(j) <- page;
        m_seq.(j) <- i;
        m_mask.(j) <- mask;
        m_tint.(j) <- tint;
        m_stream.(j) <- stream;
        m_pending.(j) <- false;
        gap_sum := !gap_sum + gap;
        incr nonscalar_n;
        incr crossing_n;
        if tlb_missed then cycles := !cycles + tlb_miss_penalty;
        if tags_possible && (stream || Hashtbl.length t.prefetch_tagged > 0)
        then begin
          incr cached_n;
          access_cached t ~addr ~kind ~mask ~tint
        end
        else fast_cache_access ~mask ~addr ~kind
      end
    done;
    flush_touches ();
    (* non-scalar accesses: gap+1 instructions and one memory access each;
       the (nonscalar_n - cached_n) that took [fast_cache_access] each owe
       the base hit_cycles ([access_cached] charged its own); memoized
       accesses were exactly the non-crossing ones, all guaranteed hits *)
    t.instructions <- t.instructions + !gap_sum + !nonscalar_n;
    t.cycles <-
      t.cycles + !cycles + !gap_sum
      + ((!nonscalar_n - !cached_n) * hit_cycles);
    t.memory_accesses <- t.memory_accesses + !nonscalar_n;
    t.l2_hits <- t.l2_hits + !l2_hits;
    t.l2_misses <- t.l2_misses + !l2_misses;
    Vm.Tlb.note_hits tlb (!nonscalar_n - !crossing_n)
  end

let run_with t replay =
  let before = snapshot t in
  t.cycles <- t.cycles + t.pending_setup_cycles;
  t.pending_setup_cycles <- 0;
  replay ();
  let after = snapshot t in
  {
    Run_stats.instructions = after.instructions - before.instructions;
    cycles = after.cycles - before.cycles;
    memory_accesses = after.memory_accesses - before.memory_accesses;
    scratchpad_accesses =
      after.scratchpad_accesses - before.scratchpad_accesses;
    tlb_hits = after.tlb_hits - before.tlb_hits;
    tlb_misses = after.tlb_misses - before.tlb_misses;
    l2_hits = after.l2_hits - before.l2_hits;
    l2_misses = after.l2_misses - before.l2_misses;
    prefetches = after.prefetches - before.prefetches;
    mshr_merges = after.mshr_merges - before.mshr_merges;
    mshr_stalls = after.mshr_stalls - before.mshr_stalls;
    dram_row_hits = after.dram_row_hits - before.dram_row_hits;
    dram_row_conflicts = after.dram_row_conflicts - before.dram_row_conflicts;
    cache = Cache.Stats.sub after.cache before.cache;
    requests = Latency.empty;
  }

let run t trace =
  run_with t (fun () -> Trace.iter (fun a -> ignore (access t a)) trace)

let run_packed t packed = run_with t (fun () -> replay_packed t packed)

(* Replay with per-request latency accounting. Requests are (start, stop)
   access-index spans; the latency of a request is the cycle delta across
   its window, so setup charges (applied by [run_with] before the first
   access) and inter-request accesses never count against any request. The
   scalar path is used per access — the soak pins it byte-identical to the
   batched loop, so aggregate stats match [run_packed] exactly. *)
let run_packed_requests t (p : Memtrace.Packed.t) ~requests =
  let n = Memtrace.Packed.length p in
  Array.iteri
    (fun i (start, stop) ->
      if start < 0 || start >= stop || stop > n then
        invalid_arg "System.run_packed_requests: request span out of bounds";
      if i > 0 && start < snd requests.(i - 1) then
        invalid_arg
          "System.run_packed_requests: request spans must be sorted and \
           disjoint")
    requests;
  let addrs = Memtrace.Packed.raw_addrs p in
  let gaps = Memtrace.Packed.raw_gaps p in
  let kinds = Memtrace.Packed.raw_kinds p in
  let lat =
    Latency.Builder.create
      ~initial_capacity:(max 16 (Array.length requests))
      ()
  in
  let stats =
    run_with t (fun () ->
        let next_req = ref 0 in
        let window_start = ref 0 in
        let in_window = ref false in
        for i = 0 to n - 1 do
          (if (not !in_window) && !next_req < Array.length requests then
             let start, _ = requests.(!next_req) in
             if i = start then begin
               in_window := true;
               window_start := t.cycles
             end);
          let kind =
            Memtrace.Packed.kind_of_code
              (Char.code (Bigarray.Array1.unsafe_get kinds i))
          in
          access_scalar t
            ~addr:(Bigarray.Array1.unsafe_get addrs i)
            ~kind
            ~gap:(Bigarray.Array1.unsafe_get gaps i);
          if !in_window then begin
            let _, stop = requests.(!next_req) in
            if i = stop - 1 then begin
              Latency.Builder.push lat (t.cycles - !window_start);
              in_window := false;
              incr next_req
            end
          end
        done)
  in
  { stats with Run_stats.requests = Latency.Builder.build lat }

(* --- event-driven replay ------------------------------------------------ *)

(* The cached half of one access under the event engine. Functional state
   (cache contents, L2, prefetch fills and tags, every counter) is updated
   in exactly the order and through exactly the calls the scalar path
   makes, so all counts are byte-identical to [replay_packed] — the
   event-core differential soak pins this. Only time is priced differently:
   the engine overlaps fills through the MSHRs and the banked DRAM.
   Returns the access's retire time. *)
let event_cached t engine ~inject_merge_bug ~addr ~kind ~mask ~tint =
  let stats = Sassoc.stats t.cache in
  let wb_before = stats.Cache.Stats.writebacks in
  let line_size = t.cfg.cache.Sassoc.line_size in
  let maybe_prefetch () =
    if Hashtbl.mem t.streaming_tints tint then begin
      let next = addr + line_size in
      let next_mask = Vm.Mapping.mask_of_quiet t.mapping next in
      let next_phys = physical t next in
      if
        Bitmask.equal next_mask mask
        && Sassoc.probe t.cache next_phys = None
      then begin
        ignore (Sassoc.fill t.cache ~mask next_phys);
        Hashtbl.replace t.prefetch_tagged (next_phys / line_size) ();
        t.prefetches <- t.prefetches + 1;
        (* overlapped with the demand traffic, but it does occupy a bank *)
        Event.prefetch engine ~addr:next_phys
      end
    end
  in
  let phys = physical t addr in
  let phys_line = phys / line_size in
  match Sassoc.access t.cache ~mask ~kind phys with
  | Sassoc.Hit _ ->
      let retire, merged = Event.hit engine ~line:phys_line in
      (* The planted [--inject-bug event] mutation: the buggy merge path
         replays the merged request against the cache when its fill lands,
         as if the MSHR had not recorded the first reference — the second
         lookup double-counts the access. *)
      if merged && inject_merge_bug then
        ignore (Sassoc.access t.cache ~mask ~kind phys);
      if Hashtbl.mem t.prefetch_tagged phys_line then begin
        Hashtbl.remove t.prefetch_tagged phys_line;
        maybe_prefetch ()
      end;
      retire
  | Sassoc.Miss { evicted_line; _ } ->
      let l2_hit =
        match t.l2 with
        | None -> false
        | Some l2 -> (
            match Sassoc.access l2 ~kind phys with
            | Sassoc.Hit _ ->
                t.l2_hits <- t.l2_hits + 1;
                true
            | Sassoc.Miss _ ->
                t.l2_misses <- t.l2_misses + 1;
                false)
      in
      let victim =
        if stats.Cache.Stats.writebacks > wb_before then
          Option.map (fun line -> line * line_size) evicted_line
        else None
      in
      let retire =
        Event.miss engine ~line:phys_line ~addr:phys ~victim ~l2_hit
      in
      maybe_prefetch ();
      retire

(* One pass over a packed trace under the event engine. [on_access] (when
   given) receives, per access, the issue time (the core clock before the
   access's gap) and the retire time — the request-latency replay builds
   retire-minus-issue windows from it. *)
let replay_packed_events ?(inject_merge_bug = false) ?on_access t ~engine
    (p : Memtrace.Packed.t) =
  let n = Memtrace.Packed.length p in
  let addrs = Memtrace.Packed.raw_addrs p in
  let gaps = Memtrace.Packed.raw_gaps p in
  let kinds = Memtrace.Packed.raw_kinds p in
  let timing = t.cfg.timing in
  for i = 0 to n - 1 do
    let addr = Bigarray.Array1.unsafe_get addrs i in
    let gap = Bigarray.Array1.unsafe_get gaps i in
    let kind =
      match Bigarray.Array1.unsafe_get kinds i with
      | '\001' -> Access.Write
      | '\002' -> Access.Ifetch
      | _ -> Access.Read
    in
    let issue = Event.now engine in
    t.instructions <- t.instructions + gap + 1;
    t.memory_accesses <- t.memory_accesses + 1;
    Event.elapse engine gap;
    let retire =
      if in_scratchpad t addr then begin
        t.scratchpad_accesses <- t.scratchpad_accesses + 1;
        Event.elapse engine timing.Timing.scratchpad_cycles;
        Event.now engine
      end
      else if in_uncached t addr then begin
        Event.elapse engine timing.Timing.uncached_cycles;
        Event.now engine
      end
      else begin
        let mask, tint, outcome = Vm.Mapping.resolve t.mapping addr in
        (match outcome with
        | Vm.Tlb.Hit -> ()
        | Vm.Tlb.Miss ->
            Event.elapse engine timing.Timing.tlb_miss_penalty);
        event_cached t engine ~inject_merge_bug ~addr ~kind ~mask ~tint
      end
    in
    match on_access with None -> () | Some f -> f i ~issue ~retire
  done

(* Fold the engine's drained clock and its MSHR/DRAM counters into [t] so
   run deltas pick them up like any other counter. *)
let settle_events t engine =
  t.cycles <- t.cycles + Event.finish engine;
  t.mshr_merges <- t.mshr_merges + Event.merges engine;
  t.mshr_stalls <- t.mshr_stalls + Event.mshr_stalls engine;
  let d = Event.dram_stats engine in
  t.dram_row_hits <- t.dram_row_hits + d.Dram.hits;
  t.dram_row_conflicts <- t.dram_row_conflicts + d.Dram.conflicts

let run_packed_events ?inject_merge_bug t ~events p =
  let engine = Event.create t.cfg.timing events in
  run_with t (fun () ->
      replay_packed_events ?inject_merge_bug t ~engine p;
      settle_events t engine)

let run_packed_requests_events t ~events (p : Memtrace.Packed.t) ~requests =
  let n = Memtrace.Packed.length p in
  Array.iteri
    (fun i (start, stop) ->
      if start < 0 || start >= stop || stop > n then
        invalid_arg
          "System.run_packed_requests_events: request span out of bounds";
      if i > 0 && start < snd requests.(i - 1) then
        invalid_arg
          "System.run_packed_requests_events: request spans must be sorted \
           and disjoint")
    requests;
  let engine = Event.create t.cfg.timing events in
  let lat =
    Latency.Builder.create
      ~initial_capacity:(max 16 (Array.length requests))
      ()
  in
  let stats =
    run_with t (fun () ->
        let next_req = ref 0 in
        let in_window = ref false in
        let window_issue = ref 0 in
        let window_retire = ref 0 in
        replay_packed_events t ~engine p
          ~on_access:(fun i ~issue ~retire ->
            (if (not !in_window) && !next_req < Array.length requests then
               let start, _ = requests.(!next_req) in
               if i = start then begin
                 in_window := true;
                 window_issue := issue;
                 window_retire := issue
               end);
            if !in_window then begin
              if retire > !window_retire then window_retire := retire;
              let _, stop = requests.(!next_req) in
              if i = stop - 1 then begin
                (* retire-minus-issue: overlapped misses inside the window
                   count once, not as a sum of per-access stall costs *)
                Latency.Builder.push lat (!window_retire - !window_issue);
                in_window := false;
                incr next_req
              end
            end);
        settle_events t engine)
  in
  { stats with Run_stats.requests = Latency.Builder.build lat }

let run_trace t trace = run_packed t (Memtrace.Packed.of_trace trace)

let total t = snapshot t
let flush_cache t = Sassoc.flush t.cache
let flush_tlb t = Vm.Tlb.flush (Vm.Mapping.tlb t.mapping)
