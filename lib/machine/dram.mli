(** A small banked DRAM model for the event core.

    Banks with open-row buffers and a bounded channel queue: global row
    [addr / row_bytes] maps to bank [row mod banks] (row-interleaved, so
    streaming spreads across banks), each bank services one request at a
    time in issue order, and at most [queue_depth] requests are in flight
    channel-wide (slots free in issue order). A request landing in the
    bank's open row costs {!Timing.t.dram_row_hit_cycles}; anything else —
    including the first touch of a cold bank — pays the
    row-conflict/activation latency {!Timing.t.dram_row_conflict_cycles}.

    The model is deterministic: outcomes depend only on the configuration
    and the issue sequence. *)

type config = {
  banks : int;
  row_bytes : int;
  queue_depth : int;
}

val config : ?banks:int -> ?row_bytes:int -> ?queue_depth:int -> unit -> config
(** Defaults: 4 banks, 1024-byte rows, 8-deep channel queue. Raises
    [Invalid_argument] when any field is below 1. *)

val default_config : config

type t

val create : Timing.t -> config -> t
(** Raises [Invalid_argument] when the timing's row-hit latency is not
    positive or exceeds its row-conflict latency. *)

type outcome = {
  start : int;  (** when the bank begins servicing (>= issue time) *)
  finish : int;  (** completion: [start] + row-hit or row-conflict latency *)
  bank : int;
  row_hit : bool;
}

val request : t -> now:int -> addr:int -> outcome
(** Issue one line fetch (or writeback) at time [now]. Raises
    [Invalid_argument] on a negative address. *)

type stats = {
  total : int;
  hits : int;  (** open-row hits *)
  conflicts : int;  (** row conflicts, including cold activations *)
  stalls : int;  (** requests delayed by a full channel queue *)
}

val stats : t -> stats
