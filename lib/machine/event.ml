(* The event-driven timing engine: a core clock plus an MSHR file and a
   banked DRAM. Each request walks a small FSM:

     probe -> hit                    retire at probe completion
     probe -> delayed hit (merge)    retire when the in-flight fill lands
     probe -> miss -> [writeback] -> fetch -> fill   retire at fill

   Only the probe (and structural MSHR stalls) advance the core clock;
   fills proceed in the DRAM while younger requests issue, which is where
   memory-level parallelism comes from. Functional cache state lives in
   {!System} and is updated in program order, so this module prices time
   and never decides hits or misses. *)

type config = {
  mlp : int;
  dram : Dram.config;
}

let config ?(mlp = 4) ?(dram = Dram.default_config) () =
  if mlp < 1 then invalid_arg "Event.config: mlp must be at least 1";
  { mlp; dram }

let default_config = config ()

type t = {
  timing : Timing.t;
  mshr : Mshr.t;
  dram : Dram.t;
  mutable now : int; (* core clock: when the next request can issue *)
  mutable drain : int; (* latest retire time seen *)
}

let create timing cfg =
  {
    timing;
    mshr = Mshr.create ~size:cfg.mlp;
    dram = Dram.create timing cfg.dram;
    now = 0;
    drain = 0;
  }

let now t = t.now
let elapse t n = t.now <- t.now + n

let retire_at t time =
  if time > t.drain then t.drain <- time;
  time

(* A hit pays the probe; if the line's fill is still in flight the request
   merges into the MSHR entry and retires when the fill lands (a delayed
   hit) without stalling the core. *)
let hit t ~line =
  t.now <- t.now + t.timing.Timing.hit_cycles;
  match Mshr.in_flight t.mshr ~now:t.now ~line with
  | Some fill_done ->
      Mshr.note_merge t.mshr;
      (retire_at t fill_done, true)
  | None -> (retire_at t t.now, false)

(* A miss pays the probe, waits for an MSHR (stalling the core when all are
   busy), then fills from L2 or through DRAM — writing the dirty victim
   back before the demand fetch (writeback-allocate order, as in the
   hardware controller FSM this mirrors). *)
let miss t ~line ~addr ~victim ~l2_hit =
  t.now <- t.now + t.timing.Timing.hit_cycles;
  let slot, ready = Mshr.acquire t.mshr ~now:t.now in
  if ready > t.now then t.now <- ready;
  let fill_done =
    if l2_hit then ready + t.timing.Timing.l2_hit_cycles
    else
      let fetch_at =
        match victim with
        | Some victim_addr -> (Dram.request t.dram ~now:ready ~addr:victim_addr).Dram.finish
        | None -> ready
      in
      (Dram.request t.dram ~now:fetch_at ~addr).Dram.finish
  in
  Mshr.commit t.mshr ~slot ~line ~fill_done;
  retire_at t fill_done

(* Prefetches consume DRAM bandwidth (they occupy a bank and a queue slot)
   but never block the core or retire a request. *)
let prefetch t ~addr = ignore (Dram.request t.dram ~now:t.now ~addr)

let finish t = max t.now t.drain
let merges t = Mshr.merges t.mshr
let mshr_stalls t = Mshr.stalls t.mshr
let dram_stats t = Dram.stats t.dram
