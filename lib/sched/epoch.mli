(** Epoch-synchronized multitask replay with one worker Domain per job
    slot — the parallel replacement for the serialized interleave of
    {!Round_robin}.

    Every task owns a private {!Machine.System} (in the column-cache
    setting each task has an exclusive column partition and a disjoint
    address space, so private systems are exact) and replays its packed
    trace in fixed-size epochs of [epoch_accesses] accesses. Workers
    rendezvous at a barrier after each epoch; the shared timeline advances
    by the slowest task's epoch cycles (gang scheduling), giving the
    [makespan]. Tasks share no mutable state, so the outcome — every
    counter and the timeline — is byte-identical for any [jobs]; only
    wall-clock time changes, scaling with the core count.

    With an [events] config each epoch replays under the event-driven core
    ({!Machine.System.run_packed_events}); epoch boundaries are drain
    points — outstanding fills complete before the barrier — which is what
    makes per-epoch cycle counts well-defined sync currency. *)

type job = {
  name : string;
  packed : Memtrace.Packed.t;
}

type job_stats = {
  job : string;
  stats : Machine.Run_stats.t;  (** summed over the job's epochs *)
  epochs : int;
  finish : int;
      (** gang-timeline cycle at which the job's last epoch ends *)
}

type outcome = {
  per_job : job_stats list;  (** in task order *)
  epochs : int;  (** timeline length: the longest job's epoch count *)
  makespan : int;
      (** sum over epochs of the slowest task's cycles in that epoch *)
}

val run :
  ?jobs:int ->
  ?epoch_accesses:int ->
  ?events:Machine.Event.config ->
  make_system:(job -> Machine.System.t) ->
  job list ->
  outcome
(** [jobs] (default 1) is the worker-domain count; tasks are owned
    round-robin. Raises [Invalid_argument] when the task list is empty,
    [jobs < 1], [jobs] exceeds the task count (more domains than tasks is
    a configuration error, not something to clamp), or
    [epoch_accesses < 1] (default 4096). [make_system] is called once per
    task, inside the owning worker. *)

val find_job : outcome -> string -> job_stats option
