(* Epoch-synchronized multitask replay, one Domain per job.

   Each task owns a private {!Machine.System} — the column-cache setting
   the experiments model gives every task an exclusive column partition and
   a disjoint address space, so per-task systems are exact, not an
   approximation — and replays its trace in fixed-size epochs. Workers
   rendezvous at a barrier after every epoch (the gang-schedule sync
   point); the shared timeline advances by the {e slowest} task's epoch
   cycles, which is the makespan a gang-scheduled machine shows. Because
   tasks share no mutable state, the per-epoch cycle matrix is identical
   whatever the worker count: the outcome is byte-for-byte the same at
   [jobs = 1] and [jobs = N], only wall-clock changes. *)

type job = {
  name : string;
  packed : Memtrace.Packed.t;
}

type job_stats = {
  job : string;
  stats : Machine.Run_stats.t;
  epochs : int;
  finish : int; (* timeline cycle at which the job's last epoch ends *)
}

type outcome = {
  per_job : job_stats list;
  epochs : int;
  makespan : int;
}

(* A reusable counting barrier (generation-numbered so consecutive epochs
   cannot race each other). *)
type barrier = {
  mutex : Mutex.t;
  cond : Condition.t;
  parties : int;
  mutable waiting : int;
  mutable generation : int;
}

let barrier_create parties =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    parties;
    waiting = 0;
    generation = 0;
  }

let barrier_await b =
  Mutex.lock b.mutex;
  let gen = b.generation in
  b.waiting <- b.waiting + 1;
  if b.waiting = b.parties then begin
    b.waiting <- 0;
    b.generation <- gen + 1;
    Condition.broadcast b.cond
  end
  else
    while b.generation = gen do
      Condition.wait b.cond b.mutex
    done;
  Mutex.unlock b.mutex

let run ?(jobs = 1) ?(epoch_accesses = 4096) ?events ~make_system tasks =
  let n = List.length tasks in
  if tasks = [] then invalid_arg "Epoch.run: no tasks";
  if jobs < 1 then invalid_arg "Epoch.run: jobs must be at least 1";
  if jobs > n then
    invalid_arg
      (Printf.sprintf
         "Epoch.run: more worker domains (jobs=%d) than tasks (%d)" jobs n);
  if epoch_accesses < 1 then
    invalid_arg "Epoch.run: epoch_accesses must be at least 1";
  let tasks = Array.of_list tasks in
  let epochs_of j =
    let len = Memtrace.Packed.length tasks.(j).packed in
    (len + epoch_accesses - 1) / epoch_accesses
  in
  let total_epochs = ref 0 in
  for j = 0 to n - 1 do
    if epochs_of j > !total_epochs then total_epochs := epochs_of j
  done;
  let total_epochs = !total_epochs in
  (* per-job results; each slot is written by exactly one worker *)
  let cycles = Array.init n (fun j -> Array.make (epochs_of j) 0) in
  (* [None] until the job's first epoch lands (its ways come from the
     job's own system, so there is no zero of the right shape up front) *)
  let stats = Array.make n None in
  let replay_epoch system j e =
    let packed = tasks.(j).packed in
    let pos = e * epoch_accesses in
    let len = min epoch_accesses (Memtrace.Packed.length packed - pos) in
    let slice = Memtrace.Packed.sub packed ~pos ~len in
    match events with
    | None -> Machine.System.run_packed system slice
    | Some events -> Machine.System.run_packed_events system ~events slice
  in
  let worker barrier d () =
    (* round-robin task ownership: worker [d] owns tasks [d, d+jobs, ...] *)
    let owned = ref [] in
    let j = ref d in
    while !j < n do
      owned := (!j, make_system tasks.(!j)) :: !owned;
      j := !j + jobs
    done;
    let owned = List.rev !owned in
    for e = 0 to total_epochs - 1 do
      List.iter
        (fun (j, system) ->
          if e < epochs_of j then begin
            let r = replay_epoch system j e in
            cycles.(j).(e) <- r.Machine.Run_stats.cycles;
            stats.(j) <-
              (match stats.(j) with
              | None -> Some r
              | Some s -> Some (Machine.Run_stats.add s r))
          end)
        owned;
      (match barrier with None -> () | Some b -> barrier_await b)
    done
  in
  (if jobs = 1 then worker None 0 ()
   else begin
     let barrier = Some (barrier_create jobs) in
     let domains =
       List.init (jobs - 1) (fun d -> Domain.spawn (worker barrier (d + 1)))
     in
     worker barrier 0 ();
     List.iter Domain.join domains
   end);
  (* gang timeline: each epoch lasts as long as its slowest task *)
  let timeline = Array.make (total_epochs + 1) 0 in
  for e = 0 to total_epochs - 1 do
    let worst = ref 0 in
    for j = 0 to n - 1 do
      if e < epochs_of j && cycles.(j).(e) > !worst then
        worst := cycles.(j).(e)
    done;
    timeline.(e + 1) <- timeline.(e) + !worst
  done;
  {
    per_job =
      List.init n (fun j ->
          {
            job = tasks.(j).name;
            stats =
              Option.value stats.(j)
                ~default:(Machine.Run_stats.zero ~ways:1);
            epochs = epochs_of j;
            finish = timeline.(epochs_of j);
          });
    epochs = total_epochs;
    makespan = timeline.(total_epochs);
  }

let find_job outcome name =
  List.find_opt (fun s -> s.job = name) outcome.per_job
