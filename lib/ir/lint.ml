open Ast

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  proc : string option;
  message : string;
}

let rec const_eval = function
  | Int n -> Some n
  | Reg _ | Scalar _ | Load _ -> None
  | Unary_minus e -> Option.map (fun v -> -v) (const_eval e)
  | Binop (op, a, b) -> (
      match (const_eval a, const_eval b) with
      | Some a, Some b -> (
          match op with
          | Add -> Some (a + b)
          | Sub -> Some (a - b)
          | Mul -> Some (a * b)
          | Div -> if b = 0 then None else Some (a / b)
          | Mod -> if b = 0 then None else Some (a mod b)
          | Shl -> Some (a lsl b)
          | Shr -> Some (a asr b)
          | Band -> Some (a land b)
          | Bor -> Some (a lor b)
          | Bxor -> Some (a lxor b)
          | Min -> Some (min a b)
          | Max -> Some (max a b))
      | _ -> None)

let check program =
  let diags = ref [] in
  let report severity proc fmt =
    Format.kasprintf
      (fun message -> diags := { severity; proc; message } :: !diags)
      fmt
  in
  let check_index proc name idx =
    match (find_var program name, const_eval idx) with
    | Some v, Some i when i < 0 || i >= v.elems ->
        report Error proc "constant index %s[%d] out of bounds (0..%d)" name i
          (v.elems - 1)
    | _ -> ()
  in
  let rec check_expr proc = function
    | Int _ | Reg _ | Scalar _ -> ()
    | Load (name, idx) ->
        check_expr proc idx;
        check_index proc name idx
    | Unary_minus e -> check_expr proc e
    | Binop (_, a, b) ->
        check_expr proc a;
        check_expr proc b
  in
  let check_cond proc c =
    check_expr proc c.lhs;
    check_expr proc c.rhs;
    if not (c.prob >= 0. && c.prob <= 1.) then
      report Warning proc "branch probability %g outside [0, 1]" c.prob
  in
  let rec check_stmt proc = function
    | Assign_reg (_, e) -> check_expr proc e
    | Assign_scalar (_, e) -> check_expr proc e
    | Store (name, idx, e) ->
        check_expr proc idx;
        check_expr proc e;
        check_index proc name idx
    | For { lo; hi; body; _ } ->
        check_expr proc lo;
        check_expr proc hi;
        List.iter (check_stmt proc) body
    | While { cond; est_iterations; body } ->
        check_cond proc cond;
        if est_iterations = 0 && body <> [] then
          report Warning proc
            "while body declared unreachable (est_iterations = 0) but not \
             empty: the static analysis weighs it as never running";
        List.iter (check_stmt proc) body
    | If { cond; then_; else_ } ->
        check_cond proc cond;
        List.iter (check_stmt proc) then_;
        List.iter (check_stmt proc) else_
    | Call _ -> ()
  in
  List.iter
    (fun p -> List.iter (check_stmt (Some p.proc_name)) p.body)
    program.procs;
  (* Memory variables no procedure ever touches. [vars_referenced] walks
     from one entry procedure; union over all procedures so helpers only
     ever invoked via [Call] still count as uses. *)
  let used =
    List.concat_map
      (fun p ->
        try vars_referenced program ~proc:p.proc_name with Invalid_program _ -> [])
      program.procs
  in
  List.iter
    (fun v ->
      if not (List.mem v.name used) then
        report Warning None "variable %s is declared but never referenced"
          v.name)
    program.vars;
  let all = List.rev !diags in
  List.filter (fun d -> d.severity = Error) all
  @ List.filter (fun d -> d.severity = Warning) all

let errors diags = List.filter (fun d -> d.severity = Error) diags

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s: %s%s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    (match d.proc with Some p -> Printf.sprintf "in %s: " p | None -> "")
    d.message
