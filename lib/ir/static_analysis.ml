open Ast

let default_trip_count = 16

(* Constant folding for loop bounds. *)
let rec const_eval = function
  | Int n -> Some n
  | Reg _ | Scalar _ | Load _ -> None
  | Unary_minus e -> Option.map (fun v -> -v) (const_eval e)
  | Binop (op, a, b) -> (
      match (const_eval a, const_eval b) with
      | Some va, Some vb -> (
          match op with
          | Add -> Some (va + vb)
          | Sub -> Some (va - vb)
          | Mul -> Some (va * vb)
          | Div -> if vb = 0 then None else Some (va / vb)
          | Mod -> if vb = 0 then None else Some (va mod vb)
          | Shl -> Some (va lsl vb)
          | Shr -> Some (va asr vb)
          | Band -> Some (va land vb)
          | Bor -> Some (va lor vb)
          | Bxor -> Some (va lxor vb)
          | Min -> Some (min va vb)
          | Max -> Some (max va vb))
      | _ -> None)

let trip_count ~default lo hi =
  match (const_eval lo, const_eval hi) with
  | Some l, Some h -> float_of_int (max 0 (h - l))
  | _ -> float_of_int default

(* Estimated dynamic instructions of expressions and statements. *)
let rec cost_expr = function
  | Int _ | Reg _ -> 0.
  | Scalar _ -> 1.
  | Load (_, idx) -> cost_expr idx +. 2.
  | Unary_minus e -> cost_expr e +. 1.
  | Binop (_, a, b) -> cost_expr a +. cost_expr b +. 1.

let cost_cond c = cost_expr c.lhs +. cost_expr c.rhs +. 1.

let rec cost_stmt ~default program = function
  | Assign_reg (_, e) -> cost_expr e +. 1.
  | Assign_scalar (_, e) -> cost_expr e +. 1.
  | Store (_, idx, e) -> cost_expr idx +. cost_expr e +. 2.
  | For { lo; hi; body; _ } ->
      let per_iter = cost_body ~default program body +. 2. in
      cost_expr lo +. cost_expr hi +. (trip_count ~default lo hi *. per_iter)
  | While { cond; est_iterations; body } ->
      let per_iter = cost_cond cond +. cost_body ~default program body in
      (float_of_int est_iterations *. per_iter) +. cost_cond cond
  | If { cond; then_; else_ } ->
      cost_cond cond
      +. (cond.prob *. cost_body ~default program then_)
      +. ((1. -. cond.prob) *. cost_body ~default program else_)
  | Call name -> (
      match find_proc program name with
      | None -> 0.
      | Some pr -> cost_body ~default program pr.body +. 1.)

and cost_body ~default program body =
  List.fold_left (fun acc s -> acc +. cost_stmt ~default program s) 0. body

let cost_of_proc ?(default_trip_count = default_trip_count) program ~proc =
  match find_proc program proc with
  | None -> raise (Invalid_program (Printf.sprintf "no such procedure %s" proc))
  | Some pr -> cost_body ~default:default_trip_count program pr.body

type acc = {
  mutable accesses : float;
  mutable first : float;
  mutable last : float;
}

type state = {
  program : program;
  trip_default : int;
  table : (string, acc) Hashtbl.t;
  mutable order : string list;
  mutable clock : float;
}

let record st ~mult ~span name =
  let lo, hi = span in
  match Hashtbl.find_opt st.table name with
  | Some a ->
      a.accesses <- a.accesses +. mult;
      if lo < a.first then a.first <- lo;
      if hi > a.last then a.last <- hi
  | None ->
      Hashtbl.add st.table name { accesses = mult; first = lo; last = hi };
      st.order <- name :: st.order

(* [outer] is the instruction-clock span of the outermost enclosing loop, if
   any: a variable referenced inside a loop nest is live across the whole
   nest. *)
let ref_span st outer = match outer with Some span -> span | None -> (st.clock, st.clock)

let rec walk_expr st ~mult ~outer e =
  let span = ref_span st outer in
  match e with
  | Int _ | Reg _ -> ()
  | Scalar name -> record st ~mult ~span name
  | Load (name, idx) ->
      walk_expr st ~mult ~outer idx;
      record st ~mult ~span name
  | Unary_minus e -> walk_expr st ~mult ~outer e
  | Binop (_, a, b) ->
      walk_expr st ~mult ~outer a;
      walk_expr st ~mult ~outer b

let walk_cond st ~mult ~outer c =
  walk_expr st ~mult ~outer c.lhs;
  walk_expr st ~mult ~outer c.rhs

(* walk_stmt records accesses; it never moves the clock. The top-level
   statement sequence in [analyze] advances the clock by each statement's
   estimated cost, which is what gives consecutive program phases disjoint
   lifetimes. Inside a loop nest, positions collapse onto the nest's whole
   span; inside branches they collapse onto the statement's start — both are
   conservative (spurious overlap is possible, missed overlap is not). *)
let rec walk_stmt st ~mult ~outer stmt =
  match stmt with
  | Assign_reg (_, e) -> walk_expr st ~mult ~outer e
  | Assign_scalar (name, e) ->
      walk_expr st ~mult ~outer e;
      record st ~mult ~span:(ref_span st outer) name
  | Store (name, idx, e) ->
      walk_expr st ~mult ~outer idx;
      walk_expr st ~mult ~outer e;
      record st ~mult ~span:(ref_span st outer) name
  | For { lo; hi; body; _ } ->
      let iters = trip_count ~default:st.trip_default lo hi in
      let cost = cost_stmt ~default:st.trip_default st.program stmt in
      (* end-exclusive: back-to-back loops must not appear to overlap *)
      let span = (st.clock, st.clock +. Float.max 0. (cost -. 1.)) in
      let outer = match outer with Some _ -> outer | None -> Some span in
      walk_expr st ~mult ~outer lo;
      walk_expr st ~mult ~outer hi;
      List.iter (walk_stmt st ~mult:(mult *. iters) ~outer) body
  | While { cond; est_iterations; body } ->
      let iters = float_of_int est_iterations in
      let cost = cost_stmt ~default:st.trip_default st.program stmt in
      let span = (st.clock, st.clock +. Float.max 0. (cost -. 1.)) in
      let outer = match outer with Some _ -> outer | None -> Some span in
      walk_cond st ~mult:(mult *. (iters +. 1.)) ~outer cond;
      List.iter (walk_stmt st ~mult:(mult *. iters) ~outer) body
  | If { cond; then_; else_ } ->
      walk_cond st ~mult ~outer cond;
      List.iter (walk_stmt st ~mult:(mult *. cond.prob) ~outer) then_;
      List.iter (walk_stmt st ~mult:(mult *. (1. -. cond.prob)) ~outer) else_
  | Call name -> (
      match find_proc st.program name with
      | None -> ()
      | Some pr -> List.iter (walk_stmt st ~mult ~outer) pr.body)

let analyze ?(default_trip_count = default_trip_count) program ~proc =
  let pr =
    match find_proc program proc with
    | Some pr -> pr
    | None -> raise (Invalid_program (Printf.sprintf "no such procedure %s" proc))
  in
  let st =
    {
      program;
      trip_default = default_trip_count;
      table = Hashtbl.create 16;
      order = [];
      clock = 0.;
    }
  in
  List.iter
    (fun stmt ->
      walk_stmt st ~mult:1. ~outer:None stmt;
      st.clock <- st.clock +. cost_stmt ~default:default_trip_count program stmt)
    pr.body;
  List.rev_map
    (fun name ->
      match Hashtbl.find_opt st.table name with
      | None -> assert false
      | Some a ->
          let first = int_of_float a.first in
          let last = max first (int_of_float a.last) in
          ( name,
            Profile.Lifetime.summary ~accesses:a.accesses ~first ~last () ))
    st.order


