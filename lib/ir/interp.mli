(** Executing IF programs to produce memory traces.

    The interpreter maintains real data (every variable is an int cell or
    int array), so data-dependent control flow runs on actual values; each
    [Scalar]/[Load]/[Store]/[Assign_scalar] emits one tagged memory access
    at the address assigned by the data layout. ALU and control operations
    accumulate into the next access's [gap], so traces carry a realistic
    instruction count and the machine model can report CPI. *)

exception Interp_error of string

val sequential_layout : ?base:int -> ?align:int -> Ast.program -> (string * int) list
(** Place variables back to back in declaration order, each aligned to
    [align] (default 16) bytes, starting at [base] (default 0). This is the
    "whatever the linker did" baseline; the layout pass produces better
    placements. *)

val address_of : layout:(string * int) list -> Ast.program -> string -> int -> int
(** Address of element [idx] of a variable under a layout. Raises
    {!Interp_error} for unknown variables or out-of-bounds indices. *)

type result = {
  trace : Memtrace.Trace.t;
  memory : string -> int array;
      (** final contents of each variable (a copy); raises [Not_found] for
          unknown names *)
}

val run :
  ?init:(string -> int -> int) ->
  ?max_steps:int ->
  Ast.program ->
  proc:string ->
  layout:(string * int) list ->
  result
(** Execute [proc]. [init name idx] supplies initial element values
    (default all zero). [max_steps] (default 50 million) bounds executed
    statements; exceeding it raises {!Interp_error}, catching runaway
    [While] loops. The program must already be valid (see
    {!Ast.validate}). *)

val trace_of :
  ?init:(string -> int -> int) ->
  Ast.program ->
  proc:string ->
  layout:(string * int) list ->
  Memtrace.Trace.t
(** [run] and keep only the trace. *)

val packed_trace_of :
  ?init:(string -> int -> int) ->
  ?max_steps:int ->
  Ast.program ->
  proc:string ->
  layout:(string * int) list ->
  Memtrace.Packed.t
(** Like {!trace_of}, but the columnar form the interpreter accumulates
    internally, with no boxed [Access.t] built along the way — feed it to
    {!Machine.System.run_packed}. *)
