(** Abstract-interpretation cache analysis over the IR, with sound
    worst-case miss bounds.

    The classic must/may/persistence cache analysis of Ferdinand and
    Wilhelm, applied to {!Ast.program} instead of binaries: a fixpoint
    abstract interpreter tracks, per cache set, an upper bound
    ({e must}) and a lower bound ({e may}) on every line's LRU age,
    joining at branch and loop heads, with array index ranges derived
    from an interval domain over registers (constant loop bounds give
    exact ranges; data-dependent indices widen to the whole array).
    Every access the interpreter {!Interp} would emit is visited in the
    same order and classified:

    - {e always-hit}: every line the access can touch is in the must
      state — the access hits on every execution;
    - {e persistent}: all the access's lines live in sets whose distinct
      same-partition footprint within some enclosing loop (or the whole
      procedure) fits in the available ways, so under LRU each line
      misses at most once per entry of that scope;
    - {e may-hit} / {e always-miss}: no guarantee; the per-site miss
      bound falls back to the site's worst-case execution count.

    Summing per-site bounds yields [wcet_misses], a sound static upper
    bound on the misses of any execution — [While] iteration counts are
    never trusted (their [est_iterations] is an estimate, not a bound),
    so a program with loops that only terminate data-dependently is
    boundable exactly when its accesses are covered by always-hit or
    persistence arguments.

    Column masks are modelled at the partition level: variables whose
    masks are identical and disjoint from every other mask form an
    isolated LRU cache of [popcount mask] ways per set (exactly the
    guarantee exclusive column allocation provides); overlapping unequal
    masks make the analysis refuse must/persistence claims for the
    affected variables rather than guess. The analysis assumes LRU
    replacement and a single procedure run from a cold cache — the
    configuration the differential soak ({!Check.Wcet_diff}) replays. *)

type geometry = {
  line_size : int;  (** bytes per line; power of two *)
  sets : int;  (** power of two *)
  ways : int;  (** [>= 0]; [0] means no cache (everything misses) *)
}

type classification =
  | Always_hit  (** in the must state on every execution *)
  | Persistent
      (** at most one miss per line per entry of its qualifying scope *)
  | May_hit  (** possibly cached, no guarantee either way *)
  | Always_miss  (** provably absent on every execution *)

type site = {
  site_id : int;  (** dense, in emission (analysis-visit) order *)
  var : string;
  write : bool;
  classification : classification;
  executions : int option;
      (** worst-case executions of this site; [None] = unbounded
          (inside a [While]) *)
  lines : int;  (** distinct cache lines the site can touch *)
  miss_bound : int option;  (** worst-case misses charged to this site *)
}

type t = {
  proc : string;
  geometry : geometry;
  sites : site list;
  accesses : int option;  (** worst-case memory accesses *)
  writes : int option;  (** worst-case write accesses *)
  alu : int option;  (** worst-case ALU/control instructions *)
  wcet_misses : int option;  (** sum of per-site miss bounds *)
  touched_lines : int list;  (** distinct lines reachable, ascending *)
}

val analyze :
  ?unsound_join:bool ->
  ?layout:(string * int) list ->
  ?masks:(string * int) list ->
  geometry ->
  Ast.program ->
  proc:string ->
  t
(** [layout] defaults to {!Interp.sequential_layout}; the replay being
    bounded must use the same one. [masks] maps variable names to column
    bitmasks over [0..ways-1] (default: every variable may use every
    way). [unsound_join] plants the mutation the differential soak must
    catch: the must-join becomes union-with-min-age instead of
    intersection-with-max-age, so lines survive joins they should not
    and always-hit is claimed too eagerly. Raises [Invalid_argument] on
    a bad geometry and {!Ast.Invalid_program} on an invalid program or
    unknown procedure. *)

val instruction_bound : t -> int option
(** [alu + accesses] — an upper bound on the instruction count
    {!Machine.System} accounts for the emitted trace. *)

val writeback_bound : t -> int option
(** [min wcet_misses writes]: a writeback needs both an eviction (at
    most one per miss) and a dirtying write since the line's install. *)

val tlb_miss_bound : t -> page_size:int -> tlb_entries:int -> int option
(** Distinct pages touched when they all fit in the TLB (then each page
    faults at most once — a TLB that evicts only at capacity never
    evicts a working set smaller than itself), otherwise the access
    bound. [page_size] must be a power of two [>= line_size]. *)

val distinct_pages : t -> page_size:int -> int

val pp_classification : Format.formatter -> classification -> unit
val pp_site : Format.formatter -> site -> unit

val pp : Format.formatter -> t -> unit
(** Per-site table plus the totals. *)
