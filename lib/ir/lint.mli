(** Static diagnostics over the IR — warnings {!Ast.validate} is too
    coarse (or too fatal) to give.

    Unlike {!Ast.validate}, [check] never raises: it walks any program,
    including ones that would fail validation, and returns everything it
    finds so a front end can report all problems at once. Flagged today:

    - branch probabilities outside [0, 1] (warning; {!Ast.validate}
      rejects these outright, lint reports them gently);
    - constant array indices provably out of bounds (error: the access
      is guaranteed to raise {!Interp.Interp_error} if reached);
    - memory variables declared but never referenced by any procedure
      (warning: they occupy layout space for no traffic);
    - non-empty [While] bodies declared with [est_iterations = 0]
      (warning: the static analysis will weigh the body as unreachable
      even though the interpreter may still run it). *)

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  proc : string option;  (** enclosing procedure, when there is one *)
  message : string;
}

val check : Ast.program -> diagnostic list
(** All diagnostics, errors first, in discovery order within each
    severity. *)

val errors : diagnostic list -> diagnostic list
val pp_diagnostic : Format.formatter -> diagnostic -> unit
