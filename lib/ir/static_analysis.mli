(** The paper's program-analysis method (Section 3.1.1, second variant).

    Instead of running the program, estimate each variable's access count
    and lifetime from the intermediate form: loop trip counts are taken from
    constant bounds (or a default estimate when bounds are data-dependent),
    [While] loops use their declared [est_iterations], and branch bodies are
    weighted by the branch's probability annotation. A variable referenced
    inside a loop nest is considered live across the whole nest.

    The resulting summaries carry no exact positions, so downstream weight
    computation ({!Profile.Lifetime.weight}) falls back to the
    uniform-distribution approximation — faster but coarser than profiling,
    exactly the trade-off the paper describes. *)

val default_trip_count : int
(** Assumed iterations for loops whose bounds cannot be constant-folded
    (16) — the default for the [?default_trip_count] parameters below,
    overridable per call to calibrate the static weight method. *)

val cost_of_proc :
  ?default_trip_count:int -> Ast.program -> proc:string -> float
(** Estimated dynamic instruction count of one invocation. *)

val analyze :
  ?default_trip_count:int ->
  Ast.program ->
  proc:string ->
  (string * Profile.Lifetime.summary) list
(** Per-variable estimated summaries, in first-reference order. The clock
    underlying [first]/[last] is estimated instructions (comparable only to
    other values from the same analysis). *)
