open Ast

exception Interp_error of string

let error fmt = Format.kasprintf (fun s -> raise (Interp_error s)) fmt

let round_up n align = (n + align - 1) / align * align

let sequential_layout ?(base = 0) ?(align = 16) program =
  let next = ref base in
  List.map
    (fun v ->
      let addr = round_up !next align in
      next := addr + var_size_bytes v;
      (v.name, addr))
    program.vars

let address_of ~layout program name idx =
  match find_var program name with
  | None -> error "address_of: unknown variable %s" name
  | Some v ->
      if idx < 0 || idx >= v.elems then
        error "address_of: %s[%d] out of bounds (0..%d)" name idx (v.elems - 1);
      let base =
        match List.assoc_opt name layout with
        | Some b -> b
        | None -> error "address_of: %s missing from layout" name
      in
      base + (idx * v.elem_size)

type state = {
  program : program;
  layout : (string * int) list;
  cells : (string, int array) Hashtbl.t;
  regs : (string, int) Hashtbl.t;
  builder : Memtrace.Packed.Builder.t;
  mutable gap : int;  (* ALU/control instructions since the last access *)
  mutable steps : int;
  max_steps : int;
}

let emit st ~kind ~var addr =
  Memtrace.Packed.Builder.emit st.builder ~kind ~var ~gap:st.gap addr;
  st.gap <- 0

let alu st n = st.gap <- st.gap + n

let step st =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then
    error "exceeded max_steps (%d): runaway loop?" st.max_steps

let var_of st name =
  match find_var st.program name with
  | Some v -> v
  | None -> error "unknown variable %s" name

let cells_of st name =
  match Hashtbl.find_opt st.cells name with
  | Some a -> a
  | None -> error "unknown variable %s" name

let addr_of st name idx =
  let v = var_of st name in
  if idx < 0 || idx >= v.elems then
    error "%s[%d] out of bounds (0..%d)" name idx (v.elems - 1);
  match List.assoc_opt name st.layout with
  | Some base -> base + (idx * v.elem_size)
  | None -> error "%s missing from layout" name

let apply_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then error "division by zero" else a / b
  | Mod -> if b = 0 then error "modulo by zero" else a mod b
  | Shl -> a lsl b
  | Shr -> a asr b
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | Min -> min a b
  | Max -> max a b

let rec eval st = function
  | Int n -> n
  | Reg name -> (
      match Hashtbl.find_opt st.regs name with
      | Some v -> v
      | None -> error "uninitialized register %%%s" name)
  | Scalar name ->
      let value = (cells_of st name).(0) in
      emit st ~kind:Memtrace.Access.Read ~var:name (addr_of st name 0);
      value
  | Load (name, idx_e) ->
      let idx = eval st idx_e in
      alu st 1;
      let v = var_of st name in
      if idx < 0 || idx >= v.elems then
        error "%s[%d] out of bounds (0..%d)" name idx (v.elems - 1);
      let value = (cells_of st name).(idx) in
      emit st ~kind:Memtrace.Access.Read ~var:name (addr_of st name idx);
      value
  | Unary_minus e ->
      let v = eval st e in
      alu st 1;
      -v
  | Binop (op, a, b) ->
      let va = eval st a in
      let vb = eval st b in
      alu st 1;
      apply_binop op va vb

let eval_cond st c =
  let l = eval st c.lhs in
  let r = eval st c.rhs in
  alu st 1;
  match c.rel with
  | Eq -> l = r
  | Ne -> l <> r
  | Lt -> l < r
  | Le -> l <= r
  | Gt -> l > r
  | Ge -> l >= r

let rec exec st stmt =
  step st;
  match stmt with
  | Assign_reg (name, e) ->
      let v = eval st e in
      alu st 1;
      Hashtbl.replace st.regs name v
  | Assign_scalar (name, e) ->
      let v = eval st e in
      (cells_of st name).(0) <- v;
      emit st ~kind:Memtrace.Access.Write ~var:name (addr_of st name 0)
  | Store (name, idx_e, e) ->
      let idx = eval st idx_e in
      let v = eval st e in
      alu st 1;
      let cells = cells_of st name in
      let var = var_of st name in
      if idx < 0 || idx >= var.elems then
        error "%s[%d] out of bounds (0..%d)" name idx (var.elems - 1);
      cells.(idx) <- v;
      emit st ~kind:Memtrace.Access.Write ~var:name (addr_of st name idx)
  | For { reg; lo; hi; body } ->
      let lo = eval st lo and hi = eval st hi in
      let saved = Hashtbl.find_opt st.regs reg in
      let rec loop i =
        if i < hi then begin
          Hashtbl.replace st.regs reg i;
          alu st 2;
          (* increment + bound test *)
          List.iter (exec st) body;
          loop (i + 1)
        end
      in
      loop lo;
      (match saved with
      | Some v -> Hashtbl.replace st.regs reg v
      | None -> Hashtbl.remove st.regs reg)
  | While { cond; body; _ } ->
      let rec loop () =
        step st;
        if eval_cond st cond then begin
          List.iter (exec st) body;
          loop ()
        end
      in
      loop ()
  | If { cond; then_; else_ } ->
      if eval_cond st cond then List.iter (exec st) then_
      else List.iter (exec st) else_
  | Call name -> (
      match find_proc st.program name with
      | None -> error "unknown procedure %s" name
      | Some pr ->
          alu st 1;
          List.iter (exec st) pr.body)

type result = {
  trace : Memtrace.Trace.t;
  memory : string -> int array;
}

(* The interpreter emits into packed columns (no per-access heap record);
   [run] boxes the result once at the end for [trace]-typed consumers, while
   [packed_trace_of] hands the columns straight to the batched replay. *)
let run_packed ?(init = fun _ _ -> 0) ?(max_steps = 50_000_000) program ~proc
    ~layout =
  let cells = Hashtbl.create 16 in
  List.iter
    (fun v -> Hashtbl.replace cells v.name (Array.init v.elems (init v.name)))
    program.vars;
  let st =
    {
      program;
      layout;
      cells;
      regs = Hashtbl.create 16;
      builder = Memtrace.Packed.Builder.create ();
      gap = 0;
      steps = 0;
      max_steps;
    }
  in
  (match find_proc program proc with
  | None -> error "unknown procedure %s" proc
  | Some pr -> List.iter (exec st) pr.body);
  ( Memtrace.Packed.Builder.build st.builder,
    fun name ->
      match Hashtbl.find_opt cells name with
      | Some a -> Array.copy a
      | None -> raise Not_found )

let run ?init ?max_steps program ~proc ~layout =
  let packed, memory = run_packed ?init ?max_steps program ~proc ~layout in
  { trace = Memtrace.Packed.to_trace packed; memory }

let trace_of ?init program ~proc ~layout =
  (run ?init program ~proc ~layout).trace

let packed_trace_of ?init ?max_steps program ~proc ~layout =
  fst (run_packed ?init ?max_steps program ~proc ~layout)
