open Ast

type geometry = { line_size : int; sets : int; ways : int }
type classification = Always_hit | Persistent | May_hit | Always_miss

type site = {
  site_id : int;
  var : string;
  write : bool;
  classification : classification;
  executions : int option;
  lines : int;
  miss_bound : int option;
}

type t = {
  proc : string;
  geometry : geometry;
  sites : site list;
  accesses : int option;
  writes : int option;
  alu : int option;
  wcet_misses : int option;
  touched_lines : int list;
}

(* ---- saturating bound arithmetic ([None] = unbounded) ------------------- *)

let sat = 1 lsl 50

let add_opt a b =
  match (a, b) with Some a, Some b -> Some (min sat (a + b)) | _ -> None

(* [Some 0 * None = Some 0]: a scope that provably never runs contributes
   nothing even when its own iteration count is unbounded. *)
let mul_opt a b =
  match (a, b) with
  | Some 0, _ | _, Some 0 -> Some 0
  | Some a, Some b -> if a > sat / b then Some sat else Some (a * b)
  | _ -> None

(* ---- interval domain for register values -------------------------------- *)

module Itv = struct
  type t = Top | I of int * int

  (* Bounds are kept within [+-big] so every interval operation fits
     comfortably in a native int; anything larger widens to [Top]
     (which is always sound — soundness of the cache states depends on
     intervals truly containing the runtime value). *)
  let big = 1 lsl 30
  let norm lo hi = if lo < -big || hi > big || lo > hi then Top else I (lo, hi)
  let const n = norm n n
  let equal a b = a = b
  let hull a b =
    match (a, b) with
    | I (al, ah), I (bl, bh) -> I (min al bl, max ah bh)
    | _ -> Top

  let neg = function I (lo, hi) -> norm (-hi) (-lo) | Top -> Top

  let corners f a b =
    match (a, b) with
    | I (al, ah), I (bl, bh) ->
        let c1 = f al bl and c2 = f al bh and c3 = f ah bl and c4 = f ah bh in
        norm (min (min c1 c2) (min c3 c4)) (max (max c1 c2) (max c3 c4))
    | _ -> Top

  let binop op a b =
    match (op, a, b) with
    | Add, I (al, ah), I (bl, bh) -> norm (al + bl) (ah + bh)
    | Sub, I (al, ah), I (bl, bh) -> norm (al - bh) (ah - bl)
    | Mul, _, _ -> corners (fun x y -> x * y) a b
    | Div, _, I (bl, bh) when bl > 0 || bh < 0 -> corners ( / ) a b
    | Div, _, _ -> Top
    | Mod, I (al, ah), I (bl, bh) when bl > 0 || bh < 0 ->
        (* OCaml [mod] takes the dividend's sign; magnitude < |divisor|. *)
        let m = max (abs bl) (abs bh) in
        let lo = if al >= 0 then 0 else max al (-(m - 1)) in
        let hi = if ah <= 0 then 0 else min ah (m - 1) in
        norm lo hi
    | Mod, _, _ -> Top
    | Shl, _, I (bl, bh) when bl >= 0 && bh <= 40 ->
        corners (fun x y -> x lsl y) a b
    | Shl, _, _ -> Top
    | Shr, _, I (bl, bh) when bl >= 0 && bh <= 62 ->
        corners (fun x y -> x asr y) a b
    | Shr, _, _ -> Top
    | Band, I (al, ah), I (bl, bh) ->
        if al = ah && bl = bh then const (al land bl)
        else if al >= 0 && bl >= 0 then norm 0 (min ah bh)
        else Top
    | Bor, I (al, ah), I (bl, bh) ->
        if al = ah && bl = bh then const (al lor bl)
        else if al >= 0 && bl >= 0 then norm 0 (ah + bh)
        else Top
    | Bxor, I (al, ah), I (bl, bh) ->
        if al = ah && bl = bh then const (al lxor bl)
        else if al >= 0 && bl >= 0 then norm 0 (ah + bh)
        else Top
    | Min, I (al, ah), I (bl, bh) -> I (min al bl, min ah bh)
    | Max, I (al, ah), I (bl, bh) -> I (max al bl, max ah bh)
    | (Add | Sub | Min | Max | Band | Bor | Bxor), _, _ -> Top
end

(* ---- partition groups ---------------------------------------------------

   Variables with byte-identical masks, disjoint from every other mask,
   form an isolated cache of [popcount mask] ways per set: replacement
   restricted to a column group with LRU stamps is LRU among the group's
   own lines. Any overlap between unequal masks voids ([ok = false]) the
   isolation argument for the variables involved, and the analysis then
   refuses must/persistence claims for them instead of modelling the
   interaction. *)

type group = { gid : int; gways : int; mutable ok : bool }

module IMap = Map.Make (Int)
module ISet = Set.Make (Int)
module SMap = Map.Make (String)

type astate = { regs : Itv.t SMap.t; must : int IMap.t; may : int IMap.t }

type ctx = {
  program : program;
  geom : geometry;
  layout : (string * int) list;
  ls_log : int;
  var_group : (string, group) Hashtbl.t;
  line_home : (int, int * int) Hashtbl.t;  (* line -> (set, gid) *)
  unsound : bool;
}

(* ---- recorder (only alive during the final classification pass) --------- *)

type site_rec = {
  r_id : int;
  r_var : string;
  r_write : bool;
  r_lines : int list;
  r_scopes : int list;  (* enclosing scope ids, outermost first *)
  r_exec : int option;
  r_must : bool;
  r_may : bool;
  r_group : group;
}

type recorder = {
  mutable sites : site_rec list;  (* reversed *)
  mutable next_site : int;
  mutable next_scope : int;
  mutable stack : int list;  (* innermost first *)
  mutable entries : (int * int option) list;  (* scope id -> entry bound *)
  mutable acc : int option;
  mutable wr : int option;
  mutable alu_n : int option;
}

let count_alu rc exec n =
  match rc with
  | None -> ()
  | Some r -> r.alu_n <- add_opt r.alu_n (mul_opt exec (Some n))

(* ---- abstract cache transfer -------------------------------------------- *)

(* Access to exactly one line [l]: lines provably younger than [l]'s old
   upper-bound age keep a sound upper bound by aging; lines at least as
   old keep theirs unchanged (if the victim aged, so did its bound). *)
let must_single ctx g l must =
  let home = Hashtbl.find ctx.line_home l in
  let old = IMap.find_opt l must in
  let aged =
    IMap.filter_map
      (fun l' a ->
        if l' = l then None
        else if
          Hashtbl.find ctx.line_home l' = home
          && (match old with None -> true | Some o -> a < o)
        then if a + 1 >= g.gways then None else Some (a + 1)
        else Some a)
      must
  in
  if g.gways > 0 then IMap.add l 0 aged else aged

let may_single ctx g l may =
  let home = Hashtbl.find ctx.line_home l in
  (* A lower bound may only grow when aging is certain: when the
     accessed line is provably absent, the access misses and everything
     in the set truly ages. *)
  let aged =
    if IMap.mem l may then may
    else
      IMap.filter_map
        (fun l' a ->
          if l' <> l && Hashtbl.find ctx.line_home l' = home then
            if a + 1 >= g.gways then None else Some (a + 1)
          else Some a)
        may
  in
  if g.gways > 0 then IMap.add l 0 aged else aged

(* Access to one unknown line out of [lines]: joining the per-choice
   outcomes ages every line in an affected set by one (the accessed
   line itself is younger in its own branch, aged in the others — the
   max is the aged bound) and installs nothing. *)
let must_multi ctx g homes must =
  IMap.filter_map
    (fun l' a ->
      if List.mem (Hashtbl.find ctx.line_home l') homes then
        if a + 1 >= g.gways then None else Some (a + 1)
      else Some a)
    must

let may_multi g lines may =
  if g.gways = 0 then may
  else List.fold_left (fun m l -> IMap.add l 0 m) may lines

(* ---- joins and fixpoints ------------------------------------------------ *)

let join_state ctx a b =
  let must =
    if ctx.unsound then IMap.union (fun _ x y -> Some (min x y)) a.must b.must
    else
      IMap.merge
        (fun _ x y ->
          match (x, y) with Some x, Some y -> Some (max x y) | _ -> None)
        a.must b.must
  in
  let may = IMap.union (fun _ x y -> Some (min x y)) a.may b.may in
  let regs =
    SMap.merge
      (fun _ x y ->
        match (x, y) with
        | Some x, Some y -> Some (Itv.hull x y)
        | _ -> Some Itv.Top)
      a.regs b.regs
  in
  { regs; must; may }

let state_equal a b =
  IMap.equal ( = ) a.must b.must
  && IMap.equal ( = ) a.may b.may
  && SMap.equal Itv.equal a.regs b.regs

(* Iterate [h := join h (f h)] to a post-fixpoint covering the entry
   state and every post-iteration state. Ages and map domains live in
   finite lattices; register intervals are widened to [Top] once they
   keep moving, so the chain is finite. The iteration cap is a belt on
   top of those braces: on overrun, fall to the all-unknown state
   (empty must, everything possibly cached, registers unknown). *)
let stabilize ctx f st =
  let widen prev next =
    {
      next with
      regs =
        SMap.merge
          (fun _ p n ->
            match (p, n) with
            | Some p, Some n -> if Itv.equal p n then Some n else Some Itv.Top
            | _ -> Some Itv.Top)
          prev.regs next.regs;
    }
  in
  let bottom () =
    let may =
      Hashtbl.fold (fun line _ m -> IMap.add line 0 m) ctx.line_home IMap.empty
    in
    { regs = SMap.map (fun _ -> Itv.Top) st.regs; must = IMap.empty; may }
  in
  let rec go n st =
    let st' = join_state ctx st (f st) in
    let st' = if n >= 4 then widen st st' else st' in
    if state_equal st st' then st
    else if n > 200 then bottom ()
    else go (n + 1) st'
  in
  go 0 st

(* ---- the abstract interpreter -------------------------------------------

   Mirrors {!Interp}'s emission order statement for statement: indices
   before loads, stored values before writes, [For] bounds once before
   the loop, [While] conditions once per iteration plus the final
   failing evaluation, calls inlined. [rc = Some _] only during the
   final classification pass (fixpoint passes transfer state without
   recording); [exec] is the worst-case execution count of the current
   context. *)

let rec eval ctx rc exec st e =
  match e with
  | Int n -> (Itv.const n, st)
  | Reg r ->
      ( (match SMap.find_opt r st.regs with Some i -> i | None -> Itv.Top),
        st )
  | Scalar name ->
      let st = access ctx rc exec st ~write:false name (Itv.const 0) in
      (Itv.Top, st)
  | Load (name, idx_e) ->
      let idx, st = eval ctx rc exec st idx_e in
      count_alu rc exec 1;
      let st = access ctx rc exec st ~write:false name idx in
      (Itv.Top, st)
  | Unary_minus e ->
      let v, st = eval ctx rc exec st e in
      count_alu rc exec 1;
      (Itv.neg v, st)
  | Binop (op, a, b) ->
      let va, st = eval ctx rc exec st a in
      let vb, st = eval ctx rc exec st b in
      count_alu rc exec 1;
      (Itv.binop op va vb, st)

and eval_cond ctx rc exec st c =
  let _, st = eval ctx rc exec st c.lhs in
  let _, st = eval ctx rc exec st c.rhs in
  count_alu rc exec 1;
  st

and access ctx rc exec st ~write name idx =
  let v =
    match find_var ctx.program name with Some v -> v | None -> assert false
  in
  let base = List.assoc name ctx.layout in
  let g = Hashtbl.find ctx.var_group name in
  (* Out-of-range indices raise in the interpreter before emitting, so
     clamping to the declared bounds covers every emitted access (an
     erroring run just stops earlier than the bound assumes). *)
  let lo, hi =
    match idx with
    | Itv.Top -> (0, v.elems - 1)
    | Itv.I (l, h) -> (max l 0, min h (v.elems - 1))
  in
  let lines =
    if lo > hi then []
    else begin
      let acc = ref [] in
      for i = lo to hi do
        acc := ((base + (i * v.elem_size)) lsr ctx.ls_log) :: !acc
      done;
      List.sort_uniq compare !acc
    end
  in
  let must_hit =
    g.ok && List.for_all (fun l -> IMap.mem l st.must) lines
  in
  let may_possible =
    (not g.ok) || List.exists (fun l -> IMap.mem l st.may) lines
  in
  (match rc with
  | None -> ()
  | Some r ->
      let id = r.next_site in
      r.next_site <- id + 1;
      r.sites <-
        {
          r_id = id;
          r_var = name;
          r_write = write;
          r_lines = lines;
          r_scopes = List.rev r.stack;
          r_exec = exec;
          r_must = must_hit;
          r_may = may_possible;
          r_group = g;
        }
        :: r.sites;
      r.acc <- add_opt r.acc exec;
      if write then r.wr <- add_opt r.wr exec);
  if not g.ok then st
  else
    match lines with
    | [] -> st
    | [ l ] ->
        {
          st with
          must = must_single ctx g l st.must;
          may = may_single ctx g l st.may;
        }
    | ls ->
        let homes =
          List.sort_uniq compare
            (List.map (Hashtbl.find ctx.line_home) ls)
        in
        {
          st with
          must = must_multi ctx g homes st.must;
          may = may_multi g ls st.may;
        }

and exec_body ctx rc exec st body =
  List.fold_left (fun st s -> exec_stmt ctx rc exec st s) st body

and push_scope rc exec =
  match rc with
  | None -> -1
  | Some r ->
      let sid = r.next_scope in
      r.next_scope <- sid + 1;
      r.entries <- (sid, exec) :: r.entries;
      r.stack <- sid :: r.stack;
      sid

and pop_scope rc =
  match rc with None -> () | Some r -> r.stack <- List.tl r.stack

and exec_stmt ctx rc exec st stmt =
  match stmt with
  | Assign_reg (name, e) ->
      let v, st = eval ctx rc exec st e in
      count_alu rc exec 1;
      { st with regs = SMap.add name v st.regs }
  | Assign_scalar (name, e) ->
      let _, st = eval ctx rc exec st e in
      access ctx rc exec st ~write:true name (Itv.const 0)
  | Store (name, idx_e, e) ->
      let idx, st = eval ctx rc exec st idx_e in
      let _, st = eval ctx rc exec st e in
      count_alu rc exec 1;
      access ctx rc exec st ~write:true name idx
  | For { reg; lo; hi; body } ->
      let lo_i, st = eval ctx rc exec st lo in
      let hi_i, st = eval ctx rc exec st hi in
      let trips =
        match (lo_i, hi_i) with
        | Itv.I (llo, _), Itv.I (_, hhi) -> Some (max 0 (hhi - llo))
        | _ -> None
      in
      if trips = Some 0 then st
      else begin
        let reg_itv =
          match (lo_i, hi_i) with
          | Itv.I (llo, _), Itv.I (_, hhi) -> Itv.norm llo (hhi - 1)
          | _ -> Itv.Top
        in
        let saved = SMap.find_opt reg st.regs in
        let inner_exec = mul_opt exec trips in
        let enter s = { s with regs = SMap.add reg reg_itv s.regs } in
        let head =
          stabilize ctx
            (fun s -> exec_body ctx None inner_exec (enter s) body)
            (enter st)
        in
        (match rc with
        | None -> ()
        | Some _ ->
            count_alu rc inner_exec 2;
            let _sid = push_scope rc exec in
            ignore (exec_body ctx rc inner_exec (enter head) body);
            pop_scope rc);
        let regs =
          match saved with
          | Some v -> SMap.add reg v head.regs
          | None -> SMap.remove reg head.regs
        in
        { head with regs }
      end
  | While { cond; body; _ } ->
      (* [est_iterations] is an estimate, never a bound. *)
      let inner_exec = match exec with Some 0 -> Some 0 | _ -> None in
      let head =
        stabilize ctx
          (fun s ->
            exec_body ctx None inner_exec
              (eval_cond ctx None inner_exec s cond)
              body)
          st
      in
      (* The condition runs once per iteration (plus the failing one):
         its accesses belong inside the loop's persistence scope. *)
      let _sid = push_scope rc exec in
      let exit_st = eval_cond ctx rc inner_exec head cond in
      (match rc with
      | None -> ()
      | Some _ ->
          ignore (exec_body ctx rc inner_exec exit_st body));
      pop_scope rc;
      exit_st
  | If { cond; then_; else_ } ->
      let st = eval_cond ctx rc exec st cond in
      let a = exec_body ctx rc exec st then_ in
      let b = exec_body ctx rc exec st else_ in
      join_state ctx a b
  | Call name -> (
      count_alu rc exec 1;
      match find_proc ctx.program name with
      | Some p -> exec_body ctx rc exec st p.body
      | None -> st)

(* ---- setup -------------------------------------------------------------- *)

let popcount m =
  let rec go m n = if m = 0 then n else go (m lsr 1) (n + (m land 1)) in
  go m 0

let log2_exn what n =
  let rec go k = if 1 lsl k = n then k else if 1 lsl k > n then -1 else go (k + 1) in
  let k = if n >= 1 then go 0 else -1 in
  if k < 0 then invalid_arg (Printf.sprintf "Cache_analysis: %s must be a power of two" what);
  k

let build_ctx ?(unsound_join = false) ?layout ?(masks = []) geom program =
  let ls_log = log2_exn "line_size" geom.line_size in
  ignore (log2_exn "sets" geom.sets);
  if geom.ways < 0 then invalid_arg "Cache_analysis: ways must be >= 0";
  let layout =
    match layout with Some l -> l | None -> Interp.sequential_layout program
  in
  let full = (1 lsl geom.ways) - 1 in
  let mask_of name =
    match List.assoc_opt name masks with
    | Some m -> m land full
    | None -> full
  in
  let var_masks = List.map (fun v -> (v.name, mask_of v.name)) program.vars in
  let distinct =
    List.sort_uniq compare (List.map snd var_masks)
  in
  let groups =
    Array.of_list
      (List.mapi (fun i m -> (m, { gid = i; gways = popcount m; ok = true })) distinct)
  in
  Array.iteri
    (fun i (mi, gi) ->
      Array.iteri
        (fun j (mj, gj) ->
          if i < j && mi land mj <> 0 then begin
            gi.ok <- false;
            gj.ok <- false
          end)
        groups)
    groups;
  let group_of_mask m =
    let g = ref None in
    Array.iter (fun (m', g') -> if m' = m then g := Some g') groups;
    Option.get !g
  in
  let var_group = Hashtbl.create 16 in
  List.iter
    (fun (name, m) -> Hashtbl.replace var_group name (group_of_mask m))
    var_masks;
  let line_home = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let base =
        match List.assoc_opt v.name layout with
        | Some b -> b
        | None ->
            invalid_arg
              (Printf.sprintf "Cache_analysis: %s missing from layout" v.name)
      in
      let g = Hashtbl.find var_group v.name in
      let size = var_size_bytes v in
      for line = base lsr ls_log to (base + size - 1) lsr ls_log do
        match Hashtbl.find_opt line_home line with
        | None ->
            Hashtbl.replace line_home line (line land (geom.sets - 1), g.gid)
        | Some (_, gid') when gid' = g.gid -> ()
        | Some (_, gid') ->
            (* two partitions share a physical line: no isolation *)
            g.ok <- false;
            Array.iter (fun (_, g') -> if g'.gid = gid' then g'.ok <- false) groups
      done)
    program.vars;
  { program; geom; layout; ls_log; var_group; line_home; unsound = unsound_join }

(* ---- classification and bounds ------------------------------------------ *)

let finalize geom proc ctx rc =
  let recs = List.rev rc.sites in
  (* Per-scope footprints: distinct same-partition lines per set. *)
  let fp : (int * (int * int), ISet.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      List.iter
        (fun l ->
          let home = Hashtbl.find ctx.line_home l in
          List.iter
            (fun sc ->
              let key = (sc, home) in
              let cur =
                Option.value (Hashtbl.find_opt fp key) ~default:ISet.empty
              in
              Hashtbl.replace fp key (ISet.add l cur))
            s.r_scopes)
        s.r_lines)
    recs;
  let footprint sc home =
    match Hashtbl.find_opt fp (sc, home) with
    | Some s -> ISet.cardinal s
    | None -> 0
  in
  let classify s =
    if s.r_must then (Always_hit, Some 0)
    else
      let persists =
        if s.r_group.ok && s.r_group.gways > 0 && s.r_lines <> [] then
          List.find_map
            (fun sc ->
              match List.assoc sc rc.entries with
              | None -> None
              | Some entries ->
                  if
                    List.for_all
                      (fun l ->
                        footprint sc (Hashtbl.find ctx.line_home l)
                        <= s.r_group.gways)
                      s.r_lines
                  then Some entries
                  else None)
            s.r_scopes
        else None
      in
      match persists with
      | Some entries ->
          let b = mul_opt (Some entries) (Some (List.length s.r_lines)) in
          let bound =
            match (s.r_exec, b) with
            | Some e, Some b -> Some (min e b)
            | _, b -> b
          in
          (Persistent, bound)
      | None -> if s.r_may then (May_hit, s.r_exec) else (Always_miss, s.r_exec)
  in
  let sites =
    List.map
      (fun s ->
        let classification, miss_bound = classify s in
        {
          site_id = s.r_id;
          var = s.r_var;
          write = s.r_write;
          classification;
          executions = s.r_exec;
          lines = List.length s.r_lines;
          miss_bound;
        })
      recs
  in
  let wcet_misses =
    List.fold_left (fun acc s -> add_opt acc s.miss_bound) (Some 0) sites
  in
  let touched =
    List.fold_left
      (fun acc s -> List.fold_left (fun acc l -> ISet.add l acc) acc s.r_lines)
      ISet.empty recs
  in
  {
    proc;
    geometry = geom;
    sites;
    accesses = rc.acc;
    writes = rc.wr;
    alu = rc.alu_n;
    wcet_misses;
    touched_lines = ISet.elements touched;
  }

let analyze ?unsound_join ?layout ?masks geom program ~proc =
  validate program;
  let pr =
    match find_proc program proc with
    | Some p -> p
    | None -> raise (Invalid_program (Printf.sprintf "unknown procedure %s" proc))
  in
  let ctx = build_ctx ?unsound_join ?layout ?masks geom program in
  let rc =
    {
      sites = [];
      next_site = 0;
      next_scope = 1;
      stack = [ 0 ];
      entries = [ (0, Some 1) ];
      acc = Some 0;
      wr = Some 0;
      alu_n = Some 0;
    }
  in
  let st0 = { regs = SMap.empty; must = IMap.empty; may = IMap.empty } in
  ignore (exec_body ctx (Some rc) (Some 1) st0 pr.body);
  finalize geom proc ctx rc

(* ---- derived bounds ------------------------------------------------------ *)

let instruction_bound t = add_opt t.alu t.accesses

let writeback_bound t =
  match (t.wcet_misses, t.writes) with
  | Some m, Some w -> Some (min m w)
  | Some m, None -> Some m
  | None, Some w -> Some w
  | None, None -> None

let distinct_pages t ~page_size =
  let shift = log2_exn "page_size" page_size in
  let ls = log2_exn "line_size" t.geometry.line_size in
  List.sort_uniq compare
    (List.map (fun l -> (l lsl ls) lsr shift) t.touched_lines)
  |> List.length

let tlb_miss_bound t ~page_size ~tlb_entries =
  let pages = distinct_pages t ~page_size in
  if pages <= tlb_entries then Some pages else t.accesses

(* ---- printing ------------------------------------------------------------ *)

let pp_classification ppf = function
  | Always_hit -> Format.pp_print_string ppf "always-hit"
  | Persistent -> Format.pp_print_string ppf "persistent"
  | May_hit -> Format.pp_print_string ppf "may-hit"
  | Always_miss -> Format.pp_print_string ppf "always-miss"

let pp_opt ppf = function
  | None -> Format.pp_print_string ppf "unbounded"
  | Some n -> Format.pp_print_int ppf n

let pp_site ppf s =
  let str f v = Format.asprintf "%a" f v in
  Format.fprintf ppf "site %3d  %-12s %-5s %-11s exec=%-9s lines=%-4d misses<=%s"
    s.site_id s.var
    (if s.write then "write" else "read")
    (str pp_classification s.classification)
    (str pp_opt s.executions) s.lines
    (str pp_opt s.miss_bound)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>proc %s: %d sites, geometry line=%dB sets=%d ways=%d@," t.proc
    (List.length t.sites) t.geometry.line_size t.geometry.sets t.geometry.ways;
  List.iter (fun s -> Format.fprintf ppf "%a@," pp_site s) t.sites;
  Format.fprintf ppf
    "accesses<=%a writes<=%a alu<=%a distinct_lines=%d wcet_misses<=%a@]"
    pp_opt t.accesses pp_opt t.writes pp_opt t.alu
    (List.length t.touched_lines)
    pp_opt t.wcet_misses
