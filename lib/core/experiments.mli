(** The paper's evaluation, experiment by experiment.

    Each submodule regenerates one figure of the paper (or one ablation
    from DESIGN.md): a [run] function returning structured data, and a
    [print] function that renders the same rows/series the paper plots.
    Absolute numbers differ from the paper (different machine model); the
    shapes — who wins, by what factor, where the crossovers are — are the
    reproduction targets recorded in EXPERIMENTS.md. *)

(** Figure 4(a-c): cycle count of each MPEG routine as the 2 KB / 4-column
    on-chip memory shifts between scratchpad and cache. *)
module Fig4_routines : sig
  type point = {
    cache_columns : int;
    scratchpad_columns : int;
    cycles : int;
    misses : int;
    uncached_regions : int;
  }

  type series = {
    routine : string;
    bytes : int;  (** the routine's total data footprint *)
    points : point list;  (** ascending cache_columns, 0..4 *)
  }

  val run : ?meth:Pipeline.weight_method -> unit -> series list
  (** One series per routine (dequant, plus, idct); default profile-based
      weights. *)

  val print : Format.formatter -> series list -> unit
end

(** Figure 4(d): the whole application under every static partition versus
    the dynamically repartitioned column cache. *)
module Fig4_combined : sig
  type t = {
    static_points : (int * int) list;
        (** (cache_columns, total cycles) for each fixed partition *)
    column_cache_cycles : int;
    standard_cache_cycles : int;
        (** unmapped 4-way cache, for reference *)
  }

  val run : ?meth:Pipeline.weight_method -> unit -> t
  val print : Format.formatter -> t -> unit
end

(** Figure 5: CPI of gzip job A against the context-switch quantum, for a
    standard and a column-mapped cache at two sizes. *)
module Fig5 : sig
  type series = {
    label : string;  (** e.g. "gzip.16k mapped" *)
    cache_kb : int;
    mapped : bool;
    points : (int * float) list;  (** (quantum, CPI of job A) *)
  }

  val default_quanta : int list
  (** Powers of four from 1 to 1,048,576, the paper's x-axis. *)

  val run :
    ?quanta:int list -> ?cache_kbs:int list -> ?input_len:int -> unit ->
    series list
  (** Defaults: the paper's quanta, 16 and 128 KB caches, 12 KiB of input
      per job. Three concurrent LZ77 jobs; in the mapped runs job A owns
      6 of 8 columns. *)

  val print : Format.formatter -> series list -> unit
end

(** Figure 3: cost of repartitioning with tints in the PTEs versus raw bit
    vectors in the PTEs. *)
module Fig3 : sig
  type t = {
    pages : int;
    tinted_pte_writes : int;
    tinted_table_writes : int;
    tinted_tlb_entry_flushes : int;
    direct_pte_writes : int;
    masks_agree : bool;  (** both schemes produce identical mappings *)
  }

  val run : ?pages:int -> ?columns:int -> unit -> t
  val print : Format.formatter -> t -> unit
end

(** Ablation: replacement policy under column partitioning (abl1). A
    notable structural result: with every variable mapped to a single
    column, victim selection never has more than one valid candidate, so
    the mapped configurations are exactly policy-invariant; only the
    standard (unmapped) cache shows policy differences. *)
module Ablation_policy : sig
  type row = {
    policy : string;
    dynamic_cycles : int;
    best_static_cycles : int;
    standard_cycles : int;
  }

  val run : unit -> row list
  val print : Format.formatter -> row list -> unit
end

(** Ablation: column count at fixed 2 KB capacity (abl2). *)
module Ablation_columns : sig
  type row = {
    columns : int;
    dynamic_cycles : int;
    best_static_cycles : int;
    standard_cycles : int;
  }

  val run : ?columns_list:int list -> unit -> row list
  val print : Format.formatter -> row list -> unit
end

(** Ablation: profile-based versus program-analysis weights (abl3). *)
module Ablation_weights : sig
  type row = {
    routine : string;
    profile_cycles : int;
    static_cycles : int;
    standard_cycles : int;  (** unpartitioned cache baseline *)
  }

  val run : unit -> row list
  val print : Format.formatter -> row list -> unit
end

(** Ablation: the paper's single-column restriction (Section 3, footnote)
    versus grouped column partitions (Section 2.1's "aggregating columns
    into partitions"), isolated on a hot working set larger than one column
    (abl5). Also records the structural finding that the full layout
    algorithm (whose step 1 splits oversized variables) absorbs the benefit
    of grouping for single-threaded layouts. *)
module Ablation_grouping : sig
  type row = {
    config : string;
    cycles : int;
    misses : int;
  }

  val run : unit -> row list
  val print : Format.formatter -> row list -> unit
end

(** MRC-driven column allocation: one {!Cache.Stack_dist} pass over the
    packed trace yields a miss-ratio curve per variable, and the greedy
    {!Layout.Mrc_alloc} allocator sizes column groups straight off the
    curves — no per-candidate replay, and the curves predict the allocated
    layout's miss count exactly (checked against the machine in the printed
    figure). Contrasted with the interference-graph coloring the layout
    algorithm uses, on the grouping ablation's hot-walk workload. *)
module Mrc_layout : sig
  type row = {
    config : string;
    cycles : int;
    misses : int;
  }

  type t = {
    rows : row list;
    allocation : (string * int) list;
    predicted_misses : int;
    measured_misses : int;
    naive_predicted_misses : int;
        (** the curves also price the curve-blind one-column-per-variable
            split — exactly (its groups are disjoint too) *)
    naive_measured_misses : int;
  }

  val run : unit -> t
  val print : Format.formatter -> t -> unit
end

(** Ablation: the page-coloring baseline from the paper's related work
    (Section 5.1) on the same 2 KB of on-chip memory (abl6): a software-only
    frame placement for a direct-mapped physically-indexed cache, versus the
    column cache — including the asymmetric cost of adapting the layout
    between procedures (memory copies vs. table writes). *)
module Ablation_page_coloring : sig
  type row = {
    config : string;
    cycles : int;
    misses : int;
  }

  type t = {
    rows : row list;
    recolor_bytes : int;
    column_remap_writes : int;
  }

  val run : unit -> t
  val print : Format.formatter -> t -> unit
end

(** Ablation: a second cache level (abl7). Column caching's conflict
    avoidance and an L2's miss absorption are complementary: the L2 cuts
    the penalty of the misses that remain; the column mapping removes
    misses outright. *)
module Ablation_l2 : sig
  type row = {
    config : string;
    cycles : int;
    l1_misses : int;
    l2_hits : int;
  }

  val run : unit -> row list
  val print : Format.formatter -> row list -> unit
end

(** Ablation: a stream prefetcher living inside the general cache as one
    more partition (abl8) — the paper's Section 2 claim that column caching
    subsumes "a separate prefetch buffer". Compares no prefetch, naive
    prefetch-everything, and prefetch confined to the stream columns. *)
module Ablation_prefetch : sig
  type row = {
    config : string;
    cycles : int;
    misses : int;
    prefetches : int;
  }

  val run : unit -> row list
  val print : Format.formatter -> row list -> unit
end

(** Ablation: TLB size when context switches flush an untagged TLB (abl4). *)
module Ablation_tlb : sig
  type series = {
    tlb_entries : int;
    points : (int * float) list;  (** (quantum, CPI of job A) *)
  }

  val run : ?quanta:int list -> ?sizes:int list -> ?input_len:int -> unit -> series list
  val print : Format.formatter -> series list -> unit
end

(** Ablation: the front-end optimizer's effect on access counts and on the
    layout results (abl9). *)
module Ablation_optimizer : sig
  type row = {
    routine : string;
    accesses_before : int;
    accesses_after : int;
    standard_before : int;
    standard_after : int;
    column_before : int;
    column_after : int;
  }

  val run : unit -> row list
  val print : Format.formatter -> row list -> unit
end

(** Not a paper figure: the Figure 4(d) protocol applied to a second
    application (a JPEG encoder front end), checking that the machinery is
    not specialized to the paper's benchmark. *)
module Generality : sig
  type t = {
    routines : (string * int * int * int) list;
    dynamic_cycles : int;
    best_static_cycles : int;
    standard_cycles : int;
  }

  val run : unit -> t
  val print : Format.formatter -> t -> unit
end

(** Not a paper figure: tail latency under multi-tenant traffic. Three
    traffic-shaped request streams ({!Workloads.Gen}: a hot Zipf tenant, a
    warm wide Zipf tenant, and a sequential scanner) interleave request by
    request on one 4 KB 8-way cache. The shared arm lets them fight over
    the full mask; the partitioned arm gives each tenant the columns its
    miss-ratio curve earns (greedy MRC allocation, minimum one), confining
    the scan's pollution. Per-request latency percentiles
    (p50/p99/p99.9 cycles) come from {!Machine.System.run_packed_requests},
    and every machine replay is cross-checked byte-for-byte — aggregates
    and the full latency distribution — against the closed-form
    stack-distance evaluators ({!Sweep.standard} / {!Sweep.masked}). *)
module Tail_latency : sig
  type row = {
    tenant : string;
    shared_p50 : int;
    shared_p99 : int;
    shared_p999 : int;
    part_p50 : int;
    part_p99 : int;
    part_p999 : int;
  }

  type t = {
    rows : row list;  (** "all" first, then one row per tenant *)
    allocation : (string * int) list;  (** columns per tenant *)
    shared_cycles : int;
    partitioned_cycles : int;
    shared_sweep_exact : bool;
        (** machine replay == {!Sweep.standard} on every compared field *)
    partitioned_sweep_exact : bool;
        (** machine replay == {!Sweep.masked} on every compared field *)
  }

  val run : unit -> t
  val print : Format.formatter -> t -> unit
end

(** Not a paper figure: worst-case-aware column allocation. Four periodic
    tasks with deliberately uneven worst-case column demands share a 2 KB,
    8-column cache. Per-task bound curves come from
    {!Ir.Cache_analysis.analyze} at every column count; four allocations
    are compared — fully shared (no isolation, so the only sound per-task
    bound is its access count), an equal split, measured-MRC greedy
    ({!Layout.Mrc_alloc}), and WCET min-max ({!Layout.Wcet_alloc}) — each
    reporting the static bound next to the misses its replay actually
    observes. The WCET allocation's largest per-task bound is strictly
    below the equal split's, and the MRC allocation (trained on a profile
    where a rare branch never fires) leaves one task's worst case
    unprovable — average-optimal and worst-case-optimal partitions
    genuinely differ. *)
module Wcet_partition : sig
  type cell = {
    columns : int;  (** columns the task owns under this allocation *)
    bound : float;  (** static worst-case miss bound; [infinity] = unprovable *)
    observed : int;  (** misses actually observed in replay *)
  }

  type row = {
    task : string;
    shared : cell;
    equal : cell;
    mrc : cell;
    wcet : cell;
  }

  type t = {
    rows : row list;
    max_bounds : (string * float) list;
        (** largest per-task bound under each allocation, keyed
            shared/equal/mrc/wcet *)
    mrc_alloc : (string * int) list;
    wcet_alloc : (string * int) list;
    sound : bool;  (** every finite bound covered its observed misses *)
  }

  val run : unit -> t
  val print : Format.formatter -> t -> unit
end

(** Not a paper figure: the epoch-synchronized multitask replay
    ({!Sched.Epoch}) that replaces the serialized {!Sched.Round_robin}
    interleave. Three LZ77 jobs with disjoint address spaces each own an
    exclusive slice of a shared 8-column cache, so a private
    {!Machine.System} per task is exact and each task can replay on its
    own worker domain, synchronizing at epoch boundaries. Each job is
    replayed twice — through the blocking in-order core and through the
    event-driven core (MSHRs + banked DRAM) — and the gang-timeline
    makespans are compared. The outcome is byte-identical for any [jobs];
    [identical_across_jobs] re-runs serially and checks exactly that. *)
module Multitask_domains : sig
  type row = {
    job : string;
    accesses : int;
    blocking_cycles : int;  (** job cycles under the blocking in-order core *)
    event_cycles : int;  (** job cycles under the event-driven core *)
    mshr_merges : int;  (** delayed hits merged into in-flight fills *)
    dram_row_hits : int;
  }

  type t = {
    rows : row list;  (** in task order *)
    blocking_makespan : int;
    event_makespan : int;
    epochs : int;  (** gang-timeline length in epochs *)
    jobs : int;  (** worker domains the replay actually used *)
    identical_across_jobs : bool;
        (** parallel outcome structurally equal to the serial ([jobs = 1])
            replay; trivially [true] when run with [jobs = 1] *)
  }

  val task_count : int

  val run : ?jobs:int -> unit -> t
  (** Raises [Invalid_argument] (from {!Sched.Epoch.run}) if [jobs < 1] or
      [jobs] exceeds {!task_count}. *)

  val print : Format.formatter -> t -> unit
end

(** Not a paper figure: per-domain work accounting for the set-sharded
    parallel Mattson pass ({!Cache.Stack_dist.of_packed_parallel}). For
    each [jobs] value the same LZ77 trace is swept with that many worker
    domains; the row records every domain's engine-access count (each
    strictly below the serial total for [jobs >= 2] — the set filter
    really divides the work) and re-checks that the merged miss curve is
    byte-identical to the serial engine's. Wall-clock speedup is the bench
    harness's business ([mrc_parallel_j*] rows); this table is the
    scheduler-independent half of the scaling story, meaningful even on a
    single-core container. *)
module Mrc_scaling : sig
  type row = {
    jobs : int;
    shard_accesses : int list;  (** engine accesses per worker domain *)
    identical : bool;
        (** merged curve and access count equal the serial engine's *)
  }

  type t = { rows : row list; total_accesses : int }

  val run : ?jobs_list:int list -> unit -> t
  val print : Format.formatter -> t -> unit
end

(** Not a paper figure: the incremental sliding-window controller story.
    Two tenants swap working-set sizes at a phase boundary; a static
    allocation computed once from whole-trace miss curves must average the
    phases, while {!Layout.Mrc_alloc.Incremental} re-reads its rolling
    windowed curves after each phase and flips the column split. Both
    policies are scored by reading exact per-(tenant, phase) miss curves
    at their allocations. [windowed_wins] pins that the adaptive split
    strictly beats the static one; [retired] shows whole epochs really
    aged out (the window is shorter than a phase). *)
module Windowed_mrc : sig
  type phase_row = {
    phase : string;
    static_alloc : (string * int) list;
    windowed_alloc : (string * int) list;
    static_misses : int;
    windowed_misses : int;
  }

  type t = {
    rows : phase_row list;
    static_total : int;
    windowed_total : int;
    retired : (string * int) list;  (** per tenant, after both phases *)
    windowed_wins : bool;
  }

  val run : unit -> t
  val print : Format.formatter -> t -> unit
end

val run_all : ?jobs:int -> Format.formatter -> unit
(** Run every experiment and print all series (the bench harness's output
    body). [jobs] (default 1) is the number of domains the independent
    experiments are spread over; whatever the value, the bytes printed are
    identical — each experiment renders to its own buffer and the buffers
    are emitted in a fixed order. Raises [Invalid_argument] if [jobs < 1]. *)
