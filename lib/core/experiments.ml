(* The paper's Section 4.1 geometry: 2 KB of on-chip memory, four columns,
   16-byte lines. *)
let paper_cache ?(policy = Cache.Policy.Lru) ?(ways = 4) () =
  Cache.Sassoc.config ~line_size:16 ~policy ~size_bytes:2048 ~ways ()

let mpeg_pipeline ?policy ?ways () =
  Pipeline.make ~init:Workloads.Mpeg.init ~cache:(paper_cache ?policy ?ways ())
    Workloads.Mpeg.program

module Fig4_routines = struct
  type point = {
    cache_columns : int;
    scratchpad_columns : int;
    cycles : int;
    misses : int;
    uncached_regions : int;
  }

  type series = {
    routine : string;
    bytes : int;
    points : point list;
  }

  let run ?(meth = Pipeline.Profile_based) () =
    let t = mpeg_pipeline () in
    let k = Pipeline.columns t in
    List.map
      (fun routine ->
        let points =
          List.init (k + 1) (fun cache_columns ->
              let scratchpad_columns = k - cache_columns in
              let stats, part =
                Pipeline.run_partitioned t ~proc:routine ~scratchpad_columns
                  ~meth
              in
              {
                cache_columns;
                scratchpad_columns;
                cycles = stats.Machine.Run_stats.cycles;
                misses = stats.Machine.Run_stats.cache.Cache.Stats.misses;
                uncached_regions =
                  List.length (Layout.Partition.uncached_regions part);
              })
        in
        {
          routine;
          bytes = Workloads.Mpeg.total_bytes ~proc:routine;
          points;
        })
      Workloads.Mpeg.routines

  let print ppf series =
    List.iter
      (fun s ->
        Format.fprintf ppf "@[<v>Figure 4: %s (%d bytes of data)@," s.routine
          s.bytes;
        Format.fprintf ppf "  %-14s %-12s %-10s %-8s %s@," "cache(cols)"
          "scratch(cols)" "cycles" "misses" "uncached";
        List.iter
          (fun p ->
            Format.fprintf ppf "  %-14d %-12d %-10d %-8d %d@," p.cache_columns
              p.scratchpad_columns p.cycles p.misses p.uncached_regions)
          s.points;
        Format.fprintf ppf "@]@.")
      series
end

module Fig4_combined = struct
  type t = {
    static_points : (int * int) list;
    column_cache_cycles : int;
    standard_cache_cycles : int;
  }

  let run ?(meth = Pipeline.Profile_based) () =
    let t = mpeg_pipeline () in
    let k = Pipeline.columns t in
    let procs = Workloads.Mpeg.routines in
    let static_points =
      List.init (k + 1) (fun cache_columns ->
          let stats =
            Pipeline.run_static_app t ~procs ~scratchpad_columns:(k - cache_columns)
              ~meth
          in
          (cache_columns, stats.Machine.Run_stats.cycles))
    in
    let column_cache_cycles =
      (Pipeline.run_dynamic t ~procs ~meth).Machine.Run_stats.cycles
    in
    let standard_cache_cycles =
      List.fold_left
        (fun acc proc ->
          acc + (Pipeline.run_standard t ~proc).Machine.Run_stats.cycles)
        0 procs
    in
    { static_points; column_cache_cycles; standard_cache_cycles }

  let print ppf t =
    Format.fprintf ppf "@[<v>Figure 4(d): whole application@,";
    Format.fprintf ppf "  %-24s %s@," "configuration" "cycles";
    List.iter
      (fun (cache_columns, cycles) ->
        Format.fprintf ppf "  %-24s %d@,"
          (Printf.sprintf "static %d cache cols" cache_columns)
          cycles)
      t.static_points;
    Format.fprintf ppf "  %-24s %d@," "standard 4-way cache"
      t.standard_cache_cycles;
    Format.fprintf ppf "  %-24s %d@," "column cache (dynamic)"
      t.column_cache_cycles;
    Format.fprintf ppf "@]@."
end

module Fig5 = struct
  type series = {
    label : string;
    cache_kb : int;
    mapped : bool;
    points : (int * float) list;
  }

  let default_quanta =
    [ 1; 4; 16; 64; 256; 1024; 4096; 16384; 65536; 262144; 1048576 ]

  (* Off-chip latency of the multitasking platform; higher than the embedded
     default so that interference shows at the paper's amplitude. *)
  let fig5_timing = { Machine.Timing.default with Machine.Timing.miss_penalty = 50 }

  let jobs ~input_len =
    List.map
      (fun (name, seed, base) ->
        {
          Sched.Round_robin.name;
          trace = Workloads.Lz77.trace ~seed ~input_len ~base ();
        })
      [ ("A", 1, 0x000000); ("B", 2, 0x100000); ("C", 3, 0x200000) ]

  let job_a_region = (0x000000, 0x100000)

  let run_point ~cache_kb ~mapped ~quantum ~input_len =
    let ways = 8 in
    let cache =
      Cache.Sassoc.config ~line_size:16 ~size_bytes:(cache_kb * 1024) ~ways ()
    in
    let system =
      Machine.System.create
        (Machine.System.config ~timing:fig5_timing ~page_size:1024 cache)
    in
    if mapped then begin
      let mapping = Machine.System.mapping system in
      let job_a = Vm.Tint.make "jobA" in
      let base, size = job_a_region in
      ignore (Vm.Mapping.retint_region mapping ~base ~size job_a);
      (* job A, the critical job, owns six of the eight columns *)
      Vm.Mapping.remap_tint mapping job_a (Cache.Bitmask.range ~lo:0 ~hi:5);
      Vm.Mapping.remap_tint mapping Vm.Tint.default
        (Cache.Bitmask.range ~lo:6 ~hi:7)
    end;
    let outcome =
      Sched.Round_robin.run ~system ~quantum (jobs ~input_len)
    in
    match Sched.Round_robin.find_job outcome "A" with
    | Some s -> Sched.Round_robin.cpi s
    | None -> assert false

  let run ?(quanta = default_quanta) ?(cache_kbs = [ 16; 128 ])
      ?(input_len = 12288) () =
    List.concat_map
      (fun cache_kb ->
        List.map
          (fun mapped ->
            {
              label =
                Printf.sprintf "gzip.%dk%s" cache_kb
                  (if mapped then " mapped" else "");
              cache_kb;
              mapped;
              points =
                List.map
                  (fun quantum ->
                    (quantum, run_point ~cache_kb ~mapped ~quantum ~input_len))
                  quanta;
            })
          [ false; true ])
      cache_kbs

  let print ppf series =
    Format.fprintf ppf "@[<v>Figure 5: CPI of job A vs context-switch quantum@,";
    (match series with
    | [] -> ()
    | first :: _ ->
        Format.fprintf ppf "  %-18s" "quantum";
        List.iter (fun (q, _) -> Format.fprintf ppf "%9d" q) first.points;
        Format.fprintf ppf "@,");
    List.iter
      (fun s ->
        Format.fprintf ppf "  %-18s" s.label;
        List.iter (fun (_, cpi) -> Format.fprintf ppf "%9.3f" cpi) s.points;
        Format.fprintf ppf "@,")
      series;
    Format.fprintf ppf "@]@."
end

module Fig3 = struct
  type t = {
    pages : int;
    tinted_pte_writes : int;
    tinted_table_writes : int;
    tinted_tlb_entry_flushes : int;
    direct_pte_writes : int;
    masks_agree : bool;
  }

  let run ?(pages = 20) ?(columns = 20) () =
    let page_size = 256 in
    let region = pages * page_size in
    (* Tint scheme: all pages start with the default tint; give page 0 its
       own column and exclude that column from the rest. *)
    let mapping = Vm.Mapping.create ~page_size ~columns () in
    (* touch the TLB so flushes are observable *)
    for page = 0 to pages - 1 do
      ignore (Vm.Mapping.mask_of mapping (page * page_size))
    done;
    let before = Vm.Mapping.cost mapping in
    let blue = Vm.Tint.make "blue" in
    ignore (Vm.Mapping.retint_region mapping ~base:0 ~size:page_size blue);
    Vm.Mapping.remap_tint mapping blue (Cache.Bitmask.singleton 1);
    Vm.Mapping.remap_tint mapping Vm.Tint.default
      (Cache.Bitmask.complement ~n:columns (Cache.Bitmask.singleton 1));
    let delta =
      Vm.Mapping.cost_delta ~before ~after:(Vm.Mapping.cost mapping)
    in
    (* Direct scheme: bit vectors live in the PTEs. *)
    let direct = Vm.Direct_mapping.create ~page_size ~columns in
    ignore
      (Vm.Direct_mapping.set_mask_region direct ~base:0 ~size:region
         (Cache.Bitmask.full ~n:columns));
    let before_writes = Vm.Direct_mapping.pte_writes direct in
    Vm.Direct_mapping.set_mask direct ~page:0 (Cache.Bitmask.singleton 1);
    ignore
      (Vm.Direct_mapping.set_mask_region direct ~base:page_size
         ~size:(region - page_size)
         (Cache.Bitmask.complement ~n:columns (Cache.Bitmask.singleton 1)));
    let masks_agree =
      List.for_all
        (fun page ->
          let addr = page * page_size in
          Cache.Bitmask.equal
            (Vm.Direct_mapping.mask_of direct addr)
            (Vm.Mapping.mask_of_quiet mapping addr))
        (List.init pages (fun p -> p))
    in
    {
      pages;
      tinted_pte_writes = delta.Vm.Mapping.pte_writes;
      tinted_table_writes = delta.Vm.Mapping.tint_table_writes;
      tinted_tlb_entry_flushes = delta.Vm.Mapping.tlb_entry_flushes;
      direct_pte_writes = Vm.Direct_mapping.pte_writes direct - before_writes;
      masks_agree;
    }

  let print ppf t =
    Format.fprintf ppf
      "@[<v>Figure 3: remap one of %d pages to its own column@,\
      \  tints in PTEs:       %d PTE write(s), %d tint-table write(s), %d \
       TLB entry flush(es)@,\
      \  bit vectors in PTEs: %d PTE write(s)@,\
      \  resulting mappings identical: %b@]@." t.pages t.tinted_pte_writes
      t.tinted_table_writes t.tinted_tlb_entry_flushes t.direct_pte_writes
      t.masks_agree
end

module Ablation_policy = struct
  type row = {
    policy : string;
    dynamic_cycles : int;
    best_static_cycles : int;
    standard_cycles : int;
  }

  let run () =
    List.map
      (fun policy ->
        let t = mpeg_pipeline ~policy () in
        let procs = Workloads.Mpeg.routines in
        let meth = Pipeline.Profile_based in
        let dynamic_cycles =
          (Pipeline.run_dynamic t ~procs ~meth).Machine.Run_stats.cycles
        in
        let k = Pipeline.columns t in
        let best_static_cycles =
          List.fold_left
            (fun acc p ->
              min acc
                (Pipeline.run_static_app t ~procs ~scratchpad_columns:p ~meth)
                  .Machine.Run_stats.cycles)
            max_int
            (List.init (k + 1) (fun p -> p))
        in
        let standard_cycles =
          List.fold_left
            (fun acc proc ->
              acc + (Pipeline.run_standard t ~proc).Machine.Run_stats.cycles)
            0 procs
        in
        {
          policy = Cache.Policy.kind_to_string policy;
          dynamic_cycles;
          best_static_cycles;
          standard_cycles;
        })
      Cache.Policy.all_kinds

  let print ppf rows =
    Format.fprintf ppf "@[<v>Ablation: replacement policy (whole MPEG app)@,";
    Format.fprintf ppf
      "  (single-column mapping leaves the policy no choice, so the mapped@,      \   columns are policy-invariant by construction; only the standard@,      \   cache depends on it)@,";
    Format.fprintf ppf "  %-12s %-16s %-14s %s@," "policy" "column(dynamic)"
      "best static" "standard";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-12s %-16d %-14d %d@," r.policy r.dynamic_cycles
          r.best_static_cycles r.standard_cycles)
      rows;
    Format.fprintf ppf "@]@."
end

module Ablation_columns = struct
  type row = {
    columns : int;
    dynamic_cycles : int;
    best_static_cycles : int;
    standard_cycles : int;
  }

  let run ?(columns_list = [ 2; 4; 8 ]) () =
    List.map
      (fun ways ->
        let t = mpeg_pipeline ~ways () in
        let procs = Workloads.Mpeg.routines in
        let meth = Pipeline.Profile_based in
        let dynamic_cycles =
          (Pipeline.run_dynamic t ~procs ~meth).Machine.Run_stats.cycles
        in
        let best_static_cycles =
          List.fold_left
            (fun acc p ->
              min acc
                (Pipeline.run_static_app t ~procs ~scratchpad_columns:p ~meth)
                  .Machine.Run_stats.cycles)
            max_int
            (List.init (ways + 1) (fun p -> p))
        in
        let standard_cycles =
          List.fold_left
            (fun acc proc ->
              acc + (Pipeline.run_standard t ~proc).Machine.Run_stats.cycles)
            0 procs
        in
        { columns = ways; dynamic_cycles; best_static_cycles; standard_cycles })
      columns_list

  let print ppf rows =
    Format.fprintf ppf
      "@[<v>Ablation: column count at fixed 2 KB (whole MPEG app)@,";
    Format.fprintf ppf "  %-8s %-16s %-14s %s@," "columns" "column(dynamic)"
      "best static" "standard";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-8d %-16d %-14d %d@," r.columns r.dynamic_cycles
          r.best_static_cycles r.standard_cycles)
      rows;
    Format.fprintf ppf "@]@."
end

module Ablation_weights = struct
  type row = {
    routine : string;
    profile_cycles : int;
    static_cycles : int;
    standard_cycles : int;
  }

  let run () =
    let t = mpeg_pipeline () in
    List.map
      (fun routine ->
        let best meth =
          snd (Pipeline.best_split t ~proc:routine ~meth)
        in
        {
          routine;
          profile_cycles =
            (best Pipeline.Profile_based).Machine.Run_stats.cycles;
          static_cycles =
            (best Pipeline.Program_analysis).Machine.Run_stats.cycles;
          standard_cycles =
            (Pipeline.run_standard t ~proc:routine).Machine.Run_stats.cycles;
        })
      Workloads.Mpeg.routines

  let print ppf rows =
    Format.fprintf ppf
      "@[<v>Ablation: profile-based vs program-analysis weights@,";
    Format.fprintf ppf "  %-10s %-10s %-10s %s@," "routine" "profile"
      "analysis" "standard";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-10s %-10d %-10d %d@," r.routine
          r.profile_cycles r.static_cycles r.standard_cycles)
      rows;
    Format.fprintf ppf "@]@."
end

module Ablation_page_coloring = struct
  type row = {
    config : string;
    cycles : int;
    misses : int;
  }

  type t = {
    rows : row list;
    recolor_bytes : int;
        (** copying cost of re-coloring between dequant's and idct's
            per-procedure page placements *)
    column_remap_writes : int;
        (** tint-table writes the column cache needs for the same
            per-procedure adaptation *)
  }

  let page_size = 256

  let run () =
    let dm_cache =
      (* the same 2 KB as direct-mapped cache: page coloring's home turf *)
      Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:1 ()
    in
    let t_dm =
      Pipeline.make ~page_size ~init:Workloads.Mpeg.init ~cache:dm_cache
        Workloads.Mpeg.program
    in
    let procs = Workloads.Mpeg.routines in
    let combined =
      Memtrace.Trace.concat
        (List.map (fun proc -> Pipeline.trace_of t_dm ~proc) procs)
    in
    let packed = List.map (fun proc -> Pipeline.packed_trace_of t_dm ~proc) procs in
    (* Both direct-mapped arms are plain LRU sweeps over the same traces:
       one stack-distance pass each, the colored one translated through the
       coloring's frame placement (the cache is physically indexed; the TLB
       is virtual and unaffected). The exact machine replay remains as the
       fallback for configurations the closed form cannot express. *)
    let run_configured ?translate configure =
      let stats =
        match
          Sweep.standard ?translate ~cache:dm_cache
            ~timing:Machine.Timing.default ~page_size
            ~tlb_entries:t_dm.Pipeline.tlb_entries packed
        with
        | Some stats -> stats
        | None ->
            let system = Pipeline.fresh_system t_dm in
            configure system;
            List.fold_left
              (fun acc p ->
                Machine.Run_stats.add acc (Machine.System.run_packed system p))
              (Machine.Run_stats.zero ~ways:1)
              packed
      in
      {
        config = "";
        cycles = stats.Machine.Run_stats.cycles;
        misses = stats.Machine.Run_stats.cache.Cache.Stats.misses;
      }
    in
    let vars =
      List.map
        (fun v -> (v.Ir.Ast.name, Ir.Ast.var_size_bytes v))
        Workloads.Mpeg.program.Ir.Ast.vars
    in
    let coloring_for summaries =
      Layout.Page_coloring.assign ~cache:dm_cache ~page_size
        ~address_map:t_dm.Pipeline.address_map ~vars ~summaries
    in
    let naive = run_configured (fun _ -> ()) in
    let colored =
      let coloring = coloring_for (Profile.Lifetime.of_trace combined) in
      run_configured
        ~translate:
          (Vm.Frame_map.translate (Layout.Page_coloring.frame_map coloring))
        (fun system -> Layout.Page_coloring.apply coloring system)
    in
    (* column cache on the same 2 KB, 4 columns *)
    let t_col = mpeg_pipeline () in
    let column =
      let stats = Pipeline.run_dynamic t_col ~procs ~meth:Pipeline.Profile_based in
      {
        config = "";
        cycles = stats.Machine.Run_stats.cycles;
        misses = stats.Machine.Run_stats.cache.Cache.Stats.misses;
      }
    in
    let standard =
      let stats =
        List.fold_left
          (fun acc proc ->
            Machine.Run_stats.add acc (Pipeline.run_standard t_col ~proc))
          (Machine.Run_stats.zero ~ways:4)
          procs
      in
      {
        config = "";
        cycles = stats.Machine.Run_stats.cycles;
        misses = stats.Machine.Run_stats.cache.Cache.Stats.misses;
      }
    in
    (* adaptation cost: per-procedure placements for dequant vs idct *)
    let per_proc proc =
      coloring_for
        (Profile.Lifetime.of_trace (Pipeline.trace_of t_dm ~proc))
    in
    let recolor_bytes =
      Layout.Page_coloring.recolor_cost_bytes ~from_:(per_proc "dequant")
        ~to_:(per_proc "idct")
    in
    let column_remap_writes =
      let _, transitions =
        Pipeline.run_dynamic_detailed t_col ~procs ~meth:Pipeline.Profile_based
      in
      List.fold_left
        (fun acc tr -> acc + tr.Layout.Dynamic.tint_table_writes)
        0 transitions
    in
    {
      rows =
        [
          { naive with config = "direct-mapped, naive layout" };
          { colored with config = "direct-mapped, page-colored" };
          { standard with config = "4-way standard cache" };
          { column with config = "column cache (dynamic)" };
        ];
      recolor_bytes;
      column_remap_writes;
    }

  let print ppf t =
    Format.fprintf ppf
      "@[<v>Ablation: page coloring baseline (whole MPEG app, same 2 KB)@,";
    Format.fprintf ppf "  %-30s %-10s %s@," "configuration" "cycles" "misses";
    List.iter
      (fun r -> Format.fprintf ppf "  %-30s %-10d %d@," r.config r.cycles r.misses)
      t.rows;
    Format.fprintf ppf
      "  adaptation dequant->idct: page coloring copies %d bytes; the column        cache writes %d table entries across the whole schedule@,"
      t.recolor_bytes t.column_remap_writes;
    Format.fprintf ppf "@]@."
end

module Ablation_l2 = struct
  type row = {
    config : string;
    cycles : int;
    l1_misses : int;
    l2_hits : int;
  }

  let l2_config = Cache.Sassoc.config ~line_size:16 ~size_bytes:16384 ~ways:4 ()

  let run () =
    let t = mpeg_pipeline () in
    let procs = Workloads.Mpeg.routines in
    let packed = List.map (fun proc -> Pipeline.packed_trace_of t ~proc) procs in
    let system ~l2 =
      let cfg =
        match l2 with
        | false -> Machine.System.config t.Pipeline.cache
        | true -> Machine.System.config ~l2:l2_config t.Pipeline.cache
      in
      Machine.System.create cfg
    in
    (* the standard arm replays each routine twice (with and without L2):
       the no-L2 point is a plain LRU sweep the stack-distance engine reads
       off directly; the L2 point needs the machine *)
    let standard ~l2 =
      let exact () =
        let system = system ~l2 in
        List.fold_left
          (fun acc p ->
            Machine.Run_stats.add acc (Machine.System.run_packed system p))
          (Machine.Run_stats.zero ~ways:4)
          packed
      in
      if l2 then exact ()
      else
        match
          Sweep.standard ~cache:t.Pipeline.cache ~timing:Machine.Timing.default
            ~page_size:t.Pipeline.page_size
            ~tlb_entries:t.Pipeline.tlb_entries packed
        with
        | Some stats -> stats
        | None -> exact ()
    in
    (* the schedule does not depend on the L2: compute it once, replay it
       against both machines *)
    let schedule, traces =
      Pipeline.dynamic_schedule t ~procs ~meth:Pipeline.Profile_based
    in
    let column ~l2 =
      fst (Layout.Dynamic.run ~system:(system ~l2) ~traces schedule)
    in
    let row config (stats : Machine.Run_stats.t) =
      {
        config;
        cycles = stats.Machine.Run_stats.cycles;
        l1_misses = stats.Machine.Run_stats.cache.Cache.Stats.misses;
        l2_hits = stats.Machine.Run_stats.l2_hits;
      }
    in
    [
      row "standard, no L2" (standard ~l2:false);
      row "standard + 16K L2" (standard ~l2:true);
      row "column dynamic, no L2" (column ~l2:false);
      row "column dynamic + 16K L2" (column ~l2:true);
    ]

  let print ppf rows =
    Format.fprintf ppf
      "@[<v>Ablation: L2 presence (whole MPEG app, 2 KB L1)@,";
    Format.fprintf ppf "  %-26s %-10s %-10s %s@," "configuration" "cycles"
      "L1 misses" "L2 hits";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-26s %-10d %-10d %d@," r.config r.cycles
          r.l1_misses r.l2_hits)
      rows;
    Format.fprintf ppf "@]@."
end

module Ablation_prefetch = struct
  type row = {
    config : string;
    cycles : int;
    misses : int;
    prefetches : int;
  }

  (* FIR filter: a hot 128 B coefficient table against two multi-KB streams
     (input, output). The paper's Section 2 observation is that a prefetch
     buffer can live inside the general cache as just another partition:
     marking the stream tints "streaming" prefetches into their own columns
     and cannot evict the coefficients. *)
  let run () =
    let program = Workloads.Kernels.fir ~taps:32 ~samples:2048 in
    let t =
      Pipeline.make ~init:Workloads.Kernels.init ~cache:(paper_cache ()) program
    in
    (* one trace, four configurations: pack once, replay the columns *)
    let packed = Pipeline.packed_trace_of t ~proc:"fir" in
    let streaming_vars = [ "input"; "output" ] in
    let row config (stats : Machine.Run_stats.t) =
      {
        config;
        cycles = stats.Machine.Run_stats.cycles;
        misses = stats.Machine.Run_stats.cache.Cache.Stats.misses;
        prefetches = stats.Machine.Run_stats.prefetches;
      }
    in
    let standard ~prefetch =
      let system = Pipeline.fresh_system t in
      if prefetch then Machine.System.set_streaming system Vm.Tint.default;
      row
        (if prefetch then "standard + prefetch-all"
         else "standard, no prefetch")
        (Machine.System.run_packed system packed)
    in
    let column ~prefetch =
      let part =
        Pipeline.partition t ~proc:"fir" ~scratchpad_columns:0
          ~meth:Pipeline.Profile_based
      in
      let system = Pipeline.fresh_system t in
      Layout.Partition.apply part system;
      if prefetch then
        List.iter
          (fun pl ->
            if List.mem pl.Layout.Partition.region.Layout.Region.var streaming_vars
            then
              Machine.System.set_streaming system
                (Layout.Region.tint pl.Layout.Partition.region))
          part.Layout.Partition.placements;
      row
        (if prefetch then "column + stream prefetch" else "column, no prefetch")
        (Machine.System.run_packed system packed)
    in
    [
      standard ~prefetch:false;
      standard ~prefetch:true;
      column ~prefetch:false;
      column ~prefetch:true;
    ]

  let print ppf rows =
    Format.fprintf ppf
      "@[<v>Ablation: stream prefetch as a cache partition (FIR, 2 KB)@,";
    Format.fprintf ppf "  %-26s %-10s %-8s %s@," "configuration" "cycles"
      "misses" "prefetches";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-26s %-10d %-8d %d@," r.config r.cycles r.misses
          r.prefetches)
      rows;
    Format.fprintf ppf "@]@."
end

module Ablation_tlb = struct
  type series = {
    tlb_entries : int;
    points : (int * float) list;
  }

  let run ?(quanta = [ 16; 256; 4096; 65536; 1048576 ]) ?(sizes = [ 8; 32; 128 ])
      ?(input_len = 8192) () =
    let jobs () = Fig5.jobs ~input_len in
    List.map
      (fun tlb_entries ->
        let points =
          List.map
            (fun quantum ->
              let cache =
                Cache.Sassoc.config ~line_size:16 ~size_bytes:(16 * 1024)
                  ~ways:8 ()
              in
              let system =
                Machine.System.create
                  (Machine.System.config ~timing:Fig5.fig5_timing
                     ~page_size:1024 ~tlb_entries cache)
              in
              let outcome =
                Sched.Round_robin.run ~flush_tlb_on_switch:true ~system
                  ~quantum (jobs ())
              in
              match Sched.Round_robin.find_job outcome "A" with
              | Some s -> (quantum, Sched.Round_robin.cpi s)
              | None -> assert false)
            quanta
        in
        { tlb_entries; points })
      sizes

  let print ppf series =
    Format.fprintf ppf
      "@[<v>Ablation: TLB size with flush-on-switch (16k standard cache)@,";
    (match series with
    | [] -> ()
    | first :: _ ->
        Format.fprintf ppf "  %-12s" "quantum";
        List.iter (fun (q, _) -> Format.fprintf ppf "%9d" q) first.points;
        Format.fprintf ppf "@,");
    List.iter
      (fun s ->
        Format.fprintf ppf "  %-12s"
          (Printf.sprintf "tlb=%d" s.tlb_entries);
        List.iter (fun (_, cpi) -> Format.fprintf ppf "%9.3f" cpi) s.points;
        Format.fprintf ppf "@,")
      series;
    Format.fprintf ppf "@]@."
end

module Ablation_grouping = struct
  type row = {
    config : string;
    cycles : int;
    misses : int;
  }

  (* A 768 B array re-walked twenty times, mapped WITHOUT the layout
     algorithm's subarray splitting (one tint for the whole variable):
     confined to one 512 B column it thrashes; given a two-column group
     (Section 2.1's "aggregating columns into partitions") it fits and
     enjoys associativity. The full layout algorithm reaches the same
     result by splitting the array across two single columns — which is
     why grouping adds nothing on the MPEG routines: step 1 of the
     algorithm already absorbs it. *)
  let run () =
    let program = Workloads.Kernels.hot_walk ~hot_elems:192 ~passes:20 in
    let t =
      Pipeline.make ~init:Workloads.Kernels.init ~cache:(paper_cache ()) program
    in
    (* the same trace replays under every tint layout: pack once *)
    let packed = Pipeline.packed_trace_of t ~proc:"hot_walk" in
    let coarse_run masks =
      (* whole-variable tints with explicit masks, no splitting *)
      let system = Pipeline.fresh_system t in
      let mapping = Machine.System.mapping system in
      List.iter
        (fun (var, mask) ->
          let base = Layout.Address_map.base_of t.Pipeline.address_map var in
          let size =
            match Ir.Ast.find_var program var with
            | Some v -> Ir.Ast.var_size_bytes v
            | None -> assert false
          in
          ignore
            (Vm.Mapping.retint_region mapping ~base ~size (Vm.Tint.make var));
          Vm.Mapping.remap_tint mapping (Vm.Tint.make var) mask)
        masks;
      let stats = Machine.System.run_packed system packed in
      (stats.Machine.Run_stats.cycles,
       stats.Machine.Run_stats.cache.Cache.Stats.misses)
    in
    let single =
      coarse_run
        [
          ("hot", Cache.Bitmask.singleton 0);
          ("aux1", Cache.Bitmask.singleton 1);
          ("aux2", Cache.Bitmask.singleton 2);
        ]
    in
    let grouped =
      coarse_run
        [
          ("hot", Cache.Bitmask.of_list [ 0; 1 ]);
          ("aux1", Cache.Bitmask.singleton 2);
          ("aux2", Cache.Bitmask.singleton 3);
        ]
    in
    let algorithm =
      let stats, _ =
        Pipeline.run_partitioned t ~proc:"hot_walk" ~scratchpad_columns:0
          ~meth:Pipeline.Profile_based
      in
      (stats.Machine.Run_stats.cycles,
       stats.Machine.Run_stats.cache.Cache.Stats.misses)
    in
    let standard =
      let stats = Pipeline.run_standard t ~proc:"hot_walk" in
      (stats.Machine.Run_stats.cycles,
       stats.Machine.Run_stats.cache.Cache.Stats.misses)
    in
    List.map
      (fun (config, (cycles, misses)) -> { config; cycles; misses })
      [
        ("whole-var, 1 column", single);
        ("whole-var, 2-col group", grouped);
        ("layout algorithm (split)", algorithm);
        ("standard cache", standard);
      ]

  let print ppf rows =
    Format.fprintf ppf
      "@[<v>Ablation: column grouping (Section 2.1) on a 768 B hot walk@,";
    Format.fprintf ppf "  %-26s %-10s %s@," "mapping" "cycles" "misses";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-26s %-10d %d@," r.config r.cycles r.misses)
      rows;
    Format.fprintf ppf "@]@."
end

module Mrc_layout = struct
  type row = {
    config : string;
    cycles : int;
    misses : int;
  }

  type t = {
    rows : row list;
    allocation : (string * int) list;
    predicted_misses : int;
        (** read off the per-variable miss-ratio curves before any replay *)
    measured_misses : int;  (** the machine's count under that allocation *)
    naive_predicted_misses : int;
        (** the curves' price for the one-column-per-variable split *)
    naive_measured_misses : int;
  }

  (* MRC-driven column allocation: one stack-distance pass over the packed
     trace yields every variable's miss-ratio curve, the greedy allocator
     hands columns to whichever curve's next column removes the most
     misses, and the curves PREDICT the resulting miss count exactly —
     compared here against the interference-graph coloring the layout
     algorithm uses, on the grouping ablation's hot-walk workload (where
     group sizing is the whole game). *)
  let run () =
    let program = Workloads.Kernels.hot_walk ~hot_elems:192 ~passes:20 in
    let t =
      Pipeline.make ~init:Workloads.Kernels.init ~cache:(paper_cache ()) program
    in
    let packed = Pipeline.packed_trace_of t ~proc:"hot_walk" in
    let cache = t.Pipeline.cache in
    let _global, per_tag =
      Cache.Stack_dist.per_tag_of_packed
        ~line_size:cache.Cache.Sassoc.line_size ~sets:cache.Cache.Sassoc.sets
        ~max_ways:cache.Cache.Sassoc.ways packed
    in
    let curves =
      Array.to_list
        (Array.map
           (fun (name, engine) -> (name, Cache.Stack_dist.miss_curve engine))
           per_tag)
    in
    let allocation =
      Layout.Mrc_alloc.allocate ~columns:(Pipeline.columns t) curves
    in
    let predicted_misses = Layout.Mrc_alloc.predicted_misses curves allocation in
    let run_masks masks =
      (* whole-variable tints with explicit masks, as in the grouping
         ablation *)
      let system = Pipeline.fresh_system t in
      let mapping = Machine.System.mapping system in
      List.iter
        (fun (var, mask) ->
          if not (Cache.Bitmask.is_empty mask) then begin
            let base = Layout.Address_map.base_of t.Pipeline.address_map var in
            let size =
              match Ir.Ast.find_var program var with
              | Some v -> Ir.Ast.var_size_bytes v
              | None -> assert false
            in
            ignore
              (Vm.Mapping.retint_region mapping ~base ~size (Vm.Tint.make var));
            Vm.Mapping.remap_tint mapping (Vm.Tint.make var) mask
          end)
        masks;
      let stats = Machine.System.run_packed system packed in
      ( stats.Machine.Run_stats.cycles,
        stats.Machine.Run_stats.cache.Cache.Stats.misses )
    in
    let mrc_cycles, mrc_misses =
      run_masks (Layout.Mrc_alloc.to_masks allocation)
    in
    (* The curve-blind baseline: one column per variable, the paper's
       footnote restriction. The curves price this allocation too — hot's
       curve at one column already says it will thrash. *)
    let naive = List.map (fun (name, _) -> (name, 1)) curves in
    let naive_predicted_misses =
      Layout.Mrc_alloc.predicted_misses curves naive
    in
    let naive_cycles, naive_misses =
      run_masks (Layout.Mrc_alloc.to_masks naive)
    in
    let coloring =
      let stats, _ =
        Pipeline.run_partitioned t ~proc:"hot_walk" ~scratchpad_columns:0
          ~meth:Pipeline.Profile_based
      in
      ( stats.Machine.Run_stats.cycles,
        stats.Machine.Run_stats.cache.Cache.Stats.misses )
    in
    let standard =
      let stats = Pipeline.run_standard t ~proc:"hot_walk" in
      ( stats.Machine.Run_stats.cycles,
        stats.Machine.Run_stats.cache.Cache.Stats.misses )
    in
    {
      rows =
        List.map
          (fun (config, (cycles, misses)) -> { config; cycles; misses })
          [
            ("MRC greedy allocation", (mrc_cycles, mrc_misses));
            ("equal split, 1 col each", (naive_cycles, naive_misses));
            ("interference coloring", coloring);
            ("standard cache", standard);
          ];
      allocation;
      predicted_misses;
      measured_misses = mrc_misses;
      naive_predicted_misses;
      naive_measured_misses = naive_misses;
    }

  let print ppf t =
    Format.fprintf ppf
      "@[<v>MRC-driven column allocation (768 B hot walk, one \
       stack-distance pass)@,";
    Format.fprintf ppf "  %-26s %-10s %s@," "mapping" "cycles" "misses";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-26s %-10d %d@," r.config r.cycles r.misses)
      t.rows;
    Format.fprintf ppf "  allocation:%a@,"
      (fun ppf ->
        List.iter (fun (v, c) -> Format.fprintf ppf " %s=%d" v c))
      t.allocation;
    Format.fprintf ppf
      "  curve-predicted misses %d, machine-measured %d (%s)@,"
      t.predicted_misses t.measured_misses
      (if t.predicted_misses = t.measured_misses then "exact" else "MISMATCH");
    Format.fprintf ppf
      "  equal-split prediction    %d, machine-measured %d (%s)@,"
      t.naive_predicted_misses t.naive_measured_misses
      (if t.naive_predicted_misses = t.naive_measured_misses then "exact"
       else "MISMATCH");
    Format.fprintf ppf "@]@."
end

module Ablation_optimizer = struct
  type row = {
    routine : string;
    accesses_before : int;
    accesses_after : int;
    standard_before : int;
    standard_after : int;
    column_before : int;
    column_after : int;
  }

  (* The compiler front end the layout pass lives in also runs classical
     scalar optimizations (abl9): hoisting the per-element qscale reload out
     of dequant's loop, folding, dead code. Fewer accesses change both the
     baseline and the layout algorithm's weights. *)
  let run () =
    let meth = Pipeline.Profile_based in
    let before = mpeg_pipeline () in
    let after =
      Pipeline.make ~init:Workloads.Mpeg.init ~cache:(paper_cache ())
        (Ir.Optimize.optimize Workloads.Mpeg.program)
    in
    List.map
      (fun routine ->
        let accesses t = Memtrace.Trace.length (Pipeline.trace_of t ~proc:routine) in
        let standard t = (Pipeline.run_standard t ~proc:routine).Machine.Run_stats.cycles in
        let column t =
          (snd (Pipeline.best_split t ~proc:routine ~meth)).Machine.Run_stats.cycles
        in
        {
          routine;
          accesses_before = accesses before;
          accesses_after = accesses after;
          standard_before = standard before;
          standard_after = standard after;
          column_before = column before;
          column_after = column after;
        })
      Workloads.Mpeg.routines

  let print ppf rows =
    Format.fprintf ppf
      "@[<v>Ablation: front-end optimizer (fold + DCE + scalar hoisting)@,";
    Format.fprintf ppf "  %-10s %-18s %-20s %s@," "routine" "accesses"
      "standard cycles" "best column cycles";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-10s %6d -> %-8d %8d -> %-9d %8d -> %d@,"
          r.routine r.accesses_before r.accesses_after r.standard_before
          r.standard_after r.column_before r.column_after)
      rows;
    Format.fprintf ppf "@]@."
end

module Generality = struct
  (* Not a figure from the paper: a cross-check that the layout machinery
     generalizes beyond the paper's MPEG benchmark. Same protocol as
     Figure 4(d), applied to a JPEG encoder front end. *)
  type t = {
    routines : (string * int * int * int) list;
        (** routine, bytes, standard cycles, best column cycles *)
    dynamic_cycles : int;
    best_static_cycles : int;
    standard_cycles : int;
  }

  let run () =
    let t =
      Pipeline.make ~init:Workloads.Jpeg.init ~cache:(paper_cache ())
        Workloads.Jpeg.program
    in
    let meth = Pipeline.Profile_based in
    let procs = Workloads.Jpeg.routines in
    let routines =
      List.map
        (fun proc ->
          let standard = (Pipeline.run_standard t ~proc).Machine.Run_stats.cycles in
          let _, best = Pipeline.best_split t ~proc ~meth in
          ( proc,
            Workloads.Jpeg.total_bytes ~proc,
            standard,
            best.Machine.Run_stats.cycles ))
        procs
    in
    let dynamic_cycles =
      (Pipeline.run_dynamic t ~procs ~meth).Machine.Run_stats.cycles
    in
    let best_static_cycles =
      List.fold_left
        (fun acc p ->
          min acc
            (Pipeline.run_static_app t ~procs ~scratchpad_columns:p ~meth)
              .Machine.Run_stats.cycles)
        max_int [ 0; 1; 2; 3; 4 ]
    in
    let standard_cycles =
      List.fold_left
        (fun acc proc ->
          acc + (Pipeline.run_standard t ~proc).Machine.Run_stats.cycles)
        0 procs
    in
    { routines; dynamic_cycles; best_static_cycles; standard_cycles }

  let print ppf t =
    Format.fprintf ppf
      "@[<v>Generality check: JPEG encoder front end (2 KB, 4 columns)@,";
    Format.fprintf ppf "  %-16s %-8s %-10s %s@," "routine" "bytes" "standard"
      "best column";
    List.iter
      (fun (proc, bytes, standard, best) ->
        Format.fprintf ppf "  %-16s %-8d %-10d %d@," proc bytes standard best)
      t.routines;
    Format.fprintf ppf "  whole app: standard %d, best static %d, dynamic %d@,"
      t.standard_cycles t.best_static_cycles t.dynamic_cycles;
    Format.fprintf ppf "@]@."
end

module Tail_latency = struct
  type row = {
    tenant : string;
    shared_p50 : int;
    shared_p99 : int;
    shared_p999 : int;
    part_p50 : int;
    part_p99 : int;
    part_p999 : int;
  }

  type t = {
    rows : row list;  (** "all" first, then one row per tenant *)
    allocation : (string * int) list;
    shared_cycles : int;
    partitioned_cycles : int;
    shared_sweep_exact : bool;
    partitioned_sweep_exact : bool;
  }

  (* Three tenants with very different locality share one 4 KB 8-way cache:
     two Zipf-skewed request streams (a hot one that fits in a couple of
     columns and a warmer, wider one) and a sequential scanner whose
     working set exceeds the whole cache. Interleaved request by request,
     the scan's dead lines flood the shared LRU and the Zipf tenants pay
     for it in the tail; giving each tenant the columns its miss-ratio
     curve asks for confines the damage. Both arms replay the identical
     interleaved trace, and each machine replay is cross-checked
     byte-for-byte (aggregates and the full latency distribution) against
     its closed-form stack-distance evaluation. *)
  let tenants =
    [
      ("zipf_hot", Workloads.Gen.Zipf { items = 48; theta = 1.1 }, 0);
      ("zipf_warm", Workloads.Gen.Zipf { items = 96; theta = 0.8 }, 4096);
      ("scan", Workloads.Gen.Scan { items = 512 }, 65536);
    ]

  let requests_per_tenant = 512
  let accesses_per_request = 8

  let run () =
    let cache = Cache.Sassoc.config ~line_size:16 ~size_bytes:4096 ~ways:8 () in
    let page_size = 256 and tlb_entries = 32 in
    let timing = Machine.Timing.default in
    let traces =
      List.mapi
        (fun i (name, stream, base) ->
          ( name,
            base,
            Workloads.Gen.emit ~base ~var:name ~accesses_per_request
              ~seed:(1000 + i)
              ~n:(requests_per_tenant * accesses_per_request)
              stream ))
        tenants
    in
    (* Round-robin the tenants' request windows into one packed trace,
       remembering which window belongs to whom. *)
    let b = Memtrace.Packed.Builder.create () in
    let windows = ref [] in
    for r = 0 to requests_per_tenant - 1 do
      List.iter
        (fun (name, _base, tr) ->
          let start = Memtrace.Packed.Builder.length b in
          let s, e = tr.Workloads.Gen.requests.(r) in
          for i = s to e - 1 do
            Memtrace.Packed.Builder.add b
              (Memtrace.Packed.get tr.Workloads.Gen.packed i)
          done;
          windows := (name, start, Memtrace.Packed.Builder.length b) :: !windows)
        traces
    done;
    let packed = Memtrace.Packed.Builder.build b in
    let windows = Array.of_list (List.rev !windows) in
    let all_requests = Array.map (fun (_, s, e) -> (s, e)) windows in
    let tenant_requests name =
      Array.of_list
        (List.filter_map
           (fun (n, s, e) -> if n = name then Some (s, e) else None)
           (Array.to_list windows))
    in
    let run_machine prep =
      let system =
        Machine.System.create
          (Machine.System.config ~timing ~page_size ~tlb_entries cache)
      in
      prep system;
      Machine.System.run_packed_requests system packed ~requests:all_requests
    in
    let agg_equal (a : Machine.Run_stats.t) (b : Machine.Run_stats.t) =
      a.Machine.Run_stats.cycles = b.Machine.Run_stats.cycles
      && a.Machine.Run_stats.instructions = b.Machine.Run_stats.instructions
      && a.Machine.Run_stats.tlb_misses = b.Machine.Run_stats.tlb_misses
      && a.Machine.Run_stats.cache.Cache.Stats.misses
         = b.Machine.Run_stats.cache.Cache.Stats.misses
      && a.Machine.Run_stats.cache.Cache.Stats.writebacks
         = b.Machine.Run_stats.cache.Cache.Stats.writebacks
      && Machine.Latency.equal a.Machine.Run_stats.requests
           b.Machine.Run_stats.requests
    in
    (* Shared arm: everyone competes for the full mask. *)
    let shared_m = run_machine (fun _ -> ()) in
    let shared_sweep ~requests =
      match Sweep.standard ~requests ~cache ~timing ~page_size ~tlb_entries [ packed ] with
      | Some s -> s
      | None -> assert false
    in
    let shared_sweep_exact = agg_equal shared_m (shared_sweep ~requests:all_requests) in
    (* Partitioned arm: each tenant's region tinted and mapped to the
       columns the greedy MRC allocator hands it (everyone keeps at least
       one column — a tenant with none would have nowhere to cache at
       all). *)
    let _global, per_tag =
      Cache.Stack_dist.per_tag_of_packed ~line_size:cache.Cache.Sassoc.line_size
        ~sets:cache.Cache.Sassoc.sets ~max_ways:cache.Cache.Sassoc.ways packed
    in
    let curves =
      Array.to_list
        (Array.map
           (fun (name, engine) -> (name, Cache.Stack_dist.miss_curve engine))
           per_tag)
    in
    let allocation =
      let alloc =
        ref (Layout.Mrc_alloc.allocate ~columns:cache.Cache.Sassoc.ways curves)
      in
      while List.exists (fun (_, c) -> c = 0) !alloc do
        let donor, _ =
          List.fold_left
            (fun (bn, bc) (n, c) -> if c > bc then (n, c) else (bn, bc))
            ("", min_int) !alloc
        in
        let starved, _ = List.find (fun (_, c) -> c = 0) !alloc in
        alloc :=
          List.map
            (fun (n, c) ->
              if n = donor then (n, c - 1)
              else if n = starved then (n, 1)
              else (n, c))
            !alloc
      done;
      !alloc
    in
    let masks = Layout.Mrc_alloc.to_masks allocation in
    let regions =
      List.map
        (fun (name, base, tr) ->
          (base, tr.Workloads.Gen.limit - base, List.assoc name masks))
        traces
    in
    let part_m =
      run_machine (fun system ->
          let mapping = Machine.System.mapping system in
          List.iter
            (fun (name, base, tr) ->
              let tint = Vm.Tint.make name in
              ignore
                (Vm.Mapping.retint_region mapping ~base
                   ~size:(tr.Workloads.Gen.limit - base) tint);
              Vm.Mapping.remap_tint mapping tint (List.assoc name masks))
            traces)
    in
    let part_sweep ~requests =
      match
        Sweep.masked ~requests ~cache ~timing ~page_size ~tlb_entries ~regions
          [ packed ]
      with
      | Some s -> s
      | None -> assert false
    in
    let partitioned_sweep_exact = agg_equal part_m (part_sweep ~requests:all_requests) in
    (* Per-tenant tails: the same replays re-windowed to one tenant's
       requests. The windows only select which latencies are recorded —
       they cannot change the simulation — so the (already verified exact)
       closed forms price them directly. *)
    let percentiles (l : Machine.Latency.t) =
      (Machine.Latency.p50 l, Machine.Latency.p99 l, Machine.Latency.p999 l)
    in
    let row tenant (shared : Machine.Run_stats.t) (part : Machine.Run_stats.t) =
      let shared_p50, shared_p99, shared_p999 =
        percentiles shared.Machine.Run_stats.requests
      in
      let part_p50, part_p99, part_p999 =
        percentiles part.Machine.Run_stats.requests
      in
      { tenant; shared_p50; shared_p99; shared_p999; part_p50; part_p99;
        part_p999 }
    in
    let rows =
      row "all" shared_m part_m
      :: List.map
           (fun (name, _, _) ->
             let requests = tenant_requests name in
             row name (shared_sweep ~requests) (part_sweep ~requests))
           traces
    in
    {
      rows;
      allocation;
      shared_cycles = shared_m.Machine.Run_stats.cycles;
      partitioned_cycles = part_m.Machine.Run_stats.cycles;
      shared_sweep_exact;
      partitioned_sweep_exact;
    }

  let print ppf t =
    Format.fprintf ppf
      "@[<v>Tail latency under multi-tenant traffic (4 KB, 8 columns, \
       per-request windows)@,";
    Format.fprintf ppf "  %-10s %-22s %s@," "tenant"
      "shared p50/p99/p99.9" "partitioned p50/p99/p99.9";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-10s %6d %6d %6d     %6d %6d %6d@," r.tenant
          r.shared_p50 r.shared_p99 r.shared_p999 r.part_p50 r.part_p99
          r.part_p999)
      t.rows;
    Format.fprintf ppf "  allocation:%a@,"
      (fun ppf -> List.iter (fun (v, c) -> Format.fprintf ppf " %s=%d" v c))
      t.allocation;
    Format.fprintf ppf "  cycles: shared %d, partitioned %d@," t.shared_cycles
      t.partitioned_cycles;
    Format.fprintf ppf "  sweep vs machine: shared %s, partitioned %s@,"
      (if t.shared_sweep_exact then "exact" else "MISMATCH")
      (if t.partitioned_sweep_exact then "exact" else "MISMATCH");
    Format.fprintf ppf "@]@."
end

module Wcet_partition = struct
  type cell = { columns : int; bound : float; observed : int }

  type row = {
    task : string;
    shared : cell;
    equal : cell;
    mrc : cell;
    wcet : cell;
  }

  type t = {
    rows : row list;
    max_bounds : (string * float) list;
    mrc_alloc : (string * int) list;
    wcet_alloc : (string * int) list;
    sound : bool;
  }

  (* Four periodic tasks share a 2 KB, 8-column cache (16 sets of 16-byte
     lines per column). Their worst-case column demands are deliberately
     uneven: [stream] re-walks a two-column array (plus its accumulator's
     line, three lines land in set 0, so its working set only provably
     fits from three columns up); [spiky] walks a one-column hot array
     every period but has a rarely-taken branch over a second array — the
     branch never fires on the profiled run, so its measured miss curve
     flattens after two columns even though its worst case also needs
     three; the two [small] tasks fit inside one column. *)
  let line_size = 16
  let sets = 16
  let total_columns = 8

  let stream_program =
    let open Ir.Build in
    program
      ~vars:[ array "big" ~elems:128 (); scalar "acc" () ]
      [
        proc "main"
          [
            for_ "p" (i 0) (i 7)
              [ for_ "i" (i 0) (i 128) [ set "acc" (s "acc" + ld "big" (r "i")) ] ];
          ];
      ]

  let spiky_program =
    let open Ir.Build in
    program
      ~vars:[ array "hot" ~elems:64 (); array "rare" ~elems:64 (); scalar "acc" () ]
      [
        proc "main"
          [
            for_ "p" (i 0) (i 7)
              [
                for_ "i" (i 0) (i 64) [ set "acc" (s "acc" + ld "hot" (r "i")) ];
                (* Never true on the zero-initialised profiled run, yet the
                   worst case must budget for it. *)
                if_
                  (lt ~prob:0.05 (s "acc") (i 0))
                  [
                    for_ "i" (i 0) (i 64)
                      [ set "acc" (s "acc" + ld "rare" (r "i")) ];
                  ];
              ];
          ];
      ]

  let small_program ~elems ~passes =
    let open Ir.Build in
    program
      ~vars:[ array "buf" ~elems (); scalar "acc" () ]
      [
        proc "main"
          [
            for_ "p" (i 0) (i passes)
              [ for_ "i" (i 0) (i elems) [ set "acc" (s "acc" + ld "buf" (r "i")) ] ];
          ];
      ]

  let tasks =
    [
      ("stream", stream_program);
      ("spiky", spiky_program);
      ("small_a", small_program ~elems:32 ~passes:5);
      ("small_b", small_program ~elems:48 ~passes:4);
    ]

  let analyze_at ~ways p =
    Ir.Cache_analysis.analyze
      { Ir.Cache_analysis.line_size; sets; ways }
      p ~proc:"main"

  (* curve.(c) = the task's proven worst-case miss bound when it owns [c]
     exclusive columns; [infinity] when nothing can be proven. *)
  let bound_curve p =
    Array.init (total_columns + 1) (fun c ->
        match (analyze_at ~ways:c p).Ir.Cache_analysis.wcet_misses with
        | Some b -> float_of_int b
        | None -> infinity)

  let trace_of p =
    Ir.Interp.trace_of p ~proc:"main"
      ~layout:(Ir.Interp.sequential_layout p)

  (* Exclusive columns make a task's share an isolated LRU cache with the
     same set count, so the per-task observed misses come from replaying
     its own trace through exactly that. *)
  let observed_isolated trace ~columns =
    let cache =
      Cache.Sassoc.create
        (Cache.Sassoc.config ~line_size
           ~size_bytes:(line_size * sets * columns)
           ~ways:columns ())
    in
    Cache.Sassoc.access_trace cache trace;
    (Cache.Sassoc.stats cache).Cache.Stats.misses

  let run () =
    let traces = List.map (fun (name, p) -> (name, trace_of p)) tasks in
    let curves = List.map (fun (name, p) -> (name, bound_curve p)) tasks in
    let accesses =
      List.map (fun (name, tr) -> (name, Memtrace.Trace.length tr)) traces
    in
    (* Shared arm: round-robin the tasks' traces (each shifted into its own
       address region) through one full 8-way cache; sharing voids every
       isolation argument, so the only sound per-task bound left is its
       access count. *)
    let region = 65536 in
    let shared_observed =
      let shifted =
        List.mapi
          (fun idx (name, tr) ->
            (name, idx * region, Memtrace.Trace.raw (Memtrace.Trace.shift tr ~offset:(idx * region))))
          traces
      in
      let cache =
        Cache.Sassoc.create
          (Cache.Sassoc.config ~line_size
             ~size_bytes:(line_size * sets * total_columns)
             ~ways:total_columns ())
      in
      let misses = Hashtbl.create 4 in
      let chunk = 32 in
      let pos = ref 0 and live = ref true in
      while !live do
        live := false;
        List.iter
          (fun (name, _base, arr) ->
            let stop = min (Array.length arr) (!pos + chunk) in
            if !pos < Array.length arr then live := true;
            for k = !pos to stop - 1 do
              match Cache.Sassoc.access_record cache arr.(k) with
              | Cache.Sassoc.Hit _ -> ()
              | Cache.Sassoc.Miss _ ->
                  Hashtbl.replace misses name
                    (1 + Option.value (Hashtbl.find_opt misses name) ~default:0)
            done)
          shifted;
        pos := !pos + chunk
      done;
      fun name -> Option.value (Hashtbl.find_opt misses name) ~default:0
    in
    (* MRC arm: measured miss curves from the profiled traces (the rare
       branch never fires), greedily allocated, everyone keeps a column. *)
    let mrc_alloc =
      let miss_curves =
        List.map
          (fun (name, tr) ->
            let sd =
              Cache.Stack_dist.create ~line_size ~sets
                ~max_ways:total_columns ()
            in
            Memtrace.Trace.iter
              (fun a ->
                Cache.Stack_dist.access sd ~kind:a.Memtrace.Access.kind
                  a.Memtrace.Access.addr)
              tr;
            (name, Cache.Stack_dist.miss_curve sd))
          traces
      in
      let alloc =
        ref (Layout.Mrc_alloc.allocate ~columns:total_columns miss_curves)
      in
      (* Same guard as the tail-latency figure: a task handed zero columns
         would have nowhere to cache at all. *)
      while List.exists (fun (_, c) -> c = 0) !alloc do
        let donor, _ =
          List.fold_left
            (fun (bn, bc) (n, c) -> if c > bc then (n, c) else (bn, bc))
            ("", min_int) !alloc
        in
        let starved, _ = List.find (fun (_, c) -> c = 0) !alloc in
        alloc :=
          List.map
            (fun (n, c) ->
              if n = donor then (n, c - 1)
              else if n = starved then (n, 1)
              else (n, c))
            !alloc
      done;
      !alloc
    in
    (* WCET arm: minimize the largest statically proven bound. *)
    let wcet_alloc =
      Layout.Wcet_alloc.allocate ~columns:total_columns curves
    in
    let equal_alloc =
      List.map (fun (name, _) -> (name, total_columns / List.length tasks)) tasks
    in
    let cell_of name alloc =
      let columns = List.assoc name alloc in
      let bound = (List.assoc name curves).(columns) in
      let observed = observed_isolated (List.assoc name traces) ~columns in
      { columns; bound; observed }
    in
    let rows =
      List.map
        (fun (name, _) ->
          {
            task = name;
            shared =
              {
                columns = total_columns;
                bound = float_of_int (List.assoc name accesses);
                observed = shared_observed name;
              };
            equal = cell_of name equal_alloc;
            mrc = cell_of name mrc_alloc;
            wcet = cell_of name wcet_alloc;
          })
        tasks
    in
    let max_over get =
      List.fold_left (fun acc r -> Float.max acc (get r).bound) neg_infinity rows
    in
    let max_bounds =
      [
        ("shared", max_over (fun r -> r.shared));
        ("equal", max_over (fun r -> r.equal));
        ("mrc", max_over (fun r -> r.mrc));
        ("wcet", max_over (fun r -> r.wcet));
      ]
    in
    let sound =
      List.for_all
        (fun r ->
          List.for_all
            (fun c -> Float.of_int c.observed <= c.bound)
            [ r.shared; r.equal; r.mrc; r.wcet ])
        rows
    in
    { rows; max_bounds; mrc_alloc; wcet_alloc; sound }

  let pp_bound ppf b =
    if Float.is_finite b then Format.fprintf ppf "%.0f" b
    else Format.pp_print_string ppf "unbounded"

  let print ppf t =
    Format.fprintf ppf
      "@[<v>WCET-aware partitioning (2 KB, 8 columns; static bound vs \
       observed misses)@,";
    Format.fprintf ppf "  %-10s %-20s %-16s %-16s %s@," "task"
      "shared bound/obs" "equal bd/obs" "mrc bd/obs" "wcet bd/obs";
    List.iter
      (fun r ->
        let cell ppf c =
          Format.fprintf ppf "%dc %a/%d" c.columns pp_bound c.bound c.observed
        in
        Format.fprintf ppf "  %-10s %-20s %-16s %-16s %a@," r.task
          (Format.asprintf "%a" cell r.shared)
          (Format.asprintf "%a" cell r.equal)
          (Format.asprintf "%a" cell r.mrc)
          cell r.wcet)
      t.rows;
    Format.fprintf ppf "  max per-task bound:%a@,"
      (fun ppf ->
        List.iter (fun (c, b) -> Format.fprintf ppf " %s=%a" c pp_bound b))
      t.max_bounds;
    Format.fprintf ppf "  bounds sound vs replay: %s@,"
      (if t.sound then "yes" else "NO");
    Format.fprintf ppf "@]@."
end

module Multitask_domains = struct
  type row = {
    job : string;
    accesses : int;
    blocking_cycles : int;
    event_cycles : int;
    mshr_merges : int;
    dram_row_hits : int;
  }

  type t = {
    rows : row list;
    blocking_makespan : int;
    event_makespan : int;
    epochs : int;
    jobs : int;
    identical_across_jobs : bool;
  }

  (* Three LZ77 jobs with disjoint address spaces; each owns an exclusive
     slice of a shared 8-column, 8 KB cache. Because column partitions
     never overlap and the address spaces are disjoint, a private system
     per task with exactly its columns replays the shared machine
     bit-for-bit — which is what lets each task run on its own domain. *)
  let tasks =
    [ ("A", 1, 0x000000, 4); ("B", 2, 0x100000, 2); ("C", 3, 0x200000, 2) ]

  let task_count = List.length tasks

  let job_of (name, seed, base, _cols) =
    {
      Sched.Epoch.name;
      packed =
        Memtrace.Packed.of_trace
          (Workloads.Lz77.trace ~seed ~input_len:4096 ~base ());
    }

  let make_system (job : Sched.Epoch.job) =
    let _, _, _, cols =
      List.find (fun (n, _, _, _) -> n = job.Sched.Epoch.name) tasks
    in
    let cache =
      Cache.Sassoc.config ~line_size:16 ~size_bytes:(cols * 1024) ~ways:cols ()
    in
    Machine.System.create (Machine.System.config ~page_size:1024 cache)

  let event_config =
    Machine.Event.config ~mlp:4
      ~dram:(Machine.Dram.config ~banks:4 ~row_bytes:1024 ~queue_depth:8 ())
      ()

  let run ?(jobs = 1) () =
    let job_list = List.map job_of tasks in
    let replay ~jobs ?events () =
      Sched.Epoch.run ~jobs ?events ~make_system job_list
    in
    let blocking = replay ~jobs () in
    let event = replay ~jobs ~events:event_config () in
    (* The scheduler's contract is that the worker-domain count is
       invisible in the outcome; probe it by replaying serially and
       comparing the whole structure (all counters and the timeline). *)
    let identical_across_jobs =
      jobs = 1
      || blocking = replay ~jobs:1 ()
         && event = replay ~jobs:1 ~events:event_config ()
    in
    let rows =
      List.map
        (fun (b : Sched.Epoch.job_stats) ->
          let e =
            match Sched.Epoch.find_job event b.job with
            | Some e -> e
            | None -> assert false
          in
          {
            job = b.job;
            accesses = b.stats.Machine.Run_stats.memory_accesses;
            blocking_cycles = b.stats.Machine.Run_stats.cycles;
            event_cycles = e.stats.Machine.Run_stats.cycles;
            mshr_merges = e.stats.Machine.Run_stats.mshr_merges;
            dram_row_hits = e.stats.Machine.Run_stats.dram_row_hits;
          })
        blocking.Sched.Epoch.per_job
    in
    {
      rows;
      blocking_makespan = blocking.Sched.Epoch.makespan;
      event_makespan = event.Sched.Epoch.makespan;
      epochs = event.Sched.Epoch.epochs;
      jobs;
      identical_across_jobs;
    }

  let print ppf t =
    Format.fprintf ppf
      "@[<v>Multitask replay on worker domains (%d LZ77 jobs, exclusive \
       column partitions)@,"
      (List.length t.rows);
    Format.fprintf ppf "  %-6s %-10s %-10s %-10s %-8s %s@," "job" "accesses"
      "blocking" "event" "merges" "row-hits";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-6s %-10d %-10d %-10d %-8d %d@," r.job
          r.accesses r.blocking_cycles r.event_cycles r.mshr_merges
          r.dram_row_hits)
      t.rows;
    Format.fprintf ppf "  gang makespan: blocking %d, event %d (%d epochs)@,"
      t.blocking_makespan t.event_makespan t.epochs;
    Format.fprintf ppf "  outcome identical to serial replay: %s@,"
      (if t.identical_across_jobs then "yes" else "NO");
    Format.fprintf ppf "@]@."
end

module Mrc_scaling = struct
  type row = {
    jobs : int;
    shard_accesses : int list;  (* engine accesses per worker domain *)
    identical : bool;  (* merged curve = serial curve, byte for byte *)
  }

  type t = { rows : row list; total_accesses : int }

  let line_size = 16
  let sets = 64
  let max_ways = 8

  let packed =
    lazy
      (Memtrace.Packed.of_trace
         (Workloads.Lz77.trace ~seed:11 ~input_len:8192 () ~base:0))

  let run ?(jobs_list = [ 1; 2; 4 ]) () =
    let p = Lazy.force packed in
    let serial =
      let e = Cache.Stack_dist.create ~line_size ~sets ~max_ways () in
      Cache.Stack_dist.access_packed e p;
      e
    in
    let serial_curve = Cache.Stack_dist.miss_curve serial in
    let rows =
      List.map
        (fun jobs ->
          let per_shard = Array.make jobs 0 in
          let merged =
            Cache.Stack_dist.of_packed_parallel
              ~on_shard:(fun ~shard ~accesses ->
                per_shard.(shard) <- accesses)
              ~jobs ~line_size ~sets ~max_ways p
          in
          {
            jobs;
            shard_accesses = Array.to_list per_shard;
            identical =
              Cache.Stack_dist.miss_curve merged = serial_curve
              && Cache.Stack_dist.accesses merged
                 = Cache.Stack_dist.accesses serial;
          })
        jobs_list
    in
    { rows; total_accesses = Cache.Stack_dist.accesses serial }

  let print ppf t =
    Format.fprintf ppf
      "@[<v>Set-sharded parallel MRC scaling (LZ77 trace, %d engine \
       accesses, %d sets)@,"
      t.total_accesses sets;
    Format.fprintf ppf "  %-5s %-30s %-10s %s@," "jobs" "per-domain accesses"
      "max/dom" "identical";
    List.iter
      (fun r ->
        let cells =
          String.concat " " (List.map string_of_int r.shard_accesses)
        in
        Format.fprintf ppf "  %-5d %-30s %-10d %s@," r.jobs cells
          (List.fold_left max 0 r.shard_accesses)
          (if r.identical then "yes" else "NO"))
      t.rows;
    Format.fprintf ppf "@]@."
end

module Windowed_mrc = struct
  (* Two tenants swap working-set sizes at a phase boundary. A static
     allocation from whole-trace miss curves must average the phases; the
     incremental windowed controller re-reads its rolling curves and flips
     the split, hitting in both phases. Per-(tenant, phase) misses are read
     off fresh exact per-phase curves — exact for the isolated LRU groups
     {!Layout.Mrc_alloc.to_masks} realizes — so both policies are scored on
     the same footing. *)
  type phase_row = {
    phase : string;
    static_alloc : (string * int) list;
    windowed_alloc : (string * int) list;
    static_misses : int;
    windowed_misses : int;
  }

  type t = {
    rows : phase_row list;
    static_total : int;
    windowed_total : int;
    retired : (string * int) list;
    windowed_wins : bool;
  }

  let line_size = 16
  let sets = 32
  let columns = 8
  let window = 1024
  let epochs = 8
  let phase_accesses = 4096

  let tenants = [ "A"; "B" ]
  let base_of = function "A" -> 0x00000 | _ -> 0x40000

  let phases =
    [
      ("phase1", [ ("A", 7); ("B", 2) ]); ("phase2", [ ("A", 2); ("B", 7) ]);
    ]

  (* The phase's accesses as (tenant, addr), tenants interleaved
     access-by-access like a shared front end would see them. Each tenant
     draws uniformly over [cols] columns' worth of lines (the small working
     set is a prefix of the large one): a stationary independent-reference
     stream, whose miss curve falls smoothly from 1 way up to [cols] — so
     the greedy allocator's marginal gains are informative at every count,
     and a rolling window anywhere in the phase sees the same curve. *)
  let phase_trace idx plan =
    let streams =
      List.map
        (fun (t, cols) ->
          ( t,
            cols,
            Workloads.Prng.create
              ~seed:(0x5eed + (31 * idx) + Char.code t.[0]) ))
        plan
    in
    let acc = ref [] in
    for _ = 1 to phase_accesses do
      List.iter
        (fun (t, cols, rng) ->
          let line = Workloads.Prng.int rng (cols * sets) in
          acc := (t, base_of t + (line * line_size)) :: !acc)
        streams
    done;
    List.rev !acc

  let curve_of accs tenant =
    let e = Cache.Stack_dist.create ~line_size ~sets ~max_ways:columns () in
    List.iter
      (fun (t, a) ->
        if t = tenant then
          Cache.Stack_dist.access e ~kind:Memtrace.Access.Read a)
      accs;
    Cache.Stack_dist.miss_curve e

  let misses_at curve alloc tenant =
    match List.assoc_opt tenant alloc with
    | Some c -> curve.(min c (Array.length curve - 1))
    | None -> assert false

  let run () =
    let traces =
      List.mapi (fun idx (_, plan) -> phase_trace idx plan) phases
    in
    let whole = List.concat traces in
    (* Static: one allocation from the whole-trace per-tenant curves. *)
    let static_alloc =
      Layout.Mrc_alloc.allocate ~columns
        (List.map (fun t -> (t, curve_of whole t)) tenants)
    in
    (* Windowed: feed each phase, then read the controller's split. The
       fold keeps feeding and allocating strictly in phase order. *)
    let inc =
      Layout.Mrc_alloc.Incremental.create ~window ~epochs ~line_size ~sets
        ~max_ways:columns ~columns tenants
    in
    let rows =
      List.rev
        (List.fold_left2
           (fun rows (phase, _) accs ->
             List.iter
               (fun (tenant, addr) ->
                 Layout.Mrc_alloc.Incremental.observe inc ~tenant
                   ~kind:Memtrace.Access.Read addr)
               accs;
             let windowed_alloc =
               Layout.Mrc_alloc.Incremental.allocate_now inc
             in
             let curves = List.map (fun t -> (t, curve_of accs t)) tenants in
             let total alloc =
               List.fold_left
                 (fun sum (t, curve) -> sum + misses_at curve alloc t)
                 0 curves
             in
             {
               phase;
               static_alloc;
               windowed_alloc;
               static_misses = total static_alloc;
               windowed_misses = total windowed_alloc;
             }
             :: rows)
           [] phases traces)
    in
    let static_total =
      List.fold_left (fun a r -> a + r.static_misses) 0 rows
    in
    let windowed_total =
      List.fold_left (fun a r -> a + r.windowed_misses) 0 rows
    in
    {
      rows;
      static_total;
      windowed_total;
      retired =
        List.map
          (fun t ->
            (t, Layout.Mrc_alloc.Incremental.retired_epochs inc ~tenant:t))
          tenants;
      windowed_wins = windowed_total < static_total;
    }

  let pp_alloc ppf alloc =
    List.iter (fun (t, c) -> Format.fprintf ppf "%s:%d " t c) alloc

  let print ppf t =
    Format.fprintf ppf
      "@[<v>Incremental windowed re-allocation vs static whole-trace MRCs \
       (window %d, %d epochs)@,"
      window epochs;
    Format.fprintf ppf "  %-8s %-14s %-14s %-10s %s@," "phase" "static"
      "windowed" "st-miss" "win-miss";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-8s %-14s %-14s %-10d %d@," r.phase
          (Format.asprintf "%a" pp_alloc r.static_alloc)
          (Format.asprintf "%a" pp_alloc r.windowed_alloc)
          r.static_misses r.windowed_misses)
      t.rows;
    Format.fprintf ppf "  totals: static %d, windowed %d — windowed wins: %s@,"
      t.static_total t.windowed_total
      (if t.windowed_wins then "yes" else "NO");
    List.iter
      (fun (tenant, n) ->
        Format.fprintf ppf "  tenant %s retired %d whole epochs@," tenant n)
      t.retired;
    Format.fprintf ppf "@]@."
end

(* Every experiment above is self-contained — each [run] builds its own
   pipelines, systems and caches, and no library module keeps toplevel mutable
   state — so the tasks can execute on separate domains. Each task renders its
   figure to a string with [Format.asprintf]; the serial path renders through
   the exact same strings, so for any [jobs] the bytes written to [ppf] are
   identical by construction (EXPERIMENTS.md relies on this). *)
let all_tasks : (unit -> string) list =
  let render print run () = Format.asprintf "%a" print (run ()) in
  [
    render Fig3.print (fun () -> Fig3.run ());
    render Fig4_routines.print (fun () -> Fig4_routines.run ());
    render Fig4_combined.print (fun () -> Fig4_combined.run ());
    render Fig5.print (fun () -> Fig5.run ());
    render Ablation_policy.print Ablation_policy.run;
    render Ablation_columns.print (fun () -> Ablation_columns.run ());
    render Ablation_weights.print Ablation_weights.run;
    render Ablation_grouping.print Ablation_grouping.run;
    render Mrc_layout.print Mrc_layout.run;
    render Ablation_page_coloring.print Ablation_page_coloring.run;
    render Ablation_l2.print Ablation_l2.run;
    render Ablation_prefetch.print Ablation_prefetch.run;
    render Ablation_tlb.print (fun () -> Ablation_tlb.run ());
    render Ablation_optimizer.print Ablation_optimizer.run;
    render Generality.print Generality.run;
    render Tail_latency.print Tail_latency.run;
    render Wcet_partition.print Wcet_partition.run;
    render Multitask_domains.print (fun () -> Multitask_domains.run ());
    render Mrc_scaling.print (fun () -> Mrc_scaling.run ());
    render Windowed_mrc.print Windowed_mrc.run;
  ]

let run_all ?(jobs = 1) ppf =
  if jobs < 1 then invalid_arg "Experiments.run_all: jobs must be >= 1";
  let tasks = Array.of_list all_tasks in
  let results = Array.make (Array.length tasks) "" in
  if jobs = 1 then Array.iteri (fun i task -> results.(i) <- task ()) tasks
  else begin
    (* Work-stealing over an atomic counter: domains grab the next undone
       task index until none remain. Results land in [results] slots, so
       completion order cannot affect output order. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length tasks then begin
          results.(i) <- tasks.(i) ();
          loop ()
        end
      in
      loop ()
    in
    let spawned = min jobs (Array.length tasks) - 1 in
    let domains = List.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  Array.iter (Format.pp_print_string ppf) results
