(** Closed-form experiment points via stack distances.

    The sweep-shaped experiments evaluate many cache configurations over the
    same traces. When the L1 is a true LRU column cache with no L2 and no
    stream prefetching, a whole configuration point is computable without a
    machine replay:

    - the cache side comes from {!Cache.Stack_dist} engines — one per group
      of columns that traffic is confined to, each an isolated LRU cache
      with the full set count and [popcount mask] ways;
    - the TLB side is replayed exactly (it is virtually indexed, so it is
      independent of the cache geometry and of physical frame placement),
      with scratchpad and uncached references bypassing it as the machine
      does;
    - cycles then follow arithmetically from the default timing model:
      every access costs its gap, resolved accesses cost [hit_cycles] plus
      the penalties of their misses, writebacks and TLB misses, and
      scratchpad/uncached accesses cost their flat latencies.

    Both evaluators return [None] — caller falls back to exact
    {!Machine.System.run_packed} replay — for anything the algebra cannot
    express: non-LRU policies, miss classification, traffic whose column
    mask overlaps another group's (it would not be an isolated LRU cache),
    or pages shared between placements. The equality with exact replay is
    pinned by the [core.sweep] tests field-for-field (the three-C and
    per-way fill counters are reported as zeros; nothing in the sweeps
    consumes them). *)

val standard :
  ?translate:(int -> int) ->
  ?requests:(int * int) array ->
  cache:Cache.Sassoc.config ->
  timing:Machine.Timing.t ->
  page_size:int ->
  tlb_entries:int ->
  Memtrace.Packed.t list ->
  Machine.Run_stats.t option
(** The unmapped baseline: every access resolves through the TLB and the
    full-mask cache. Equals replaying the packed traces back to back on one
    fresh no-L2 system. [translate] is a physical frame placement (page
    coloring); it reindexes the cache but not the TLB. [None] unless the
    policy is LRU without classification.

    [requests] are [(start, stop)] access-index spans over the concatenation
    of the packed traces (sorted, disjoint); when given, the result's
    [requests] field carries the per-request latency distribution, equal to
    what {!Machine.System.run_packed_requests} reports for the same spans —
    per-access miss and writeback outcomes come from
    {!Cache.Stack_dist.access_traced}, so the distribution is exact, not
    estimated. Raises [Invalid_argument] on malformed spans. *)

val partitioned :
  ?requests:(int * int) array ->
  cache:Cache.Sassoc.config ->
  timing:Machine.Timing.t ->
  page_size:int ->
  tlb_entries:int ->
  part:Layout.Partition.t ->
  copy_in:string list ->
  Memtrace.Packed.t list ->
  Machine.Run_stats.t option
(** One scratchpad/cache split point: equals [Partition.apply ~copy_in] on a
    fresh system followed by replaying the packed traces back to back.
    Scratchpad placements are preloaded into their pinned columns, which no
    other traffic enters, so every in-range access to them is a guaranteed
    cache hit (resolved through the TLB like any other access — the machine
    registers no scratchpad region for pins); only the TLB outcome and the
    copy-in charge {!Layout.Partition.apply} would issue remain to account.
    Cached placements become one engine per distinct column mask. [None]
    when a group's columns overlap another's, when an access lands on a
    page no placement claims (default-tint traffic shares columns with
    every group), when an access hits a scratchpad-tinted page outside the
    pinned byte range, or for non-LRU/classifying caches. [requests] as in
    {!standard}; the setup (copy-in) charge counts toward total cycles but
    toward no request, matching the machine's pending-setup accounting. *)

val standard_sampled :
  ?translate:(int -> int) ->
  ?seed:int ->
  ?min_sets:int ->
  ?budget:int ->
  rate:float ->
  cache:Cache.Sassoc.config ->
  timing:Machine.Timing.t ->
  page_size:int ->
  tlb_entries:int ->
  Memtrace.Packed.t list ->
  float option
(** Sampled estimate of {!standard}'s cycle count: the same routing loop and
    exact TLB replay, but the cache side is a SHARDS-style
    {!Cache.Stack_dist.Sampled} engine at [rate], so only accesses landing
    in its selected sets cost engine work. The result is the closed-form
    cycle count with the exact miss and writeback totals replaced by their
    scaled estimates. [seed]/[min_sets]/[budget] as in
    {!Cache.Stack_dist.Sampled.create}. [None] under the same conditions as
    {!standard}. At [rate = 1.0] the estimate equals the exact cycle count
    (as a float). *)

val partitioned_sampled :
  ?seed:int ->
  ?min_sets:int ->
  ?budget:int ->
  rate:float ->
  cache:Cache.Sassoc.config ->
  timing:Machine.Timing.t ->
  page_size:int ->
  tlb_entries:int ->
  part:Layout.Partition.t ->
  copy_in:string list ->
  Memtrace.Packed.t list ->
  float option
(** Sampled estimate of {!partitioned}'s cycle count: the identical partition
    decomposition (so [None] exactly when {!partitioned} is [None]), with
    one {!Cache.Stack_dist.Sampled} engine per column group. Useful for
    ranking many split points cheaply before replaying the winner exactly —
    see {!Pipeline.best_split}. *)

val standard_parallel :
  ?translate:(int -> int) ->
  ?on_shard:(shard:int -> accesses:int -> unit) ->
  jobs:int ->
  cache:Cache.Sassoc.config ->
  timing:Machine.Timing.t ->
  page_size:int ->
  tlb_entries:int ->
  Memtrace.Packed.t list ->
  Machine.Run_stats.t option
(** {!standard} evaluated with the Mattson pass sharded over [jobs] worker
    domains. LRU stack distances are exactly independent per cache set, so
    each worker owns the sets with [set mod jobs = shard], runs a
    full-geometry engine over only that shard of the trace, and the shards
    merge by pure addition of disjoint per-set counters
    ({!Cache.Stack_dist.merge_into}); the TLB side is replayed serially
    (its state depends on the global access order, but costs no engine
    work). The result is byte-identical to {!standard} for every [jobs].
    Per-request latency is inherently serial-interleaved, so there is no
    [?requests] — exactly like {!standard_sampled}. [on_shard] reports each
    shard's engine-access count after its pass (merge order; for scaling
    accounting). Raises [Invalid_argument] when [jobs < 1] or
    [jobs > cache.sets]. *)

val partitioned_parallel :
  ?on_shard:(shard:int -> accesses:int -> unit) ->
  jobs:int ->
  cache:Cache.Sassoc.config ->
  timing:Machine.Timing.t ->
  page_size:int ->
  tlb_entries:int ->
  part:Layout.Partition.t ->
  copy_in:string list ->
  Memtrace.Packed.t list ->
  Machine.Run_stats.t option
(** {!partitioned} with the per-group Mattson passes sharded over [jobs]
    worker domains, byte-identical to {!partitioned} for every [jobs] (in
    particular, [None] exactly when it is [None]). The serial pass performs
    the full feasibility validation (unclaimed pages, scratchpad byte
    ranges) and the TLB replay; workers only feed group engines, filtered
    by set shard. [on_shard] and the [jobs] validation as in
    {!standard_parallel}. *)

val standard_sampled_parallel :
  ?translate:(int -> int) ->
  ?seed:int ->
  ?min_sets:int ->
  jobs:int ->
  rate:float ->
  cache:Cache.Sassoc.config ->
  timing:Machine.Timing.t ->
  page_size:int ->
  tlb_entries:int ->
  Memtrace.Packed.t list ->
  float option
(** {!standard_sampled} sharded over [jobs] worker domains, byte-identical
    to the serial estimate for every [jobs]: SHARDS set selection is a
    per-set property, so it composes with sharding — each worker's engine
    selects the same sets from the same [seed] and touches only those it
    owns, and {!Cache.Stack_dist.Sampled.merge_into} adds the disjoint
    readings. There is no [?budget]: fixed-budget eviction is globally
    order-dependent and cannot shard (the engine-level sharded feeds reject
    it). [jobs] validation as in {!standard_parallel}. *)

val masked :
  ?requests:(int * int) array ->
  cache:Cache.Sassoc.config ->
  timing:Machine.Timing.t ->
  page_size:int ->
  tlb_entries:int ->
  regions:(int * int * Cache.Bitmask.t) list ->
  Memtrace.Packed.t list ->
  Machine.Run_stats.t option
(** Column isolation without a {!Layout.Partition}: each [(base, size,
    mask)] region confines its pages' traffic to the columns of [mask] —
    the closed form of retinting a region and mapping its tint to [mask] on
    a fresh system (see [Vm.Mapping.retint_region] / [remap_tint]). Regions
    sharing a mask share one engine; [None] when masks overlap, a page is
    claimed by two groups, or an access lands on an unclaimed page.
    [requests] as in {!standard}. *)
