type row = {
  name : string;
  ns_per_run : float;
  accesses_per_sec : float;
  sample_error : float option;
}

(* --- writer ------------------------------------------------------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string x =
  if not (Float.is_finite x) then
    invalid_arg "Bench_json: non-finite number has no JSON rendering";
  (* %.17g round-trips every float; strip no digits for the sake of it. *)
  let s = Printf.sprintf "%.17g" x in
  (* "1e+08" is a valid JSON number, "1." is not; %g never emits the latter. *)
  s

let to_string rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  { \"name\": \"%s\", \"ns_per_run\": %s, \"accesses_per_sec\": %s%s }"
           (escape_string r.name)
           (number_to_string r.ns_per_run)
           (number_to_string r.accesses_per_sec)
           (match r.sample_error with
           | None -> ""
           | Some e ->
               Printf.sprintf ", \"sample_error\": %s" (number_to_string e))))
    rows;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(* --- parser ------------------------------------------------------------- *)

(* Recursive descent over the one shape we emit: an array of flat objects
   with string or number values. Anything else is a schema violation and
   fails loudly — CI uses this as the schema check. *)

type state = { text : string; mutable pos : int }

let fail st msg =
  invalid_arg (Printf.sprintf "Bench_json.of_string: %s at offset %d" msg st.pos)

let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.text
    && match st.text.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> fail st (Printf.sprintf "expected %C, found %C" c c')
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1; loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1; loop ()
        | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1; loop ()
        | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1; loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1; loop ()
        | Some '/' -> Buffer.add_char buf '/'; st.pos <- st.pos + 1; loop ()
        | Some 'u' ->
            if st.pos + 4 >= String.length st.text then
              fail st "truncated \\u escape";
            let hex = String.sub st.text (st.pos + 1) 4 in
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail st (Printf.sprintf "bad \\u escape %S" hex)
            in
            (* benchmark names are ASCII; reject anything else rather than
               carrying a UTF-8 encoder around *)
            if code > 0x7f then fail st "non-ASCII \\u escape unsupported";
            Buffer.add_char buf (Char.chr code);
            st.pos <- st.pos + 5;
            loop ()
        | _ -> fail st "unknown escape")
    | Some c -> Buffer.add_char buf c; st.pos <- st.pos + 1; loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  skip_ws st;
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.text && is_num_char st.text.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected a number";
  let s = String.sub st.text start (st.pos - start) in
  match float_of_string_opt s with
  | Some x -> x
  | None -> fail st (Printf.sprintf "malformed number %S" s)

let parse_field st =
  let key = parse_string st in
  expect st ':';
  skip_ws st;
  let value =
    match peek st with
    | Some '"' -> `String (parse_string st)
    | Some ('-' | '0' .. '9') -> `Number (parse_number st)
    | _ -> fail st (Printf.sprintf "field %S: expected string or number" key)
  in
  (key, value)

let parse_row st =
  expect st '{';
  let fields = ref [] in
  skip_ws st;
  (match peek st with
  | Some '}' -> st.pos <- st.pos + 1
  | _ ->
      let rec loop () =
        skip_ws st;
        fields := parse_field st :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; loop ()
        | Some '}' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or '}' in object"
      in
      loop ());
  let fields = !fields in
  let get key =
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> fail st (Printf.sprintf "missing field %S" key)
  in
  let num key =
    match get key with
    | `Number x -> x
    | `String _ -> fail st (Printf.sprintf "field %S must be a number" key)
  in
  let str key =
    match get key with
    | `String s -> s
    | `Number _ -> fail st (Printf.sprintf "field %S must be a string" key)
  in
  List.iter
    (fun (key, _) ->
      match key with
      | "name" | "ns_per_run" | "accesses_per_sec" | "sample_error" -> ()
      | other -> fail st (Printf.sprintf "unknown field %S" other))
    fields;
  {
    name = str "name";
    ns_per_run = num "ns_per_run";
    accesses_per_sec = num "accesses_per_sec";
    sample_error =
      (match List.assoc_opt "sample_error" fields with
      | None -> None
      | Some _ -> Some (num "sample_error"));
  }

let of_string text =
  let st = { text; pos = 0 } in
  expect st '[';
  let rows = ref [] in
  skip_ws st;
  (match peek st with
  | Some ']' -> st.pos <- st.pos + 1
  | _ ->
      let rec loop () =
        skip_ws st;
        rows := parse_row st :: !rows;
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; loop ()
        | Some ']' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or ']' in array"
      in
      loop ());
  skip_ws st;
  if st.pos <> String.length text then fail st "trailing garbage after array";
  List.rev !rows

(* --- files -------------------------------------------------------------- *)

let write ~path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string rows))

let read ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* --- regression compare ------------------------------------------------- *)

type regression = {
  bench : string;
  baseline_ns : float;
  current_ns : float;
  slowdown_pct : float;
}

let regressions ~baseline ~current ~max_pct =
  List.filter_map
    (fun cur ->
      match List.find_opt (fun b -> b.name = cur.name) baseline with
      | None -> None
      | Some base when base.ns_per_run <= 0. -> None
      | Some base ->
          let slowdown_pct =
            (cur.ns_per_run -. base.ns_per_run) /. base.ns_per_run *. 100.
          in
          if slowdown_pct > max_pct then
            Some
              {
                bench = cur.name;
                baseline_ns = base.ns_per_run;
                current_ns = cur.ns_per_run;
                slowdown_pct;
              }
          else None)
    current

let pp_regression ppf r =
  Format.fprintf ppf "%s: %.0f ns/run -> %.0f ns/run (%+.1f%%)" r.bench
    r.baseline_ns r.current_ns r.slowdown_pct
