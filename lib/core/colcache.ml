(** Column caching: application-specific memory management for embedded
    systems using software-controlled caches.

    Reproduction of Chiou, Jain, Devadas & Rudolph (DAC 2000). Start with
    {!Pipeline} for the end-to-end flow; the substrate libraries are
    re-exported here for convenience. *)

module Memtrace = Memtrace
module Cache = Cache
module Vm = Vm
module Machine = Machine
module Profile = Profile
module Ir = Ir
module Coloring = Coloring
module Layout = Layout
module Workloads = Workloads
module Sched = Sched
module Pipeline = Pipeline
module Sweep = Sweep
module Experiments = Experiments
module Csv_export = Csv_export
module Bench_json = Bench_json
