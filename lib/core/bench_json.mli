(** Benchmark results as JSON, for the regression harness.

    The bench executable emits one row per micro-benchmark; CI re-runs the
    benches and compares against the committed baseline ([BENCH_PR2.json]).
    The format is a JSON array of flat objects:

    {v
    [
      { "name": "colcache/hot_access_trace",
        "ns_per_run": 3278515.2,
        "accesses_per_sec": 99262794.0 },
      ...
    ]
    v}

    No JSON library is vendored, so both the writer and the (deliberately
    minimal) parser live here; the parser accepts exactly the shape above —
    an array of objects whose fields are strings or numbers — which keeps it
    honest as a schema validator for the CI smoke test. *)

type row = {
  name : string;
  ns_per_run : float;
  accesses_per_sec : float;
      (** accesses replayed per second, when the benchmark is a trace replay
          with a known access count; 0 for benchmarks without one. *)
  sample_error : float option;
      (** for sampled-estimator benchmarks, the observed mean absolute
          miss-ratio error against the exact curve on the same trace —
          recorded alongside throughput so a speedup bought by a broken
          estimate is visible in the baseline diff; omitted from the JSON
          for every other row. *)
}

val to_string : row list -> string
(** Render as JSON. Raises [Invalid_argument] on a non-finite number — NaN
    and infinities are not JSON. *)

val of_string : string -> row list
(** Parse rows back. Raises [Invalid_argument] with a position-carrying
    message on anything that is not the schema above (unknown field, missing
    field, trailing garbage, malformed JSON). *)

val write : path:string -> row list -> unit
val read : path:string -> row list

type regression = {
  bench : string;
  baseline_ns : float;
  current_ns : float;
  slowdown_pct : float;  (** positive = slower than baseline *)
}

val regressions :
  baseline:row list -> current:row list -> max_pct:float -> regression list
(** Rows present in both sets whose [ns_per_run] grew by more than [max_pct]
    percent over the baseline. Rows only one side knows about are ignored:
    benchmarks come and go across PRs, and the committed baseline is
    regenerated whenever the set changes. *)

val pp_regression : Format.formatter -> regression -> unit
