(** CSV export of every experiment's data series, for plotting.

    [write_all ~dir] runs the full evaluation (same work as
    {!Experiments.run_all}) and writes one CSV file per experiment into
    [dir] (created if absent):

    - [fig3.csv] — remap cost comparison
    - [fig4_routines.csv] — routine, cache columns, cycles, misses
    - [fig4d.csv] — configuration, cycles
    - [fig5.csv] — series, quantum, CPI
    - [ablations.csv] — long-format (ablation, configuration, metric, value)
    - [generality.csv] — the JPEG cross-check
    - [tail_latency.csv] — per-tenant latency percentiles, shared vs
      MRC-partitioned columns
    - [wcet_partition.csv] — per-task static miss bound vs observed misses
    - [multitask_domains.csv] — per-job blocking vs event-core cycles from
      the epoch-synchronized multitask replay
      under shared / equal / MRC / WCET column allocations *)

val write_all : dir:string -> unit

val write_rows : path:string -> header:string list -> string list list -> unit
(** Low-level helper: write a header and rows, quoting any cell containing a
    comma or quote. *)

val tail_latency_header : string list

val tail_latency_rows : Experiments.Tail_latency.t -> string list list
(** The rows [write_all] writes to [tail_latency.csv], exposed so the golden
    test pins the figure's numbers through the same serialization path. *)
