let quote cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_rows ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let line cells = String.concat "," (List.map quote cells) ^ "\n" in
      output_string oc (line header);
      List.iter (fun row -> output_string oc (line row)) rows)

let soi = string_of_int
let sof f = Printf.sprintf "%.4f" f

let tail_latency_header =
  [
    "tenant"; "columns"; "shared_p50"; "shared_p99"; "shared_p999";
    "partitioned_p50"; "partitioned_p99"; "partitioned_p999";
  ]

let tail_latency_rows (tl : Experiments.Tail_latency.t) =
  List.map
    (fun (r : Experiments.Tail_latency.row) ->
      [
        r.Experiments.Tail_latency.tenant;
        (* the "all" row spans the whole cache, not one tenant's share *)
        (match
           List.assoc_opt r.Experiments.Tail_latency.tenant
             tl.Experiments.Tail_latency.allocation
         with
        | Some c -> soi c
        | None -> "8");
        soi r.Experiments.Tail_latency.shared_p50;
        soi r.Experiments.Tail_latency.shared_p99;
        soi r.Experiments.Tail_latency.shared_p999;
        soi r.Experiments.Tail_latency.part_p50;
        soi r.Experiments.Tail_latency.part_p99;
        soi r.Experiments.Tail_latency.part_p999;
      ])
    tl.Experiments.Tail_latency.rows

let write_all ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path name = Filename.concat dir name in

  let fig3 = Experiments.Fig3.run () in
  write_rows ~path:(path "fig3.csv")
    ~header:[ "scheme"; "pte_writes"; "tint_table_writes"; "tlb_entry_flushes" ]
    [
      [
        "tints";
        soi fig3.Experiments.Fig3.tinted_pte_writes;
        soi fig3.Experiments.Fig3.tinted_table_writes;
        soi fig3.Experiments.Fig3.tinted_tlb_entry_flushes;
      ];
      [ "bit_vectors"; soi fig3.Experiments.Fig3.direct_pte_writes; "0"; "0" ];
    ];

  let fig4 = Experiments.Fig4_routines.run () in
  write_rows ~path:(path "fig4_routines.csv")
    ~header:
      [ "routine"; "bytes"; "cache_columns"; "cycles"; "misses"; "uncached" ]
    (List.concat_map
       (fun s ->
         List.map
           (fun (p : Experiments.Fig4_routines.point) ->
             [
               s.Experiments.Fig4_routines.routine;
               soi s.Experiments.Fig4_routines.bytes;
               soi p.Experiments.Fig4_routines.cache_columns;
               soi p.Experiments.Fig4_routines.cycles;
               soi p.Experiments.Fig4_routines.misses;
               soi p.Experiments.Fig4_routines.uncached_regions;
             ])
           s.Experiments.Fig4_routines.points)
       fig4);

  let fig4d = Experiments.Fig4_combined.run () in
  write_rows ~path:(path "fig4d.csv") ~header:[ "configuration"; "cycles" ]
    (List.map
       (fun (cols, cycles) ->
         [ Printf.sprintf "static_%d_cache_cols" cols; soi cycles ])
       fig4d.Experiments.Fig4_combined.static_points
    @ [
        [ "standard"; soi fig4d.Experiments.Fig4_combined.standard_cache_cycles ];
        [ "column_dynamic"; soi fig4d.Experiments.Fig4_combined.column_cache_cycles ];
      ]);

  let fig5 = Experiments.Fig5.run () in
  write_rows ~path:(path "fig5.csv") ~header:[ "series"; "quantum"; "cpi" ]
    (List.concat_map
       (fun (s : Experiments.Fig5.series) ->
         List.map
           (fun (q, cpi) -> [ s.Experiments.Fig5.label; soi q; sof cpi ])
           s.Experiments.Fig5.points)
       fig5);

  (* long-format ablation table *)
  let ablations = ref [] in
  let row ablation config metric value =
    ablations := [ ablation; config; metric; value ] :: !ablations
  in
  List.iter
    (fun (r : Experiments.Ablation_policy.row) ->
      row "policy" r.Experiments.Ablation_policy.policy "dynamic_cycles"
        (soi r.Experiments.Ablation_policy.dynamic_cycles);
      row "policy" r.Experiments.Ablation_policy.policy "standard_cycles"
        (soi r.Experiments.Ablation_policy.standard_cycles))
    (Experiments.Ablation_policy.run ());
  List.iter
    (fun (r : Experiments.Ablation_columns.row) ->
      let cfg = soi r.Experiments.Ablation_columns.columns in
      row "columns" cfg "dynamic_cycles"
        (soi r.Experiments.Ablation_columns.dynamic_cycles);
      row "columns" cfg "best_static_cycles"
        (soi r.Experiments.Ablation_columns.best_static_cycles);
      row "columns" cfg "standard_cycles"
        (soi r.Experiments.Ablation_columns.standard_cycles))
    (Experiments.Ablation_columns.run ());
  List.iter
    (fun (r : Experiments.Ablation_weights.row) ->
      let cfg = r.Experiments.Ablation_weights.routine in
      row "weights" cfg "profile_cycles"
        (soi r.Experiments.Ablation_weights.profile_cycles);
      row "weights" cfg "analysis_cycles"
        (soi r.Experiments.Ablation_weights.static_cycles))
    (Experiments.Ablation_weights.run ());
  List.iter
    (fun (r : Experiments.Ablation_grouping.row) ->
      row "grouping" r.Experiments.Ablation_grouping.config "cycles"
        (soi r.Experiments.Ablation_grouping.cycles);
      row "grouping" r.Experiments.Ablation_grouping.config "misses"
        (soi r.Experiments.Ablation_grouping.misses))
    (Experiments.Ablation_grouping.run ());
  let pc = Experiments.Ablation_page_coloring.run () in
  List.iter
    (fun (r : Experiments.Ablation_page_coloring.row) ->
      row "page_coloring" r.Experiments.Ablation_page_coloring.config "cycles"
        (soi r.Experiments.Ablation_page_coloring.cycles);
      row "page_coloring" r.Experiments.Ablation_page_coloring.config "misses"
        (soi r.Experiments.Ablation_page_coloring.misses))
    pc.Experiments.Ablation_page_coloring.rows;
  row "page_coloring" "adaptation" "recolor_bytes"
    (soi pc.Experiments.Ablation_page_coloring.recolor_bytes);
  row "page_coloring" "adaptation" "column_table_writes"
    (soi pc.Experiments.Ablation_page_coloring.column_remap_writes);
  List.iter
    (fun (r : Experiments.Ablation_l2.row) ->
      row "l2" r.Experiments.Ablation_l2.config "cycles"
        (soi r.Experiments.Ablation_l2.cycles);
      row "l2" r.Experiments.Ablation_l2.config "l2_hits"
        (soi r.Experiments.Ablation_l2.l2_hits))
    (Experiments.Ablation_l2.run ());
  List.iter
    (fun (r : Experiments.Ablation_prefetch.row) ->
      row "prefetch" r.Experiments.Ablation_prefetch.config "cycles"
        (soi r.Experiments.Ablation_prefetch.cycles);
      row "prefetch" r.Experiments.Ablation_prefetch.config "misses"
        (soi r.Experiments.Ablation_prefetch.misses))
    (Experiments.Ablation_prefetch.run ());
  List.iter
    (fun (s : Experiments.Ablation_tlb.series) ->
      List.iter
        (fun (q, cpi) ->
          row "tlb"
            (Printf.sprintf "entries_%d_q%d" s.Experiments.Ablation_tlb.tlb_entries q)
            "cpi" (sof cpi))
        s.Experiments.Ablation_tlb.points)
    (Experiments.Ablation_tlb.run ());
  List.iter
    (fun (r : Experiments.Ablation_optimizer.row) ->
      let cfg = r.Experiments.Ablation_optimizer.routine in
      row "optimizer" cfg "accesses_before"
        (soi r.Experiments.Ablation_optimizer.accesses_before);
      row "optimizer" cfg "accesses_after"
        (soi r.Experiments.Ablation_optimizer.accesses_after);
      row "optimizer" cfg "column_after"
        (soi r.Experiments.Ablation_optimizer.column_after))
    (Experiments.Ablation_optimizer.run ());
  write_rows ~path:(path "ablations.csv")
    ~header:[ "ablation"; "configuration"; "metric"; "value" ]
    (List.rev !ablations);

  let g = Experiments.Generality.run () in
  write_rows ~path:(path "generality.csv")
    ~header:[ "routine"; "bytes"; "standard_cycles"; "best_column_cycles" ]
    (List.map
       (fun (proc, bytes, standard, best) ->
         [ proc; soi bytes; soi standard; soi best ])
       g.Experiments.Generality.routines
    @ [
        [ "whole_app_standard"; ""; soi g.Experiments.Generality.standard_cycles; "" ];
        [ "whole_app_best_static"; ""; soi g.Experiments.Generality.best_static_cycles; "" ];
        [ "whole_app_dynamic"; ""; soi g.Experiments.Generality.dynamic_cycles; "" ];
      ]);

  let tl = Experiments.Tail_latency.run () in
  write_rows ~path:(path "tail_latency.csv") ~header:tail_latency_header
    (tail_latency_rows tl);

  let wp = Experiments.Wcet_partition.run () in
  let bound b = if Float.is_finite b then sof b else "unbounded" in
  write_rows ~path:(path "wcet_partition.csv")
    ~header:
      [ "task"; "allocation"; "columns"; "static_miss_bound"; "observed_misses" ]
    (List.concat_map
       (fun (r : Experiments.Wcet_partition.row) ->
         List.map
           (fun (alloc, (c : Experiments.Wcet_partition.cell)) ->
             [
               r.Experiments.Wcet_partition.task;
               alloc;
               soi c.Experiments.Wcet_partition.columns;
               bound c.Experiments.Wcet_partition.bound;
               soi c.Experiments.Wcet_partition.observed;
             ])
           [
             ("shared", r.Experiments.Wcet_partition.shared);
             ("equal", r.Experiments.Wcet_partition.equal);
             ("mrc", r.Experiments.Wcet_partition.mrc);
             ("wcet", r.Experiments.Wcet_partition.wcet);
           ])
       wp.Experiments.Wcet_partition.rows);

  let md = Experiments.Multitask_domains.run () in
  write_rows ~path:(path "multitask_domains.csv")
    ~header:
      [
        "job"; "accesses"; "blocking_cycles"; "event_cycles"; "mshr_merges";
        "dram_row_hits";
      ]
    (List.map
       (fun (r : Experiments.Multitask_domains.row) ->
         [
           r.Experiments.Multitask_domains.job;
           soi r.Experiments.Multitask_domains.accesses;
           soi r.Experiments.Multitask_domains.blocking_cycles;
           soi r.Experiments.Multitask_domains.event_cycles;
           soi r.Experiments.Multitask_domains.mshr_merges;
           soi r.Experiments.Multitask_domains.dram_row_hits;
         ])
       md.Experiments.Multitask_domains.rows)
