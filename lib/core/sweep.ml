module Sassoc = Cache.Sassoc
module Bitmask = Cache.Bitmask
module Stack_dist = Cache.Stack_dist
module Partition = Layout.Partition
module Region = Layout.Region
module Timing = Machine.Timing
module Run_stats = Machine.Run_stats
module Latency = Machine.Latency

exception Infeasible

(* Byte ranges as parallel arrays, so membership is an allocation-free scan
   like [Machine.System]'s own region checks (there are at most a handful of
   pinned/uncached regions per partition). *)
type ranges = { bases : int array; limits : int array }

let no_ranges = { bases = [||]; limits = [||] }

let ranges_of l =
  {
    bases = Array.of_list (List.map fst l);
    limits = Array.of_list (List.map (fun (b, s) -> b + s) l);
  }

let in_ranges r addr =
  let n = Array.length r.bases in
  let rec go i =
    i < n
    && ((addr >= Array.unsafe_get r.bases i
        && addr < Array.unsafe_get r.limits i)
       || go (i + 1))
  in
  go 0

let feasible_cache cache =
  cache.Sassoc.policy = Cache.Policy.Lru && not cache.Sassoc.classify

(* One pass over the packed traces: uncached references are recognized by
   byte range first (they bypass the TLB, as in the machine), every other
   access does a TLB lookup (with the same consecutive-same-page shortcut
   the machine's batched loop uses — a repeated lookup of the MRU page is an
   LRU identity, so those hits can be credited wholesale) and then feeds the
   stack-distance engine of the column group owning its page. [page_map]
   gives that group per page; [None] means a single group takes all traffic,
   as in the unmapped baseline. Pages of pinned scratchpad regions map to
   group [-1]: {!Machine.System.pin_region} preloads the whole region into
   its columns and nothing else traffics them, so every in-range access is a
   guaranteed cache hit needing no engine (and out-of-range accesses to such
   a page would miss into the pinned columns — [Infeasible]). An access to a
   page the map does not claim is traffic the decomposition cannot attribute
   to an isolated group — [Infeasible]. *)
let eval ?requests ~cache ~timing ~page_size ~tlb_entries ~scratch ~uncached
    ~page_map ~groups ~group_ways ~setup_cycles packed_list =
  let page_of =
    if page_size > 0 && page_size land (page_size - 1) = 0 then (
      let shift = ref 0 in
      while 1 lsl !shift < page_size do
        incr shift
      done;
      let shift = !shift in
      fun addr -> addr lsr shift)
    else fun addr -> addr / page_size
  in
  let page_table = Vm.Page_table.create ~page_size () in
  let tlb = Vm.Tlb.create ~entries:tlb_entries ~page_table in
  (* Request windows index the concatenation of the packed traces, exactly
     like [Machine.System.run_packed_requests] over the same stream. A
     request's latency is the sum of its accesses' per-access costs, which
     mirror the machine's scalar path arithmetically: gap + flat latency for
     uncached, gap + hit_cycles + the penalties of this access's own miss /
     writeback / TLB miss for everything else. Per-access miss and writeback
     outcomes come from {!Stack_dist.access_traced} at the group's
     associativity; the TLB outcome from the miss-counter delta around the
     real lookup (the consecutive-same-page memo is a guaranteed hit). *)
  let req = match requests with None -> [||] | Some r -> r in
  let track = match requests with Some _ -> true | None -> false in
  let n_total_all =
    List.fold_left (fun acc p -> acc + Memtrace.Packed.length p) 0 packed_list
  in
  Array.iteri
    (fun i (start, stop) ->
      if start < 0 || start >= stop || stop > n_total_all then
        invalid_arg "Sweep: request span out of bounds";
      if i > 0 && start < snd req.(i - 1) then
        invalid_arg "Sweep: request spans must be sorted and disjoint")
    req;
  let lat =
    Latency.Builder.create ~initial_capacity:(max 16 (Array.length req)) ()
  in
  let gi = ref 0 in
  let next_req = ref 0 in
  let in_window = ref false in
  let win_cycles = ref 0 in
  let n_total = ref 0 in
  let gap_sum = ref 0 in
  let n_uncached = ref 0 in
  let memo_hits = ref 0 in
  let last_page = ref min_int in
  List.iter
    (fun packed ->
      let n = Memtrace.Packed.length packed in
      let addrs = Memtrace.Packed.raw_addrs packed in
      let gaps = Memtrace.Packed.raw_gaps packed in
      let kinds = Memtrace.Packed.raw_kinds packed in
      n_total := !n_total + n;
      for i = 0 to n - 1 do
        let addr = Bigarray.Array1.unsafe_get addrs i in
        let gap = Bigarray.Array1.unsafe_get gaps i in
        gap_sum := !gap_sum + gap;
        (if
           track
           && (not !in_window)
           && !next_req < Array.length req
           && !gi = fst req.(!next_req)
         then begin
           in_window := true;
           win_cycles := 0
         end);
        let cost = ref gap in
        (if in_ranges uncached addr then begin
           incr n_uncached;
           cost := !cost + timing.Timing.uncached_cycles
         end
         else begin
           let page = page_of addr in
           (if page = !last_page then incr memo_hits
            else begin
              let m0 = Vm.Tlb.misses tlb in
              ignore (Vm.Tlb.lookup_page_quick tlb page);
              if Vm.Tlb.misses tlb <> m0 then
                cost := !cost + timing.Timing.tlb_miss_penalty;
              last_page := page
            end);
           cost := !cost + timing.Timing.hit_cycles;
           let feed g =
             let kind =
               Memtrace.Packed.kind_of_code
                 (Char.code (Bigarray.Array1.unsafe_get kinds i))
             in
             if !in_window then begin
               let seen =
                 Stack_dist.access_traced (Array.unsafe_get groups g) ~kind
                   ~ways:(Array.unsafe_get group_ways g)
                   addr
               in
               if seen land 1 = 0 then
                 cost := !cost + timing.Timing.miss_penalty;
               if seen land 2 <> 0 then
                 cost := !cost + timing.Timing.writeback_penalty
             end
             else Stack_dist.access (Array.unsafe_get groups g) ~kind addr
           in
           match page_map with
           | None -> feed 0
           | Some map -> (
               match Hashtbl.find_opt map page with
               | Some g when g >= 0 -> feed g
               | Some _ ->
                   (* pinned page: a guaranteed hit in its preloaded columns,
                      but only inside the pinned byte range *)
                   if not (in_ranges scratch addr) then raise Infeasible
               | None -> raise Infeasible)
         end);
        (if !in_window then begin
           win_cycles := !win_cycles + !cost;
           if !gi = snd req.(!next_req) - 1 then begin
             Latency.Builder.push lat !win_cycles;
             in_window := false;
             incr next_req
           end
         end);
        incr gi
      done)
    packed_list;
  Vm.Tlb.note_hits tlb !memo_hits;
  let misses = ref 0 in
  let evictions = ref 0 in
  let writebacks = ref 0 in
  Array.iteri
    (fun g engine ->
      let ways = Array.unsafe_get group_ways g in
      misses := !misses + Stack_dist.misses engine ~ways;
      evictions := !evictions + Stack_dist.evictions engine ~ways;
      writebacks := !writebacks + Stack_dist.writebacks engine ~ways)
    groups;
  let resolved = !n_total - !n_uncached in
  let tlb_hits = Vm.Tlb.hits tlb in
  let tlb_misses = Vm.Tlb.misses tlb in
  let cycles =
    setup_cycles + !gap_sum
    + (resolved * timing.Timing.hit_cycles)
    + (!n_uncached * timing.Timing.uncached_cycles)
    + (!misses * timing.Timing.miss_penalty)
    + (!writebacks * timing.Timing.writeback_penalty)
    + (tlb_misses * timing.Timing.tlb_miss_penalty)
  in
  let stats = Cache.Stats.create ~ways:cache.Sassoc.ways in
  stats.Cache.Stats.accesses <- resolved;
  stats.Cache.Stats.hits <- resolved - !misses;
  stats.Cache.Stats.misses <- !misses;
  stats.Cache.Stats.evictions <- !evictions;
  stats.Cache.Stats.writebacks <- !writebacks;
  {
    Run_stats.instructions = !gap_sum + !n_total;
    cycles;
    memory_accesses = !n_total;
    (* [pin_region] does not register a machine scratchpad region; pinned
       traffic is ordinary (always-hitting) cached traffic *)
    scratchpad_accesses = 0;
    tlb_hits;
    tlb_misses;
    l2_hits = 0;
    l2_misses = 0;
    prefetches = 0;
    mshr_merges = 0;
    mshr_stalls = 0;
    dram_row_hits = 0;
    dram_row_conflicts = 0;
    cache = stats;
    requests =
      (if track then Latency.Builder.build lat else Latency.empty);
  }

(* The sampled twin of [eval]: the same routing loop (uncached ranges, exact
   TLB replay with the same-page memo, page -> group attribution), but each
   group is a SHARDS-style {!Stack_dist.Sampled} estimator, so only accesses
   landing in its selected sets cost engine work. Per-request latency makes
   no sense on a subsample, so there are no request windows; the result is
   the closed-form cycle count of [eval] with the exact per-group miss and
   writeback totals replaced by their scaled estimates — a float. *)
let eval_sampled ~timing ~page_size ~tlb_entries ~scratch ~uncached ~page_map
    ~(groups : Stack_dist.Sampled.t array) ~group_ways ~setup_cycles
    packed_list =
  let page_of =
    if page_size > 0 && page_size land (page_size - 1) = 0 then (
      let shift = ref 0 in
      while 1 lsl !shift < page_size do
        incr shift
      done;
      let shift = !shift in
      fun addr -> addr lsr shift)
    else fun addr -> addr / page_size
  in
  let page_table = Vm.Page_table.create ~page_size () in
  let tlb = Vm.Tlb.create ~entries:tlb_entries ~page_table in
  let n_total = ref 0 in
  let gap_sum = ref 0 in
  let n_uncached = ref 0 in
  let memo_hits = ref 0 in
  let last_page = ref min_int in
  List.iter
    (fun packed ->
      let n = Memtrace.Packed.length packed in
      let addrs = Memtrace.Packed.raw_addrs packed in
      let gaps = Memtrace.Packed.raw_gaps packed in
      let kinds = Memtrace.Packed.raw_kinds packed in
      n_total := !n_total + n;
      for i = 0 to n - 1 do
        let addr = Bigarray.Array1.unsafe_get addrs i in
        gap_sum := !gap_sum + Bigarray.Array1.unsafe_get gaps i;
        if in_ranges uncached addr then incr n_uncached
        else begin
          let page = page_of addr in
          (if page = !last_page then incr memo_hits
           else begin
             ignore (Vm.Tlb.lookup_page_quick tlb page);
             last_page := page
           end);
          let feed g =
            let kind =
              Memtrace.Packed.kind_of_code
                (Char.code (Bigarray.Array1.unsafe_get kinds i))
            in
            Stack_dist.Sampled.access (Array.unsafe_get groups g) ~kind addr
          in
          match page_map with
          | None -> feed 0
          | Some map -> (
              match Hashtbl.find_opt map page with
              | Some g when g >= 0 -> feed g
              | Some _ ->
                  if not (in_ranges scratch addr) then raise Infeasible
              | None -> raise Infeasible)
        end
      done)
    packed_list;
  Vm.Tlb.note_hits tlb !memo_hits;
  let misses = ref 0. in
  let writebacks = ref 0. in
  Array.iteri
    (fun g engine ->
      let ways = Array.unsafe_get group_ways g in
      misses := !misses +. Stack_dist.Sampled.misses_est engine ~ways;
      writebacks :=
        !writebacks +. Stack_dist.Sampled.writebacks_est engine ~ways)
    groups;
  let resolved = !n_total - !n_uncached in
  let tlb_misses = Vm.Tlb.misses tlb in
  float_of_int
    (setup_cycles + !gap_sum
    + (resolved * timing.Timing.hit_cycles)
    + (!n_uncached * timing.Timing.uncached_cycles)
    + (tlb_misses * timing.Timing.tlb_miss_penalty))
  +. (!misses *. float_of_int timing.Timing.miss_penalty)
  +. (!writebacks *. float_of_int timing.Timing.writeback_penalty)

let standard ?translate ?requests ~cache ~timing ~page_size ~tlb_entries
    packed_list =
  if not (feasible_cache cache) then None
  else
    let engine =
      Stack_dist.create ?translate ~line_size:cache.Sassoc.line_size
        ~sets:cache.Sassoc.sets ~max_ways:cache.Sassoc.ways ()
    in
    (* [Infeasible] cannot be raised without a page map. *)
    Some
      (eval ?requests ~cache ~timing ~page_size ~tlb_entries
         ~scratch:no_ranges ~uncached:no_ranges ~page_map:None
         ~groups:[| engine |] ~group_ways:[| cache.Sassoc.ways |]
         ~setup_cycles:0 packed_list)

let standard_sampled ?translate ?seed ?min_sets ?budget ~rate ~cache ~timing
    ~page_size ~tlb_entries packed_list =
  if not (feasible_cache cache) then None
  else
    let engine =
      Stack_dist.Sampled.create ?translate ?seed ?min_sets ?budget ~rate
        ~line_size:cache.Sassoc.line_size ~sets:cache.Sassoc.sets
        ~max_ways:cache.Sassoc.ways ()
    in
    Some
      (eval_sampled ~timing ~page_size ~tlb_entries ~scratch:no_ranges
         ~uncached:no_ranges ~page_map:None ~groups:[| engine |]
         ~group_ways:[| cache.Sassoc.ways |] ~setup_cycles:0 packed_list)

(* The partition decomposition shared by the exact evaluator and the sampled
   estimator: byte ranges, the page -> group map, the per-group way counts
   (one group per distinct cached column mask) and the copy-in charge.
   Raises [Infeasible] exactly where {!partitioned} reports [None]. *)
type plan = {
  plan_scratch : ranges;
  plan_uncached : ranges;
  plan_page_map : (int, int) Hashtbl.t;
  plan_group_ways : int array;
  plan_setup : int;
}

let decompose ~cache ~timing ~page_size ~part ~copy_in =
  let line_size = cache.Sassoc.line_size in
  let page_map : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let claim ~group base size =
    if size > 0 then
      let first = base / page_size in
      let last = (base + size - 1) / page_size in
      for page = first to last do
        match Hashtbl.find_opt page_map page with
        | None -> Hashtbl.add page_map page group
        | Some g when g = group -> ()
        | Some _ -> raise Infeasible
      done
  in
  let scratch = ref [] in
  let uncached = ref [] in
  let scratch_mask = ref Bitmask.empty in
  let masks = ref [] in
  let ways_rev = ref [] in
  let n_groups = ref 0 in
  let setup = ref 0 in
  List.iter
    (fun pl ->
      let region = pl.Partition.region in
      let size = region.Region.size in
      match (pl.Partition.role, pl.Partition.columns) with
      | Partition.Uncached, _ ->
          uncached := (pl.Partition.base, size) :: !uncached
      | (Partition.Scratchpad | Partition.Cached), None -> raise Infeasible
      | Partition.Scratchpad, Some mask ->
          (* Same copy-in charge [Partition.apply] would issue; the
             machine folds it into the first run's cycle delta. *)
          if List.mem region.Region.var copy_in then begin
            let lines = (size + line_size - 1) / line_size in
            setup :=
              !setup
              + lines
                * (timing.Timing.hit_cycles + timing.Timing.miss_penalty)
          end;
          scratch := (pl.Partition.base, size) :: !scratch;
          scratch_mask := Bitmask.union !scratch_mask mask;
          claim ~group:(-1) pl.Partition.base size
      | Partition.Cached, Some mask ->
          let group =
            match
              List.find_opt (fun (m, _) -> Bitmask.equal m mask) !masks
            with
            | Some (_, g) -> g
            | None ->
                let ways = Bitmask.count mask in
                if ways = 0 then raise Infeasible;
                let g = !n_groups in
                incr n_groups;
                ways_rev := ways :: !ways_rev;
                masks := (mask, g) :: !masks;
                g
          in
          claim ~group pl.Partition.base size)
    part.Partition.placements;
  (* Each cached group is an isolated LRU cache only if its columns are
     disjoint from every other group's and from the pinned scratchpad
     columns (whose preloaded lines would otherwise occupy group ways). *)
  let rec disjoint seen = function
    | [] -> ()
    | m :: rest ->
        if not (Bitmask.is_empty (Bitmask.inter m seen)) then raise Infeasible;
        disjoint (Bitmask.union m seen) rest
  in
  disjoint !scratch_mask (List.rev_map fst !masks);
  {
    plan_scratch = ranges_of !scratch;
    plan_uncached = ranges_of !uncached;
    plan_page_map = page_map;
    plan_group_ways = Array.of_list (List.rev !ways_rev);
    plan_setup = !setup;
  }

let partitioned ?requests ~cache ~timing ~page_size ~tlb_entries ~part
    ~copy_in packed_list =
  if not (feasible_cache cache) then None
  else
    try
      let plan = decompose ~cache ~timing ~page_size ~part ~copy_in in
      let groups =
        Array.map
          (fun ways ->
            Stack_dist.create ~line_size:cache.Sassoc.line_size
              ~sets:cache.Sassoc.sets ~max_ways:ways ())
          plan.plan_group_ways
      in
      Some
        (eval ?requests ~cache ~timing ~page_size ~tlb_entries
           ~scratch:plan.plan_scratch ~uncached:plan.plan_uncached
           ~page_map:(Some plan.plan_page_map) ~groups
           ~group_ways:plan.plan_group_ways ~setup_cycles:plan.plan_setup
           packed_list)
    with Infeasible -> None

let partitioned_sampled ?seed ?min_sets ?budget ~rate ~cache ~timing
    ~page_size ~tlb_entries ~part ~copy_in packed_list =
  if not (feasible_cache cache) then None
  else
    try
      let plan = decompose ~cache ~timing ~page_size ~part ~copy_in in
      let groups =
        Array.map
          (fun ways ->
            Stack_dist.Sampled.create ?seed ?min_sets ?budget ~rate
              ~line_size:cache.Sassoc.line_size ~sets:cache.Sassoc.sets
              ~max_ways:ways ())
          plan.plan_group_ways
      in
      Some
        (eval_sampled ~timing ~page_size ~tlb_entries
           ~scratch:plan.plan_scratch ~uncached:plan.plan_uncached
           ~page_map:(Some plan.plan_page_map) ~groups
           ~group_ways:plan.plan_group_ways ~setup_cycles:plan.plan_setup
           packed_list)
    with Infeasible -> None

(* {2 Domain-parallel set-sharded evaluators}

   The cache side of a sweep point is a Mattson pass, which is exactly
   independent per cache set (see [Stack_dist.merge_into]); the TLB side is
   inherently serial (its state depends on the global access order) but
   cheap — page extraction plus a memoized lookup, no engine work. The
   parallel evaluators therefore split the two: worker domains each run the
   engines over one set shard of the trace, and one serial pass replays the
   TLB and gap accounting; the closed-form cycle arithmetic then recombines
   them exactly as [eval] does, so the result is byte-identical to the
   serial evaluator for any [jobs]. Per-request latency is inherently
   serial-interleaved, so the parallel variants omit [?requests], exactly
   like [eval_sampled]. *)

let check_jobs ~jobs ~sets name =
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf "Sweep.%s: jobs must be a positive domain count, got %d"
         name jobs);
  if jobs > sets then
    invalid_arg
      (Printf.sprintf "Sweep.%s: more shards (jobs=%d) than sets (%d)" name
         jobs sets)

let page_fn page_size =
  if page_size > 0 && page_size land (page_size - 1) = 0 then (
    let shift = ref 0 in
    while 1 lsl !shift < page_size do
      incr shift
    done;
    let shift = !shift in
    fun addr -> addr lsr shift)
  else fun addr -> addr / page_size

(* The serial half: the routing loop of [eval] without any engine work —
   gap sums, uncached recognition, the exact TLB replay with the
   consecutive-same-page memo, and the full feasibility checks (unclaimed
   pages, scratchpad byte ranges), raising [Infeasible] exactly where
   [eval] would. *)
let route_serial ~page_size ~tlb_entries ~scratch ~uncached ~page_map
    packed_list =
  let page_of = page_fn page_size in
  let page_table = Vm.Page_table.create ~page_size () in
  let tlb = Vm.Tlb.create ~entries:tlb_entries ~page_table in
  let n_total = ref 0 in
  let gap_sum = ref 0 in
  let n_uncached = ref 0 in
  let memo_hits = ref 0 in
  let last_page = ref min_int in
  List.iter
    (fun packed ->
      let n = Memtrace.Packed.length packed in
      let addrs = Memtrace.Packed.raw_addrs packed in
      let gaps = Memtrace.Packed.raw_gaps packed in
      n_total := !n_total + n;
      for i = 0 to n - 1 do
        let addr = Bigarray.Array1.unsafe_get addrs i in
        gap_sum := !gap_sum + Bigarray.Array1.unsafe_get gaps i;
        if in_ranges uncached addr then incr n_uncached
        else begin
          let page = page_of addr in
          (if page = !last_page then incr memo_hits
           else begin
             ignore (Vm.Tlb.lookup_page_quick tlb page);
             last_page := page
           end);
          match page_map with
          | None -> ()
          | Some map -> (
              match Hashtbl.find_opt map page with
              | Some g when g >= 0 -> ()
              | Some _ ->
                  if not (in_ranges scratch addr) then raise Infeasible
              | None -> raise Infeasible)
        end
      done)
    packed_list;
  Vm.Tlb.note_hits tlb !memo_hits;
  (!n_total, !gap_sum, !n_uncached, Vm.Tlb.hits tlb, Vm.Tlb.misses tlb)

(* The parallel half: [jobs] domains, each owning the sets with
   [set mod jobs = shard] of every group engine, walking the whole trace
   with a cheap set filter and paying engine work only for owned sets. *)
let sharded_group_pass ~jobs ~cache ~uncached ~page_map ~page_of ~group_ways
    ?on_shard packed_list =
  let line_shift =
    let rec go n a = if n <= 1 then a else go (n lsr 1) (a + 1) in
    go cache.Sassoc.line_size 0
  in
  let set_mask = cache.Sassoc.sets - 1 in
  let worker shard () =
    let groups =
      Array.map
        (fun ways ->
          Stack_dist.create ~line_size:cache.Sassoc.line_size
            ~sets:cache.Sassoc.sets ~max_ways:ways ())
        group_ways
    in
    List.iter
      (fun packed ->
        let n = Memtrace.Packed.length packed in
        let addrs = Memtrace.Packed.raw_addrs packed in
        let kinds = Memtrace.Packed.raw_kinds packed in
        for i = 0 to n - 1 do
          let addr = Bigarray.Array1.unsafe_get addrs i in
          if
            ((addr lsr line_shift) land set_mask) mod jobs = shard
            && not (in_ranges uncached addr)
          then begin
            let feed g =
              let kind =
                Memtrace.Packed.kind_of_code
                  (Char.code (Bigarray.Array1.unsafe_get kinds i))
              in
              Stack_dist.access (Array.unsafe_get groups g) ~kind addr
            in
            match page_map with
            | None -> feed 0
            | Some map -> (
                match Hashtbl.find_opt map (page_of addr) with
                | Some g when g >= 0 -> feed g
                | Some _ | None ->
                    (* pinned or unclaimed: the serial routing pass already
                       validated (or rejected) this traffic *)
                    ())
          end
        done)
      packed_list;
    groups
  in
  let note shard groups =
    match on_shard with
    | Some f ->
        f ~shard
          ~accesses:
            (Array.fold_left (fun a e -> a + Stack_dist.accesses e) 0 groups)
    | None -> ()
  in
  if jobs = 1 then begin
    let groups = worker 0 () in
    note 0 groups;
    groups
  end
  else begin
    let domains =
      Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1)))
    in
    let g0 = worker 0 () in
    note 0 g0;
    Array.iteri
      (fun k d ->
        let gk = Domain.join d in
        note (k + 1) gk;
        Array.iteri (fun g e -> Stack_dist.merge_into g0.(g) e) gk)
      domains;
    g0
  end

(* Recombine: identical arithmetic to [eval]'s tail over the merged
   engines' readings. *)
let assemble ~cache ~timing ~setup_cycles ~n_total ~gap_sum ~n_uncached
    ~tlb_hits ~tlb_misses ~groups ~group_ways =
  let misses = ref 0 in
  let evictions = ref 0 in
  let writebacks = ref 0 in
  Array.iteri
    (fun g engine ->
      let ways = Array.unsafe_get group_ways g in
      misses := !misses + Stack_dist.misses engine ~ways;
      evictions := !evictions + Stack_dist.evictions engine ~ways;
      writebacks := !writebacks + Stack_dist.writebacks engine ~ways)
    groups;
  let resolved = n_total - n_uncached in
  let cycles =
    setup_cycles + gap_sum
    + (resolved * timing.Timing.hit_cycles)
    + (n_uncached * timing.Timing.uncached_cycles)
    + (!misses * timing.Timing.miss_penalty)
    + (!writebacks * timing.Timing.writeback_penalty)
    + (tlb_misses * timing.Timing.tlb_miss_penalty)
  in
  let stats = Cache.Stats.create ~ways:cache.Sassoc.ways in
  stats.Cache.Stats.accesses <- resolved;
  stats.Cache.Stats.hits <- resolved - !misses;
  stats.Cache.Stats.misses <- !misses;
  stats.Cache.Stats.evictions <- !evictions;
  stats.Cache.Stats.writebacks <- !writebacks;
  {
    Run_stats.instructions = gap_sum + n_total;
    cycles;
    memory_accesses = n_total;
    scratchpad_accesses = 0;
    tlb_hits;
    tlb_misses;
    l2_hits = 0;
    l2_misses = 0;
    prefetches = 0;
    mshr_merges = 0;
    mshr_stalls = 0;
    dram_row_hits = 0;
    dram_row_conflicts = 0;
    cache = stats;
    requests = Latency.empty;
  }

let standard_parallel ?translate ?on_shard ~jobs ~cache ~timing ~page_size
    ~tlb_entries packed_list =
  check_jobs ~jobs ~sets:cache.Sassoc.sets "standard_parallel";
  if not (feasible_cache cache) then None
  else begin
    let n_total, gap_sum, n_uncached, tlb_hits, tlb_misses =
      route_serial ~page_size ~tlb_entries ~scratch:no_ranges
        ~uncached:no_ranges ~page_map:None packed_list
    in
    let group_ways = [| cache.Sassoc.ways |] in
    let groups =
      match translate with
      | None ->
          sharded_group_pass ~jobs ~cache ~uncached:no_ranges ~page_map:None
            ~page_of:(page_fn page_size) ~group_ways ?on_shard packed_list
      | Some f ->
          (* A frame translation moves addresses between sets, so the shard
             filter must apply it; the engine owns it, so route through the
             engine-level sharded feed (translate-once). *)
          let worker shard () =
            let e =
              Stack_dist.create ~translate:f
                ~line_size:cache.Sassoc.line_size ~sets:cache.Sassoc.sets
                ~max_ways:cache.Sassoc.ways ()
            in
            List.iter
              (fun p ->
                if jobs = 1 then Stack_dist.access_packed e p
                else
                  Stack_dist.access_packed_sharded e ~shards:jobs ~shard p)
              packed_list;
            e
          in
          let note shard e =
            match on_shard with
            | Some f -> f ~shard ~accesses:(Stack_dist.accesses e)
            | None -> ()
          in
          if jobs = 1 then begin
            let e = worker 0 () in
            note 0 e;
            [| e |]
          end
          else begin
            let domains =
              Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1)))
            in
            let e0 = worker 0 () in
            note 0 e0;
            Array.iteri
              (fun k d ->
                let ek = Domain.join d in
                note (k + 1) ek;
                Stack_dist.merge_into e0 ek)
              domains;
            [| e0 |]
          end
    in
    Some
      (assemble ~cache ~timing ~setup_cycles:0 ~n_total ~gap_sum ~n_uncached
         ~tlb_hits ~tlb_misses ~groups ~group_ways)
  end

let partitioned_parallel ?on_shard ~jobs ~cache ~timing ~page_size
    ~tlb_entries ~part ~copy_in packed_list =
  check_jobs ~jobs ~sets:cache.Sassoc.sets "partitioned_parallel";
  if not (feasible_cache cache) then None
  else
    try
      let plan = decompose ~cache ~timing ~page_size ~part ~copy_in in
      let n_total, gap_sum, n_uncached, tlb_hits, tlb_misses =
        route_serial ~page_size ~tlb_entries ~scratch:plan.plan_scratch
          ~uncached:plan.plan_uncached ~page_map:(Some plan.plan_page_map)
          packed_list
      in
      let groups =
        sharded_group_pass ~jobs ~cache ~uncached:plan.plan_uncached
          ~page_map:(Some plan.plan_page_map) ~page_of:(page_fn page_size)
          ~group_ways:plan.plan_group_ways ?on_shard packed_list
      in
      Some
        (assemble ~cache ~timing ~setup_cycles:plan.plan_setup ~n_total
           ~gap_sum ~n_uncached ~tlb_hits ~tlb_misses ~groups
           ~group_ways:plan.plan_group_ways)
    with Infeasible -> None

let standard_sampled_parallel ?translate ?seed ?min_sets ~jobs ~rate ~cache
    ~timing ~page_size ~tlb_entries packed_list =
  check_jobs ~jobs ~sets:cache.Sassoc.sets "standard_sampled_parallel";
  if not (feasible_cache cache) then None
  else begin
    let n_total, gap_sum, n_uncached, _tlb_hits, tlb_misses =
      route_serial ~page_size ~tlb_entries ~scratch:no_ranges
        ~uncached:no_ranges ~page_map:None packed_list
    in
    let worker shard () =
      let e =
        Stack_dist.Sampled.create ?translate ?seed ?min_sets ~rate
          ~line_size:cache.Sassoc.line_size ~sets:cache.Sassoc.sets
          ~max_ways:cache.Sassoc.ways ()
      in
      List.iter
        (fun p ->
          if jobs = 1 then Stack_dist.Sampled.access_packed e p
          else
            Stack_dist.Sampled.access_packed_sharded e ~shards:jobs ~shard p)
        packed_list;
      e
    in
    let engine =
      if jobs = 1 then worker 0 ()
      else begin
        let domains =
          Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1)))
        in
        let e0 = worker 0 () in
        Array.iter
          (fun d -> Stack_dist.Sampled.merge_into e0 (Domain.join d))
          domains;
        e0
      end
    in
    let ways = cache.Sassoc.ways in
    let resolved = n_total - n_uncached in
    Some
      (float_of_int
         (gap_sum
         + (resolved * timing.Timing.hit_cycles)
         + (n_uncached * timing.Timing.uncached_cycles)
         + (tlb_misses * timing.Timing.tlb_miss_penalty))
      +. (Stack_dist.Sampled.misses_est engine ~ways
          *. float_of_int timing.Timing.miss_penalty)
      +. (Stack_dist.Sampled.writebacks_est engine ~ways
          *. float_of_int timing.Timing.writeback_penalty))
  end

let masked ?requests ~cache ~timing ~page_size ~tlb_entries ~regions
    packed_list =
  if not (feasible_cache cache) then None
  else
    try
      let line_size = cache.Sassoc.line_size in
      let page_map : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let claim ~group base size =
        if size > 0 then
          let first = base / page_size in
          let last = (base + size - 1) / page_size in
          for page = first to last do
            match Hashtbl.find_opt page_map page with
            | None -> Hashtbl.add page_map page group
            | Some g when g = group -> ()
            | Some _ -> raise Infeasible
          done
      in
      let masks = ref [] in
      let engines = ref [] in
      let n_groups = ref 0 in
      List.iter
        (fun (base, size, mask) ->
          let group =
            match
              List.find_opt (fun (m, _) -> Bitmask.equal m mask) !masks
            with
            | Some (_, g) -> g
            | None ->
                let ways = Bitmask.count mask in
                if ways = 0 then raise Infeasible;
                let g = !n_groups in
                incr n_groups;
                engines :=
                  Stack_dist.create ~line_size ~sets:cache.Sassoc.sets
                    ~max_ways:ways ()
                  :: !engines;
                masks := (mask, g) :: !masks;
                g
          in
          claim ~group base size)
        regions;
      (* each group must be an isolated LRU cache: pairwise-disjoint masks *)
      let rec disjoint seen = function
        | [] -> ()
        | m :: rest ->
            if not (Bitmask.is_empty (Bitmask.inter m seen)) then
              raise Infeasible;
            disjoint (Bitmask.union m seen) rest
      in
      disjoint Bitmask.empty (List.rev_map fst !masks);
      let groups = Array.of_list (List.rev !engines) in
      let group_ways = Array.map Stack_dist.max_ways groups in
      Some
        (eval ?requests ~cache ~timing ~page_size ~tlb_entries
           ~scratch:no_ranges ~uncached:no_ranges ~page_map:(Some page_map)
           ~groups ~group_ways ~setup_cycles:0 packed_list)
    with Infeasible -> None
