module Sassoc = Cache.Sassoc
module Bitmask = Cache.Bitmask
module Stack_dist = Cache.Stack_dist
module Partition = Layout.Partition
module Region = Layout.Region
module Timing = Machine.Timing
module Run_stats = Machine.Run_stats
module Latency = Machine.Latency

exception Infeasible

(* Byte ranges as parallel arrays, so membership is an allocation-free scan
   like [Machine.System]'s own region checks (there are at most a handful of
   pinned/uncached regions per partition). *)
type ranges = { bases : int array; limits : int array }

let no_ranges = { bases = [||]; limits = [||] }

let ranges_of l =
  {
    bases = Array.of_list (List.map fst l);
    limits = Array.of_list (List.map (fun (b, s) -> b + s) l);
  }

let in_ranges r addr =
  let n = Array.length r.bases in
  let rec go i =
    i < n
    && ((addr >= Array.unsafe_get r.bases i
        && addr < Array.unsafe_get r.limits i)
       || go (i + 1))
  in
  go 0

let feasible_cache cache =
  cache.Sassoc.policy = Cache.Policy.Lru && not cache.Sassoc.classify

(* One pass over the packed traces: uncached references are recognized by
   byte range first (they bypass the TLB, as in the machine), every other
   access does a TLB lookup (with the same consecutive-same-page shortcut
   the machine's batched loop uses — a repeated lookup of the MRU page is an
   LRU identity, so those hits can be credited wholesale) and then feeds the
   stack-distance engine of the column group owning its page. [page_map]
   gives that group per page; [None] means a single group takes all traffic,
   as in the unmapped baseline. Pages of pinned scratchpad regions map to
   group [-1]: {!Machine.System.pin_region} preloads the whole region into
   its columns and nothing else traffics them, so every in-range access is a
   guaranteed cache hit needing no engine (and out-of-range accesses to such
   a page would miss into the pinned columns — [Infeasible]). An access to a
   page the map does not claim is traffic the decomposition cannot attribute
   to an isolated group — [Infeasible]. *)
let eval ?requests ~cache ~timing ~page_size ~tlb_entries ~scratch ~uncached
    ~page_map ~groups ~group_ways ~setup_cycles packed_list =
  let page_of =
    if page_size > 0 && page_size land (page_size - 1) = 0 then (
      let shift = ref 0 in
      while 1 lsl !shift < page_size do
        incr shift
      done;
      let shift = !shift in
      fun addr -> addr lsr shift)
    else fun addr -> addr / page_size
  in
  let page_table = Vm.Page_table.create ~page_size () in
  let tlb = Vm.Tlb.create ~entries:tlb_entries ~page_table in
  (* Request windows index the concatenation of the packed traces, exactly
     like [Machine.System.run_packed_requests] over the same stream. A
     request's latency is the sum of its accesses' per-access costs, which
     mirror the machine's scalar path arithmetically: gap + flat latency for
     uncached, gap + hit_cycles + the penalties of this access's own miss /
     writeback / TLB miss for everything else. Per-access miss and writeback
     outcomes come from {!Stack_dist.access_traced} at the group's
     associativity; the TLB outcome from the miss-counter delta around the
     real lookup (the consecutive-same-page memo is a guaranteed hit). *)
  let req = match requests with None -> [||] | Some r -> r in
  let track = match requests with Some _ -> true | None -> false in
  let n_total_all =
    List.fold_left (fun acc p -> acc + Memtrace.Packed.length p) 0 packed_list
  in
  Array.iteri
    (fun i (start, stop) ->
      if start < 0 || start >= stop || stop > n_total_all then
        invalid_arg "Sweep: request span out of bounds";
      if i > 0 && start < snd req.(i - 1) then
        invalid_arg "Sweep: request spans must be sorted and disjoint")
    req;
  let lat =
    Latency.Builder.create ~initial_capacity:(max 16 (Array.length req)) ()
  in
  let gi = ref 0 in
  let next_req = ref 0 in
  let in_window = ref false in
  let win_cycles = ref 0 in
  let n_total = ref 0 in
  let gap_sum = ref 0 in
  let n_uncached = ref 0 in
  let memo_hits = ref 0 in
  let last_page = ref min_int in
  List.iter
    (fun packed ->
      let n = Memtrace.Packed.length packed in
      let addrs = Memtrace.Packed.raw_addrs packed in
      let gaps = Memtrace.Packed.raw_gaps packed in
      let kinds = Memtrace.Packed.raw_kinds packed in
      n_total := !n_total + n;
      for i = 0 to n - 1 do
        let addr = Bigarray.Array1.unsafe_get addrs i in
        let gap = Bigarray.Array1.unsafe_get gaps i in
        gap_sum := !gap_sum + gap;
        (if
           track
           && (not !in_window)
           && !next_req < Array.length req
           && !gi = fst req.(!next_req)
         then begin
           in_window := true;
           win_cycles := 0
         end);
        let cost = ref gap in
        (if in_ranges uncached addr then begin
           incr n_uncached;
           cost := !cost + timing.Timing.uncached_cycles
         end
         else begin
           let page = page_of addr in
           (if page = !last_page then incr memo_hits
            else begin
              let m0 = Vm.Tlb.misses tlb in
              ignore (Vm.Tlb.lookup_page_quick tlb page);
              if Vm.Tlb.misses tlb <> m0 then
                cost := !cost + timing.Timing.tlb_miss_penalty;
              last_page := page
            end);
           cost := !cost + timing.Timing.hit_cycles;
           let feed g =
             let kind =
               Memtrace.Packed.kind_of_code
                 (Char.code (Bigarray.Array1.unsafe_get kinds i))
             in
             if !in_window then begin
               let seen =
                 Stack_dist.access_traced (Array.unsafe_get groups g) ~kind
                   ~ways:(Array.unsafe_get group_ways g)
                   addr
               in
               if seen land 1 = 0 then
                 cost := !cost + timing.Timing.miss_penalty;
               if seen land 2 <> 0 then
                 cost := !cost + timing.Timing.writeback_penalty
             end
             else Stack_dist.access (Array.unsafe_get groups g) ~kind addr
           in
           match page_map with
           | None -> feed 0
           | Some map -> (
               match Hashtbl.find_opt map page with
               | Some g when g >= 0 -> feed g
               | Some _ ->
                   (* pinned page: a guaranteed hit in its preloaded columns,
                      but only inside the pinned byte range *)
                   if not (in_ranges scratch addr) then raise Infeasible
               | None -> raise Infeasible)
         end);
        (if !in_window then begin
           win_cycles := !win_cycles + !cost;
           if !gi = snd req.(!next_req) - 1 then begin
             Latency.Builder.push lat !win_cycles;
             in_window := false;
             incr next_req
           end
         end);
        incr gi
      done)
    packed_list;
  Vm.Tlb.note_hits tlb !memo_hits;
  let misses = ref 0 in
  let evictions = ref 0 in
  let writebacks = ref 0 in
  Array.iteri
    (fun g engine ->
      let ways = Array.unsafe_get group_ways g in
      misses := !misses + Stack_dist.misses engine ~ways;
      evictions := !evictions + Stack_dist.evictions engine ~ways;
      writebacks := !writebacks + Stack_dist.writebacks engine ~ways)
    groups;
  let resolved = !n_total - !n_uncached in
  let tlb_hits = Vm.Tlb.hits tlb in
  let tlb_misses = Vm.Tlb.misses tlb in
  let cycles =
    setup_cycles + !gap_sum
    + (resolved * timing.Timing.hit_cycles)
    + (!n_uncached * timing.Timing.uncached_cycles)
    + (!misses * timing.Timing.miss_penalty)
    + (!writebacks * timing.Timing.writeback_penalty)
    + (tlb_misses * timing.Timing.tlb_miss_penalty)
  in
  let stats = Cache.Stats.create ~ways:cache.Sassoc.ways in
  stats.Cache.Stats.accesses <- resolved;
  stats.Cache.Stats.hits <- resolved - !misses;
  stats.Cache.Stats.misses <- !misses;
  stats.Cache.Stats.evictions <- !evictions;
  stats.Cache.Stats.writebacks <- !writebacks;
  {
    Run_stats.instructions = !gap_sum + !n_total;
    cycles;
    memory_accesses = !n_total;
    (* [pin_region] does not register a machine scratchpad region; pinned
       traffic is ordinary (always-hitting) cached traffic *)
    scratchpad_accesses = 0;
    tlb_hits;
    tlb_misses;
    l2_hits = 0;
    l2_misses = 0;
    prefetches = 0;
    mshr_merges = 0;
    mshr_stalls = 0;
    dram_row_hits = 0;
    dram_row_conflicts = 0;
    cache = stats;
    requests =
      (if track then Latency.Builder.build lat else Latency.empty);
  }

(* The sampled twin of [eval]: the same routing loop (uncached ranges, exact
   TLB replay with the same-page memo, page -> group attribution), but each
   group is a SHARDS-style {!Stack_dist.Sampled} estimator, so only accesses
   landing in its selected sets cost engine work. Per-request latency makes
   no sense on a subsample, so there are no request windows; the result is
   the closed-form cycle count of [eval] with the exact per-group miss and
   writeback totals replaced by their scaled estimates — a float. *)
let eval_sampled ~timing ~page_size ~tlb_entries ~scratch ~uncached ~page_map
    ~(groups : Stack_dist.Sampled.t array) ~group_ways ~setup_cycles
    packed_list =
  let page_of =
    if page_size > 0 && page_size land (page_size - 1) = 0 then (
      let shift = ref 0 in
      while 1 lsl !shift < page_size do
        incr shift
      done;
      let shift = !shift in
      fun addr -> addr lsr shift)
    else fun addr -> addr / page_size
  in
  let page_table = Vm.Page_table.create ~page_size () in
  let tlb = Vm.Tlb.create ~entries:tlb_entries ~page_table in
  let n_total = ref 0 in
  let gap_sum = ref 0 in
  let n_uncached = ref 0 in
  let memo_hits = ref 0 in
  let last_page = ref min_int in
  List.iter
    (fun packed ->
      let n = Memtrace.Packed.length packed in
      let addrs = Memtrace.Packed.raw_addrs packed in
      let gaps = Memtrace.Packed.raw_gaps packed in
      let kinds = Memtrace.Packed.raw_kinds packed in
      n_total := !n_total + n;
      for i = 0 to n - 1 do
        let addr = Bigarray.Array1.unsafe_get addrs i in
        gap_sum := !gap_sum + Bigarray.Array1.unsafe_get gaps i;
        if in_ranges uncached addr then incr n_uncached
        else begin
          let page = page_of addr in
          (if page = !last_page then incr memo_hits
           else begin
             ignore (Vm.Tlb.lookup_page_quick tlb page);
             last_page := page
           end);
          let feed g =
            let kind =
              Memtrace.Packed.kind_of_code
                (Char.code (Bigarray.Array1.unsafe_get kinds i))
            in
            Stack_dist.Sampled.access (Array.unsafe_get groups g) ~kind addr
          in
          match page_map with
          | None -> feed 0
          | Some map -> (
              match Hashtbl.find_opt map page with
              | Some g when g >= 0 -> feed g
              | Some _ ->
                  if not (in_ranges scratch addr) then raise Infeasible
              | None -> raise Infeasible)
        end
      done)
    packed_list;
  Vm.Tlb.note_hits tlb !memo_hits;
  let misses = ref 0. in
  let writebacks = ref 0. in
  Array.iteri
    (fun g engine ->
      let ways = Array.unsafe_get group_ways g in
      misses := !misses +. Stack_dist.Sampled.misses_est engine ~ways;
      writebacks :=
        !writebacks +. Stack_dist.Sampled.writebacks_est engine ~ways)
    groups;
  let resolved = !n_total - !n_uncached in
  let tlb_misses = Vm.Tlb.misses tlb in
  float_of_int
    (setup_cycles + !gap_sum
    + (resolved * timing.Timing.hit_cycles)
    + (!n_uncached * timing.Timing.uncached_cycles)
    + (tlb_misses * timing.Timing.tlb_miss_penalty))
  +. (!misses *. float_of_int timing.Timing.miss_penalty)
  +. (!writebacks *. float_of_int timing.Timing.writeback_penalty)

let standard ?translate ?requests ~cache ~timing ~page_size ~tlb_entries
    packed_list =
  if not (feasible_cache cache) then None
  else
    let engine =
      Stack_dist.create ?translate ~line_size:cache.Sassoc.line_size
        ~sets:cache.Sassoc.sets ~max_ways:cache.Sassoc.ways ()
    in
    (* [Infeasible] cannot be raised without a page map. *)
    Some
      (eval ?requests ~cache ~timing ~page_size ~tlb_entries
         ~scratch:no_ranges ~uncached:no_ranges ~page_map:None
         ~groups:[| engine |] ~group_ways:[| cache.Sassoc.ways |]
         ~setup_cycles:0 packed_list)

let standard_sampled ?translate ?seed ?min_sets ?budget ~rate ~cache ~timing
    ~page_size ~tlb_entries packed_list =
  if not (feasible_cache cache) then None
  else
    let engine =
      Stack_dist.Sampled.create ?translate ?seed ?min_sets ?budget ~rate
        ~line_size:cache.Sassoc.line_size ~sets:cache.Sassoc.sets
        ~max_ways:cache.Sassoc.ways ()
    in
    Some
      (eval_sampled ~timing ~page_size ~tlb_entries ~scratch:no_ranges
         ~uncached:no_ranges ~page_map:None ~groups:[| engine |]
         ~group_ways:[| cache.Sassoc.ways |] ~setup_cycles:0 packed_list)

(* The partition decomposition shared by the exact evaluator and the sampled
   estimator: byte ranges, the page -> group map, the per-group way counts
   (one group per distinct cached column mask) and the copy-in charge.
   Raises [Infeasible] exactly where {!partitioned} reports [None]. *)
type plan = {
  plan_scratch : ranges;
  plan_uncached : ranges;
  plan_page_map : (int, int) Hashtbl.t;
  plan_group_ways : int array;
  plan_setup : int;
}

let decompose ~cache ~timing ~page_size ~part ~copy_in =
  let line_size = cache.Sassoc.line_size in
  let page_map : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let claim ~group base size =
    if size > 0 then
      let first = base / page_size in
      let last = (base + size - 1) / page_size in
      for page = first to last do
        match Hashtbl.find_opt page_map page with
        | None -> Hashtbl.add page_map page group
        | Some g when g = group -> ()
        | Some _ -> raise Infeasible
      done
  in
  let scratch = ref [] in
  let uncached = ref [] in
  let scratch_mask = ref Bitmask.empty in
  let masks = ref [] in
  let ways_rev = ref [] in
  let n_groups = ref 0 in
  let setup = ref 0 in
  List.iter
    (fun pl ->
      let region = pl.Partition.region in
      let size = region.Region.size in
      match (pl.Partition.role, pl.Partition.columns) with
      | Partition.Uncached, _ ->
          uncached := (pl.Partition.base, size) :: !uncached
      | (Partition.Scratchpad | Partition.Cached), None -> raise Infeasible
      | Partition.Scratchpad, Some mask ->
          (* Same copy-in charge [Partition.apply] would issue; the
             machine folds it into the first run's cycle delta. *)
          if List.mem region.Region.var copy_in then begin
            let lines = (size + line_size - 1) / line_size in
            setup :=
              !setup
              + lines
                * (timing.Timing.hit_cycles + timing.Timing.miss_penalty)
          end;
          scratch := (pl.Partition.base, size) :: !scratch;
          scratch_mask := Bitmask.union !scratch_mask mask;
          claim ~group:(-1) pl.Partition.base size
      | Partition.Cached, Some mask ->
          let group =
            match
              List.find_opt (fun (m, _) -> Bitmask.equal m mask) !masks
            with
            | Some (_, g) -> g
            | None ->
                let ways = Bitmask.count mask in
                if ways = 0 then raise Infeasible;
                let g = !n_groups in
                incr n_groups;
                ways_rev := ways :: !ways_rev;
                masks := (mask, g) :: !masks;
                g
          in
          claim ~group pl.Partition.base size)
    part.Partition.placements;
  (* Each cached group is an isolated LRU cache only if its columns are
     disjoint from every other group's and from the pinned scratchpad
     columns (whose preloaded lines would otherwise occupy group ways). *)
  let rec disjoint seen = function
    | [] -> ()
    | m :: rest ->
        if not (Bitmask.is_empty (Bitmask.inter m seen)) then raise Infeasible;
        disjoint (Bitmask.union m seen) rest
  in
  disjoint !scratch_mask (List.rev_map fst !masks);
  {
    plan_scratch = ranges_of !scratch;
    plan_uncached = ranges_of !uncached;
    plan_page_map = page_map;
    plan_group_ways = Array.of_list (List.rev !ways_rev);
    plan_setup = !setup;
  }

let partitioned ?requests ~cache ~timing ~page_size ~tlb_entries ~part
    ~copy_in packed_list =
  if not (feasible_cache cache) then None
  else
    try
      let plan = decompose ~cache ~timing ~page_size ~part ~copy_in in
      let groups =
        Array.map
          (fun ways ->
            Stack_dist.create ~line_size:cache.Sassoc.line_size
              ~sets:cache.Sassoc.sets ~max_ways:ways ())
          plan.plan_group_ways
      in
      Some
        (eval ?requests ~cache ~timing ~page_size ~tlb_entries
           ~scratch:plan.plan_scratch ~uncached:plan.plan_uncached
           ~page_map:(Some plan.plan_page_map) ~groups
           ~group_ways:plan.plan_group_ways ~setup_cycles:plan.plan_setup
           packed_list)
    with Infeasible -> None

let partitioned_sampled ?seed ?min_sets ?budget ~rate ~cache ~timing
    ~page_size ~tlb_entries ~part ~copy_in packed_list =
  if not (feasible_cache cache) then None
  else
    try
      let plan = decompose ~cache ~timing ~page_size ~part ~copy_in in
      let groups =
        Array.map
          (fun ways ->
            Stack_dist.Sampled.create ?seed ?min_sets ?budget ~rate
              ~line_size:cache.Sassoc.line_size ~sets:cache.Sassoc.sets
              ~max_ways:ways ())
          plan.plan_group_ways
      in
      Some
        (eval_sampled ~timing ~page_size ~tlb_entries
           ~scratch:plan.plan_scratch ~uncached:plan.plan_uncached
           ~page_map:(Some plan.plan_page_map) ~groups
           ~group_ways:plan.plan_group_ways ~setup_cycles:plan.plan_setup
           packed_list)
    with Infeasible -> None

let masked ?requests ~cache ~timing ~page_size ~tlb_entries ~regions
    packed_list =
  if not (feasible_cache cache) then None
  else
    try
      let line_size = cache.Sassoc.line_size in
      let page_map : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let claim ~group base size =
        if size > 0 then
          let first = base / page_size in
          let last = (base + size - 1) / page_size in
          for page = first to last do
            match Hashtbl.find_opt page_map page with
            | None -> Hashtbl.add page_map page group
            | Some g when g = group -> ()
            | Some _ -> raise Infeasible
          done
      in
      let masks = ref [] in
      let engines = ref [] in
      let n_groups = ref 0 in
      List.iter
        (fun (base, size, mask) ->
          let group =
            match
              List.find_opt (fun (m, _) -> Bitmask.equal m mask) !masks
            with
            | Some (_, g) -> g
            | None ->
                let ways = Bitmask.count mask in
                if ways = 0 then raise Infeasible;
                let g = !n_groups in
                incr n_groups;
                engines :=
                  Stack_dist.create ~line_size ~sets:cache.Sassoc.sets
                    ~max_ways:ways ()
                  :: !engines;
                masks := (mask, g) :: !masks;
                g
          in
          claim ~group base size)
        regions;
      (* each group must be an isolated LRU cache: pairwise-disjoint masks *)
      let rec disjoint seen = function
        | [] -> ()
        | m :: rest ->
            if not (Bitmask.is_empty (Bitmask.inter m seen)) then
              raise Infeasible;
            disjoint (Bitmask.union m seen) rest
      in
      disjoint Bitmask.empty (List.rev_map fst !masks);
      let groups = Array.of_list (List.rev !engines) in
      let group_ways = Array.map Stack_dist.max_ways groups in
      Some
        (eval ?requests ~cache ~timing ~page_size ~tlb_entries
           ~scratch:no_ranges ~uncached:no_ranges ~page_map:(Some page_map)
           ~groups ~group_ways ~setup_cycles:0 packed_list)
    with Infeasible -> None
