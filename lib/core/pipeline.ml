type weight_method =
  | Profile_based
  | Program_analysis

(* Interpreting the IF program is by far the most expensive step of a
   configuration sweep, and every sweep point replays the same traces and
   re-derives the same regions. The memo caches them per pipeline value.
   Guarded by a mutex because the experiment runner shares nothing {e
   between} tasks but a future caller might share a pipeline across domains;
   computation happens outside the lock (trace interpretation is slow and
   the lock is shared), with the first finisher winning so all callers see
   one value. *)
type memo = {
  lock : Mutex.t;
  traces : (string, Memtrace.Trace.t) Hashtbl.t;  (* per proc *)
  packed : (string, Memtrace.Packed.t) Hashtbl.t;  (* per proc *)
  copy_in : (string, string list) Hashtbl.t;  (* per proc *)
  regions : (string, Layout.Region.t list) Hashtbl.t;  (* per meth:proc *)
  app : (string, Layout.Region.t list * string list) Hashtbl.t;
      (* combined regions and copy-in vars per meth:procs *)
}

type t = {
  program : Ir.Ast.program;
  init : string -> int -> int;
  cache : Cache.Sassoc.config;
  page_size : int;
  tlb_entries : int;
  default_trip_count : int;
  address_map : Layout.Address_map.t;
  memo : memo;
}

let make ?(page_size = 256) ?(tlb_entries = 32) ?(init = fun _ _ -> 0)
    ?(default_trip_count = Ir.Static_analysis.default_trip_count) ~cache
    program =
  Ir.Ast.validate program;
  let vars =
    List.map
      (fun v -> (v.Ir.Ast.name, Ir.Ast.var_size_bytes v))
      program.Ir.Ast.vars
  in
  let address_map =
    Layout.Address_map.build ~page_size
      ~column_size:(Cache.Sassoc.column_size_bytes cache)
      ~vars ()
  in
  let memo =
    {
      lock = Mutex.create ();
      traces = Hashtbl.create 8;
      packed = Hashtbl.create 8;
      copy_in = Hashtbl.create 8;
      regions = Hashtbl.create 8;
      app = Hashtbl.create 4;
    }
  in
  { program; init; cache; page_size; tlb_entries; default_trip_count;
    address_map; memo }

let memo_get memo tbl key compute =
  Mutex.lock memo.lock;
  let cached = Hashtbl.find_opt tbl key in
  Mutex.unlock memo.lock;
  match cached with
  | Some v -> v
  | None ->
      let v = compute () in
      Mutex.lock memo.lock;
      let v =
        match Hashtbl.find_opt tbl key with
        | Some v -> v
        | None ->
            Hashtbl.add tbl key v;
            v
      in
      Mutex.unlock memo.lock;
      v

let meth_key = function
  | Profile_based -> "p"
  | Program_analysis -> "a"

let columns t = t.cache.Cache.Sassoc.ways
let column_size t = Cache.Sassoc.column_size_bytes t.cache

let trace_of t ~proc =
  memo_get t.memo t.memo.traces proc (fun () ->
      Ir.Interp.trace_of ~init:t.init t.program ~proc
        ~layout:(Layout.Address_map.to_ir_layout t.address_map))

let packed_trace_of t ~proc =
  memo_get t.memo t.memo.packed proc (fun () ->
      Ir.Interp.packed_trace_of ~init:t.init t.program ~proc
        ~layout:(Layout.Address_map.to_ir_layout t.address_map))

let vars_of_proc t ~proc =
  List.map
    (fun name ->
      match Ir.Ast.find_var t.program name with
      | Some v -> (name, Ir.Ast.var_size_bytes v)
      | None -> assert false)
    (Ir.Ast.vars_referenced t.program ~proc)

let summaries t ~proc ~meth =
  match meth with
  | Profile_based -> Profile.Lifetime.of_trace (trace_of t ~proc)
  | Program_analysis ->
      Ir.Static_analysis.analyze ~default_trip_count:t.default_trip_count
        t.program ~proc

(* Classifier mapping an access to its region name under the current
   address map and column size: exact per-subarray profiling. *)
let region_classifier t ~vars =
  let spans =
    List.map
      (fun (name, size) ->
        (name, Layout.Address_map.base_of t.address_map name, size))
      vars
  in
  let s = column_size t in
  fun (a : Memtrace.Access.t) ->
    match a.Memtrace.Access.var with
    | None -> None
    | Some v -> (
        match List.find_opt (fun (name, _, _) -> name = v) spans with
        | None -> None
        | Some (_, base, size) ->
            if size <= s then Some v
            else Some (Printf.sprintf "%s#%d" v ((a.Memtrace.Access.addr - base) / s)))

let region_summaries_of_trace t ~vars trace =
  Profile.Lifetime.of_trace_classified trace
    ~classify:(region_classifier t ~vars)

let regions t ~proc ~meth =
  memo_get t.memo t.memo.regions
    (meth_key meth ^ ":" ^ proc)
    (fun () ->
      let vars = vars_of_proc t ~proc in
      let region_summaries =
        match meth with
        | Profile_based -> region_summaries_of_trace t ~vars (trace_of t ~proc)
        | Program_analysis -> []
      in
      Layout.Region.split_vars ~region_summaries ~column_size:(column_size t)
        ~vars ~summaries:(summaries t ~proc ~meth) ())

let partition ?forced_scratchpad ?mode t ~proc ~scratchpad_columns ~meth =
  let spec =
    Layout.Partition.spec ~columns:(columns t) ~column_size:(column_size t)
      ~scratchpad_columns
  in
  Layout.Partition.compute ?forced_scratchpad ?mode ~spec
    ~address_map:t.address_map
    (regions t ~proc ~meth)

(* Variables both read and written during a run hold in-place working data:
   pinning them to scratchpad requires a real copy-in (see
   {!Layout.Partition.apply}). *)
let copy_in_vars trace =
  let reads = Hashtbl.create 16 and writes = Hashtbl.create 16 in
  Memtrace.Trace.iter
    (fun a ->
      match a.Memtrace.Access.var with
      | None -> ()
      | Some v -> (
          match a.Memtrace.Access.kind with
          | Memtrace.Access.Read | Memtrace.Access.Ifetch ->
              Hashtbl.replace reads v ()
          | Memtrace.Access.Write -> Hashtbl.replace writes v ()))
    trace;
  Hashtbl.fold
    (fun v () acc -> if Hashtbl.mem writes v then v :: acc else acc)
    reads []

let copy_in_of t ~proc =
  memo_get t.memo t.memo.copy_in proc (fun () ->
      copy_in_vars (trace_of t ~proc))

let fresh_system t =
  Machine.System.create
    (Machine.System.config ~page_size:t.page_size ~tlb_entries:t.tlb_entries
       t.cache)

let run_partitioned ?forced_scratchpad ?mode t ~proc ~scratchpad_columns ~meth =
  let part =
    partition ?forced_scratchpad ?mode t ~proc ~scratchpad_columns ~meth
  in
  let system = fresh_system t in
  Layout.Partition.apply ~copy_in:(copy_in_of t ~proc) part system;
  let stats = Machine.System.run_packed system (packed_trace_of t ~proc) in
  (stats, part)

let run_standard t ~proc =
  let packed = packed_trace_of t ~proc in
  match
    Sweep.standard ~cache:t.cache ~timing:Machine.Timing.default
      ~page_size:t.page_size ~tlb_entries:t.tlb_entries [ packed ]
  with
  | Some stats -> stats
  | None -> Machine.System.run_packed (fresh_system t) packed

let best_split ?(allow_uncached = true) ?mode ?sample_rate ?(jobs = 1) t
    ~proc ~meth =
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf
         "Pipeline.best_split: jobs must be a positive domain count, got %d"
         jobs);
  if jobs > t.cache.Cache.Sassoc.sets then
    invalid_arg
      (Printf.sprintf "Pipeline.best_split: more shards (jobs=%d) than sets (%d)"
         jobs t.cache.Cache.Sassoc.sets);
  let k = columns t in
  let packed = packed_trace_of t ~proc in
  let copy_in = copy_in_of t ~proc in
  (* Each candidate point only needs its cycle count to rank; the
     stack-distance evaluator supplies it without a machine replay whenever
     the partition decomposes into isolated LRU groups — sharded over [jobs]
     worker domains when asked, which changes no digit of any count. With
     [sample_rate] the ranking uses the SHARDS-sampled estimator instead —
     cheaper still — while the winner below is always replayed exactly. *)
  let exact_cycles part =
    match
      (if jobs = 1 then
         Sweep.partitioned ~cache:t.cache ~timing:Machine.Timing.default
           ~page_size:t.page_size ~tlb_entries:t.tlb_entries ~part ~copy_in
           [ packed ]
       else
         Sweep.partitioned_parallel ~jobs ~cache:t.cache
           ~timing:Machine.Timing.default ~page_size:t.page_size
           ~tlb_entries:t.tlb_entries ~part ~copy_in [ packed ])
    with
    | Some stats -> float_of_int stats.Machine.Run_stats.cycles
    | None ->
        let system = fresh_system t in
        Layout.Partition.apply ~copy_in part system;
        float_of_int
          (Machine.System.run_packed system packed).Machine.Run_stats.cycles
  in
  let point_cycles part =
    match sample_rate with
    | None -> exact_cycles part
    | Some rate -> (
        match
          Sweep.partitioned_sampled ~rate ~cache:t.cache
            ~timing:Machine.Timing.default ~page_size:t.page_size
            ~tlb_entries:t.tlb_entries ~part ~copy_in [ packed ]
        with
        | Some est -> est
        | None -> exact_cycles part)
  in
  let candidates =
    List.filter_map
      (fun p ->
        let part = partition ?mode t ~proc ~scratchpad_columns:p ~meth in
        if (not allow_uncached) && Layout.Partition.uncached_regions part <> []
        then None
        else Some (p, point_cycles part))
      (List.init (k + 1) (fun p -> p))
  in
  match candidates with
  | [] -> invalid_arg "Pipeline.best_split: no feasible split"
  | first :: rest ->
      let best_p, _ =
        List.fold_left
          (fun ((_, b) as best) ((_, c) as cand) ->
            if c < b then cand else best)
          first rest
      in
      (* Replay the winner exactly: callers get the full machine statistics
         (per-way fills, three-C classification), not only the fields the
         closed form covers. *)
      ( best_p,
        fst (run_partitioned ?mode t ~proc ~scratchpad_columns:best_p ~meth) )

let dynamic_schedule ?mode t ~procs ~meth =
  let phased =
    List.map
      (fun proc ->
        let p, _ = best_split ~allow_uncached:false ?mode t ~proc ~meth in
        let part = partition ?mode t ~proc ~scratchpad_columns:p ~meth in
        let trace = trace_of t ~proc in
        ( Layout.Dynamic.phase ~copy_in:(copy_in_of t ~proc) ~label:proc part,
          trace ))
      procs
  in
  ( Layout.Dynamic.schedule (List.map fst phased),
    List.map (fun (ph, trace) -> (ph.Layout.Dynamic.label, trace)) phased )

let run_dynamic_detailed ?mode t ~procs ~meth =
  let schedule, traces = dynamic_schedule ?mode t ~procs ~meth in
  let system = fresh_system t in
  Layout.Dynamic.run ~system ~traces schedule

let run_dynamic ?mode t ~procs ~meth =
  fst (run_dynamic_detailed ?mode t ~procs ~meth)

(* Merge per-procedure static summaries into whole-application ones by
   laying procedure clocks end to end (procedures run in sequence). *)
let combined_static_summaries t ~procs =
  let table : (string, Profile.Lifetime.summary) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let offset = ref 0 in
  List.iter
    (fun proc ->
      let cost =
        int_of_float
          (Ir.Static_analysis.cost_of_proc
             ~default_trip_count:t.default_trip_count t.program ~proc)
      in
      List.iter
        (fun (name, s) ->
          let open Profile.Lifetime in
          let shifted =
            summary ~accesses:s.accesses ~first:(s.first + !offset)
              ~last:(s.last + !offset) ()
          in
          match Hashtbl.find_opt table name with
          | None ->
              Hashtbl.add table name shifted;
              order := name :: !order
          | Some prev ->
              Hashtbl.replace table name
                (summary
                   ~accesses:(prev.accesses +. shifted.accesses)
                   ~first:(min prev.first shifted.first)
                   ~last:(max prev.last shifted.last) ()))
        (Ir.Static_analysis.analyze ~default_trip_count:t.default_trip_count
           t.program ~proc);
      offset := !offset + cost)
    procs;
  List.rev_map (fun name -> (name, Hashtbl.find table name)) !order

(* Regions and copy-in variables of the combined application trace do not
   depend on the scratchpad split, so the whole-application sweep derives
   them once per (method, procedure list). *)
let static_app_layout t ~procs ~meth =
  memo_get t.memo t.memo.app
    (meth_key meth ^ ":" ^ String.concat "\x00" procs)
    (fun () ->
      let traces = List.map (fun proc -> trace_of t ~proc) procs in
      let combined = Memtrace.Trace.concat traces in
      let summaries =
        match meth with
        | Profile_based -> Profile.Lifetime.of_trace combined
        | Program_analysis -> combined_static_summaries t ~procs
      in
      let vars =
        let seen = Hashtbl.create 16 in
        List.concat_map
          (fun proc ->
            List.filter
              (fun (name, _) ->
                if Hashtbl.mem seen name then false
                else begin
                  Hashtbl.add seen name ();
                  true
                end)
              (vars_of_proc t ~proc))
          procs
      in
      let region_summaries =
        match meth with
        | Profile_based -> region_summaries_of_trace t ~vars combined
        | Program_analysis -> []
      in
      let regions =
        Layout.Region.split_vars ~region_summaries
          ~column_size:(column_size t) ~vars ~summaries ()
      in
      (regions, copy_in_vars combined))

let run_static_app ?mode t ~procs ~scratchpad_columns ~meth =
  let regions, copy_in = static_app_layout t ~procs ~meth in
  let spec =
    Layout.Partition.spec ~columns:(columns t) ~column_size:(column_size t)
      ~scratchpad_columns
  in
  let part =
    Layout.Partition.compute ?mode ~spec ~address_map:t.address_map regions
  in
  let packed = List.map (fun proc -> packed_trace_of t ~proc) procs in
  match
    Sweep.partitioned ~cache:t.cache ~timing:Machine.Timing.default
      ~page_size:t.page_size ~tlb_entries:t.tlb_entries ~part ~copy_in packed
  with
  | Some stats -> stats
  | None ->
      let system = fresh_system t in
      Layout.Partition.apply ~copy_in part system;
      List.fold_left
        (fun acc p ->
          Machine.Run_stats.add acc (Machine.System.run_packed system p))
        (Machine.Run_stats.zero ~ways:(columns t))
        packed
