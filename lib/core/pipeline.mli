(** The end-to-end flow the paper describes: take an IF program, obtain
    per-variable weights (by profiling a run or by static analysis), lay its
    variables out over a column cache, and measure the result on the machine
    model.

    This is the module the experiments and examples drive; everything in it
    is a thin composition of the substrate libraries. *)

(** Section 3.1.1's two ways of producing interference weights. *)
type weight_method =
  | Profile_based  (** run on representative data, exact lifetimes *)
  | Program_analysis  (** estimate from the IF, no execution *)

type memo
(** Per-pipeline cache of interpreted traces, derived regions and copy-in
    sets. Sweeps evaluate many configuration points over the same
    procedures; the expensive trace interpretation happens once per
    procedure instead of once per point. Thread-safe; transparent to
    callers (every cached value is deterministic in the pipeline's
    fields). *)

type t = {
  program : Ir.Ast.program;
  init : string -> int -> int;
  cache : Cache.Sassoc.config;
  page_size : int;
  tlb_entries : int;
  default_trip_count : int;
      (** trip count assumed for loops whose bounds the static analysis
          cannot resolve to constants; calibrates {!Program_analysis} *)
  address_map : Layout.Address_map.t;
      (** fixed "linker" placement of every program variable; repartitioning
          never moves data *)
  memo : memo;
}

val make :
  ?page_size:int ->
  ?tlb_entries:int ->
  ?init:(string -> int -> int) ->
  ?default_trip_count:int ->
  cache:Cache.Sassoc.config ->
  Ir.Ast.program ->
  t
(** Defaults: 256-byte pages, 32 TLB entries, zero-initialised data,
    {!Ir.Static_analysis.default_trip_count} for unresolvable loop
    bounds. *)

val columns : t -> int
val column_size : t -> int

val trace_of : t -> proc:string -> Memtrace.Trace.t

val packed_trace_of : t -> proc:string -> Memtrace.Packed.t
(** [trace_of] in columnar form, with no boxed [Access.t] built along the
    way — feed it to {!Machine.System.run_packed}. *)

val summaries :
  t -> proc:string -> meth:weight_method -> (string * Profile.Lifetime.summary) list

val regions : t -> proc:string -> meth:weight_method -> Layout.Region.t list

val partition :
  ?forced_scratchpad:string list ->
  ?mode:Layout.Partition.mode ->
  t ->
  proc:string ->
  scratchpad_columns:int ->
  meth:weight_method ->
  Layout.Partition.t

val fresh_system : t -> Machine.System.t
(** A machine with this experiment's cache geometry and an untouched
    mapping. *)

val run_partitioned :
  ?forced_scratchpad:string list ->
  ?mode:Layout.Partition.mode ->
  t ->
  proc:string ->
  scratchpad_columns:int ->
  meth:weight_method ->
  Machine.Run_stats.t * Layout.Partition.t
(** Lay the procedure out for the given scratchpad/cache split on a fresh
    system and replay its trace. This is one data point of Figure 4(a-c). *)

val run_standard : t -> proc:string -> Machine.Run_stats.t
(** Baseline: no mapping at all — the whole cache is one set-associative
    cache shared by everything. *)

val best_split :
  ?allow_uncached:bool ->
  ?mode:Layout.Partition.mode ->
  ?sample_rate:float ->
  ?jobs:int ->
  t ->
  proc:string ->
  meth:weight_method ->
  int * Machine.Run_stats.t
(** Try every scratchpad/cache split and return (scratchpad_columns, stats)
    of the cheapest. [allow_uncached] (default true) also considers splits
    that leave some data uncached; the dynamic runner passes [false].
    [sample_rate] ranks the candidate points with the SHARDS-sampled
    estimator ({!Sweep.partitioned_sampled}) at that rate instead of the
    exact closed form; the returned stats always come from an exact machine
    replay of the winning split, so only the {e choice} of split — not the
    reported numbers — can be perturbed by sampling noise. [jobs] (default
    1) routes the exact ranking through {!Sweep.partitioned_parallel} with
    that many worker domains — byte-identical ranking, so the chosen split
    and the reported stats are independent of [jobs]. Raises
    [Invalid_argument] when [jobs < 1] or [jobs] exceeds the set count. *)

val dynamic_schedule :
  ?mode:Layout.Partition.mode ->
  t -> procs:string list -> meth:weight_method ->
  Layout.Dynamic.schedule * (string * Memtrace.Trace.t) list
(** Build the Section 3.2 schedule: each procedure's best
    (uncached-free) layout as one phase, plus the traces keyed by phase
    label, ready for {!Layout.Dynamic.run}. *)

val run_dynamic_detailed :
  ?mode:Layout.Partition.mode ->
  t -> procs:string list -> meth:weight_method ->
  Machine.Run_stats.t * Layout.Dynamic.transition list
(** Run the dynamic schedule on a fresh system; also returns what each phase
    boundary actually cost (tint-table writes, PTE writes, preloads). *)

val run_dynamic :
  ?mode:Layout.Partition.mode ->
  t -> procs:string list -> meth:weight_method -> Machine.Run_stats.t
(** The column-cache result of Figure 4(d): one system, each procedure
    preceded by an instantaneous remap to its own best layout (computed with
    [allow_uncached:false]), traces replayed back to back. *)

val run_static_app :
  ?mode:Layout.Partition.mode ->
  t -> procs:string list -> scratchpad_columns:int -> meth:weight_method ->
  Machine.Run_stats.t
(** The fixed-partition baseline of Figure 4(d): one layout computed from
    the procedures' combined trace, applied once, all procedures replayed
    through it. *)
