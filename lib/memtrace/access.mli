(** A single memory reference issued by the simulated processor.

    Accesses are the atoms of every trace in the system: the interpreter in
    {!module:Ir}, the hand-written workloads and the synthetic generators all
    produce values of this type, and the cache/machine simulators consume
    them. *)

(** Kind of memory operation. [Ifetch] models instruction fetches so that
    unified caches can be simulated; the paper's experiments are data-side
    only but the type keeps the door open. *)
type kind =
  | Read
  | Write
  | Ifetch

type t = {
  addr : int;  (** byte address *)
  kind : kind;
  var : string option;
      (** symbolic program variable this access belongs to, when known; used
          by the profiler to build lifetime intervals *)
  gap : int;
      (** number of non-memory instructions executed since the previous
          access; the access itself counts as one further instruction *)
}

val make : ?kind:kind -> ?var:string -> ?gap:int -> int -> t
(** [make addr] builds an access; [kind] defaults to [Read], [gap] to [0]. *)

val read : ?var:string -> ?gap:int -> int -> t
val write : ?var:string -> ?gap:int -> int -> t

val instructions : t -> int
(** [instructions a] is [a.gap + 1]: the instruction cost of reaching and
    executing this access. *)

val line : line_size:int -> t -> int
(** Cache-line address (byte address divided by [line_size]). *)

val with_addr : t -> int -> t
(** Same access at a new address. Raises [Invalid_argument] on a negative
    address, upholding the invariant {!make} establishes — which is what
    lets {!Trace.shift} reject an offset that would wrap below zero. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t
(** Inverse of {!to_string}. Raises [Invalid_argument] on malformed input. *)
