let header_of trace = Printf.sprintf "colcache-trace v1 %d" (Trace.length trace)

let save ~path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (header_of trace);
      output_char oc '\n';
      Trace.iter
        (fun a ->
          output_string oc (Access.to_string a);
          output_char oc '\n')
        trace)

let load ~path =
  (* A packed binary trace starts with its own magic; parsing it as text
     would die on an opaque "bad header" with a page of NUL bytes in it.
     Name the actual mismatch instead. *)
  if Packed.is_packed_file path then
    invalid_arg
      (Printf.sprintf
         "Trace_file.load %s: packed binary trace (use Packed.map_file or \
          Trace_file.load_packed)"
         path);
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = try input_line ic with End_of_file -> "" in
      let count =
        match String.split_on_char ' ' header with
        | [ "colcache-trace"; "v1"; n ] -> (
            match int_of_string_opt n with
            | Some n when n >= 0 -> n
            | Some _ | None ->
                invalid_arg
                  (Printf.sprintf "Trace_file.load %s: bad count %S" path n))
        | _ ->
            invalid_arg
              (Printf.sprintf "Trace_file.load %s: bad header %S" path header)
      in
      let builder = Trace.Builder.create ~initial_capacity:(max 1 count) () in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             Trace.Builder.add builder (Access.of_string line)
         done
       with End_of_file -> ());
      let trace = Trace.Builder.build builder in
      if Trace.length trace <> count then
        invalid_arg
          (Printf.sprintf "Trace_file.load %s: header says %d accesses, found %d"
             path count (Trace.length trace));
      trace)

let load_packed ~path =
  if Packed.is_packed_file path then Packed.map_file path
  else Packed.of_trace (load ~path)
