(** Saving and loading traces.

    A simple self-describing text format — one header line
    ["colcache-trace v1 <count>"] followed by one access per line (see
    {!Access.to_string}) — so traces can be captured once (e.g. from the IR
    interpreter or an external tool) and replayed against many cache
    configurations. *)

val save : path:string -> Trace.t -> unit
(** Overwrites [path]. Raises [Sys_error] on I/O failure. *)

val load : path:string -> Trace.t
(** Raises [Sys_error] on I/O failure and [Invalid_argument] on a bad
    header, a count mismatch, or a malformed access line — including, with
    an error saying so, a {!Packed} binary trace handed to the text loader
    (use {!load_packed} to accept both formats). *)

val load_packed : path:string -> Packed.t
(** Load either format as a packed trace, dispatching on the file's magic:
    binary files are mmapped in place ({!Packed.map_file}, bounded memory
    however large the trace), text files are parsed and packed. Errors as
    {!load} / {!Packed.map_file}. *)

val header_of : Trace.t -> string
