type t = Access.t array

let empty = [||]
let of_list = Array.of_list
let to_list = Array.to_list
let of_array a = a
let raw t = t
let length = Array.length
let is_empty t = Array.length t = 0

let get t i =
  if i < 0 || i >= Array.length t then invalid_arg "Trace.get: index out of bounds";
  t.(i)

let append = Array.append
let concat = Array.concat
let sub t ~pos ~len = Array.sub t pos len
let iter = Array.iter
let iteri = Array.iteri
let fold f init t = Array.fold_left f init t
let map = Array.map
(* Count-then-fill: two passes over the array (the predicate runs twice per
   element) but no intermediate list — the old array->list->array round-trip
   allocated three cells per access on multi-megabyte traces. *)
let filter f t =
  let n = ref 0 in
  Array.iter (fun a -> if f a then incr n) t;
  if !n = Array.length t then t
  else if !n = 0 then [||]
  else begin
    let out = Array.make !n t.(0) in
    let j = ref 0 in
    Array.iter
      (fun a ->
        if f a then begin
          out.(!j) <- a;
          incr j
        end)
      t;
    out
  end

let instructions t =
  Array.fold_left (fun acc a -> acc + Access.instructions a) 0 t

let shift t ~offset = map (fun a -> Access.with_addr a (a.Access.addr + offset)) t

let vars t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let record a =
    match a.Access.var with
    | None -> ()
    | Some v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          out := v :: !out
        end
  in
  iter record t;
  List.rev !out

let filter_var t v = filter (fun a -> a.Access.var = Some v) t

let addr_range t =
  let update acc a =
    match acc with
    | None -> Some (a.Access.addr, a.Access.addr)
    | Some (lo, hi) -> Some (min lo a.Access.addr, max hi a.Access.addr)
  in
  fold update None t

let footprint ~line_size t =
  let lines = Hashtbl.create 256 in
  iter (fun a -> Hashtbl.replace lines (Access.line ~line_size a) ()) t;
  Hashtbl.length lines

let equal a b =
  Array.length a = Array.length b
  && begin
       let rec check i =
         i >= Array.length a || (Access.equal a.(i) b.(i) && check (i + 1))
       in
       check 0
     end

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  iter (fun a -> Format.fprintf ppf "%a@," Access.pp a) t;
  Format.fprintf ppf "@]"

let to_string t =
  let buf = Buffer.create (16 * Array.length t) in
  iter
    (fun a ->
      Buffer.add_string buf (Access.to_string a);
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf

let of_string s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map Access.of_string
  |> of_list

module Builder = struct
  type t = {
    mutable data : Access.t array;
    mutable len : int;
  }

  let dummy = Access.make 0

  let create ?(initial_capacity = 1024) () =
    { data = Array.make (max 1 initial_capacity) dummy; len = 0 }

  let grow b =
    let data = Array.make (2 * Array.length b.data) dummy in
    Array.blit b.data 0 data 0 b.len;
    b.data <- data

  let add b a =
    if b.len = Array.length b.data then grow b;
    b.data.(b.len) <- a;
    b.len <- b.len + 1

  let emit b ?kind ?var ?gap addr = add b (Access.make ?kind ?var ?gap addr)
  let length b = b.len
  let build b = Array.sub b.data 0 b.len
end
