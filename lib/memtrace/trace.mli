(** Immutable, array-backed sequences of memory accesses.

    A trace is the interface between workloads and the simulators: workloads
    emit traces, the layout pass profiles them, and the machine replays them
    against a cache configuration. *)

type t

val empty : t
val of_list : Access.t list -> t
val to_list : t -> Access.t list

val of_array : Access.t array -> t
(** Takes ownership of the array; callers must not mutate it afterwards. *)

val raw : t -> Access.t array
(** The backing array, for zero-overhead replay loops (the simulators' batched
    hot path). Callers must not mutate it. *)

val length : t -> int
val is_empty : t -> bool

val get : t -> int -> Access.t
(** Raises [Invalid_argument] when the index is out of bounds. *)

val append : t -> t -> t
val concat : t list -> t
val sub : t -> pos:int -> len:int -> t
val iter : (Access.t -> unit) -> t -> unit
val iteri : (int -> Access.t -> unit) -> t -> unit
val fold : ('a -> Access.t -> 'a) -> 'a -> t -> 'a
val map : (Access.t -> Access.t) -> t -> t
val filter : (Access.t -> bool) -> t -> t
(** Keeps accesses satisfying the predicate, in order. The predicate may be
    applied more than once per access (count-then-fill, no intermediate
    list); when everything is kept the trace is returned as-is. *)

val instructions : t -> int
(** Total instructions represented by the trace: sum of
    {!Access.instructions} over all accesses. *)

val shift : t -> offset:int -> t
(** Relocate every address by [offset] bytes. Raises [Invalid_argument] if
    any shifted address would be negative. *)

val vars : t -> string list
(** Distinct symbolic variables, in order of first appearance. *)

val filter_var : t -> string -> t
val addr_range : t -> (int * int) option

val footprint : line_size:int -> t -> int
(** Number of distinct cache lines touched. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** One access per line, as {!Access.to_string}. *)

val of_string : string -> t
(** Inverse of {!to_string}; blank lines are skipped. *)

(** A builder accumulates accesses in O(1) amortized time; used by workload
    generators and the IR interpreter. *)
module Builder : sig
  type trace := t
  type t

  val create : ?initial_capacity:int -> unit -> t
  val add : t -> Access.t -> unit
  val emit : t -> ?kind:Access.kind -> ?var:string -> ?gap:int -> int -> unit
  val length : t -> int
  val build : t -> trace
end
