(* Struct-of-arrays trace storage. The boxed [Access.t array] form keeps one
   heap block per access (plus an option per tagged access); replaying a
   multi-megabyte trace through it is bound by pointer chasing. Here the four
   fields live in parallel unboxed columns — Bigarray ints for addresses and
   gaps, one byte per access for the kind, and an int index into a small
   interned variable table — so the machine's batched replay loop touches
   only flat off-heap arrays. Bigarray backing also means a column can be a
   view of an mmapped file: traces far larger than RAM replay in bounded
   memory, the kernel paging columns in and out behind the loops. *)

type int_col = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type byte_col =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let make_int_col n : int_col =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let make_byte_col n : byte_col =
  Bigarray.Array1.create Bigarray.char Bigarray.c_layout n

type t = {
  len : int;
  addrs : int_col;
  gaps : int_col;
  kinds : byte_col; (* '\000' Read, '\001' Write, '\002' Ifetch *)
  tags : int_col; (* index into [vars]; -1 = untagged *)
  vars : string array; (* distinct variable names, first-appearance order *)
}

let length t = t.len
let is_empty t = t.len = 0

let kind_code = function
  | Access.Read -> 0
  | Access.Write -> 1
  | Access.Ifetch -> 2

let kind_of_code = function
  | 0 -> Access.Read
  | 1 -> Access.Write
  | 2 -> Access.Ifetch
  | c -> invalid_arg (Printf.sprintf "Packed.kind_of_code: %d" c)

let check_index t i =
  if i < 0 || i >= t.len then invalid_arg "Packed: index out of bounds"

let addr t i =
  check_index t i;
  t.addrs.{i}

let gap t i =
  check_index t i;
  t.gaps.{i}

let kind t i =
  check_index t i;
  kind_of_code (Char.code t.kinds.{i})

let var t i =
  check_index t i;
  let tag = t.tags.{i} in
  if tag < 0 then None else Some t.vars.(tag)

let get t i =
  check_index t i;
  Access.make
    ~kind:(kind_of_code (Char.code t.kinds.{i}))
    ?var:(let tag = t.tags.{i} in
          if tag < 0 then None else Some t.vars.(tag))
    ~gap:t.gaps.{i} t.addrs.{i}

let raw_addrs t = t.addrs
let raw_gaps t = t.gaps
let raw_kinds t = t.kinds
let raw_tags t = t.tags
let var_table t = t.vars

(* O(1) slice: Bigarray sub-views share the parent's storage (including
   mmapped columns), so epoch-sliced replay never copies the trace. The
   var table is shared whole; tags index into it unchanged. *)
let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Packed.sub: slice out of bounds";
  {
    len;
    addrs = Bigarray.Array1.sub t.addrs pos len;
    gaps = Bigarray.Array1.sub t.gaps pos len;
    kinds = Bigarray.Array1.sub t.kinds pos len;
    tags = Bigarray.Array1.sub t.tags pos len;
    vars = t.vars;
  }

let instructions t =
  let total = ref t.len in
  for i = 0 to t.len - 1 do
    total := !total + Bigarray.Array1.unsafe_get t.gaps i
  done;
  !total

module Builder = struct
  type packed = t

  type t = {
    mutable len : int;
    mutable addrs : int_col;
    mutable gaps : int_col;
    mutable kinds : byte_col;
    mutable tags : int_col;
    intern : (string, int) Hashtbl.t;
    mutable vars : string list; (* reversed first-appearance order *)
    mutable var_count : int;
  }

  let create ?(initial_capacity = 1024) () =
    let cap = max 1 initial_capacity in
    {
      len = 0;
      addrs = make_int_col cap;
      gaps = make_int_col cap;
      kinds = make_byte_col cap;
      tags = make_int_col cap;
      intern = Hashtbl.create 16;
      vars = [];
      var_count = 0;
    }

  let grow b =
    let open Bigarray.Array1 in
    let cap = 2 * dim b.addrs in
    let copy_int (src : int_col) =
      let dst = make_int_col cap in
      blit (sub src 0 b.len) (sub dst 0 b.len);
      dst
    in
    b.addrs <- copy_int b.addrs;
    b.gaps <- copy_int b.gaps;
    b.tags <- copy_int b.tags;
    let kinds = make_byte_col cap in
    blit (sub b.kinds 0 b.len) (sub kinds 0 b.len);
    b.kinds <- kinds

  let tag_of b = function
    | None -> -1
    | Some v -> (
        match Hashtbl.find_opt b.intern v with
        | Some i -> i
        | None ->
            let i = b.var_count in
            Hashtbl.add b.intern v i;
            b.vars <- v :: b.vars;
            b.var_count <- i + 1;
            i)

  let emit b ?(kind = Access.Read) ?var ?(gap = 0) addr =
    if addr < 0 then invalid_arg "Packed.Builder.emit: negative address";
    if gap < 0 then invalid_arg "Packed.Builder.emit: negative gap";
    if b.len = Bigarray.Array1.dim b.addrs then grow b;
    let i = b.len in
    b.addrs.{i} <- addr;
    b.gaps.{i} <- gap;
    b.kinds.{i} <- Char.chr (kind_code kind);
    b.tags.{i} <- tag_of b var;
    b.len <- i + 1

  let add b (a : Access.t) =
    emit b ~kind:a.kind ?var:a.var ~gap:a.gap a.addr

  let length b = b.len

  let build b : packed =
    let open Bigarray.Array1 in
    let copy_int (src : int_col) =
      let dst = make_int_col b.len in
      blit (sub src 0 b.len) dst;
      dst
    in
    let kinds = make_byte_col b.len in
    blit (sub b.kinds 0 b.len) kinds;
    {
      len = b.len;
      addrs = copy_int b.addrs;
      gaps = copy_int b.gaps;
      kinds;
      tags = copy_int b.tags;
      vars = Array.of_list (List.rev b.vars);
    }
end

let of_trace trace =
  let arr = Trace.raw trace in
  let b = Builder.create ~initial_capacity:(max 1 (Array.length arr)) () in
  Array.iter (fun a -> Builder.add b a) arr;
  Builder.build b

let of_list accesses =
  let b = Builder.create () in
  List.iter (fun a -> Builder.add b a) accesses;
  Builder.build b

let to_trace t = Trace.of_array (Array.init t.len (fun i -> get t i))
let to_list t = List.init t.len (fun i -> get t i)

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let equal a b =
  a.len = b.len
  && begin
       let rec check i =
         i >= a.len || (Access.equal (get a i) (get b i) && check (i + 1))
       in
       check 0
     end

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  iter (fun a -> Format.fprintf ppf "%a@," Access.pp a) t;
  Format.fprintf ppf "@]"

(* {2 The binary trace file format}

   One 4096-byte header page, then the four columns at page-aligned offsets
   so each can be handed to [Unix.map_file] directly, then the interned
   variable table as a length-prefixed blob:

     offset 0    magic     "colcache-packed\n"            (16 bytes)
            16   version   u64 LE, currently 1
            24   n         access count
            32   addrs_off byte offset of the address column (= 4096)
            40   gaps_off  byte offset of the gap column
            48   kinds_off byte offset of the kind column (1 byte/access)
            56   tags_off  byte offset of the tag column
            64   var_off   byte offset of the variable blob (= tags_off+8n)
            72   var_count interned variable names
            80   var_bytes total size of the variable blob
            88   probe     0x0123456789abcde, read back through an mmapped
                           int column to reject foreign byte order
            96.. zero padding to 4096

   Integer columns hold one OCaml int per access as a 64-bit
   little-endian word; the variable blob is [var_count] records of
   u64 LE length + raw name bytes. Every header field is validated on load
   — wrong magic, wrong version, offsets that disagree with the recomputed
   layout, or a file shorter than [var_off + var_bytes] all raise a clean
   [Invalid_argument] naming the path, never a crash or garbage stats. *)

let page = 4096
let magic = "colcache-packed\n"
let version = 1
let probe = 0x0123456789abcde
let align_page x = (x + (page - 1)) land lnot (page - 1)

type file_layout = {
  n : int;
  addrs_off : int;
  gaps_off : int;
  kinds_off : int;
  tags_off : int;
  var_off : int;
}

let layout_of_n n =
  let addrs_off = page in
  let gaps_off = align_page (addrs_off + (8 * n)) in
  let kinds_off = align_page (gaps_off + (8 * n)) in
  let tags_off = align_page (kinds_off + n) in
  let var_off = tags_off + (8 * n) in
  { n; addrs_off; gaps_off; kinds_off; tags_off; var_off }

let header_bytes lay ~var_count ~var_bytes =
  let b = Bytes.make page '\000' in
  Bytes.blit_string magic 0 b 0 (String.length magic);
  let set off v = Bytes.set_int64_le b off (Int64.of_int v) in
  set 16 version;
  set 24 lay.n;
  set 32 lay.addrs_off;
  set 40 lay.gaps_off;
  set 48 lay.kinds_off;
  set 56 lay.tags_off;
  set 64 lay.var_off;
  set 72 var_count;
  set 80 var_bytes;
  set 88 probe;
  b

let var_blob vars =
  let buf = Buffer.create 256 in
  let len8 = Bytes.create 8 in
  Array.iter
    (fun v ->
      Bytes.set_int64_le len8 0 (Int64.of_int (String.length v));
      Buffer.add_bytes buf len8;
      Buffer.add_string buf v)
    vars;
  Buffer.contents buf

let reject path fmt =
  Printf.ksprintf
    (fun msg -> invalid_arg (Printf.sprintf "Packed: %s: %s" path msg))
    fmt

(* {2 Writing} *)

let output_int_col oc (col : int_col) n =
  let chunk = 8192 in
  let buf = Bytes.create (8 * chunk) in
  let i = ref 0 in
  while !i < n do
    let m = min chunk (n - !i) in
    for j = 0 to m - 1 do
      Bytes.set_int64_le buf (8 * j)
        (Int64.of_int (Bigarray.Array1.unsafe_get col (!i + j)))
    done;
    output_bytes oc (Bytes.sub buf 0 (8 * m));
    i := !i + m
  done

let output_byte_col oc (col : byte_col) n =
  let chunk = 65536 in
  let buf = Bytes.create chunk in
  let i = ref 0 in
  while !i < n do
    let m = min chunk (n - !i) in
    for j = 0 to m - 1 do
      Bytes.set buf j (Bigarray.Array1.unsafe_get col (!i + j))
    done;
    output_bytes oc (Bytes.sub buf 0 m);
    i := !i + m
  done

let pad_to oc target =
  let here = pos_out oc in
  if here > target then invalid_arg "Packed: internal layout overflow";
  if here < target then output_string oc (String.make (target - here) '\000')

let write_file path t =
  let blob = var_blob t.vars in
  let lay = layout_of_n t.len in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_bytes oc
        (header_bytes lay ~var_count:(Array.length t.vars)
           ~var_bytes:(String.length blob));
      output_int_col oc t.addrs t.len;
      pad_to oc lay.gaps_off;
      output_int_col oc t.gaps t.len;
      pad_to oc lay.kinds_off;
      output_byte_col oc t.kinds t.len;
      pad_to oc lay.tags_off;
      output_int_col oc t.tags t.len;
      output_string oc blob)

(* {2 Mapping} *)

let is_packed_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      match really_input_string ic (String.length magic) with
      | head -> String.equal head magic
      | exception End_of_file -> false)

let really_read fd buf off len =
  let got = ref 0 in
  (try
     while !got < len do
       let r = Unix.read fd buf (off + !got) (len - !got) in
       if r = 0 then raise Exit;
       got := !got + r
     done
   with Exit -> ());
  !got

let map_int_col fd ~pos n : int_col =
  if n = 0 then make_int_col 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int
         Bigarray.c_layout false [| n |])

let map_byte_col fd ~pos n : byte_col =
  if n = 0 then make_byte_col 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.char
         Bigarray.c_layout false [| n |])

let read_var_table path fd ~var_off ~var_count ~var_bytes =
  ignore (Unix.lseek fd var_off Unix.SEEK_SET);
  let blob = Bytes.create var_bytes in
  if really_read fd blob 0 var_bytes < var_bytes then
    reject path "truncated variable table";
  let pos = ref 0 in
  Array.init var_count (fun _ ->
      if !pos + 8 > var_bytes then reject path "corrupt variable table";
      let len = Int64.to_int (Bytes.get_int64_le blob !pos) in
      if len < 0 || !pos + 8 + len > var_bytes then
        reject path "corrupt variable table";
      let v = Bytes.sub_string blob (!pos + 8) len in
      pos := !pos + 8 + len;
      v)

let map_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let hdr = Bytes.create page in
      if really_read fd hdr 0 page < page then
        reject path "truncated file (shorter than the %d-byte header)" page;
      if Bytes.sub_string hdr 0 (String.length magic) <> magic then
        reject path "bad magic (not a packed trace file)";
      let field off = Int64.to_int (Bytes.get_int64_le hdr off) in
      let v = field 16 in
      if v <> version then
        reject path "unsupported format version %d (expected %d)" v version;
      let n = field 24 in
      if n < 0 then reject path "corrupt header (negative access count)";
      let lay = layout_of_n n in
      if
        field 32 <> lay.addrs_off
        || field 40 <> lay.gaps_off
        || field 48 <> lay.kinds_off
        || field 56 <> lay.tags_off
        || field 64 <> lay.var_off
      then reject path "corrupt header (column offsets disagree with layout)";
      let var_count = field 72 in
      let var_bytes = field 80 in
      if var_count < 0 || var_bytes < 0 then
        reject path "corrupt header (negative variable table size)";
      let size = (Unix.fstat fd).Unix.st_size in
      if size < lay.var_off + var_bytes then
        reject path "truncated file (%d bytes, layout needs %d)" size
          (lay.var_off + var_bytes);
      (* Byte-order guard: re-read the probe field through the same mmapped
         int path the columns use; a big-endian writer or reader sees the
         bytes swapped and fails here rather than replaying garbage. *)
      let hdr_ints = map_int_col fd ~pos:0 (page / 8) in
      if hdr_ints.{11} <> probe then
        reject path "byte-order probe mismatch (foreign endianness?)";
      let vars =
        read_var_table path fd ~var_off:lay.var_off ~var_count ~var_bytes
      in
      {
        len = n;
        addrs = map_int_col fd ~pos:lay.addrs_off n;
        gaps = map_int_col fd ~pos:lay.gaps_off n;
        kinds = map_byte_col fd ~pos:lay.kinds_off n;
        tags = map_int_col fd ~pos:lay.tags_off n;
        vars;
      })

(* {2 Streaming writer} *)

module Writer = struct
  type writer = {
    path : string;
    n : int;
    lay : file_layout;
    oc_addrs : out_channel;
    oc_gaps : out_channel;
    oc_kinds : out_channel;
    oc_tags : out_channel;
    int8 : Bytes.t;
    intern : (string, int) Hashtbl.t;
    mutable vars : string list; (* reversed first-appearance order *)
    mutable var_count : int;
    mutable emitted : int;
    mutable closed : bool;
  }

  type t = writer

  let channel_at path fd_flags off =
    let fd = Unix.openfile path fd_flags 0o644 in
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    Unix.out_channel_of_descr fd

  let create path ~length =
    if length < 0 then invalid_arg "Packed.Writer.create: negative length";
    let lay = layout_of_n length in
    (* First channel creates and truncates; the rest just seek to their
       column's offset — four independent buffered streams over one file. *)
    let oc_addrs =
      channel_at path Unix.[ O_WRONLY; O_CREAT; O_TRUNC ] lay.addrs_off
    in
    {
      path;
      n = length;
      lay;
      oc_addrs;
      oc_gaps = channel_at path [ Unix.O_WRONLY ] lay.gaps_off;
      oc_kinds = channel_at path [ Unix.O_WRONLY ] lay.kinds_off;
      oc_tags = channel_at path [ Unix.O_WRONLY ] lay.tags_off;
      int8 = Bytes.create 8;
      intern = Hashtbl.create 16;
      vars = [];
      var_count = 0;
      emitted = 0;
      closed = false;
    }

  let output_int w oc v =
    Bytes.set_int64_le w.int8 0 (Int64.of_int v);
    output_bytes oc w.int8

  let tag_of w = function
    | None -> -1
    | Some v -> (
        match Hashtbl.find_opt w.intern v with
        | Some i -> i
        | None ->
            let i = w.var_count in
            Hashtbl.add w.intern v i;
            w.vars <- v :: w.vars;
            w.var_count <- i + 1;
            i)

  let emit w ?(kind = Access.Read) ?var ?(gap = 0) addr =
    if w.closed then invalid_arg "Packed.Writer.emit: writer is closed";
    if addr < 0 then invalid_arg "Packed.Writer.emit: negative address";
    if gap < 0 then invalid_arg "Packed.Writer.emit: negative gap";
    if w.emitted >= w.n then
      invalid_arg
        (Printf.sprintf "Packed.Writer.emit: declared length %d exceeded" w.n);
    output_int w w.oc_addrs addr;
    output_int w w.oc_gaps gap;
    output_char w.oc_kinds (Char.chr (kind_code kind));
    output_int w w.oc_tags (tag_of w var);
    w.emitted <- w.emitted + 1

  let add w (a : Access.t) = emit w ~kind:a.kind ?var:a.var ~gap:a.gap a.addr
  let emitted w = w.emitted

  let close w =
    if w.closed then invalid_arg "Packed.Writer.close: already closed";
    w.closed <- true;
    if w.emitted <> w.n then
      invalid_arg
        (Printf.sprintf "Packed.Writer.close: emitted %d of declared %d"
           w.emitted w.n);
    close_out w.oc_addrs;
    close_out w.oc_gaps;
    close_out w.oc_kinds;
    close_out w.oc_tags;
    let vars = Array.of_list (List.rev w.vars) in
    let blob = var_blob vars in
    let oc = channel_at w.path [ Unix.O_WRONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_bytes oc
          (header_bytes w.lay ~var_count:(Array.length vars)
             ~var_bytes:(String.length blob));
        (* seek, don't pad: the columns already live between here and
           [var_off] *)
        seek_out oc w.lay.var_off;
        output_string oc blob)
end
