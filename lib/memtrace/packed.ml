(* Struct-of-arrays trace storage. The boxed [Access.t array] form keeps one
   heap block per access (plus an option per tagged access); replaying a
   multi-megabyte trace through it is bound by pointer chasing. Here the four
   fields live in parallel unboxed columns — ints for addresses and gaps, one
   byte per access for the kind, and an int index into a small interned
   variable table — so the machine's batched replay loop touches only flat
   arrays. *)

type t = {
  len : int;
  addrs : int array;
  gaps : int array;
  kinds : Bytes.t; (* '\000' Read, '\001' Write, '\002' Ifetch *)
  tags : int array; (* index into [vars]; -1 = untagged *)
  vars : string array; (* distinct variable names, first-appearance order *)
}

let length t = t.len
let is_empty t = t.len = 0

let kind_code = function
  | Access.Read -> 0
  | Access.Write -> 1
  | Access.Ifetch -> 2

let kind_of_code = function
  | 0 -> Access.Read
  | 1 -> Access.Write
  | 2 -> Access.Ifetch
  | c -> invalid_arg (Printf.sprintf "Packed.kind_of_code: %d" c)

let check_index t i =
  if i < 0 || i >= t.len then invalid_arg "Packed: index out of bounds"

let addr t i =
  check_index t i;
  t.addrs.(i)

let gap t i =
  check_index t i;
  t.gaps.(i)

let kind t i =
  check_index t i;
  kind_of_code (Char.code (Bytes.get t.kinds i))

let var t i =
  check_index t i;
  let tag = t.tags.(i) in
  if tag < 0 then None else Some t.vars.(tag)

let get t i =
  check_index t i;
  Access.make
    ~kind:(kind_of_code (Char.code (Bytes.get t.kinds i)))
    ?var:(let tag = t.tags.(i) in
          if tag < 0 then None else Some t.vars.(tag))
    ~gap:t.gaps.(i) t.addrs.(i)

let raw_addrs t = t.addrs
let raw_gaps t = t.gaps
let raw_kinds t = t.kinds
let raw_tags t = t.tags
let var_table t = t.vars

let instructions t =
  let total = ref t.len in
  for i = 0 to t.len - 1 do
    total := !total + Array.unsafe_get t.gaps i
  done;
  !total

module Builder = struct
  type packed = t

  type t = {
    mutable len : int;
    mutable addrs : int array;
    mutable gaps : int array;
    mutable kinds : Bytes.t;
    mutable tags : int array;
    intern : (string, int) Hashtbl.t;
    mutable vars : string list; (* reversed first-appearance order *)
    mutable var_count : int;
  }

  let create ?(initial_capacity = 1024) () =
    let cap = max 1 initial_capacity in
    {
      len = 0;
      addrs = Array.make cap 0;
      gaps = Array.make cap 0;
      kinds = Bytes.make cap '\000';
      tags = Array.make cap (-1);
      intern = Hashtbl.create 16;
      vars = [];
      var_count = 0;
    }

  let grow b =
    let cap = 2 * Array.length b.addrs in
    let addrs = Array.make cap 0 in
    Array.blit b.addrs 0 addrs 0 b.len;
    let gaps = Array.make cap 0 in
    Array.blit b.gaps 0 gaps 0 b.len;
    let kinds = Bytes.make cap '\000' in
    Bytes.blit b.kinds 0 kinds 0 b.len;
    let tags = Array.make cap (-1) in
    Array.blit b.tags 0 tags 0 b.len;
    b.addrs <- addrs;
    b.gaps <- gaps;
    b.kinds <- kinds;
    b.tags <- tags

  let tag_of b = function
    | None -> -1
    | Some v -> (
        match Hashtbl.find_opt b.intern v with
        | Some i -> i
        | None ->
            let i = b.var_count in
            Hashtbl.add b.intern v i;
            b.vars <- v :: b.vars;
            b.var_count <- i + 1;
            i)

  let emit b ?(kind = Access.Read) ?var ?(gap = 0) addr =
    if addr < 0 then invalid_arg "Packed.Builder.emit: negative address";
    if gap < 0 then invalid_arg "Packed.Builder.emit: negative gap";
    if b.len = Array.length b.addrs then grow b;
    let i = b.len in
    b.addrs.(i) <- addr;
    b.gaps.(i) <- gap;
    Bytes.set b.kinds i (Char.chr (kind_code kind));
    b.tags.(i) <- tag_of b var;
    b.len <- i + 1

  let add b (a : Access.t) =
    emit b ~kind:a.kind ?var:a.var ~gap:a.gap a.addr

  let length b = b.len

  let build b : packed =
    {
      len = b.len;
      addrs = Array.sub b.addrs 0 b.len;
      gaps = Array.sub b.gaps 0 b.len;
      kinds = Bytes.sub b.kinds 0 b.len;
      tags = Array.sub b.tags 0 b.len;
      vars = Array.of_list (List.rev b.vars);
    }
end

let of_trace trace =
  let arr = Trace.raw trace in
  let b = Builder.create ~initial_capacity:(max 1 (Array.length arr)) () in
  Array.iter (fun a -> Builder.add b a) arr;
  Builder.build b

let of_list accesses =
  let b = Builder.create () in
  List.iter (fun a -> Builder.add b a) accesses;
  Builder.build b

let to_trace t = Trace.of_array (Array.init t.len (fun i -> get t i))
let to_list t = List.init t.len (fun i -> get t i)

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let equal a b =
  a.len = b.len
  && begin
       let rec check i =
         i >= a.len || (Access.equal (get a i) (get b i) && check (i + 1))
       in
       check 0
     end

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  iter (fun a -> Format.fprintf ppf "%a@," Access.pp a) t;
  Format.fprintf ppf "@]"
