type kind =
  | Read
  | Write
  | Ifetch

type t = {
  addr : int;
  kind : kind;
  var : string option;
  gap : int;
}

let make ?(kind = Read) ?var ?(gap = 0) addr =
  if addr < 0 then invalid_arg "Access.make: negative address";
  if gap < 0 then invalid_arg "Access.make: negative gap";
  { addr; kind; var; gap }

let read ?var ?gap addr = make ~kind:Read ?var ?gap addr
let write ?var ?gap addr = make ~kind:Write ?var ?gap addr
let instructions a = a.gap + 1

let line ~line_size a =
  if line_size <= 0 then invalid_arg "Access.line: line_size must be positive";
  a.addr / line_size

let with_addr a addr =
  if addr < 0 then invalid_arg "Access.with_addr: negative address";
  { a with addr }

let equal a b =
  a.addr = b.addr && a.kind = b.kind && a.var = b.var && a.gap = b.gap

let compare a b = Stdlib.compare a b

let kind_to_string = function
  | Read -> "R"
  | Write -> "W"
  | Ifetch -> "I"

let kind_of_string = function
  | "R" -> Read
  | "W" -> Write
  | "I" -> Ifetch
  | s -> invalid_arg (Printf.sprintf "Access.kind_of_string: %S" s)

let pp ppf a =
  Format.fprintf ppf "%s 0x%x %s %d" (kind_to_string a.kind) a.addr
    (match a.var with None -> "-" | Some v -> v)
    a.gap

let to_string a = Format.asprintf "%a" pp a

let of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ k; addr; var; gap ] ->
      let addr =
        try int_of_string addr
        with Failure _ ->
          invalid_arg (Printf.sprintf "Access.of_string: bad address %S" addr)
      in
      let gap =
        try int_of_string gap
        with Failure _ ->
          invalid_arg (Printf.sprintf "Access.of_string: bad gap %S" gap)
      in
      let var = if var = "-" then None else Some var in
      { addr; kind = kind_of_string k; var; gap }
  | _ -> invalid_arg (Printf.sprintf "Access.of_string: %S" s)
