(** Packed, struct-of-arrays trace storage.

    Semantically a {!Trace.t} — the same accesses in the same order — but
    stored as parallel unboxed columns: addresses and instruction gaps as
    Bigarray ints, kinds in one byte each, and variable tags as indices into
    a small interned name table. Conversion to and from the boxed form is
    lossless ({!of_trace} / {!to_trace} round-trip exactly), and the raw
    columns are exposed for the machine's batched replay loop, which walks
    them without allocating.

    Because the columns are Bigarrays they can also be views of an mmapped
    file: {!write_file} serializes a trace into a versioned binary format
    with page-aligned columns, and {!map_file} maps one back without reading
    it into memory — a multi-gigabyte trace replays in bounded RSS, the
    kernel paging the columns behind the loops. {!Writer} streams a trace of
    known length straight to disk so one larger than RAM can even be
    generated without ever materializing it. *)

type t

type int_col = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** One 64-bit little-endian OCaml int per access. *)

type byte_col =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** One byte per access. *)

val length : t -> int
val is_empty : t -> bool

val addr : t -> int -> int
val gap : t -> int -> int
val kind : t -> int -> Access.kind
val var : t -> int -> string option
(** Bounds-checked per-field accessors; raise [Invalid_argument] when the
    index is out of range. *)

val get : t -> int -> Access.t
(** Reconstruct the boxed access at an index. *)

val kind_code : Access.kind -> int
(** [Read] = 0, [Write] = 1, [Ifetch] = 2 — the byte stored in
    {!raw_kinds}. *)

val kind_of_code : int -> Access.kind
(** Inverse of {!kind_code}; raises [Invalid_argument] on other values. *)

val raw_addrs : t -> int_col
val raw_gaps : t -> int_col
val raw_kinds : t -> byte_col
val raw_tags : t -> int_col
(** The backing columns, for zero-overhead replay loops; entries of
    {!raw_tags} are indices into {!var_table}, [-1] for untagged accesses.
    Callers must not mutate any of them. *)

val var_table : t -> string array
(** Distinct variable names in order of first appearance. Callers must not
    mutate it. *)

val instructions : t -> int
(** Total instructions represented: sum of [gap + 1] over all accesses. *)

val sub : t -> pos:int -> len:int -> t
(** O(1) view of [len] accesses starting at [pos]: the columns are
    Bigarray sub-views sharing the parent's storage (mmapped traces
    included) and the var table is shared. Raises [Invalid_argument] when
    the slice falls outside the trace. *)

val of_trace : Trace.t -> t
val to_trace : t -> Trace.t
val of_list : Access.t list -> t
val to_list : t -> Access.t list

val iter : (Access.t -> unit) -> t -> unit
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Accumulates accesses in O(1) amortized time directly into the packed
    columns, so workload generators emit without building per-access heap
    records first. *)
module Builder : sig
  type packed := t
  type t

  val create : ?initial_capacity:int -> unit -> t

  val emit : t -> ?kind:Access.kind -> ?var:string -> ?gap:int -> int -> unit
  (** Append one access. Same validation as {!Access.make}: negative
      addresses and negative gaps are rejected with [Invalid_argument]. *)

  val add : t -> Access.t -> unit
  val length : t -> int
  val build : t -> packed
end

(** {2 The binary trace file format}

    A 4096-byte header page (magic, version, access count, column offsets,
    a byte-order probe), then the four columns at page-aligned offsets so
    each can be mmapped directly, then the interned variable table as a
    length-prefixed blob. Integers are 64-bit little-endian words. The full
    field-by-field layout is documented at the top of the implementation. *)

val magic : string
(** The 16-byte magic the header page starts with. *)

val is_packed_file : string -> bool
(** Whether the file starts with {!magic} — cheap format sniffing, so
    loaders can dispatch between this format and the text one
    ({!Trace_file}). [false] for files shorter than the magic; raises
    [Sys_error] when the file cannot be opened. *)

val write_file : string -> t -> unit
(** Serialize the whole trace to a file in the binary format. Overwrites. *)

val map_file : string -> t
(** Map a file written by {!write_file} (or {!Writer}) without loading it:
    the returned columns are read-only views of the file's pages, so traces
    far larger than RAM replay in bounded memory. The header is validated
    first — wrong magic, an unsupported version, offsets disagreeing with
    the recomputed layout, a truncated file, or a byte-order probe mismatch
    all raise [Invalid_argument] naming the path. Callers must not mutate
    the returned columns (shared with every other mapping of the file). *)

(** Streams accesses of a trace of known length straight to disk in the
    binary format, in O(1) memory — for synthesizing traces larger than
    RAM. Column offsets depend only on the length, so each column is an
    independent buffered stream over the same file; the header and variable
    table are fixed up on {!Writer.close}. *)
module Writer : sig
  type t

  val create : string -> length:int -> t
  (** Start writing a trace of exactly [length] accesses. Overwrites. *)

  val emit : t -> ?kind:Access.kind -> ?var:string -> ?gap:int -> int -> unit
  (** Append one access; same validation as {!Builder.emit}, plus
      [Invalid_argument] when the declared length would be exceeded. *)

  val add : t -> Access.t -> unit
  val emitted : t -> int

  val close : t -> unit
  (** Flush the columns and write the final header and variable table.
      Raises [Invalid_argument] if fewer than [length] accesses were
      emitted (the file is left unusable — its header is never written). *)
end
