(** Packed, struct-of-arrays trace storage.

    Semantically a {!Trace.t} — the same accesses in the same order — but
    stored as parallel unboxed columns: addresses and instruction gaps in
    [int array]s, kinds in one byte each, and variable tags as indices into
    a small interned name table. Conversion to and from the boxed form is
    lossless ({!of_trace} / {!to_trace} round-trip exactly), and the raw
    columns are exposed for the machine's batched replay loop, which walks
    them without allocating. *)

type t

val length : t -> int
val is_empty : t -> bool

val addr : t -> int -> int
val gap : t -> int -> int
val kind : t -> int -> Access.kind
val var : t -> int -> string option
(** Bounds-checked per-field accessors; raise [Invalid_argument] when the
    index is out of range. *)

val get : t -> int -> Access.t
(** Reconstruct the boxed access at an index. *)

val kind_code : Access.kind -> int
(** [Read] = 0, [Write] = 1, [Ifetch] = 2 — the byte stored in
    {!raw_kinds}. *)

val kind_of_code : int -> Access.kind
(** Inverse of {!kind_code}; raises [Invalid_argument] on other values. *)

val raw_addrs : t -> int array
val raw_gaps : t -> int array
val raw_kinds : t -> Bytes.t
val raw_tags : t -> int array
(** The backing columns, for zero-overhead replay loops; entries of
    {!raw_tags} are indices into {!var_table}, [-1] for untagged accesses.
    Callers must not mutate any of them. *)

val var_table : t -> string array
(** Distinct variable names in order of first appearance. Callers must not
    mutate it. *)

val instructions : t -> int
(** Total instructions represented: sum of [gap + 1] over all accesses. *)

val of_trace : Trace.t -> t
val to_trace : t -> Trace.t
val of_list : Access.t list -> t
val to_list : t -> Access.t list

val iter : (Access.t -> unit) -> t -> unit
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Accumulates accesses in O(1) amortized time directly into the packed
    columns, so workload generators emit without building per-access heap
    records first. *)
module Builder : sig
  type packed := t
  type t

  val create : ?initial_capacity:int -> unit -> t

  val emit : t -> ?kind:Access.kind -> ?var:string -> ?gap:int -> int -> unit
  (** Append one access. Same validation as {!Access.make}: negative
      addresses and negative gaps are rejected with [Invalid_argument]. *)

  val add : t -> Access.t -> unit
  val length : t -> int
  val build : t -> packed
end
