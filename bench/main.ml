(* Benchmark harness: regenerates every figure of the paper (printing the
   same rows/series the paper plots) and then times one representative unit
   of work per experiment with Bechamel.

   Run: dune exec bench/main.exe
   Skip the micro-benchmarks with: dune exec bench/main.exe -- --no-bechamel *)

open Bechamel
open Bechamel.Toolkit

let experiments () =
  let ppf = Format.std_formatter in
  Format.fprintf ppf "================================================@.";
  Format.fprintf ppf "colcache: paper experiment regeneration@.";
  Format.fprintf ppf "================================================@.@.";
  Colcache.Experiments.run_all ppf;
  Format.pp_print_flush ppf ()

(* Reduced-size workloads so each Bechamel sample stays small; the full-size
   runs are the printed series above. *)

let bench_fig3 () = ignore (Colcache.Experiments.Fig3.run ())

let mpeg =
  lazy
    (Colcache.Pipeline.make ~init:Workloads.Mpeg.init
       ~cache:(Cache.Sassoc.config ~line_size:16 ~size_bytes:2048 ~ways:4 ())
       Workloads.Mpeg.program)

let bench_fig4_routine proc () =
  let t = Lazy.force mpeg in
  ignore
    (Colcache.Pipeline.run_partitioned t ~proc ~scratchpad_columns:2
       ~meth:Colcache.Pipeline.Profile_based)

let bench_fig4d () =
  let t = Lazy.force mpeg in
  ignore
    (Colcache.Pipeline.run_static_app t ~procs:Workloads.Mpeg.routines
       ~scratchpad_columns:2 ~meth:Colcache.Pipeline.Profile_based)

let bench_fig5 () =
  ignore
    (Colcache.Experiments.Fig5.run ~quanta:[ 1024 ] ~cache_kbs:[ 16 ]
       ~input_len:2048 ())

let bench_ablation_policy () =
  let t = Lazy.force mpeg in
  ignore
    (Colcache.Pipeline.run_partitioned t ~proc:"plus" ~scratchpad_columns:1
       ~meth:Colcache.Pipeline.Profile_based)

let bench_ablation_columns () =
  ignore (Colcache.Experiments.Ablation_columns.run ~columns_list:[ 2 ] ())

let bench_ablation_weights () =
  let t = Lazy.force mpeg in
  ignore
    (Colcache.Pipeline.run_partitioned t ~proc:"dequant" ~scratchpad_columns:1
       ~meth:Colcache.Pipeline.Program_analysis)

let bench_ablation_tlb () =
  ignore
    (Colcache.Experiments.Ablation_tlb.run ~quanta:[ 4096 ] ~sizes:[ 32 ]
       ~input_len:2048 ())

let bench_ablation_grouping () =
  ignore (Colcache.Experiments.Ablation_grouping.run ())

let bench_ablation_page_coloring () =
  ignore (Colcache.Experiments.Ablation_page_coloring.run ())

let bench_ablation_l2 () = ignore (Colcache.Experiments.Ablation_l2.run ())

let bench_ablation_prefetch () =
  ignore (Colcache.Experiments.Ablation_prefetch.run ())

let bench_generality () = ignore (Colcache.Experiments.Generality.run ())

let bench_ablation_optimizer () =
  ignore (Ir.Optimize.optimize Workloads.Mpeg.program)

(* One differential-oracle scenario, fixed ahead of time so every sample
   replays identical work (generation excluded from the timed region). *)
let check_scenario =
  lazy (Check.Gen.scenario ~max_events:160 (Check.Prng.create ~seed:7))

let bench_check () =
  match Check.Diff.run_scenario (Lazy.force check_scenario) with
  | Check.Diff.Agree -> ()
  | Check.Diff.Diverge _ -> failwith "bench: differential divergence"

let tests =
  Test.make_grouped ~name:"colcache"
    [
      Test.make ~name:"fig3_tint_remap" (Staged.stage bench_fig3);
      Test.make ~name:"fig4a_dequant" (Staged.stage (bench_fig4_routine "dequant"));
      Test.make ~name:"fig4b_plus" (Staged.stage (bench_fig4_routine "plus"));
      Test.make ~name:"fig4c_idct" (Staged.stage (bench_fig4_routine "idct"));
      Test.make ~name:"fig4d_combined" (Staged.stage bench_fig4d);
      Test.make ~name:"fig5_multitask" (Staged.stage bench_fig5);
      Test.make ~name:"ablation_policy" (Staged.stage bench_ablation_policy);
      Test.make ~name:"ablation_columns" (Staged.stage bench_ablation_columns);
      Test.make ~name:"ablation_weights" (Staged.stage bench_ablation_weights);
      Test.make ~name:"ablation_tlb" (Staged.stage bench_ablation_tlb);
      Test.make ~name:"ablation_grouping" (Staged.stage bench_ablation_grouping);
      Test.make ~name:"ablation_page_coloring"
        (Staged.stage bench_ablation_page_coloring);
      Test.make ~name:"ablation_l2" (Staged.stage bench_ablation_l2);
      Test.make ~name:"ablation_prefetch" (Staged.stage bench_ablation_prefetch);
      Test.make ~name:"generality_jpeg" (Staged.stage bench_generality);
      Test.make ~name:"ablation_optimizer" (Staged.stage bench_ablation_optimizer);
      Test.make ~name:"check_differential" (Staged.stage bench_check);
    ]

let run_bechamel () =
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name o acc ->
        let est =
          match Analyze.OLS.estimates o with
          | Some [ e ] -> e
          | Some _ | None -> Float.nan
        in
        (name, est) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Format.printf "@.Bechamel timings (monotonic clock):@.";
  List.iter
    (fun (name, est) ->
      if Float.is_nan est then Format.printf "  %-40s (no estimate)@." name
      else Format.printf "  %-40s %12.0f ns/run@." name est)
    rows

let () =
  let args = Array.to_list Sys.argv in
  experiments ();
  if not (List.mem "--no-bechamel" args) then
    try run_bechamel ()
    with exn ->
      Format.printf "bechamel reporting failed: %s@." (Printexc.to_string exn)
